module flextoe

go 1.24

// Command flextrace demonstrates FlexTOE's data-path observability: it
// runs a short RPC workload with all 48 tracepoints enabled and a
// tcpdump-style capture attached, then prints the tracepoint counters and
// writes a pcap file.
package main

import (
	"flag"
	"fmt"
	"os"

	"flextoe/internal/apps"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/pcap"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

func main() {
	out := flag.String("w", "flextoe.pcap", "pcap output file")
	durMs := flag.Int("ms", 10, "simulated milliseconds")
	loss := flag.Float64("loss", 0.001, "injected loss probability")
	flag.Parse()

	tb := testbed.New(netsim.SwitchConfig{LossProb: *loss, Seed: 42},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 4, Seed: 1},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 4, Seed: 2},
	)
	server := tb.M("server")
	server.TOE.Trace().EnableAll()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	w, err := pcap.NewWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	server.TOE.PacketTapCost = 300
	server.TOE.PacketTap = func(dir string, pkt *packet.Packet) {
		w.WritePacket(tb.Eng.Now(), pkt)
	}

	srv := &apps.RPCServer{ReqSize: 256}
	srv.Serve(server.Stack, 7777)
	cl := &apps.ClosedLoopClient{ReqSize: 256, Pipeline: 4}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 8)
	tb.Run(sim.Time(*durMs) * sim.Millisecond)

	fmt.Printf("completed %d RPCs in %dms (%.3f%% loss injected)\n\n", cl.Completed, *durMs, *loss*100)
	fmt.Println("tracepoint counters:")
	for _, pc := range server.TOE.Trace().Snapshot() {
		fmt.Printf("  %-24s %d\n", pc.Point.Name(), pc.Count)
	}
	fmt.Printf("\nwrote %d packets to %s\n", w.Packets, *out)
}

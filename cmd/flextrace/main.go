// Command flextrace demonstrates FlexTOE's data-path observability along
// both of the repo's instrumentation axes.
//
// The default mode runs a short lossy RPC workload with all 48
// tracepoints enabled, an on-NIC capture (core.TOE.PacketTap) feeding
// both a pcap file and a streaming flowmon analyzer, then prints the
// tracepoint counters, the analyzer's per-flow inference, and a read-back
// of the capture through the same analyzer (proving pcap ingest and the
// live tap agree).
//
// The diff mode ("flextrace diff -personality=flextoe|linux") runs the
// xval cross-validation scenario: a seeded lossy bulk transfer with
// passive analyzers on both NICs, comparing inferred retransmit,
// reassembly, and duplicate-ACK counters against the stack's own ground
// truth. It exits nonzero when any counter is outside its documented
// tolerance.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"flextoe/internal/apps"
	"flextoe/internal/flowmon"
	"flextoe/internal/flowmon/xval"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/pcap"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, dispatches the mode,
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:], stdout, stderr)
	}
	return runTrace(args, stdout, stderr)
}

// runTrace is the default mode: tracepoints + capture + live analysis.
func runTrace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flextrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("w", "flextoe.pcap", "pcap output file")
	durMs := fs.Int("ms", 10, "simulated milliseconds")
	loss := fs.Float64("loss", 0.001, "injected loss probability")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	tb := testbed.New(netsim.SwitchConfig{LossProb: *loss, Seed: 42},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 4, Seed: 1},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 4, Seed: 2},
	)
	server := tb.M("server")
	server.TOE.Trace().EnableAll()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	w, err := pcap.NewWriter(f)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	// One on-NIC tap fans out to the capture file and the streaming
	// analyzer — tcpdump and the flow monitor share the vantage point.
	mon := flowmon.New(flowmon.Config{DupAck: flowmon.DupAckFlexTOE})
	analyze := flowmon.TOETap(tb.Eng, mon)
	server.TOE.PacketTapCost = 300
	server.TOE.PacketTap = func(dir string, pkt *packet.Packet) {
		w.WritePacket(tb.Eng.Now(), pkt)
		analyze(dir, pkt)
	}

	srv := &apps.RPCServer{ReqSize: 256}
	srv.Serve(server.Stack, 7777)
	cl := &apps.ClosedLoopClient{ReqSize: 256, Pipeline: 4}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 8)
	tb.Run(sim.Time(*durMs) * sim.Millisecond)

	fmt.Fprintf(stdout, "completed %d RPCs in %dms (%.3f%% loss injected)\n\n",
		cl.Completed, *durMs, *loss*100)
	fmt.Fprintln(stdout, "tracepoint counters:")
	for _, pc := range server.TOE.Trace().Snapshot() {
		fmt.Fprintf(stdout, "  %-24s %d\n", pc.Point.Name(), pc.Count)
	}

	fmt.Fprintf(stdout, "\nflow analysis (on-NIC tap):\n%s", mon.Report().Format())
	fmt.Fprintf(stdout, "\nwrote %d packets to %s\n", w.Packets, *out)

	// Read the capture back through a second analyzer: the file and the
	// live tap must describe the same traffic.
	if err := f.Sync(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	data, err := os.ReadFile(*out)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	replay := flowmon.New(flowmon.Config{DupAck: flowmon.DupAckFlexTOE})
	fed, skipped, err := flowmon.FeedPCAP(bytes.NewReader(data), replay)
	if err != nil {
		fmt.Fprintln(stderr, "pcap read-back:", err)
		return 1
	}
	// Compare the timestamp-independent inference totals: the capture's
	// microsecond timestamps truncate RTTs, but every counted event must
	// agree exactly.
	fmt.Fprintf(stdout, "read back %d records (%d skipped)", fed, skipped)
	live, rb := mon.Report().Totals(), replay.Report().Totals()
	live.RTTN, live.RTTSumUs, live.RTTMaxUs = 0, 0, 0
	rb.RTTN, rb.RTTSumUs, rb.RTTMaxUs = 0, 0, 0
	if live == rb {
		fmt.Fprintln(stdout, ": capture matches the live tap")
	} else {
		fmt.Fprintln(stdout, ": capture DIVERGES from the live tap")
		return 1
	}
	return 0
}

// runDiff is the cross-validation mode.
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flextrace diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	personality := fs.String("personality", "flextoe", "stack under observation: flextoe or linux")
	loss := fs.Float64("loss", 0, "injected loss probability (0 = scenario default)")
	durMs := fs.Int("ms", 0, "simulated milliseconds (0 = scenario default)")
	conns := fs.Int("conns", 0, "bulk connections (0 = scenario default)")
	seed := fs.Uint64("seed", 0, "loss seed (0 = scenario default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sc := xval.Scenario{
		Loss:     *loss,
		Conns:    *conns,
		Duration: sim.Time(*durMs) * sim.Millisecond,
		Seed:     *seed,
	}
	switch *personality {
	case "flextoe":
		sc.Personality = testbed.FlexTOE
	case "linux":
		sc.Personality = testbed.Linux
	default:
		fmt.Fprintf(stderr, "unknown personality %q (want flextoe or linux)\n", *personality)
		return 2
	}

	res := xval.Run(sc)
	fmt.Fprint(stdout, res.Format())
	if !res.Pass() {
		fmt.Fprintln(stderr, "cross-validation FAILED: analyzer diverges from stack ground truth")
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flextoe/internal/pcap"
)

// TestTraceModeSmoke is the CI smoke: the default mode exits 0, reports
// nonzero tracepoint counters and completed RPCs, and the written pcap
// parses back.
func TestTraceModeSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.pcap")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-w", out, "-ms", "5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, stderr.String(), stdout.String())
	}
	text := stdout.String()
	if strings.Contains(text, "completed 0 RPCs") {
		t.Fatalf("no RPCs completed:\n%s", text)
	}
	if !strings.Contains(text, "tracepoint counters:") {
		t.Fatalf("missing tracepoint section:\n%s", text)
	}
	if !strings.Contains(text, "flow analysis") || !strings.Contains(text, "rtt samples") {
		t.Fatalf("missing flow analysis section:\n%s", text)
	}
	if !strings.Contains(text, "capture matches the live tap") {
		t.Fatalf("pcap read-back diverged:\n%s", text)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	records := 0
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		records++
	}
	if records == 0 {
		t.Fatal("pcap is empty")
	}
}

// TestDiffModeSmoke: diff exits 0 for both personalities on a short run.
func TestDiffModeSmoke(t *testing.T) {
	for _, p := range []string{"flextoe", "linux"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"diff", "-personality", p, "-ms", "5"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("diff -personality=%s exited %d:\n%s%s",
				p, code, stdout.String(), stderr.String())
		}
		if !strings.Contains(stdout.String(), "retx-bytes") {
			t.Fatalf("diff output missing comparison table:\n%s", stdout.String())
		}
	}
}

func TestDiffModeRejectsUnknownPersonality(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"diff", "-personality", "beos"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2 for unknown personality", code)
	}
}

// Command flexload runs a configurable load scenario against a chosen
// stack: echo or KV workloads, closed or open loop, with loss injection —
// the memtier_benchmark of the simulated testbed.
package main

import (
	"flag"
	"fmt"
	"os"

	"flextoe/internal/apps"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

func main() {
	stack := flag.String("stack", "FlexTOE", "server stack: FlexTOE, Linux, TAS, Chelsio")
	workload := flag.String("workload", "echo", "workload: echo or kv")
	conns := flag.Int("conns", 16, "connections")
	pipeline := flag.Int("pipeline", 1, "requests in flight per connection")
	size := flag.Int("size", 64, "message size (echo)")
	cores := flag.Int("cores", 4, "server cores")
	durMs := flag.Int("ms", 50, "simulated milliseconds")
	loss := flag.Float64("loss", 0, "loss probability")
	rate := flag.Float64("rate", 0, "open-loop request rate (0 = closed loop)")
	flag.Parse()

	kind := testbed.StackKind(*stack)
	switch kind {
	case testbed.FlexTOE, testbed.Linux, testbed.TAS, testbed.Chelsio:
	default:
		fmt.Fprintf(os.Stderr, "unknown stack %q\n", *stack)
		os.Exit(1)
	}

	tb := testbed.New(netsim.SwitchConfig{LossProb: *loss, Seed: 7},
		testbed.MachineSpec{Name: "server", Kind: kind, Cores: *cores, Seed: 1},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 16, Seed: 2},
	)
	d := sim.Time(*durMs) * sim.Millisecond

	var completed uint64
	var latency interface {
		Percentile(p float64) int64
	}
	switch *workload {
	case "kv":
		kv := &apps.KVServer{AppCycles: 890, ValueLen: 32}
		kv.Serve(tb.M("server").Stack, 11211)
		cl := &apps.KVClient{KeyLen: 32, ValLen: 32, SetRatio: 0.1, Pipeline: *pipeline, Seed: 3}
		cl.Start(tb.M("client").Stack, tb.Addr("server", 11211), *conns)
		tb.Run(d)
		completed, latency = cl.Completed, cl.Latency
	default:
		srv := &apps.RPCServer{ReqSize: *size}
		srv.Serve(tb.M("server").Stack, 7777)
		if *rate > 0 {
			ol := &apps.OpenLoopClient{ReqSize: *size, Rate: *rate, Seed: 3}
			ol.Start(tb.M("client").Stack, tb.Addr("server", 7777), *conns)
			tb.Run(d)
			completed, latency = ol.Completed, ol.Latency
		} else {
			cl := &apps.ClosedLoopClient{ReqSize: *size, Pipeline: *pipeline}
			cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), *conns)
			tb.Run(d)
			completed, latency = cl.Completed, cl.Latency
		}
	}

	fmt.Printf("stack=%s workload=%s conns=%d pipeline=%d\n", kind, *workload, *conns, *pipeline)
	fmt.Printf("throughput: %.0f ops/s (%d ops in %dms)\n", float64(completed)/d.Seconds(), completed, *durMs)
	fmt.Printf("latency:    p50=%.1fus p99=%.1fus p99.99=%.1fus\n",
		float64(latency.Percentile(50))/1e6,
		float64(latency.Percentile(99))/1e6,
		float64(latency.Percentile(99.99))/1e6)
}

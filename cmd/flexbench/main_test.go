package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDispatchUsageErrors pins the CLI contract: unknown subcommands and
// bad flags print usage on stderr and exit 2, and never write to stdout.
func TestDispatchUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown subcommand", []string{"frobnicate"}},
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"serve unknown flag", []string{"serve", "-bogus"}},
		{"serve positional arg", []string{"serve", "extra"}},
		{"unknown id after flags", []string{"-cores", "2", "nope"}},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit code %d, want 2", tc.name, code)
		}
		if !strings.Contains(stderr.String(), "usage: flexbench") {
			t.Errorf("%s: stderr lacks usage:\n%s", tc.name, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("%s: usage error wrote to stdout: %q", tc.name, stdout.String())
		}
	}
}

func TestDispatchList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, id := range []string{"table1", "fig15", "fig17"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output lacks %q", id)
		}
	}
	if stderr.Len() != 0 {
		t.Errorf("-list wrote to stderr: %q", stderr.String())
	}
}

// Command flexbench regenerates the tables and figures of the FlexTOE
// paper's evaluation (§5) on the simulated testbed.
//
// Usage:
//
//	flexbench                 # run everything at quick scale
//	flexbench -full           # paper-scale parameters (slow)
//	flexbench -cores 8        # shard engines / parallelize cells up to 8 cores
//	flexbench table3 fig11    # run specific experiments
//	flexbench -list           # list experiment ids
//
// With -cores > 1 the scaling-sensitive experiments (Fig 8, 15, 17)
// additionally emit a harness-scaling table: wall-clock and speedup at
// 1/2/4/8 cores (capped at -cores). Results are bit-identical across
// core counts; only the wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flextoe/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at paper-scale parameters (slow)")
	cores := flag.Int("cores", 1, "max cores for engine sharding and cell-level parallelism")
	list := flag.Bool("list", false, "list experiment identifiers")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Desc)
		}
		return
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	scale.Cores = *cores

	runners := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		runners = runners[:0]
		for _, id := range args {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		tables := r.Run(scale)
		for _, t := range tables {
			fmt.Println(t.Format())
		}
		fmt.Printf("[%s completed in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}

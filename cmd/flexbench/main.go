// Command flexbench regenerates the tables and figures of the FlexTOE
// paper's evaluation (§5) on the simulated testbed, and serves the
// scenario job API.
//
// Usage:
//
//	flexbench                 # run everything at quick scale
//	flexbench -full           # paper-scale parameters (slow)
//	flexbench -cores 8        # shard engines / parallelize cells up to 8 cores
//	flexbench table3 fig11    # run specific experiments
//	flexbench -list           # list experiment ids
//	flexbench serve -addr :8080 -dir jobs -workers 4
//	                          # HTTP job service for declarative scenario
//	                          # specs (see internal/scenario/server and
//	                          # examples/scenarios/)
//
// With -cores > 1 the scaling-sensitive experiments (Fig 8, 15, 17)
// additionally emit a harness-scaling table: wall-clock and speedup at
// 1/2/4/8 cores (capped at -cores). Results are bit-identical across
// core counts; only the wall-clock changes.
//
// Unknown subcommands or flags print usage on stderr and exit 2.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"flextoe/internal/experiments"
	"flextoe/internal/scenario/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it dispatches to the experiment
// runner or the serve subcommand and returns the process exit code.
// Usage errors (unknown subcommand, unknown experiment id, bad flags)
// print usage on stderr and return 2, the conventional usage-error code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], stdout, stderr)
	}
	return runExperiments(args, stdout, stderr)
}

func usage(stderr io.Writer, fs *flag.FlagSet) {
	fmt.Fprintln(stderr, `usage: flexbench [-full] [-cores N] [-list] [experiment ids...]
       flexbench serve [-addr host:port] [-dir path] [-workers N]`)
	if fs != nil {
		fs.SetOutput(stderr)
		fs.PrintDefaults()
	}
}

func runExperiments(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flexbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // we print usage ourselves, once
	full := fs.Bool("full", false, "run at paper-scale parameters (slow)")
	cores := fs.Int("cores", 1, "max cores for engine sharding and cell-level parallelism")
	list := fs.Bool("list", false, "list experiment identifiers")
	if err := fs.Parse(args); err != nil {
		fmt.Fprintln(stderr, err)
		usage(stderr, fs)
		return 2
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", r.ID, r.Desc)
		}
		return 0
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	scale.Cores = *cores

	runners := experiments.All()
	if rest := fs.Args(); len(rest) > 0 {
		runners = runners[:0]
		for _, id := range rest {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(stderr, "unknown subcommand or experiment %q (try -list)\n", id)
				usage(stderr, nil)
				return 2
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		tables := r.Run(scale)
		for _, t := range tables {
			fmt.Fprintln(stdout, t.Format())
		}
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flexbench serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	addr := fs.String("addr", "localhost:8080", "listen address")
	dir := fs.String("dir", "scenario-jobs", "job persistence directory (empty disables persistence)")
	workers := fs.Int("workers", 0, "worker pool width (0 or above GOMAXPROCS clamps to GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		fmt.Fprintln(stderr, err)
		usage(stderr, fs)
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "serve takes no positional arguments (got %q)\n", fs.Args()[0])
		usage(stderr, fs)
		return 2
	}
	srv, err := server.New(server.Config{Dir: *dir, Workers: *workers, Log: stderr})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "flexbench scenario service listening on %s (workers=%d, dir=%q)\n",
		ln.Addr(), srv.Workers(), *dir)
	if err := http.Serve(ln, srv); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

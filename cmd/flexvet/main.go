// Command flexvet is the repo's contract checker: a multichecker that
// runs the five flextoe analysis passes over Go packages and exits
// non-zero on any unsuppressed diagnostic. It is the static half of the
// contracts doc.go states and CI's runtime gates probe:
//
//	viewretain  zero-copy view aliasing (PR 5)
//	poolown     pooled single-ownership (PR 3)
//	detrange    one-seed determinism (map order, wall clock, global rand)
//	hotclosure  zero-alloc event scheduling (Call-form APIs)
//	sharedstate cross-shard state inventory (reporting only; -sharedstate)
//
// Usage:
//
//	flexvet [-sharedstate] [-v] [packages]
//
// Package patterns are directories relative to the module root; the
// pattern ./... (the default) analyzes every package in the module.
// Suppression: a //flexvet:<pass> <why> comment on the diagnosed line or
// the line above silences that pass there; detrange also accepts
// //flexvet:ordered for order-insensitive map scans.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flextoe/internal/analysis/detrange"
	"flextoe/internal/analysis/flexanalysis"
	"flextoe/internal/analysis/hotclosure"
	"flextoe/internal/analysis/poolown"
	"flextoe/internal/analysis/sharedstate"
	"flextoe/internal/analysis/viewretain"
)

// Analyzers is the flexvet suite in reporting order.
var Analyzers = []*flexanalysis.Analyzer{
	viewretain.Analyzer,
	poolown.Analyzer,
	detrange.Analyzer,
	hotclosure.Analyzer,
	sharedstate.Analyzer,
}

func main() {
	report := flag.Bool("sharedstate", false, "print the shared-state inventory report instead of checking")
	verbose := flag.Bool("v", false, "list suppressed diagnostics too")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flexvet [-sharedstate] [-v] [packages]\n\nPasses:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if err := run(flag.Args(), *report, *verbose, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexvet:", err)
		os.Exit(2)
	}
}

func run(patterns []string, report, verbose bool, out *os.File) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, modPath, err := flexanalysis.ModuleRoot(cwd)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := flexanalysis.NewLoader()
	var pkgs []*flexanalysis.Package
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." {
				pat = ""
			}
		}
		dir := filepath.Join(root, filepath.FromSlash(pat))
		if recursive {
			loaded, err := loader.LoadAll(dir, joinImport(modPath, pat))
			if err != nil {
				return err
			}
			pkgs = append(pkgs, loaded...)
			continue
		}
		pkg, err := loader.Load(dir, joinImport(modPath, pat))
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
	}

	var inventory []sharedstate.Var
	bad := 0
	suppressed := 0
	for _, pkg := range pkgs {
		results, err := flexanalysis.RunPackage(pkg, Analyzers)
		if err != nil {
			return err
		}
		for _, res := range results {
			if vs, ok := res.Value.([]sharedstate.Var); ok {
				inventory = append(inventory, vs...)
			}
			suppressed += len(res.Suppressed)
			if report {
				continue
			}
			for _, d := range res.Diags {
				fmt.Fprintf(out, "%s: %s: %s\n", relPos(root, d.Posn(pkg.Fset)), d.Analyzer, d.Message)
				bad++
			}
			if verbose {
				for _, d := range res.Suppressed {
					fmt.Fprintf(out, "%s: %s: suppressed: %s\n", relPos(root, d.Posn(pkg.Fset)), d.Analyzer, d.Message)
				}
			}
		}
	}

	if report {
		fmt.Fprint(out, sharedstate.Report(inventory))
		return nil
	}
	if bad > 0 {
		fmt.Fprintf(out, "flexvet: %d diagnostic(s) in %d package(s)\n", bad, len(pkgs))
		os.Exit(1)
	}
	if verbose {
		fmt.Fprintf(out, "flexvet: %d package(s) clean (%d suppressed)\n", len(pkgs), suppressed)
	}
	return nil
}

func joinImport(modPath, rel string) string {
	rel = strings.Trim(filepath.ToSlash(rel), "/")
	if rel == "" || rel == "." {
		return modPath
	}
	return modPath + "/" + rel
}

// relPos shortens an absolute diagnostic position to be root-relative.
func relPos(root, pos string) string {
	if rel, err := filepath.Rel(root, pos); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return pos
}

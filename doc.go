// FlexTOE reproduction: a flexible TCP offload engine with fine-grained
// parallelism (NSDI 2022), rebuilt as a deterministic simulation in Go.
//
// See README.md for the architecture overview, cmd/flexbench for the
// evaluation harness, and examples/ for runnable applications.
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation as Go benchmarks.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("FlexTOE reproduction. Use:")
	fmt.Println("  go run ./cmd/flexbench      # regenerate the paper's tables and figures")
	fmt.Println("  go run ./cmd/flextrace      # tcpdump-style capture on a simulated run")
	fmt.Println("  go run ./cmd/flexload       # scenario load generator")
	fmt.Println("  go run ./examples/quickstart")
	os.Exit(0)
}

// FlexTOE reproduction: a flexible TCP offload engine with fine-grained
// parallelism (NSDI 2022), rebuilt as a deterministic simulation in Go.
//
// See README.md for the architecture overview, cmd/flexbench for the
// evaluation harness, and examples/ for runnable applications.
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation as Go benchmarks.
//
// # Zero-allocation hot path: pooling ownership rules
//
// The simulated data path is allocation-free in steady state, exactly as
// FlexTOE's real data path never allocates (§3.1). Four object classes
// are pooled, each with a single ownership rule:
//
//   - Events (internal/sim): the engine is a hierarchical timing wheel —
//     a near wheel of recycled bucket slices plus an overflow heap for
//     far deadlines (RTOs). Callbacks scheduled with the AtCall/AfterCall
//     forms carry a long-lived function value plus a per-event arg, so no
//     closure is allocated. An arg must never be a pooled object that its
//     owner could recycle before the event fires: the scheduler of the
//     event must hold (or transitively guarantee) a reference until it
//     runs. In particular, Engine.Immediately callbacks must not retain
//     pooled packets or segItems past their release point.
//
//   - segItems (internal/core): pooled per TOE and reference-counted.
//     allocSeg hands out one reference; nbiSubmit adds one for the NBI
//     reorder buffer (which may release the item synchronously or long
//     after the submitting stage moved on); putSeg drops one. The holder
//     of the last reference recycles the item. releaseSeg is the only
//     mid-pipeline drop point; it also releases the item's packet.
//
//   - Packets (internal/packet) and Frames (internal/netsim): a packet
//     has exactly one owner at a time. Building one (packet.Get, payload
//     carved from the shm.Slab via GrowPayload) and sending it transfers
//     ownership hop by hop through the fabric; whoever terminates its
//     journey calls packet.Release exactly once — the consuming stack
//     (FlexTOE pipeline after the payload DMA lands; the baseline stack
//     at the end of handleSeg; the TOE's control-delivery event after
//     ControlRx returns), or the drop point (switch loss/WRED/flood,
//     unconnected interface). Frames return to their pool at the
//     receiving MAC (netsim.ReleaseFrame) or with the dropped packet.
//     Senders must never retain or re-send a transmitted packet —
//     retransmissions rebuild from the payload buffer, matching the
//     paper's one-shot design. Release on a non-pooled &packet.Packet{}
//     literal is a no-op, so consumers release unconditionally and
//     control-plane/application code may keep using plain literals.
//
// The budget is enforced in CI by TestPipelineSteadyStateAllocBudget
// (internal/core): at most 2 heap allocations per simulated data segment
// end to end, measured with testing.AllocsPerRun under plain `go test`.
// BenchmarkPipelineSegment reports the live number (~0.06 at this
// writing) plus wall-clock ns per simulated segment; BENCH_pipeline.json
// records the trajectory.
//
// The ownership rule is statically enforced by flexvet/poolown (leaks,
// double release, use after release) and the closure-vs-Call discipline
// by flexvet/hotclosure; building with -tags flexdebug adds runtime
// double-release panics and payload poisoning on top (see the flexvet
// section below).
//
// # Connection state budget: million-connection tables and timers
//
// FlexTOE's scalability argument (§4.3, Table 5, Fig. 9) is that
// per-connection state is small and per-connection cost is paid only by
// active connections. The reproduction pins both halves as contracts
// (PR 8):
//
//   - Slab connection tables. Connections live in fixed 256-entry value
//     blocks ([]Conn in core, slot pointers in baseline), addressed by
//     slot id — pointers into a block stay valid forever, and there is no
//     per-connection heap object or map entry. Flows resolve through
//     internal/conntab: an open-addressed, linear-probed uint32 index
//     over packet.Flow.Hash() (the same CRC-32 the pre-processor
//     computes) with backward-shift deletion, so lookups are 0
//     allocations and deletions leave no tombstones. Freed slots are
//     reused FIFO, oldest-freed first: a just-torn-down id stays
//     quarantined behind the whole free ring while straggling in-flight
//     work drains. Establishment order, not hash order, drives every
//     fleet scan (CC polls, adaptive-OOO sweeps), which keeps churn from
//     perturbing event order — the same workload is bit-identical however
//     many connections lived and died before it (TestChurnDeterminism).
//
//   - Wheel-armed timers. Per-connection deadlines (RTO, persist probes,
//     FIN teardown, CC polls) are individual sim.Engine events armed only
//     while the connection can make progress: the data path raises a
//     timer kick on the transition into "needs service" (bytes in
//     flight, FIN unacked, zero window with staged data), deduped by a
//     per-connection hint, and the control plane arms a pooled timer
//     carrier (getTimer/putTimer, a poolown-enforced pool). A fired
//     carrier re-arms while service is still needed and is recycled the
//     moment it is not; the engine has no cancellation, so disarm is
//     lazy — an epoch check (liveness check in the baselines) kills stale
//     events. Consequence, and the Fig. 9 gate: idle connections schedule
//     nothing, and timer cost scales with activations, not with fleet
//     size (TestTimerCostIdleIndependence: the same active workload costs
//     the same events over 10^3 and 10^5 idle neighbours).
//
//   - Accounting and the budget. Table 5 totals 109 B of wire-protocol
//     state per connection, +32 B OOO extension, +32 B SACK scoreboard =
//     173 B. The Go Conn struct carries the same fields plus simulation
//     bookkeeping in 320 B; ConnStateBytes() charges slot blocks, the
//     flow index, and the free ring — NIC connection state — and
//     excludes host payload buffers, which are an application sizing
//     choice (ctrl.Plane.InstallEstablished therefore accepts shared
//     buffers for idle fleets). The CI gate (TestMillionConnStateBudget)
//     bounds the whole thing at 2x Table 5 — 346 B/conn at 10^6
//     established connections (~330 B measured). Teardown returns a slot
//     after a 4xMinRTO linger; churned fleets plateau
//     (TestChurnSteadyStateMemory) instead of growing.
//
//   - Listen-path hardening. Half-open connections per listener are
//     bounded (ListenBacklog; control-plane default 128, baseline default
//     unbounded for storm experiments, both overridable per
//     testbed.MachineSpec), with an optional accepted-SYN rate limit on
//     the FlexTOE control plane. Overflow drops are silent — no RST, the
//     peer sees SYN loss — and counted (SYNDrops, BacklogOverflows,
//     AcceptRateDrops), and every dial is either fully established or
//     counted dropped, uniformly across personalities (apitest
//     AcceptStormBacklog).
//
// The allocation half is enforced by TestConnTableAllocBudget
// (internal/core): 0 allocations per flow lookup, 0 per warm
// establish/teardown cycle, amortized < 0.02 per cold establish. The
// scaling sweep itself is cmd/flexbench fig9conn.
//
// # Datacenter fabric: topology model and ECMP hashing contract
//
// internal/fabric composes netsim switches into a two-tier leaf–spine
// Clos: each leaf is a rack's top-of-rack switch, every leaf connects to
// every spine, and hosts attach statically to one rack
// (testbed.MachineSpec.Rack → fabric.AttachHost). Each tier carries its
// own netsim.SwitchConfig, so ECN thresholds, WRED and queue caps are
// per-tier policy; leaf ports optionally record egress occupancy
// histograms (stats.LinearHist) beside per-port ECN/drop/peak counters.
//
// ECMP contract: a leaf that has not learned a destination MAC (leaves
// learn only their local rack) forwards onto uplink index
// packet.Flow.Hash() mod spines — the same CRC-32 the FlexTOE
// pre-processor computes on the NFP lookup engine. Every segment of one
// flow direction therefore takes one spine (per-flow ordering holds
// across the fabric), the reverse direction hashes independently, and
// path choice is a pure function of the 4-tuple: seeded reruns replay
// identical paths bit for bit.
//
// Pooled-Frame ownership extends across multi-hop forwarding unchanged:
// host NIC → leaf → spine → leaf → host NIC hands the same *Frame (and
// its packet) from hop to hop; exactly one party terminates the journey —
// the receiving stack, or whichever drop point (loss injection, tail
// drop, WRED, unknown-MAC flood, the ECMP loop guard) ends it — and that
// party releases frame and packet exactly once. The fabric adds hops,
// never owners.
//
// internal/fabric/workload drives the fabric (or the single-switch
// testbed) through api.Stack only: an open-loop Poisson flow generator
// with pluggable size distributions (fixed, web-search, data-mining),
// barrier-synchronized N-to-1 incast groups, and background cross-rack
// bulk traffic. Figure 17 (cmd/flexbench fig17) sweeps incast fan-in ×
// {CCNone, CCDCTCP, CCTimely} and tabulates ECMP spine balance.
//
// # Zero-copy socket views: ownership and aliasing contract
//
// api.Socket's primary data-path interface is the four view calls —
// Peek/Consume on receive, Reserve/Commit on transmit — mirroring
// libTOE's payload-buffer model (§3, Fig. 2): the application reads
// received bytes and stages transmit bytes in place in the per-socket
// payload ring, and only descriptors cross the host/NIC boundary.
// Send/Recv survive as copy-based compatibility wrappers over the views.
// The contract:
//
//   - Views are windows into the socket's payload ring, never copies.
//     Peek returns every readable byte as up to two slices (the ring may
//     wrap); Reserve returns up to n bytes of free transmit ring at the
//     append position. View slice contents may be read and written in
//     place.
//
//   - A Peek view is invalidated by the next Consume, a Reserve view by
//     the next Commit. Views must never be retained across those calls,
//     across event callbacks, or into deferred work (a core.Submit task,
//     an engine event): by the time deferred work runs, the window may
//     have been recycled for new data. Anything needed later is copied
//     out first (the KV server copies only ring-wrap-straddling frames,
//     through a reused scratch buffer).
//
//   - Repeated Peek/Reserve without an intervening Consume/Commit return
//     stable views of the same window.
//
//   - Commit publishes the next n ring bytes as they are; an application
//     whose payload content matters stages it via Reserve first, one
//     that pads (fixed-size RPC benchmarks, bulk streams) may commit
//     without staging.
//
// Composition with the pooling rules above: the RX payload ring is
// written by the data-path (DMA from pooled packets) strictly ahead of
// the bytes Peek exposes, and the TX ring is read by the data-path
// (segment build from pooled packets, retransmissions included) only
// below the committed head — so application views and data-path DMA
// never alias the same region while both are live. Retransmissions
// rebuild from the TX payload ring, which is why committed bytes must
// stay untouched until acknowledged (DescTxFree) — the same one-shot
// rule packets follow. Cost model: libTOE charges descriptor/doorbell
// cycles but no PerByte copy cost on the view path (Table 1's split of
// what offload can and cannot eliminate); the baseline personalities
// implement the same view semantics for binary compatibility but keep
// charging the kernel copy, which their architecture cannot avoid.
//
// The app-layer budget is enforced in CI by TestAppSteadyStateAllocBudget
// (internal/apps): at most 2 heap allocations per steady-state RPC
// request-response end to end; the cross-personality semantics
// (including view aliasing rules) are pinned by the conformance suite in
// internal/api/apitest. The no-retention rule is statically enforced by
// flexvet/viewretain: storing a view into a struct field or package
// variable, capturing it in an escaping closure, or touching it after the
// invalidating Consume/Commit is a build-breaking diagnostic.
//
// # Sharding contract: conservative-lookahead parallel engine
//
// The simulation runs on a sim.Group of N engine shards (PR 7). Shard 0
// owns the network — every switch, the fabric, background timers — and
// each machine (host + TOE + libTOE + apps) lives wholly on one shard,
// rack-affine on the fabric (machines in the same rack share a shard) and
// round-robin on the single-switch testbed. N=1 bypasses the group
// machinery entirely and is byte-for-byte the serial timing wheel.
//
// Lookahead rule. The only cross-shard edges are frames in flight on
// host↔switch links, and every such boundary link registers its minimum
// delivery latency with Group.NoteBoundary (propagation delay + the ≥1 ps
// serialization floor that sim.Resource.Reserve enforces). The group
// lookahead L is the minimum over boundaries. Each window executes events
// in [m, min(m+L, t+1)) where m is the global minimum next-event time: a
// frame transmitted during the window cannot arrive before the window
// ends, so shards run the whole window with no coordination, then
// exchange injected events at a barrier (run phase, drain phase).
// Engine.Inject therefore requires its target time to be at or beyond the
// current window end — the link model guarantees this by construction.
// Corollary: code on the data path must never deliver anything to another
// machine "now"; everything crosses a link with nonzero latency.
//
// Cross-shard frame ownership handoff. Iface.Send splits delivery: the
// sender-side wire-egress event (queue debit) stays on the sending shard
// and the arrival event crosses through the group's per-pair SPSC queue.
// Both carry the same delivery key the serial engine would have used, so
// every queue-occupancy read orders identically in both modes. On
// arrival, the receiving shard adopts the frame and its packet into its
// own pools (packet.Pool.Adopt / FramePool adoption) before any consumer
// sees them — the single-owner release rule above is unchanged; adoption
// only redirects which shard's freelist the eventual Release feeds.
//
// Per-shard pools and stats. Pools, freelists and counters on the hot
// path are single-threaded by design; sharding keeps them that way by
// giving each shard its own instance (Engine.Local — packet pools, frame
// pools, TOE work rings, per-stack segment freelists). Package-level
// defaults survive for single-threaded entry points and are annotated
// `//flexvet:sharedstate shard-confined` (inventoried in SHAREDSTATE.md).
// Measurement state follows the same rule: each shard accumulates its own
// histograms/counters and readout methods merge them in construction
// order, so merged results are identical at every shard count.
//
// Determinism. Same-instant events order by (time, delivery key,
// schedule sequence); delivery keys are linkID<<32|txSeq, unique per
// in-flight frame and identical in serial and sharded mode. Window
// placement, worker count (capped at GOMAXPROCS-1, shards multiplexed
// round-robin; GOMAXPROCS=1 runs the windows inline sequentially) and
// source-queue drain order are all result-invariant. The gate is
// TestParallelMatchesSerial (internal/experiments): counters, tracepoint
// hits and app results bit-identical to serial at 2 and 4 shards, and
// sharded reruns bit-identical including per-shard event counts; CI runs
// it under the race detector at GOMAXPROCS 2 and 8.
//
// # Passive flow analysis: the tap observation contract
//
// internal/flowmon is a streaming per-flow TCP analyzer that attaches to
// any packet vantage point — a netsim.Iface Tx/RxTap, the core.TOE
// PacketTap, or a pcap capture (FeedPCAP) — and reconstructs what the
// stacks know from nothing but the wire: RTT (timestamp echoes plus
// SEQ/ACK probes, Karn-invalidated across retransmission), retransmits
// split go-back-N vs selective by SACK-scoreboard inference over the
// SendNext high-water model, reassembly accept/drop decisions by exact
// re-execution of the tcpseg interval machinery, dupack runs under the
// observed stack's own counting rule, zero-window stalls, ECN marks, and
// goodput timelines. The contract has three clauses:
//
//   - Observation only, no ownership. A tap callback receives the pooled
//     *packet.Packet mid-flight: the analyzer reads it synchronously and
//     retains nothing — no packet, no payload slice, no frame — so the
//     pooling ownership rules above are untouched (the tap adds a reader,
//     never an owner). netsim taps charge zero simulated cost and
//     schedule nothing: attaching an analyzer leaves the simulation
//     bit-identical down to per-engine event counts
//     (TestAnalyzerTapZeroCost, xval.TestTapsDoNotPerturbSimulation). The
//     TOE PacketTap charges PacketTapCost cycles, modeling a real on-NIC
//     mirror. Observation is one-pass: a packet is seen once, at
//     NIC-delivery time; the analyzer never peeks at stack state.
//
//   - Zero-alloc streaming. Flow records live in fixed-size slab blocks
//     addressed through the same conntab index the data path uses;
//     RTT probes, SACK scoreboards, OOO interval sets and timelines are
//     fixed arrays inside the record. Steady-state observation allocates
//     nothing; the CI gate is TestFlowmonAllocBudget (≤ 2 allocations per
//     packet under AllocsPerRun, covering slab growth). Reports are
//     deterministic by construction — establishment-ordered flow scans,
//     byte-identical Format across reruns and across Fleet shard counts.
//
//   - Asserted inference tolerances. Cross-validation against stack
//     ground truth (internal/flowmon/xval, cmd/flextrace diff) is part of
//     CI, with the divergence budget stated per counter and enforced,
//     after quiescing the workload (counters snapshot mid-flight measure
//     queue depth, not inference): sender-tap retransmit segments/bytes
//     exact; receiver-tap reassembly accepts/drops exact at trace loss
//     rates, 2/conn + 0.5% under sustained ≥1% loss (receive-window trims
//     a passive observer cannot see); dupacks 2/conn + 5% (in-flight
//     accounting resets across recovery episodes). Tightening a stack's
//     counting rule means updating the analyzer's matching rule, not the
//     tolerance.
//
// # Scenario service: declarative specs, async jobs, canonical results
//
// internal/scenario turns the hand-built experiment harnesses into data:
// a JSON Spec names a topology (single-switch testbed or leaf-spine
// fabric), machines (any stack personality with its per-machine knobs),
// workloads (bulk, rpc, kv, flowgen, incast, background), injected
// loss/reorder/duplication, seeds, duration/warmup, and a measurement
// block (counter groups, flowmon attach points or per-rack fleets,
// per-flow records). internal/scenario/server exposes the runner as an
// HTTP job API (`flexbench serve`): POST a spec, follow the run as an
// NDJSON stream of progress lines — plus per-flow records when the
// measure block sets per_flow — and fetch the canonical result. The
// contract has three clauses:
//
//   - Strict validation, then exact construction. Parse rejects unknown
//     fields, out-of-range probabilities, dangling machine references,
//     duplicate listeners, and flowmon attach conflicts (an Iface holds
//     one tap — duplicate attaches and fleets-plus-explicit-taps are
//     spec errors, not silent overwrites). Build compiles the Spec
//     through the same testbed/fabric/workload constructors the figure
//     runners use, in spec order; Fig 15c and Fig 17a run through this
//     builder, so spec-built scenarios are proven equivalent to the
//     committed tables bit for bit.
//
//   - Canonical, deterministic results. A Result marshals to one
//     canonical byte sequence (Result.Canonical); the same spec produces
//     byte-identical payloads on rerun, at any engine shard count, at
//     any server worker-pool width, and across server restarts
//     (TestRerunIsByteIdentical, TestShardCountInvariance, the CI
//     scenario-serve job). The scenario packages sit inside the flexvet
//     determinism perimeter: no wall-clock reads, no global randomness,
//     no map-order iteration — job ids derive from a submission sequence
//     number plus a hash of the spec bytes, and validation, build, and
//     readout all walk spec-ordered slices.
//
//   - Async jobs with bounded workers. Jobs run on a worker pool clamped
//     to GOMAXPROCS (the runCells rationale: more runnable workers than
//     CPUs buys nothing for CPU-bound simulation); cancellation lands at
//     the next progress boundary (32 chunks per run); specs and results
//     persist to disk, so a restarted server serves finished jobs
//     byte-identically and resumes interrupted ones. Example specs and
//     curl workflows live in examples/scenarios/.
//
// # Static enforcement: flexvet
//
// The contracts above — and the one-seed determinism rule stated in
// ROADMAP.md — are enforced at compile time by cmd/flexvet, a
// multichecker over five passes (internal/analysis/...), run as a
// blocking CI job and in-process by `go test ./internal/analysis`:
//
//   - viewretain: Peek/Reserve/PayloadBuf.Slices views must stay local —
//     never stored, never captured by an escaping closure, never used
//     after the invalidating Consume/Commit on the same socket.
//   - poolown: pooled objects (packet.Get, netsim frames, shm
//     freelists/slabs, segItems) must be released exactly once or handed
//     off exactly once per acquisition.
//   - detrange: simulation-critical packages must not range over maps
//     (iteration order would leak into the event order), call wall-clock
//     time, or draw from global/unseeded randomness.
//   - hotclosure: scheduling a func literal where an allocation-free
//     *Call variant exists (At/AtCall and friends) is flagged.
//   - sharedstate: reporting-only; inventories package-level mutable
//     state into SHAREDSTATE.md and classifies each variable against the
//     sharding contract above (shard-confined defaults included).
//
// Suppression convention: a deliberate exception is annotated in place
// with a machine-checked comment on the diagnosed line or the line above,
//
//	//flexvet:<pass> <why>
//
// e.g. `//flexvet:hotclosure connection establishment runs once per
// connection, not per event`. For order-insensitive map scans (pure
// counts, sums) the detrange alias `//flexvet:ordered <why>` reads
// better. The <why> is mandatory prose for the reviewer; an annotation
// without a justification should be rejected in review.
//
// The runtime complement is the flexdebug build tag: `go test -tags
// flexdebug ./...` makes every freelist panic on double release, fills
// released packet payloads and slab buffers with 0xDB poison (so stale
// reads see garbage and stale writes panic at the next Get), and makes
// the fabric panic on transmitting a released frame.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("FlexTOE reproduction. Use:")
	fmt.Println("  go run ./cmd/flexbench      # regenerate the paper's tables and figures")
	fmt.Println("  go run ./cmd/flexbench serve  # scenario job service (examples/scenarios/)")
	fmt.Println("  go run ./cmd/flextrace      # tcpdump-style capture on a simulated run")
	fmt.Println("  go run ./cmd/flexload       # scenario load generator")
	fmt.Println("  go run ./examples/quickstart")
	os.Exit(0)
}

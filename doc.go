// FlexTOE reproduction: a flexible TCP offload engine with fine-grained
// parallelism (NSDI 2022), rebuilt as a deterministic simulation in Go.
//
// See README.md for the architecture overview, cmd/flexbench for the
// evaluation harness, and examples/ for runnable applications.
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation as Go benchmarks.
//
// # Zero-allocation hot path: pooling ownership rules
//
// The simulated data path is allocation-free in steady state, exactly as
// FlexTOE's real data path never allocates (§3.1). Four object classes
// are pooled, each with a single ownership rule:
//
//   - Events (internal/sim): the engine is a hierarchical timing wheel —
//     a near wheel of recycled bucket slices plus an overflow heap for
//     far deadlines (RTOs). Callbacks scheduled with the AtCall/AfterCall
//     forms carry a long-lived function value plus a per-event arg, so no
//     closure is allocated. An arg must never be a pooled object that its
//     owner could recycle before the event fires: the scheduler of the
//     event must hold (or transitively guarantee) a reference until it
//     runs. In particular, Engine.Immediately callbacks must not retain
//     pooled packets or segItems past their release point.
//
//   - segItems (internal/core): pooled per TOE and reference-counted.
//     allocSeg hands out one reference; nbiSubmit adds one for the NBI
//     reorder buffer (which may release the item synchronously or long
//     after the submitting stage moved on); putSeg drops one. The holder
//     of the last reference recycles the item. releaseSeg is the only
//     mid-pipeline drop point; it also releases the item's packet.
//
//   - Packets (internal/packet) and Frames (internal/netsim): a packet
//     has exactly one owner at a time. Building one (packet.Get, payload
//     carved from the shm.Slab via GrowPayload) and sending it transfers
//     ownership hop by hop through the fabric; whoever terminates its
//     journey calls packet.Release exactly once — the consuming stack
//     (FlexTOE pipeline after the payload DMA lands; the baseline stack
//     at the end of handleSeg; the TOE's control-delivery event after
//     ControlRx returns), or the drop point (switch loss/WRED/flood,
//     unconnected interface). Frames return to their pool at the
//     receiving MAC (netsim.ReleaseFrame) or with the dropped packet.
//     Senders must never retain or re-send a transmitted packet —
//     retransmissions rebuild from the payload buffer, matching the
//     paper's one-shot design. Release on a non-pooled &packet.Packet{}
//     literal is a no-op, so consumers release unconditionally and
//     control-plane/application code may keep using plain literals.
//
// The budget is enforced in CI by TestPipelineSteadyStateAllocBudget
// (internal/core): at most 2 heap allocations per simulated data segment
// end to end, measured with testing.AllocsPerRun under plain `go test`.
// BenchmarkPipelineSegment reports the live number (~0.06 at this
// writing) plus wall-clock ns per simulated segment; BENCH_pipeline.json
// records the trajectory.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("FlexTOE reproduction. Use:")
	fmt.Println("  go run ./cmd/flexbench      # regenerate the paper's tables and figures")
	fmt.Println("  go run ./cmd/flextrace      # tcpdump-style capture on a simulated run")
	fmt.Println("  go run ./cmd/flexload       # scenario load generator")
	fmt.Println("  go run ./examples/quickstart")
	os.Exit(0)
}

package fabric_test

import (
	"testing"

	"flextoe/internal/apps"
	"flextoe/internal/fabric"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

// fabricPair builds a two-rack fabric with one machine per rack.
func fabricPair(kind testbed.StackKind, spines int, seed uint64) *testbed.Testbed {
	return testbed.NewFabric(fabric.Config{
		Leaves: 2, Spines: spines,
		QueueHistUnit: 1448,
		Seed:          seed,
	},
		testbed.MachineSpec{Name: "a", Kind: kind, Cores: 2, Rack: 0, BufSize: 1 << 17, Seed: seed},
		testbed.MachineSpec{Name: "b", Kind: kind, Cores: 2, Rack: 1, BufSize: 1 << 17, Seed: seed + 1},
	)
}

// TestFabricCrossRackDelivery: a bulk stream between racks traverses
// host → leaf → spine → leaf → host and delivers bytes.
func TestFabricCrossRackDelivery(t *testing.T) {
	tb := fabricPair(testbed.FlexTOE, 2, 11)
	sink := &apps.BulkSink{}
	sink.Serve(tb.M("a").Stack, 9000)
	snd := &apps.BulkSender{}
	snd.Start(tb.M("b").Stack, tb.Addr("a", 9000))
	tb.Run(4 * sim.Millisecond)

	if sink.Received == 0 {
		t.Fatal("no bytes delivered across the fabric")
	}
	spineBytes := tb.Fabric.SpineTxBytes()
	var total uint64
	for _, b := range spineBytes {
		total += b
	}
	if total == 0 {
		t.Fatal("no bytes traversed the spine tier")
	}
	// One connection direction = one flow = exactly one spine carries the
	// data (the ECMP contract); the reverse (ACK) direction hashes
	// independently and may share or use the other spine.
	for _, sw := range tb.Fabric.Spines {
		if sw.Flooded > 0 {
			t.Fatalf("spine %s flooded %d frames: MAC tables incomplete", sw.Name, sw.Flooded)
		}
	}
	for _, sw := range tb.Fabric.Leaves {
		if sw.Flooded > 0 {
			t.Fatalf("leaf %s flooded %d frames", sw.Name, sw.Flooded)
		}
		if sw.ECMPLoopDrops > 0 {
			t.Fatalf("leaf %s hit the ECMP loop guard %d times: routing error", sw.Name, sw.ECMPLoopDrops)
		}
	}
}

// TestFabricECMPSpreadsFlows: many connections from distinct ports hash
// across every spine.
func TestFabricECMPSpreadsFlows(t *testing.T) {
	tb := fabricPair(testbed.FlexTOE, 2, 23)
	sink := apps.NewPerConnBulkSink()
	sink.Serve(tb.M("a").Stack, 9000)
	for i := 0; i < 16; i++ {
		snd := &apps.BulkSender{}
		snd.Start(tb.M("b").Stack, tb.Addr("a", 9000))
	}
	tb.Run(3 * sim.Millisecond)
	for s, b := range tb.Fabric.SpineTxBytes() {
		if b == 0 {
			t.Fatalf("spine %d carried no bytes across 16 flows: ECMP not spreading", s)
		}
	}
	if picks := tb.Fabric.Leaves[1].ECMPPicks; picks == 0 {
		t.Fatal("sender leaf resolved no forwards via ECMP")
	}
}

// TestFabricBaselineStackUnmodified: the Linux personality runs the same
// RPC workload over the fabric with zero stack changes.
func TestFabricBaselineStackUnmodified(t *testing.T) {
	tb := fabricPair(testbed.Linux, 2, 31)
	srv := &apps.RPCServer{ReqSize: 64}
	srv.Serve(tb.M("a").Stack, 7777)
	cl := &apps.ClosedLoopClient{ReqSize: 64, Pipeline: 4}
	cl.Start(tb.M("b").Stack, tb.Addr("a", 7777), 4)
	tb.Run(4 * sim.Millisecond)
	if cl.Completed == 0 {
		t.Fatal("Linux personality completed no RPCs over the fabric")
	}
}

// TestFabricQueueStats: ECN marks and occupancy histograms accumulate on
// the congested leaf egress port, and ResetQueueStats clears the peak.
func TestFabricQueueStats(t *testing.T) {
	fc := fabric.Config{
		Leaves: 2, Spines: 2,
		QueueHistUnit: 1448,
		Leaf:          netsim.SwitchConfig{ECNThresholdBytes: 20_000},
		Seed:          41,
	}
	tb := testbed.NewFabric(fc,
		testbed.MachineSpec{Name: "agg", Kind: testbed.FlexTOE, Cores: 2, Rack: 0, BufSize: 1 << 17, Seed: 41},
		testbed.MachineSpec{Name: "s1", Kind: testbed.FlexTOE, Cores: 2, Rack: 1, BufSize: 1 << 17, Seed: 42},
		testbed.MachineSpec{Name: "s2", Kind: testbed.FlexTOE, Cores: 2, Rack: 1, BufSize: 1 << 17, Seed: 43},
	)
	sink := &apps.BulkSink{}
	sink.Serve(tb.M("agg").Stack, 9000)
	for _, name := range []string{"s1", "s2"} {
		for i := 0; i < 4; i++ {
			snd := &apps.BulkSender{}
			snd.Start(tb.M(name).Stack, tb.Addr("agg", 9000))
		}
	}
	tb.Run(4 * sim.Millisecond)

	port := tb.Fabric.LeafPort("agg")
	if port.PeakQueueBytes == 0 {
		t.Fatal("no queue ever built at the incast port")
	}
	hist, unit := port.QueueHist()
	if hist == nil || unit != 1448 || hist.Count() == 0 {
		t.Fatalf("occupancy histogram not recording (unit=%d)", unit)
	}
	leafMarks, _ := tb.Fabric.ECNMarks()
	if leafMarks == 0 {
		t.Fatal("2:1 fan-in above K produced no ECN marks")
	}
	if port.ECNMarks == 0 {
		t.Fatal("per-port ECN counter not maintained")
	}
	tb.Fabric.ResetQueueStats()
	if port.PeakQueueBytes != 0 {
		t.Fatal("ResetQueueStats left a peak marker")
	}
	h, _ := port.QueueHist()
	if h.Count() != 0 {
		t.Fatal("ResetQueueStats left histogram samples")
	}
}

package workload_test

import (
	"testing"

	"flextoe/internal/api"
	"flextoe/internal/fabric"
	"flextoe/internal/fabric/workload"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/testbed"
)

// TestSizeDistSanity pins the shape of the heavy-tail distributions: the
// data-mining median is tiny, the web-search median tens of KB, and both
// stay within their tabulated support.
func TestSizeDistSanity(t *testing.T) {
	for _, tc := range []struct {
		d        workload.SizeDist
		min, max int
		medLo    int
		medHi    int
	}{
		{workload.WebSearch(), 1, 30e6, 10_000, 200_000},
		{workload.DataMining(), 1, 1e9, 200, 5_000},
	} {
		r := stats.NewRNG(7)
		var samples []float64
		for i := 0; i < 20000; i++ {
			s := tc.d.Sample(r)
			if s < tc.min || s > tc.max {
				t.Fatalf("%s: sample %d outside [%d, %d]", tc.d.Name(), s, tc.min, tc.max)
			}
			samples = append(samples, float64(s))
		}
		med := stats.PercentileOf(samples, 50)
		if med < float64(tc.medLo) || med > float64(tc.medHi) {
			t.Fatalf("%s: median %.0f outside [%d, %d]", tc.d.Name(), med, tc.medLo, tc.medHi)
		}
		// Heavy tail: p99 must dwarf the median.
		if p99 := stats.PercentileOf(samples, 99); p99 < 20*med {
			t.Fatalf("%s: p99 %.0f not heavy-tailed vs median %.0f", tc.d.Name(), p99, med)
		}
	}
	if workload.Fixed(4096).Sample(stats.NewRNG(1)) != 4096 {
		t.Fatal("Fixed distribution not a point mass")
	}
}

// twoRack builds a sender (rack 1) / receiver (rack 0) fabric testbed.
func twoRack(kind testbed.StackKind, seed uint64) *testbed.Testbed {
	return testbed.NewFabric(fabric.Config{Leaves: 2, Spines: 2, Seed: seed},
		testbed.MachineSpec{Name: "snd", Kind: kind, Cores: 2, Rack: 1, BufSize: 1 << 17, Seed: seed},
		testbed.MachineSpec{Name: "rcv", Kind: kind, Cores: 2, Rack: 0, BufSize: 1 << 17, Seed: seed + 1},
	)
}

// TestFlowGenCompletesAllFlows runs a bounded open-loop generator over a
// two-rack fabric and requires every flow to finish with a recorded FCT.
func TestFlowGenCompletesAllFlows(t *testing.T) {
	tb := twoRack(testbed.FlexTOE, 5)
	g := &workload.FlowGen{
		Rate:     2e5,
		Size:     workload.Fixed(8192),
		Conns:    8,
		MaxFlows: 50,
		Seed:     5,
	}
	g.Serve(tb.M("rcv").Stack, 9100)
	g.Start([]api.Stack{tb.M("snd").Stack}, tb.Addr("rcv", 9100))
	tb.Run(20 * sim.Millisecond)

	if !g.Done() {
		t.Fatalf("only %d/%d flows completed", g.Completed(), g.MaxFlows)
	}
	if g.BytesCompleted() != 50*8192 {
		t.Fatalf("BytesCompleted = %d, want %d", g.BytesCompleted(), 50*8192)
	}
	if g.FCT().Count() != 50 {
		t.Fatalf("FCT samples = %d, want 50", g.FCT().Count())
	}
	if g.FCT().Percentile(50) <= 0 {
		t.Fatal("non-positive median FCT")
	}
}

// TestFlowGenHeavyTailOverLinux drives the web-search distribution over
// the Linux personality: the workload layer must be stack-agnostic.
func TestFlowGenHeavyTailOverLinux(t *testing.T) {
	tb := twoRack(testbed.Linux, 9)
	g := &workload.FlowGen{
		Rate:     5e4,
		Size:     workload.WebSearch(),
		Conns:    4,
		MaxFlows: 12,
		Seed:     9,
	}
	g.Serve(tb.M("rcv").Stack, 9100)
	g.Start([]api.Stack{tb.M("snd").Stack}, tb.Addr("rcv", 9100))
	tb.Run(120 * sim.Millisecond)
	if g.Completed() == 0 {
		t.Fatal("no heavy-tail flows completed over the Linux personality")
	}
}

// TestIncastRoundsComplete runs an 8-to-1 incast group and checks the
// barrier accounting: every round delivers exactly N×BlockBytes.
func TestIncastRoundsComplete(t *testing.T) {
	specs := []testbed.MachineSpec{
		{Name: "agg", Kind: testbed.FlexTOE, Cores: 2, Rack: 0, BufSize: 1 << 17, Seed: 60},
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, testbed.MachineSpec{
			Name: "s" + string(rune('0'+i)), Kind: testbed.FlexTOE, Cores: 2,
			Rack: 1 + i%2, BufSize: 1 << 17, Seed: uint64(61 + i),
		})
	}
	tb := testbed.NewFabric(fabric.Config{Leaves: 3, Spines: 2, Seed: 59}, specs...)

	g := &workload.IncastGroup{BlockBytes: 16384, Rounds: 5}
	g.Serve(tb.M("agg").Stack, 9200)
	senders := make([]api.Stack, 0, 8)
	for i := 0; i < 8; i++ { // 2 connections per sender host
		senders = append(senders, tb.M("s"+string(rune('0'+i%4))).Stack)
	}
	g.Start(senders, tb.Addr("agg", 9200))
	tb.Run(40 * sim.Millisecond)

	if g.RoundsDone != 5 {
		t.Fatalf("completed %d/5 rounds", g.RoundsDone)
	}
	if want := uint64(5 * 8 * 16384); g.BytesReceived != want {
		t.Fatalf("BytesReceived = %d, want %d", g.BytesReceived, want)
	}
	if g.RoundFCT.Count() != 5 {
		t.Fatalf("round FCT samples = %d, want 5", g.RoundFCT.Count())
	}
}

// TestBackgroundTraffic starts cross-rack bulk noise and verifies it
// moves bytes.
func TestBackgroundTraffic(t *testing.T) {
	tb := twoRack(testbed.FlexTOE, 77)
	bg := workload.StartBackground([]api.Stack{tb.M("snd").Stack}, tb.M("rcv").Stack, 9300, 2)
	tb.Run(3 * sim.Millisecond)
	if bg.Sink.Received == 0 {
		t.Fatal("background traffic delivered nothing")
	}
}

// Package workload drives datacenter traffic patterns over any api.Stack:
// an open-loop flow generator with Poisson arrivals and pluggable flow
// size distributions (fixed, web-search and data-mining heavy tails),
// N-to-1 incast groups with barrier-synchronized rounds, and background
// cross-rack bulk traffic. Workloads speak only api.Stack/api.Socket, so
// FlexTOE, Linux-, TAS- and Chelsio-personality machines run them
// unmodified over the single-switch testbed or the leaf–spine fabric.
//
// Flows are multiplexed over a pool of persistent connections (datacenter
// RPC style, and the regime FlexTOE's Table 5 state budget targets): each
// flow is an 8-byte header [id:4][size:4] followed by size payload bytes;
// the sink parses the stream per connection and records flow completion
// time from the flow's *arrival* at the generator — queueing for a busy
// connection counts against FCT, as in slowdown-style evaluations.
package workload

import (
	"encoding/binary"
	"math"

	"flextoe/internal/api"
	"flextoe/internal/apps"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
)

// ---------------------------------------------------------------------
// Flow-size distributions.
// ---------------------------------------------------------------------

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	Name() string
	Sample(r *stats.RNG) int
}

// fixedDist is a degenerate point mass.
type fixedDist int

func (d fixedDist) Name() string          { return "fixed" }
func (d fixedDist) Sample(*stats.RNG) int { return int(d) }
func Fixed(bytes int) SizeDist            { return fixedDist(bytes) }

type cdfPoint struct {
	bytes float64
	cum   float64
}

// cdfDist samples from an empirical CDF with log-linear interpolation
// between the tabulated points (sizes span five orders of magnitude, so
// linear interpolation would put nearly all mass at the segment tops).
type cdfDist struct {
	name string
	pts  []cdfPoint
}

func (d *cdfDist) Name() string { return d.name }

func (d *cdfDist) Sample(r *stats.RNG) int {
	u := r.Float64()
	prev := cdfPoint{bytes: d.pts[0].bytes, cum: 0}
	for _, p := range d.pts {
		if u <= p.cum {
			if p.cum == prev.cum || p.bytes == prev.bytes {
				return int(p.bytes)
			}
			frac := (u - prev.cum) / (p.cum - prev.cum)
			return int(prev.bytes * math.Pow(p.bytes/prev.bytes, frac))
		}
		prev = p
	}
	return int(d.pts[len(d.pts)-1].bytes)
}

// WebSearch approximates the DCTCP web-search workload: query/short-
// message dominated by count, with a heavy tail of multi-megabyte
// responses carrying most of the bytes.
func WebSearch() SizeDist {
	return &cdfDist{name: "websearch", pts: []cdfPoint{
		{6e3, 0.15}, {13e3, 0.20}, {19e3, 0.30}, {33e3, 0.40},
		{53e3, 0.53}, {133e3, 0.60}, {667e3, 0.70}, {1.3e6, 0.80},
		{3.3e6, 0.90}, {6.7e6, 0.95}, {20e6, 0.98}, {30e6, 1.0},
	}}
}

// DataMining approximates the VL2 data-mining workload: ~80% of flows
// under 10 KB, with a far heavier tail than web-search.
func DataMining() SizeDist {
	return &cdfDist{name: "datamining", pts: []cdfPoint{
		{180, 0.10}, {216, 0.20}, {560, 0.30}, {900, 0.40},
		{1.1e3, 0.50}, {1.87e3, 0.60}, {3.16e3, 0.70}, {1e4, 0.80},
		{4e5, 0.90}, {3.16e6, 0.95}, {1e8, 0.98}, {1e9, 1.0},
	}}
}

// ---------------------------------------------------------------------
// Open-loop flow generator.
// ---------------------------------------------------------------------

// FlowGen issues flows open-loop: Poisson arrivals at Rate flows/second,
// each flow Size.Sample bytes, assigned round-robin to a pool of
// persistent connections. Serve installs the sink side (callable on
// several machines); Start opens the connections and begins arrivals.
type FlowGen struct {
	Rate     float64  // flow arrivals per second
	Size     SizeDist // flow size distribution
	Conns    int      // connection pool size (default: one per sender)
	MaxFlows int      // stop generating after this many arrivals (0 = never)
	Seed     uint64

	// Measurement.
	Started        uint64
	Completed      uint64
	BytesCompleted uint64
	BytesReceived  uint64
	FCT            *stats.Histogram // picoseconds, arrival → last byte at sink
	LastDone       sim.Time         // completion instant of the latest flow

	eng   *sim.Engine
	rng   *stats.RNG
	conns []*genConn
	next  int
	start []sim.Time
	size  []int
}

type pendingFlow struct {
	id        uint32
	remaining int
	hdrLeft   int
}

type genConn struct {
	g       *FlowGen
	sock    api.Socket
	pending []pendingFlow
	head    int
	hdr     [8]byte
}

// Serve installs the flow sink on a stack port. Call before Start; may be
// called on multiple machines (the generator spreads connections over all
// targets passed to Start).
func (g *FlowGen) Serve(stack api.Stack, port uint16) {
	stack.Listen(port, func(sock api.Socket) {
		sc := &sinkConn{g: g, sock: sock}
		sock.OnReadable(sc.drain)
	})
}

// Start opens the connection pool (connection i: senders[i%len] →
// targets[i%len]) and schedules the Poisson arrival process.
func (g *FlowGen) Start(eng *sim.Engine, senders []api.Stack, targets ...api.Addr) {
	g.eng = eng
	g.rng = stats.NewRNG(g.Seed ^ 0xf10a6e)
	if g.FCT == nil {
		g.FCT = stats.NewHistogram()
	}
	if g.Conns <= 0 {
		g.Conns = len(senders)
	}
	for i := 0; i < g.Conns; i++ {
		gc := &genConn{g: g}
		g.conns = append(g.conns, gc)
		stack := senders[i%len(senders)]
		target := targets[i%len(targets)]
		stack.Dial(target, func(sock api.Socket) {
			gc.sock = sock
			sock.OnWritable(gc.pump)
			gc.pump()
		})
	}
	g.scheduleArrival()
}

func (g *FlowGen) scheduleArrival() {
	if g.MaxFlows > 0 && int(g.Started) >= g.MaxFlows {
		return
	}
	gap := sim.Time(g.rng.Exp(1e12 / g.Rate))
	g.eng.AfterCall(gap, flowGenArrive, g)
}

// flowGenArrive fires one Poisson arrival and rearms (allocation-free
// per arrival; see sim.Engine.AfterCall).
func flowGenArrive(a any) {
	g := a.(*FlowGen)
	g.arrive()
	g.scheduleArrival()
}

// arrive admits one flow: sample a size, stamp the arrival, enqueue it on
// the next connection round-robin.
func (g *FlowGen) arrive() {
	id := uint32(len(g.start))
	size := g.Size.Sample(g.rng)
	if size < 1 {
		size = 1
	}
	g.start = append(g.start, g.eng.Now())
	g.size = append(g.size, size)
	g.Started++
	gc := g.conns[g.next%len(g.conns)]
	g.next++
	gc.pending = append(gc.pending, pendingFlow{id: id, remaining: size, hdrLeft: 8})
	gc.pump()
}

// pump pushes the head flow's header and payload into the socket until
// the buffer fills or the queue drains. The 8-byte header is staged
// directly in the transmit ring via Reserve/Commit; the payload is
// content-ignored padding, committed without staging.
func (gc *genConn) pump() {
	if gc.sock == nil {
		return
	}
	for gc.head < len(gc.pending) {
		f := &gc.pending[gc.head]
		if f.hdrLeft > 0 {
			binary.BigEndian.PutUint32(gc.hdr[0:4], f.id)
			binary.BigEndian.PutUint32(gc.hdr[4:8], uint32(f.remaining))
			a, b := gc.sock.Reserve(f.hdrLeft)
			w := api.ViewLen(a, b)
			if w == 0 {
				return
			}
			api.ViewCopyIn(a, b, 0, gc.hdr[8-f.hdrLeft:8-f.hdrLeft+w])
			gc.sock.Commit(w)
			f.hdrLeft -= w
			if f.hdrLeft > 0 {
				return
			}
		}
		for f.remaining > 0 {
			w := gc.sock.TxSpace()
			if w == 0 {
				return
			}
			if w > f.remaining {
				w = f.remaining
			}
			gc.sock.Commit(w)
			f.remaining -= w
		}
		gc.pending[gc.head] = pendingFlow{}
		gc.head++
		if gc.head == len(gc.pending) {
			gc.pending = gc.pending[:0]
			gc.head = 0
		}
	}
}

// sinkConn parses one connection's flow stream in place.
type sinkConn struct {
	g         *FlowGen
	sock      api.Socket
	hdr       [8]byte
	id        uint32
	remaining int
}

func (sc *sinkConn) drain() {
	g := sc.g
	a, b := sc.sock.Peek()
	total := api.ViewLen(a, b)
	pos := 0
	for pos < total {
		if sc.remaining == 0 {
			if total-pos < 8 {
				// A split header stays unconsumed in the ring until the
				// rest arrives.
				break
			}
			api.ViewCopyOut(sc.hdr[:], a, b, pos)
			sc.id = binary.BigEndian.Uint32(sc.hdr[0:4])
			sc.remaining = int(binary.BigEndian.Uint32(sc.hdr[4:8]))
			pos += 8
			continue
		}
		k := total - pos
		if k > sc.remaining {
			k = sc.remaining
		}
		sc.remaining -= k
		pos += k
		if sc.remaining == 0 {
			g.complete(sc.id)
		}
	}
	if pos > 0 {
		g.BytesReceived += uint64(pos)
		sc.sock.Consume(pos)
	}
}

func (g *FlowGen) complete(id uint32) {
	if int(id) >= len(g.start) {
		return
	}
	now := g.eng.Now()
	g.Completed++
	g.BytesCompleted += uint64(g.size[id])
	g.FCT.Record(int64(now - g.start[id]))
	g.LastDone = now
}

// Done reports whether every generated flow has completed (meaningful
// once MaxFlows bounded the arrival process).
func (g *FlowGen) Done() bool {
	return g.MaxFlows > 0 && int(g.Completed) >= g.MaxFlows
}

// ---------------------------------------------------------------------
// N-to-1 incast.
// ---------------------------------------------------------------------

// IncastGroup drives barrier-synchronized incast: every sender blasts
// BlockBytes at the aggregator simultaneously; the round completes when
// the aggregator holds all N×BlockBytes, and the next round starts
// immediately (the classic partition/aggregate pattern). Round FCT is the
// barrier-to-last-byte time.
type IncastGroup struct {
	BlockBytes int // per-sender bytes per round
	Rounds     int // stop after this many rounds (0 = run until sim end)

	// Measurement.
	RoundsDone    uint64
	BytesReceived uint64
	RoundFCT      *stats.Histogram // picoseconds
	LastDone      sim.Time

	eng        *sim.Engine
	senders    []*incastSender
	want       int
	connected  int
	pending    int
	roundStart sim.Time
	running    bool
}

type incastSender struct {
	g         *IncastGroup
	sock      api.Socket
	remaining int
}

// Serve installs the aggregator on a stack port.
func (g *IncastGroup) Serve(stack api.Stack, port uint16) {
	if g.RoundFCT == nil {
		g.RoundFCT = stats.NewHistogram()
	}
	stack.Listen(port, func(sock api.Socket) {
		sock.OnReadable(func() {
			a, b := sock.Peek()
			n := api.ViewLen(a, b)
			if n == 0 {
				return
			}
			sock.Consume(n)
			g.BytesReceived += uint64(n)
			g.pending -= n
			if g.running && g.pending <= 0 {
				g.roundDone()
			}
		})
	})
}

// Start opens one connection per sender entry (pass a stack several times
// for several connections from one host) and begins round 1 once every
// sender is connected.
func (g *IncastGroup) Start(eng *sim.Engine, senders []api.Stack, agg api.Addr) {
	g.eng = eng
	g.want = len(senders)
	for _, stack := range senders {
		is := &incastSender{g: g}
		g.senders = append(g.senders, is)
		stack.Dial(agg, func(sock api.Socket) {
			is.sock = sock
			sock.OnWritable(is.pump)
			g.connected++
			if g.connected == g.want {
				g.startRound()
			}
		})
	}
}

func (g *IncastGroup) startRound() {
	g.running = true
	g.roundStart = g.eng.Now()
	g.pending = g.want * g.BlockBytes
	for _, is := range g.senders {
		is.remaining = g.BlockBytes
		is.pump()
	}
}

func (g *IncastGroup) roundDone() {
	g.running = false
	now := g.eng.Now()
	g.RoundFCT.Record(int64(now - g.roundStart))
	g.RoundsDone++
	g.LastDone = now
	if g.Rounds == 0 || int(g.RoundsDone) < g.Rounds {
		g.eng.ImmediatelyCall(incastStartRound, g)
	}
}

// incastStartRound launches the next barrier round (see Engine.AtCall).
func incastStartRound(a any) { a.(*IncastGroup).startRound() }

// pump commits the round's remaining block bytes as padding — incast
// blocks carry no examined content, so nothing is staged or copied.
func (is *incastSender) pump() {
	if is.sock == nil {
		return
	}
	for is.remaining > 0 {
		w := is.sock.TxSpace()
		if w == 0 {
			return
		}
		if w > is.remaining {
			w = is.remaining
		}
		is.sock.Commit(w)
		is.remaining -= w
	}
}

// ---------------------------------------------------------------------
// Background cross-rack traffic.
// ---------------------------------------------------------------------

// Background is continuous bulk cross-traffic: conns connections from
// the source stacks (round-robin) into one sink machine, reusing the
// apps bulk primitives.
type Background struct {
	Sink *apps.BulkSink
}

// StartBackground installs a bulk sink on sinkStack:port and saturates it
// with conns connections from srcs.
func StartBackground(eng *sim.Engine, srcs []api.Stack, sinkStack api.Stack, port uint16, conns int) *Background {
	b := &Background{Sink: &apps.BulkSink{}}
	b.Sink.Serve(sinkStack, port)
	for i := 0; i < conns; i++ {
		(&apps.BulkSender{}).Start(eng, srcs[i%len(srcs)], api.Addr{IP: sinkStack.LocalIP(), Port: port})
	}
	return b
}

// Package workload drives datacenter traffic patterns over any api.Stack:
// an open-loop flow generator with Poisson arrivals and pluggable flow
// size distributions (fixed, web-search and data-mining heavy tails),
// N-to-1 incast groups with barrier-synchronized rounds, and background
// cross-rack bulk traffic. Workloads speak only api.Stack/api.Socket, so
// FlexTOE, Linux-, TAS- and Chelsio-personality machines run them
// unmodified over the single-switch testbed or the leaf–spine fabric.
//
// Sharding (PR 7): every piece of mutable workload state lives on exactly
// one machine's shard. The generator keeps per-connection arrival streams
// on each sender's engine, flow metadata travels inside the flow header
// (12 bytes: [arrival:8][size:4]) so the sink computes FCT from its own
// clock, and measurement accumulates per sink/per connection, merged
// deterministically at readout (the accessor methods). The incast
// aggregator owns all round state and triggers each round by writing one
// byte down every sender connection — the reply blocks are what incasts.
//
// Flows are multiplexed over a pool of persistent connections (datacenter
// RPC style, and the regime FlexTOE's Table 5 state budget targets); FCT
// runs from the flow's *arrival* at the generator — queueing for a busy
// connection counts against FCT, as in slowdown-style evaluations.
package workload

import (
	"encoding/binary"
	"math"

	"flextoe/internal/api"
	"flextoe/internal/apps"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
)

// ---------------------------------------------------------------------
// Flow-size distributions.
// ---------------------------------------------------------------------

// SizeDist samples flow sizes in bytes. Implementations are immutable, so
// one distribution may be shared by per-connection samplers across shards.
type SizeDist interface {
	Name() string
	Sample(r *stats.RNG) int
}

// fixedDist is a degenerate point mass.
type fixedDist int

func (d fixedDist) Name() string          { return "fixed" }
func (d fixedDist) Sample(*stats.RNG) int { return int(d) }
func Fixed(bytes int) SizeDist            { return fixedDist(bytes) }

type cdfPoint struct {
	bytes float64
	cum   float64
}

// cdfDist samples from an empirical CDF with log-linear interpolation
// between the tabulated points (sizes span five orders of magnitude, so
// linear interpolation would put nearly all mass at the segment tops).
type cdfDist struct {
	name string
	pts  []cdfPoint
}

func (d *cdfDist) Name() string { return d.name }

func (d *cdfDist) Sample(r *stats.RNG) int {
	u := r.Float64()
	prev := cdfPoint{bytes: d.pts[0].bytes, cum: 0}
	for _, p := range d.pts {
		if u <= p.cum {
			if p.cum == prev.cum || p.bytes == prev.bytes {
				return int(p.bytes)
			}
			frac := (u - prev.cum) / (p.cum - prev.cum)
			return int(prev.bytes * math.Pow(p.bytes/prev.bytes, frac))
		}
		prev = p
	}
	return int(d.pts[len(d.pts)-1].bytes)
}

// WebSearch approximates the DCTCP web-search workload: query/short-
// message dominated by count, with a heavy tail of multi-megabyte
// responses carrying most of the bytes.
func WebSearch() SizeDist {
	return &cdfDist{name: "websearch", pts: []cdfPoint{
		{6e3, 0.15}, {13e3, 0.20}, {19e3, 0.30}, {33e3, 0.40},
		{53e3, 0.53}, {133e3, 0.60}, {667e3, 0.70}, {1.3e6, 0.80},
		{3.3e6, 0.90}, {6.7e6, 0.95}, {20e6, 0.98}, {30e6, 1.0},
	}}
}

// DataMining approximates the VL2 data-mining workload: ~80% of flows
// under 10 KB, with a far heavier tail than web-search.
func DataMining() SizeDist {
	return &cdfDist{name: "datamining", pts: []cdfPoint{
		{180, 0.10}, {216, 0.20}, {560, 0.30}, {900, 0.40},
		{1.1e3, 0.50}, {1.87e3, 0.60}, {3.16e3, 0.70}, {1e4, 0.80},
		{4e5, 0.90}, {3.16e6, 0.95}, {1e8, 0.98}, {1e9, 1.0},
	}}
}

// flowHdrLen is the per-flow wire header: the flow's arrival instant (8)
// and its payload size (4). Carrying the arrival timestamp on the wire is
// what lets the sink — possibly on another shard — compute FCT without
// reaching into generator state (simulated clocks agree across shards).
const flowHdrLen = 12

// ---------------------------------------------------------------------
// Open-loop flow generator.
// ---------------------------------------------------------------------

// FlowGen issues flows open-loop: Poisson arrivals at Rate flows/second
// in aggregate, each flow Size.Sample bytes, over a pool of persistent
// connections. Serve installs the sink side (callable on several
// machines); Start opens the connections and begins arrivals.
//
// Each connection runs an independent Poisson stream at Rate/Conns with
// its own RNG — a superposition distributionally identical to one
// round-robin Poisson process, but with every arrival event confined to
// the sending machine's shard. Measurement state is per connection and
// per sink; the accessor methods (Started, Completed, FCT, ...) merge it
// in deterministic construction order, so call them only between runs.
type FlowGen struct {
	Rate     float64  // aggregate flow arrivals per second
	Size     SizeDist // flow size distribution
	Conns    int      // connection pool size (default: one per sender)
	MaxFlows int      // stop generating after this many arrivals (0 = never)
	Seed     uint64

	conns []*genConn
	sinks []*flowSink
}

type pendingFlow struct {
	start     sim.Time
	remaining int
	hdrLeft   int
}

// genConn is one sender connection: its own shard engine, RNG, arrival
// stream, and flow queue. All fields are touched only by events on eng.
type genConn struct {
	g        *FlowGen
	eng      *sim.Engine
	rng      *stats.RNG
	rate     float64 // this connection's arrival rate
	maxFlows int     // this connection's share of MaxFlows (0 = unlimited)
	started  uint64
	sock     api.Socket
	pending  []pendingFlow
	head     int
	hdr      [flowHdrLen]byte
	size     int // scratch: size of the flow being headered
}

// flowSink accumulates one Serve call's measurement on that machine's
// shard.
type flowSink struct {
	eng            *sim.Engine
	fct            *stats.Histogram
	completed      uint64
	bytesCompleted uint64
	bytesReceived  uint64
	lastDone       sim.Time
}

// Serve installs the flow sink on a stack port. Call before Start; may be
// called on multiple machines (the generator spreads connections over all
// targets passed to Start).
func (g *FlowGen) Serve(stack api.Stack, port uint16) {
	sk := &flowSink{eng: stack.Engine(), fct: stats.NewHistogram()}
	g.sinks = append(g.sinks, sk)
	stack.Listen(port, func(sock api.Socket) {
		sc := &sinkConn{sk: sk, sock: sock}
		sock.OnReadable(sc.drain)
	})
}

// Start opens the connection pool (connection i: senders[i%len] →
// targets[i%len]) and starts each connection's arrival stream.
func (g *FlowGen) Start(senders []api.Stack, targets ...api.Addr) {
	if g.Conns <= 0 {
		g.Conns = len(senders)
	}
	for i := 0; i < g.Conns; i++ {
		stack := senders[i%len(senders)]
		gc := &genConn{
			g:    g,
			eng:  stack.Engine(),
			rng:  stats.NewRNG(g.Seed ^ 0xf10a6e ^ uint64(i+1)*0x9e3779b97f4a7c15),
			rate: g.Rate / float64(g.Conns),
		}
		if g.MaxFlows > 0 {
			// Split MaxFlows evenly, remainder to the first connections.
			gc.maxFlows = g.MaxFlows / g.Conns
			if i < g.MaxFlows%g.Conns {
				gc.maxFlows++
			}
		}
		g.conns = append(g.conns, gc)
		target := targets[i%len(targets)]
		stack.Dial(target, func(sock api.Socket) {
			gc.sock = sock
			sock.OnWritable(gc.pump)
			gc.pump()
		})
		gc.scheduleArrival()
	}
}

func (gc *genConn) scheduleArrival() {
	if gc.maxFlows > 0 && int(gc.started) >= gc.maxFlows {
		return
	}
	if gc.g.MaxFlows > 0 && gc.maxFlows == 0 {
		return // this connection has no share of the bounded flow budget
	}
	gap := sim.Time(gc.rng.Exp(1e12 / gc.rate))
	gc.eng.AfterCall(gap, genConnArrive, gc)
}

// genConnArrive fires one Poisson arrival on this connection and rearms
// (allocation-free per arrival; see sim.Engine.AfterCall).
func genConnArrive(a any) {
	gc := a.(*genConn)
	gc.arrive()
	gc.scheduleArrival()
}

// arrive admits one flow: sample a size, stamp the arrival, enqueue.
func (gc *genConn) arrive() {
	size := gc.g.Size.Sample(gc.rng)
	if size < 1 {
		size = 1
	}
	gc.started++
	gc.pending = append(gc.pending, pendingFlow{
		start:     gc.eng.Now(),
		remaining: size,
		hdrLeft:   flowHdrLen,
	})
	gc.pump()
}

// pump pushes the head flow's header and payload into the socket until
// the buffer fills or the queue drains. The 12-byte header is staged
// directly in the transmit ring via Reserve/Commit; the payload is
// content-ignored padding, committed without staging.
func (gc *genConn) pump() {
	if gc.sock == nil {
		return
	}
	for gc.head < len(gc.pending) {
		f := &gc.pending[gc.head]
		if f.hdrLeft > 0 {
			binary.BigEndian.PutUint64(gc.hdr[0:8], uint64(f.start))
			binary.BigEndian.PutUint32(gc.hdr[8:12], uint32(f.remaining))
			a, b := gc.sock.Reserve(f.hdrLeft)
			w := api.ViewLen(a, b)
			if w == 0 {
				return
			}
			api.ViewCopyIn(a, b, 0, gc.hdr[flowHdrLen-f.hdrLeft:flowHdrLen-f.hdrLeft+w])
			gc.sock.Commit(w)
			f.hdrLeft -= w
			if f.hdrLeft > 0 {
				return
			}
		}
		for f.remaining > 0 {
			w := gc.sock.TxSpace()
			if w == 0 {
				return
			}
			if w > f.remaining {
				w = f.remaining
			}
			gc.sock.Commit(w)
			f.remaining -= w
		}
		gc.pending[gc.head] = pendingFlow{}
		gc.head++
		if gc.head == len(gc.pending) {
			gc.pending = gc.pending[:0]
			gc.head = 0
		}
	}
}

// sinkConn parses one connection's flow stream in place.
type sinkConn struct {
	sk        *flowSink
	sock      api.Socket
	hdr       [flowHdrLen]byte
	start     sim.Time
	size      int
	remaining int
}

func (sc *sinkConn) drain() {
	sk := sc.sk
	a, b := sc.sock.Peek()
	total := api.ViewLen(a, b)
	pos := 0
	for pos < total {
		if sc.remaining == 0 {
			if total-pos < flowHdrLen {
				// A split header stays unconsumed in the ring until the
				// rest arrives.
				break
			}
			api.ViewCopyOut(sc.hdr[:], a, b, pos)
			sc.start = sim.Time(binary.BigEndian.Uint64(sc.hdr[0:8]))
			sc.size = int(binary.BigEndian.Uint32(sc.hdr[8:12]))
			sc.remaining = sc.size
			pos += flowHdrLen
			continue
		}
		k := total - pos
		if k > sc.remaining {
			k = sc.remaining
		}
		sc.remaining -= k
		pos += k
		if sc.remaining == 0 {
			now := sk.eng.Now()
			sk.completed++
			sk.bytesCompleted += uint64(sc.size)
			sk.fct.Record(int64(now - sc.start))
			sk.lastDone = now
		}
	}
	if pos > 0 {
		sk.bytesReceived += uint64(pos)
		sc.sock.Consume(pos)
	}
}

// ResetMeasurement clears the generator's measurement state — admitted
// and completed counts, byte totals, and the per-sink FCT histograms —
// without touching the arrival streams. Call it only while the
// simulation is quiescent (the warmup boundary); in-flight flows then
// count toward the post-reset window.
func (g *FlowGen) ResetMeasurement() {
	for _, gc := range g.conns {
		gc.started = 0
	}
	for _, sk := range g.sinks {
		sk.fct = stats.NewHistogram()
		sk.completed = 0
		sk.bytesCompleted = 0
		sk.bytesReceived = 0
		sk.lastDone = 0
	}
}

// Started returns the number of flows admitted, merged across
// connections. Readout methods merge per-shard state in construction
// order; call them only while the simulation is quiescent.
func (g *FlowGen) Started() uint64 {
	var n uint64
	for _, gc := range g.conns {
		n += gc.started
	}
	return n
}

// Completed returns the number of flows fully received, merged across
// sinks.
func (g *FlowGen) Completed() uint64 {
	var n uint64
	for _, sk := range g.sinks {
		n += sk.completed
	}
	return n
}

// BytesCompleted returns the payload bytes of completed flows.
func (g *FlowGen) BytesCompleted() uint64 {
	var n uint64
	for _, sk := range g.sinks {
		n += sk.bytesCompleted
	}
	return n
}

// BytesReceived returns all flow-stream bytes consumed by the sinks
// (headers included).
func (g *FlowGen) BytesReceived() uint64 {
	var n uint64
	for _, sk := range g.sinks {
		n += sk.bytesReceived
	}
	return n
}

// FCT returns the flow-completion-time histogram (picoseconds, arrival →
// last byte at sink), merged across sinks in construction order.
func (g *FlowGen) FCT() *stats.Histogram {
	h := stats.NewHistogram()
	for _, sk := range g.sinks {
		h.Merge(sk.fct)
	}
	return h
}

// LastDone returns the completion instant of the latest flow.
func (g *FlowGen) LastDone() sim.Time {
	var t sim.Time
	for _, sk := range g.sinks {
		if sk.lastDone > t {
			t = sk.lastDone
		}
	}
	return t
}

// Done reports whether every generated flow has completed (meaningful
// once MaxFlows bounded the arrival process).
func (g *FlowGen) Done() bool {
	return g.MaxFlows > 0 && int(g.Completed()) >= g.MaxFlows
}

// ---------------------------------------------------------------------
// N-to-1 incast.
// ---------------------------------------------------------------------

// IncastGroup drives barrier-synchronized incast: each round the
// aggregator writes one trigger byte down every sender connection (in
// accept order); each sender answers with BlockBytes; the round completes
// when the aggregator holds all N×BlockBytes, and the next round starts
// immediately (the classic partition/aggregate request → responses
// pattern). Round FCT is the trigger-to-last-byte time, so it includes
// the request's one-way latency.
//
// All round and measurement state lives on the aggregator's shard; the
// only sender-side state is each connection's outstanding byte count, fed
// by the trigger bytes. BlockBytes and Rounds are immutable once Start is
// called.
type IncastGroup struct {
	BlockBytes int // per-sender bytes per round
	Rounds     int // stop after this many rounds (0 = run until sim end)

	// Measurement — owned by the aggregator's shard; read between runs.
	RoundsDone    uint64
	BytesReceived uint64
	RoundFCT      *stats.Histogram // picoseconds
	LastDone      sim.Time

	eng        *sim.Engine // aggregator's shard engine (set by Serve)
	conns      []*incastConn
	want       int
	pending    int
	roundStart sim.Time
	running    bool
}

// incastConn is one accepted sender connection at the aggregator.
type incastConn struct {
	g    *IncastGroup
	sock api.Socket
	owed int // trigger bytes not yet committed
}

// incastSender is the sender half: it answers each trigger byte with a
// BlockBytes blast. It reads only immutable group config (BlockBytes).
type incastSender struct {
	g         *IncastGroup
	sock      api.Socket
	remaining int
}

// Serve installs the aggregator on a stack port.
func (g *IncastGroup) Serve(stack api.Stack, port uint16) {
	g.eng = stack.Engine()
	if g.RoundFCT == nil {
		g.RoundFCT = stats.NewHistogram()
	}
	stack.Listen(port, func(sock api.Socket) {
		ic := &incastConn{g: g, sock: sock}
		g.conns = append(g.conns, ic)
		sock.OnReadable(ic.drain)
		sock.OnWritable(ic.push)
		if len(g.conns) == g.want && !g.running && g.RoundsDone == 0 {
			g.startRound()
		}
	})
}

// Start opens one connection per sender entry (pass a stack several times
// for several connections from one host). Round 1 begins once the
// aggregator has accepted every connection.
func (g *IncastGroup) Start(senders []api.Stack, agg api.Addr) {
	g.want = len(senders)
	for _, stack := range senders {
		is := &incastSender{g: g}
		stack.Dial(agg, func(sock api.Socket) {
			is.sock = sock
			sock.OnWritable(is.pump)
			sock.OnReadable(is.trigger)
		})
	}
}

// drain consumes arrived block bytes and completes the round when all
// N×BlockBytes are in.
func (ic *incastConn) drain() {
	g := ic.g
	a, b := ic.sock.Peek()
	n := api.ViewLen(a, b)
	if n == 0 {
		return
	}
	ic.sock.Consume(n)
	g.BytesReceived += uint64(n)
	g.pending -= n
	if g.running && g.pending <= 0 {
		g.roundDone()
	}
}

// push commits any trigger bytes that didn't fit earlier.
func (ic *incastConn) push() {
	if ic.owed == 0 {
		return
	}
	w := ic.sock.TxSpace()
	if w > ic.owed {
		w = ic.owed
	}
	if w == 0 {
		return
	}
	ic.sock.Commit(w)
	ic.owed -= w
}

func (g *IncastGroup) startRound() {
	g.running = true
	g.roundStart = g.eng.Now()
	g.pending = g.want * g.BlockBytes
	for _, ic := range g.conns {
		ic.owed++
		ic.push()
	}
}

func (g *IncastGroup) roundDone() {
	g.running = false
	now := g.eng.Now()
	g.RoundFCT.Record(int64(now - g.roundStart))
	g.RoundsDone++
	g.LastDone = now
	if g.Rounds == 0 || int(g.RoundsDone) < g.Rounds {
		g.eng.ImmediatelyCall(incastStartRound, g)
	}
}

// incastStartRound launches the next barrier round (see Engine.AtCall).
func incastStartRound(a any) { a.(*IncastGroup).startRound() }

// ResetMeasurement clears the group's round measurement — counts, byte
// total, and the round-FCT histogram — without disturbing the round in
// flight. Call it only while the simulation is quiescent (the warmup
// boundary). Callers needing deltas against the pre-reset counts should
// snapshot instead; this reset is the fig17-style fresh-histogram
// boundary.
func (g *IncastGroup) ResetMeasurement() {
	g.RoundFCT = stats.NewHistogram()
}

// trigger consumes arrived trigger bytes — one per round — and owes the
// sender one block per byte (coalesced triggers queue further blocks).
func (is *incastSender) trigger() {
	a, b := is.sock.Peek()
	n := api.ViewLen(a, b)
	if n == 0 {
		return
	}
	is.sock.Consume(n)
	is.remaining += n * is.g.BlockBytes
	is.pump()
}

// pump commits the round's remaining block bytes as padding — incast
// blocks carry no examined content, so nothing is staged or copied.
func (is *incastSender) pump() {
	if is.sock == nil {
		return
	}
	for is.remaining > 0 {
		w := is.sock.TxSpace()
		if w == 0 {
			return
		}
		if w > is.remaining {
			w = is.remaining
		}
		is.sock.Commit(w)
		is.remaining -= w
	}
}

// ---------------------------------------------------------------------
// Background cross-rack traffic.
// ---------------------------------------------------------------------

// Background is continuous bulk cross-traffic: conns connections from
// the source stacks (round-robin) into one sink machine, reusing the
// apps bulk primitives.
type Background struct {
	Sink *apps.BulkSink
}

// StartBackground installs a bulk sink on sinkStack:port and saturates it
// with conns connections from srcs.
func StartBackground(srcs []api.Stack, sinkStack api.Stack, port uint16, conns int) *Background {
	b := &Background{Sink: &apps.BulkSink{}}
	b.Sink.Serve(sinkStack, port)
	for i := 0; i < conns; i++ {
		(&apps.BulkSender{}).Start(srcs[i%len(srcs)], api.Addr{IP: sinkStack.LocalIP(), Port: port})
	}
	return b
}

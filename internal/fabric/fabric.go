// Package fabric composes netsim switches into a two-tier leaf–spine
// (Clos) datacenter fabric: every leaf (top-of-rack) switch connects to
// every spine, hosts attach to exactly one rack, and cross-rack traffic
// is spread over the spines by per-flow ECMP.
//
// Topology model. The fabric is non-blocking between tiers by
// configuration choice, not by construction: leaf↔spine trunks default to
// a higher rate than host links, so the interesting congestion points are
// the leaf egress queues toward hosts (incast) and, when oversubscribed,
// the uplink trunks. Each tier carries its own netsim.SwitchConfig, so
// ECN thresholds, WRED and queue caps can differ between leaves and
// spines (in real deployments they do).
//
// ECMP hashing contract. Path selection reuses packet.Flow.Hash — the
// CRC-32 of the 4-tuple that the FlexTOE pre-processor computes on the
// NFP lookup engine. A leaf forwards a frame whose destination MAC it has
// not learned onto uplink index hash(flow) mod spines. The contract:
// every segment of one flow direction takes the same spine (ordering is
// preserved per direction), the two directions of a connection hash
// independently (the reverse 4-tuple is a different flow), and the map
// from flows to spines is a pure function of the tuple — re-running a
// seeded experiment replays identical paths.
//
// Frame ownership across hops. Pooled Frames keep the single-owner rule
// of package netsim across any number of fabric hops: host NIC → leaf →
// spine → leaf → host NIC hands the same *Frame (and packet) from
// interface to switch to interface; whichever point terminates the
// journey — a receiving stack, or any drop point in any switch — releases
// frame and packet exactly once. The fabric adds no copies and no new
// ownership states, only more hops between the endpoints.
package fabric

import (
	"fmt"

	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
)

// Config parameterizes a leaf–spine fabric.
type Config struct {
	Leaves int // top-of-rack switches (= racks); default 2
	Spines int // spine switches; default 2

	LeafHostGbps  float64 // host-facing port rate; default 40
	LeafSpineGbps float64 // leaf↔spine trunk rate; default 100

	HostProp  sim.Time // host↔leaf propagation; default 150 ns
	TrunkProp sim.Time // leaf↔spine propagation; default 500 ns

	// Per-tier queue policy (loss injection, ECN threshold, WRED, queue
	// cap, forwarding latency). Seeds are derived per switch from Seed so
	// the tiers share one experiment seed but no RNG stream.
	Leaf  netsim.SwitchConfig
	Spine netsim.SwitchConfig

	// QueueHistUnit enables per-port egress occupancy histograms on every
	// leaf port, in buckets of this many bytes (0 disables).
	QueueHistUnit int

	Seed uint64
}

func (c *Config) defaults() {
	if c.Leaves <= 0 {
		c.Leaves = 2
	}
	if c.Spines <= 0 {
		c.Spines = 2
	}
	if c.LeafHostGbps == 0 {
		c.LeafHostGbps = 40
	}
	if c.LeafSpineGbps == 0 {
		c.LeafSpineGbps = 100
	}
	if c.HostProp == 0 {
		c.HostProp = 150 * sim.Nanosecond
	}
	if c.TrunkProp == 0 {
		c.TrunkProp = 500 * sim.Nanosecond
	}
}

// Host is one attached machine's connection point.
type Host struct {
	Name     string
	Rack     int
	Iface    *netsim.Iface // host-side NIC interface
	LeafPort *netsim.Iface // leaf-side port facing the host (egress queue)
}

// Fabric is an assembled leaf–spine network.
type Fabric struct {
	Eng    *sim.Engine
	Cfg    Config
	Leaves []*netsim.Switch
	Spines []*netsim.Switch

	// leafUplinks[l][s] is leaf l's port toward spine s (ECMP index s);
	// spineDown[s][l] is spine s's port toward leaf l.
	leafUplinks [][]*netsim.Iface
	spineDown   [][]*netsim.Iface

	hosts    map[string]*Host
	hostList []*Host
}

// New wires up the fabric: Leaves × Spines trunks, no hosts yet.
func New(eng *sim.Engine, cfg Config) *Fabric {
	cfg.defaults()
	f := &Fabric{Eng: eng, Cfg: cfg, hosts: make(map[string]*Host)}

	for l := 0; l < cfg.Leaves; l++ {
		lc := cfg.Leaf
		lc.Seed = cfg.Seed ^ (uint64(l+1) * 0x9e3779b9)
		sw := netsim.NewSwitch(eng, lc)
		sw.Name = fmt.Sprintf("leaf%d", l)
		f.Leaves = append(f.Leaves, sw)
	}
	for s := 0; s < cfg.Spines; s++ {
		sc := cfg.Spine
		sc.Seed = cfg.Seed ^ (uint64(s+1) * 0xc2b2ae35) ^ 0xffff
		sw := netsim.NewSwitch(eng, sc)
		sw.Name = fmt.Sprintf("spine%d", s)
		f.Spines = append(f.Spines, sw)
	}

	trunkRate := netsim.GbpsToBytesPerSec(cfg.LeafSpineGbps)
	f.leafUplinks = make([][]*netsim.Iface, cfg.Leaves)
	f.spineDown = make([][]*netsim.Iface, cfg.Spines)
	for s := range f.Spines {
		f.spineDown[s] = make([]*netsim.Iface, cfg.Leaves)
	}
	for l, leaf := range f.Leaves {
		f.leafUplinks[l] = make([]*netsim.Iface, cfg.Spines)
		for s, spine := range f.Spines {
			up := leaf.AddUplink(fmt.Sprintf("leaf%d-spine%d", l, s), trunkRate)
			down := spine.AddPort(fmt.Sprintf("spine%d-leaf%d", s, l), trunkRate)
			netsim.Connect(up, down, cfg.TrunkProp)
			if cfg.QueueHistUnit > 0 {
				up.EnableQueueHist(cfg.QueueHistUnit, cfg.Leaf.QueueCapBytes)
			}
			f.leafUplinks[l][s] = up
			f.spineDown[s][l] = down
		}
	}
	return f
}

// AttachHost creates a host NIC in the given rack, connects it to that
// rack's leaf, and installs its MAC: locally at the leaf, and at every
// spine toward the leaf (leaves deliberately never learn remote MACs, so
// cross-rack frames take the ECMP uplink path).
func (f *Fabric) AttachHost(rack int, name string, mac packet.EtherAddr, bytesPerSec float64, prop sim.Time) *netsim.Iface {
	return f.AttachHostOn(f.Eng, rack, name, mac, bytesPerSec, prop)
}

// AttachHostOn is AttachHost with the host NIC placed on a specific shard
// engine. The leaf port stays on the fabric's engine, so the host-leaf
// link becomes the shard boundary and its propagation delay the group's
// lookahead floor.
func (f *Fabric) AttachHostOn(eng *sim.Engine, rack int, name string, mac packet.EtherAddr, bytesPerSec float64, prop sim.Time) *netsim.Iface {
	if rack < 0 || rack >= len(f.Leaves) {
		panic(fmt.Sprintf("fabric: rack %d out of range (leaves=%d)", rack, len(f.Leaves)))
	}
	if _, dup := f.hosts[name]; dup {
		panic(fmt.Sprintf("fabric: duplicate host %q", name))
	}
	if bytesPerSec == 0 {
		bytesPerSec = netsim.GbpsToBytesPerSec(f.Cfg.LeafHostGbps)
	}
	if prop == 0 {
		prop = f.Cfg.HostProp
	}
	leaf := f.Leaves[rack]
	nic := netsim.NewIface(eng, name, mac, bytesPerSec)
	port := leaf.AddPort(name, bytesPerSec)
	if f.Cfg.QueueHistUnit > 0 {
		port.EnableQueueHist(f.Cfg.QueueHistUnit, f.Cfg.Leaf.QueueCapBytes)
	}
	netsim.Connect(nic, port, prop)
	leaf.Learn(mac, port)
	for s, spine := range f.Spines {
		spine.Learn(mac, f.spineDown[s][rack])
	}
	h := &Host{Name: name, Rack: rack, Iface: nic, LeafPort: port}
	f.hosts[name] = h
	f.hostList = append(f.hostList, h)
	return nic
}

// Host returns a previously attached host by name (nil if unknown).
func (f *Fabric) Host(name string) *Host { return f.hosts[name] }

// Hosts returns every attached host in attachment order.
func (f *Fabric) Hosts() []*Host { return f.hostList }

// LeafPort returns the leaf-side egress port toward the named host: the
// queue where incast fan-in converges.
func (f *Fabric) LeafPort(name string) *netsim.Iface {
	if h := f.hosts[name]; h != nil {
		return h.LeafPort
	}
	return nil
}

// Uplink returns leaf l's trunk port toward spine s (ECMP index s).
func (f *Fabric) Uplink(l, s int) *netsim.Iface { return f.leafUplinks[l][s] }

// SpineTxBytes returns, per spine, the bytes all leaves transmitted up
// that spine — the ECMP load-balance measurement.
func (f *Fabric) SpineTxBytes() []uint64 {
	out := make([]uint64, len(f.Spines))
	for _, ups := range f.leafUplinks {
		for s, up := range ups {
			out[s] += up.TxBytes
		}
	}
	return out
}

// ECNMarks sums CE marks applied across both tiers.
func (f *Fabric) ECNMarks() (leaf, spine uint64) {
	for _, sw := range f.Leaves {
		leaf += sw.ECNMarks
	}
	for _, sw := range f.Spines {
		spine += sw.ECNMarks
	}
	return leaf, spine
}

// Drops sums frames dropped across both tiers (tail + WRED + injected
// loss + unknown-MAC floods + ECMP loop-guard routing errors).
func (f *Fabric) Drops() uint64 {
	var n uint64
	for _, sw := range append(append([]*netsim.Switch{}, f.Leaves...), f.Spines...) {
		n += sw.QueueDrops + sw.WREDDrops + sw.LossDrops + sw.Flooded + sw.ECMPLoopDrops
	}
	return n
}

// PeakLeafQueueBytes returns the deepest egress queue any leaf port
// reached since the last ResetQueueStats.
func (f *Fabric) PeakLeafQueueBytes() int {
	peak := 0
	for _, sw := range f.Leaves {
		for _, p := range sw.Ports() {
			if p.PeakQueueBytes > peak {
				peak = p.PeakQueueBytes
			}
		}
	}
	return peak
}

// PeakUplinkQueueBytes returns the deepest egress queue any leaf→spine
// trunk port reached since the last ResetQueueStats: the congestion
// point an oversubscribed fabric moves to.
func (f *Fabric) PeakUplinkQueueBytes() int {
	peak := 0
	for _, ups := range f.leafUplinks {
		for _, up := range ups {
			if up.PeakQueueBytes > peak {
				peak = up.PeakQueueBytes
			}
		}
	}
	return peak
}

// PeakHostQueueBytes returns the deepest egress queue any host-facing
// leaf port reached since the last ResetQueueStats: the incast
// congestion point of a non-blocking fabric.
func (f *Fabric) PeakHostQueueBytes() int {
	peak := 0
	for _, h := range f.hostList {
		if h.LeafPort.PeakQueueBytes > peak {
			peak = h.LeafPort.PeakQueueBytes
		}
	}
	return peak
}

// UplinkECNMarks sums CE marks applied at leaf→spine trunk ports;
// HostPortECNMarks sums marks at host-facing leaf ports. Together they
// locate which queue the congestion-control loop is reacting to.
func (f *Fabric) UplinkECNMarks() uint64 {
	var n uint64
	for _, ups := range f.leafUplinks {
		for _, up := range ups {
			n += up.ECNMarks
		}
	}
	return n
}

// HostPortECNMarks sums CE marks applied at host-facing leaf ports.
func (f *Fabric) HostPortECNMarks() uint64 {
	var n uint64
	for _, h := range f.hostList {
		n += h.LeafPort.ECNMarks
	}
	return n
}

// ResetQueueStats clears peak-depth markers and occupancy histograms on
// every leaf port (end of warmup).
func (f *Fabric) ResetQueueStats() {
	for _, sw := range f.Leaves {
		for _, p := range sw.Ports() {
			p.ResetQueueStats()
		}
	}
}

package conntab

import (
	"testing"

	"flextoe/internal/packet"
	"flextoe/internal/stats"
)

// slabModel is a minimal caller: a dense slot array plus free-slot reuse,
// the same shape core.TOE and baseline.Stack use.
type slabModel struct {
	flows []packet.Flow
	live  []bool
	free  []uint32
	ix    *Index
}

func newSlabModel() *slabModel {
	m := &slabModel{}
	m.ix = New(func(slot uint32) packet.Flow { return m.flows[slot] })
	return m
}

func (m *slabModel) add(f packet.Flow) uint32 {
	var slot uint32
	if n := len(m.free); n > 0 {
		slot = m.free[0]
		m.free = m.free[1:]
		m.flows[slot] = f
		m.live[slot] = true
	} else {
		slot = uint32(len(m.flows))
		m.flows = append(m.flows, f)
		m.live = append(m.live, true)
	}
	m.ix.Insert(f, slot)
	return slot
}

func (m *slabModel) del(f packet.Flow) {
	slot, ok := m.ix.Lookup(f)
	if !ok {
		return
	}
	m.ix.Delete(f)
	m.live[slot] = false
	m.free = append(m.free, slot)
}

// flowFrom builds a flow from a small integer space so hash collisions in
// the masked bucket space are frequent.
func flowFrom(rng *stats.RNG, space int) packet.Flow {
	v := rng.Intn(space)
	return packet.Flow{
		SrcIP:   packet.IP(10, 0, 0, byte(v&7)+1),
		DstIP:   packet.IP(10, 0, 0, byte((v>>3)&7)+100),
		SrcPort: uint16(20000 + (v >> 6 & 15)),
		DstPort: 7000,
	}
}

// TestIndexPropertyVsMap drives random insert/lookup/delete/reuse churn
// against a reference map, with a deliberately tiny key space so probe
// chains collide and backward-shift deletion is exercised constantly.
func TestIndexPropertyVsMap(t *testing.T) {
	for _, space := range []int{8, 64, 1024} {
		rng := stats.NewRNG(uint64(space) * 7919)
		m := newSlabModel()
		ref := map[packet.Flow]uint32{}
		for op := 0; op < 20000; op++ {
			f := flowFrom(rng, space)
			switch {
			case rng.Float64() < 0.55:
				if _, dup := ref[f]; dup {
					continue // index forbids duplicate keys
				}
				ref[f] = m.add(f)
			default:
				m.del(f)
				delete(ref, f)
			}
			if op%37 == 0 {
				// Full cross-check: every reference entry resolves to the
				// same slot, and a probe for an absent flow misses.
				for rf, rslot := range ref { //flexvet:ordered test-only cross-check
					slot, ok := m.ix.Lookup(rf)
					if !ok || slot != rslot {
						t.Fatalf("space=%d op=%d: Lookup(%v)=(%d,%v), want (%d,true)", space, op, rf, slot, ok, rslot)
					}
				}
				if m.ix.Len() != len(ref) {
					t.Fatalf("space=%d op=%d: Len=%d want %d", space, op, m.ix.Len(), len(ref))
				}
			}
			if _, absent := ref[f]; !absent {
				if _, ok := m.ix.Lookup(f); ok {
					t.Fatalf("space=%d op=%d: deleted flow %v still found", space, op, f)
				}
			}
		}
	}
}

// TestIndexCollisionChain pins the backward-shift deletion behavior on a
// hand-built collision chain: delete the head and verify every follower
// is still reachable.
func TestIndexCollisionChain(t *testing.T) {
	m := newSlabModel()
	// Find 5 flows that share a home bucket at the minimum table size.
	var chain []packet.Flow
	want := packet.Flow{SrcIP: packet.IP(10, 0, 0, 1), DstIP: packet.IP(10, 0, 0, 2), SrcPort: 1, DstPort: 7000}.Hash() & (minBuckets - 1)
	for p := uint16(1); len(chain) < 5; p++ {
		f := packet.Flow{SrcIP: packet.IP(10, 0, 0, 1), DstIP: packet.IP(10, 0, 0, 2), SrcPort: p, DstPort: 7000}
		if f.Hash()&(minBuckets-1) == want {
			chain = append(chain, f)
		}
	}
	for _, f := range chain {
		m.add(f)
	}
	// Delete from the head; the rest must survive each removal.
	for i, victim := range chain {
		m.del(victim)
		if _, ok := m.ix.Lookup(victim); ok {
			t.Fatalf("deleted chain[%d] still found", i)
		}
		for j := i + 1; j < len(chain); j++ {
			if _, ok := m.ix.Lookup(chain[j]); !ok {
				t.Fatalf("after deleting chain[%d], chain[%d] lost", i, j)
			}
		}
	}
}

// TestIndexSlotReuse verifies a freed slot re-indexed under a new flow
// resolves correctly and the old flow stays gone.
func TestIndexSlotReuse(t *testing.T) {
	m := newSlabModel()
	a := packet.Flow{SrcIP: packet.IP(10, 0, 0, 1), DstIP: packet.IP(10, 0, 0, 2), SrcPort: 100, DstPort: 7000}
	b := packet.Flow{SrcIP: packet.IP(10, 0, 0, 3), DstIP: packet.IP(10, 0, 0, 4), SrcPort: 200, DstPort: 7000}
	sa := m.add(a)
	m.del(a)
	sb := m.add(b)
	if sa != sb {
		t.Fatalf("expected slot reuse: first=%d second=%d", sa, sb)
	}
	if _, ok := m.ix.Lookup(a); ok {
		t.Fatal("old flow still resolves after slot reuse")
	}
	if slot, ok := m.ix.Lookup(b); !ok || slot != sb {
		t.Fatalf("new flow on reused slot: got (%d,%v)", slot, ok)
	}
}

// TestIndexGrowth fills past several doublings and verifies everything
// still resolves; MemBytes stays ~4-5.3 bytes per live connection.
func TestIndexGrowth(t *testing.T) {
	m := newSlabModel()
	var flows []packet.Flow
	for i := 0; i < 5000; i++ {
		f := packet.Flow{
			SrcIP:   packet.IP(10, 1, byte(i>>8), byte(i)),
			DstIP:   packet.IP(10, 2, 0, 1),
			SrcPort: uint16(1024 + i%40000),
			DstPort: 7000,
		}
		flows = append(flows, f)
		m.add(f)
	}
	for i, f := range flows {
		if slot, ok := m.ix.Lookup(f); !ok || slot != uint32(i) {
			t.Fatalf("flow %d: got (%d,%v)", i, slot, ok)
		}
	}
	perConn := float64(m.ix.MemBytes()) / float64(m.ix.Len())
	if perConn > 11.0 {
		t.Fatalf("index overhead %.1f B/conn, want <= 11 (4 B entries, load in (3/8, 3/4])", perConn)
	}
}

// TestIndexLookupAllocFree pins the 0-allocs-per-lookup contract at the
// index layer (the end-to-end gate lives in core's TestConnTableAllocBudget).
func TestIndexLookupAllocFree(t *testing.T) {
	m := newSlabModel()
	var flows []packet.Flow
	for i := 0; i < 256; i++ {
		f := packet.Flow{SrcIP: packet.IP(10, 3, 0, byte(i)), DstIP: packet.IP(10, 4, 0, 1), SrcPort: uint16(5000 + i), DstPort: 7000}
		flows = append(flows, f)
		m.add(f)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, f := range flows {
			if _, ok := m.ix.Lookup(f); !ok {
				t.Fatal("miss")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates: %.2f allocs per sweep, want 0", allocs)
	}
}

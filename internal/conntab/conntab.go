// Package conntab provides the flat connection-table index shared by the
// FlexTOE pipeline and the baseline stacks (ROADMAP open item 2,
// "million-connection scale"): an open-addressed flow-hash index over
// dense slot arrays, replacing the Go maps that previously keyed
// connections (O(1) amortized everything, 0 allocations per lookup, and
// ~4 bytes of index state per connection at the 3/4 load factor —
// against Table 5's stage-partitioned per-connection budget).
//
// The index stores only slot numbers, not flow keys: the caller owns the
// dense slot array (the connection slab) and supplies a flowAt callback
// that reads the 4-tuple back out of a slot. This keeps the 12-byte key
// out of the index (one copy of the flow lives in the connection state
// itself, where the data path needs it anyway) at the cost of one
// indirection per probe compare. Deletion uses backward-shift
// compaction (Robin-Hood-style hole repair, no tombstones), so lookup
// cost never degrades under the churn workloads of Figure 9; the caller
// must Delete a slot while its flow is still readable, before recycling
// the slot.
//
// Hashing reuses packet.Flow.Hash (the NFP lookup engine's CRC-32 unit,
// §4.1) so the simulated NIC and the host-side table agree on placement,
// and determinism follows from the structure: probe order is a pure
// function of the inserted key multiset and insertion order, never of Go
// map iteration (doc.go "Determinism").
package conntab

import "flextoe/internal/packet"

// minBuckets keeps tiny tables allocation-cheap while still power-of-two
// sized for mask arithmetic.
const minBuckets = 16

// Index is an open-addressed, linear-probed map from packet.Flow to a
// dense slot number. The zero value is not ready; use New.
type Index struct {
	// entries holds slot+1 so the zero value means empty.
	entries []uint32
	mask    uint32
	n       int
	flowAt  func(slot uint32) packet.Flow
}

// New builds an empty index. flowAt must return the flow stored in a
// slot previously Inserted and not yet Deleted; it is never called for
// other slots.
func New(flowAt func(slot uint32) packet.Flow) *Index {
	return &Index{
		entries: make([]uint32, minBuckets),
		mask:    minBuckets - 1,
		flowAt:  flowAt,
	}
}

// Len returns the number of live entries.
func (ix *Index) Len() int { return ix.n }

// MemBytes returns the index's table footprint in bytes.
func (ix *Index) MemBytes() int { return len(ix.entries) * 4 }

// Lookup returns the slot stored for the flow. 0 allocations.
func (ix *Index) Lookup(f packet.Flow) (slot uint32, ok bool) {
	i := f.Hash() & ix.mask
	for {
		e := ix.entries[i]
		if e == 0 {
			return 0, false
		}
		if s := e - 1; ix.flowAt(s) == f {
			return s, true
		}
		i = (i + 1) & ix.mask
	}
}

// Insert records flow → slot. The caller must have already written the
// flow into the slot (flowAt(slot) == f). Inserting a flow that is
// already present is a caller bug; the index does not check.
func (ix *Index) Insert(f packet.Flow, slot uint32) {
	if (ix.n+1)*4 >= len(ix.entries)*3 {
		ix.grow()
	}
	ix.insert(f.Hash(), slot)
	ix.n++
}

func (ix *Index) insert(hash, slot uint32) {
	i := hash & ix.mask
	for ix.entries[i] != 0 {
		i = (i + 1) & ix.mask
	}
	ix.entries[i] = slot + 1
}

// grow doubles the table and reinserts every entry. Bounded allocations
// per establish: amortized O(1) table growth, nothing per lookup.
func (ix *Index) grow() {
	old := ix.entries
	ix.entries = make([]uint32, len(old)*2)
	ix.mask = uint32(len(ix.entries) - 1)
	for _, e := range old {
		if e != 0 {
			s := e - 1
			ix.insert(ix.flowAt(s).Hash(), s)
		}
	}
}

// Delete removes the flow. The slot's flow must still be readable via
// flowAt (delete before recycling the slot). Missing flows are ignored.
func (ix *Index) Delete(f packet.Flow) {
	i := f.Hash() & ix.mask
	for {
		e := ix.entries[i]
		if e == 0 {
			return
		}
		if ix.flowAt(e-1) == f {
			break
		}
		i = (i + 1) & ix.mask
	}
	ix.n--
	// Backward-shift compaction: close the hole by sliding down any
	// follower whose home bucket would be unreachable past the hole.
	hole := i
	j := i
	for {
		j = (j + 1) & ix.mask
		e := ix.entries[j]
		if e == 0 {
			break
		}
		home := ix.flowAt(e-1).Hash() & ix.mask
		// Move e into the hole iff the hole lies cyclically between
		// home and j (i.e. the probe from home would hit the hole
		// before reaching j).
		if inProbeRange(home, hole, j) {
			ix.entries[hole] = e
			hole = j
		}
	}
	ix.entries[hole] = 0
}

// inProbeRange reports whether hole ∈ [home, j) cyclically.
func inProbeRange(home, hole, j uint32) bool {
	if home <= j {
		return home <= hole && hole < j
	}
	return home <= hole || hole < j
}

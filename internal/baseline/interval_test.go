package baseline

import (
	"testing"
	"testing/quick"
)

func ivsEqual(a, b []interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertIntervalMerging(t *testing.T) {
	var ivs []interval
	if !insertInterval(&ivs, interval{10, 20}, 32) {
		t.Fatal("insert into empty failed")
	}
	// Disjoint after.
	insertInterval(&ivs, interval{30, 40}, 32)
	if !ivsEqual(ivs, []interval{{10, 20}, {30, 40}}) {
		t.Fatalf("ivs = %v", ivs)
	}
	// Bridging segment merges everything.
	insertInterval(&ivs, interval{15, 35}, 32)
	if !ivsEqual(ivs, []interval{{10, 40}}) {
		t.Fatalf("ivs = %v", ivs)
	}
	// Adjacent extends.
	insertInterval(&ivs, interval{40, 50}, 32)
	if !ivsEqual(ivs, []interval{{10, 50}}) {
		t.Fatalf("ivs = %v", ivs)
	}
	// Disjoint before.
	insertInterval(&ivs, interval{0, 5}, 32)
	if !ivsEqual(ivs, []interval{{0, 5}, {10, 50}}) {
		t.Fatalf("ivs = %v", ivs)
	}
}

func TestInsertIntervalSingleIntervalPolicy(t *testing.T) {
	// The TAS/FlexTOE policy: max one interval; disjoint data rejected.
	var ivs []interval
	if !insertInterval(&ivs, interval{100, 200}, 1) {
		t.Fatal("first interval rejected")
	}
	if insertInterval(&ivs, interval{300, 400}, 1) {
		t.Fatal("second disjoint interval accepted with max=1")
	}
	if !ivsEqual(ivs, []interval{{100, 200}}) {
		t.Fatalf("ivs mutated on rejection: %v", ivs)
	}
	// Extension of the tracked interval is accepted.
	if !insertInterval(&ivs, interval{200, 250}, 1) {
		t.Fatal("adjacent extension rejected")
	}
	if !ivsEqual(ivs, []interval{{100, 250}}) {
		t.Fatalf("ivs = %v", ivs)
	}
}

func TestInsertIntervalPropertySortedDisjoint(t *testing.T) {
	// Property: after any insertion sequence the set is sorted, disjoint,
	// and non-adjacent.
	f := func(raw []uint16) bool {
		var ivs []interval
		for i := 0; i+1 < len(raw); i += 2 {
			a, b := uint64(raw[i]), uint64(raw[i])+uint64(raw[i+1]%512)+1
			insertInterval(&ivs, interval{a, b}, 32)
		}
		for i := 0; i < len(ivs); i++ {
			if ivs[i].start >= ivs[i].end {
				return false
			}
			if i > 0 && ivs[i-1].end >= ivs[i].start {
				return false // overlapping or adjacent: should have merged
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCircularBufferHelpers(t *testing.T) {
	buf := make([]byte, 16)
	data := []byte("hello-world")
	writeCirc(buf, 10, data) // wraps
	out := make([]byte, len(data))
	readCirc(buf, 10, out)
	if string(out) != string(data) {
		t.Fatalf("got %q", out)
	}
}

func TestSeqUnwrapping(t *testing.T) {
	c := &bconn{iss: 0xfffffff0, irs: 0xffffff00}
	// Sender: offset 0x20 wraps past 2^32.
	if got := c.sndSeq(0x20); got != 0x10 {
		t.Fatalf("sndSeq = %#x", got)
	}
	// Receiver: a segment shortly after the wrapped irs.
	c.rcvd = 0x100 // rcv.nxt at irs+0x100 = 0x0
	if got := c.rcvOff(0x10); got != 0x110 {
		t.Fatalf("rcvOff = %#x", got)
	}
	// Ack unwrapping.
	c.una = 0x10 // una seq = 0x0
	if got := c.ackOff(0x8); got != 0x18 {
		t.Fatalf("ackOff = %#x", got)
	}
}

func TestProfilesDistinct(t *testing.T) {
	l, ta, ch := LinuxProfile(), TASProfile(), ChelsioProfile()
	if l.Recovery != RecoverySACK || ta.Recovery != RecoveryGBN || ch.Recovery != RecoveryDiscard {
		t.Fatal("recovery policies wrong")
	}
	if !ch.ASIC || l.ASIC || ta.ASIC {
		t.Fatal("ASIC flags wrong")
	}
	if ta.StackCores == 0 {
		t.Fatal("TAS must have dedicated fast-path cores")
	}
	// Table 1 ordering: Linux is the most expensive per segment, TAS the
	// cheapest host-TCP.
	linuxPerSeg := l.DriverPerSeg + l.TCPPerSeg + l.OtherPerSeg
	tasPerSeg := ta.DriverPerSeg + ta.TCPPerSeg + ta.OtherPerSeg
	if linuxPerSeg <= tasPerSeg {
		t.Fatal("Linux per-segment cost should exceed TAS")
	}
	if p := ChelsioProfile(); p.mss() != 1448 {
		t.Fatalf("default MSS = %d", p.mss())
	}
}

package baseline

import (
	"testing"

	"flextoe/internal/packet"
	"flextoe/internal/tcpseg"
)

// The interval-set implementation itself lives in tcpseg (shared with the
// FlexTOE protocol stage) and is property-tested there; these tests cover
// the baseline-side policy wiring and the circular-buffer/sequence
// helpers.

func TestProfileOOOIntervalDefaults(t *testing.T) {
	l, ta, ch := LinuxProfile(), TASProfile(), ChelsioProfile()
	if l.oooIvs() != 32 {
		t.Fatalf("Linux/SACK intervals = %d, want 32", l.oooIvs())
	}
	if ta.oooIvs() != 1 {
		t.Fatalf("TAS/GBN intervals = %d, want 1", ta.oooIvs())
	}
	if ch.oooIvs() != 0 {
		t.Fatalf("Chelsio/Discard intervals = %d, want 0", ch.oooIvs())
	}
	// Explicit override wins (the multi-interval generalization knob).
	ta.OOOIntervals = 4
	if ta.oooIvs() != 4 {
		t.Fatalf("override = %d, want 4", ta.oooIvs())
	}
}

func TestBaselineIntervalPolicy(t *testing.T) {
	// GBN keeps one interval: disjoint OOO payload is rejected.
	tas, linux := TASProfile(), LinuxProfile()
	var ivs []tcpseg.SeqInterval
	ivs, r := tcpseg.InsertSeqInterval(ivs, tcpseg.SeqInterval{Start: 100, End: 200}, tas.oooIvs())
	if !r.Accepted {
		t.Fatal("first interval rejected")
	}
	ivs, r = tcpseg.InsertSeqInterval(ivs, tcpseg.SeqInterval{Start: 300, End: 400}, tas.oooIvs())
	if r.Accepted {
		t.Fatal("GBN accepted a second disjoint interval")
	}
	// SACK-style capacity takes it.
	ivs, r = tcpseg.InsertSeqInterval(ivs, tcpseg.SeqInterval{Start: 300, End: 400}, linux.oooIvs())
	if !r.Accepted || len(ivs) != 2 {
		t.Fatalf("SACK insert failed: %v %+v", ivs, r)
	}
}

// TestSACKAdvertisementRotation pins the RFC 2018 ordering rules for a
// receiver tracking more holes than the wire can carry: the first block
// always holds the most recently received segment, and consecutive ACKs
// rotate the older holes through the remaining slots so every hole is
// advertised within ceil(k/(MaxSACKBlocks-1)) ACKs — the Fig. 15e
// scenario where the Linux receiver's 32 intervals meet the 4-block
// option space.
func TestSACKAdvertisementRotation(t *testing.T) {
	c := &bconn{irs: 1000}
	// Six disjoint holes; the most recent arrival extended the fourth.
	for i := 0; i < 6; i++ {
		c.ivs = append(c.ivs, tcpseg.SeqInterval{Start: uint32(100 * (i + 1)), End: uint32(100*(i+1) + 50)})
	}
	c.lastOOO = c.ivs[3].Start

	blockSet := func() map[uint32]bool {
		var tcp packet.TCP
		c.appendSACK(&tcp)
		if tcp.NumSACK != packet.MaxSACKBlocks {
			t.Fatalf("advertised %d blocks, want %d", tcp.NumSACK, packet.MaxSACKBlocks)
		}
		if tcp.SACKBlocks[0].Start != c.irs+c.ivs[3].Start {
			t.Fatalf("first block %d: most recent interval must lead", tcp.SACKBlocks[0].Start-c.irs)
		}
		seen := make(map[uint32]bool)
		for i := uint8(0); i < tcp.NumSACK; i++ {
			seen[tcp.SACKBlocks[i].Start-c.irs] = true
		}
		return seen
	}

	// Across two consecutive ACKs the rotation must expose every one of
	// the six holes (1 recent + 3 rotating slots per ACK).
	all := blockSet()
	for s := range blockSet() {
		all[s] = true
	}
	for _, iv := range c.ivs {
		if !all[iv.Start] {
			t.Fatalf("hole at %d never advertised across two ACKs: %v", iv.Start, all)
		}
	}

	// A single-hole set advertises exactly that hole.
	c.ivs = c.ivs[:1]
	c.lastOOO = c.ivs[0].Start
	var tcp packet.TCP
	c.appendSACK(&tcp)
	if tcp.NumSACK != 1 || tcp.SACKBlocks[0].Start != c.irs+100 {
		t.Fatalf("single hole advertisement wrong: %+v", tcp.SACKBlocks[:tcp.NumSACK])
	}
}

func TestCircularBufferHelpers(t *testing.T) {
	buf := make([]byte, 16)
	data := []byte("hello-world")
	writeCirc(buf, 10, data) // wraps
	out := make([]byte, len(data))
	readCirc(buf, 10, out)
	if string(out) != string(data) {
		t.Fatalf("got %q", out)
	}
}

func TestSeqUnwrapping(t *testing.T) {
	c := &bconn{iss: 0xfffffff0, irs: 0xffffff00}
	// Sender: offset 0x20 wraps past 2^32.
	if got := c.sndSeq(0x20); got != 0x10 {
		t.Fatalf("sndSeq = %#x", got)
	}
	// Receiver: a segment shortly after the wrapped irs.
	c.rcvd = 0x100 // rcv.nxt at irs+0x100 = 0x0
	if got := c.rcvOff(0x10); got != 0x110 {
		t.Fatalf("rcvOff = %#x", got)
	}
	// Ack unwrapping.
	c.una = 0x10 // una seq = 0x0
	if got := c.ackOff(0x8); got != 0x18 {
		t.Fatalf("ackOff = %#x", got)
	}
}

func TestProfilesDistinct(t *testing.T) {
	l, ta, ch := LinuxProfile(), TASProfile(), ChelsioProfile()
	if l.Recovery != RecoverySACK || ta.Recovery != RecoveryGBN || ch.Recovery != RecoveryDiscard {
		t.Fatal("recovery policies wrong")
	}
	if !ch.ASIC || l.ASIC || ta.ASIC {
		t.Fatal("ASIC flags wrong")
	}
	if ta.StackCores == 0 {
		t.Fatal("TAS must have dedicated fast-path cores")
	}
	// Table 1 ordering: Linux is the most expensive per segment, TAS the
	// cheapest host-TCP.
	linuxPerSeg := l.DriverPerSeg + l.TCPPerSeg + l.OtherPerSeg
	tasPerSeg := ta.DriverPerSeg + ta.TCPPerSeg + ta.OtherPerSeg
	if linuxPerSeg <= tasPerSeg {
		t.Fatal("Linux per-segment cost should exceed TAS")
	}
	if p := ChelsioProfile(); p.mss() != 1448 {
		t.Fatalf("default MSS = %d", p.mss())
	}
}

package baseline

import (
	"flextoe/internal/api"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
)

// Listen registers an accept handler for a port. The listen backlog
// (Profile.ListenBacklog; 0 = unbounded) caps half-open connections per
// port: SYNs beyond it are silently dropped, as a kernel does when the
// SYN queue overflows.
func (s *Stack) Listen(port uint16, accept func(api.Socket)) {
	s.listeners[port] = &blistener{accept: accept}
}

// Dial opens a connection to a remote endpoint. The MAC is resolved via
// ResolveMAC (static ARP).
func (s *Stack) Dial(remote api.Addr, connected func(api.Socket)) {
	s.nextPort++
	flow := packet.Flow{SrcIP: s.localIP, DstIP: remote.IP, SrcPort: s.nextPort, DstPort: remote.Port}
	mac := packet.EtherAddr{}
	if s.ResolveMAC != nil {
		mac = s.ResolveMAC(remote.IP)
	}
	c := s.newConn(flow, mac)
	c.connected = connected
	c.active = true
	syn := s.mkPacket(c, c.iss-1, packet.FlagSYN)
	syn.TCP.MSS = 1448
	syn.TCP.WScale = tcpseg.WindowScale
	syn.TCP.SACKPerm = s.prof.Recovery == RecoverySACK
	s.iface.Send(s.frames.NewFrame(syn, s.eng.Now()))
}

// ResolveMAC maps destination IPs to MACs (installed by the testbed).
var _ = 0 // placeholder to keep the field near its docs

func (s *Stack) newConn(flow packet.Flow, peerMAC packet.EtherAddr) *bconn {
	c := &bconn{
		stack:        s,
		flow:         flow,
		peerMAC:      peerMAC,
		iss:          uint32(s.rng.Uint64()) + 1,
		txData:       make([]byte, s.bufSize),
		rxData:       make([]byte, s.bufSize),
		rxAvail:      s.bufSize,
		cwnd:         10 * 1448,
		ssthresh:     1 << 30,
		remoteWin:    s.bufSize,
		finAt:        ^uint64(0),
		lastProgress: s.eng.Now(),
	}
	s.installConn(c)
	return c
}

// handshake processes segments for unknown flows (SYN, SYN-ACK, final
// ACK) with a simplified three-way handshake.
func (s *Stack) handshake(pkt *packet.Packet, flow packet.Flow) {
	tcp := &pkt.TCP
	switch {
	case tcp.HasFlag(packet.FlagSYN | packet.FlagACK):
		// This side sent the SYN: the conn exists keyed by flow.
		// (handled below via conns lookup in rx — unreachable here)
	case tcp.HasFlag(packet.FlagSYN):
		l, ok := s.listeners[tcp.DstPort]
		if !ok {
			return
		}
		if max := s.prof.ListenBacklog; max > 0 && l.pendingN >= max {
			// SYN-queue overflow: drop silently (no RST), like a kernel
			// under a SYN flood. The peer's SYN retransmission — or, in
			// this simulation, the dial simply never completing — is the
			// observable effect.
			s.SYNDrops++
			s.BacklogOverflows++
			return
		}
		c := s.newConn(flow, pkt.Eth.Src)
		c.halfOpen = true
		l.pendingN++
		c.irs = tcp.Seq + 1
		c.synDone = true
		c.sackOK = tcp.SACKPerm && s.prof.Recovery == RecoverySACK
		if tcp.Window > 0 {
			c.remoteWin = uint32(tcp.Window) << tcpseg.WindowScale
		}
		sa := s.mkPacket(c, c.iss-1, packet.FlagSYN|packet.FlagACK)
		sa.TCP.Ack = c.irs
		sa.TCP.MSS = 1448
		sa.TCP.WScale = tcpseg.WindowScale
		sa.TCP.SACKPerm = c.sackOK
		s.iface.Send(s.frames.NewFrame(sa, s.eng.Now()))
		sock := newBSocket(c)
		c.sock = sock
		//flexvet:hotclosure passive open runs once per connection, not per event
		s.eng.Immediately(func() { l.accept(sock) })
	}
}

// connHandshakeRx handles SYN-ACK completion for active opens; called
// from rx when the conn exists but isn't established yet.
func (s *Stack) connHandshakeRx(c *bconn, pkt *packet.Packet) bool {
	tcp := &pkt.TCP
	if c.active && !c.synDone && tcp.HasFlag(packet.FlagSYN|packet.FlagACK) {
		c.irs = tcp.Seq + 1
		c.synDone = true
		c.sackOK = tcp.SACKPerm && s.prof.Recovery == RecoverySACK
		if tcp.Window > 0 {
			c.remoteWin = uint32(tcp.Window) << tcpseg.WindowScale
		}
		s.sendAck(c, false)
		sock := newBSocket(c)
		c.sock = sock
		if c.connected != nil {
			cb := c.connected
			//flexvet:hotclosure active open completes once per connection, not per event
			s.eng.Immediately(func() { cb(sock) })
		}
		return true
	}
	return false
}

// bsocket implements api.Socket over the baseline engine.
type bsocket struct {
	c          *bconn
	readable   uint32
	onReadable func()
	onWritable func()
	closedFlag bool
}

func newBSocket(c *bconn) *bsocket { return &bsocket{c: c} }

var _ api.Socket = (*bsocket)(nil)

func (k *bsocket) LocalAddr() api.Addr {
	return api.Addr{IP: k.c.flow.SrcIP, Port: k.c.flow.SrcPort}
}

func (k *bsocket) RemoteAddr() api.Addr {
	return api.Addr{IP: k.c.flow.DstIP, Port: k.c.flow.DstPort}
}

func (k *bsocket) Readable() int { return int(k.readable) }

func (k *bsocket) TxSpace() int {
	return int(uint64(len(k.c.txData)) - (k.c.appended - k.c.una))
}

func (k *bsocket) OnReadable(f func()) { k.onReadable = f }
func (k *bsocket) OnWritable(f func()) { k.onWritable = f }

// Peek returns the readable byte stream as up to two slices of the
// kernel socket buffer. The baseline personalities implement the
// zero-copy view API so identical application binaries run across all
// four stacks, but — unlike libTOE — the per-byte cost is not avoided:
// the kernel already paid the skb-to-socket-buffer copy on the segment
// path, and Consume/Commit keep charging it. The views only spare the
// application its own staging buffers.
func (k *bsocket) Peek() (a, b []byte) {
	return circSlices(k.c.rxData, k.c.readPos, int(k.readable))
}

// Consume releases the first n readable bytes, reopening the receive
// window and charging the socket-call cost (including the kernel copy,
// which a kernel-mediated stack cannot eliminate).
func (k *bsocket) Consume(n int) {
	if n == 0 {
		return
	}
	if n < 0 || uint32(n) > k.readable {
		panic("baseline: Consume beyond readable bytes")
	}
	c := k.c
	s := c.stack
	c.readPos += uint64(n)
	k.readable -= uint32(n)
	if c.rxAvail>>tcpseg.WindowScale == 0 {
		c.needWinUpdate = true
	}
	c.rxAvail += uint32(n)
	cost := s.prof.SocketPerOp + int64(float64(n)*s.prof.PerByte)
	c.appCore().SubmitCall(sim.TaskC(cost), bconnRecvDone, c)
}

// Reserve returns up to n bytes of free socket transmit buffer to stage
// into, starting at the current append position.
func (k *bsocket) Reserve(n int) (a, b []byte) {
	if n <= 0 {
		return nil, nil
	}
	if free := k.TxSpace(); n > free {
		n = free
	}
	return circSlices(k.c.txData, k.c.appended, n)
}

// Commit publishes the next n staged bytes and triggers transmission,
// charging the socket-call cost on the application's core.
func (k *bsocket) Commit(n int) {
	if n == 0 {
		return
	}
	if n < 0 || n > k.TxSpace() {
		panic("baseline: Commit beyond transmit buffer space")
	}
	c := k.c
	s := c.stack
	c.appended += uint64(n)
	cost := s.prof.SocketPerOp + int64(float64(n)*s.prof.PerByte)
	if s.prof.ASIC {
		// Kernel-mediated TOE API: the host driver runs per write.
		cost += s.prof.DriverPerSeg + s.prof.OtherPerSeg
	}
	c.appCore().SubmitCall(sim.TaskC(cost), bconnTxPump, c)
}

// Send copies into the socket buffer and triggers transmission: the
// compatibility wrapper over Reserve/Commit.
func (k *bsocket) Send(p []byte) int {
	a, b := k.Reserve(len(p))
	n := copy(a, p)
	n += copy(b, p[n:])
	if n == 0 {
		return 0
	}
	k.Commit(n)
	return n
}

// bconnTxPump / bconnRecvDone are the socket calls' charged completions
// (see host.Core.SubmitCall).
func bconnTxPump(a any) {
	c := a.(*bconn)
	c.stack.txPump(c)
}

func bconnRecvDone(a any) {
	c := a.(*bconn)
	if c.needWinUpdate {
		c.needWinUpdate = false
		c.stack.sendAck(c, false) // window update
	}
}

// Recv drains readable bytes, reopening the receive window: the
// compatibility wrapper over Peek/Consume.
func (k *bsocket) Recv(p []byte) int {
	a, b := k.Peek()
	n := copy(p, a)
	if n < len(p) {
		n += copy(p[n:], b)
	}
	if n == 0 {
		return 0
	}
	k.Consume(n)
	return n
}

// Close sends FIN after buffered data.
func (k *bsocket) Close() {
	if k.closedFlag {
		return
	}
	k.closedFlag = true
	c := k.c
	c.finAt = c.appended
	c.stack.txPump(c)
}

// rxArrived is the engine's delivery notification: the application wakes
// (paying the stack's wakeup latency if it was sleeping) and is charged
// the host-side delivery cost. On the Chelsio personality this is where
// the host pays its driver and kernel-glue cycles — the ASIC did the TCP
// work, but the "sophisticated TOE NIC driver" (§2.1) still runs here.
func (k *bsocket) rxArrived(n uint32) {
	if n == 0 {
		return
	}
	k.readable += n
	if k.onReadable != nil {
		core := k.c.appCore()
		cb := k.onReadable
		prof := &k.c.stack.prof
		cycles := prof.SocketPerOp / 4
		if prof.ASIC {
			cycles += prof.DriverPerSeg + prof.OtherPerSeg
		}
		task := sim.TaskC(cycles)
		// Inline stacks already paid the wakeup at interrupt time (rx);
		// only dedicated-core and ASIC personalities wake the app here.
		distinct := len(k.c.stack.stackCores) > 0 || prof.ASIC
		if distinct && !core.Busy() && prof.NotifyWakeupUs > 0 {
			task = task.Add(0, sim.Time(prof.NotifyWakeupUs*float64(sim.Microsecond)))
		}
		if prof.ASIC && prof.SpikeProb > 0 && k.c.stack.rng.Bool(prof.SpikeProb) {
			// The TOE's kernel-mediated delivery path still suffers
			// interrupt/scheduler spikes — the tail §5.2 measures.
			task = task.Add(0, sim.Time(k.c.stack.rng.Exp(prof.SpikeMeanUs)*float64(sim.Microsecond)))
		}
		core.Submit(task, cb)
	}
}

// txFreed reports acknowledged bytes.
func (k *bsocket) txFreed(n uint32) {
	if k.onWritable != nil {
		k.onWritable()
	}
}

// peerClosed reports the peer's FIN.
func (k *bsocket) peerClosed() {
	if k.onReadable != nil {
		k.onReadable()
	}
}

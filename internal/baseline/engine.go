package baseline

import (
	"flextoe/internal/api"
	"flextoe/internal/conntab"
	"flextoe/internal/host"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/tcpseg"
)

// Stack is one machine's baseline TCP stack instance.
type Stack struct {
	eng        *sim.Engine
	prof       Profile
	iface      *netsim.Iface
	machine    *host.Machine
	stackCores []*host.Core
	lock       *sim.Resource // global kernel lock (Linux/Chelsio)
	asic       *sim.Resource // Chelsio's on-NIC TCP engine
	rng        *stats.RNG

	localIP  packet.IPv4Addr
	localMAC packet.EtherAddr
	bufSize  uint32

	// Connection table: an open-addressed flow-hash index into a dense
	// slot array (doc.go "Connection state budget"). Slot ids of removed
	// connections recycle FIFO so straggling timer carriers and in-flight
	// segment work see a nil slot, not a stranger.
	flowIdx  *conntab.Index
	slots    []*bconn
	free     []uint32
	freeHead int
	nLive    int
	// connList is the deterministic establishment-order scan list
	// (swap-compacted on removal); iterating a map here would randomize
	// event order between identical runs.
	connList  []*bconn
	listeners map[uint16]*blistener
	nextPort  uint16

	// timerFree recycles per-connection retransmission-timer carriers:
	// each live connection with bytes (or a FIN) outstanding holds at most
	// one armed timer on the engine wheel, so timer cost scales with
	// active connections, not with the table size.
	timerFree shm.Freelist[btimer]

	// ResolveMAC maps destination IPs to MACs (static ARP, installed by
	// the testbed).
	ResolveMAC func(ip packet.IPv4Addr) packet.EtherAddr

	// Shard-local pools (SHAREDSTATE.md): packets/frames come from this
	// stack's engine, and segFree recycles segment work carriers per
	// stack.
	pkts    *packet.Pool
	frames  *netsim.FramePool
	segFree shm.Freelist[segWork]

	// Statistics.
	RxSegs, TxSegs   uint64
	Retransmits      uint64
	FastRetx         uint64
	SYNDrops         uint64 // SYNs silently dropped (no RST), all causes
	BacklogOverflows uint64 // SYN drops due to a full listen backlog
	// Wire-level ground truth for flowmon's passive cross-validation,
	// mirroring the core.Counters fields of the same names. RetxSegs /
	// RetxBytes count at emitSegment against the sent high-water mark, so
	// every re-sent byte is accounted no matter which recovery path
	// (fast retransmit, SACK repair, RTO) emitted it.
	RetxSegs    uint64 // transmitted segments carrying previously sent bytes
	RetxBytes   uint64 // previously transmitted payload bytes re-sent
	OOOAccepted uint64 // out-of-order segments buffered for reassembly
	OOODropped  uint64 // out-of-order segments dropped (capacity or policy)
	DupAcks     uint64 // pure duplicate acknowledgments received
}

// blistener is one listening port: the accept callback plus the count of
// half-open (SYN-received, first-ACK pending) connections charged against
// Profile.ListenBacklog.
type blistener struct {
	accept   func(api.Socket)
	pendingN int
}

// NewStack builds a baseline stack on a NIC interface.
func NewStack(eng *sim.Engine, prof Profile, iface *netsim.Iface,
	machine *host.Machine, localIP packet.IPv4Addr, bufSize uint32, seed uint64) *Stack {

	s := &Stack{
		eng:       eng,
		prof:      prof,
		iface:     iface,
		machine:   machine,
		rng:       stats.NewRNG(seed ^ uint64(localIP)),
		localIP:   localIP,
		localMAC:  iface.MAC,
		bufSize:   bufSize,
		pkts:      packet.PoolOf(eng),
		frames:    netsim.FramesOf(eng),
		listeners: make(map[uint16]*blistener),
		nextPort:  30000,
	}
	s.flowIdx = conntab.New(func(slot uint32) packet.Flow { return s.slots[slot].flow })
	hz := machine.Cores[0].Hz()
	s.lock = sim.NewResource(eng, prof.Name+"/lock", float64(hz))
	if prof.ASIC {
		s.asic = sim.NewResource(eng, prof.Name+"/asic", 1e9/prof.ASICSegNs)
	}
	for i := 0; i < prof.StackCores; i++ {
		s.stackCores = append(s.stackCores, host.NewCore(eng, prof.Name+"/fastpath", hz))
	}
	iface.Recv = s.rx
	return s
}

// Name returns the stack personality name.
func (s *Stack) Name() string { return s.prof.Name }

// Machine returns the application CPU model.
func (s *Stack) Machine() *host.Machine { return s.machine }

// Engine returns the shard engine this stack runs on.
func (s *Stack) Engine() *sim.Engine { return s.eng }

// LocalIP returns the machine address.
func (s *Stack) LocalIP() packet.IPv4Addr { return s.localIP }

// Profile returns the personality (mutable for experiments).
func (s *Stack) Profile() *Profile { return &s.prof }

// StackCoreCount reports dedicated fast-path cores (TAS), for core
// accounting in scaling experiments.
func (s *Stack) StackCoreCount() int { return len(s.stackCores) }

// FastPathInstructions sums the work done on dedicated stack cores.
func (s *Stack) FastPathInstructions() uint64 {
	var n uint64
	for _, c := range s.stackCores {
		n += c.Instructions
	}
	return n
}

// SetStackCores reconfigures the number of dedicated fast-path cores.
func (s *Stack) SetStackCores(n int) {
	hz := s.machine.Cores[0].Hz()
	s.stackCores = s.stackCores[:0]
	for i := 0; i < n; i++ {
		s.stackCores = append(s.stackCores, host.NewCore(s.eng, s.prof.Name+"/fastpath", hz))
	}
}

// bconn is one baseline connection.
type bconn struct {
	stack   *Stack
	flow    packet.Flow
	peerMAC packet.EtherAddr

	// Table bookkeeping (doc.go "Connection state budget"): id is the
	// dense slot, listIdx the position in the establishment-order scan
	// list. live gates straggling timer fires and deferred segment work
	// after removal.
	id       uint32
	listIdx  int
	live     bool
	rtoArmed bool
	halfOpen bool     // passive open awaiting its first post-handshake segment
	lingerAt sim.Time // fully-closed reclaim deadline; 0 = not yet scheduled

	// Sender (absolute stream offsets; seq = iss + uint32(offset)).
	iss      uint32
	una      uint64 // oldest unacked
	nxt      uint64 // next to send
	sentHigh uint64 // highest offset ever emitted (retransmit detection)
	appended uint64 // bytes the app has written
	txData   []byte // circular, bufSize
	finAt    uint64 // stream offset of FIN; ^0 = none
	finSent  bool
	finAcked bool

	cwnd         uint32
	ssthresh     uint32
	dupacks      int
	remoteWin    uint32
	lastProgress sim.Time
	srtt         sim.Time
	backoff      int

	// Receiver.
	irs     uint32
	rcvd    uint64 // in-order received (rcv.nxt offset)
	readPos uint64 // app read position
	rxData  []byte
	rxAvail uint32
	// Out-of-order intervals (policy-capped), shared with the FlexTOE
	// protocol stage: stored as truncated 32-bit stream offsets, valid
	// because every interval lies within the (< 2^31) receive window of
	// rcvd.
	ivs     []tcpseg.SeqInterval
	peerFin bool
	// SACK advertisement rotation (RFC 2018): lastOOO is the truncated
	// stream offset of the most recently accepted out-of-order segment —
	// its interval leads every advertisement — and sackRot is the cursor
	// that cycles the older holes through the remaining wire slots on
	// consecutive ACKs.
	lastOOO uint32
	sackRot int

	// SACK scoreboard (RecoverySACK): peer-held ranges in sender sequence
	// space, fed by incoming SACK blocks — the same interval machinery
	// the FlexTOE protocol stage uses, so Linux's selective repeat and
	// the offloaded path share one implementation.
	sack []tcpseg.SeqInterval

	sock    *bsocket
	pumping bool
	txN     uint64 // segment size staged by txStep for bconnEmit
	// needWinUpdate: a Recv reopened a closed receive window; the charged
	// socket-call completion must re-advertise it.
	needWinUpdate bool

	// Handshake.
	active    bool // we sent the SYN
	synDone   bool
	sackOK    bool // SACK-permitted negotiated on SYN/SYN-ACK
	connected func(api.Socket)
}

func (c *bconn) sndSeq(off uint64) uint32 { return c.iss + uint32(off) }
func (c *bconn) rcvOff(seq uint32) uint64 {
	// Unwrap a 32-bit sequence near the current receive point.
	base := c.rcvd
	rel := int32(seq - (c.irs + uint32(base)))
	return uint64(int64(base) + int64(rel))
}
func (c *bconn) ackOff(ack uint32) uint64 {
	base := c.una
	rel := int32(ack - (c.iss + uint32(base)))
	return uint64(int64(base) + int64(rel))
}

// appCore returns the core application callbacks run on (RSS-style
// connection-to-core affinity).
func (c *bconn) appCore() *host.Core {
	cores := c.stack.machine.Cores
	return cores[int(c.flow.Hash())%len(cores)]
}

// stackCore returns where segment processing executes.
func (c *bconn) stackCore() *host.Core {
	s := c.stack
	if len(s.stackCores) > 0 {
		return s.stackCores[int(c.flow.Hash())%len(s.stackCores)]
	}
	return c.appCore()
}

// segCost builds the per-segment processing task, including lock
// serialization, connection-count penalties, and scheduler spikes.
func (s *Stack) segCost(conns int) sim.Task {
	p := &s.prof
	cycles := p.DriverPerSeg + p.TCPPerSeg + p.OtherPerSeg
	if p.ConnPenalty > 0 && conns > 1 {
		cycles += int64(p.ConnPenalty * log2(conns))
	}
	var stall sim.Time
	if p.SpikeProb > 0 && s.rng.Bool(p.SpikeProb) {
		stall = sim.Time(s.rng.Exp(p.SpikeMeanUs) * float64(sim.Microsecond))
	}
	if p.ASIC {
		// Host only pays driver + glue; TCP ran on the ASIC.
		cycles = p.DriverPerSeg + p.OtherPerSeg
	}
	return sim.TaskC(cycles).Add(0, stall)
}

func log2(n int) float64 {
	v := 0.0
	for n > 1 {
		v++
		n >>= 1
	}
	return v
}

// segWork carries one received segment through the cost model's deferred
// stages (lock, stack-core task) without a closure per segment. Pooled:
// segWorkHandle consumes and recycles the carrier before running the
// protocol logic.
type segWork struct {
	s    *Stack
	c    *bconn
	pkt  *packet.Packet
	core *host.Core
	task sim.Task
}

func (s *Stack) getSegWork() *segWork {
	if w := s.segFree.Get(); w != nil {
		return w
	}
	return &segWork{}
}

// segWorkSubmit runs when the kernel lock is acquired: queue the segment
// task on its stack core.
func segWorkSubmit(a any) {
	w := a.(*segWork)
	w.core.SubmitCall(w.task, segWorkHandle, w)
}

// segWorkHandle runs when the segment's processing cost has been paid.
func segWorkHandle(a any) {
	w := a.(*segWork)
	s, c, pkt := w.s, w.c, w.pkt
	*w = segWork{}
	s.segFree.Put(w)
	s.handleSeg(c, pkt)
}

// rx is the NIC receive path. The frame returns to the fabric pool here;
// the packet is consumed (and recycled) at the end of handleSeg.
func (s *Stack) rx(f *netsim.Frame) {
	pkt := f.Pkt
	netsim.ReleaseFrame(f)
	flow := pkt.Flow().Reverse()
	c := s.lookup(flow)
	if c == nil {
		// handshake consumes the segment synchronously (it never retains
		// the packet), so its journey ends here on every branch.
		s.handshake(pkt, flow)
		packet.Release(pkt)
		return
	}
	if !c.synDone {
		if s.connHandshakeRx(c, pkt) {
			packet.Release(pkt)
			return
		}
	}
	if c.halfOpen {
		// First segment after the SYN/SYN-ACK exchange: the passive open
		// graduates from the listen backlog.
		c.halfOpen = false
		if l := s.listeners[flow.SrcPort]; l != nil && l.pendingN > 0 {
			l.pendingN--
		}
	}
	s.RxSegs++
	w := s.getSegWork()
	w.s, w.c, w.pkt = s, c, pkt
	if s.prof.ASIC {
		// TCP on the NIC: the ASIC processes the segment; the host is
		// charged when the app is notified.
		s.asic.AcquireCall(1, 0, segWorkHandle, w)
		return
	}
	core := c.stackCore()
	task := s.segCost(s.nLive)
	if len(s.stackCores) == 0 && !core.Busy() && s.prof.NotifyWakeupUs > 0 {
		// Inline stack on an idle core: the interrupt must wake the
		// CPU and schedule the softirq before any TCP work happens.
		task = task.Add(0, sim.Time(s.prof.NotifyWakeupUs*float64(sim.Microsecond)))
	}
	if s.prof.LockFrac > 0 {
		lockCycles := int64(float64(s.prof.TCPPerSeg) * s.prof.LockFrac)
		w.core, w.task = core, task
		s.lock.AcquireCall(lockCycles, 0, segWorkSubmit, w)
		return
	}
	core.SubmitCall(task, segWorkHandle, w)
}

// handleSeg runs the protocol logic (after the cost model).
func (s *Stack) handleSeg(c *bconn, pkt *packet.Packet) {
	if !c.live {
		// The connection was reclaimed while this segment's processing
		// cost was still queued behind the lock or a busy core.
		packet.Release(pkt)
		return
	}
	tcp := &pkt.TCP

	// --- ACK processing (sender side). ---------------------------------
	if tcp.HasFlag(packet.FlagACK) {
		s.ingestSACK(c, tcp)
		ackOff := c.ackOff(tcp.Ack)
		finAckOff := c.finAt
		if finAckOff != ^uint64(0) {
			finAckOff++ // FIN occupies one sequence slot
		}
		switch {
		case ackOff > c.una && ackOff <= c.appended+1:
			acked := ackOff - c.una
			if c.finAt != ^uint64(0) && ackOff == finAckOff {
				c.finAcked = true
				acked--
			}
			c.una += acked
			if c.nxt < c.una {
				// A go-back-N rewind raced with an ACK for data the peer
				// had already buffered: SND.NXT = max(SND.NXT, SND.UNA).
				c.nxt = c.una
			}
			c.trimSACK()
			c.dupacks = 0
			c.lastProgress = s.eng.Now()
			c.backoff = 0
			// New Reno growth.
			if c.cwnd < c.ssthresh {
				c.cwnd += uint32(acked) // slow start
			} else if c.cwnd > 0 {
				c.cwnd += uint32(uint64(1448) * acked / uint64(c.cwnd))
			}
			if tcp.HasFlag(packet.FlagECE) {
				c.halveCwnd()
			}
			if c.sock != nil && acked > 0 {
				c.sock.txFreed(uint32(acked))
			}
		case ackOff == c.una && len(pkt.Payload) == 0 && c.nxt > c.una:
			s.DupAcks++
			c.dupacks++
			if c.dupacks == 3 {
				s.FastRetx++
				c.halveCwnd()
				switch s.prof.Recovery {
				case RecoverySACK:
					// Selective repeat from the scoreboard; without any
					// reported blocks, retransmit the missing head
					// segment.
					if !s.sackRetransmit(c) {
						s.emitSegment(c, c.una, c.retxLen(), false)
					}
				case RecoveryGBN:
					c.nxt = c.una // go-back-N
				case RecoveryDiscard:
					// Timeout-only recovery: dup acks ignored.
				}
			}
		}
		if w := uint32(tcp.Window) << tcpseg.WindowScale; w != c.remoteWin {
			c.remoteWin = w
		}
	}

	// --- Payload (receiver side). ---------------------------------------
	if len(pkt.Payload) > 0 {
		s.receivePayload(c, pkt)
	}

	// --- FIN. ------------------------------------------------------------
	if tcp.HasFlag(packet.FlagFIN) {
		off := c.rcvOff(tcp.Seq) + uint64(len(pkt.Payload))
		if off == c.rcvd && !c.peerFin {
			c.peerFin = true
			s.sendAck(c, false)
			if c.sock != nil {
				c.sock.peerClosed()
			}
		}
	}

	s.txPump(c)
	s.maybeArmTimer(c)
	// The segment is fully consumed (payload copied, SACK ingested).
	packet.Release(pkt)
}

// receivePayload implements the three reassembly policies.
func (s *Stack) receivePayload(c *bconn, pkt *packet.Packet) {
	start := c.rcvOff(pkt.TCP.Seq)
	end := start + uint64(len(pkt.Payload))
	winEnd := c.rcvd + uint64(c.rxAvail)
	ece := pkt.IP.ECN() == packet.ECNCE

	// Trim to window and already-received prefix.
	data := pkt.Payload
	if start < c.rcvd {
		if end <= c.rcvd {
			s.sendAck(c, ece)
			return
		}
		data = data[c.rcvd-start:]
		start = c.rcvd
	}
	if end > winEnd {
		if start >= winEnd {
			s.sendAck(c, ece)
			return
		}
		data = data[:winEnd-start]
		end = winEnd
	}

	maxIvs := s.prof.oooIvs()

	if start == c.rcvd {
		// In order: write, merge intervals, deliver.
		writeCirc(c.rxData, start, data)
		before := c.rcvd
		ivs, ack32, _ := tcpseg.MergeAdvance(c.ivs, uint32(end))
		c.ivs = ivs
		c.rcvd = before + uint64(ack32-uint32(before))
		newBytes := uint32(c.rcvd - before)
		c.rxAvail -= newBytes
		if c.sock != nil {
			c.sock.rxArrived(newBytes)
		}
	} else if maxIvs > 0 {
		// Out of order: insert into the interval set (capacity-limited).
		var ir tcpseg.IvResult
		c.ivs, ir = tcpseg.InsertSeqInterval(c.ivs,
			tcpseg.SeqInterval{Start: uint32(start), End: uint32(end)}, maxIvs)
		if ir.Accepted {
			s.OOOAccepted++
			writeCirc(c.rxData, start, data)
			c.lastOOO = uint32(start)
		} else {
			s.OOODropped++
		}
	} else {
		// RecoveryDiscard: out-of-order data silently dropped.
		s.OOODropped++
	}
	s.sendAck(c, ece)
}

func writeCirc(buf []byte, pos uint64, data []byte) {
	n := uint64(len(buf))
	p := pos % n
	k := copy(buf[p:], data)
	if k < len(data) {
		copy(buf, data[k:])
	}
}

func readCirc(buf []byte, pos uint64, out []byte) {
	n := uint64(len(buf))
	p := pos % n
	k := copy(out, buf[p:])
	if k < len(out) {
		copy(out[k:], buf)
	}
}

// circSlices returns the window [pos, pos+n) of a circular buffer as up
// to two in-place slices (the baseline analogue of shm.PayloadBuf.Slices
// backing the zero-copy socket views).
func circSlices(buf []byte, pos uint64, n int) (a, b []byte) {
	if n == 0 {
		return nil, nil
	}
	size := uint64(len(buf))
	p := pos % size
	if p+uint64(n) <= size {
		return buf[p : p+uint64(n)], nil
	}
	return buf[p:], buf[:p+uint64(n)-size]
}

// ingestSACK merges incoming SACK blocks into the sender scoreboard
// (RecoverySACK only), clamped to [SND.UNA, SND.NXT).
func (s *Stack) ingestSACK(c *bconn, tcp *packet.TCP) {
	if s.prof.Recovery != RecoverySACK || tcp.NumSACK == 0 {
		return
	}
	una32 := c.sndSeq(c.una)
	nxt32 := c.sndSeq(c.nxt)
	for i := uint8(0); i < tcp.NumSACK; i++ {
		b := tcp.SACKBlocks[i]
		if tcpseg.SeqLT(b.Start, una32) {
			b.Start = una32
		}
		if tcpseg.SeqGT(b.End, nxt32) {
			b.End = nxt32
		}
		if tcpseg.SeqGEQ(b.Start, b.End) {
			continue
		}
		c.sack, _ = tcpseg.InsertSeqInterval(c.sack,
			tcpseg.SeqInterval{Start: b.Start, End: b.End}, s.prof.oooIvs())
	}
}

// trimSACK discards scoreboard coverage below the cumulative ack.
func (c *bconn) trimSACK() {
	if len(c.sack) == 0 {
		return
	}
	una32 := c.sndSeq(c.una)
	ivs := c.sack
	for len(ivs) > 0 && tcpseg.SeqLEQ(ivs[0].End, una32) {
		ivs = ivs[1:]
	}
	if len(ivs) > 0 && tcpseg.SeqLT(ivs[0].Start, una32) {
		ivs[0].Start = una32
	}
	c.sack = ivs
}

// sackRetransmit re-sends only the holes below the highest SACKed
// sequence, in MSS chunks, bounded by one (post-halving) congestion
// window per recovery event — RFC 6675's pipe limit, and the analogue of
// the FlexTOE path draining its retransmit queue under the flow
// scheduler rather than bursting. Returns false when the scoreboard is
// empty.
func (s *Stack) sackRetransmit(c *bconn) bool {
	if len(c.sack) == 0 {
		return false
	}
	budget := uint64(c.cwnd)
	if min := 2 * s.prof.mss(); budget < min {
		budget = min
	}
	una32 := c.sndSeq(c.una)
	high := c.sack[len(c.sack)-1].End
	if tcpseg.SeqGT(high, c.sndSeq(c.nxt)) {
		high = c.sndSeq(c.nxt)
	}
	prev := una32
	sent := false
	for i := 0; i <= len(c.sack) && tcpseg.SeqLT(prev, high) && budget > 0; i++ {
		edge := high
		if i < len(c.sack) {
			edge = tcpseg.SeqMin(c.sack[i].Start, high)
		}
		for tcpseg.SeqLT(prev, edge) && budget > 0 {
			n := uint64(uint32(tcpseg.SeqDiff(edge, prev)))
			if mss := s.prof.mss(); n > mss {
				n = mss
			}
			if n > budget {
				n = budget
			}
			off := c.una + uint64(uint32(tcpseg.SeqDiff(prev, una32)))
			s.emitSegment(c, off, n, false)
			prev += uint32(n)
			budget -= n
			sent = true
		}
		if i < len(c.sack) && tcpseg.SeqGT(c.sack[i].End, prev) {
			prev = c.sack[i].End
		}
	}
	return sent
}

func (c *bconn) halveCwnd() {
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2*1448 {
		c.ssthresh = 2 * 1448
	}
	c.cwnd = c.ssthresh
}

// sendAck emits a pure acknowledgment. The SACK personality advertises
// its out-of-order interval set when SACK-permitted was negotiated on the
// handshake, following RFC 2018's ordering rules: the first block is the
// interval containing the most recently received segment, and the
// remaining wire slots rotate through the older holes on consecutive
// ACKs (cursor advanced per advertisement) — so a peer whose scoreboard
// holds fewer intervals than this receiver tracks (the FlexTOE sender's
// 4 against Linux's 32, Fig. 15e) still learns every hole within a few
// ACKs instead of only ever seeing the lowest-sequence ones.
func (s *Stack) sendAck(c *bconn, ece bool) {
	flags := packet.FlagACK
	if ece {
		flags |= packet.FlagECE
	}
	win := c.rxAvail >> tcpseg.WindowScale
	if win > 0xffff {
		win = 0xffff
	}
	ackSeq := c.sndSeq(c.nxt)
	pkt := s.mkPacket(c, ackSeq, flags)
	pkt.TCP.Window = uint16(win)
	if c.sackOK {
		c.appendSACK(&pkt.TCP)
	}
	s.iface.Send(s.frames.NewFrame(pkt, s.eng.Now()))
}

// appendSACK fills the wire SACK blocks from the reassembly interval set.
// Intervals hold truncated stream offsets; wire sequence = IRS + offset.
func (c *bconn) appendSACK(tcp *packet.TCP) {
	if len(c.ivs) == 0 {
		return
	}
	// First block: the interval holding the most recent arrival.
	first := 0
	for i, iv := range c.ivs {
		if !tcpseg.SeqLT(c.lastOOO, iv.Start) && tcpseg.SeqLT(c.lastOOO, iv.End) {
			first = i
			break
		}
	}
	tcp.AddSACK(packet.SACKBlock{Start: c.irs + c.ivs[first].Start, End: c.irs + c.ivs[first].End})
	// Remaining slots: rotate the other holes, the cursor advancing per
	// advertisement so every hole reaches the wire within
	// ceil(k / (MaxSACKBlocks-1)) consecutive ACKs.
	if k := len(c.ivs) - 1; k > 0 {
		emit := packet.MaxSACKBlocks - 1
		if emit > k {
			emit = k
		}
		for j := 0; j < emit; j++ {
			// first+1 .. first+k (mod len) are exactly the other
			// intervals; distinct r < k keeps the blocks distinct.
			iv := c.ivs[(first+1+(c.sackRot+j)%k)%len(c.ivs)]
			tcp.AddSACK(packet.SACKBlock{Start: c.irs + iv.Start, End: c.irs + iv.End})
		}
		c.sackRot += emit
	}
}

// mkPacket fills a recycled packet with the connection's headers. The
// caller attaches payload (GrowPayload) and owns the packet until it is
// transmitted.
func (s *Stack) mkPacket(c *bconn, seq uint32, flags uint8) *packet.Packet {
	pkt := s.pkts.Get()
	pkt.Eth = packet.Ethernet{Src: s.localMAC, Dst: c.peerMAC, EtherType: packet.EtherTypeIPv4}
	pkt.IP = packet.IPv4{
		TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
		Src: c.flow.SrcIP, Dst: c.flow.DstIP,
	}
	pkt.TCP = packet.TCP{
		SrcPort: c.flow.SrcPort, DstPort: c.flow.DstPort,
		Seq: seq, Ack: c.ackField(), Flags: flags,
		Window: uint16(min64(int64(c.rxAvail>>tcpseg.WindowScale), 0xffff)),
		WScale: -1,
	}
	return pkt
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ackField returns the cumulative acknowledgment (FIN occupies a slot).
func (c *bconn) ackField() uint32 {
	ack := c.irs + uint32(c.rcvd)
	if c.peerFin {
		ack++
	}
	return ack
}

// txPump transmits while the window allows, gating each segment on its
// processing cost so the stack core (or the Chelsio ASIC) bounds the
// transmit rate.
func (s *Stack) txPump(c *bconn) {
	if c.pumping {
		return
	}
	c.pumping = true
	s.txStep(c)
}

// txStep sizes the next segment and charges its transmit cost; bconnEmit
// sends it when the cost has been paid and loops back here. The pumping
// flag serializes the loop per connection, so the pending segment size
// lives on the bconn (txN) instead of a closure.
func (s *Stack) txStep(c *bconn) {
	inflight := c.nxt - c.una
	limit := uint64(c.cwnd)
	if uint64(c.remoteWin) < limit {
		limit = uint64(c.remoteWin)
	}
	avail := c.appended - c.nxt
	wantFin := c.finAt != ^uint64(0) && !c.finSent && c.nxt == c.appended
	if (avail == 0 || inflight >= limit) && !wantFin {
		c.pumping = false
		return
	}
	n := s.prof.mss()
	if n > avail {
		n = avail
	}
	if inflight < limit && n > limit-inflight {
		n = limit - inflight
	}
	if n == 0 && !wantFin {
		c.pumping = false
		return
	}
	c.txN = n
	if s.prof.ASIC {
		s.asic.AcquireCall(1, 0, bconnEmit, c)
		return
	}
	txCost := (s.prof.DriverPerSeg + s.prof.TCPPerSeg + s.prof.OtherPerSeg) / 2
	c.stackCore().SubmitCall(sim.TaskC(txCost), bconnEmit, c)
}

// bconnEmit transmits the segment txStep sized, then continues the pump.
func bconnEmit(a any) {
	c := a.(*bconn)
	s := c.stack
	if !c.live {
		c.pumping = false
		return
	}
	n := c.txN
	off := c.nxt
	fin := c.finAt != ^uint64(0) && off+n == c.appended
	s.emitSegment(c, off, n, fin)
	c.nxt += n
	s.maybeArmTimer(c)
	s.txStep(c)
}

// emitSegment sends [off, off+n) (and possibly FIN).
func (s *Stack) emitSegment(c *bconn, off, n uint64, fin bool) {
	flags := packet.FlagACK
	if n > 0 {
		flags |= packet.FlagPSH
	}
	if fin && c.finAt != ^uint64(0) {
		flags |= packet.FlagFIN
		c.finSent = true
	}
	pkt := s.mkPacket(c, c.sndSeq(off), flags)
	readCirc(c.txData, off, pkt.GrowPayload(int(n)))
	s.TxSegs++
	// Sent high-water mark: any payload byte below it has been on the
	// wire before — the m-lab SendNext retransmit criterion, and the
	// definition flowmon's sender-side inference must reproduce.
	if off < c.sentHigh && n > 0 {
		r := c.sentHigh - off
		if r > n {
			r = n
		}
		s.RetxSegs++
		s.RetxBytes += r
	}
	if off+n > c.sentHigh {
		c.sentHigh = off + n
	}
	s.iface.Send(s.frames.NewFrame(pkt, s.eng.Now()))
}

// retxLen bounds a head retransmission to one MSS of sent data.
func (c *bconn) retxLen() uint64 {
	n := c.stack.prof.mss()
	if c.una+n > c.nxt {
		n = c.nxt - c.una
	}
	return n
}

// --- Connection table and per-connection timers. ------------------------
//
// The retransmission timer used to be a 500 µs full scan over every
// connection — O(total) work per tick, which at 10^5+ mostly-idle
// connections dwarfs the actual protocol work. Each connection now arms at
// most one pooled carrier on the engine's timing wheel, only while it has
// bytes (or an unacknowledged FIN) outstanding; fully-closed connections
// ride the same carrier through a linger period and are then reclaimed.

// lookup resolves a flow to its live connection (0 allocations).
func (s *Stack) lookup(f packet.Flow) *bconn {
	id, ok := s.flowIdx.Lookup(f)
	if !ok {
		return nil
	}
	return s.slots[id]
}

// NumConns returns the number of live connections.
func (s *Stack) NumConns() int { return s.nLive }

// ConnTableBytes reports the connection-table footprint: the slot array,
// the flow-hash index, and the free-slot ring (not the bconn payload
// buffers, which are an application sizing choice).
func (s *Stack) ConnTableBytes() int {
	return len(s.slots)*8 + s.flowIdx.MemBytes() + cap(s.free)*4
}

// installConn assigns a slot (FIFO-recycled) and indexes the flow.
func (s *Stack) installConn(c *bconn) {
	var id uint32
	if s.freeHead < len(s.free) {
		id = s.free[s.freeHead]
		s.free, s.freeHead = shm.PopRing(s.free, s.freeHead)
	} else {
		id = uint32(len(s.slots))
		s.slots = append(s.slots, nil)
	}
	c.id = id
	c.live = true
	c.listIdx = len(s.connList)
	s.slots[id] = c
	s.flowIdx.Insert(c.flow, id)
	s.connList = append(s.connList, c)
	s.nLive++
}

// removeConn reclaims a fully-closed connection: the flow-index entry, the
// dense slot (FIFO-recycled), and the scan-list position (swap-compacted).
// The bconn itself stays readable so an application socket can still drain
// buffered bytes; it is garbage once the socket reference drops.
func (s *Stack) removeConn(c *bconn) {
	if !c.live {
		return
	}
	c.live = false
	s.flowIdx.Delete(c.flow) // before the slot is cleared: Delete reads flows via slots
	last := len(s.connList) - 1
	moved := s.connList[last]
	s.connList[c.listIdx] = moved
	moved.listIdx = c.listIdx
	s.connList[last] = nil
	s.connList = s.connList[:last]
	s.slots[c.id] = nil
	s.free = append(s.free, c.id)
	s.nLive--
}

// btimer carries one armed retransmission timer from AfterCall to its
// fire without a closure per arm. Pooled: the fire consumes and recycles
// the carrier when the connection no longer needs timer service.
type btimer struct {
	s *Stack
	c *bconn
}

func (s *Stack) getTimer() *btimer {
	if tm := s.timerFree.Get(); tm != nil {
		return tm
	}
	return &btimer{}
}

func (s *Stack) putTimer(tm *btimer) {
	*tm = btimer{}
	s.timerFree.Put(tm)
}

// timerOutstanding reports whether the retransmission timer has work:
// unacked bytes in flight, or a sent-but-unacked FIN.
func (c *bconn) timerOutstanding() bool {
	return c.nxt > c.una || (c.finAt != ^uint64(0) && c.finSent && !c.finAcked)
}

// rto returns the current backed-off retransmission timeout.
func (c *bconn) rto() sim.Time {
	rto := c.stack.prof.MinRTO << uint(c.backoff)
	if c.srtt > 0 && 4*c.srtt > c.stack.prof.MinRTO {
		rto = (4 * c.srtt) << uint(c.backoff)
	}
	return rto
}

// maybeArmTimer arms the connection's timer if it needs service and has
// none armed. Called at the transmit and receive kick points; the
// rtoArmed flag dedupes so an armed connection costs nothing here.
func (s *Stack) maybeArmTimer(c *bconn) {
	if c.rtoArmed || !c.live {
		return
	}
	var delay sim.Time
	switch {
	case c.timerOutstanding():
		if d := c.lastProgress + c.rto() - s.eng.Now(); d > 0 {
			delay = d
		}
	case c.finAcked && c.peerFin:
		// Fully closed: schedule the linger-and-reclaim pass.
		if c.lingerAt == 0 {
			c.lingerAt = s.eng.Now() + 4*s.prof.MinRTO
		}
		delay = c.lingerAt - s.eng.Now()
	default:
		return
	}
	c.rtoArmed = true
	tm := s.getTimer()
	tm.s, tm.c = s, c
	s.eng.AfterCall(delay, btimerFire, tm)
}

// btimerFire services one connection's timer: retransmit on RTO expiry and
// re-arm while work remains; reclaim fully-closed connections after the
// linger period; otherwise disarm and recycle the carrier (lazy
// cancellation — state changes never chase an in-flight timer).
func btimerFire(a any) {
	tm := a.(*btimer)
	s, c := tm.s, tm.c
	if !c.live {
		s.putTimer(tm)
		return
	}
	now := s.eng.Now()
	switch {
	case c.timerOutstanding():
		c.lingerAt = 0
		rto := c.rto()
		if now-c.lastProgress >= rto {
			s.Retransmits++
			c.lastProgress = now
			if c.backoff < 6 {
				c.backoff++
			}
			c.ssthresh = c.cwnd / 2
			if c.ssthresh < 2*1448 {
				c.ssthresh = 2 * 1448
			}
			c.cwnd = 2 * 1448
			switch s.prof.Recovery {
			case RecoverySACK:
				// RFC 2018 reneging rule: a timeout must not trust the
				// scoreboard; restart from the head.
				c.sack = c.sack[:0]
				s.emitSegment(c, c.una, c.retxLen(), false)
			default:
				c.nxt = c.una
				c.finSent = false
				s.txPump(c)
			}
			rto = c.rto()
		}
		s.eng.AfterCall(c.lastProgress+rto-now, btimerFire, tm)
	case c.finAcked && c.peerFin:
		if c.lingerAt == 0 {
			c.lingerAt = now + 4*s.prof.MinRTO
		}
		if now >= c.lingerAt {
			c.rtoArmed = false
			s.putTimer(tm)
			s.removeConn(c)
			return
		}
		s.eng.AfterCall(c.lingerAt-now, btimerFire, tm)
	default:
		c.rtoArmed = false
		s.putTimer(tm)
	}
}

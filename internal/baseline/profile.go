// Package baseline implements the three comparison stacks of the paper's
// evaluation — the Linux kernel TCP stack, the TAS kernel-bypass
// accelerator, and the Chelsio Terminator TOE — as one functional host-TCP
// engine with three personalities. All three move real bytes through real
// TCP segments over the simulated fabric; they differ in
//
//   - per-request host CPU cost profile (Table 1),
//   - processing architecture (in-kernel inline with global locks;
//     dedicated fast-path cores; NIC ASIC with kernel-mediated API),
//   - loss recovery (SACK-style selective repeat; go-back-N with a single
//     out-of-order interval — the TAS/FlexTOE design; out-of-order discard
//     with timeout-only recovery — the Chelsio behaviour Fig. 15 exposes),
//   - tail-latency character (scheduler and interrupt jitter for the
//     kernel paths).
package baseline

import "flextoe/internal/sim"

// Kind selects the stack personality.
type Kind int

const (
	// KindLinux is the in-kernel TCP stack.
	KindLinux Kind = iota
	// KindTAS is TAS: a protected user-mode fast path on dedicated cores.
	KindTAS
	// KindChelsio is the Terminator TOE: TCP on the NIC ASIC, kernel API.
	KindChelsio
)

// Recovery selects the loss-recovery behaviour.
type Recovery int

const (
	// RecoverySACK: multi-interval reassembly with real SACK blocks on
	// the wire and scoreboard-driven selective repeat (Linux; "more
	// sophisticated reassembly and recovery algorithms, including
	// selective acknowledgments", §5.3). Shares the interval-set
	// machinery with the FlexTOE protocol stage.
	RecoverySACK Recovery = iota
	// RecoveryGBN: go-back-N with one receiver out-of-order interval
	// (TAS; identical semantics to FlexTOE's data-path).
	RecoveryGBN
	// RecoveryDiscard: receiver drops all out-of-order segments,
	// sender recovers on timeout only (Chelsio's steep Fig. 15 decline).
	RecoveryDiscard
)

// Profile is one stack's cost and behaviour model. Cycle figures derive
// from Table 1 (measured per Memcached request-response pair) decomposed
// into per-segment and per-call costs; a request involves roughly 2.5
// segment operations (request in, response out, ack processing).
type Profile struct {
	Kind Kind
	Name string

	// Host cycles per segment for NIC driver + TCP/IP processing.
	DriverPerSeg int64
	TCPPerSeg    int64
	// Host cycles per socket call (send or recv).
	SocketPerOp int64
	// Unattributed per-request cycles (syscall entry, scheduling,
	// accounting — Table 1 "Other"), charged per segment op.
	OtherPerSeg int64
	// Copy cost per payload byte.
	PerByte float64

	// Architecture.
	StackCores int     // dedicated fast-path cores (TAS); 0 = inline
	LockFrac   float64 // fraction of TCP cycles under a global kernel lock
	ASIC       bool    // TCP processed on the NIC (Chelsio)
	ASICSegNs  float64 // ASIC per-segment service time
	ASICGbps   float64 // ASIC wire capability (Chelsio is a 100G part)

	// Tail behaviour: probability a segment op picks up a scheduler /
	// interrupt / softirq spike, and its mean (exponential).
	SpikeProb   float64
	SpikeMeanUs float64

	// Per-op overhead growth with connection count (epoll scans, socket
	// table pressure): extra cycles per op = ConnPenalty * log2(conns).
	ConnPenalty float64

	// NotifyWakeupUs is the idle-wakeup latency when data arrives for a
	// sleeping application (interrupt + scheduler for kernel stacks,
	// context-queue poll handoff for TAS). Charged only when the
	// application core is idle: under load, notifications batch.
	NotifyWakeupUs float64

	Recovery Recovery

	// OOOIntervals caps the receiver's out-of-order reassembly interval
	// set (shared with the FlexTOE protocol stage). 0 defaults by
	// recovery policy: SACK 32, GBN 1 (the TAS design), Discard 0.
	OOOIntervals int

	// MinRTO for this stack's retransmission timer.
	MinRTO sim.Time

	// ListenBacklog caps half-open (SYN-received, first-ACK pending)
	// connections per listening port; SYNs beyond it are silently
	// dropped, as the kernel SYN queue does. 0 = unbounded (the default:
	// scaling experiments open storms of connections by design).
	ListenBacklog int

	// MSS is the maximum segment size (default 1448).
	MSS uint32
}

// mss returns the configured MSS with the default applied.
func (p *Profile) mss() uint64 {
	if p.MSS == 0 {
		return 1448
	}
	return uint64(p.MSS)
}

// oooIvs returns the reassembly interval capacity with the
// recovery-policy default applied.
func (p *Profile) oooIvs() int {
	if p.OOOIntervals > 0 {
		return p.OOOIntervals
	}
	switch p.Recovery {
	case RecoverySACK:
		return 32
	case RecoveryGBN:
		return 1
	}
	return 0
}

// LinuxProfile models the in-kernel stack (Table 1 column 1: 12.13 kc
// per request, 62% stall cycles, versatile but bulky).
func LinuxProfile() Profile {
	return Profile{
		Kind:           KindLinux,
		Name:           "Linux",
		DriverPerSeg:   280,  // 0.71 kc/req over ~2.5 segment ops
		TCPPerSeg:      1700, // 4.25 kc/req
		SocketPerOp:    1240, // 2.48 kc/req over 2 calls
		OtherPerSeg:    1370, // 3.42 kc/req
		PerByte:        0.35,
		LockFrac:       0.40,
		SpikeProb:      0.015,
		SpikeMeanUs:    40,
		ConnPenalty:    16,
		NotifyWakeupUs: 30, // interrupt + softirq + scheduler wakeup
		Recovery:       RecoverySACK,
		MinRTO:         4 * sim.Millisecond,
	}
}

// TASProfile models TAS (Table 1 column 3: 3.34 kc per request, driver +
// TCP on dedicated fast-path cores, lean sockets).
func TASProfile() Profile {
	return Profile{
		Kind:           KindTAS,
		Name:           "TAS",
		DriverPerSeg:   72,  // 0.18 kc/req
		TCPPerSeg:      576, // 1.44 kc/req (Table 6 breaks down the 1,440)
		SocketPerOp:    395, // 0.79 kc/req
		OtherPerSeg:    36,  // 0.09 kc/req
		PerByte:        0.30,
		StackCores:     1,
		SpikeProb:      0.0015,
		SpikeMeanUs:    15,
		ConnPenalty:    2,
		NotifyWakeupUs: 6, // fast-path to app context-queue handoff
		Recovery:       RecoveryGBN,
		MinRTO:         2 * sim.Millisecond,
	}
}

// ChelsioProfile models the Terminator TOE (Table 1 column 2: 8.89 kc
// per request despite NIC-side TCP, because the kernel mediates the API;
// 100 Gbps unidirectional streaming strength; OOO discard on loss).
func ChelsioProfile() Profile {
	return Profile{
		Kind:           KindChelsio,
		Name:           "Chelsio",
		DriverPerSeg:   512,  // 1.28 kc/req: the "sophisticated TOE NIC driver"
		TCPPerSeg:      160,  // 0.40 kc/req residual host TCP glue
		SocketPerOp:    1305, // 2.61 kc/req
		OtherPerSeg:    1310, // 3.28 kc/req: kernel interaction
		PerByte:        0.12, // efficient DMA placement
		ASIC:           true,
		ASICSegNs:      120,
		ASICGbps:       100,
		LockFrac:       0.35,
		SpikeProb:      0.012,
		SpikeMeanUs:    35,
		ConnPenalty:    60, // epoll() overhead dominates at high counts (§5.2)
		NotifyWakeupUs: 3,  // interrupt, but a short kernel path
		Recovery:       RecoveryDiscard,
		MinRTO:         8 * sim.Millisecond,
	}
}

package detrange

import (
	"path/filepath"
	"testing"

	"flextoe/internal/analysis/flexanalysis"
)

func TestDetrange(t *testing.T) {
	l := flexanalysis.NewLoader()
	dir := filepath.Join("testdata", "src", "dettest")
	res := flexanalysis.RunWant(t, l, Analyzer, dir, "flextoe/internal/sim/dettest")

	// The two //flexvet:ordered map scans must be suppressed, not absent:
	// the pass saw them and the justification silenced them.
	if got := len(res.Suppressed); got != 2 {
		t.Errorf("suppressed diagnostics = %d, want 2 (//flexvet:ordered scans)", got)
		for _, d := range res.Suppressed {
			t.Logf("  suppressed: %s: %s", d.Posn(res.Pkg.Fset), d.Message)
		}
	}
}

func TestDetrangeSkipsNonCriticalPackages(t *testing.T) {
	l := flexanalysis.NewLoader()
	dir := filepath.Join("testdata", "src", "dettest")
	pkg, err := l.Load(dir, "flextoe/internal/apps/dettest")
	if err != nil {
		t.Fatal(err)
	}
	results, err := flexanalysis.RunPackage(pkg, []*flexanalysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(results[0].Diags) + len(results[0].Suppressed); n != 0 {
		t.Errorf("non-critical package produced %d diagnostics, want 0", n)
	}
}

// Package detrange enforces the determinism contract (doc.go
// "Determinism", ROADMAP "Contracts & invariants") in simulation-critical
// packages: one seed must produce bit-identical counters, traces, and
// engine event counts on rerun.
//
// Three things break that and are flagged here:
//
//   - `for range` over a map: Go randomizes map iteration order per run,
//     so any map scan whose side effects depend on order (emitting events,
//     mutating counters, building slices) reshuffles between identical
//     runs — exactly the bug PR 4 fixed by converting the connection
//     tables to establishment-order scans. A map range that is provably
//     order-insensitive (pure reduction: count, sum, max) may carry a
//     `//flexvet:ordered <why>` comment on the statement (or the line
//     above) to suppress the diagnostic.
//   - Wall-clock time: time.Now and friends leak host scheduling into
//     simulated state. Simulated code must use sim.Engine.Now.
//   - Global or unseeded randomness: math/rand's package-level functions
//     draw from the global source (shared, unseeded, and in Go 1.20+
//     randomly seeded at startup); crypto/rand is nondeterministic by
//     construction. Simulated code must thread an explicitly seeded
//     *rand.Rand (rand.New(rand.NewSource(seed))), which remains allowed.
package detrange

import (
	"go/ast"
	"go/types"

	"flextoe/internal/analysis/flexanalysis"
)

// Analyzer is the detrange pass.
var Analyzer = &flexanalysis.Analyzer{
	Name: "detrange",
	Doc: "forbid map-order iteration, wall-clock time, and global randomness " +
		"in simulation-critical packages (suppress order-insensitive map scans " +
		"with //flexvet:ordered <why>)",
	Run: run,
}

// wallClock lists package time functions that read or wait on the host
// clock. Types (time.Duration) and pure constructors stay legal.
var wallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// randAllowed lists math/rand names that do NOT touch the global source:
// constructors for explicitly seeded generators.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *flexanalysis.Pass) (any, error) {
	if !flexanalysis.Critical(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypeOf(node.X)
				if t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(node.For,
							"range over map %s: iteration order is nondeterministic in a simulation-critical package (scan an ordered index, or annotate //flexvet:ordered <why> if order-insensitive)",
							types.ExprString(node.X))
					}
				}
			case *ast.Ident:
				// Selector uses (time.Now) and dot-import uses both
				// resolve through Uses on the identifier itself.
				checkUse(pass, node)
			}
			return true
		})
	}
	return nil, nil
}

func checkUse(pass *flexanalysis.Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	// Only package-level functions are of interest: methods on a
	// seeded *rand.Rand (r.Intn) or on time values (t.After) are fine.
	pkgFunc := func() bool {
		fn, ok := obj.(*types.Func)
		return ok && fn.Signature().Recv() == nil
	}
	switch obj.Pkg().Path() {
	case "time":
		if pkgFunc() && wallClock[obj.Name()] {
			pass.Reportf(id.Pos(),
				"wall-clock time.%s in a simulation-critical package: simulated code must use sim.Engine.Now so runs are seed-deterministic", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		if pkgFunc() && !randAllowed[obj.Name()] {
			pass.Reportf(id.Pos(),
				"global rand.%s draws from the shared unseeded source: thread an explicitly seeded *rand.Rand instead", obj.Name())
		}
	case "crypto/rand":
		pass.Reportf(id.Pos(),
			"crypto/rand is nondeterministic by construction: simulation-critical code must use a seeded math/rand generator")
	}
}

// Package dettest exercises the detrange pass. Its synthetic import path
// places it under flextoe/internal/sim, so it is simulation-critical.
package dettest

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

type conn struct {
	id   uint32
	cwnd int
}

// connScanReshuffle is the PR-1/PR-4 regression shape: iterating the
// connection table in map order to emit simulation events reshuffled
// RTO/cwnd ordering between identical-seed runs.
func connScanReshuffle(conns map[uint32]*conn, emit func(uint32)) {
	for id := range conns { // want `range over map conns: iteration order is nondeterministic`
		emit(id)
	}
}

// orderedScan is the fix: an establishment-order index drives the scan.
func orderedScan(order []uint32, conns map[uint32]*conn, emit func(uint32)) {
	for _, id := range order {
		if _, ok := conns[id]; ok {
			emit(id)
		}
	}
}

// countConns is an order-insensitive reduction: the justification comment
// suppresses the diagnostic.
func countConns(conns map[uint32]*conn) int {
	n := 0
	//flexvet:ordered pure count, no order-dependent side effects
	for range conns {
		n++
	}
	return n
}

// maxCwnd carries the marker on the statement line itself.
func maxCwnd(conns map[uint32]*conn) int {
	m := 0
	for _, c := range conns { //flexvet:ordered max reduction is commutative
		if c.cwnd > m {
			m = c.cwnd
		}
	}
	return m
}

func wallClock() time.Duration {
	start := time.Now() // want `wall-clock time\.Now`
	time.Sleep(time.Millisecond)                // want `wall-clock time\.Sleep`
	return time.Since(start) // want `wall-clock time\.Since`
}

// durationMath uses time only for its unit types: legal.
func durationMath(d time.Duration) float64 { return d.Seconds() }

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn draws from the shared unseeded source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

// seededRand is the sanctioned pattern: explicit seed, private generator.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func cryptoRand(p []byte) {
	crand.Read(p) // want `crypto/rand is nondeterministic`
}

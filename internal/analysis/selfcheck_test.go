// Selfcheck: run the full flexvet suite in-process over every package in
// the module. This is the same gate CI applies via cmd/flexvet, kept in
// `go test ./...` so the contracts fail fast during development too.
package analysis_test

import (
	"fmt"
	"os"
	"testing"

	"flextoe/internal/analysis/detrange"
	"flextoe/internal/analysis/flexanalysis"
	"flextoe/internal/analysis/hotclosure"
	"flextoe/internal/analysis/poolown"
	"flextoe/internal/analysis/sharedstate"
	"flextoe/internal/analysis/viewretain"
)

var enforcing = []*flexanalysis.Analyzer{
	viewretain.Analyzer,
	poolown.Analyzer,
	detrange.Analyzer,
	hotclosure.Analyzer,
}

// loadTree loads every package in the module (the CLI's ./... pattern).
func loadTree(t *testing.T) []*flexanalysis.Package {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := flexanalysis.ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := flexanalysis.NewLoader().LoadAll(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	return pkgs
}

// TestTreeClean asserts the real tree has zero unsuppressed diagnostics
// from the four enforcing passes.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	for _, pkg := range loadTree(t) {
		results, err := flexanalysis.RunPackage(pkg, enforcing)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, res := range results {
			for _, d := range res.Diags {
				t.Errorf("%s: %s: %s", d.Posn(pkg.Fset), d.Analyzer, d.Message)
			}
		}
	}
}

// TestSharedStateReportCurrent regenerates the shared-state inventory and
// compares it to the committed SHAREDSTATE.md. On drift:
//
//	go run ./cmd/flexvet -sharedstate ./... > SHAREDSTATE.md
func TestSharedStateReportCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := flexanalysis.ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	var inventory []sharedstate.Var
	for _, pkg := range loadTree(t) {
		results, err := flexanalysis.RunPackage(pkg, []*flexanalysis.Analyzer{sharedstate.Analyzer})
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		vs, ok := results[0].Value.([]sharedstate.Var)
		if !ok {
			t.Fatalf("%s: pass value is %T, want []Var", pkg.Path, results[0].Value)
		}
		inventory = append(inventory, vs...)
	}
	want := sharedstate.Report(inventory)
	got, err := os.ReadFile(root + "/SHAREDSTATE.md")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("SHAREDSTATE.md is stale; regenerate with:\n\tgo run ./cmd/flexvet -sharedstate ./... > SHAREDSTATE.md\n%s",
			firstDiff(string(got), want))
	}
}

func firstDiff(a, b string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first difference at byte %d:\n  committed: %q\n  generated: %q",
				i, a[lo:min(i+40, len(a))], b[lo:min(i+40, len(b))])
		}
	}
	return fmt.Sprintf("lengths differ: committed %d bytes, generated %d bytes", len(a), len(b))
}

// Package viewretain enforces the zero-copy view aliasing contract
// (api.Socket docs, doc.go "Zero-copy socket views", PR 5): slices
// returned by Socket.Peek / Socket.Reserve (and shm.PayloadBuf.Slices)
// are windows into a payload ring, not copies. They are invalidated by
// the next Consume/Commit on the same socket and must never outlive the
// callback that obtained them.
//
// Three violation shapes are flagged, all intraprocedural:
//
//   - Retention: a view slice stored into a struct field, package-level
//     variable, map/slice element, or sent on a channel. The store is the
//     PR-5 hazard shape — the ring advances underneath the stored alias.
//   - Escaping capture: a view slice captured by a func literal in a
//     retained position — a callback registration (On*), event scheduling
//     (At/After/Every/Submit/Acquire and their Call forms), a go or defer
//     statement, or a store of the literal itself. Synchronous literals
//     (sort comparators and the like) pass.
//   - Use after invalidation: a Peek view used after Consume, or a
//     Reserve view used after Commit, on the same receiver expression in
//     the same function. The check is flow-sensitive along linear order
//     with conservative branch union (see flexanalysis.WalkLinear);
//     re-assigning the variable from a fresh view call revalidates it.
//
// Helper indirection (a function that returns views, or one that commits
// internally) is outside the intraprocedural horizon; the runtime apitest
// aliasing suite remains the backstop for those. A correct-but-flagged
// site may carry //flexvet:viewretain <why>.
package viewretain

import (
	"go/ast"
	"go/types"

	"flextoe/internal/analysis/flexanalysis"
)

// Analyzer is the viewretain pass.
var Analyzer = &flexanalysis.Analyzer{
	Name: "viewretain",
	Doc: "forbid retaining Peek/Reserve/Slices ring views in fields, globals, " +
		"escaping closures, or past Consume/Commit",
	Run: run,
}

type viewKind uint8

const (
	kindPeek viewKind = iota
	kindReserve
	kindSlices
)

func (k viewKind) String() string {
	switch k {
	case kindPeek:
		return "Peek"
	case kindReserve:
		return "Reserve"
	default:
		return "Slices"
	}
}

// invalidatedBy names the call that kills views of this kind.
func (k viewKind) invalidatedBy() string {
	if k == kindReserve {
		return "Commit"
	}
	return "Consume"
}

// viewVar records one local variable bound to a view slice.
type viewVar struct {
	kind viewKind
	recv string // receiver expression text, e.g. "s.sock"
	pos  ast.Node
}

// scope is one function body under analysis (FuncDecl or FuncLit).
type scope struct {
	body  *ast.BlockStmt
	views map[types.Object]*viewVar
}

func run(pass *flexanalysis.Pass) (any, error) {
	for _, f := range pass.Files {
		scopes := collectScopes(f)
		// Pass A: bind view variables per scope (flow-insensitive).
		owner := map[types.Object]*scope{}
		for _, sc := range scopes {
			bindViews(pass, sc)
			for obj := range sc.views {
				owner[obj] = sc
			}
		}
		for _, sc := range scopes {
			checkRetention(pass, sc)
			checkCaptures(pass, sc, owner)
			checkUseAfterInvalidate(pass, sc)
		}
	}
	return nil, nil
}

// collectScopes returns every function body in the file, outermost first.
// A FuncLit's statements belong to its own scope only: scope walks never
// descend into nested literals.
func collectScopes(f *ast.File) []*scope {
	var scopes []*scope
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				scopes = append(scopes, &scope{body: fn.Body, views: map[types.Object]*viewVar{}})
			}
		case *ast.FuncLit:
			scopes = append(scopes, &scope{body: fn.Body, views: map[types.Object]*viewVar{}})
		}
		return true
	})
	return scopes
}

// ownStmts inspects body without descending into nested func literals:
// those belong to inner scopes.
func ownStmts(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // inner scope
		}
		return visit(n)
	})
}

// viewCall recognizes a call producing ring views and returns the
// receiver expression and kind.
func viewCall(pass *flexanalysis.Pass, call *ast.CallExpr) (recv ast.Expr, kind viewKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, 0, false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil, 0, false
	}
	switch sel.Sel.Name {
	case "Peek", "Reserve":
		sig, isSig := pass.TypeOf(call.Fun).(*types.Signature)
		if !isSig || sig.Results().Len() != 2 ||
			!flexanalysis.IsByteSlice(sig.Results().At(0).Type()) ||
			!flexanalysis.IsByteSlice(sig.Results().At(1).Type()) {
			return nil, 0, false
		}
		k := kindPeek
		if sel.Sel.Name == "Reserve" {
			k = kindReserve
		}
		return sel.X, k, true
	case "Slices":
		if flexanalysis.NamedIs(selection.Recv(), "flextoe/internal/shm", "PayloadBuf") {
			return sel.X, kindSlices, true
		}
	}
	return nil, 0, false
}

// bindViews records every local variable assigned from a view call.
func bindViews(pass *flexanalysis.Pass, sc *scope) {
	ownStmts(sc.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, kind, ok := viewCall(pass, call)
		if !ok {
			return true
		}
		recvStr := types.ExprString(recv)
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				sc.views[obj] = &viewVar{kind: kind, recv: recvStr, pos: id}
			}
		}
		return true
	})
}

// aliasIdents returns the identifiers that the value of e aliases: bare
// idents, re-slicings, parenthesizations, and composite literals holding
// them. Calls (len(a), copy results) do not alias.
func aliasIdents(e ast.Expr, out []*ast.Ident) []*ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		out = append(out, x)
	case *ast.SliceExpr:
		out = aliasIdents(x.X, out)
	case *ast.ParenExpr:
		out = aliasIdents(x.X, out)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			out = aliasIdents(x.X, out)
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out = aliasIdents(elt, out)
		}
	}
	return out
}

// checkRetention flags stores of view values into locations that outlive
// the view: fields, package variables, map/slice elements, channels.
func checkRetention(pass *flexanalysis.Pass, sc *scope) {
	report := func(id *ast.Ident, vv *viewVar, where string) {
		pass.Reportf(id.Pos(),
			"%s view %s stored into %s: ring views are invalidated by the next %s and must not outlive the callback that obtained them",
			vv.kind, id.Name, where, vv.kind.invalidatedBy())
	}
	classifyLHS := func(lhs ast.Expr) (string, bool) {
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			return "field " + types.ExprString(l), true
		case *ast.IndexExpr:
			return "element " + types.ExprString(l), true
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(l)
			if obj != nil && obj.Parent() == pass.Pkg.Scope() {
				return "package variable " + l.Name, true
			}
		}
		return "", false
	}
	ownStmts(sc.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				where, bad := classifyLHS(lhs)
				if !bad {
					continue
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					rhs = st.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				for _, id := range aliasIdents(rhs, nil) {
					obj := pass.TypesInfo.ObjectOf(id)
					if vv, ok := sc.views[obj]; ok {
						report(id, vv, where)
					}
				}
			}
		case *ast.SendStmt:
			for _, id := range aliasIdents(st.Value, nil) {
				obj := pass.TypesInfo.ObjectOf(id)
				if vv, ok := sc.views[obj]; ok {
					report(id, vv, "channel send")
				}
			}
		}
		return true
	})
}

// retainedLitPositions collects func literals in retained positions
// within the scope: callback registrations, event scheduling, go/defer,
// or stores of the literal itself.
func retainedLits(pass *flexanalysis.Pass, sc *scope) map[*ast.FuncLit]string {
	lits := map[*ast.FuncLit]string{}
	mark := func(e ast.Expr, why string) {
		if lit, ok := e.(*ast.FuncLit); ok {
			lits[lit] = why
		}
	}
	ownStmts(sc.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			mark(st.Call.Fun, "go statement")
			for _, a := range st.Call.Args {
				mark(a, "go statement")
			}
		case *ast.DeferStmt:
			mark(st.Call.Fun, "defer statement")
			for _, a := range st.Call.Args {
				mark(a, "defer statement")
			}
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				mark(rhs, "stored closure")
			}
		case *ast.CallExpr:
			name := callName(st)
			if retainingCallName(name) {
				for _, a := range st.Args {
					mark(a, name+" registration")
				}
			}
		}
		return true
	})
	return lits
}

// callName extracts the called method/function name.
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		return f.Sel.Name
	case *ast.Ident:
		return f.Name
	}
	return ""
}

// retainingCallName reports whether passing a closure to a call of this
// name retains it beyond the current callback: callback registration
// (On* prefix) and the engine's scheduling/submission family.
func retainingCallName(name string) bool {
	if len(name) > 2 && name[:2] == "On" {
		return true
	}
	switch name {
	case "At", "AtCall", "After", "AfterCall", "Every", "EveryCall",
		"Immediately", "ImmediatelyCall", "Submit", "SubmitCall",
		"Acquire", "AcquireCall":
		return true
	}
	return false
}

// checkCaptures flags view variables of an enclosing scope referenced
// inside a retained func literal.
func checkCaptures(pass *flexanalysis.Pass, sc *scope, owner map[types.Object]*scope) {
	for lit, why := range retainedLits(pass, sc) {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			ownerScope, tracked := owner[obj]
			if !tracked || ownerScope.body == lit.Body {
				return true
			}
			// The literal must be nested somewhere inside the owning
			// scope for this to be a capture of a live view.
			vv := ownerScope.views[obj]
			pass.Reportf(id.Pos(),
				"%s view %s captured by %s: ring views must not be retained across callbacks or deferred work",
				vv.kind, id.Name, why)
			return true
		})
	}
}

// invalidation recognizes recv.Consume(...) / recv.Commit(...) calls.
func invalidation(pass *flexanalysis.Pass, call *ast.CallExpr) (recvStr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name = sel.Sel.Name
	if name != "Consume" && name != "Commit" {
		return "", "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

// checkUseAfterInvalidate runs the flow-sensitive half: views used after
// the matching Consume/Commit on the same receiver in the same function.
func checkUseAfterInvalidate(pass *flexanalysis.Pass, sc *scope) {
	if len(sc.views) == 0 {
		return
	}
	// Work on a copy: rebinding may stop tracking a variable, and
	// sc.views is shared with the retention/capture checks.
	views := make(map[types.Object]*viewVar, len(sc.views))
	for k, v := range sc.views {
		views[k] = v
	}
	// poisoned maps view objects to the invalidating call description.
	poisoned := map[types.Object]string{}
	reported := map[types.Object]bool{}

	scanUses := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // capture rule owns literals
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || reported[obj] {
				return true
			}
			if why, dead := poisoned[obj]; dead {
				vv := views[obj]
				pass.Reportf(id.Pos(),
					"%s view %s used after %s invalidated it: re-obtain the view after advancing the ring",
					vv.kind, id.Name, why)
				reported[obj] = true
			}
			return true
		})
	}

	handleCall := func(call *ast.CallExpr) {
		if recvStr, name, ok := invalidation(pass, call); ok {
			for _, a := range call.Args {
				scanUses(a)
			}
			for obj, vv := range views {
				match := vv.recv == recvStr &&
					((vv.kind == kindPeek && name == "Consume") ||
						(vv.kind == kindReserve && name == "Commit"))
				if match {
					if _, already := poisoned[obj]; !already {
						poisoned[obj] = recvStr + "." + name
					}
				}
			}
			return
		}
		scanUses(call)
	}

	rebind := func(lhs []ast.Expr, fresh bool) {
		for _, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if _, tracked := views[obj]; tracked {
				delete(poisoned, obj)
				delete(reported, obj)
				if !fresh {
					// Rebound to a non-view value: stop tracking entirely.
					delete(views, obj)
				}
			}
		}
	}

	pre := func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					handleCall(call)
				} else {
					scanUses(rhs)
				}
			}
			// A non-ident LHS (a[0] = x, s.f = x) reads its base and
			// index expressions; a plain ident LHS is a rebind.
			for _, lhs := range st.Lhs {
				if _, isIdent := lhs.(*ast.Ident); !isIdent {
					scanUses(lhs)
				}
			}
			freshView := false
			if len(st.Rhs) == 1 {
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
					_, _, freshView = viewCall(pass, call)
				}
			}
			rebind(st.Lhs, freshView)
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				handleCall(call)
			} else {
				scanUses(st.X)
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				scanUses(r)
			}
		case *ast.IfStmt:
			scanUses(st.Cond)
		case *ast.ForStmt:
			scanUses(st.Cond)
		case *ast.RangeStmt:
			scanUses(st.X)
			rebind([]ast.Expr{st.Key, st.Value}, false)
		case *ast.SwitchStmt:
			scanUses(st.Tag)
		case *ast.SendStmt:
			scanUses(st.Chan)
			scanUses(st.Value)
		case *ast.IncDecStmt:
			scanUses(st.X)
		case *ast.DeferStmt:
			handleCall(st.Call)
		case *ast.GoStmt:
			handleCall(st.Call)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							scanUses(v)
						}
					}
				}
			}
		}
	}
	snap := func() any {
		cp := make(map[types.Object]string, len(poisoned))
		for k, v := range poisoned {
			cp[k] = v
		}
		return cp
	}
	restore := func(s any) {
		poisoned = s.(map[types.Object]string)
	}
	flexanalysis.WalkLinear(sc.body.List, pre, snap, restore)
}

package viewretain

import (
	"path/filepath"
	"testing"

	"flextoe/internal/analysis/flexanalysis"
)

func TestViewretain(t *testing.T) {
	l := flexanalysis.NewLoader()
	dir := filepath.Join("testdata", "src", "vrtest")
	res := flexanalysis.RunWant(t, l, Analyzer, dir, "flextoe/internal/apps/vrtest")

	if got := len(res.Suppressed); got != 1 {
		t.Errorf("suppressed diagnostics = %d, want 1 (//flexvet:viewretain fixture)", got)
	}
}

// Package vrtest exercises the viewretain pass against the real
// api.Socket and shm.PayloadBuf view APIs.
package vrtest

import (
	"flextoe/internal/api"
	"flextoe/internal/shm"
)

// retained is the package-level retention sink.
var retained []byte

type session struct {
	sock    api.Socket
	stash   []byte
	pending [][]byte
}

// retainedViewHazard is the PR-5 regression shape: a session callback
// stores the Peek window on the struct for "later", and the ring advances
// underneath it at the next Consume.
func retainedViewHazard(s *session) {
	a, b := s.sock.Peek()
	s.stash = a // want `Peek view a stored into field s\.stash`
	_ = b
}

func storeToPackageVar(s api.Socket) {
	a, _ := s.Peek()
	retained = a // want `Peek view a stored into package variable retained`
}

func storeSliceOfView(s *session) {
	a, _ := s.sock.Peek()
	s.stash = a[4:] // want `Peek view a stored into field s\.stash`
}

func storeToElement(s *session) {
	a, _ := s.sock.Peek()
	s.pending[0] = a // want `Peek view a stored into element s\.pending\[0\]`
}

func sendOnChannel(s api.Socket, ch chan []byte) {
	a, _ := s.Peek()
	ch <- a // want `Peek view a stored into channel send`
}

func capturedByCallback(s api.Socket) {
	a, b := s.Peek()
	s.OnReadable(func() {
		_ = a // want `Peek view a captured by OnReadable registration`
		_ = b // want `Peek view b captured by OnReadable registration`
	})
}

func capturedByDefer(s api.Socket) {
	a, _ := s.Reserve(16)
	defer func() {
		a[0] = 1 // want `Reserve view a captured by defer statement`
	}()
	s.Commit(16)
}

func capturedByGo(s api.Socket) {
	a, _ := s.Peek()
	go func() {
		_ = a // want `Peek view a captured by go statement`
	}()
}

func storedClosure(s *session) {
	a, _ := s.sock.Peek()
	fn := func() byte { return a[0] } // want `Peek view a captured by stored closure`
	_ = fn
}

func useAfterConsume(s api.Socket) byte {
	a, _ := s.Peek()
	s.Consume(4)
	return a[0] // want `Peek view a used after s\.Consume invalidated it`
}

func useAfterCommit(s *session, payload []byte) {
	a, b := s.sock.Reserve(len(payload))
	api.ViewCopyIn(a, b, 0, payload)
	s.sock.Commit(len(payload))
	a[0] = 0 // want `Reserve view a used after s\.sock\.Commit invalidated it`
}

// peekSurvivesCommit: Commit only invalidates Reserve views; the Peek
// window stays valid.
func peekSurvivesCommit(s api.Socket) byte {
	a, _ := s.Peek()
	s.Commit(8)
	return a[0]
}

// otherSocketUnaffected: invalidation is per receiver.
func otherSocketUnaffected(s, t api.Socket) byte {
	a, _ := s.Peek()
	t.Consume(4)
	return a[0]
}

// refreshRevalidates: re-obtaining the view after Consume is the
// sanctioned pattern.
func refreshRevalidates(s api.Socket) byte {
	a, _ := s.Peek()
	_ = a
	s.Consume(4)
	a, _ = s.Peek()
	return a[0]
}

// consumeThenReturnEarly: the invalidating branch leaves the function, so
// the later use is clean.
func consumeThenReturnEarly(s api.Socket, done bool) byte {
	a, _ := s.Peek()
	if done {
		s.Consume(4)
		return 0
	}
	return a[0]
}

// parseThenConsume is the canonical clean loop: stage, parse, advance,
// re-obtain.
func parseThenConsume(s api.Socket) int {
	total := 0
	for {
		a, b := s.Peek()
		n := api.ViewLen(a, b)
		if n == 0 {
			return total
		}
		for i := 0; i < n; i++ {
			total += int(api.ViewByte(a, b, i))
		}
		s.Consume(n)
	}
}

// scratchPattern: api.ViewBytes copies on ring wrap into caller scratch —
// the result aliases the view, but locals are fine.
func scratchPattern(s api.Socket, scratch *[]byte) byte {
	a, b := s.Peek()
	frame := api.ViewBytes(a, b, 0, 4, scratch)
	v := frame[0]
	s.Consume(4)
	return v
}

// payloadBufSlices: shm.PayloadBuf.Slices views follow the same retention
// rules.
func payloadBufSlices(pb *shm.PayloadBuf) {
	a, _ := pb.Slices(0, 64)
	retained = a // want `Slices view a stored into package variable retained`
}

// annotated: a deliberate, justified retention is suppressed.
func annotated(s *session) {
	a, _ := s.sock.Peek()
	//flexvet:viewretain test fixture retains the view deliberately
	s.stash = a
}

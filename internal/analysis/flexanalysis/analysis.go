// Package flexanalysis is a minimal static-analysis framework modelled on
// golang.org/x/tools/go/analysis, built entirely on the standard library's
// go/ast + go/types (the container bakes no x/tools module, and the repo
// adds no dependencies). It provides what the flexvet analyzers need and
// nothing more:
//
//   - Analyzer / Pass / Diagnostic mirroring the x/tools shapes, so the
//     five contract passes (viewretain, poolown, detrange, hotclosure,
//     sharedstate) read like ordinary go/analysis passes and could move to
//     the real framework wholesale if it ever lands in the build image.
//   - A package loader (Loader) that parses one directory with build-tag
//     awareness and type-checks it against the stdlib source importer, so
//     intra-module and stdlib imports resolve without a module download.
//   - A runner with the repo's suppression-comment convention: a
//     //flexvet:<pass> comment on the offending line (or the line above)
//     suppresses that pass's diagnostic there; detrange additionally
//     honours the spelling //flexvet:ordered for order-insensitive map
//     iteration (see doc.go "Statically enforced contracts").
//   - An analysistest-style harness (RunWant) driven by `// want "regexp"`
//     comments in testdata packages.
package flexanalysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass; it is also the suppression-comment key
	// (//flexvet:<Name>).
	Name string
	// Doc is the one-paragraph contract statement shown by `flexvet help`.
	Doc string
	// Run executes the pass over one package and reports diagnostics via
	// pass.Report. The returned value is pass-specific (sharedstate returns
	// its inventory); enforcing passes return nil.
	Run func(*Pass) (any, error)
}

// Pass carries one analyzed package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. Suppression filtering happens in the
	// runner, not here.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the runner
}

// Posn formats a diagnostic position against a file set.
func (d Diagnostic) Posn(fset *token.FileSet) string {
	return fset.Position(d.Pos).String()
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
}

// Reportf is a convenience for analyzers: format and report at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// CriticalPrefixes are the simulation-critical package roots: everything
// that runs inside the discrete-event engine, where the determinism and
// zero-alloc event contracts apply. detrange and hotclosure enforce only
// within these subtrees (a package is critical when its import path equals
// a prefix or sits beneath one).
var CriticalPrefixes = []string{
	"flextoe/internal/sim",
	"flextoe/internal/core",
	"flextoe/internal/ctrl",
	"flextoe/internal/baseline",
	"flextoe/internal/libtoe",
	"flextoe/internal/netsim",
	"flextoe/internal/fabric",
	"flextoe/internal/host",
	"flextoe/internal/sched",
	"flextoe/internal/nfp",
	// Not engine-resident, but bound by the same determinism contract:
	// a scenario spec must produce byte-identical result payloads on
	// every rerun, so the builder, readout, and job service may not read
	// the wall clock, draw global randomness, or iterate maps.
	"flextoe/internal/scenario",
}

// Critical reports whether pkgPath is simulation-critical.
func Critical(pkgPath string) bool {
	for _, p := range CriticalPrefixes {
		if pkgPath == p || (len(pkgPath) > len(p) && pkgPath[:len(p)] == p && pkgPath[len(p)] == '/') {
			return true
		}
	}
	return false
}

// IsByteSlice reports whether t is []byte.
func IsByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// NamedType unwraps pointers and returns the named type of t (resolving
// alias chains), or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// NamedIs reports whether t (through pointers and instantiation) is the
// named type pkgPath.name. Generic instantiations match their origin.
func NamedIs(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil {
		return false
	}
	n = n.Origin()
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

package flexanalysis

import (
	"fmt"
	"sort"
	"strings"
)

// Suppression-comment convention (documented in doc.go "Statically
// enforced contracts"): a comment of the form
//
//	//flexvet:<pass> <justification>
//
// on the diagnosed line, or on the line immediately above it, suppresses
// that pass's diagnostics on that line. The justification text is
// mandatory by convention (reviewed, not machine-checked). detrange
// additionally accepts the domain spelling //flexvet:ordered for map
// iterations that are provably order-insensitive.
const suppressPrefix = "flexvet:"

// markerAliases maps a suppression-marker name to the analyzer it
// silences when the names differ.
var markerAliases = map[string]string{
	"ordered": "detrange",
}

// suppressions indexes //flexvet: markers by file and line.
type suppressions map[string]map[int][]string // filename -> line -> marker names

func collectSuppressions(pkg *Package) suppressions {
	sup := suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, suppressPrefix) {
					continue
				}
				marker := strings.TrimPrefix(text, suppressPrefix)
				if i := strings.IndexAny(marker, " \t"); i >= 0 {
					marker = marker[:i]
				}
				if marker == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					sup[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], marker)
			}
		}
	}
	return sup
}

// suppressed reports whether a diagnostic from analyzer at (file, line)
// is silenced by a marker on that line or the line above.
func (s suppressions) suppressed(analyzer, file string, line int) bool {
	byLine := s[file]
	if byLine == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		for _, m := range byLine[l] {
			if m == analyzer || markerAliases[m] == analyzer {
				return true
			}
		}
	}
	return false
}

// Result is the outcome of running one analyzer over one package.
type Result struct {
	Analyzer   *Analyzer
	Pkg        *Package
	Value      any // Analyzer.Run's return value (sharedstate inventory)
	Diags      []Diagnostic
	Suppressed []Diagnostic
}

// RunPackage runs the analyzers over one loaded package, splitting
// diagnostics into active and suppressed per the //flexvet: convention.
// Diagnostics are sorted by position for deterministic output.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Result, error) {
	sup := collectSuppressions(pkg)
	var results []Result
	for _, a := range analyzers {
		var all []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				all = append(all, d)
			},
		}
		value, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("%s over %s: %w", a.Name, pkg.Path, err)
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].Pos < all[j].Pos })
		res := Result{Analyzer: a, Pkg: pkg, Value: value}
		for _, d := range all {
			p := pkg.Fset.Position(d.Pos)
			if sup.suppressed(a.Name, p.Filename, p.Line) {
				res.Suppressed = append(res.Suppressed, d)
			} else {
				res.Diags = append(res.Diags, d)
			}
		}
		results = append(results, res)
	}
	return results, nil
}

package flexanalysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages for analysis. Dependencies are
// resolved by the stdlib source importer (which shells out to `go list`
// for module paths), so the loader works offline against the module and
// GOROOT alone. One Loader shares a FileSet and an import cache across
// every package it loads; it is not safe for concurrent use.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
	ctx  build.Context
}

// NewLoader returns a loader with the default build context (honouring
// build tags, so flexdebug-tagged files are excluded like the normal
// build excludes them).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
		ctx:  build.Default,
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Package is one loaded, type-checked package.
type Package struct {
	Dir   string
	Path  string // import path; synthetic for testdata packages
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the non-test Go files of dir as import path
// importPath. Type errors are returned (analysis requires well-typed
// input), but a missing package (no buildable files) is reported as
// ErrNoGoFiles.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, ErrNoGoFiles
		}
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		Dir:   dir,
		Path:  importPath,
		Fset:  l.fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, nil
}

// ErrNoGoFiles marks a directory with no buildable non-test Go files.
var ErrNoGoFiles = fmt.Errorf("no buildable Go files")

// ModuleRoot walks upward from dir to the directory holding go.mod and
// returns it with the module path parsed from the file.
func ModuleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// PackageDirs returns every directory under root (inclusive) that can
// hold a package: testdata, hidden and underscore-prefixed directories
// are skipped, matching the go tool's traversal. The result is sorted so
// multi-package runs are deterministic.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadAll loads every buildable package under root, mapping directories
// to import paths below modPath. Directories without buildable Go files
// are skipped silently; any other load error aborts.
func (l *Loader) LoadAll(root, modPath string) ([]*Package, error) {
	dirs, err := PackageDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(dir, ip)
		if err == ErrNoGoFiles {
			continue
		}
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

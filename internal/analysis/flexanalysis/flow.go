package flexanalysis

import "go/ast"

// WalkLinear visits a statement list in source order, approximating
// execution order for flow-sensitive contract checks (use-after-release,
// view-after-invalidate). pre is called for every statement before its
// nested bodies are descended; it must examine only the statement's own
// expressions (conditions, operands), never nested statement lists — the
// walker owns those.
//
// Branch semantics are a deliberate conservative union: effects recorded
// inside an if/switch/select branch persist after it (the branch may have
// executed), EXCEPT when the branch body terminates (ends in return,
// break, continue, goto, or panic) — then state is rolled back to the
// snapshot taken at branch entry, because code after the construct is
// unreachable from that branch. Loop bodies are visited once with no
// rollback. snap captures the caller's flow state; restore reinstates a
// capture.
func WalkLinear(stmts []ast.Stmt, pre func(ast.Stmt), snap func() any, restore func(any)) {
	for _, s := range stmts {
		walkOne(s, pre, snap, restore)
	}
}

func walkOne(s ast.Stmt, pre func(ast.Stmt), snap func() any, restore func(any)) {
	if s == nil {
		return
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		WalkLinear(st.List, pre, snap, restore)
	case *ast.LabeledStmt:
		walkOne(st.Stmt, pre, snap, restore)
	case *ast.IfStmt:
		walkOne(st.Init, pre, snap, restore)
		pre(st)
		s0 := snap()
		WalkLinear(st.Body.List, pre, snap, restore)
		if terminates(st.Body.List) {
			restore(s0)
		}
		if st.Else != nil {
			s1 := snap()
			walkOne(st.Else, pre, snap, restore)
			if blk, ok := st.Else.(*ast.BlockStmt); ok && terminates(blk.List) {
				restore(s1)
			}
		}
	case *ast.ForStmt:
		walkOne(st.Init, pre, snap, restore)
		pre(st)
		WalkLinear(st.Body.List, pre, snap, restore)
		walkOne(st.Post, pre, snap, restore)
	case *ast.RangeStmt:
		pre(st)
		WalkLinear(st.Body.List, pre, snap, restore)
	case *ast.SwitchStmt:
		walkOne(st.Init, pre, snap, restore)
		pre(st)
		walkClauses(st.Body.List, pre, snap, restore)
	case *ast.TypeSwitchStmt:
		walkOne(st.Init, pre, snap, restore)
		walkOne(st.Assign, pre, snap, restore)
		pre(st)
		walkClauses(st.Body.List, pre, snap, restore)
	case *ast.SelectStmt:
		pre(st)
		walkClauses(st.Body.List, pre, snap, restore)
	default:
		pre(s)
	}
}

func walkClauses(clauses []ast.Stmt, pre func(ast.Stmt), snap func() any, restore func(any)) {
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			walkOne(cc.Comm, pre, snap, restore)
			body = cc.Body
		default:
			continue
		}
		s0 := snap()
		WalkLinear(body, pre, snap, restore)
		if terminates(body) {
			restore(s0)
		}
	}
}

// terminates reports whether a statement list unconditionally leaves the
// enclosing linear flow: its last statement is a return, a branch
// (break/continue/goto/fallthrough), or a panic call.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

package flexanalysis

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// RunWant is the analysistest-style harness: it loads the package in dir
// under the synthetic import path importPath, runs one analyzer, and
// checks the active (unsuppressed) diagnostics against `// want`
// expectations in the source.
//
// An expectation is a comment of the form
//
//	// want `regexp` `regexp` ...
//
// (double-quoted Go strings also work). Each diagnostic must match an
// expectation on its line, and every expectation must be matched exactly
// once. Suppressed diagnostics (//flexvet: markers) are asserted NOT to
// appear — a want comment and a suppression on the same line is a test
// authoring error.
func RunWant(t *testing.T, l *Loader, a *Analyzer, dir, importPath string) *Result {
	t.Helper()
	pkg, err := l.Load(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	results, err := RunPackage(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	res := results[0]

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, pat := range splitWant(rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range res.Diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		wants[k][matched] = nil // consumed
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
	return &res
}

// splitWant extracts the quoted patterns from a want comment tail.
func splitWant(s string) []string {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		quote := s[0]
		if quote != '`' && quote != '"' {
			return pats
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return append(pats, s[1:])
		}
		pats = append(pats, s[1:1+end])
		s = s[end+2:]
	}
}

// DiagStrings renders active diagnostics for assertion messages.
func DiagStrings(res Result) []string {
	var out []string
	for _, d := range res.Diags {
		out = append(out, fmt.Sprintf("%s: %s: %s", d.Posn(res.Pkg.Fset), d.Analyzer, d.Message))
	}
	return out
}

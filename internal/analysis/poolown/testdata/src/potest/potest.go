// Package potest exercises the poolown pass against the real pools:
// packets (packet.Get/Release), frames (netsim.NewFrame/ReleaseFrame),
// and generic freelists/slabs (shm).
package potest

import (
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
)

type record struct {
	seq uint32
}

var recFree shm.Freelist[record]

// leakedPacket builds a packet and forgets it: no release, no handoff.
func leakedPacket() {
	p := packet.Get() // want `p acquired from the packet pool is neither released nor handed off`
	p.TCP.Seq = 1
}

// releasedPacket terminates ownership correctly.
func releasedPacket() {
	p := packet.Get()
	p.TCP.Seq = 1
	packet.Release(p)
}

// transmittedPacket hands ownership to the fabric (any call argument).
func transmittedPacket(send func(*packet.Packet)) {
	p := packet.Get()
	send(p)
}

// returnedPacket transfers ownership to the caller.
func returnedPacket() *packet.Packet {
	p := packet.Get()
	p.TCP.Seq = 7
	return p
}

// storedPacket hands ownership to a long-lived holder.
type holder struct{ pkt *packet.Packet }

func storedPacket(h *holder) {
	p := packet.Get()
	h.pkt = p
}

// doubleRelease is the two-owners bug: the pool hands one object out twice.
func doubleRelease() {
	p := packet.Get()
	packet.Release(p)
	packet.Release(p) // want `double release of p \(already released by Release\)`
}

// useAfterRelease touches a packet whose journey ended.
func useAfterRelease() uint32 {
	p := packet.Get()
	packet.Release(p)
	return p.TCP.Seq // want `p used after Release released it back to the packet pool`
}

// dropPointRegression is the PR-3/PR-4 drop-point shape done wrong: the
// frame is released first, then its packet is reached through the dead
// frame. (The correct order releases the packet, then the frame.)
func dropPointRegression(f *netsim.Frame, p *packet.Packet, now sim.Time) {
	g := netsim.NewFrame(p, now)
	netsim.ReleaseFrame(g)
	packet.Release(g.Pkt) // want `g used after ReleaseFrame released it back to the frame pool`
	_ = f
}

// dropPointCorrect: packet first, then frame.
func dropPointCorrect(p *packet.Packet, now sim.Time) {
	g := netsim.NewFrame(p, now)
	packet.Release(g.Pkt)
	netsim.ReleaseFrame(g)
}

// branchRelease releases on an early-exit path only: the fallthrough use
// is clean because the releasing branch leaves the function.
func branchRelease(drop bool) *packet.Packet {
	p := packet.Get()
	if drop {
		packet.Release(p)
		return nil
	}
	return p
}

// branchLeak releases on one path but uses the packet after the branch
// merges: the non-terminating release branch poisons the merge.
func branchLeak(drop bool) uint32 {
	p := packet.Get()
	if drop {
		packet.Release(p)
	}
	return p.TCP.Seq // want `p used after Release released it`
}

// freelistDouble exercises the generic pool.
func freelistDouble() {
	r := recFree.Get()
	if r == nil {
		r = &record{}
	}
	r.seq = 9
	recFree.Put(r)
	recFree.Put(r) // want `double release of r \(already released by Put\)`
}

// freelistReuse re-acquires into the same variable: tracking resets.
func freelistReuse() {
	r := recFree.Get()
	if r == nil {
		r = &record{}
	}
	recFree.Put(r)
	r = recFree.Get()
	if r != nil {
		recFree.Put(r)
	}
}

// deferredRelease is the sanctioned cleanup shape.
func deferredRelease() uint32 {
	p := packet.Get()
	defer packet.Release(p)
	p.TCP.Seq = 3
	return p.TCP.Seq
}

// tcarrier mimics the pooled timer-carrier pattern (ctrl connTimer,
// baseline btimer): drawn per arming via a getTimer method, recycled via
// putTimer when the timer fires dead or is disarmed.
type tcarrier struct{ id uint32 }

type towner struct{ free shm.Freelist[tcarrier] }

func (o *towner) getTimer() *tcarrier {
	tm := o.free.Get()
	if tm == nil {
		tm = &tcarrier{}
	}
	return tm
}

func (o *towner) putTimer(tm *tcarrier) { o.free.Put(tm) }

// timerLeak draws a carrier and never arms or recycles it.
func (o *towner) timerLeak() {
	tm := o.getTimer() // want `tm acquired from the timer pool is neither released nor handed off`
	tm.id = 1
}

// timerArmed hands the carrier to the engine: ownership rides the event.
func (o *towner) timerArmed(arm func(*tcarrier)) {
	tm := o.getTimer()
	arm(tm)
}

// timerDouble recycles one carrier twice: two future armings would share
// it.
func (o *towner) timerDouble() {
	tm := o.getTimer()
	o.putTimer(tm)
	o.putTimer(tm) // want `double release of tm \(already released by putTimer\)`
}

// timerUseAfterPut reads a recycled carrier: the next arming may already
// have rewritten it.
func (o *towner) timerUseAfterPut() uint32 {
	tm := o.getTimer()
	o.putTimer(tm)
	return tm.id // want `tm used after putTimer released it back to the timer pool`
}

// annotated: a justified leak (fixtures may drop pooled objects to the
// garbage collector; the pool refills on demand).
func annotated() {
	//flexvet:poolown fixture deliberately leaks one packet to the GC
	p := packet.Get()
	p.TCP.Seq = 1
}

// Package poolown enforces the pooled single-ownership contract (package
// packet docs, doc.go "Pooling ownership", PR 3): a pooled object —
// packet (packet.Get), frame (netsim.NewFrame), segment item
// ((*TOE).allocSeg), or anything drawn from a shm.Freelist / shm.Slab —
// or timer carrier (getTimer/putTimer in ctrl and baseline, PR 8) —
// has exactly one owner at a time. Whoever terminates its journey
// releases it exactly once and must not touch it afterwards.
//
// The pass tracks pooled values through local dataflow and flags:
//
//   - Leak: a value acquired from a pool that is neither released nor
//     handed off anywhere in the function. Handoff is any plausible
//     ownership transfer — the value passed as a call argument, returned,
//     assigned (to a field, element, global, or another variable), placed
//     in a composite literal, sent on a channel, or captured by a func
//     literal. The check is flow-insensitive and conservative: one
//     handoff anywhere clears the function.
//   - Double release: a second Release/ReleaseFrame/putSeg/Put on the
//     same variable with no intervening re-acquisition. The pool would
//     hand one object to two owners.
//   - Use after release: any use of the variable after its release on the
//     linear path (conservative branch union, see
//     flexanalysis.WalkLinear). Ownership ended at the release.
//
// Interprocedural ownership (release via a helper that stores the value
// first) is deliberately out of scope — a handoff transfers the
// obligation to the callee/holder. The flexdebug build tag provides the
// runtime complement: poisoned pools that panic on double-release and
// use-after-release. A correct-but-flagged site may carry
// //flexvet:poolown <why>.
package poolown

import (
	"go/ast"
	"go/types"

	"flextoe/internal/analysis/flexanalysis"
)

// Analyzer is the poolown pass.
var Analyzer = &flexanalysis.Analyzer{
	Name: "poolown",
	Doc: "track pooled values (packets, frames, segItems, freelist objects) " +
		"through local dataflow: flag leaks, double releases, and use after release",
	Run: run,
}

const (
	pktPkg    = "flextoe/internal/packet"
	netsimPkg = "flextoe/internal/netsim"
	shmPkg    = "flextoe/internal/shm"
)

// acquireCall recognizes pool acquisitions and names the pool.
func acquireCall(pass *flexanalysis.Pass, call *ast.CallExpr) (pool string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		// Unqualified call inside the defining package (getFrame()).
		if id, isIdent := call.Fun.(*ast.Ident); isIdent {
			if fn, isFn := pass.TypesInfo.Uses[id].(*types.Func); isFn && fn.Pkg() != nil {
				return acquireFunc(fn)
			}
		}
		return "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		// Package-qualified: packet.Get, netsim.NewFrame.
		if fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFn && fn.Pkg() != nil {
			return acquireFunc(fn)
		}
		return "", false
	}
	if selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := selection.Recv()
	switch sel.Sel.Name {
	case "Get":
		if flexanalysis.NamedIs(recv, shmPkg, "Freelist") {
			return "shm.Freelist", true
		}
		if flexanalysis.NamedIs(recv, shmPkg, "Slab") {
			return "shm.Slab", true
		}
		// Per-shard packet pools (PR 7): pool.Get() owns like packet.Get().
		if flexanalysis.NamedIs(recv, pktPkg, "Pool") {
			return "packet pool", true
		}
	case "NewFrame", "getFrame":
		// Per-shard frame pools (PR 7): method forms of netsim.NewFrame.
		if flexanalysis.NamedIs(recv, netsimPkg, "FramePool") {
			return "frame pool", true
		}
	case "allocSeg":
		return "segItem pool", true
	case "getTimer":
		// Pooled timer carriers (PR 8): the control plane's connTimer and
		// the baseline stacks' btimer are drawn per arming and recycled
		// when the timer fires dead or is disarmed.
		return "timer pool", true
	}
	return "", false
}

// acquireFunc classifies package-level acquisition functions.
func acquireFunc(fn *types.Func) (string, bool) {
	if fn.Signature().Recv() != nil {
		return "", false
	}
	switch {
	case fn.Pkg().Path() == pktPkg && fn.Name() == "Get":
		return "packet pool", true
	case fn.Pkg().Path() == netsimPkg && (fn.Name() == "NewFrame" || fn.Name() == "getFrame"):
		return "frame pool", true
	}
	return "", false
}

// releaseCall recognizes pool releases and returns the released argument
// expression (nil when the shape doesn't match).
func releaseCall(pass *flexanalysis.Pass, call *ast.CallExpr) (arg ast.Expr, name string, ok bool) {
	if len(call.Args) == 0 {
		return nil, "", false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		selection := pass.TypesInfo.Selections[fun]
		if selection == nil {
			// Package-qualified function.
			if fn, isFn := pass.TypesInfo.Uses[fun.Sel].(*types.Func); isFn && fn.Pkg() != nil {
				if relFunc(fn) {
					return call.Args[0], fn.Name(), true
				}
			}
			return nil, "", false
		}
		if selection.Kind() != types.MethodVal {
			return nil, "", false
		}
		switch fun.Sel.Name {
		case "Put":
			recv := selection.Recv()
			if flexanalysis.NamedIs(recv, shmPkg, "Freelist") || flexanalysis.NamedIs(recv, shmPkg, "Slab") {
				return call.Args[0], "Put", true
			}
		case "putSeg":
			return call.Args[0], "putSeg", true
		case "putTimer":
			return call.Args[0], "putTimer", true
		}
	case *ast.Ident:
		if fn, isFn := pass.TypesInfo.Uses[fun].(*types.Func); isFn && fn.Pkg() != nil && relFunc(fn) {
			return call.Args[0], fn.Name(), true
		}
	}
	return nil, "", false
}

func relFunc(fn *types.Func) bool {
	if fn.Signature().Recv() != nil {
		return false
	}
	switch {
	case fn.Pkg().Path() == pktPkg && fn.Name() == "Release":
		return true
	case fn.Pkg().Path() == netsimPkg && fn.Name() == "ReleaseFrame":
		return true
	}
	return false
}

// pooledVar is one tracked local.
type pooledVar struct {
	pool string
	pos  ast.Node
}

func run(pass *flexanalysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				analyzeScope(pass, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// ownStmts inspects body without descending into nested func literals.
func ownStmts(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

func analyzeScope(pass *flexanalysis.Pass, body *ast.BlockStmt) {
	// Collect acquisitions bound to plain locals: p := packet.Get().
	pooled := map[types.Object]*pooledVar{}
	ownStmts(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		pool, ok := acquireCall(pass, call)
		if !ok {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				pooled[obj] = &pooledVar{pool: pool, pos: id}
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}
	checkLeaks(pass, body, pooled)
	checkReleaseFlow(pass, body, pooled)
}

// checkLeaks flags pooled locals with no release and no handoff anywhere
// in the scope (flow-insensitive).
func checkLeaks(pass *flexanalysis.Pass, body *ast.BlockStmt, pooled map[types.Object]*pooledVar) {
	moved := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		for _, id := range aliasIdents(e, nil) {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if _, ok := pooled[obj]; ok {
					moved[obj] = true
				}
			}
		}
	}
	ownStmts(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			for _, a := range st.Args {
				mark(a)
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				mark(r)
			}
		case *ast.AssignStmt:
			// Assignment RHS transfers (q := p, s.f = p); the acquiring
			// assignment itself has the call on the RHS, not the ident,
			// so it never marks.
			for _, r := range st.Rhs {
				mark(r)
			}
		case *ast.SendStmt:
			mark(st.Value)
		case *ast.CompositeLit:
			for _, elt := range st.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				mark(elt)
			}
		case *ast.FuncLit:
			// Captured by a closure (its body is an inner scope, but the
			// capture itself is a handoff). ownStmts does not descend, so
			// inspect here.
			ast.Inspect(st.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						if _, ok := pooled[obj]; ok {
							moved[obj] = true
						}
					}
				}
				return true
			})
		}
		return true
	})
	for obj, pv := range pooled {
		if !moved[obj] {
			pass.Reportf(pv.pos.Pos(),
				"%s acquired from the %s is neither released nor handed off in this function: pooled values have exactly one owner, and the owner must release or transfer",
				obj.Name(), pv.pool)
		}
	}
}

// aliasIdents mirrors viewretain's: identifiers the value of e aliases.
func aliasIdents(e ast.Expr, out []*ast.Ident) []*ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		out = append(out, x)
	case *ast.SliceExpr:
		out = aliasIdents(x.X, out)
	case *ast.ParenExpr:
		out = aliasIdents(x.X, out)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			out = aliasIdents(x.X, out)
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out = aliasIdents(elt, out)
		}
	}
	return out
}

// checkReleaseFlow runs the flow-sensitive half: double release and use
// after release along the linear path.
func checkReleaseFlow(pass *flexanalysis.Pass, body *ast.BlockStmt, pooled map[types.Object]*pooledVar) {
	released := map[types.Object]string{} // obj -> release call name
	reported := map[types.Object]bool{}

	scanUses := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || reported[obj] {
				return true
			}
			if rel, dead := released[obj]; dead {
				pass.Reportf(id.Pos(),
					"%s used after %s released it back to the %s: ownership ended at the release",
					id.Name, rel, pooled[obj].pool)
				reported[obj] = true
			}
			return true
		})
	}

	handleCall := func(call *ast.CallExpr) {
		if arg, name, ok := releaseCall(pass, call); ok {
			if id, isIdent := arg.(*ast.Ident); isIdent {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					if _, tracked := pooled[obj]; tracked {
						if rel, dup := released[obj]; dup && !reported[obj] {
							pass.Reportf(call.Pos(),
								"double release of %s (already released by %s): the %s would hand one object to two owners",
								id.Name, rel, pooled[obj].pool)
							reported[obj] = true
						} else {
							released[obj] = name
						}
						// Scan the remaining args normally.
						for _, a := range call.Args[1:] {
							scanUses(a)
						}
						return
					}
				}
			}
		}
		scanUses(call)
	}

	rebind := func(lhs []ast.Expr) {
		for _, l := range lhs {
			if id, ok := l.(*ast.Ident); ok {
				obj := pass.TypesInfo.ObjectOf(id)
				delete(released, obj)
				delete(reported, obj)
			}
		}
	}

	pre := func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					handleCall(call)
				} else {
					scanUses(rhs)
				}
			}
			for _, lhs := range st.Lhs {
				if _, isIdent := lhs.(*ast.Ident); !isIdent {
					scanUses(lhs)
				}
			}
			rebind(st.Lhs)
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				handleCall(call)
			} else {
				scanUses(st.X)
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				scanUses(r)
			}
		case *ast.IfStmt:
			scanUses(st.Cond)
		case *ast.ForStmt:
			scanUses(st.Cond)
		case *ast.RangeStmt:
			scanUses(st.X)
			rebind([]ast.Expr{st.Key, st.Value})
		case *ast.SwitchStmt:
			scanUses(st.Tag)
		case *ast.SendStmt:
			scanUses(st.Chan)
			scanUses(st.Value)
		case *ast.IncDecStmt:
			scanUses(st.X)
		case *ast.DeferStmt:
			// defer packet.Release(p) runs at exit: it is a release for
			// double-release purposes but poisons nothing mid-function.
			if _, _, ok := releaseCall(pass, st.Call); !ok {
				scanUses(st.Call)
			}
		case *ast.GoStmt:
			handleCall(st.Call)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							scanUses(v)
						}
					}
				}
			}
		}
	}
	snap := func() any {
		cp := make(map[types.Object]string, len(released))
		for k, v := range released {
			cp[k] = v
		}
		return cp
	}
	restore := func(s any) {
		released = s.(map[types.Object]string)
	}
	flexanalysis.WalkLinear(body.List, pre, snap, restore)
}

package poolown

import (
	"path/filepath"
	"testing"

	"flextoe/internal/analysis/flexanalysis"
)

func TestPoolown(t *testing.T) {
	l := flexanalysis.NewLoader()
	dir := filepath.Join("testdata", "src", "potest")
	res := flexanalysis.RunWant(t, l, Analyzer, dir, "flextoe/internal/core/potest")

	if got := len(res.Suppressed); got != 1 {
		t.Errorf("suppressed diagnostics = %d, want 1 (//flexvet:poolown fixture)", got)
	}
}

// Package sharedstate is the reporting pass behind ROADMAP item 1 (the
// sharded parallel engine): before the event loop can be split across
// per-core shards, every piece of state reachable from more than one
// shard has to be known and classified. In this codebase each simulated
// host/TOE hangs off its own struct, so the cross-shard mutable surface
// is exactly the package-level variable set — global pools, global
// counters, and any other package state shared by all instances.
//
// The pass inventories every package-level `var` and classifies it:
//
//   - pool: a global object pool (shm.Freelist, shm.Slab, or a struct
//     wrapping them). Single-threaded by design today; sharding needs a
//     per-shard instance or a lock-free variant.
//   - stats: global counters written on the hot path (PoolStats and
//     friends). Sharding needs per-shard counters merged at readout, or
//     the gates lose bit-determinism.
//   - synchronized: carries its own sync/atomic machinery (the netsim
//     interface-ID allocator, whose per-testbed relative order is all the
//     event tie-break needs).
//   - shard-confined: annotated `//flexvet:sharedstate shard-confined
//     <why>` in the var's doc comment — a default instance reached only
//     from single-threaded entry points (tests, examples, standalone
//     tools), while every sharded hot path uses the per-engine instance
//     (sim.Engine.Local). The annotation is an audited claim: the why is
//     committed to SHAREDSTATE.md with the var.
//   - immutable-after-init: written only by initializer expressions or
//     init functions; safe to share read-only across shards.
//   - shared-mutable: everything else — written at runtime from ordinary
//     functions; each one needs an explicit sharding decision.
//
// Unlike the four enforcing passes, sharedstate reports no diagnostics:
// its Run result is the inventory ([]Var), and cmd/flexvet -sharedstate
// renders the deterministic report committed as SHAREDSTATE.md (kept in
// sync by the repo-level flexvet test).
package sharedstate

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flextoe/internal/analysis/flexanalysis"
)

// Analyzer is the sharedstate pass.
var Analyzer = &flexanalysis.Analyzer{
	Name: "sharedstate",
	Doc: "inventory package-level mutable state and classify it for the " +
		"sharded engine (pool / stats / synchronized / shard-confined / " +
		"immutable-after-init / shared-mutable)",
	Run: run,
}

// Var is one package-level variable in the inventory.
type Var struct {
	Pkg     string // import path
	Name    string
	Type    string   // rendered with package-qualified names
	Class   string   // pool | stats | synchronized | shard-confined | immutable-after-init | shared-mutable
	Writers []string // functions performing non-init writes (sorted, deduped)
	Pos     string   // file:line, path relative to the package directory
	Doc     string   // first sentence of the var's doc comment, if any
}

// ShardingNote maps a classification to the action ROADMAP item 1 needs.
func ShardingNote(class string) string {
	switch class {
	case "pool":
		return "per-shard instance (freelists are single-threaded by design)"
	case "stats":
		return "per-shard counters, merged deterministically at readout"
	case "synchronized":
		return "already synchronized; audit for shard-quantum ordering"
	case "shard-confined":
		return "single-threaded entry points only; sharded hot paths use the per-engine instance (Engine.Local)"
	case "immutable-after-init":
		return "share read-only"
	default:
		return "explicit sharding decision required"
	}
}

func run(pass *flexanalysis.Pass) (any, error) {
	// Collect package-level vars.
	vars := map[types.Object]*Var{}
	confined := map[types.Object]bool{}
	qualifier := func(p *types.Package) string { return p.Name() }
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := pass.TypesInfo.ObjectOf(name)
					if obj == nil || obj.Parent() != pass.Pkg.Scope() {
						continue
					}
					pos := pass.Fset.Position(name.Pos())
					file := pos.Filename
					if i := strings.LastIndexByte(file, '/'); i >= 0 {
						file = file[i+1:]
					}
					vars[obj] = &Var{
						Pkg:  pass.Pkg.Path(),
						Name: name.Name,
						Type: types.TypeString(obj.Type(), qualifier),
						Pos:  fmt.Sprintf("%s:%d", file, pos.Line),
						Doc:  docSentence(gd, vs),
					}
					if confinedDirective(gd, vs) {
						confined[obj] = true
					}
				}
			}
		}
	}
	if len(vars) == 0 {
		return []Var(nil), nil
	}

	// Find non-init writes: direct assignment, content mutation
	// (field/element stores, IncDec), address escape, and pointer-receiver
	// method calls on the var.
	writers := map[types.Object]map[string]bool{}
	note := func(obj types.Object, fn string) {
		if _, tracked := vars[obj]; !tracked {
			return
		}
		if writers[obj] == nil {
			writers[obj] = map[string]bool{}
		}
		writers[obj][fn] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnName := funcLabel(fd)
			isInit := fd.Name.Name == "init" && fd.Recv == nil
			if isInit {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if obj := baseVar(pass, lhs); obj != nil {
							note(obj, fnName)
						}
					}
				case *ast.IncDecStmt:
					if obj := baseVar(pass, st.X); obj != nil {
						note(obj, fnName)
					}
				case *ast.UnaryExpr:
					if st.Op == token.AND {
						if obj := baseVar(pass, st.X); obj != nil {
							note(obj, fnName)
						}
					}
				case *ast.CallExpr:
					if sel, ok := st.Fun.(*ast.SelectorExpr); ok {
						selection := pass.TypesInfo.Selections[sel]
						if selection != nil && selection.Kind() == types.MethodVal {
							if fn, ok := selection.Obj().(*types.Func); ok && ptrReceiver(fn) {
								if obj := baseVar(pass, sel.X); obj != nil {
									note(obj, fnName)
								}
							}
						}
					}
				}
				return true
			})
		}
	}

	// Classify.
	var out []Var
	for obj, v := range vars {
		w := writers[obj]
		v.Writers = sortedKeys(w)
		if confined[obj] {
			// The directive is an audited claim that outranks the type
			// rules: a default pool stays a pool structurally, but its
			// sharding story is "never reached from a sharded path".
			v.Class = "shard-confined"
		} else {
			v.Class = classify(obj.Type(), v.Name, len(w) > 0)
		}
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// baseVar unwraps an lvalue/operand to the package-level var at its base:
// V, V.f, V[i], V.f[i].g ... (stops at the root identifier).
func baseVar(pass *flexanalysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(x)
			if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			// Qualified package identifier (pkg.Var) resolves via Sel.
			if _, isPkg := pass.TypesInfo.ObjectOf(baseIdent(x.X)).(*types.PkgName); isPkg {
				return nil // other package's var: its own pass reports it
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func baseIdent(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

func ptrReceiver(fn *types.Func) bool {
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	_, isPtr := recv.Type().(*types.Pointer)
	return isPtr
}

func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// classify buckets one variable. Type-based rules run first (a pool is a
// pool even when only init writes it), then write-based mutability.
func classify(t types.Type, name string, written bool) string {
	if isPoolType(t) {
		return "pool"
	}
	if containsSync(t, 0) {
		return "synchronized"
	}
	if strings.Contains(name, "Stats") || strings.Contains(name, "stats") {
		return "stats"
	}
	if !written {
		return "immutable-after-init"
	}
	return "shared-mutable"
}

func isPoolType(t types.Type) bool {
	for _, n := range []string{"Freelist", "Slab", "Pool"} {
		if flexanalysis.NamedIs(t, "flextoe/internal/shm", n) {
			return true
		}
	}
	return false
}

// containsSync detects sync/atomic machinery in the type's struct fields.
func containsSync(t types.Type, depth int) bool {
	if depth > 3 {
		return false
	}
	if n := flexanalysis.NamedType(t); n != nil {
		if pkg := n.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if containsSync(s.Field(i).Type(), depth+1) {
			return true
		}
	}
	return false
}

// confinedDirective reports whether the var's doc comment carries the
// `//flexvet:sharedstate shard-confined` directive.
func confinedDirective(gd *ast.GenDecl, vs *ast.ValueSpec) bool {
	for _, doc := range []*ast.CommentGroup{vs.Doc, vs.Comment, gd.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if strings.HasPrefix(c.Text, "//flexvet:sharedstate shard-confined") {
				return true
			}
		}
	}
	return false
}

// docSentence extracts the first sentence of the var's doc comment.
func docSentence(gd *ast.GenDecl, vs *ast.ValueSpec) string {
	doc := vs.Doc
	if doc == nil {
		doc = gd.Doc
	}
	if doc == nil {
		return ""
	}
	text := strings.TrimSpace(doc.Text())
	if i := strings.IndexAny(text, ".\n"); i >= 0 {
		text = text[:i]
	}
	return strings.Join(strings.Fields(text), " ")
}

// Report renders the full-tree inventory as the committed SHAREDSTATE.md.
// Input is the concatenated per-package inventories; output is
// deterministic (sorted by package, then name).
func Report(all []Var) string {
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pkg != all[j].Pkg {
			return all[i].Pkg < all[j].Pkg
		}
		return all[i].Name < all[j].Name
	})
	var b strings.Builder
	b.WriteString("# SHAREDSTATE — package-level mutable state inventory\n\n")
	b.WriteString("Generated by `flexvet -sharedstate ./...` (the sharedstate pass); kept in\n")
	b.WriteString("sync by `TestSharedStateReportCurrent`. Do not edit by hand.\n\n")
	b.WriteString("Every simulated host/TOE hangs off its own struct, so the variables below\n")
	b.WriteString("are exactly the state shared across all of them — the surface the sharded\n")
	b.WriteString("engine (PR 7, doc.go \"Sharding contract\") partitions per shard (pool/stats:\n")
	b.WriteString("per-engine instances via sim.Engine.Local), confines to single-threaded\n")
	b.WriteString("entry points (shard-confined), or leaves safely shared.\n\n")

	counts := map[string]int{}
	for _, v := range all {
		counts[v.Class]++
	}
	b.WriteString("## Summary\n\n")
	b.WriteString("| class | count | sharding action |\n|---|---|---|\n")
	for _, class := range []string{"pool", "stats", "synchronized", "shard-confined", "shared-mutable", "immutable-after-init"} {
		if counts[class] == 0 {
			continue
		}
		fmt.Fprintf(&b, "| %s | %d | %s |\n", class, counts[class], ShardingNote(class))
	}
	b.WriteString("\n## Inventory\n\n")

	lastPkg := ""
	for _, v := range all {
		if v.Pkg != lastPkg {
			if lastPkg != "" {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "### %s\n\n", v.Pkg)
			b.WriteString("| var | type | class | written by | where |\n|---|---|---|---|---|\n")
			lastPkg = v.Pkg
		}
		writers := strings.Join(v.Writers, ", ")
		if writers == "" {
			writers = "—"
		}
		fmt.Fprintf(&b, "| `%s` | `%s` | %s | %s | %s |\n",
			v.Name, v.Type, v.Class, writers, v.Pos)
	}
	return b.String()
}

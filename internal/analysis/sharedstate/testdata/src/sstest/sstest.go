// Package sstest exercises the sharedstate classifier: one variable per
// class, plus write-site attribution shapes (field store, IncDec, method
// call through a pointer receiver, address escape).
package sstest

import (
	"sync"

	"flextoe/internal/shm"
)

type entry struct {
	id uint32
}

// entryFree is the global entry pool.
var entryFree shm.Freelist[entry]

// Counters is a hot-path stats block.
type Counters struct {
	Hits, Misses uint64
}

// PoolStats counts pool traffic.
var PoolStats Counters

// guarded carries its own lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

var lockbox guarded

// seedTable is filled by init and never written again.
var seedTable [16]uint32

func init() {
	for i := range seedTable {
		seedTable[i] = uint32(i) * 2654435761
	}
}

// registry is runtime-written global state with no synchronization.
var registry map[string]*entry

// limit is written through its address.
var limit int

func alloc() *entry {
	PoolStats.Hits++
	e := entryFree.Get()
	if e == nil {
		PoolStats.Misses++
		e = &entry{}
	}
	return e
}

func free(e *entry) {
	entryFree.Put(e)
}

func register(name string, e *entry) {
	if registry == nil {
		registry = map[string]*entry{}
	}
	registry[name] = e
}

func (g *guarded) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func touchLock() {
	lockbox.bump()
}

func setLimit(n int) {
	store(&limit, n)
}

func store(p *int, v int) { *p = v }

func lookup(i int) uint32 { return seedTable[i&15] }

package sharedstate

import (
	"path/filepath"
	"strings"
	"testing"

	"flextoe/internal/analysis/flexanalysis"
)

// load runs the pass over the sstest fixture and indexes the inventory.
func load(t *testing.T) map[string]Var {
	t.Helper()
	l := flexanalysis.NewLoader()
	dir := filepath.Join("testdata", "src", "sstest")
	pkg, err := l.Load(dir, "flextoe/internal/core/sstest")
	if err != nil {
		t.Fatal(err)
	}
	results, err := flexanalysis.RunPackage(pkg, []*flexanalysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(results[0].Diags); n != 0 {
		t.Fatalf("sharedstate reported %d diagnostics, want 0 (reporting-only pass)", n)
	}
	vars, ok := results[0].Value.([]Var)
	if !ok {
		t.Fatalf("pass value is %T, want []Var", results[0].Value)
	}
	byName := map[string]Var{}
	for _, v := range vars {
		byName[v.Name] = v
	}
	return byName
}

func TestClassification(t *testing.T) {
	vars := load(t)
	want := map[string]string{
		"entryFree": "pool",
		"PoolStats": "stats",
		"lockbox":   "synchronized",
		"seedTable": "immutable-after-init",
		"registry":  "shared-mutable",
		"limit":     "shared-mutable",
	}
	if len(vars) != len(want) {
		t.Errorf("inventory has %d vars, want %d: %v", len(vars), len(want), vars)
	}
	for name, class := range want {
		v, ok := vars[name]
		if !ok {
			t.Errorf("var %s missing from inventory", name)
			continue
		}
		if v.Class != class {
			t.Errorf("%s classified %s, want %s", name, v.Class, class)
		}
	}
}

func TestWriteSites(t *testing.T) {
	vars := load(t)
	cases := map[string][]string{
		"entryFree": {"alloc", "free"}, // method calls via pointer receiver
		"PoolStats": {"alloc"},         // field IncDec
		"lockbox":   {"touchLock"},     // pointer-receiver method call
		"seedTable": nil,               // init-only
		"registry":  {"register"},      // assignment + element store
		"limit":     {"setLimit"},      // address escape
	}
	for name, writers := range cases {
		got := vars[name].Writers
		if strings.Join(got, ",") != strings.Join(writers, ",") {
			t.Errorf("%s writers = %v, want %v", name, got, writers)
		}
	}
}

func TestReportDeterministic(t *testing.T) {
	a := load(t)
	b := load(t)
	var av, bv []Var
	for _, v := range a {
		av = append(av, v)
	}
	for _, v := range b {
		bv = append(bv, v)
	}
	ra, rb := Report(av), Report(bv)
	if ra != rb {
		t.Error("Report output differs across identical runs")
	}
	for _, frag := range []string{
		"# SHAREDSTATE", "## Summary", "## Inventory",
		"flextoe/internal/core/sstest",
		"`entryFree`", "per-shard instance",
	} {
		if !strings.Contains(ra, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

package hotclosure

import (
	"path/filepath"
	"testing"

	"flextoe/internal/analysis/flexanalysis"
)

func TestHotclosure(t *testing.T) {
	l := flexanalysis.NewLoader()
	dir := filepath.Join("testdata", "src", "hctest")
	res := flexanalysis.RunWant(t, l, Analyzer, dir, "flextoe/internal/core/hctest")

	if got := len(res.Suppressed); got != 1 {
		t.Errorf("suppressed diagnostics = %d, want 1 (//flexvet:hotclosure cold path)", got)
	}
}

// TestHotclosureExemptsEnginePackage: the sim package defines the paired
// APIs (Every is implemented via At with a rearming closure by design).
func TestHotclosureExemptsEnginePackage(t *testing.T) {
	l := flexanalysis.NewLoader()
	dir := filepath.Join("testdata", "src", "hctest")
	pkg, err := l.Load(dir, "flextoe/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	results, err := flexanalysis.RunPackage(pkg, []*flexanalysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(results[0].Diags); n != 0 {
		t.Errorf("engine package produced %d diagnostics, want 0", n)
	}
}

// Package hctest exercises the hotclosure pass against the real engine
// APIs. Its synthetic import path places it under flextoe/internal/core,
// so it is simulation-critical (and not the exempt sim package itself).
package hctest

import (
	"flextoe/internal/host"
	"flextoe/internal/sim"
)

type pump struct {
	eng  *sim.Engine
	fn   func()
	work func(any)
}

// closureForms allocate one closure per arming where a Call variant
// exists: every one is a hot-path regression.
func closureForms(p *pump, core *host.Core, res *sim.Resource) {
	p.eng.At(10, func() {})                     // want `closure-form Engine\.At allocates a closure per event; use AtCall`
	p.eng.After(10, func() {})                  // want `closure-form Engine\.After .*use AfterCall`
	p.eng.Immediately(func() {})                // want `closure-form Engine\.Immediately .*use ImmediatelyCall`
	p.eng.Every(0, 10, func() bool { return false }) // want `closure-form Engine\.Every .*use EveryCall`
	core.Submit(sim.TaskC(100), func() {})      // want `closure-form Core\.Submit .*use SubmitCall`
	res.Acquire(1, 0, func() {})                // want `closure-form Resource\.Acquire .*use AcquireCall`
}

// callForms are the sanctioned zero-alloc shapes.
func callForms(p *pump, core *host.Core) {
	p.eng.AtCall(10, p.work, nil)
	p.eng.AfterCall(10, p.work, nil)
	core.SubmitCall(sim.TaskC(100), p.work, nil)
}

// namedValues pass long-lived function values: one allocation at setup,
// none per arming — allowed by design.
func namedValues(p *pump) {
	p.eng.At(10, p.fn)
	p.eng.After(10, tick)
}

func tick() {}

// coldPath documents a deliberate one-shot closure with a justification.
func coldPath(p *pump) {
	//flexvet:hotclosure one-shot experiment teardown, runs once per simulation
	p.eng.At(10, func() {})
}

// plainAPI has no Call variant: a closure argument is fine.
type plainAPI struct{}

func (plainAPI) Walk(fn func()) { fn() }

func noCallVariant(w plainAPI) {
	w.Walk(func() {})
}

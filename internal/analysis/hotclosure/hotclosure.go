// Package hotclosure enforces the zero-allocation event discipline
// (doc.go "Pooling ownership", PR 3) in simulation-critical packages:
// event scheduling and task submission must not allocate a closure per
// event on the hot path.
//
// The engine and its clients expose paired APIs for exactly this reason —
// At/AtCall, After/AfterCall, Immediately/ImmediatelyCall, Every/EveryCall
// (sim.Engine), Submit/SubmitCall (host.Core, nfp.FPC), and
// Acquire/AcquireCall (sim.Resource). The closure form exists for tests
// and cold paths; the Call form carries a long-lived func(any) plus an
// argument, so arming allocates nothing.
//
// The check is shape-generic rather than a hard-coded list: any method
// call M(..., func(){...}, ...) whose receiver's method set also contains
// an M+"Call" method is flagged — passing a func literal is what forces
// the closure allocation, and the existence of the Call variant proves
// the author of the API considered the site hot. Named function values,
// method values, and cached closure fields pass (they allocate once, not
// per event). A deliberate cold-path closure may carry
// //flexvet:hotclosure <why>.
//
// The sim package itself is exempt: it defines the paired APIs and its
// closure forms are implemented in terms of each other by design.
package hotclosure

import (
	"go/ast"
	"go/types"

	"flextoe/internal/analysis/flexanalysis"
)

// Analyzer is the hotclosure pass.
var Analyzer = &flexanalysis.Analyzer{
	Name: "hotclosure",
	Doc: "flag func-literal arguments to scheduling/submission methods that " +
		"have an allocation-free *Call variant in simulation-critical packages",
	Run: run,
}

// enginePkg defines the paired APIs and is exempt from the check.
const enginePkg = "flextoe/internal/sim"

func run(pass *flexanalysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !flexanalysis.Critical(path) || path == enginePkg {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *flexanalysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return // package-qualified call or field, not a method
	}
	name := sel.Sel.Name
	if len(name) >= 4 && name[len(name)-4:] == "Call" {
		return
	}
	hasLit := false
	for _, arg := range call.Args {
		if _, ok := arg.(*ast.FuncLit); ok {
			hasLit = true
			break
		}
	}
	if !hasLit {
		return
	}
	recv := selection.Recv()
	obj, _, _ := types.LookupFieldOrMethod(recv, true, pass.Pkg, name+"Call")
	if fn, ok := obj.(*types.Func); ok && fn != nil {
		pass.Reportf(call.Pos(),
			"closure-form %s.%s allocates a closure per event; use %sCall with a long-lived func(any) and an argument (//flexvet:hotclosure <why> for deliberate cold paths)",
			typeLabel(recv), name, name)
	}
}

// typeLabel renders a receiver type compactly (base type name when named).
func typeLabel(t types.Type) string {
	if n := flexanalysis.NamedType(t); n != nil {
		return n.Obj().Name()
	}
	return t.String()
}

package experiments

import (
	"testing"

	"flextoe/internal/ctrl"
	"flextoe/internal/flowmon"
	"flextoe/internal/sim"
)

// TestFig17IncastDCTCPBeatsCCOff is the Fig. 17a acceptance gate at
// 16-way fan-in: with the control plane's DCTCP on, the leaf incast
// queue stays near K (documented bound: peak <= 1.5*K after warmup)
// while CC-off fills the shallow buffer to its cap and pays RTO-scale
// round tails; DCTCP must beat CC-off on p99 FCT and goodput, and must
// actually be reacting to CE marks.
func TestFig17IncastDCTCPBeatsCCOff(t *testing.T) {
	d := 8 * sim.Millisecond
	none := fig17IncastPoint(1, 16, ctrl.CCNone, d)
	dctcp := fig17IncastPoint(1, 16, ctrl.CCDCTCP, d)

	if dctcp.peakQ > fig17K*3/2 {
		t.Errorf("DCTCP peak leaf queue %d B exceeds 1.5*K = %d B", dctcp.peakQ, fig17K*3/2)
	}
	if none.peakQ < fig17QueueCap*9/10 {
		t.Errorf("CC-off peak leaf queue %d B never approached the %d B cap; incast not overwhelming the buffer", none.peakQ, fig17QueueCap)
	}
	if dctcp.p99us >= none.p99us {
		t.Errorf("DCTCP p99 FCT %.1f us does not beat CC-off %.1f us", dctcp.p99us, none.p99us)
	}
	if dctcp.goodputGbps <= none.goodputGbps {
		t.Errorf("DCTCP goodput %.2f G does not beat CC-off %.2f G", dctcp.goodputGbps, none.goodputGbps)
	}
	if dctcp.ecnMarks == 0 {
		t.Error("DCTCP run saw no ECN marks: the control loop had nothing to react to")
	}
	if none.retxKB == 0 {
		t.Error("CC-off run retransmitted nothing: queue cap never enforced")
	}
	if dctcp.retxKB >= none.retxKB {
		t.Errorf("DCTCP retransmitted %.1f KB, not less than CC-off %.1f KB", dctcp.retxKB, none.retxKB)
	}
}

// TestFig17ECMPBalanceWithinBound is the Fig. 17b acceptance gate: for
// >= 64 equal-size cross-rack flows, every spine carries traffic and the
// heaviest spine stays within the documented imbalance bound (max spine
// load <= 1.45x the fair share; runs are seeded, so the bound is exact).
func TestFig17ECMPBalanceWithinBound(t *testing.T) {
	for _, spines := range []int{2, 4} {
		bytes, maxOverFair, racks := fig17ECMPPoint(1, spines, 64, 20*sim.Millisecond)
		for s, b := range bytes {
			if b == 0 {
				t.Fatalf("spines=%d: spine %d carried nothing", spines, s)
			}
		}
		if maxOverFair > 1.45 {
			t.Errorf("spines=%d: max spine load %.2fx fair share exceeds the 1.45 bound", spines, maxOverFair)
		}
		// The per-rack flowmon fleets ride along: every rack observed
		// flows, and the per-spine split partitions them exactly.
		for r, rep := range racks {
			tot := rep.Totals()
			if tot.Flows == 0 {
				t.Fatalf("spines=%d: rack %d fleet saw no flows", spines, r)
			}
			var split uint64
			for _, g := range rep.GroupTotals(spines, func(f *flowmon.FlowReport) int {
				return int(f.Flow.Hash() % uint32(spines))
			}) {
				split += g.Flows
			}
			if split != tot.Flows {
				t.Errorf("spines=%d: rack %d spine splits cover %d of %d flows", spines, r, split, tot.Flows)
			}
		}
	}
}

// TestFig17OversubscribedTrunkMovesCongestion is the Fig. 17c acceptance
// gate: the same 8-way incast over a single-spine fabric must congest
// the aggregator's leaf egress when the fabric is non-blocking (200 G
// trunk ≥ 4 hosts × 40 G) and the leaf→spine uplink when the trunk is
// oversubscribed (30 G) — with the deep queue AND the CE marks DCTCP
// reacts to moving together. Measured at the pinned seed: 200 G puts
// ~107 KB ≈ K at the host port (uplink ~18 KB, zero uplink marks);
// 30 G puts ~110 KB ≈ K on the uplink (host port ~5 KB, zero host
// marks).
func TestFig17OversubscribedTrunkMovesCongestion(t *testing.T) {
	d := 8 * sim.Millisecond
	nb := fig17OversubPoint(1, 200, d)
	ov := fig17OversubPoint(1, 30, d)

	if nb.peakHostQ <= nb.peakUplinkQ {
		t.Errorf("non-blocking: host-port queue %d B not deeper than uplink %d B", nb.peakHostQ, nb.peakUplinkQ)
	}
	if nb.uplinkMarks != 0 {
		t.Errorf("non-blocking: %d CE marks at the 200 G uplink (expected none)", nb.uplinkMarks)
	}
	if nb.hostMarks == 0 {
		t.Error("non-blocking: no CE marks at the host port — incast not biting")
	}
	if ov.peakUplinkQ <= ov.peakHostQ {
		t.Errorf("oversubscribed: uplink queue %d B not deeper than host port %d B — congestion did not move", ov.peakUplinkQ, ov.peakHostQ)
	}
	if ov.uplinkMarks == 0 {
		t.Error("oversubscribed: no CE marks at the trunk — DCTCP has nothing to react to at the new bottleneck")
	}
	if ov.hostMarks != 0 {
		t.Errorf("oversubscribed: %d CE marks still at the host port", ov.hostMarks)
	}
	// DCTCP should hold the moved queue near K, same bound as Fig. 17a.
	if ov.peakUplinkQ > fig17K*3/2 {
		t.Errorf("oversubscribed: uplink peak %d B exceeds 1.5*K = %d B", ov.peakUplinkQ, fig17K*3/2)
	}

	// Determinism: the oversubscribed point is bit-identical on rerun.
	if again := fig17OversubPoint(1, 30, d); again != ov {
		t.Errorf("oversubscribed point diverged across identical runs:\n%+v\n%+v", ov, again)
	}
}

// TestFig17Determinism: the incast point (including CC-off's RTO storm,
// the regime where event order is most fragile) and the ECMP point must
// be bit-identical across reruns with the same seed.
func TestFig17Determinism(t *testing.T) {
	for _, cc := range []ctrl.CCAlgo{ctrl.CCNone, ctrl.CCDCTCP} {
		a := fig17IncastPoint(1, 16, cc, 4*sim.Millisecond)
		b := fig17IncastPoint(1, 16, cc, 4*sim.Millisecond)
		if a != b {
			t.Errorf("cc=%v: incast results diverged across identical runs:\n%+v\n%+v", cc, a, b)
		}
	}
	a1, m1, _ := fig17ECMPPoint(1, 2, 64, 10*sim.Millisecond)
	a2, m2, _ := fig17ECMPPoint(1, 2, 64, 10*sim.Millisecond)
	if m1 != m2 || len(a1) != len(a2) {
		t.Fatalf("ECMP imbalance diverged: %.4f vs %.4f", m1, m2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Errorf("spine %d bytes diverged: %d vs %d", i, a1[i], a2[i])
		}
	}
}

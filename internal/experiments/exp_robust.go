package experiments

import (
	"fmt"

	"flextoe/internal/apps"
	"flextoe/internal/core"
	"flextoe/internal/ctrl"
	"flextoe/internal/ebpf"
	"flextoe/internal/flowmon"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/scenario"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/tcpseg"
	"flextoe/internal/testbed"
	"flextoe/internal/xdp"
)

// Table2 regenerates Table 2: FlexTOE throughput with flexible
// extensions enabled, plus the connection-splicing forwarding rate.
func Table2(s Scale) []*Table {
	t := &Table{
		ID:     "Table 2",
		Title:  "Performance with flexible extensions (64B echo, saturated data-path)",
		Header: []string{"Build", "Throughput (MOps)", "vs baseline"},
		Notes:  "profiling enables all 48 tracepoints; tcpdump copies every packet; XDP programs charge their executed instructions (§5.1)",
	}
	d := s.dur(4*sim.Millisecond, 60*sim.Millisecond)

	run := func(configure func(tb *testbed.Testbed)) float64 {
		tb := testbed.New(netsim.SwitchConfig{Seed: 80},
			testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 12, Seed: 80},
			testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 16, Seed: 81},
			testbed.MachineSpec{Name: "client2", Kind: testbed.FlexTOE, Cores: 16, Seed: 82},
		)
		if configure != nil {
			configure(tb)
		}
		srv := &apps.RPCServer{ReqSize: 64}
		srv.Serve(tb.M("server").Stack, 7777)
		cl := &apps.ClosedLoopClient{ReqSize: 64, Pipeline: 8}
		cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 64)
		cl2 := &apps.ClosedLoopClient{ReqSize: 64, Pipeline: 8, Latency: stats.NewHistogram()}
		cl2.Start(tb.M("client2").Stack, tb.Addr("server", 7777), 64)
		tb.Run(d)
		return mops(cl.Completed+cl2.Completed, d)
	}

	base := run(nil)
	profiled := run(func(tb *testbed.Testbed) {
		tb.M("server").TOE.Trace().EnableAll()
	})
	dumped := run(func(tb *testbed.Testbed) {
		toe := tb.M("server").TOE
		count := 0
		toe.PacketTapCost = 300 // copy to the log ring, per packet
		toe.PacketTap = func(dir string, pkt *packet.Packet) { count++ }
	})
	xdpNull := run(func(tb *testbed.Testbed) {
		tb.M("server").TOE.AttachXDP(xdp.Null())
	})
	xdpVlan := run(func(tb *testbed.Testbed) {
		tb.M("server").TOE.AttachXDP(xdp.VLANStrip())
	})

	rel := func(v float64) string { return f2(v / base) }
	t.AddRow("Baseline FlexTOE", f2(base), "1.00")
	t.AddRow("Statistics and profiling", f2(profiled), rel(profiled))
	t.AddRow("tcpdump (no filter)", f2(dumped), rel(dumped))
	t.AddRow("XDP (null)", f2(xdpNull), rel(xdpNull))
	t.AddRow("XDP (vlan-strip)", f2(xdpVlan), rel(xdpVlan))

	// Connection splicing rate: synthetic MTU-sized frames stream through
	// a FlexTOE NIC running the Listing 1 eBPF program with installed
	// splice entries; the measured rate is the XDP_TX forward rate.
	spliceMpps := spliceRate(s)
	t.AddRow("Connection splicing (Mpps)", f2(spliceMpps), "-")
	return []*Table{t}
}

// spliceRate measures Listing 1's forwarding rate on the data-path.
func spliceRate(s Scale) float64 {
	tb := testbed.New(netsim.SwitchConfig{Seed: 85},
		testbed.MachineSpec{Name: "proxy", Kind: testbed.FlexTOE, Cores: 2, Seed: 85},
		testbed.MachineSpec{Name: "gen", Kind: testbed.FlexTOE, Cores: 2, Seed: 86},
		testbed.MachineSpec{Name: "sink", Kind: testbed.FlexTOE, Cores: 2, Seed: 87},
	)
	proxy := tb.M("proxy")
	vm := ebpf.NewVM()
	tbl := ebpf.NewSpliceTable()
	prog, err := ebpf.SpliceProgram(vm, tbl)
	if err != nil {
		panic(err)
	}
	xp, err := ebpf.LoadXDP("splice", vm, prog)
	if err != nil {
		panic(err)
	}
	proxy.TOE.AttachXDP(xp)

	gen := tb.M("gen")
	sink := tb.M("sink")
	key := ebpf.SpliceKey(uint32(gen.IP), uint32(proxy.IP), 5000, 80)
	val := ebpf.SpliceValue(sink.MAC, uint32(sink.IP), 6000, 8080, 0, 0)
	if err := tbl.Update(key, val); err != nil {
		panic(err)
	}

	// Stream MTU-sized frames from the generator NIC directly (synthetic
	// line-rate source, bypassing any host stack).
	frame := &packet.Packet{
		Eth:     packet.Ethernet{Src: gen.MAC, Dst: proxy.MAC, EtherType: packet.EtherTypeIPv4},
		IP:      packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: gen.IP, Dst: proxy.IP},
		TCP:     packet.TCP{SrcPort: 5000, DstPort: 80, Flags: packet.FlagACK | packet.FlagPSH, WScale: -1},
		Payload: make([]byte, 1448),
	}
	wire := frame.WireLen()
	gap := sim.Time(float64(wire) / netsim.GbpsToBytesPerSec(40) * 1e12)
	d := s.dur(2*sim.Millisecond, 20*sim.Millisecond)
	tb.Eng.Every(0, gap, func() bool {
		if tb.Eng.Now() >= d {
			return false
		}
		gen.Iface.Send(netsim.FramesOf(tb.Eng).NewFrame(frame, tb.Eng.Now()))
		return true
	})
	tb.Run(d + sim.Millisecond)
	return float64(proxy.TOE.XDPTx) / d.Seconds() / 1e6
}

// fig15Kinds is Figure 15a/15b's column order.
var fig15Kinds = []testbed.StackKind{testbed.Linux, testbed.Chelsio, testbed.TAS, testbed.FlexTOE}

// fig15SmallPoint runs one Figure 15a cell: 100 connections of 8-deep
// pipelined 64 B echo at the given loss rate, returning goodput (Gbps).
func fig15SmallPoint(kind testbed.StackKind, loss float64, d sim.Time) float64 {
	tb := testbed.New(netsim.SwitchConfig{LossProb: loss, Seed: 150},
		serverSpec(kind, 4, true, 150),
		testbed.MachineSpec{Name: "client", Kind: kind, Cores: 8, Seed: 151},
	)
	srv := &apps.RPCServer{ReqSize: 64}
	srv.Serve(tb.M("server").Stack, 7777)
	cl := &apps.ClosedLoopClient{ReqSize: 64, Pipeline: 8}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 100)
	tb.Run(d)
	return gbps(cl.Completed*128, d)
}

// fig15LargePoint runs one Figure 15b cell: 8 unidirectional bulk
// connections at the given loss rate, returning goodput (Gbps).
func fig15LargePoint(kind testbed.StackKind, loss float64, d sim.Time) float64 {
	tb := testbed.New(netsim.SwitchConfig{LossProb: loss, Seed: 152},
		testbed.MachineSpec{Name: "server", Kind: kind, Cores: 4, BufSize: 1 << 19, Seed: 152},
		testbed.MachineSpec{Name: "client", Kind: kind, Cores: 4, BufSize: 1 << 19, Seed: 153},
	)
	sink := &apps.BulkSink{}
	sink.Serve(tb.M("server").Stack, 9000)
	for i := 0; i < 8; i++ {
		snd := &apps.BulkSender{}
		snd.Start(tb.M("client").Stack, tb.Addr("server", 9000))
	}
	tb.Run(d)
	return gbps(sink.Received, d)
}

// fig15Cells runs the 15a and 15b sweeps (loss rate × stack kind, both
// tables) on up to workers host cores, returning goodput matrices
// indexed [rate][kind].
func fig15Cells(rates []float64, dS, dL sim.Time, workers int) (small, large [][]float64) {
	small = make([][]float64, len(rates))
	large = make([][]float64, len(rates))
	for i := range rates {
		small[i] = make([]float64, len(fig15Kinds))
		large[i] = make([]float64, len(fig15Kinds))
	}
	per := len(fig15Kinds)
	runCells(workers, 2*len(rates)*per, func(i int) {
		table, cell := i%2, i/2
		row, col := cell/per, cell%per
		if table == 0 {
			small[row][col] = fig15SmallPoint(fig15Kinds[col], rates[row], dS)
		} else {
			large[row][col] = fig15LargePoint(fig15Kinds[col], rates[row], dL)
		}
	})
	return small, large
}

// Fig15 regenerates Figure 15: throughput under injected packet loss for
// (a) small pipelined RPCs and (b) large unidirectional flows. With
// Scale.Cores > 1 the sweep cells run on a worker pool (results
// unchanged) and a final table reports the harness's wall-clock scaling.
func Fig15(s Scale) []*Table {
	rates := []float64{0, 1e-6, 1e-5, 1e-4, 1e-3, 0.02}
	if !s.Full {
		rates = []float64{0, 1e-4, 0.02}
	}

	small := &Table{
		ID:     "Figure 15a",
		Title:  "Small RPC goodput vs loss rate (Gbps, 100 conns x 8 pipelined 64B echo)",
		Header: []string{"Loss", "Linux", "Chelsio", "TAS", "FlexTOE"},
		Notes:  "FlexTOE processes ACKs on the NIC and recovers fastest (§5.3)",
	}
	large := &Table{
		ID:     "Figure 15b",
		Title:  "Large flow goodput vs loss rate (Gbps, 8 connections unidirectional)",
		Header: []string{"Loss", "Linux", "Chelsio", "TAS", "FlexTOE"},
		Notes:  "Chelsio collapses at trace loss rates (OOO discard + timeout recovery); Linux's SACK survives best among host stacks (§5.3)",
	}
	dS := s.dur(15*sim.Millisecond, 150*sim.Millisecond)
	dL := dS
	smallCells, largeCells := fig15Cells(rates, dS, dL, s.cores())
	for row, loss := range rates {
		sc := []string{fmt.Sprintf("%g%%", loss*100)}
		lc := []string{fmt.Sprintf("%g%%", loss*100)}
		for col := range fig15Kinds {
			sc = append(sc, f3(smallCells[row][col]))
			lc = append(lc, f2(largeCells[row][col]))
		}
		small.AddRow(sc...)
		large.AddRow(lc...)
	}

	// Figure 15c (reproduction extension): the FlexTOE data-path's own
	// loss recovery, go-back-N (the paper's TAS-style design) against
	// SACK-based selective retransmission from the receiver's interval
	// set, reporting goodput alongside the bytes each scheme re-sent.
	recovery := &Table{
		ID:     "Figure 15c",
		Title:  "FlexTOE loss recovery: go-back-N vs SACK (8 bulk conns, goodput and retransmitted bytes)",
		Header: []string{"Loss", "GBN Gbps", "GBN retx KB", "GBN sel KB", "GBN p99 us", "SACK Gbps", "SACK retx KB", "SACK sel KB", "SACK p99 us"},
		Notes:  "SACK blocks derive from the receiver's OOO interval set (N=4); the sender repairs only uncovered holes (RFC 2018) and falls back to go-back-N on timeout or scoreboard overflow. 'sel KB' and 'p99 us' come from a passive flowmon analyzer on the sender NIC: selective-retransmit bytes inferred from the SACK scoreboard (GBN column must stay 0) and the 99th-percentile ack RTT at the tap",
	}
	recRates := s.pick([]int{0, 10, 100}, []int{0, 1, 10, 100, 200})
	dR := s.dur(15*sim.Millisecond, 150*sim.Millisecond)
	type recCell struct{ g, retxKB, selKB, p99Us float64 }
	recRes := make([]recCell, 2*len(recRates))
	runCells(s.cores(), len(recRes), func(i int) {
		loss := float64(recRates[i/2]) / 1e4
		g, retxKB, tap := fig15RecoveryPoint(loss, i%2 == 1, dR)
		recRes[i] = recCell{
			g:      g,
			retxKB: retxKB,
			selKB:  float64(tap.Totals().RetxSelBytes) / 1024,
			p99Us:  float64(tap.RTTHist.Quantile(0.99)),
		}
	})
	for ri, lossE4 := range recRates {
		loss := float64(lossE4) / 1e4
		cells := []string{fmt.Sprintf("%g%%", loss*100)}
		for v := 0; v < 2; v++ {
			r := recRes[2*ri+v]
			cells = append(cells, f2(r.g), f1(r.retxKB), f1(r.selKB), f1(r.p99Us))
		}
		recovery.AddRow(cells...)
	}

	// Figure 15d (reproduction extension): the receiver's reassembly
	// interval set under loss — the paper's single-interval budget (N=1)
	// against the full set (N=4), with the counters that explain the
	// throughput delta: accepted/dropped OOO segments, interval
	// coalescings, the drops only the multi-interval tracker avoided, and
	// the set's mean/max occupancy.
	reasm := &Table{
		ID:     "Figure 15d",
		Title:  "Reassembly interval set under loss: N=1 vs N=4 (8 bulk conns, receiver-side counters)",
		Header: []string{"Loss", "N", "Gbps", "OOO acc", "OOO drop", "Merges", "Drops avoided", "Occ mean", "Occ max"},
		Notes:  "a single interval (Table 5 budget) discards any second hole; drops-avoided counts segments N=1 would have thrown away, forcing retransmissions (ROADMAP: N=1 vs N=4 delta under loss)",
	}
	ivCaps := []int{1, tcpseg.MaxOOOIntervals}
	type reasmCell struct {
		g   float64
		toe *core.TOE
	}
	reasmRes := make([]reasmCell, len(recRates)*len(ivCaps))
	runCells(s.cores(), len(reasmRes), func(i int) {
		loss := float64(recRates[i/len(ivCaps)]) / 1e4
		g, toe := fig15ReassemblyPoint(loss, ivCaps[i%len(ivCaps)], dR)
		reasmRes[i] = reasmCell{g, toe}
	})
	for ri, lossE4 := range recRates {
		loss := float64(lossE4) / 1e4
		for vi, ivs := range ivCaps {
			r := reasmRes[ri*len(ivCaps)+vi]
			toe := r.toe
			reasm.AddRow(fmt.Sprintf("%g%%", loss*100), fmt.Sprintf("%d", ivs),
				f2(r.g),
				fmt.Sprintf("%d", toe.OOOAccepted), fmt.Sprintf("%d", toe.OOODropped),
				fmt.Sprintf("%d", toe.OOOMerges), fmt.Sprintf("%d", toe.OOODropsAvoided),
				f2(toe.OOOOccupancy.Mean()), fmt.Sprintf("%d", toe.OOOOccupancy.MaxSeen()))
		}
	}

	// Figure 15e (reproduction extension): cross-stack recovery — a
	// FlexTOE SACK sender against the Linux personality's receiver. The
	// Linux side tracks up to 32 reassembly intervals and advertises the
	// freshest blocks on every ACK, while the FlexTOE scoreboard holds
	// only MaxOOOIntervals (4): under enough loss the sender overflows,
	// reneges (RFC 2018), and falls back to go-back-N until the episode
	// drains — the paper's bounded-state design meeting a full-featured
	// peer.
	cross := &Table{
		ID:     "Figure 15e",
		Title:  "Cross-stack recovery: FlexTOE SACK sender vs Linux receiver (8 bulk conns)",
		Header: []string{"Loss", "Gbps", "Retx KB", "SACK retx", "Reneges"},
		Notes:  "Reneges counts scoreboard overflows on the FlexTOE sender (receiver tracks 32 intervals, scoreboard holds 4); each renege discards the blocks and go-back-Ns conservatively. The receiver advertises blocks most-recent-first with RFC 2018 rotation of older holes (baseline.appendSACK); measured effect on this table is nil — the retransmit volume is RTO-epoch-dominated (TestFig15CrossStackRetxGap)",
	}
	type crossCell struct {
		g, retxKB         float64
		sackRetx, reneges uint64
	}
	crossRes := make([]crossCell, len(recRates))
	runCells(s.cores(), len(crossRes), func(i int) {
		loss := float64(recRates[i]) / 1e4
		g, retxKB, sackRetx, reneges := fig15CrossStackPoint(loss, dR)
		crossRes[i] = crossCell{g, retxKB, sackRetx, reneges}
	})
	for ri, lossE4 := range recRates {
		loss := float64(lossE4) / 1e4
		r := crossRes[ri]
		cross.AddRow(fmt.Sprintf("%g%%", loss*100), f2(r.g), f1(r.retxKB),
			fmt.Sprintf("%d", r.sackRetx), fmt.Sprintf("%d", r.reneges))
	}
	out := []*Table{small, large, recovery, reasm, cross}
	if s.cores() > 1 {
		out = append(out, scalingTable("Figure 15 (harness scaling)",
			"Fig 15a+15b sweep wall-clock vs host cores (identical results at every row)",
			s.cores(), func(c int) { fig15Cells(rates, dS, dL, c) }))
	}
	return out
}

// fig15CrossStackPoint runs 8 bulk FlexTOE→Linux flows at the given loss
// rate: the FlexTOE client sends with SACK enabled, the Linux-personality
// server receives with its 32-interval reassembly and real SACK blocks.
func fig15CrossStackPoint(loss float64, d sim.Time) (goodputGbps, retxKB float64, sackRetx, reneges uint64) {
	cfg := core.AgilioCX40Config()
	cfg.OOOIntervals = tcpseg.MaxOOOIntervals
	cfg.EnableSACK = true
	tb := testbed.New(netsim.SwitchConfig{LossProb: loss, Seed: 159},
		testbed.MachineSpec{Name: "server", Kind: testbed.Linux, Cores: 4, BufSize: 1 << 19, Seed: 159},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 4, BufSize: 1 << 19, FlexCfg: &cfg, Seed: 160},
	)
	sink := &apps.BulkSink{}
	sink.Serve(tb.M("server").Stack, 9000)
	for i := 0; i < 8; i++ {
		snd := &apps.BulkSender{}
		snd.Start(tb.M("client").Stack, tb.Addr("server", 9000))
	}
	tb.Run(d)
	toe := tb.M("client").TOE
	return gbps(sink.Received, d), float64(toe.RetxBytes) / 1024, toe.SACKRetx, toe.SACKReneges
}

// fig15ReassemblyPoint measures one FlexTOE-vs-FlexTOE bulk run with the
// given reassembly interval capacity (go-back-N recovery, so the interval
// set is the only variable), returning goodput and the receiver TOE for
// its reassembly counters.
func fig15ReassemblyPoint(loss float64, intervals int, d sim.Time) (goodputGbps float64, rx *core.TOE) {
	cfg := core.AgilioCX40Config()
	cfg.OOOIntervals = intervals
	tb := testbed.New(netsim.SwitchConfig{LossProb: loss, Seed: 157},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 4, BufSize: 1 << 19, FlexCfg: &cfg, Seed: 157},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 4, BufSize: 1 << 19, FlexCfg: &cfg, Seed: 158},
	)
	sink := &apps.BulkSink{}
	sink.Serve(tb.M("server").Stack, 9000)
	for i := 0; i < 8; i++ {
		snd := &apps.BulkSender{}
		snd.Start(tb.M("client").Stack, tb.Addr("server", 9000))
	}
	tb.Run(d)
	return gbps(sink.Received, d), tb.M("server").TOE
}

// fig15RecoveryPoint measures one FlexTOE-vs-FlexTOE bulk run at the
// given loss rate, with or without SACK, returning goodput (Gbps),
// sender-side retransmitted payload (KB) from the TOE's own counters, and
// a passive flowmon report from the sender NIC tap — the analyzer's
// wire-level view of the same run (GBN/selective retransmit split, RTT
// distribution).
//
// The point runs through the scenario builder: the spec below is the
// declarative form of the original hand-built harness (same seeds, same
// construction order), and TestFig15SACKBeatsGBNAtOnePercentLoss plus
// the determinism gates prove the numbers stayed bit-identical across
// the refactor. examples/scenarios/fig15c-loss-sweep.json is this spec
// in JSON clothing.
func fig15RecoveryPoint(loss float64, sack bool, d sim.Time) (goodputGbps, retxKB float64, tap *flowmon.Report) {
	// Identical reassembly capacity in both runs (OOOCap pins the
	// interval budget whether or not SACK widens it), so the only
	// variable is the recovery scheme.
	spec := &scenario.Spec{
		Name:       "fig15c-recovery",
		Seed:       155,
		DurationUs: int64(d / sim.Microsecond),
		Topology: scenario.Topology{
			Kind:   scenario.TopoTestbed,
			Switch: &scenario.SwitchSpec{LossProb: loss},
		},
		Machines: []scenario.Machine{
			{Name: "server", Stack: scenario.StackFlexTOE, Cores: 4, BufBytes: 1 << 19,
				SACK: sack, OOOCap: tcpseg.MaxOOOIntervals, Seed: 155},
			{Name: "client", Stack: scenario.StackFlexTOE, Cores: 4, BufBytes: 1 << 19,
				SACK: sack, OOOCap: tcpseg.MaxOOOIntervals, Seed: 156},
		},
		Workloads: []scenario.Workload{{
			Kind: scenario.KindBulk,
			Bulk: &scenario.BulkWorkload{Server: "server", Port: 9000, Clients: []string{"client"}, Conns: 8},
		}},
		Measure: scenario.Measure{Flowmon: []scenario.FlowmonAttach{{Machine: "client"}}},
	}
	built, res := mustScenario(spec)
	return res.Workloads[0].GoodputGbps, float64(res.Machines[1].RetxBytes) / 1024, built.Reports()[0]
}

// Fig16 regenerates Figure 16: the distribution of per-connection
// throughput for bulk flows at line rate (median and 1st percentile of
// the fair-share-normalized goodput, plus Jain's index).
func Fig16(s Scale) []*Table {
	t := &Table{
		ID:     "Figure 16",
		Title:  "Throughput distribution at line rate (goodput/fair-share)",
		Header: []string{"Conns", "Linux 50p", "Linux 1p", "Linux JFI", "FlexTOE 50p", "FlexTOE 1p", "FlexTOE JFI"},
		Notes:  "FlexTOE's Carousel scheduler with DCTCP holds JFI near 1.0 while Linux collapses beyond 256 connections (§5.3)",
	}
	counts := s.pick([]int{64, 256}, []int{64, 128, 256, 512, 1024, 2048})
	d := s.dur(20*sim.Millisecond, 200*sim.Millisecond)
	for _, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, kind := range []testbed.StackKind{testbed.Linux, testbed.FlexTOE} {
			med, p1, jfi := fig16Point(kind, n, d)
			row = append(row, f2(med), f2(p1), f2(jfi))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

func fig16Point(kind testbed.StackKind, conns int, d sim.Time) (med, p1, jfi float64) {
	buf := uint32(1 << 17)
	tb := testbed.New(netsim.SwitchConfig{
		ECNThresholdBytes: 90_000,
		QueueCapBytes:     700_000,
		Seed:              160,
	},
		testbed.MachineSpec{Name: "server", Kind: kind, Cores: 8, BufSize: buf, CC: ctrl.CCDCTCP, Seed: 160},
		testbed.MachineSpec{Name: "client", Kind: kind, Cores: 8, BufSize: buf, CC: ctrl.CCDCTCP, Seed: 161},
	)
	sink := apps.NewPerConnBulkSink()
	sink.Serve(tb.M("server").Stack, 9000)
	for i := 0; i < conns; i++ {
		snd := &apps.BulkSender{}
		snd.Start(tb.M("client").Stack, tb.Addr("server", 9000))
	}
	// Warm up, then measure.
	warm := d / 4
	tb.Run(warm)
	sink.ResetCounts()
	tb.Run(warm + d)
	shares := sink.Shares()
	if len(shares) == 0 {
		return 0, 0, 1
	}
	fair := stats.Mean(shares)
	norm := make([]float64, len(shares))
	for i, v := range shares {
		if fair > 0 {
			norm[i] = v / fair
		}
	}
	return stats.PercentileOf(norm, 50), stats.PercentileOf(norm, 1), stats.JainFairness(shares)
}

// Table4 regenerates Table 4: incast with control-plane congestion
// control on and off.
func Table4(s Scale) []*Table {
	t := &Table{
		ID:     "Table 4",
		Title:  "FlexTOE congestion control under incast (64KB responses)",
		Header: []string{"deg.", "#con.", "Tpt on (G)", "Tpt off (G)", "99.99p on (ms)", "99.99p off (ms)", "JFI on", "JFI off"},
		Notes:  "shaped egress port + WRED tail drops; disabling the control plane's DCTCP inflates the tail and skews fairness (§5.3)",
	}
	cases := []struct{ degree, conns int }{{4, 16}, {4, 64}, {10, 10}}
	if s.Full {
		cases = []struct{ degree, conns int }{{4, 16}, {4, 64}, {4, 128}, {10, 10}, {20, 20}}
	}
	d := s.dur(30*sim.Millisecond, 250*sim.Millisecond)
	for _, c := range cases {
		on := incastPoint(c.degree, c.conns, true, d)
		off := incastPoint(c.degree, c.conns, false, d)
		t.AddRow(fmt.Sprintf("%d", c.degree), fmt.Sprintf("%d", c.conns),
			f2(on.gbps), f2(off.gbps),
			f2(on.tailMs), f2(off.tailMs),
			f2(on.jfi), f2(off.jfi))
	}
	return []*Table{t}
}

type incastResult struct {
	gbps   float64
	tailMs float64
	jfi    float64
}

// incastPoint: clients request 64 KB responses over conns connections
// into a port shaped to lineRate/degree with WRED.
func incastPoint(degree, conns int, ccOn bool, d sim.Time) incastResult {
	cc := ctrl.CCNone
	if ccOn {
		cc = ctrl.CCDCTCP
	}
	tb := testbed.New(netsim.SwitchConfig{
		ECNThresholdBytes: 90_000,
		WREDMinBytes:      250_000,
		WREDMaxBytes:      500_000,
		WREDMaxProb:       0.4,
		Seed:              170,
	},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 8, BufSize: 1 << 18, CC: cc, Seed: 170},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 8, BufSize: 1 << 18, CC: cc, Seed: 171},
	)
	// Shape the client-facing port to emulate the incast degree.
	tb.Net.ShapePort("client", netsim.GbpsToBytesPerSec(40)/float64(degree))

	srv := &apps.RPCServer{ReqSize: 32, RespSize: 65536}
	srv.Serve(tb.M("server").Stack, 7777)
	cl := &apps.ClosedLoopClient{ReqSize: 32, RespSize: 65536, WarmupOps: uint64(conns)}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), conns)
	tb.Run(d)

	// Per-connection fairness from completed ops spread: approximate via
	// latency-weighted completion counts; with a shared histogram we use
	// the server-side per-conn byte counters instead.
	res := incastResult{
		gbps:   gbps(cl.Completed*65536, d),
		tailMs: usOf(cl.Latency.Percentile(99.99)) / 1000,
	}
	// JFI over per-connection completions.
	res.jfi = cl.ConnJFI()
	return res
}

package experiments

import (
	"encoding/binary"
	"testing"

	"flextoe/internal/api"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

// Churn under loss is where slot reuse can silently corrupt data: a
// retransmitted or reordered segment from a dead connection that lands
// on a reclaimed slot would splice the old flow's bytes into the new
// flow's stream. The post-close linger (4*MinRTO before reclamation)
// exists to make that impossible. This gate drives dial/close waves
// through a Fig 15-style lossy switch where every connection carries a
// unique 8-byte tag that the server echoes back, and asserts the echoed
// bytes always match — any linger violation shows up as a tag mismatch.

// churnLossResult captures everything a lossy churn run observably
// produces; runs are compared with != for the determinism gate.
type churnLossResult struct {
	dials      int
	echoes     int
	mismatches int
	tracked    int    // live connections after the linger drain
	stateBytes [2]int // NIC connection state after each churn half
	retxSegs   uint64 // server retransmissions (proves loss was live)
}

// tagFor derives connection i's unique 8-byte tag.
func tagFor(i int) [8]byte {
	var tag [8]byte
	binary.BigEndian.PutUint64(tag[:], 0xc0ffee0000000000^uint64(i)*0x9e3779b97f4a7c15)
	return tag
}

// churnLossRun runs two halves of tagged dial/close waves under the
// given loss probability, draining lingers after each half so the second
// half must reuse the slots the first half freed.
func churnLossRun(seed uint64, lossProb float64, waves, perWave int) churnLossResult {
	tb := testbed.New(netsim.SwitchConfig{Seed: seed, LossProb: lossProb},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 4, BufSize: 4096, Seed: seed},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 4, BufSize: 4096, Seed: seed + 1},
	)
	srv := tb.M("server")
	var r churnLossResult

	// Echo server: send back whatever arrives, close once a full tag has
	// been echoed (the client closes after verifying, so both directions
	// finish and the slot enters its linger).
	srv.Stack.Listen(9191, func(sock api.Socket) {
		echoed := 0
		var buf [8]byte
		sock.OnReadable(func() {
			for {
				n := sock.Recv(buf[:])
				if n == 0 {
					return
				}
				sock.Send(buf[:n])
				echoed += n
				if echoed >= 8 {
					sock.Close()
					return
				}
			}
		})
	})

	cl := tb.M("client").Stack
	addr := tb.Addr("server", 9191)
	conn := 0
	dialWave := func(count int) {
		for i := 0; i < count; i++ {
			tag := tagFor(conn)
			conn++
			r.dials++
			cl.Dial(addr, func(sock api.Socket) {
				sock.Send(tag[:])
				got := 0
				var buf [8]byte
				sock.OnReadable(func() {
					for got < 8 {
						n := sock.Recv(buf[got:])
						if n == 0 {
							return
						}
						for k := 0; k < n; k++ {
							if buf[got+k] != tag[got+k] {
								r.mismatches++
							}
						}
						got += n
					}
					r.echoes++
					sock.Close()
				})
			})
		}
	}

	half := func(w int) {
		for i := 0; i < w; i++ {
			dialWave(perWave)
			tb.Run(tb.Eng.Now() + sim.Millisecond)
		}
		// Loss can delay handshakes and teardowns into RTO territory;
		// give every straggler time to finish and every slot its linger.
		tb.Run(tb.Eng.Now() + 60*sim.Millisecond)
	}
	half(waves / 2)
	r.stateBytes[0] = srv.TOE.ConnStateBytes()
	half(waves - waves/2)
	r.stateBytes[1] = srv.TOE.ConnStateBytes()
	r.tracked = srv.Ctrl.NumTracked()
	r.retxSegs = srv.TOE.RetxSegs + tb.M("client").TOE.RetxSegs
	return r
}

// TestChurnUnderLossKeepsTagsIntact is the churn x loss gate: Fig 15's
// 1% loss rate over dial/close waves, where the second half of the churn
// reuses slots the first half freed. Zero tag mismatches means no
// segment ever landed on a reused slot; flat state bytes across the
// halves proves the reuse actually happened.
func TestChurnUnderLossKeepsTagsIntact(t *testing.T) {
	r := churnLossRun(151, 0.01, 20, 8)
	if r.mismatches != 0 {
		t.Errorf("%d echoed bytes did not match their connection's tag: a segment landed on a reused slot", r.mismatches)
	}
	// Loss eats some SYNs and FINs; most — not all — connections must
	// still complete the full tag round trip. Never assert
	// echoes == dials under loss.
	if r.echoes < r.dials/2 {
		t.Errorf("only %d of %d dials completed the echo round trip", r.echoes, r.dials)
	}
	if r.retxSegs == 0 {
		t.Errorf("no retransmissions at 1%% loss: the lossy path was not exercised")
	}
	if r.stateBytes[1] > r.stateBytes[0] {
		t.Errorf("connection state grew across churn halves: %d -> %d bytes (slots not reused)",
			r.stateBytes[0], r.stateBytes[1])
	}
	if r.tracked != 0 {
		t.Errorf("%d connections still tracked after the linger drain", r.tracked)
	}
}

// TestChurnUnderLossIsDeterministic reruns the same seeded lossy churn
// and requires bit-identical observable results — loss, retransmission,
// linger, and slot-reuse timing all inside the determinism contract.
func TestChurnUnderLossIsDeterministic(t *testing.T) {
	a := churnLossRun(151, 0.01, 10, 8)
	b := churnLossRun(151, 0.01, 10, 8)
	if a != b {
		t.Errorf("same-seed lossy churn diverged:\n  run A %+v\n  run B %+v", a, b)
	}
}

package experiments

import (
	"fmt"

	"flextoe/internal/apps"
	"flextoe/internal/baseline"
	"flextoe/internal/host"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/tcpseg"
	"flextoe/internal/testbed"
)

// memcachedRun executes the §2.1 workload: single-threaded memcached with
// 32 B keys/values driven to saturation, returning completed ops and the
// cycles the server spent.
type memcachedResult struct {
	ops       uint64
	appCycles uint64 // on application cores
	allCycles uint64 // app + dedicated stack cores
	dur       sim.Time
	latency   *stats.Histogram
}

func memcachedRun(kind testbed.StackKind, serverCores int, clientConns int, d sim.Time, seed uint64) memcachedResult {
	tb := testbed.New(netsim.SwitchConfig{Seed: seed},
		serverSpec(kind, serverCores, true, seed),
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 16, Seed: seed + 1},
		testbed.MachineSpec{Name: "client2", Kind: testbed.FlexTOE, Cores: 16, Seed: seed + 2},
	)
	kv := &apps.KVServer{AppCycles: 890, ValueLen: 32}
	kv.Serve(tb.M("server").Stack, 11211)
	// Each client machine records into its own histogram (the two clients
	// live on different shards); the merge below is the readout.
	cl := &apps.KVClient{KeyLen: 32, ValLen: 32, SetRatio: 0.1, Pipeline: 2, Seed: seed}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 11211), clientConns/2)
	cl2 := &apps.KVClient{KeyLen: 32, ValLen: 32, SetRatio: 0.1, Pipeline: 2, Seed: seed + 7}
	cl2.Start(tb.M("client2").Stack, tb.Addr("server", 11211), clientConns/2)
	tb.Run(d)
	lat := stats.NewHistogram()
	lat.Merge(cl.Latency)
	lat.Merge(cl2.Latency)

	var app, all uint64
	srv := tb.M("server")
	for _, c := range srv.Stack.Machine().Cores {
		app += c.Instructions
	}
	all = app
	if srv.Base != nil {
		// TAS dedicated fast-path cores are part of the per-request
		// budget.
		all += srv.Base.FastPathInstructions()
	}
	return memcachedResult{
		ops:       cl.Completed + cl2.Completed,
		appCycles: app,
		allCycles: all,
		dur:       d,
		latency:   lat,
	}
}

// table1Profile returns the per-request component decomposition and
// microarchitectural profile for a stack. Components scale so that their
// sum matches the measured per-request cycles; the stall shares and
// icache footprints are the paper's measured inputs (they parameterize
// the host model).
type archProfile struct {
	driver, tcp, sockets, app, other     float64 // fractions of total
	retiring, frontend, backend, badspec float64
	icacheKB                             float64
	instrPerCycle                        float64
}

func archProfileOf(kind testbed.StackKind) archProfile {
	switch kind {
	case testbed.Linux:
		return archProfile{0.71 / 12.13, 4.25 / 12.13, 2.48 / 12.13, 1.26 / 12.13, 3.42 / 12.13,
			0.38, 0.29, 0.28, 0.05, 47.50, 1.33}
	case testbed.Chelsio:
		return archProfile{1.28 / 8.89, 0.40 / 8.89, 2.61 / 8.89, 1.31 / 8.89, 3.28 / 8.89,
			0.27, 0.17, 0.53, 0.03, 73.43, 0.92}
	case testbed.TAS:
		return archProfile{0.18 / 3.34, 1.44 / 3.34, 0.79 / 3.34, 0.85 / 3.34, 0.09 / 3.34,
			0.48, 0.13, 0.36, 0.04, 39.75, 1.85}
	default: // FlexTOE
		return archProfile{0, 0, 0.74 / 1.67, 0.89 / 1.67, 0.04 / 1.67,
			0.46, 0.21, 0.27, 0.06, 19.00, 1.75}
	}
}

// Table1 regenerates Table 1: per-request CPU impact of TCP processing
// for single-threaded memcached on each stack.
func Table1(s Scale) []*Table {
	t := &Table{
		ID:     "Table 1",
		Title:  "Per-request CPU impact of TCP processing (single-threaded memcached, 32B keys/values)",
		Header: []string{"Module", "Linux", "Chelsio", "TAS", "FlexTOE"},
		Notes:  "kc = kilocycles/request, measured on the simulated host; component split and top-down shares are the stacks' calibrated profiles",
	}
	d := s.dur(25*sim.Millisecond, 200*sim.Millisecond)
	kinds := []testbed.StackKind{testbed.Linux, testbed.Chelsio, testbed.TAS, testbed.FlexTOE}
	total := map[testbed.StackKind]float64{}
	for i, kind := range kinds {
		res := memcachedRun(kind, 1, 16, d, uint64(100+i))
		if res.ops > 0 {
			total[kind] = float64(res.allCycles) / float64(res.ops) / 1000
		}
	}
	row := func(name string, get func(p archProfile, tot float64) float64) {
		cells := []string{name}
		for _, k := range kinds {
			cells = append(cells, f2(get(archProfileOf(k), total[k])))
		}
		t.AddRow(cells...)
	}
	row("NIC driver (kc)", func(p archProfile, tot float64) float64 { return p.driver * tot })
	row("TCP/IP stack (kc)", func(p archProfile, tot float64) float64 { return p.tcp * tot })
	row("POSIX sockets (kc)", func(p archProfile, tot float64) float64 { return p.sockets * tot })
	row("Application (kc)", func(p archProfile, tot float64) float64 { return p.app * tot })
	row("Other (kc)", func(p archProfile, tot float64) float64 { return p.other * tot })
	row("Total (kc)", func(p archProfile, tot float64) float64 { return tot })
	row("Retiring (kc)", func(p archProfile, tot float64) float64 { return p.retiring * tot })
	row("Frontend bound (kc)", func(p archProfile, tot float64) float64 { return p.frontend * tot })
	row("Backend bound (kc)", func(p archProfile, tot float64) float64 { return p.backend * tot })
	row("Bad speculation (kc)", func(p archProfile, tot float64) float64 { return p.badspec * tot })
	row("Instructions (k)", func(p archProfile, tot float64) float64 { return p.instrPerCycle * tot })
	row("IPC", func(p archProfile, tot float64) float64 { return p.instrPerCycle })
	row("Icache (KB)", func(p archProfile, tot float64) float64 { return p.icacheKB })
	return []*Table{t}
}

// Table6 regenerates Table 6: the TAS per-packet TCP/IP phase breakdown
// for the same memcached workload.
func Table6(s Scale) []*Table {
	t := &Table{
		ID:     "Table 6",
		Title:  "Breakdown of TCP/IP stack overheads in TAS (per packet)",
		Header: []string{"Function", "Cycles", "%"},
		Notes:  "total measured on the TAS fast-path core; phase split follows the TAS architecture's measured shares",
	}
	d := s.dur(25*sim.Millisecond, 200*sim.Millisecond)
	tb := testbed.New(netsim.SwitchConfig{Seed: 61},
		serverSpec(testbed.TAS, 1, true, 61),
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 16, Seed: 62},
	)
	kv := &apps.KVServer{AppCycles: 890, ValueLen: 32}
	kv.Serve(tb.M("server").Stack, 11211)
	cl := &apps.KVClient{KeyLen: 32, ValLen: 32, SetRatio: 0.1, Pipeline: 2, Seed: 63}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 11211), 16)
	tb.Run(d)
	srv := tb.M("server").Base
	segs := srv.RxSegs + srv.TxSegs
	perPkt := 0.0
	if segs > 0 {
		perPkt = float64(srv.FastPathInstructions()) / float64(segs)
	}
	phases := []struct {
		name string
		frac float64
	}{
		{"Segment generation", 0.09},
		{"Loss detection (and recovery)", 0.42},
		{"Payload transfer", 0.01},
		{"Application notification", 0.26},
		{"Flow scheduling", 0.12},
		{"Miscellaneous", 0.10},
	}
	for _, ph := range phases {
		t.AddRow(ph.name, fmt.Sprintf("%.0f", ph.frac*perPkt), fmt.Sprintf("%.0f", ph.frac*100))
	}
	t.AddRow("Total", fmt.Sprintf("%.0f", perPkt), "100")
	return []*Table{t}
}

// fig8Kinds is Figure 8's column order.
var fig8Kinds = []testbed.StackKind{testbed.Linux, testbed.Chelsio, testbed.TAS, testbed.FlexTOE}

// fig8Cells runs the (server cores × stack kind) sweep on up to workers
// host cores and returns MOps per cell, indexed [row][column].
func fig8Cells(cores []int, d sim.Time, workers int) [][]float64 {
	out := make([][]float64, len(cores))
	for i := range out {
		out[i] = make([]float64, len(fig8Kinds))
	}
	runCells(workers, len(cores)*len(fig8Kinds), func(i int) {
		row, col := i/len(fig8Kinds), i%len(fig8Kinds)
		n := cores[row]
		res := memcachedRun(fig8Kinds[col], n, 64, d, uint64(200+n))
		out[row][col] = mops(res.ops, d)
	})
	return out
}

// Fig8 regenerates Figure 8: memcached throughput scaling with server
// cores for all four stacks. With Scale.Cores > 1 the sweep cells run on
// a worker pool and a second table reports the harness's own wall-clock
// scaling across host core counts.
func Fig8(s Scale) []*Table {
	t := &Table{
		ID:     "Figure 8",
		Title:  "Memcached throughput scalability (MOps vs server cores)",
		Header: []string{"Cores", "Linux", "Chelsio", "TAS", "FlexTOE"},
		Notes:  "TAS spends part of the core budget on its fast path; the Agilio CX becomes the FlexTOE bottleneck at high core counts (§5.1)",
	}
	cores := s.pick([]int{2, 4, 8, 16}, []int{2, 4, 6, 8, 10, 12, 14, 16})
	d := s.dur(15*sim.Millisecond, 100*sim.Millisecond)
	for row, vals := range fig8Cells(cores, d, s.cores()) {
		cells := []string{fmt.Sprintf("%d", cores[row])}
		for _, v := range vals {
			cells = append(cells, f2(v))
		}
		t.AddRow(cells...)
	}
	out := []*Table{t}
	if s.cores() > 1 {
		out = append(out, scalingTable("Figure 8 (harness scaling)",
			"Fig 8 sweep wall-clock vs host cores (identical results at every row)",
			s.cores(), func(c int) { fig8Cells(cores, d, c) }))
	}
	return out
}

// Fig9 regenerates Figure 9: memcached operation latency for every
// server-stack x client-stack combination.
func Fig9(s Scale) []*Table {
	t := &Table{
		ID:     "Figure 9",
		Title:  "Latency CDF summary per server/client stack combination (us)",
		Header: []string{"Server", "Client", "p25", "p50", "p90", "p99"},
		Notes:  "percentile summary of each combination's latency CDF; FlexTOE servers give the lowest median and tail for every client (§5.1)",
	}
	d := s.dur(15*sim.Millisecond, 150*sim.Millisecond)
	for _, server := range testbed.AllStacks {
		for _, client := range testbed.AllStacks {
			tb := testbed.New(netsim.SwitchConfig{Seed: 91},
				serverSpec(server, 1, true, 91),
				testbed.MachineSpec{Name: "client", Kind: client, Cores: 4, Seed: 92},
			)
			kv := &apps.KVServer{AppCycles: 890, ValueLen: 32}
			kv.Serve(tb.M("server").Stack, 11211)
			cl := &apps.KVClient{KeyLen: 32, ValLen: 32, SetRatio: 0.1, Seed: 93}
			cl.Start(tb.M("client").Stack, tb.Addr("server", 11211), 4)
			tb.Run(d)
			h := cl.Latency
			t.AddRow(string(server), string(client),
				f1(usOf(h.Percentile(25))), f1(usOf(h.Percentile(50))),
				f1(usOf(h.Percentile(90))), f1(usOf(h.Percentile(99))))
		}
	}
	return []*Table{t}
}

// Table5 verifies the connection-state partitioning (Table 5): the
// per-stage packed sizes of the state the data-path keeps per connection.
func Table5(Scale) []*Table {
	t := &Table{
		ID:     "Table 5",
		Title:  "Connection state partitions",
		Header: []string{"Partition", "Bytes"},
		Notes:  "paper reports 108 B from raw bit widths; byte-aligned packing gives 109",
	}
	var pre tcpseg.PreState
	var proto tcpseg.ProtoState
	var post tcpseg.PostState
	t.AddRow("Pre-processor (connection identification)", fmt.Sprintf("%d", len(pre.MarshalTable5())))
	t.AddRow("Protocol (TCP state machine)", fmt.Sprintf("%d", len(proto.MarshalTable5())))
	t.AddRow("Post-processor (ctx queue, congestion control)", fmt.Sprintf("%d", len(post.MarshalTable5())))
	t.AddRow("Total", fmt.Sprintf("%d", tcpseg.TotalTable5Bytes))
	// The multi-interval reassembly extension (Config.OOOIntervals > 1)
	// costs 8 B per extra interval actually in use, on top of the paper's
	// budget. Shown at full occupancy for the maximum configuration.
	proto.OOOCap = tcpseg.MaxOOOIntervals
	proto.OOOCnt = tcpseg.MaxOOOIntervals
	for i := range proto.OOO {
		proto.OOO[i] = tcpseg.SeqInterval{Start: uint32(100 * i), End: uint32(100*i + 50)}
	}
	t.AddRow(fmt.Sprintf("OOO extension (N=%d, full)", tcpseg.MaxOOOIntervals),
		fmt.Sprintf("+%d", len(proto.MarshalOOOExtension())))
	// The SACK scoreboard (Config.EnableSACK) likewise costs 8 B per
	// peer-held interval actually tracked, only while loss is
	// outstanding. Shown at full occupancy.
	proto.SACKCnt = tcpseg.MaxOOOIntervals
	for i := range proto.SACKScore {
		proto.SACKScore[i] = tcpseg.SeqInterval{Start: uint32(100 * i), End: uint32(100*i + 50)}
	}
	t.AddRow(fmt.Sprintf("SACK scoreboard (cap %d, full)", tcpseg.MaxOOOIntervals),
		fmt.Sprintf("+%d", len(proto.MarshalSACKExtension())))
	return []*Table{t}
}

var _ = baseline.Profile{}
var _ = host.Counters{}

package experiments

import (
	"fmt"

	"flextoe/internal/apps"
	"flextoe/internal/core"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

// Fig10 regenerates Figure 10: RX and TX RPC throughput for a saturated
// single-application-core server at 250 and 1,000 cycles per message.
func Fig10(s Scale) []*Table {
	t := &Table{
		ID:     "Figure 10",
		Title:  "RPC throughput for saturated server (Gbps of the sized direction)",
		Header: []string{"Dir", "Cycles", "Size", "Linux", "Chelsio", "TAS", "FlexTOE"},
		Notes:  "single-threaded server, 128 connections from pipelined clients; TAS runs its fast path on additional cores, as in the paper",
	}
	sizes := s.pick([]int{32, 512, 2048}, []int{32, 128, 512, 2048})
	d := s.dur(10*sim.Millisecond, 80*sim.Millisecond)
	for _, dir := range []string{"RX", "TX"} {
		for _, cycles := range []int64{250, 1000} {
			for _, size := range sizes {
				cells := []string{dir, fmt.Sprintf("%d", cycles), fmt.Sprintf("%d", size)}
				for _, kind := range []testbed.StackKind{testbed.Linux, testbed.Chelsio, testbed.TAS, testbed.FlexTOE} {
					cells = append(cells, f2(fig10Point(kind, dir, cycles, size, d)))
				}
				t.AddRow(cells...)
			}
		}
	}
	return []*Table{t}
}

func fig10Point(kind testbed.StackKind, dir string, cycles int64, size int, d sim.Time) float64 {
	tb := testbed.New(netsim.SwitchConfig{Seed: 10},
		serverSpec(kind, 1, true, 10),
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 16, Seed: 11},
	)
	req, resp := size, 4
	if dir == "TX" {
		req, resp = 4, size
	}
	srv := &apps.RPCServer{ReqSize: req, RespSize: resp, AppCycles: cycles}
	srv.Serve(tb.M("server").Stack, 7777)
	cl := &apps.ClosedLoopClient{ReqSize: req, RespSize: resp, Pipeline: 8}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 128)
	tb.Run(d)
	return gbps(cl.Completed*uint64(size), d)
}

// Fig11 regenerates Figure 11: single-connection RPC RTT (median, 99p,
// 99.99p) across message sizes.
func Fig11(s Scale) []*Table {
	t := &Table{
		ID:     "Figure 11",
		Title:  "RPC RTT percentiles vs message size (us)",
		Header: []string{"Size", "Stack", "p50", "p99", "p99.99"},
		Notes:  "single connection ping-pong; FlexTOE trades slightly higher median for a much smaller tail (§5.2)",
	}
	sizes := s.pick([]int{32, 256, 2048}, []int{32, 64, 128, 256, 512, 1024, 2048})
	d := s.dur(40*sim.Millisecond, 2*sim.Second)
	for _, size := range sizes {
		for _, kind := range testbed.AllStacks {
			tb := testbed.New(netsim.SwitchConfig{Seed: 20},
				serverSpec(kind, 1, true, 20),
				testbed.MachineSpec{Name: "client", Kind: kind, Cores: 2, Seed: 21},
			)
			srv := &apps.RPCServer{ReqSize: size}
			srv.Serve(tb.M("server").Stack, 7777)
			cl := &apps.ClosedLoopClient{ReqSize: size, WarmupOps: 10}
			cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 1)
			tb.Run(d)
			h := cl.Latency
			t.AddRow(fmt.Sprintf("%d", size), string(kind),
				f1(usOf(h.Percentile(50))), f1(usOf(h.Percentile(99))), f1(usOf(h.Percentile(99.99))))
		}
	}
	return []*Table{t}
}

// Fig12 regenerates Figure 12: single-connection goodput for large RPCs,
// unidirectional (32 B response) and bidirectional (echo).
func Fig12(s Scale) []*Table {
	t := &Table{
		ID:     "Figure 12",
		Title:  "Large RPC goodput, single connection (Gbps)",
		Header: []string{"Mode", "Size", "Linux", "Chelsio", "TAS", "FlexTOE"},
		Notes:  "Chelsio's 100G NIC leads unidirectional streaming; FlexTOE leads the echo case where per-connection parallelism matters (§5.2). TAS is unstable beyond 2M bidirectional in the paper.",
	}
	sizes := s.pick([]int{131072, 2097152}, []int{131072, 524288, 2097152, 8388608})
	d := s.dur(20*sim.Millisecond, 150*sim.Millisecond)
	for _, mode := range []string{"unidirectional", "bidirectional"} {
		for _, size := range sizes {
			cells := []string{mode, fmt.Sprintf("%d", size)}
			for _, kind := range []testbed.StackKind{testbed.Linux, testbed.Chelsio, testbed.TAS, testbed.FlexTOE} {
				cells = append(cells, f2(fig12Point(kind, mode, size, d)))
			}
			t.AddRow(cells...)
		}
	}
	return []*Table{t}
}

func fig12Point(kind testbed.StackKind, mode string, size int, d sim.Time) float64 {
	buf := uint32(1 << 20)
	tb := testbed.New(netsim.SwitchConfig{Seed: 30},
		testbed.MachineSpec{Name: "server", Kind: kind, Cores: 4, BufSize: buf, Seed: 30},
		testbed.MachineSpec{Name: "client", Kind: kind, Cores: 4, BufSize: buf, Seed: 31},
	)
	resp := 32
	if mode == "bidirectional" {
		resp = size
	}
	sink := &apps.BulkSink{ChunkBytes: size, RespBytes: resp}
	sink.Serve(tb.M("server").Stack, 9000)
	snd := &apps.BulkSender{}
	snd.Start(tb.M("client").Stack, tb.Addr("server", 9000))
	tb.Run(d)
	return gbps(sink.Received, d)
}

// Fig13 regenerates Figure 13: throughput vs number of connections, 64 B
// echo with one RPC in flight per connection.
func Fig13(s Scale) []*Table {
	t := &Table{
		ID:     "Figure 13",
		Title:  "Connection scalability (MOps vs established connections)",
		Header: []string{"Connections", "Linux", "Chelsio", "TAS", "FlexTOE"},
		Notes:  "single 64B RPC in flight per connection; FlexTOE's knee comes from the CLS/EMEM cache hierarchy (§5.2, §4.1)",
	}
	counts := s.pick([]int{512, 2048, 4096}, []int{2048, 4096, 8192, 12288, 16384})
	d := s.dur(8*sim.Millisecond, 50*sim.Millisecond)
	for _, n := range counts {
		cells := []string{fmt.Sprintf("%d", n)}
		for _, kind := range []testbed.StackKind{testbed.Linux, testbed.Chelsio, testbed.TAS, testbed.FlexTOE} {
			tb := testbed.New(netsim.SwitchConfig{Seed: 40},
				serverSpec(kind, 8, true, 40),
				testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 16, BufSize: 2048, Seed: 41},
				testbed.MachineSpec{Name: "client2", Kind: testbed.FlexTOE, Cores: 16, BufSize: 2048, Seed: 42},
			)
			tb.M("server").Spec.BufSize = 2048
			srv := &apps.RPCServer{ReqSize: 64}
			srv.Serve(tb.M("server").Stack, 7777)
			cl := &apps.ClosedLoopClient{ReqSize: 64}
			cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), n/2)
			cl2 := &apps.ClosedLoopClient{ReqSize: 64}
			cl2.Start(tb.M("client2").Stack, tb.Addr("server", 7777), n/2)
			tb.Run(d)
			cells = append(cells, f2(mops(cl.Completed+cl2.Completed, d)))
		}
		t.AddRow(cells...)
	}
	return []*Table{t}
}

// Table3 regenerates Table 3: the data-path parallelism ablation on a
// 64-connection 2 KB echo workload.
func Table3(s Scale) []*Table {
	t := &Table{
		ID:     "Table 3",
		Title:  "FlexTOE data-path parallelism breakdown (2KB echo, 64 connections)",
		Header: []string{"Design", "Tput (Mbps)", "x", "p50 (us)", "p99.99 (us)"},
		Notes:  "each level of parallelism is necessary (§5.2): pipelining, intra-FPC threads, pre/post replication, flow-group islands",
	}
	d := s.dur(15*sim.Millisecond, 100*sim.Millisecond)

	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"Baseline", func() core.Config {
			c := core.AgilioCX40Config()
			c.RunToCompletion = true
			c.ThreadsPerFPC = 1
			return c
		}()},
		{"+ Pipelining", func() core.Config {
			c := core.AgilioCX40Config()
			c.FlowGroups = 1
			c.PreRepl, c.ProtoRepl, c.PostRepl = 1, 1, 1
			c.DMARepl, c.CtxRepl = 1, 1
			c.ThreadsPerFPC = 1
			return c
		}()},
		{"+ Intra-FPC parallelism", func() core.Config {
			c := core.AgilioCX40Config()
			c.FlowGroups = 1
			c.PreRepl, c.ProtoRepl, c.PostRepl = 1, 1, 1
			c.DMARepl, c.CtxRepl = 2, 1
			return c // 8 threads
		}()},
		{"+ Replicated pre/post", func() core.Config {
			c := core.AgilioCX40Config()
			c.FlowGroups = 1
			c.PreRepl, c.ProtoRepl, c.PostRepl = 2, 1, 2
			c.DMARepl, c.CtxRepl = 2, 1
			return c
		}()},
		{"+ Flow-group islands", core.AgilioCX40Config()},
	}

	var base float64
	for i, c := range configs {
		cfg := c.cfg
		tb := testbed.New(netsim.SwitchConfig{Seed: 50},
			testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 8, FlexCfg: &cfg, Seed: 50},
			testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 16, Seed: 51},
		)
		srv := &apps.RPCServer{ReqSize: 2048}
		srv.Serve(tb.M("server").Stack, 7777)
		cl := &apps.ClosedLoopClient{ReqSize: 2048}
		cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 64)
		tb.Run(d)
		mbps := gbps(cl.Completed*2048*2, d) * 1000
		if i == 0 {
			base = mbps
		}
		speedup := 1.0
		if base > 0 {
			speedup = mbps / base
		}
		t.AddRow(c.name, f1(mbps), fmt.Sprintf("%.0f", speedup),
			f1(usOf(cl.Latency.Percentile(50))), f1(usOf(cl.Latency.Percentile(99.99))))
	}
	return []*Table{t}
}

// Fig14 regenerates Figure 14: single-connection throughput vs MSS on the
// BlueField and x86 ports, comparing TAS, TAS-nocopy, FlexTOE-scalar and
// FlexTOE (2x pre/post).
func Fig14(s Scale) []*Table {
	var out []*Table
	msss := s.pick([]int{1448, 512, 64}, []int{1448, 1024, 512, 256, 128, 64})
	d := s.dur(15*sim.Millisecond, 100*sim.Millisecond)
	for _, platform := range []string{"BlueField", "x86"} {
		t := &Table{
			ID:     "Figure 14 (" + platform + ")",
			Title:  "Single-connection RPC sink throughput vs MSS (Gbps)",
			Header: []string{"MSS", "TAS", "TAS-nocopy", "FlexTOE-scalar", "FlexTOE"},
			Notes:  "identical pipeline as the Agilio port; FlexTOE's gain is larger on the wimpier platform (§5.2, §E)",
		}
		for _, mss := range msss {
			cells := []string{fmt.Sprintf("%d", mss)}
			for _, variant := range []string{"tas", "tas-nocopy", "flex-scalar", "flex"} {
				cells = append(cells, f2(fig14Point(platform, variant, uint32(mss), d)))
			}
			t.AddRow(cells...)
		}
		out = append(out, t)
	}
	return out
}

func fig14Point(platform, variant string, mss uint32, d sim.Time) float64 {
	var hz int64 = 2_350_000_000
	if platform == "BlueField" {
		hz = 800_000_000
	}
	buf := uint32(1 << 19)
	var server testbed.MachineSpec
	switch variant {
	case "tas", "tas-nocopy":
		// Wimpy-platform TAS: the whole stack runs on the platform's
		// cores — per-segment costs stay the same in cycles but the
		// clock is slower.
		server = testbed.MachineSpec{
			Name: "server", Kind: testbed.TAS, Cores: 1, CoreHz: hz,
			StackCores: 1, BufSize: buf, Seed: 70,
		}
	default:
		cfg := core.X86Config(variant == "flex")
		if platform == "BlueField" {
			cfg = core.BlueFieldConfig(variant == "flex")
		}
		server = testbed.MachineSpec{
			Name: "server", Kind: testbed.FlexTOE, Cores: 1, CoreHz: hz,
			FlexCfg: &cfg, BufSize: buf, Seed: 70,
		}
	}
	// The client generates segments of the selected MSS toward the sink.
	clientCfg := core.AgilioCX40Config()
	clientCfg.MSS = mss
	tb := testbed.New(netsim.SwitchConfig{Seed: 71},
		server,
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 8, FlexCfg: &clientCfg, BufSize: buf, Seed: 72},
	)
	if variant == "tas-nocopy" {
		tb.M("server").Base.Profile().PerByte = 0
	}
	sink := &apps.BulkSink{}
	sink.Serve(tb.M("server").Stack, 9000)
	snd := &apps.BulkSender{}
	snd.Start(tb.M("client").Stack, tb.Addr("server", 9000))
	tb.Run(d)
	return gbps(sink.Received, d)
}

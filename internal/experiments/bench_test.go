package experiments

import (
	"testing"

	"flextoe/internal/ctrl"
	"flextoe/internal/sim"
)

// Per-core-count harness benchmarks (PR 7). Two parallelism axes:
//
//   - Fig8Sweep: cell-level — the (server cores × stack) sweep's
//     independent seeded testbeds run on a worker pool (runCells).
//   - Fig17Incast: engine-level — ONE fabric testbed sharded across
//     engines with conservative lookahead synchronization.
//
// Results are bit-identical at every core count (TestParallelMatchesSerial);
// only wall-clock changes. Speedup requires actual CPUs: on a single-CPU
// host both paths degrade to the serial loop (runCells clamps its pool to
// GOMAXPROCS, Group.RunUntil runs shards inline when GOMAXPROCS is 1) so
// the curve is flat there by design rather than slowed by barrier churn.

func benchFig8Sweep(b *testing.B, cores int) {
	rows := []int{2, 4, 8, 16}
	const d = 15 * sim.Millisecond // Quick-scale duration (see Fig8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig8Cells(rows, d, cores)
	}
}

func BenchmarkFig8SweepCores1(b *testing.B) { benchFig8Sweep(b, 1) }
func BenchmarkFig8SweepCores2(b *testing.B) { benchFig8Sweep(b, 2) }
func BenchmarkFig8SweepCores4(b *testing.B) { benchFig8Sweep(b, 4) }
func BenchmarkFig8SweepCores8(b *testing.B) { benchFig8Sweep(b, 8) }

func benchFig17Incast(b *testing.B, cores int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig17IncastPoint(cores, 16, ctrl.CCDCTCP, 4*sim.Millisecond)
	}
}

func BenchmarkFig17IncastCores1(b *testing.B) { benchFig17Incast(b, 1) }
func BenchmarkFig17IncastCores2(b *testing.B) { benchFig17Incast(b, 2) }
func BenchmarkFig17IncastCores4(b *testing.B) { benchFig17Incast(b, 4) }
func BenchmarkFig17IncastCores8(b *testing.B) { benchFig17Incast(b, 8) }

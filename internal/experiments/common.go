// Package experiments regenerates every table and figure in the paper's
// evaluation (§5, Tables 1-4 and 6, Figures 8-16): each runner builds the
// matching workload on the simulated testbed, executes it, and returns
// the same rows/series the paper reports. cmd/flexbench prints them;
// bench_test.go wraps each in a testing.B benchmark.
//
// Every runner accepts a Scale: Quick shrinks durations and sweep points
// for CI/benchmark runs; Full approaches the paper's parameters.
package experiments

import (
	"fmt"
	"strings"

	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

// Scale selects experiment fidelity.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// dur returns a simulated duration scaled to the fidelity level.
func (s Scale) dur(quick, full sim.Time) sim.Time {
	if s == Full {
		return full
	}
	return quick
}

func (s Scale) pick(quick, full []int) []int {
	if s == Full {
		return full
	}
	return quick
}

// Table is one regenerated result table/figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// f1, f2, f3 format floats at fixed precision.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// mops converts ops over a duration to millions of ops per second.
func mops(ops uint64, d sim.Time) float64 {
	return float64(ops) / d.Seconds() / 1e6
}

// gbps converts bytes over a duration to gigabits per second.
func gbps(bytes uint64, d sim.Time) float64 {
	return float64(bytes) * 8 / d.Seconds() / 1e9
}

// usOf converts picoseconds to microseconds.
func usOf(ps int64) float64 { return float64(ps) / 1e6 }

// serverSpec builds a server machine spec for a stack kind, assigning
// TAS's dedicated fast-path cores out of the core budget (the paper
// counts total server cores; "TAS runs on additional host cores" only in
// Fig. 10's single-core app scenario).
func serverSpec(kind testbed.StackKind, totalCores int, extraFastPath bool, seed uint64) testbed.MachineSpec {
	spec := testbed.MachineSpec{Name: "server", Kind: kind, Cores: totalCores, Seed: seed}
	if kind == testbed.TAS {
		fp := 1
		if totalCores >= 8 {
			fp = 2
		}
		if extraFastPath {
			// Fast path on cores outside the budget.
			spec.StackCores = fp
		} else {
			if totalCores-fp < 1 {
				fp = totalCores - 1
			}
			if fp < 1 {
				fp = 1
				spec.Cores = 1
			} else {
				spec.Cores = totalCores - fp
			}
			spec.StackCores = fp
		}
	}
	return spec
}

// Runner is a named experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(Scale) []*Table
}

// All returns every experiment runner, in the paper's order.
func All() []Runner {
	return []Runner{
		{"table1", "Per-request CPU impact of TCP processing", Table1},
		{"table2", "Performance with flexible extensions", Table2},
		{"table3", "FlexTOE data-path parallelism breakdown", Table3},
		{"table4", "FlexTOE congestion control under incast", Table4},
		{"table5", "Connection state partitioning", Table5},
		{"table6", "TAS TCP/IP processing breakdown", Table6},
		{"fig8", "Memcached throughput scalability", Fig8},
		{"fig9", "Latency of server-client stack combinations", Fig9},
		{"fig10", "RPC throughput for saturated server", Fig10},
		{"fig11", "Median and tail RPC RTT vs message size", Fig11},
		{"fig12", "Large RPC per-connection throughput", Fig12},
		{"fig13", "Connection scalability", Fig13},
		{"fig14", "Data-path parallelism on BlueField/x86", Fig14},
		{"fig15", "Throughput under packet loss", Fig15},
		{"fig16", "Connection fairness at line rate", Fig16},
		{"fig17", "Leaf-spine fabric: incast fan-in and ECMP balance", Fig17},
	}
}

// ByID returns a runner by its identifier.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

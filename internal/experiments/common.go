// Package experiments regenerates every table and figure in the paper's
// evaluation (§5, Tables 1-4 and 6, Figures 8-16): each runner builds the
// matching workload on the simulated testbed, executes it, and returns
// the same rows/series the paper reports. cmd/flexbench prints them;
// bench_test.go wraps each in a testing.B benchmark.
//
// Every runner accepts a Scale: Quick shrinks durations and sweep points
// for CI/benchmark runs; Full approaches the paper's parameters; Cores
// spreads a run over host cores (independent sweep cells on a worker
// pool, plus sharded engines inside the fabric experiments) without
// changing any result — sharded runs are bit-identical to serial ones.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flextoe/internal/scenario"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

// mustScenario builds and executes a programmatic scenario spec — the
// bridge the refactored figure runners use so their specs are proven
// equivalent to the hand-built harnesses they replaced. Experiment specs
// are authored in-repo, so any error is a bug.
func mustScenario(spec *scenario.Spec) (*scenario.Built, *scenario.Result) {
	b, err := scenario.Build(spec)
	if err != nil {
		panic("experiments: bad scenario spec: " + err.Error())
	}
	r, err := b.Execute(nil)
	if err != nil {
		panic("experiments: scenario execute: " + err.Error())
	}
	return b, r
}

// Scale selects experiment fidelity and host-core usage.
type Scale struct {
	Full  bool // paper-scale durations and sweep points
	Cores int  // host cores to spread the run over (<=1: serial)
}

// Scales. Quick shrinks durations/sweeps for CI; Full approaches the
// paper's parameters. Both run serial; set Cores for parallel execution.
var (
	Quick = Scale{}
	Full  = Scale{Full: true}
)

// dur returns a simulated duration scaled to the fidelity level.
func (s Scale) dur(quick, full sim.Time) sim.Time {
	if s.Full {
		return full
	}
	return quick
}

func (s Scale) pick(quick, full []int) []int {
	if s.Full {
		return full
	}
	return quick
}

// cores returns the worker budget (at least 1).
func (s Scale) cores() int {
	if s.Cores < 1 {
		return 1
	}
	return s.Cores
}

// runCells executes n independent experiment cells on up to workers
// goroutines. Each cell is a self-contained seeded testbed writing only
// to its own result slot, so the output is bit-identical to the serial
// loop regardless of scheduling: cross-cell state is nil by construction
// (per-engine pools, per-testbed switch RNGs), and the one package-level
// counter cells do share — netsim's interface ID allocator — is atomic
// and only the per-testbed *relative* order of IDs matters for event
// tie-breaking, which single-goroutine testbed construction preserves.
func runCells(workers, n int, cell func(i int)) {
	if workers > n {
		workers = n
	}
	// More runnable goroutines than CPUs buys nothing for CPU-bound cells
	// and interleaves their working sets; clamp to the scheduler's budget.
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			cell(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cell(i)
			}
		}()
	}
	wg.Wait()
}

// scalingCoreCounts is the per-core-count sweep reported by the scaling
// tables (clamped to the Scale's core budget).
var scalingCoreCounts = []int{1, 2, 4, 8}

// scalingTable re-runs one figure's cell set at increasing core counts
// and reports wall-clock time and speedup over the serial run. Results
// are identical at every row (the determinism contract); only the
// wall-clock changes. Host timing is deliberate here: this package is
// not simulation-critical, and the table measures the simulator itself.
func scalingTable(id, title string, maxCores int, run func(cores int)) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"Cores", "Wall (ms)", "Speedup"},
		Notes:  "same seeded cells at every core count — results are bit-identical, only wall-clock changes (doc.go \"Sharding contract\")",
	}
	var base float64
	for _, c := range scalingCoreCounts {
		if c > maxCores {
			break
		}
		start := time.Now()
		run(c)
		ms := float64(time.Since(start).Microseconds()) / 1000
		if c == 1 {
			base = ms
		}
		speedup := 0.0
		if ms > 0 {
			speedup = base / ms
		}
		t.AddRow(fmt.Sprintf("%d", c), f1(ms), f2(speedup))
	}
	return t
}

// Table is one regenerated result table/figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// f1, f2, f3 format floats at fixed precision.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// mops converts ops over a duration to millions of ops per second.
func mops(ops uint64, d sim.Time) float64 {
	return float64(ops) / d.Seconds() / 1e6
}

// gbps converts bytes over a duration to gigabits per second.
func gbps(bytes uint64, d sim.Time) float64 {
	return float64(bytes) * 8 / d.Seconds() / 1e9
}

// usOf converts picoseconds to microseconds.
func usOf(ps int64) float64 { return float64(ps) / 1e6 }

// serverSpec builds a server machine spec for a stack kind, assigning
// TAS's dedicated fast-path cores out of the core budget (the paper
// counts total server cores; "TAS runs on additional host cores" only in
// Fig. 10's single-core app scenario).
func serverSpec(kind testbed.StackKind, totalCores int, extraFastPath bool, seed uint64) testbed.MachineSpec {
	spec := testbed.MachineSpec{Name: "server", Kind: kind, Cores: totalCores, Seed: seed}
	if kind == testbed.TAS {
		fp := 1
		if totalCores >= 8 {
			fp = 2
		}
		if extraFastPath {
			// Fast path on cores outside the budget.
			spec.StackCores = fp
		} else {
			if totalCores-fp < 1 {
				fp = totalCores - 1
			}
			if fp < 1 {
				fp = 1
				spec.Cores = 1
			} else {
				spec.Cores = totalCores - fp
			}
			spec.StackCores = fp
		}
	}
	return spec
}

// Runner is a named experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(Scale) []*Table
}

// All returns every experiment runner, in the paper's order.
func All() []Runner {
	return []Runner{
		{"table1", "Per-request CPU impact of TCP processing", Table1},
		{"table2", "Performance with flexible extensions", Table2},
		{"table3", "FlexTOE data-path parallelism breakdown", Table3},
		{"table4", "FlexTOE congestion control under incast", Table4},
		{"table5", "Connection state partitioning", Table5},
		{"table6", "TAS TCP/IP processing breakdown", Table6},
		{"fig8", "Memcached throughput scalability", Fig8},
		{"fig9", "Latency of server-client stack combinations", Fig9},
		{"fig10", "RPC throughput for saturated server", Fig10},
		{"fig11", "Median and tail RPC RTT vs message size", Fig11},
		{"fig12", "Large RPC per-connection throughput", Fig12},
		{"fig13", "Connection scalability", Fig13},
		{"fig14", "Data-path parallelism on BlueField/x86", Fig14},
		{"fig15", "Throughput under packet loss", Fig15},
		{"fig16", "Connection fairness at line rate", Fig16},
		{"fig17", "Leaf-spine fabric: incast fan-in and ECMP balance", Fig17},
		{"fig9conn", "Connection scale: state, timers, and churn to 10^6 flows", Fig9Conn},
	}
}

// ByID returns a runner by its identifier.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

package experiments

import (
	"testing"

	"flextoe/internal/api"
	"flextoe/internal/apps"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

// connBudgetBytes is the per-connection NIC state gate: 2x the Table 5
// budget including the OOO and SACK extension rows (109 + 32 + 32 wire
// bytes; see doc.go "Connection state budget").
const connBudgetBytes = 2 * (109 + 32 + 32)

// TestMillionConnStateBudget installs an idle fleet at the paper's target
// scale and gates the per-connection footprint of the slab, flow index,
// and free ring against the Table 5-derived budget.
func TestMillionConnStateBudget(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	tb := testbed.New(netsim.SwitchConfig{Seed: 1},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Seed: 1})
	srv := tb.M("server")
	installIdleFleet(srv, n)
	if got := srv.TOE.NumConnections(); got != n {
		t.Fatalf("installed %d connections, tracking %d", n, got)
	}
	perConn := float64(srv.TOE.ConnStateBytes()) / float64(n)
	if perConn > connBudgetBytes {
		t.Errorf("%.1f B/conn at n=%d, budget %d", perConn, n, connBudgetBytes)
	}
	// The fleet must stay addressable: the control plane tracks every one.
	if got := srv.Ctrl.NumTracked(); got != n {
		t.Errorf("control plane tracks %d of %d", got, n)
	}
}

// trafficEvents runs a fixed RPC workload on top of idleConns idle
// connections and returns the events executed during the traffic phase
// plus the requests completed.
func trafficEvents(t *testing.T, idleConns int) (events, completed uint64) {
	t.Helper()
	tb := testbed.New(netsim.SwitchConfig{Seed: 7},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 8, Seed: 7},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 8, Seed: 8},
	)
	srv := tb.M("server")
	installIdleFleet(srv, idleConns)
	rpc := &apps.RPCServer{ReqSize: 64}
	rpc.Serve(srv.Stack, 7777)
	cl := &apps.ClosedLoopClient{ReqSize: 64}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 64)
	p0 := totalProcessed(tb)
	tb.Run(3 * sim.Millisecond)
	return totalProcessed(tb) - p0, cl.Completed
}

// TestTimerCostIdleIndependence is the perf gate for the wheel-armed
// timers: the event cost of a fixed active workload must not grow with
// the number of idle connections sharing the stack. Under the old 500 µs
// full-table scans, 100x more idle connections meant 100x more timer
// work per tick.
func TestTimerCostIdleIndependence(t *testing.T) {
	evSmall, doneSmall := trafficEvents(t, 1_000)
	evLarge, doneLarge := trafficEvents(t, 100_000)
	if doneSmall == 0 || doneLarge == 0 {
		t.Fatalf("no traffic completed: %d / %d", doneSmall, doneLarge)
	}
	if doneLarge != doneSmall {
		t.Errorf("active goodput changed with idle fleet: %d vs %d requests", doneSmall, doneLarge)
	}
	ratio := float64(evLarge) / float64(evSmall)
	if ratio > 1.15 {
		t.Errorf("100x idle connections cost %.3fx events (%d -> %d), want <= 1.15x",
			ratio, evSmall, evLarge)
	}
}

// churnResult captures everything a churn run can observably produce.
type churnResult struct {
	dials       int
	established uint64
	processed   uint64
	midBytes    int
	endBytes    int
	endTracked  int
}

// flexChurn runs dial/close churn waves against a FlexTOE pair, sampling
// connection-table bytes halfway and after the post-close drain.
func flexChurn(seed uint64, waves int) churnResult {
	tb := testbed.New(netsim.SwitchConfig{Seed: seed},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, BufSize: 4096, Seed: seed},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, BufSize: 4096, Seed: seed + 1},
	)
	srv := tb.M("server")
	srv.Stack.Listen(9090, func(sock api.Socket) { sock.Close() })
	var r churnResult
	r.dials = churnLoop(tb, "client", "server", 9090, waves/2, 16, sim.Millisecond)
	tb.Run(tb.Eng.Now() + 30*sim.Millisecond)
	r.midBytes = srv.TOE.ConnStateBytes()
	r.dials += churnLoop(tb, "client", "server", 9090, waves-waves/2, 16, sim.Millisecond)
	tb.Run(tb.Eng.Now() + 30*sim.Millisecond)
	r.established = srv.Ctrl.Established
	r.processed = totalProcessed(tb)
	r.endBytes = srv.TOE.ConnStateBytes()
	r.endTracked = srv.Ctrl.NumTracked() + tb.M("client").Ctrl.NumTracked()
	return r
}

// TestChurnSteadyStateMemory gates slot reclamation on the FlexTOE
// control plane: connection-table memory must plateau — the second half
// of the churn reuses the slots the first half freed — and every
// connection must be reclaimed once the lingers drain.
func TestChurnSteadyStateMemory(t *testing.T) {
	r := flexChurn(40, 20)
	if r.established != uint64(r.dials) {
		t.Errorf("established %d of %d dials", r.established, r.dials)
	}
	if r.endTracked != 0 {
		t.Errorf("%d connections still tracked after drain", r.endTracked)
	}
	if r.endBytes != r.midBytes {
		t.Errorf("connection state grew across churn: %d -> %d bytes (slots not reused)",
			r.midBytes, r.endBytes)
	}
}

// TestChurnSteadyStateMemoryBaseline gates the same reclamation contract
// on the slab-backed baseline stacks.
func TestChurnSteadyStateMemoryBaseline(t *testing.T) {
	tb := testbed.New(netsim.SwitchConfig{Seed: 50},
		testbed.MachineSpec{Name: "server", Kind: testbed.TAS, BufSize: 4096, Seed: 50},
		testbed.MachineSpec{Name: "client", Kind: testbed.TAS, BufSize: 4096, Seed: 51},
	)
	srv := tb.M("server")
	srv.Stack.Listen(9090, func(sock api.Socket) { sock.Close() })
	dials := churnLoop(tb, "client", "server", 9090, 10, 16, sim.Millisecond)
	tb.Run(tb.Eng.Now() + 30*sim.Millisecond)
	midBytes := srv.Base.ConnTableBytes()
	dials += churnLoop(tb, "client", "server", 9090, 10, 16, sim.Millisecond)
	tb.Run(tb.Eng.Now() + 30*sim.Millisecond)
	if dials != 320 {
		t.Fatalf("dialed %d, want 320", dials)
	}
	if n := srv.Base.NumConns() + tb.M("client").Base.NumConns(); n != 0 {
		t.Errorf("%d baseline connections still live after drain", n)
	}
	if end := srv.Base.ConnTableBytes(); end != midBytes {
		t.Errorf("baseline connection table grew across churn: %d -> %d bytes", midBytes, end)
	}
}

// TestChurnDeterminism is the determinism gate for slot reuse: the
// FIFO free list and establishment-order scan list must make a churn
// workload — including every reclaimed and reused slot — bit-identical
// across runs of the same seed.
func TestChurnDeterminism(t *testing.T) {
	a := flexChurn(60, 12)
	b := flexChurn(60, 12)
	if a != b {
		t.Errorf("same-seed churn diverged:\n  run A %+v\n  run B %+v", a, b)
	}
	c := flexChurn(61, 12)
	if c.processed == a.processed {
		t.Logf("different seeds produced identical event counts (%d); suspicious but not fatal", a.processed)
	}
}

// TestFig9ConnQuick smoke-runs the full Figure 9 connection-scale runner
// at Quick scale and checks each table's headline invariants.
func TestFig9ConnQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke is not short")
	}
	tables := Fig9Conn(Quick)
	if len(tables) != 3 {
		t.Fatalf("Fig9Conn returned %d tables, want 3", len(tables))
	}
	sweep, zipf, storm := tables[0], tables[1], tables[2]
	if len(sweep.Rows) != 3 {
		t.Fatalf("sweep has %d rows, want 3", len(sweep.Rows))
	}
	for _, row := range sweep.Rows {
		if row[3] == "0.00" {
			t.Errorf("sweep row %v: no active goodput", row)
		}
	}
	if len(zipf.Rows) == 0 || zipf.Rows[0][2] == "0.00" {
		t.Errorf("zipf table empty or idle: %v", zipf.Rows)
	}
	if len(storm.Rows) != 2 {
		t.Fatalf("storm has %d rows, want 2", len(storm.Rows))
	}
	if storm.Rows[0][3] == "0" {
		t.Errorf("SYN storm dropped nothing: %v", storm.Rows[0])
	}
	if storm.Rows[1][6] != "0" {
		t.Errorf("churn left live connections: %v", storm.Rows[1])
	}
	for _, tb := range tables {
		_ = tb.Format()
	}
}

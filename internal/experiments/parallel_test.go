package experiments

import (
	"fmt"
	"testing"

	"flextoe/internal/ctrl"
	"flextoe/internal/sim"
)

// equalModeIndependent asserts the parts of a determinism run that must
// be bit-identical regardless of how many shards executed it: data-path
// counters, tracepoint hits, and application-level results. Total event
// counts are deliberately excluded — a cross-shard frame delivery is two
// events (sender-side wire egress + receiver-side arrival) where the
// serial wheel runs one, so event totals are shard-count-dependent even
// though every observable outcome is not.
func equalModeIndependent(t *testing.T, label string, serial, par determinismResult) {
	t.Helper()
	if serial.srvCounters != par.srvCounters {
		t.Fatalf("%s: server counters diverge from serial:\n%+v\n%+v", label, serial.srvCounters, par.srvCounters)
	}
	if serial.clCounters != par.clCounters {
		t.Fatalf("%s: client counters diverge from serial:\n%+v\n%+v", label, serial.clCounters, par.clCounters)
	}
	if serial.received != par.received || serial.completed != par.completed {
		t.Fatalf("%s: app results diverge from serial: %d/%d vs %d/%d",
			label, serial.received, serial.completed, par.received, par.completed)
	}
	if len(serial.srvTrace) != len(par.srvTrace) {
		t.Fatalf("%s: trace snapshot sizes %d vs %d", label, len(serial.srvTrace), len(par.srvTrace))
	}
	for name, n := range serial.srvTrace {
		if par.srvTrace[name] != n {
			t.Fatalf("%s: trace %s: %d vs %d", label, name, n, par.srvTrace[name])
		}
	}
}

// TestParallelMatchesSerial is the sharding conformance gate (PR 7): for
// the same seed, a sharded run must reproduce the serial PR-3 wheel's
// counters, tracepoint hits, and application results bit for bit, and a
// sharded run must reproduce itself bit for bit — including per-shard
// event counts — across repeated executions.
//
// Two scenarios: the lossy SACK-recovery workload from the determinism
// suite (two FlexTOE machines through one switch), and the Figure 17a
// DCTCP incast on the leaf-spine fabric.
func TestParallelMatchesSerial(t *testing.T) {
	seeds := []uint64{1, 42}
	coreCounts := []int{2, 4}
	if testing.Short() {
		// The race-detector CI job runs with -short: one seed, one shard
		// count, no fabric scenario — the sharing structure under test is
		// identical, only the repetition is trimmed.
		seeds = seeds[:1]
		coreCounts = coreCounts[:1]
	}
	for _, seed := range seeds {
		serial := determinismRunCores(seed, 1)
		for _, cores := range coreCounts {
			par := determinismRunCores(seed, cores)
			label := fmt.Sprintf("seed %d cores %d", seed, cores)
			equalModeIndependent(t, label, serial, par)

			// Re-running the sharded configuration must be bit-identical in
			// every respect, including how many events each shard processed.
			again := determinismRunCores(seed, cores)
			equalModeIndependent(t, label+" (rerun)", par, again)
			if par.processed != again.processed {
				t.Fatalf("%s: sharded rerun processed %d vs %d events", label, par.processed, again.processed)
			}
			if len(par.perEngine) != len(again.perEngine) {
				t.Fatalf("%s: sharded rerun engine counts %d vs %d", label, len(par.perEngine), len(again.perEngine))
			}
			for i := range par.perEngine {
				if par.perEngine[i] != again.perEngine[i] {
					t.Fatalf("%s: shard %d processed %d vs %d events on rerun",
						label, i, par.perEngine[i], again.perEngine[i])
				}
			}
		}
	}

	// Figure 17a incast on the fabric: rack-affine shard placement must not
	// change a single measured number.
	if testing.Short() {
		return
	}
	d := 4 * sim.Millisecond
	serial := fig17IncastPoint(1, 16, ctrl.CCDCTCP, d)
	for _, cores := range []int{2, 4} {
		if par := fig17IncastPoint(cores, 16, ctrl.CCDCTCP, d); par != serial {
			t.Fatalf("fig17 incast cores %d diverges from serial:\n%+v\n%+v", cores, serial, par)
		}
	}
}

package experiments

import (
	"fmt"

	"flextoe/internal/api"
	"flextoe/internal/ctrl"
	"flextoe/internal/fabric"
	"flextoe/internal/fabric/workload"
	"flextoe/internal/flowmon"
	"flextoe/internal/netsim"
	"flextoe/internal/scenario"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/testbed"
)

// Fig. 17 fabric parameters (reproduction extension): a DCTCP-style
// marking threshold K and a shallow-buffer queue cap on the leaf tier,
// the regime the paper's §5 congestion-control evaluation assumes but the
// single-switch testbed could never produce.
const (
	fig17K        = 90_000  // leaf ECN threshold (bytes), the DCTCP K
	fig17QueueCap = 250_000 // leaf egress queue cap (bytes), shallow ToR buffer
)

// fig17IncastResult is one incast sweep point.
type fig17IncastResult struct {
	goodputGbps float64
	p50us       float64
	p99us       float64
	rounds      uint64
	peakQ       int    // deepest leaf egress queue after warmup (bytes)
	ecnMarks    uint64 // CE marks applied at the leaf tier
	retxKB      float64
}

// fig17IncastPoint runs one N-to-1 incast point on a three-rack fabric:
// the aggregator alone in rack 0, sender hosts spread over racks 1-2, and
// fan-in connections spread over the sender hosts. All machines run
// FlexTOE with the given control-plane congestion-control policy. cores
// selects the engine-shard count (rack-affine placement); any value
// produces bit-identical results to cores=1 (TestParallelMatchesSerial).
// The point runs through the scenario builder (the spec below is the
// declarative form of the original harness — same seeds, same warmup
// boundary), and TestParallelMatchesSerial plus the determinism gates
// prove the numbers stayed bit-identical across the refactor.
// examples/scenarios/incast16.json is the 16-way point in JSON clothing.
func fig17IncastPoint(cores, fanIn int, cc ctrl.CCAlgo, d sim.Time) fig17IncastResult {
	hosts := fanIn
	if hosts > 8 {
		hosts = 8
	}
	spec := &scenario.Spec{
		Name:       "fig17a-incast",
		Seed:       170_000 + uint64(fanIn),
		DurationUs: int64(d / sim.Microsecond),
		// Warm up past connection setup and the initial slow-start burst;
		// the builder resets queue stats and measurement at the boundary
		// so all columns measure the same post-warmup window.
		WarmupUs: int64(d / 4 / sim.Microsecond),
		Cores:    cores,
		Topology: scenario.Topology{
			Kind: scenario.TopoFabric,
			Fabric: &scenario.FabricSpec{
				Racks: 3, Spines: 2,
				QueueHistUnit: 1448,
				Leaf:          &scenario.SwitchSpec{ECNThresholdBytes: fig17K, QueueCapBytes: fig17QueueCap},
				Spine:         &scenario.SwitchSpec{ECNThresholdBytes: fig17K, QueueCapBytes: 2 * fig17QueueCap},
			},
		},
		Machines: []scenario.Machine{{
			Name: "agg", Stack: scenario.StackFlexTOE, Cores: 4, Rack: 0,
			BufBytes: 1 << 17, CC: scenarioCC(cc), Seed: 1700,
		}},
	}
	senders := make([]string, hosts)
	for i := 0; i < hosts; i++ {
		senders[i] = fmt.Sprintf("snd%d", i)
		spec.Machines = append(spec.Machines, scenario.Machine{
			Name: senders[i], Stack: scenario.StackFlexTOE, Cores: 2,
			Rack: 1 + i%2, BufBytes: 1 << 17, CC: scenarioCC(cc), Seed: uint64(1710 + i),
		})
	}
	spec.Workloads = []scenario.Workload{{
		Kind: scenario.KindIncast,
		Incast: &scenario.IncastWorkload{
			Agg: "agg", Port: 9400, Senders: senders,
			FanIn: fanIn, BlockBytes: 32768,
		},
	}}
	_, res := mustScenario(spec)

	var retx uint64
	for _, m := range res.Machines[1:] {
		retx += m.RetxBytes
	}
	w := res.Workloads[0]
	return fig17IncastResult{
		goodputGbps: w.GoodputGbps,
		p50us:       w.P50Us,
		p99us:       w.P99Us,
		rounds:      w.Rounds,
		peakQ:       res.Fabric.PeakLeafQueueBytes,
		ecnMarks:    res.Fabric.LeafECNMarks,
		retxKB:      float64(retx) / 1024,
	}
}

// scenarioCC names a control-plane CC policy in spec vocabulary.
func scenarioCC(cc ctrl.CCAlgo) string {
	switch cc {
	case ctrl.CCDCTCP:
		return "dctcp"
	case ctrl.CCTimely:
		return "timely"
	default:
		return "none"
	}
}

// fig17OversubResult is one oversubscription sweep point.
type fig17OversubResult struct {
	goodputGbps float64
	p99us       float64
	peakUplinkQ int    // deepest leaf→spine trunk queue after warmup
	peakHostQ   int    // deepest host-facing leaf queue after warmup
	uplinkMarks uint64 // CE marks applied at trunk ports
	hostMarks   uint64 // CE marks applied at host-facing ports
}

// fig17OversubPoint runs an 8-way incast (4 sender hosts × 2 connections
// in rack 1, aggregator in rack 0) over a single-spine fabric with the
// given trunk rate, DCTCP on. With the trunk at 200 G the fabric is
// non-blocking (4 hosts × 40 G = 160 G fits) and congestion sits where
// incast always puts it: the aggregator's 40 G leaf egress port. At
// 100 G the hosts oversubscribe the trunk (160 G > 100 G) and the
// leaf→spine uplink queue joins in; at 30 G the trunk is the unique
// bottleneck and the host-facing queue goes quiet — congestion has moved
// from leaf egress to the uplink, and the ECN marks (what DCTCP reacts
// to) move with it.
func fig17OversubPoint(cores int, trunkGbps float64, d sim.Time) fig17OversubResult {
	const hosts = 4
	fc := fabric.Config{
		Leaves: 2, Spines: 1,
		LeafSpineGbps: trunkGbps,
		QueueHistUnit: 1448,
		Leaf: netsim.SwitchConfig{
			ECNThresholdBytes: fig17K,
			QueueCapBytes:     fig17QueueCap,
		},
		Spine: netsim.SwitchConfig{
			ECNThresholdBytes: fig17K,
			QueueCapBytes:     2 * fig17QueueCap,
		},
		Seed: 172_000 + uint64(trunkGbps),
	}
	specs := []testbed.MachineSpec{{
		Name: "agg", Kind: testbed.FlexTOE, Cores: 4, Rack: 0,
		BufSize: 1 << 17, CC: ctrl.CCDCTCP, Seed: 1720,
	}}
	for i := 0; i < hosts; i++ {
		specs = append(specs, testbed.MachineSpec{
			Name: fmt.Sprintf("snd%d", i), Kind: testbed.FlexTOE, Cores: 2,
			Rack: 1, BufSize: 1 << 17, CC: ctrl.CCDCTCP, Seed: uint64(1730 + i),
		})
	}
	tb := testbed.NewFabricCores(cores, fc, specs...)

	g := &workload.IncastGroup{BlockBytes: 32768}
	g.Serve(tb.M("agg").Stack, 9600)
	senders := make([]api.Stack, 0, 2*hosts)
	for i := 0; i < 2*hosts; i++ {
		senders = append(senders, tb.M(fmt.Sprintf("snd%d", i%hosts)).Stack)
	}
	g.Start(senders, tb.Addr("agg", 9600))

	warm := d / 4
	tb.Run(warm)
	tb.Fabric.ResetQueueStats()
	g.RoundFCT = stats.NewHistogram()
	bytes0 := g.BytesReceived
	upMarks0, hostMarks0 := tb.Fabric.UplinkECNMarks(), tb.Fabric.HostPortECNMarks()
	tb.Run(warm + d)

	return fig17OversubResult{
		goodputGbps: gbps(g.BytesReceived-bytes0, d),
		p99us:       usOf(g.RoundFCT.Percentile(99)),
		peakUplinkQ: tb.Fabric.PeakUplinkQueueBytes(),
		peakHostQ:   tb.Fabric.PeakHostQueueBytes(),
		uplinkMarks: tb.Fabric.UplinkECNMarks() - upMarks0,
		hostMarks:   tb.Fabric.HostPortECNMarks() - hostMarks0,
	}
}

// fig17ECMPPoint measures hash balance: flows fixed-size transfers from
// rack-1 hosts to rack-0 hosts over a fabric with the given spine count,
// returning the bytes each spine carried upward out of the sender leaf
// tier, the heaviest spine's load relative to the fair share, and one
// flowmon Fleet report per rack (ROADMAP 5c): every host NIC in a rack
// feeds one analyzer, merged in attachment order, so per-spine RTT/retx
// splits come from Report.GroupTotals over the same CRC-32 flow hash the
// ECMP stage forwards with. The taps are passive — attaching them left
// the spine byte counts bit-identical (TestTapsDoNotPerturbSimulation).
func fig17ECMPPoint(cores, spines, flows int, d sim.Time) (spineBytes []uint64, maxOverFair float64, racks []*flowmon.Report) {
	fc := fabric.Config{Leaves: 2, Spines: spines, Seed: 171_000 + uint64(spines)}
	const hostsPerSide = 4
	var specs []testbed.MachineSpec
	for i := 0; i < hostsPerSide; i++ {
		specs = append(specs,
			testbed.MachineSpec{Name: fmt.Sprintf("src%d", i), Kind: testbed.FlexTOE, Cores: 2,
				Rack: 1, BufSize: 1 << 17, Seed: uint64(1750 + i)},
			testbed.MachineSpec{Name: fmt.Sprintf("dst%d", i), Kind: testbed.FlexTOE, Cores: 2,
				Rack: 0, BufSize: 1 << 17, Seed: uint64(1760 + i)},
		)
	}
	tb := testbed.NewFabricCores(cores, fc, specs...)

	fleets := make([]*flowmon.Fleet, fc.Leaves)
	for r := range fleets {
		fleets[r] = &flowmon.Fleet{}
	}
	for _, h := range tb.Fabric.Hosts() {
		mon := flowmon.New(flowmon.Config{})
		flowmon.Attach(mon, h.Iface)
		fleets[h.Rack].Add(mon)
	}

	g := &workload.FlowGen{
		Rate:     1e7, // effectively simultaneous arrivals
		Size:     workload.Fixed(65536),
		Conns:    flows,
		MaxFlows: flows,
		Seed:     171,
	}
	srcs := make([]api.Stack, hostsPerSide)
	dsts := make([]api.Addr, hostsPerSide)
	for i := 0; i < hostsPerSide; i++ {
		srcs[i] = tb.M(fmt.Sprintf("src%d", i)).Stack
		g.Serve(tb.M(fmt.Sprintf("dst%d", i)).Stack, 9500)
		dsts[i] = tb.Addr(fmt.Sprintf("dst%d", i), 9500)
	}
	g.Start(srcs, dsts...)
	tb.Run(d)

	spineBytes = tb.Fabric.SpineTxBytes()
	var total uint64
	max := uint64(0)
	for _, b := range spineBytes {
		total += b
		if b > max {
			max = b
		}
	}
	fair := float64(total) / float64(spines)
	if fair > 0 {
		maxOverFair = float64(max) / fair
	}
	racks = make([]*flowmon.Report, len(fleets))
	for r, fl := range fleets {
		racks[r] = fl.Report()
	}
	return spineBytes, maxOverFair, racks
}

// Fig17 is a reproduction extension: FlexTOE's congestion control on a
// leaf–spine fabric. 17a sweeps N-to-1 incast fan-in against the control
// plane's CC policies; 17b measures per-flow ECMP load balance across the
// spines.
func Fig17(s Scale) []*Table {
	incast := &Table{
		ID:     "Figure 17a",
		Title:  "Incast fan-in on the leaf-spine fabric (32 KB blocks per sender, barrier-synchronized rounds)",
		Header: []string{"Fan-in", "CC", "Goodput (G)", "FCT p50 (us)", "FCT p99 (us)", "Rounds", "Peak leaf Q (KB)", "ECN marks", "Retx KB"},
		Notes: fmt.Sprintf("leaf tier: K=%d B ECN threshold, %d B queue cap; DCTCP should hold the peak queue near K while CC-off fills the cap and pays RTO-scale tails (§5.3's Table 4 scenario on a real fabric)",
			fig17K, fig17QueueCap),
	}
	fanIns := s.pick([]int{4, 16}, []int{4, 8, 16, 32})
	d := s.dur(8*sim.Millisecond, 60*sim.Millisecond)
	ccs := []struct {
		name string
		cc   ctrl.CCAlgo
	}{
		{"CCNone", ctrl.CCNone},
		{"CCDCTCP", ctrl.CCDCTCP},
		{"CCTimely", ctrl.CCTimely},
	}
	for _, fanIn := range fanIns {
		for _, c := range ccs {
			r := fig17IncastPoint(s.cores(), fanIn, c.cc, d)
			incast.AddRow(fmt.Sprintf("%d", fanIn), c.name,
				f2(r.goodputGbps), f1(r.p50us), f1(r.p99us),
				fmt.Sprintf("%d", r.rounds),
				f1(float64(r.peakQ)/1024),
				fmt.Sprintf("%d", r.ecnMarks),
				f1(r.retxKB))
		}
	}

	ecmp := &Table{
		ID:     "Figure 17b",
		Title:  "ECMP balance: per-spine bytes for fixed-size cross-rack flows (64 KB each)",
		Header: []string{"Spines", "Flows", "Per-spine MB", "Max/fair"},
		Notes:  "per-flow CRC-32 hashing (packet.Flow.Hash) across the uplink group; documented imbalance bound: max spine load <= 1.45x fair share at >= 64 flows (seeded, deterministic)",
	}
	split := &Table{
		ID:     "Figure 17b (per-spine splits)",
		Title:  "Per-rack flowmon fleets: retx/RTT split by ECMP spine (rack fleets tap every host NIC; flows group by the forwarding hash)",
		Header: []string{"Spines", "Flows", "Rack", "Spine", "Split flows", "Retx segs", "DupAcks", "RTT n", "RTT mean (us)"},
		Notes:  "passive Fleet per leaf (ROADMAP 5c): per-spine groups partition each rack's observed flows by packet.Flow.Hash % spines — the exact uplink choice — so skew in the balance table above decomposes into which flows shared a spine",
	}
	flowCounts := s.pick([]int{64}, []int{64, 256})
	dE := s.dur(20*sim.Millisecond, 60*sim.Millisecond)
	for _, spines := range []int{2, 4} {
		for _, flows := range flowCounts {
			bytes, maxOverFair, racks := fig17ECMPPoint(s.cores(), spines, flows, dE)
			per := ""
			for i, b := range bytes {
				if i > 0 {
					per += " / "
				}
				per += f1(float64(b) / 1e6)
			}
			ecmp.AddRow(fmt.Sprintf("%d", spines), fmt.Sprintf("%d", flows), per, f2(maxOverFair))
			for rack, rep := range racks {
				groups := rep.GroupTotals(spines, func(f *flowmon.FlowReport) int {
					return int(f.Flow.Hash() % uint32(spines))
				})
				for spine, gt := range groups {
					split.AddRow(fmt.Sprintf("%d", spines), fmt.Sprintf("%d", flows),
						fmt.Sprintf("%d", rack), fmt.Sprintf("%d", spine),
						fmt.Sprintf("%d", gt.Flows),
						fmt.Sprintf("%d", gt.RetxSegs),
						fmt.Sprintf("%d", gt.DupAcks),
						fmt.Sprintf("%d", gt.RTTN),
						f1(gt.RTTMeanUs()))
				}
			}
		}
	}

	oversub := &Table{
		ID:     "Figure 17c",
		Title:  "Oversubscribed trunks: 8-way incast (4 sender hosts x 40G) vs single-spine trunk rate, DCTCP on",
		Header: []string{"Trunk (G)", "Goodput (G)", "FCT p99 (us)", "Peak uplink Q (KB)", "Peak host Q (KB)", "Uplink marks", "Host marks"},
		Notes:  "hosts x 40G > spines x trunk moves the congestion point: non-blocking (200G) queues at the aggregator's leaf egress; oversubscribed trunks shift the deep queue — and the CE marks DCTCP reacts to — onto the leaf->spine uplink",
	}
	trunks := s.pick([]int{200, 30}, []int{200, 100, 30})
	dO := s.dur(8*sim.Millisecond, 40*sim.Millisecond)
	for _, trunk := range trunks {
		r := fig17OversubPoint(s.cores(), float64(trunk), dO)
		oversub.AddRow(fmt.Sprintf("%d", trunk), f2(r.goodputGbps), f1(r.p99us),
			f1(float64(r.peakUplinkQ)/1024), f1(float64(r.peakHostQ)/1024),
			fmt.Sprintf("%d", r.uplinkMarks), fmt.Sprintf("%d", r.hostMarks))
	}
	out := []*Table{incast, ecmp, split, oversub}
	if s.cores() > 1 {
		out = append(out, scalingTable("Figure 17 (harness scaling)",
			"Fig 17a incast sweep wall-clock vs engine shards (identical results at every row)",
			s.cores(), func(c int) {
				for _, fanIn := range fanIns {
					fig17IncastPoint(c, fanIn, ctrl.CCDCTCP, d)
				}
			}))
	}
	return out
}

package experiments

import (
	"testing"

	"flextoe/internal/apps"
	"flextoe/internal/core"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
	"flextoe/internal/testbed"
)

// determinismRun executes one seeded lossy bidirectional FlexTOE workload
// (loss injection, SACK recovery, delayed DMA, profiling tracepoints all
// active) and returns everything an identical re-run must reproduce
// bit-for-bit: event count, data-path counters, and tracepoint hits.
type determinismResult struct {
	processed   uint64   // events processed, summed over engines
	perEngine   []uint64 // per-shard event counts, in shard order
	srvCounters core.Counters
	clCounters  core.Counters
	received    uint64
	completed   uint64
	srvTrace    map[string]uint64
}

func determinismRun(seed uint64) determinismResult {
	return determinismRunCores(seed, 1)
}

// determinismRunCores is determinismRun on a testbed sharded over the
// given number of cores (1 = the serial PR-3 wheel, bit for bit).
func determinismRunCores(seed uint64, cores int) determinismResult {
	cfg := core.AgilioCX40Config()
	cfg.OOOIntervals = tcpseg.MaxOOOIntervals
	cfg.EnableSACK = true
	tb := testbed.NewCores(cores, netsim.SwitchConfig{LossProb: 0.002, Seed: seed},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 4, BufSize: 1 << 17, FlexCfg: &cfg, Seed: seed + 1},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 4, BufSize: 1 << 17, FlexCfg: &cfg, Seed: seed + 2},
	)
	srv := tb.M("server")
	cl := tb.M("client")
	srv.TOE.Trace().EnableAll()

	sink := &apps.BulkSink{}
	sink.Serve(srv.Stack, 9000)
	for i := 0; i < 4; i++ {
		snd := &apps.BulkSender{}
		snd.Start(cl.Stack, tb.Addr("server", 9000))
	}
	rpc := &apps.RPCServer{ReqSize: 64}
	rpc.Serve(srv.Stack, 7777)
	echo := &apps.ClosedLoopClient{ReqSize: 64, Pipeline: 4}
	echo.Start(cl.Stack, tb.Addr("server", 7777), 8)

	tb.Run(8 * sim.Millisecond)

	hits := make(map[string]uint64)
	for _, pc := range srv.TOE.Trace().Snapshot() {
		hits[pc.Point.Name()] = pc.Count
	}
	var perEngine []uint64
	var processed uint64
	for _, e := range tb.Group.Engines() {
		perEngine = append(perEngine, e.Processed())
		processed += e.Processed()
	}
	return determinismResult{
		processed:   processed,
		perEngine:   perEngine,
		srvCounters: srv.TOE.Counters,
		clCounters:  cl.TOE.Counters,
		received:    sink.Received,
		completed:   echo.Completed,
		srvTrace:    hits,
	}
}

// TestDeterminismSameSeedBitIdentical is the engine-swap safety net: the
// timing wheel (with its pooled events, recycled segments and packets)
// must reproduce a seeded experiment exactly — same event count, same
// counters, same tracepoint hits — across repeated runs in one process,
// where pool reuse patterns differ between the first (cold) and later
// (warm) executions.
func TestDeterminismSameSeedBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 42, 9000} {
		a := determinismRun(seed)
		b := determinismRun(seed)
		if a.processed != b.processed {
			t.Fatalf("seed %d: Engine.Processed %d vs %d", seed, a.processed, b.processed)
		}
		if a.srvCounters != b.srvCounters {
			t.Fatalf("seed %d: server counters diverge:\n%+v\n%+v", seed, a.srvCounters, b.srvCounters)
		}
		if a.clCounters != b.clCounters {
			t.Fatalf("seed %d: client counters diverge:\n%+v\n%+v", seed, a.clCounters, b.clCounters)
		}
		if a.received != b.received || a.completed != b.completed {
			t.Fatalf("seed %d: app results diverge: %d/%d vs %d/%d",
				seed, a.received, a.completed, b.received, b.completed)
		}
		if len(a.srvTrace) != len(b.srvTrace) {
			t.Fatalf("seed %d: trace snapshot sizes %d vs %d", seed, len(a.srvTrace), len(b.srvTrace))
		}
		for name, n := range a.srvTrace {
			if b.srvTrace[name] != n {
				t.Fatalf("seed %d: trace %s: %d vs %d", seed, name, n, b.srvTrace[name])
			}
		}
	}
	// Different seeds must actually produce different executions, or the
	// assertions above are vacuous.
	if a, b := determinismRun(1), determinismRun(2); a.processed == b.processed &&
		a.srvCounters == b.srvCounters {
		t.Fatal("different seeds produced identical runs; workload is not exercising randomness")
	}
}

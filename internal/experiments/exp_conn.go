package experiments

import (
	"fmt"

	"flextoe/internal/api"
	"flextoe/internal/apps"
	"flextoe/internal/core"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

// Figure 9-style connection-scaling sweep (ROADMAP item 2): FlexTOE's
// Table 5 claim is that per-connection state is small enough to hold
// millions of flows on the NIC. This runner populates mostly-idle fleets
// up to 10^6 established connections and measures the three quantities
// that must stay flat for the claim to hold up:
//
//   - NIC bytes/connection (slab blocks + flow index + free ring),
//   - idle maintenance events/ms (the timer system's cost with nothing to
//     do — before this sweep existed, two 500 µs full-table scans made
//     this O(total connections)),
//   - goodput of a small active set riding on top of the idle fleet.
//
// Two companion tables exercise the regimes around the sweep: a
// Zipf-activity long-lived fleet (a hot subset carries the traffic) and a
// connection setup/teardown storm through ctrl.Plane (SYN flood against
// the listen backlog and accept-rate limiter, then dial/close churn
// proving state is reclaimed).

// installIdleFleet installs n established, idle connections directly on a
// FlexTOE machine's control plane (bypassing the handshake), peered with
// addresses outside the testbed so they never see traffic. One shared
// payload-buffer pair backs the whole fleet: per-connection buffers are a
// host sizing choice, not NIC state, and idle connections transfer
// nothing (see ctrl.Plane.InstallEstablished).
func installIdleFleet(m *testbed.Machine, n int) {
	tx := shm.NewPayloadBuf(4096)
	rx := shm.NewPayloadBuf(4096)
	for i := 0; i < n; i++ {
		flow := packet.Flow{
			SrcIP:   m.IP,
			DstIP:   packet.IP(172, byte(16+(i>>16)), byte(i>>8), byte(i)),
			SrcPort: 7000,
			DstPort: 443,
		}
		iss := uint32(i)*2654435761 + 1
		m.Ctrl.InstallEstablished(flow, packet.EtherAddr{}, iss, iss^0x55aa, tx, rx)
	}
}

// totalProcessed sums executed events over all shard engines.
func totalProcessed(tb *testbed.Testbed) uint64 {
	var n uint64
	for _, e := range tb.Group.Engines() {
		n += e.Processed()
	}
	return n
}

// churnLoop drives dial-and-immediately-close waves against a listener
// that also closes on accept: every connection runs the full
// SYN/establish/FIN/linger/reclaim lifecycle. Returns the number of dials
// issued.
func churnLoop(tb *testbed.Testbed, client, server string, port uint16, waves, perWave int, gap sim.Time) int {
	cl := tb.M(client).Stack
	addr := tb.Addr(server, port)
	dials := 0
	for w := 0; w < waves; w++ {
		for i := 0; i < perWave; i++ {
			cl.Dial(addr, func(sock api.Socket) { sock.Close() })
			dials++
		}
		tb.Run(tb.Eng.Now() + gap)
	}
	return dials
}

// Fig9Conn regenerates the connection-scale evaluation: the idle-fleet
// sweep, the Zipf-activity fleet, and the setup/teardown storm.
func Fig9Conn(s Scale) []*Table {
	return []*Table{fig9Sweep(s), fig9Zipf(s), fig9Storm(s)}
}

// fig9Sweep is the headline sweep: N mostly-idle established connections,
// 64 active RPC connections on top.
func fig9Sweep(s Scale) *Table {
	t := &Table{
		ID:     "Figure 9-C (sweep)",
		Title:  "Connection scale: goodput, state, and timer cost vs idle fleet size",
		Header: []string{"Idle conns", "NIC B/conn", "Idle evs/ms", "Active MOps", "OOO cap"},
		Notes:  "idle maintenance events and active goodput must be independent of fleet size; B/conn within 2x the Table 5 budget (doc.go \"Connection state budget\")",
	}
	counts := s.pick([]int{1_000, 10_000, 100_000}, []int{1_000, 10_000, 100_000, 1_000_000})
	idleWin := 2 * sim.Millisecond
	d := s.dur(3*sim.Millisecond, 20*sim.Millisecond)
	for _, n := range counts {
		cfg := core.AgilioCX40Config()
		cfg.AdaptiveOOO = true
		cfg.OOOStateBudget = 1 << 14
		tb := testbed.New(netsim.SwitchConfig{Seed: 90},
			testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 8, BufSize: 1 << 16, FlexCfg: &cfg, Seed: 90},
			testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 8, BufSize: 1 << 16, Seed: 91},
		)
		srv := tb.M("server")
		installIdleFleet(srv, n)

		// Idle window: nothing moves; only timer/controller maintenance
		// events run. Before the wheel-armed timers this grew O(n).
		p0 := totalProcessed(tb)
		tb.Run(idleWin)
		idlePerMs := float64(totalProcessed(tb)-p0) / (float64(idleWin) / float64(sim.Millisecond))

		// Active phase: a small hot set on top of the idle fleet.
		rpc := &apps.RPCServer{ReqSize: 64}
		rpc.Serve(srv.Stack, 7777)
		cl := &apps.ClosedLoopClient{ReqSize: 64}
		cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 64)
		tb.Run(idleWin + d)

		perConn := float64(srv.TOE.ConnStateBytes()) / float64(srv.TOE.NumConnections())
		t.AddRow(fmt.Sprintf("%d", n), f1(perConn), f1(idlePerMs),
			f2(mops(cl.Completed, d)), fmt.Sprintf("%d", srv.Ctrl.OOOCapNow()))
	}
	return t
}

// fig9Zipf is the long-lived-fleet workload: open-loop request/response
// (KV-style GET traffic) where the connection for each arrival is drawn
// Zipf(1.1), so a small hot set carries most of the load while the tail
// of the fleet stays nearly idle.
func fig9Zipf(s Scale) *Table {
	t := &Table{
		ID:     "Figure 9-C (zipf)",
		Title:  "Zipf-activity long-lived fleet (open-loop KV-style RPCs)",
		Header: []string{"Conns", "Offered Mops", "Achieved Mops", "p50 (us)", "p99 (us)", "Dropped"},
		Notes:  "Zipf(1.1) connection pick per arrival: the hot head stays cached while the cold tail costs only its state bytes",
	}
	conns := s.pick([]int{256}, []int{256, 1024})
	d := s.dur(6*sim.Millisecond, 40*sim.Millisecond)
	const rate = 2e6
	for _, n := range conns {
		tb := testbed.New(netsim.SwitchConfig{Seed: 93},
			testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 8, BufSize: 1 << 14, Seed: 93},
			testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 8, BufSize: 1 << 14, Seed: 94},
		)
		rpc := &apps.RPCServer{ReqSize: 32, RespSize: 64}
		rpc.Serve(tb.M("server").Stack, 11211)
		cl := &apps.OpenLoopClient{ReqSize: 32, RespSize: 64, Rate: rate, ZipfS: 1.1, Seed: 95}
		cl.Start(tb.M("client").Stack, tb.Addr("server", 11211), n)
		tb.Run(d)
		t.AddRow(fmt.Sprintf("%d", n), f2(rate/1e6), f2(mops(cl.Completed, d)),
			f1(usOf(cl.Latency.Percentile(50))), f1(usOf(cl.Latency.Percentile(99))),
			fmt.Sprintf("%d", cl.Dropped))
	}
	return t
}

// fig9Storm exercises the control plane's setup/teardown path: a SYN
// storm against a bounded listen backlog and accept-rate limiter, then
// dial/close churn that must reclaim every slot.
func fig9Storm(s Scale) *Table {
	t := &Table{
		ID:     "Figure 9-C (storm)",
		Title:  "Connection setup/teardown storm through ctrl.Plane",
		Header: []string{"Phase", "Dials", "Established", "SYN drops", "Backlog", "Rate-limited", "Live after", "NIC KB after"},
		Notes:  "drops are silent (no RST) as under a kernel SYN flood; churned slots are reclaimed after the post-close linger and reused FIFO",
	}

	// Phase 1: accept storm against backlog 16 and a 2M SYN/s rate limit.
	storm := s.pick([]int{256}, []int{2048})[0]
	{
		tb := testbed.New(netsim.SwitchConfig{Seed: 96},
			testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 8, BufSize: 4096,
				ListenBacklog: 16, AcceptRate: 2e6, Seed: 96},
			testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 8, BufSize: 4096, Seed: 97},
		)
		srv := tb.M("server")
		srv.Stack.Listen(8080, func(sock api.Socket) {})
		for i := 0; i < storm; i++ {
			tb.M("client").Stack.Dial(tb.Addr("server", 8080), func(api.Socket) {})
		}
		tb.Run(5 * sim.Millisecond)
		t.AddRow("SYN storm", fmt.Sprintf("%d", storm),
			fmt.Sprintf("%d", srv.Ctrl.Established), fmt.Sprintf("%d", srv.Ctrl.SYNDrops),
			fmt.Sprintf("%d", srv.Ctrl.BacklogOverflows), fmt.Sprintf("%d", srv.Ctrl.AcceptRateDrops),
			fmt.Sprintf("%d", srv.Ctrl.NumTracked()), f1(float64(srv.TOE.ConnStateBytes())/1024))
	}

	// Phase 2: churn — every connection dials, closes, lingers, and is
	// reclaimed; the table must end near-empty with its slab intact.
	{
		tb := testbed.New(netsim.SwitchConfig{Seed: 98},
			testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 8, BufSize: 4096, Seed: 98},
			testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 8, BufSize: 4096, Seed: 99},
		)
		srv := tb.M("server")
		srv.Stack.Listen(8081, func(sock api.Socket) { sock.Close() })
		waves, perWave := s.pick([]int{20}, []int{100})[0], 16
		dials := churnLoop(tb, "client", "server", 8081, waves, perWave, sim.Millisecond)
		tb.Run(tb.Eng.Now() + 30*sim.Millisecond) // drain lingers
		t.AddRow("Churn", fmt.Sprintf("%d", dials),
			fmt.Sprintf("%d", srv.Ctrl.Established), fmt.Sprintf("%d", srv.Ctrl.SYNDrops),
			fmt.Sprintf("%d", srv.Ctrl.BacklogOverflows), fmt.Sprintf("%d", srv.Ctrl.AcceptRateDrops),
			fmt.Sprintf("%d", srv.Ctrl.NumTracked()), f1(float64(srv.TOE.ConnStateBytes())/1024))
	}
	return t
}

package experiments

import (
	"strconv"
	"strings"
	"testing"

	"flextoe/internal/sim"
)

func TestRunnerRegistry(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("runners = %d, want 17 (6 tables + 11 figures)", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if r.ID == "" || r.Desc == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate id %q", r.ID)
		}
		seen[r.ID] = true
		got, ok := ByID(r.ID)
		if !ok || got.ID != r.ID {
			t.Fatalf("ByID(%q) failed", r.ID)
		}
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("ByID accepted an unknown id")
	}
}

func TestTable5Structural(t *testing.T) {
	tables := Table5(Quick)
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tb := tables[0]
	// 4 partition rows plus the OOO-extension and SACK-scoreboard rows.
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := tb.Format()
	for _, want := range []string{"Pre-processor", "15", "43", "51", "109", "+24", "SACK scoreboard", "+32"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestFig15SACKBeatsGBNAtOnePercentLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed run")
	}
	// The PR's acceptance point: at 1% loss the SACK path must
	// retransmit strictly fewer bytes than go-back-N while delivering at
	// least the same goodput.
	d := Quick.dur(15*sim.Millisecond, 0)
	gbnG, gbnRetx, gbnTap := fig15RecoveryPoint(0.01, false, d)
	sackG, sackRetx, sackTap := fig15RecoveryPoint(0.01, true, d)
	t.Logf("GBN: %.2f Gbps, %.1f KB retx; SACK: %.2f Gbps, %.1f KB retx", gbnG, gbnRetx, sackG, sackRetx)
	if sackRetx >= gbnRetx {
		t.Fatalf("SACK retransmitted %.1f KB, GBN %.1f KB: want strictly fewer", sackRetx, gbnRetx)
	}
	if sackG < gbnG {
		t.Fatalf("SACK goodput %.3f Gbps below GBN %.3f Gbps", sackG, gbnG)
	}
	if gbnRetx == 0 {
		t.Fatal("no loss induced: the comparison is vacuous")
	}
	// The passive sender-NIC analyzer must agree on the recovery scheme:
	// without SACK blocks on the wire it classifies every retransmission
	// as go-back-N; with them a nonzero share becomes selective.
	if sel := gbnTap.Totals().RetxSelBytes; sel != 0 {
		t.Fatalf("analyzer inferred %d selective-retransmit bytes on the GBN run", sel)
	}
	if sel := sackTap.Totals().RetxSelBytes; sel == 0 {
		t.Fatal("analyzer inferred no selective-retransmit bytes on the SACK run")
	}
}

// TestFig15RecoveryAnalyzerColumns: the Figure 15c table carries columns
// derived from the passive flowmon tap, and at 1% loss the SACK variant's
// selective-retransmit column is nonzero while the GBN variant's stays 0.
func TestFig15RecoveryAnalyzerColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed run")
	}
	var rec *Table
	for _, tb := range Fig15(Quick) {
		if tb.ID == "Figure 15c" {
			rec = tb
		}
	}
	if rec == nil {
		t.Fatal("Figure 15c table missing")
	}
	col := func(name string) int {
		for i, h := range rec.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("header missing %q: %v", name, rec.Header)
		return -1
	}
	gbnSel, sackSel, sackP99 := col("GBN sel KB"), col("SACK sel KB"), col("SACK p99 us")
	var lossy []string
	for _, row := range rec.Rows {
		if row[0] == "1%" {
			lossy = row
		}
	}
	if lossy == nil {
		t.Fatalf("no 1%% loss row: %v", rec.Rows)
	}
	parse := func(i int) float64 {
		v, err := strconv.ParseFloat(lossy[i], 64)
		if err != nil {
			t.Fatalf("cell %d (%q): %v", i, lossy[i], err)
		}
		return v
	}
	if v := parse(gbnSel); v != 0 {
		t.Fatalf("GBN sel KB = %v, want 0 (no SACK blocks on the wire)", v)
	}
	if v := parse(sackSel); v <= 0 {
		t.Fatalf("SACK sel KB = %v, want > 0", v)
	}
	if v := parse(sackP99); v <= 0 {
		t.Fatalf("SACK p99 RTT = %v us, want > 0", v)
	}
}

// TestFig15CrossStackRenegingEndToEnd is the cross-stack regression for
// the scoreboard-overflow reneging path (ROADMAP follow-on): a FlexTOE
// SACK sender against the Linux personality's 32-interval receiver must
// (a) actually overflow its 4-interval scoreboard and renege, (b) fall
// back conservatively (retransmissions happen, bytes keep flowing), and
// (c) still make forward progress comparable to the lossless baseline's
// order of magnitude — a wedged sender would deliver ~nothing.
func TestFig15CrossStackRenegingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed run")
	}
	d := Quick.dur(15*sim.Millisecond, 0)
	cleanG, _, _, cleanReneges := fig15CrossStackPoint(0, d)
	lossyG, retxKB, _, reneges := fig15CrossStackPoint(0.01, d)
	t.Logf("clean: %.2f Gbps; 1%% loss: %.2f Gbps, %.1f KB retx, %d reneges", cleanG, lossyG, retxKB, reneges)
	if cleanReneges != 0 {
		t.Fatalf("lossless run reneged %d times", cleanReneges)
	}
	if reneges == 0 {
		t.Fatal("1% loss never overflowed the 4-interval scoreboard: reneging path not exercised")
	}
	if retxKB == 0 {
		t.Fatal("reneging produced no retransmissions: fallback path dead")
	}
	if lossyG < cleanG/10 {
		t.Fatalf("goodput %.2f Gbps collapsed vs clean %.2f Gbps: sender wedged after reneging", lossyG, cleanG)
	}
}

// TestFig15CrossStackRetxGap pins the outcome of the SACK-advertisement
// rotation experiment (ROADMAP Fig. 15e follow-on). The baseline
// receiver now advertises blocks most-recent-first and rotates older
// holes through the 4-block option space (RFC 2018,
// baseline.appendSACK); the hypothesis was that exposing older holes
// faster would narrow the ~7 MB-vs-~0.1 MB cross-stack retransmit gap
// at 0.1% loss. Measured result: it does not — at these loss rates a
// window rarely holds more than 4 concurrent holes, so the rotation
// changes nothing on the wire (bit-identical runs at 4 of 5 seeds), and
// the gap is driven by RTO-epoch go-back-N retransmissions (each epoch
// re-sends up to a full 512 KB window x 8 connections), not by hole
// advertisement latency. This test pins that operating point so a
// future change to tail-loss recovery (e.g. the RACK-style detector the
// ROADMAP names) shows up as a bound improvement rather than silent
// drift.
func TestFig15CrossStackRetxGap(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed run")
	}
	d := Quick.dur(15*sim.Millisecond, 0)
	g, retxKB, sackRetx, reneges := fig15CrossStackPoint(0.001, d)
	t.Logf("0.1%% loss: %.2f Gbps, %.1f KB retx, %d sackRetx, %d reneges", g, retxKB, sackRetx, reneges)
	// Pinned seed measures 7.2 MB retransmitted at 11.9 Gbps (seed
	// spread over 5 seeds: 1.0-7.2 MB, RTO-count dominated). Bound with
	// headroom; a genuine recovery improvement would land far below.
	if retxKB > 12_000 {
		t.Fatalf("retransmitted %.1f KB at 0.1%% loss: cross-stack recovery regressed", retxKB)
	}
	if g < 8 {
		t.Fatalf("goodput %.2f Gbps at 0.1%% loss: cross-stack transfer collapsed", g)
	}
	if sackRetx == 0 {
		t.Fatal("no selective retransmissions: SACK path inactive against the Linux receiver")
	}
	if reneges != 0 {
		t.Fatalf("scoreboard reneged %d times at 0.1%% loss: interval pressure unexpectedly high", reneges)
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tb := &Table{
		ID:     "T",
		Title:  "test",
		Header: []string{"a", "longer"},
	}
	tb.AddRow("wide-cell", "x")
	out := tb.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, rule, row
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Header and row columns must align: the second column starts at the
	// same offset.
	hdr, row := lines[1], lines[3]
	if idxOf(hdr, "longer") != idxOf(row, "x") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func idxOf(s, sub string) int { return strings.Index(s, sub) }

func TestScaleHelpers(t *testing.T) {
	if Quick.dur(1, 2) != 1 || Full.dur(1, 2) != 2 {
		t.Fatal("dur")
	}
	q := Quick.pick([]int{1}, []int{1, 2})
	f := Full.pick([]int{1}, []int{1, 2})
	if len(q) != 1 || len(f) != 2 {
		t.Fatal("pick")
	}
}

func TestFig9QuickProducesAllCombos(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	tables := Fig9(Quick)
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	if len(tables[0].Rows) != 16 {
		t.Fatalf("combos = %d, want 16", len(tables[0].Rows))
	}
	// Every row must have numeric-looking latency cells.
	for _, row := range tables[0].Rows {
		if len(row) != 6 {
			t.Fatalf("row = %v", row)
		}
		if row[2] == "0.0" {
			t.Fatalf("zero latency in %v", row)
		}
	}
}

// Package apps implements the evaluation workloads: a memcached-like
// key-value server driven by a memtier-like load generator (§2.1, §5.1),
// echo/RPC servers with configurable application processing cost (§5.2),
// closed- and open-loop clients with pipelining, and bulk-transfer
// senders (§5.2, §5.3). Applications use only the api.Stack interface, so
// identical "binaries" run over every stack.
package apps

import (
	"encoding/binary"

	"flextoe/internal/api"
	"flextoe/internal/host"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
)

// ---------------------------------------------------------------------
// Fixed-size RPC framing: every request and response is a fixed number of
// bytes agreed upon out of band (the paper's RPC benchmarks fix request
// and response sizes per run).
// ---------------------------------------------------------------------

// RPCServer serves fixed-size requests with fixed-size responses after a
// configurable application-processing delay (Fig. 10's 250/1,000 cycles).
type RPCServer struct {
	ReqSize   int
	RespSize  int // 0 = echo the request size
	AppCycles int64

	Served uint64
}

// Serve installs the server on a stack port.
func (srv *RPCServer) Serve(stack api.Stack, port uint16) {
	stack.Listen(port, func(sock api.Socket) {
		buffered := 0
		var pump func()
		core := coreFor(stack, sock)
		pump = func() {
			buf := make([]byte, 4096)
			for {
				n := sock.Recv(buf)
				if n == 0 {
					break
				}
				buffered += n
			}
			for buffered >= srv.ReqSize {
				buffered -= srv.ReqSize
				srv.Served++
				resp := srv.RespSize
				if resp == 0 {
					resp = srv.ReqSize
				}
				payload := make([]byte, resp)
				if srv.AppCycles > 0 {
					core.Submit(sim.TaskC(srv.AppCycles), func() { sock.Send(payload) })
				} else {
					sock.Send(payload)
				}
			}
		}
		sock.OnReadable(pump)
	})
}

// coreFor picks the application core serving a socket.
func coreFor(stack api.Stack, sock api.Socket) *host.Core {
	cores := stack.Machine().Cores
	idx := int(sock.RemoteAddr().Port) % len(cores)
	return cores[idx]
}

// ---------------------------------------------------------------------
// Closed-loop client (memtier-style): each connection keeps a fixed
// number of requests pipelined and issues a new one per response.
// ---------------------------------------------------------------------

// ClosedLoopClient drives closed-loop fixed-size RPCs.
type ClosedLoopClient struct {
	ReqSize  int
	RespSize int // expected; 0 = ReqSize
	Pipeline int // requests in flight per connection (>=1)

	// Measurement.
	Completed uint64
	Bytes     uint64
	Latency   *stats.Histogram // picoseconds
	WarmupOps uint64           // skip the first N ops in the histogram

	perConn []uint64 // completions per connection (fairness)
	eng     *sim.Engine
}

// ConnJFI returns Jain's fairness index over per-connection completion
// counts.
func (c *ClosedLoopClient) ConnJFI() float64 {
	xs := make([]float64, len(c.perConn))
	for i, v := range c.perConn {
		xs[i] = float64(v)
	}
	return stats.JainFairness(xs)
}

type clientConn struct {
	c        *ClosedLoopClient
	sock     api.Socket
	idx      int        // per-connection index for fairness accounting
	issued   []sim.Time // send timestamps, FIFO per pipelined request
	received int
	openLoop bool // open-loop mode: responses do not trigger reissue
}

// Start opens conns connections from the stack to the server and begins
// issuing load.
func (c *ClosedLoopClient) Start(eng *sim.Engine, stack api.Stack, server api.Addr, conns int) {
	c.eng = eng
	if c.Latency == nil {
		c.Latency = stats.NewHistogram()
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	for i := 0; i < conns; i++ {
		stack.Dial(server, func(sock api.Socket) {
			idx := len(c.perConn)
			c.perConn = append(c.perConn, 0)
			cc := &clientConn{c: c, sock: sock, idx: idx}
			sock.OnReadable(cc.onReadable)
			for p := 0; p < c.Pipeline; p++ {
				cc.issue()
			}
		})
	}
}

func (cc *clientConn) issue() {
	payload := make([]byte, cc.c.ReqSize)
	cc.issued = append(cc.issued, cc.c.eng.Now())
	cc.sock.Send(payload)
}

func (cc *clientConn) onReadable() {
	resp := cc.c.RespSize
	if resp == 0 {
		resp = cc.c.ReqSize
	}
	buf := make([]byte, 4096)
	for {
		n := cc.sock.Recv(buf)
		if n == 0 {
			break
		}
		cc.received += n
	}
	for cc.received >= resp && len(cc.issued) > 0 {
		cc.received -= resp
		start := cc.issued[0]
		cc.issued = cc.issued[1:]
		cc.c.Completed++
		cc.c.Bytes += uint64(resp + cc.c.ReqSize)
		if cc.idx < len(cc.c.perConn) {
			cc.c.perConn[cc.idx]++
		}
		if cc.c.Completed > cc.c.WarmupOps {
			cc.c.Latency.Record(int64(cc.c.eng.Now() - start))
		}
		if !cc.openLoop {
			cc.issue()
		}
	}
}

// ---------------------------------------------------------------------
// Open-loop client: Poisson arrivals at a fixed rate spread over the
// connections (Fig. 10's open-loop producers).
// ---------------------------------------------------------------------

// OpenLoopClient issues fixed-size requests at a target rate.
type OpenLoopClient struct {
	ReqSize  int
	RespSize int
	Rate     float64 // requests/second
	Seed     uint64

	Completed uint64
	Dropped   uint64 // requests skipped because the socket buffer was full
	Latency   *stats.Histogram

	eng   *sim.Engine
	rng   *stats.RNG
	socks []api.Socket
	conns []*clientConn
	next  int
}

// Start opens conns connections and schedules Poisson arrivals.
func (c *OpenLoopClient) Start(eng *sim.Engine, stack api.Stack, server api.Addr, conns int) {
	c.eng = eng
	c.rng = stats.NewRNG(c.Seed + 7)
	if c.Latency == nil {
		c.Latency = stats.NewHistogram()
	}
	cl := &ClosedLoopClient{ReqSize: c.ReqSize, RespSize: c.RespSize, Latency: c.Latency, eng: eng}
	for i := 0; i < conns; i++ {
		stack.Dial(server, func(sock api.Socket) {
			cc := &clientConn{c: cl, sock: sock, openLoop: true}
			sock.OnReadable(func() {
				cc.onReadable()
				c.Completed = cl.Completed
			})
			c.conns = append(c.conns, cc)
			if len(c.conns) == 1 {
				c.scheduleNext()
			}
		})
	}
}

func (c *OpenLoopClient) scheduleNext() {
	gap := sim.Time(c.rng.Exp(1e12 / c.Rate))
	c.eng.After(gap, func() {
		if len(c.conns) > 0 {
			cc := c.conns[c.next%len(c.conns)]
			c.next++
			if cc.sock.TxSpace() >= c.ReqSize {
				cc.issue()
			} else {
				c.Dropped++
			}
		}
		c.scheduleNext()
	})
}

// ---------------------------------------------------------------------
// Bulk transfer: one-directional stream, measuring delivered goodput.
// ---------------------------------------------------------------------

// BulkSink counts received bytes on a port.
type BulkSink struct {
	Received uint64
	// Echo reflects RespBytes back per ChunkBytes received (the Fig. 12
	// bidirectional case echoes everything: RespBytes == ChunkBytes).
	ChunkBytes int
	RespBytes  int
	buffered   int
}

// Serve installs the sink.
func (b *BulkSink) Serve(stack api.Stack, port uint16) {
	stack.Listen(port, func(sock api.Socket) {
		buf := make([]byte, 16384)
		sock.OnReadable(func() {
			for {
				n := sock.Recv(buf)
				if n == 0 {
					break
				}
				b.Received += uint64(n)
				b.buffered += n
			}
			for b.ChunkBytes > 0 && b.buffered >= b.ChunkBytes {
				b.buffered -= b.ChunkBytes
				if b.RespBytes > 0 {
					sock.Send(make([]byte, b.RespBytes))
				}
			}
		})
	})
}

// PerConnBulkSink counts received bytes per accepted connection (the
// Fig. 16 fairness measurement).
type PerConnBulkSink struct {
	counts []uint64
}

// NewPerConnBulkSink returns an empty sink.
func NewPerConnBulkSink() *PerConnBulkSink { return &PerConnBulkSink{} }

// Serve installs the sink on a port.
func (b *PerConnBulkSink) Serve(stack api.Stack, port uint16) {
	stack.Listen(port, func(sock api.Socket) {
		idx := len(b.counts)
		b.counts = append(b.counts, 0)
		buf := make([]byte, 16384)
		sock.OnReadable(func() {
			for {
				n := sock.Recv(buf)
				if n == 0 {
					break
				}
				b.counts[idx] += uint64(n)
			}
		})
	})
}

// ResetCounts zeroes the per-connection counters (end of warmup).
func (b *PerConnBulkSink) ResetCounts() {
	for i := range b.counts {
		b.counts[i] = 0
	}
}

// Shares returns the per-connection byte counts as float64s.
func (b *PerConnBulkSink) Shares() []float64 {
	out := make([]float64, len(b.counts))
	for i, v := range b.counts {
		out[i] = float64(v)
	}
	return out
}

// BulkSender streams as fast as the socket accepts.
type BulkSender struct {
	Sent  uint64
	chunk []byte
}

// Start opens a connection and saturates it.
func (b *BulkSender) Start(eng *sim.Engine, stack api.Stack, server api.Addr) {
	b.chunk = make([]byte, 16384)
	stack.Dial(server, func(sock api.Socket) {
		push := func() {
			for {
				n := sock.Send(b.chunk)
				if n == 0 {
					break
				}
				b.Sent += uint64(n)
			}
		}
		sock.OnWritable(push)
		push()
	})
}

// ---------------------------------------------------------------------
// Memcached-like key-value store (§2.1's workload): binary framing with
// GET/SET over 32 B keys and values, a real hash table, and per-request
// application cycles.
// ---------------------------------------------------------------------

// KV op codes.
const (
	KVGet byte = 1
	KVSet byte = 2
)

// KVRequestSize returns the wire size of a request.
func KVRequestSize(op byte, keyLen, valLen int) int {
	if op == KVSet {
		return 4 + keyLen + valLen
	}
	return 4 + keyLen
}

// KVEncodeRequest builds a request frame: [op][keyLen][valLen:2][key][val].
func KVEncodeRequest(op byte, key, val []byte) []byte {
	buf := make([]byte, 4+len(key)+len(val))
	buf[0] = op
	buf[1] = byte(len(key))
	binary.BigEndian.PutUint16(buf[2:4], uint16(len(val)))
	copy(buf[4:], key)
	copy(buf[4+len(key):], val)
	return buf
}

// KVServer is the memcached-like store.
type KVServer struct {
	AppCycles int64 // per-request application work (hash + LRU, §2.1)
	ValueLen  int   // response value size for GET

	store  map[string][]byte
	Served uint64
	Hits   uint64
}

// Serve installs the KV server.
func (kv *KVServer) Serve(stack api.Stack, port uint16) {
	kv.store = make(map[string][]byte)
	stack.Listen(port, func(sock api.Socket) {
		var acc []byte
		core := coreFor(stack, sock)
		sock.OnReadable(func() {
			buf := make([]byte, 8192)
			for {
				n := sock.Recv(buf)
				if n == 0 {
					break
				}
				acc = append(acc, buf[:n]...)
			}
			for {
				if len(acc) < 4 {
					return
				}
				op := acc[0]
				keyLen := int(acc[1])
				valLen := int(binary.BigEndian.Uint16(acc[2:4]))
				need := 4 + keyLen
				if op == KVSet {
					need += valLen
				}
				if len(acc) < need {
					return
				}
				frame := acc[:need]
				acc = acc[need:]
				kv.handle(core, sock, op, frame[4:4+keyLen], frame[4+keyLen:need])
			}
		})
	})
}

func (kv *KVServer) handle(core *host.Core, sock api.Socket, op byte, key, val []byte) {
	k := string(key)
	work := func() {
		kv.Served++
		switch op {
		case KVSet:
			stored := make([]byte, len(val))
			copy(stored, val)
			kv.store[k] = stored
			sock.Send([]byte{1, 0, 0, 0}) // 4-byte OK
		default: // GET
			v, ok := kv.store[k]
			if ok {
				kv.Hits++
			} else {
				v = make([]byte, kv.ValueLen)
			}
			resp := make([]byte, 4+len(v))
			resp[0] = 1
			binary.BigEndian.PutUint16(resp[2:4], uint16(len(v)))
			copy(resp[4:], v)
			sock.Send(resp)
		}
	}
	if kv.AppCycles > 0 {
		core.Submit(sim.TaskC(kv.AppCycles), work)
	} else {
		work()
	}
}

// KVClient is the memtier-like generator: closed-loop GET/SET mix over
// persistent connections with 32 B keys and values.
type KVClient struct {
	KeyLen   int
	ValLen   int
	SetRatio float64 // fraction of SETs
	Pipeline int
	Seed     uint64

	Completed uint64
	Latency   *stats.Histogram

	eng *sim.Engine
	rng *stats.RNG
}

// Start opens conns connections and drives the closed loop.
func (c *KVClient) Start(eng *sim.Engine, stack api.Stack, server api.Addr, conns int) {
	c.eng = eng
	c.rng = stats.NewRNG(c.Seed + 99)
	if c.Latency == nil {
		c.Latency = stats.NewHistogram()
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.KeyLen == 0 {
		c.KeyLen = 32
	}
	if c.ValLen == 0 {
		c.ValLen = 32
	}
	for i := 0; i < conns; i++ {
		stack.Dial(server, func(sock api.Socket) {
			kc := &kvConn{c: c, sock: sock}
			sock.OnReadable(kc.onReadable)
			for p := 0; p < c.Pipeline; p++ {
				kc.issue()
			}
		})
	}
}

type kvConn struct {
	c      *KVClient
	sock   api.Socket
	issued []sim.Time
	expect []int // response size per outstanding op
	acc    int
}

func (kc *kvConn) issue() {
	c := kc.c
	key := make([]byte, c.KeyLen)
	c.rng.Uint64() // churn
	for i := range key {
		key[i] = byte('a' + c.rng.Intn(26))
	}
	var frame []byte
	var respSize int
	if c.rng.Bool(c.SetRatio) {
		val := make([]byte, c.ValLen)
		frame = KVEncodeRequest(KVSet, key, val)
		respSize = 4
	} else {
		frame = KVEncodeRequest(KVGet, key, nil)
		respSize = 4 + c.ValLen
	}
	kc.issued = append(kc.issued, c.eng.Now())
	kc.expect = append(kc.expect, respSize)
	kc.sock.Send(frame)
}

func (kc *kvConn) onReadable() {
	buf := make([]byte, 8192)
	for {
		n := kc.sock.Recv(buf)
		if n == 0 {
			break
		}
		kc.acc += n
	}
	for len(kc.expect) > 0 && kc.acc >= kc.expect[0] {
		kc.acc -= kc.expect[0]
		kc.expect = kc.expect[1:]
		start := kc.issued[0]
		kc.issued = kc.issued[1:]
		kc.c.Completed++
		kc.c.Latency.Record(int64(kc.c.eng.Now() - start))
		kc.issue()
	}
}

// Package apps implements the evaluation workloads: a memcached-like
// key-value server driven by a memtier-like load generator (§2.1, §5.1),
// echo/RPC servers with configurable application processing cost (§5.2),
// closed- and open-loop clients with pipelining, and bulk-transfer
// senders (§5.2, §5.3). Applications use only the api.Stack interface, so
// identical "binaries" run over every stack.
//
// Every workload drives the zero-copy view API (Peek/Consume on receive,
// Reserve/Commit on transmit): frames are parsed and staged directly in
// the per-socket payload rings, so the steady-state request path
// allocates nothing at the application layer (gated in CI by
// TestAppSteadyStateAllocBudget). Fixed-size benchmark payloads whose
// content is never examined (RPC requests/responses, bulk streams) are
// committed without staging — the ring bytes go out as-is, exactly the
// liberty a padding payload grants a zero-copy application.
package apps

import (
	"encoding/binary"

	"flextoe/internal/api"
	"flextoe/internal/host"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
)

// ---------------------------------------------------------------------
// Fixed-size RPC framing: every request and response is a fixed number of
// bytes agreed upon out of band (the paper's RPC benchmarks fix request
// and response sizes per run).
// ---------------------------------------------------------------------

// RPCServer serves fixed-size requests with fixed-size responses after a
// configurable application-processing delay (Fig. 10's 250/1,000 cycles).
type RPCServer struct {
	ReqSize   int
	RespSize  int // 0 = echo the request size
	AppCycles int64

	Served uint64
}

// rpcSession is one accepted connection's parse/respond state.
type rpcSession struct {
	srv  *RPCServer
	sock api.Socket
	core *host.Core

	buffered int // request bytes received short of a full request
	owed     int // response bytes ready to transmit
}

// Serve installs the server on a stack port.
func (srv *RPCServer) Serve(stack api.Stack, port uint16) {
	stack.Listen(port, func(sock api.Socket) {
		sess := &rpcSession{srv: srv, sock: sock, core: coreFor(stack, sock)}
		sock.OnReadable(sess.onReadable)
		sock.OnWritable(sess.push)
	})
}

func (sess *rpcSession) onReadable() {
	a, b := sess.sock.Peek()
	n := api.ViewLen(a, b)
	if n == 0 {
		return
	}
	// Requests are content-ignored fixed-size frames: count and release
	// the bytes in place.
	sess.sock.Consume(n)
	sess.buffered += n
	for sess.buffered >= sess.srv.ReqSize {
		sess.buffered -= sess.srv.ReqSize
		sess.srv.Served++
		if sess.srv.AppCycles > 0 {
			sess.core.SubmitCall(sim.TaskC(sess.srv.AppCycles), rpcRespond, sess)
		} else {
			sess.owed += sess.respSize()
		}
	}
	sess.push()
}

func (sess *rpcSession) respSize() int {
	if sess.srv.RespSize > 0 {
		return sess.srv.RespSize
	}
	return sess.srv.ReqSize
}

// rpcRespond releases one response after its application-processing cost
// has been paid (see host.Core.SubmitCall).
func rpcRespond(a any) {
	sess := a.(*rpcSession)
	sess.owed += sess.respSize()
	sess.push()
}

// push commits owed response padding as transmit space allows; the
// OnWritable callback resumes it when acknowledgments free buffer.
func (sess *rpcSession) push() { commitOwed(sess.sock, &sess.owed) }

// commitOwed commits up to *owed bytes of padding as transmit space
// allows — the shared push step of every fixed-content sender (RPC
// responses, closed-loop requests, bulk echoes).
func commitOwed(sock api.Socket, owed *int) {
	if *owed == 0 {
		return
	}
	w := sock.TxSpace()
	if w > *owed {
		w = *owed
	}
	if w == 0 {
		return
	}
	sock.Commit(w)
	*owed -= w
}

// coreFor picks the application core serving a socket.
func coreFor(stack api.Stack, sock api.Socket) *host.Core {
	cores := stack.Machine().Cores
	idx := int(sock.RemoteAddr().Port) % len(cores)
	return cores[idx]
}

// ---------------------------------------------------------------------
// Closed-loop client (memtier-style): each connection keeps a fixed
// number of requests pipelined and issues a new one per response.
// ---------------------------------------------------------------------

// ClosedLoopClient drives closed-loop fixed-size RPCs.
type ClosedLoopClient struct {
	ReqSize  int
	RespSize int // expected; 0 = ReqSize
	Pipeline int // requests in flight per connection (>=1)

	// Measurement.
	Completed uint64
	Bytes     uint64
	Latency   *stats.Histogram // picoseconds
	WarmupOps uint64           // skip the first N ops in the histogram

	perConn []uint64 // completions per connection (fairness)
	eng     *sim.Engine
}

// ConnJFI returns Jain's fairness index over per-connection completion
// counts.
func (c *ClosedLoopClient) ConnJFI() float64 {
	xs := make([]float64, len(c.perConn))
	for i, v := range c.perConn {
		xs[i] = float64(v)
	}
	return stats.JainFairness(xs)
}

type clientConn struct {
	c          *ClosedLoopClient
	sock       api.Socket
	idx        int        // per-connection index for fairness accounting
	issued     []sim.Time // send timestamps, FIFO ring per pipelined request
	issuedHead int
	received   int
	txOwed     int  // request bytes stamped but not yet committed
	openLoop   bool // open-loop mode: responses do not trigger reissue
}

// Start opens conns connections from the stack to the server and begins
// issuing load.
func (c *ClosedLoopClient) Start(stack api.Stack, server api.Addr, conns int) {
	c.eng = stack.Engine()
	if c.Latency == nil {
		c.Latency = stats.NewHistogram()
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	for i := 0; i < conns; i++ {
		stack.Dial(server, func(sock api.Socket) {
			idx := len(c.perConn)
			c.perConn = append(c.perConn, 0)
			cc := &clientConn{c: c, sock: sock, idx: idx}
			sock.OnReadable(cc.onReadable)
			sock.OnWritable(cc.pushTx)
			for p := 0; p < c.Pipeline; p++ {
				cc.issue()
			}
		})
	}
}

func (cc *clientConn) issue() {
	cc.issued = append(cc.issued, cc.c.eng.Now())
	cc.txOwed += cc.c.ReqSize
	cc.pushTx()
}

// pushTx commits request padding as transmit space allows (requests are
// fixed-size and content-ignored).
func (cc *clientConn) pushTx() { commitOwed(cc.sock, &cc.txOwed) }

func (cc *clientConn) onReadable() {
	resp := cc.c.RespSize
	if resp == 0 {
		resp = cc.c.ReqSize
	}
	a, b := cc.sock.Peek()
	if n := api.ViewLen(a, b); n > 0 {
		cc.sock.Consume(n)
		cc.received += n
	}
	for cc.received >= resp && cc.issuedHead < len(cc.issued) {
		cc.received -= resp
		start := cc.issued[cc.issuedHead]
		cc.issued, cc.issuedHead = shm.PopRing(cc.issued, cc.issuedHead)
		cc.c.Completed++
		cc.c.Bytes += uint64(resp + cc.c.ReqSize)
		if cc.idx < len(cc.c.perConn) {
			cc.c.perConn[cc.idx]++
		}
		if cc.c.Completed > cc.c.WarmupOps {
			cc.c.Latency.Record(int64(cc.c.eng.Now() - start))
		}
		if !cc.openLoop {
			cc.issue()
		}
	}
}

// ---------------------------------------------------------------------
// Open-loop client: Poisson arrivals at a fixed rate spread over the
// connections (Fig. 10's open-loop producers).
// ---------------------------------------------------------------------

// OpenLoopClient issues fixed-size requests at a target rate.
type OpenLoopClient struct {
	ReqSize  int
	RespSize int
	Rate     float64 // requests/second
	Seed     uint64
	// ZipfS > 0 picks the connection per arrival from a Zipf(s)
	// distribution over the fleet instead of round-robin: a small hot set
	// carries most of the traffic while the tail stays nearly idle — the
	// activity pattern of large long-lived connection fleets (Fig. 9
	// scaling sweeps).
	ZipfS float64

	Completed uint64
	Dropped   uint64 // requests skipped because the socket buffer was full
	Latency   *stats.Histogram

	eng   *sim.Engine
	rng   *stats.RNG
	zipf  *stats.Zipf
	conns []*clientConn
	next  int
}

// Start opens conns connections and schedules Poisson arrivals.
func (c *OpenLoopClient) Start(stack api.Stack, server api.Addr, conns int) {
	c.eng = stack.Engine()
	c.rng = stats.NewRNG(c.Seed + 7)
	if c.ZipfS > 0 && conns > 0 {
		c.zipf = stats.NewZipf(conns, c.ZipfS)
	}
	if c.Latency == nil {
		c.Latency = stats.NewHistogram()
	}
	cl := &ClosedLoopClient{ReqSize: c.ReqSize, RespSize: c.RespSize, Latency: c.Latency, eng: c.eng}
	for i := 0; i < conns; i++ {
		stack.Dial(server, func(sock api.Socket) {
			cc := &clientConn{c: cl, sock: sock, openLoop: true}
			sock.OnReadable(func() {
				cc.onReadable()
				c.Completed = cl.Completed
			})
			sock.OnWritable(cc.pushTx)
			c.conns = append(c.conns, cc)
			if len(c.conns) == 1 {
				c.scheduleNext()
			}
		})
	}
}

func (c *OpenLoopClient) scheduleNext() {
	gap := sim.Time(c.rng.Exp(1e12 / c.Rate))
	c.eng.AfterCall(gap, openLoopArrive, c)
}

// openLoopArrive fires one Poisson arrival and rearms (allocation-free
// per arrival; see sim.Engine.AfterCall).
func openLoopArrive(a any) {
	c := a.(*OpenLoopClient)
	if len(c.conns) > 0 {
		idx := c.next % len(c.conns)
		c.next++
		if c.zipf != nil {
			idx = c.zipf.Pick(c.rng) % len(c.conns)
		}
		cc := c.conns[idx]
		if cc.txOwed == 0 && cc.sock.TxSpace() >= c.ReqSize {
			cc.issue()
		} else {
			c.Dropped++
		}
	}
	c.scheduleNext()
}

// ---------------------------------------------------------------------
// Bulk transfer: one-directional stream, measuring delivered goodput.
// ---------------------------------------------------------------------

// BulkSink counts received bytes on a port.
type BulkSink struct {
	Received uint64
	// Echo reflects RespBytes back per ChunkBytes received (the Fig. 12
	// bidirectional case echoes everything: RespBytes == ChunkBytes).
	ChunkBytes int
	RespBytes  int
	buffered   int
}

// bulkSession is one accepted bulk connection.
type bulkSession struct {
	b    *BulkSink
	sock api.Socket
	owed int // echo bytes awaiting transmit space
}

// Serve installs the sink.
func (b *BulkSink) Serve(stack api.Stack, port uint16) {
	stack.Listen(port, func(sock api.Socket) {
		bs := &bulkSession{b: b, sock: sock}
		sock.OnReadable(bs.onReadable)
		sock.OnWritable(bs.push)
	})
}

func (bs *bulkSession) onReadable() {
	b := bs.b
	va, vb := bs.sock.Peek()
	n := api.ViewLen(va, vb)
	if n > 0 {
		bs.sock.Consume(n)
		b.Received += uint64(n)
		b.buffered += n
	}
	for b.ChunkBytes > 0 && b.buffered >= b.ChunkBytes {
		b.buffered -= b.ChunkBytes
		bs.owed += b.RespBytes
	}
	bs.push()
}

func (bs *bulkSession) push() { commitOwed(bs.sock, &bs.owed) }

// PerConnBulkSink counts received bytes per accepted connection (the
// Fig. 16 fairness measurement).
type PerConnBulkSink struct {
	counts []uint64
}

// NewPerConnBulkSink returns an empty sink.
func NewPerConnBulkSink() *PerConnBulkSink { return &PerConnBulkSink{} }

// pcSession drains one counted connection.
type pcSession struct {
	b    *PerConnBulkSink
	sock api.Socket
	idx  int
}

func (ps *pcSession) onReadable() {
	a, b := ps.sock.Peek()
	n := api.ViewLen(a, b)
	if n == 0 {
		return
	}
	ps.sock.Consume(n)
	ps.b.counts[ps.idx] += uint64(n)
}

// Serve installs the sink on a port.
func (b *PerConnBulkSink) Serve(stack api.Stack, port uint16) {
	stack.Listen(port, func(sock api.Socket) {
		ps := &pcSession{b: b, sock: sock, idx: len(b.counts)}
		b.counts = append(b.counts, 0)
		sock.OnReadable(ps.onReadable)
	})
}

// ResetCounts zeroes the per-connection counters (end of warmup).
func (b *PerConnBulkSink) ResetCounts() {
	for i := range b.counts {
		b.counts[i] = 0
	}
}

// Shares returns the per-connection byte counts as float64s.
func (b *PerConnBulkSink) Shares() []float64 {
	out := make([]float64, len(b.counts))
	for i, v := range b.counts {
		out[i] = float64(v)
	}
	return out
}

// BulkSender streams as fast as the socket accepts.
type BulkSender struct {
	Sent uint64

	sock    api.Socket
	stopped bool
}

// Stop ends the stream: no further bytes are committed, letting the
// connection quiesce (in-flight data still delivers and recovers).
func (b *BulkSender) Stop() { b.stopped = true }

// Start opens a connection and saturates it.
func (b *BulkSender) Start(stack api.Stack, server api.Addr) {
	stack.Dial(server, func(sock api.Socket) {
		b.sock = sock
		sock.OnWritable(b.push)
		b.push()
	})
}

// push commits every free transmit byte as padding: the saturating
// bulk stream stages nothing and copies nothing.
func (b *BulkSender) push() {
	if b.stopped {
		return
	}
	w := b.sock.TxSpace()
	if w == 0 {
		return
	}
	b.sock.Commit(w)
	b.Sent += uint64(w)
}

// ---------------------------------------------------------------------
// Memcached-like key-value store (§2.1's workload): binary framing with
// GET/SET over 32 B keys and values, a real hash table, and per-request
// application cycles.
// ---------------------------------------------------------------------

// KV op codes.
const (
	KVGet byte = 1
	KVSet byte = 2
)

// KVRequestSize returns the wire size of a request.
func KVRequestSize(op byte, keyLen, valLen int) int {
	if op == KVSet {
		return 4 + keyLen + valLen
	}
	return 4 + keyLen
}

// KVEncodeRequest builds a request frame: [op][keyLen][valLen:2][key][val].
func KVEncodeRequest(op byte, key, val []byte) []byte {
	buf := make([]byte, 4+len(key)+len(val))
	buf[0] = op
	buf[1] = byte(len(key))
	binary.BigEndian.PutUint16(buf[2:4], uint16(len(val)))
	copy(buf[4:], key)
	copy(buf[4+len(key):], val)
	return buf
}

// KVServer is the memcached-like store.
type KVServer struct {
	AppCycles int64 // per-request application work (hash + LRU, §2.1)
	ValueLen  int   // response value size for GET

	store   map[string][]byte
	missVal []byte // shared zero value returned on GET misses
	Served  uint64
	Hits    uint64
}

// kvSession parses one connection's request stream in place and stages
// responses directly into the transmit ring.
type kvSession struct {
	kv   *KVServer
	sock api.Socket
	core *host.Core

	scratch []byte // copy-on-straddle frame staging (reused)

	// Response FIFO: each entry is the value of a completed request
	// (nil for SET acknowledgments); the wire response is the 4-byte
	// status header followed by the value. ready gates how many may
	// transmit (their AppCycles cost has been paid).
	respQ    [][]byte
	respHead int
	ready    int

	// Response currently in flight (partially committed).
	cur     []byte
	curOff  int
	sending bool
}

// Serve installs the KV server.
func (kv *KVServer) Serve(stack api.Stack, port uint16) {
	kv.store = make(map[string][]byte)
	kv.missVal = make([]byte, kv.ValueLen)
	stack.Listen(port, func(sock api.Socket) {
		sess := &kvSession{kv: kv, sock: sock, core: coreFor(stack, sock)}
		sock.OnReadable(sess.onReadable)
		sock.OnWritable(sess.push)
	})
}

func (sess *kvSession) onReadable() {
	a, b := sess.sock.Peek()
	total := api.ViewLen(a, b)
	pos := 0
	for total-pos >= 4 {
		op := api.ViewByte(a, b, pos)
		keyLen := int(api.ViewByte(a, b, pos+1))
		valLen := int(api.ViewByte(a, b, pos+2))<<8 | int(api.ViewByte(a, b, pos+3))
		need := 4 + keyLen
		if op == KVSet {
			need += valLen
		}
		if total-pos < need {
			break
		}
		// The frame body is parsed in place; only a frame straddling the
		// ring wrap is staged through the reusable scratch buffer.
		frame := api.ViewBytes(a, b, pos+4, need-4, &sess.scratch)
		sess.handle(op, frame[:keyLen], frame[keyLen:])
		pos += need
	}
	if pos > 0 {
		sess.sock.Consume(pos)
	}
	sess.push()
}

// handle performs the store operation synchronously (the key and value
// views are only valid now, before Consume) and queues the response
// behind the request's application-processing cost.
func (sess *kvSession) handle(op byte, key, val []byte) {
	kv := sess.kv
	kv.Served++
	var resp []byte // response value; the slice must outlive the view
	switch op {
	case KVSet:
		stored := make([]byte, len(val))
		copy(stored, val)
		kv.store[string(key)] = stored
	default: // GET
		v, ok := kv.store[string(key)]
		if ok {
			kv.Hits++
			resp = v
		} else {
			resp = kv.missVal
		}
	}
	sess.respQ = append(sess.respQ, resp)
	if kv.AppCycles > 0 {
		sess.core.SubmitCall(sim.TaskC(kv.AppCycles), kvRespond, sess)
	} else {
		sess.ready++
	}
}

// kvRespond releases one response after its application cost (see
// host.Core.SubmitCall).
func kvRespond(a any) {
	sess := a.(*kvSession)
	sess.ready++
	sess.push()
}

// push stages ready responses directly into the transmit ring:
// [1,0,len:2][value], resuming partially committed responses when
// acknowledgments free space.
func (sess *kvSession) push() {
	for {
		if !sess.sending {
			if sess.ready == 0 || sess.respHead >= len(sess.respQ) {
				return
			}
			sess.cur = sess.respQ[sess.respHead]
			sess.respQ, sess.respHead = shm.PopRing(sess.respQ, sess.respHead)
			sess.ready--
			sess.curOff = 0
			sess.sending = true
		}
		respLen := 4 + len(sess.cur)
		a, b := sess.sock.Reserve(respLen - sess.curOff)
		w := api.ViewLen(a, b)
		if w == 0 {
			return
		}
		var hdr [4]byte
		hdr[0] = 1
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(sess.cur)))
		vo := 0
		if sess.curOff < 4 {
			h := hdr[sess.curOff:]
			if len(h) > w {
				h = h[:w]
			}
			api.ViewCopyIn(a, b, 0, h)
			vo = len(h)
		}
		if vo < w {
			vs := sess.cur[sess.curOff+vo-4:]
			api.ViewCopyIn(a, b, vo, vs[:w-vo])
		}
		sess.sock.Commit(w)
		sess.curOff += w
		if sess.curOff == respLen {
			sess.cur = nil
			sess.sending = false
		}
	}
}

// KVClient is the memtier-like generator: closed-loop GET/SET mix over
// persistent connections with 32 B keys and values.
type KVClient struct {
	KeyLen   int
	ValLen   int
	SetRatio float64 // fraction of SETs
	Pipeline int
	Seed     uint64

	Completed uint64
	Latency   *stats.Histogram

	eng *sim.Engine
	rng *stats.RNG
}

// Start opens conns connections and drives the closed loop.
func (c *KVClient) Start(stack api.Stack, server api.Addr, conns int) {
	c.eng = stack.Engine()
	c.rng = stats.NewRNG(c.Seed + 99)
	if c.Latency == nil {
		c.Latency = stats.NewHistogram()
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.KeyLen == 0 {
		c.KeyLen = 32
	}
	if c.ValLen == 0 {
		c.ValLen = 32
	}
	for i := 0; i < conns; i++ {
		stack.Dial(server, func(sock api.Socket) {
			kc := &kvConn{c: c, sock: sock, key: make([]byte, c.KeyLen)}
			sock.OnReadable(kc.onReadable)
			sock.OnWritable(kc.onWritable)
			for p := 0; p < c.Pipeline; p++ {
				kc.issue()
			}
		})
	}
}

type kvConn struct {
	c          *KVClient
	sock       api.Socket
	issued     []sim.Time // FIFO ring
	issuedHead int
	expect     []int // response size per outstanding op, FIFO ring
	expectHead int
	acc        int
	key        []byte // reusable key staging
	deferred   int    // issues awaiting transmit space
}

// issue stages one request frame directly in the transmit ring. A
// request that does not fit is deferred until space frees (the SET frame
// is the larger of the two, so the gate is conservative).
func (kc *kvConn) issue() {
	c := kc.c
	if kc.sock.TxSpace() < 4+c.KeyLen+c.ValLen {
		kc.deferred++
		return
	}
	c.rng.Uint64() // churn
	for i := range kc.key {
		kc.key[i] = byte('a' + c.rng.Intn(26))
	}
	var hdr [4]byte
	var need, respSize int
	if c.rng.Bool(c.SetRatio) {
		hdr[0] = KVSet
		hdr[1] = byte(c.KeyLen)
		binary.BigEndian.PutUint16(hdr[2:4], uint16(c.ValLen))
		need = 4 + c.KeyLen + c.ValLen
		respSize = 4
	} else {
		hdr[0] = KVGet
		hdr[1] = byte(c.KeyLen)
		need = 4 + c.KeyLen
		respSize = 4 + c.ValLen
	}
	a, b := kc.sock.Reserve(need)
	api.ViewCopyIn(a, b, 0, hdr[:])
	api.ViewCopyIn(a, b, 4, kc.key)
	// A SET's value bytes are padding: committed from the ring as-is.
	kc.sock.Commit(need)
	kc.issued = append(kc.issued, c.eng.Now())
	kc.expect = append(kc.expect, respSize)
}

func (kc *kvConn) onWritable() {
	for kc.deferred > 0 && kc.sock.TxSpace() >= 4+kc.c.KeyLen+kc.c.ValLen {
		kc.deferred--
		kc.issue()
	}
}

func (kc *kvConn) onReadable() {
	a, b := kc.sock.Peek()
	if n := api.ViewLen(a, b); n > 0 {
		kc.sock.Consume(n)
		kc.acc += n
	}
	for kc.expectHead < len(kc.expect) && kc.acc >= kc.expect[kc.expectHead] {
		kc.acc -= kc.expect[kc.expectHead]
		kc.expect, kc.expectHead = shm.PopRing(kc.expect, kc.expectHead)
		start := kc.issued[kc.issuedHead]
		kc.issued, kc.issuedHead = shm.PopRing(kc.issued, kc.issuedHead)
		kc.c.Completed++
		kc.c.Latency.Record(int64(kc.c.eng.Now() - start))
		kc.issue()
	}
}

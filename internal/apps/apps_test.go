package apps

import (
	"testing"

	"flextoe/internal/stats"
)

func TestKVFraming(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef") // 32 B
	val := make([]byte, 32)
	get := KVEncodeRequest(KVGet, key, nil)
	if len(get) != KVRequestSize(KVGet, 32, 0) {
		t.Fatalf("GET frame = %d bytes", len(get))
	}
	if get[0] != KVGet || int(get[1]) != 32 {
		t.Fatalf("GET header = %v", get[:4])
	}
	set := KVEncodeRequest(KVSet, key, val)
	if len(set) != KVRequestSize(KVSet, 32, 32) {
		t.Fatalf("SET frame = %d bytes", len(set))
	}
	if set[0] != KVSet {
		t.Fatal("SET opcode")
	}
	if string(set[4:36]) != string(key) {
		t.Fatal("key not embedded")
	}
}

func TestClosedLoopConnJFI(t *testing.T) {
	c := &ClosedLoopClient{}
	c.perConn = []uint64{100, 100, 100, 100}
	if j := c.ConnJFI(); j != 1 {
		t.Fatalf("equal JFI = %v", j)
	}
	c.perConn = []uint64{400, 0, 0, 0}
	if j := c.ConnJFI(); j != 0.25 {
		t.Fatalf("skewed JFI = %v", j)
	}
}

func TestPerConnBulkSinkShares(t *testing.T) {
	b := NewPerConnBulkSink()
	b.counts = []uint64{10, 20, 30}
	shares := b.Shares()
	if len(shares) != 3 || shares[2] != 30 {
		t.Fatalf("shares = %v", shares)
	}
	b.ResetCounts()
	for _, v := range b.Shares() {
		if v != 0 {
			t.Fatal("reset failed")
		}
	}
	if stats.JainFairness(shares) >= 1 {
		t.Fatal("unequal shares should have JFI < 1")
	}
}

package apps

import (
	"testing"

	"flextoe/internal/netsim"
	"flextoe/internal/stats"
	"flextoe/internal/testbed"
)

// rpcPair is a steady-state fixed-size RPC workload over a two-machine
// FlexTOE testbed: the app-layer analogue of core's benchPair.
type rpcPair struct {
	tb  *testbed.Testbed
	srv *RPCServer
	cli *ClosedLoopClient
}

func newRPCPair(reqSize, pipeline int) *rpcPair {
	tb := testbed.New(netsim.SwitchConfig{},
		testbed.MachineSpec{Name: "server", Kind: testbed.FlexTOE, Cores: 2, BufSize: 1 << 16, Seed: 41},
		testbed.MachineSpec{Name: "client", Kind: testbed.FlexTOE, Cores: 2, BufSize: 1 << 16, Seed: 42},
	)
	srv := &RPCServer{ReqSize: reqSize, AppCycles: 250}
	srv.Serve(tb.M("server").Stack, 9100)
	cli := &ClosedLoopClient{ReqSize: reqSize, Pipeline: pipeline, Latency: stats.NewHistogram()}
	cli.Start(tb.M("client").Stack, tb.Addr("server", 9100), 2)
	return &rpcPair{tb: tb, srv: srv, cli: cli}
}

// runRequests steps the engine until n more requests complete.
func (p *rpcPair) runRequests(n uint64) {
	target := p.cli.Completed + n
	for p.cli.Completed < target {
		if !p.tb.Eng.Step() {
			panic("apps: RPC workload stalled")
		}
	}
}

// TestAppSteadyStateAllocBudget extends the PR-3 zero-allocation
// contract from the data path to the application layer: a steady-state
// fixed-size RPC request-response — client issue, FlexTOE data path both
// ways, server parse + respond, client completion with latency
// recording — must cost at most 2 heap allocations end to end. The
// view-based workloads (Peek/Consume, Reserve/Commit) stage and parse in
// the payload rings, so the nominal per-request path allocates nothing;
// the budget leaves room for amortized container growth (issued-time
// rings, histogram buckets). Runs under plain `go test`, so CI enforces
// it without benchmark plumbing.
func TestAppSteadyStateAllocBudget(t *testing.T) {
	p := newRPCPair(64, 4)
	p.runRequests(2000) // warm pools, rings, histogram buckets
	const reqs = 500
	allocs := testing.AllocsPerRun(3, func() {
		p.runRequests(reqs)
	})
	perReq := allocs / reqs
	t.Logf("steady-state allocs per RPC request (app layer end to end): %.3f", perReq)
	if perReq > 2 {
		t.Fatalf("allocs per request = %.3f, budget is 2", perReq)
	}
}

// BenchmarkAppRPCRequest reports the wall-clock and allocation cost of
// one simulated RPC request-response end to end at the application
// layer (the number TestAppSteadyStateAllocBudget gates).
func BenchmarkAppRPCRequest(b *testing.B) {
	p := newRPCPair(64, 4)
	p.runRequests(2000)
	b.ReportAllocs()
	b.ResetTimer()
	p.runRequests(uint64(b.N))
}

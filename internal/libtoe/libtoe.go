// Package libtoe is FlexTOE's application library (§3, Fig. 2): it
// interposes on the POSIX socket API, keeps per-socket payload buffers in
// process memory, and talks to the data-path through per-thread context
// queues — appending transmit data and doorbelling the NIC, and consuming
// receive/free notifications.
//
// Socket operations cost host CPU cycles on the application's core,
// matching the paper's Table 1 accounting (FlexTOE: 0.74 kc of POSIX
// socket work per request that "cannot be eliminated with TCP offload").
package libtoe

import (
	"flextoe/internal/api"
	"flextoe/internal/core"
	"flextoe/internal/ctrl"
	"flextoe/internal/host"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
)

// CostProfile is the per-operation host cycle cost of the socket layer.
type CostProfile struct {
	SendCycles   int64   // per send() call (descriptor + doorbell MMIO)
	RecvCycles   int64   // per recv() call
	NotifyCycles int64   // per context-queue notification processed
	PerByte      float64 // copy cost per byte (app <-> payload buffer)
	// WakeupLatency is the MSI-X -> eventfd -> scheduler path when the
	// application slept waiting for IO (§4 "Driver"). Charged only when
	// the socket's core is idle; busy applications poll.
	WakeupLatency sim.Time
}

// DefaultCosts matches Table 1's FlexTOE socket accounting (~740 cycles
// of POSIX socket work per request-response pair, split across the calls
// involved).
func DefaultCosts() CostProfile {
	return CostProfile{
		SendCycles:    240,
		RecvCycles:    200,
		NotifyCycles:  150,
		PerByte:       0.06,
		WakeupLatency: 3500 * sim.Nanosecond,
	}
}

// Stack implements api.Stack over a FlexTOE data-path and control plane.
type Stack struct {
	eng     *sim.Engine
	toe     *core.TOE
	ctrl    *ctrl.Plane
	machine *host.Machine
	localIP packet.IPv4Addr
	costs   CostProfile

	// ResolveMAC maps a destination IP to its MAC (static ARP; the
	// control plane performs real ARP in deployment).
	ResolveMAC func(ip packet.IPv4Addr) packet.EtherAddr

	nextCore int
}

// NewStack wires libTOE to a data-path, control plane and host machine.
func NewStack(eng *sim.Engine, toe *core.TOE, plane *ctrl.Plane, machine *host.Machine, localIP packet.IPv4Addr) *Stack {
	return &Stack{
		eng:     eng,
		toe:     toe,
		ctrl:    plane,
		machine: machine,
		localIP: localIP,
		costs:   DefaultCosts(),
	}
}

// Name identifies the stack in experiment output.
func (s *Stack) Name() string { return "FlexTOE" }

// Machine returns the host CPU model.
func (s *Stack) Machine() *host.Machine { return s.machine }

// LocalIP returns the machine's address.
func (s *Stack) LocalIP() packet.IPv4Addr { return s.localIP }

// Costs returns the mutable socket cost profile.
func (s *Stack) Costs() *CostProfile { return &s.costs }

// TOE exposes the data-path (experiments attach XDP programs, read
// counters).
func (s *Stack) TOE() *core.TOE { return s.toe }

// Ctrl exposes the control plane.
func (s *Stack) Ctrl() *ctrl.Plane { return s.ctrl }

// appCore picks the core a new socket's notifications run on
// (per-thread context queues: sockets are distributed round-robin, as
// with TAS/FlexTOE's per-core context queues, §5.1).
func (s *Stack) appCore() *host.Core {
	c := s.machine.Cores[s.nextCore%len(s.machine.Cores)]
	s.nextCore++
	return c
}

// Listen registers an accept handler.
func (s *Stack) Listen(port uint16, accept func(api.Socket)) {
	s.ctrl.Listen(port, func(c *ctrl.Conn) {
		sock := s.newSocket(c)
		accept(sock)
	})
}

// Dial opens a connection.
func (s *Stack) Dial(remote api.Addr, connected func(api.Socket)) {
	mac := packet.EtherAddr{}
	if s.ResolveMAC != nil {
		mac = s.ResolveMAC(remote.IP)
	}
	s.ctrl.Dial(remote.IP, mac, remote.Port, func(c *ctrl.Conn) {
		connected(s.newSocket(c))
	})
}

func (s *Stack) newSocket(c *ctrl.Conn) *Socket {
	sock := &Socket{
		stack:  s,
		conn:   c,
		core:   s.appCore(),
		txFree: c.TxBuf.Size(),
	}
	c.Core.Notify = sock.notify
	return sock
}

// Socket implements api.Socket over FlexTOE context queues.
type Socket struct {
	stack *Stack
	conn  *ctrl.Conn
	core  *host.Core

	txHead uint32 // next append offset (stream position)
	txFree uint32
	rxHead uint32 // next read offset
	avail  uint32 // readable bytes
	closed bool
	finRx  bool

	onReadable func()
	onWritable func()
}

var _ api.Socket = (*Socket)(nil)

// LocalAddr returns the local endpoint.
func (k *Socket) LocalAddr() api.Addr {
	return api.Addr{IP: k.conn.Flow.SrcIP, Port: k.conn.Flow.SrcPort}
}

// RemoteAddr returns the peer endpoint.
func (k *Socket) RemoteAddr() api.Addr {
	return api.Addr{IP: k.conn.Flow.DstIP, Port: k.conn.Flow.DstPort}
}

// Readable returns buffered received bytes.
func (k *Socket) Readable() int { return int(k.avail) }

// TxSpace returns free transmit buffer space.
func (k *Socket) TxSpace() int { return int(k.txFree) }

// OnReadable registers the receive callback.
func (k *Socket) OnReadable(f func()) { k.onReadable = f }

// OnWritable registers the transmit-space callback.
func (k *Socket) OnWritable(f func()) { k.onWritable = f }

// Send appends to the transmit payload buffer and doorbells the NIC.
func (k *Socket) Send(p []byte) int {
	if k.closed {
		return 0
	}
	n := uint32(len(p))
	if n > k.txFree {
		n = k.txFree
	}
	if n == 0 {
		return 0
	}
	k.conn.TxBuf.WriteAt(k.txHead, p[:n])
	k.txHead += n
	k.txFree -= n
	cost := k.stack.costs.SendCycles + int64(float64(n)*k.stack.costs.PerByte)
	k.core.Submit(sim.TaskC(cost), func() {
		k.stack.toe.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: k.conn.ID, Bytes: n})
	})
	return int(n)
}

// Recv copies received bytes out and reopens the receive window.
func (k *Socket) Recv(p []byte) int {
	n := uint32(len(p))
	if n > k.avail {
		n = k.avail
	}
	if n == 0 {
		return 0
	}
	k.conn.RxBuf.ReadAt(k.rxHead, p[:n])
	k.rxHead += n
	k.avail -= n
	cost := k.stack.costs.RecvCycles + int64(float64(n)*k.stack.costs.PerByte)
	k.core.Submit(sim.TaskC(cost), func() {
		k.stack.toe.InjectHC(shm.Desc{Kind: shm.DescRxConsume, Conn: k.conn.ID, Bytes: n})
	})
	return int(n)
}

// Close sends FIN.
func (k *Socket) Close() {
	if k.closed {
		return
	}
	k.closed = true
	k.stack.toe.InjectHC(shm.Desc{Kind: shm.DescFin, Conn: k.conn.ID})
}

// notify handles NIC->host context-queue descriptors on the socket's
// application core (eventfd wakeup + descriptor processing).
func (k *Socket) notify(d shm.Desc) {
	task := sim.TaskC(k.stack.costs.NotifyCycles)
	if !k.core.Busy() && k.stack.costs.WakeupLatency > 0 {
		task = task.Add(0, k.stack.costs.WakeupLatency)
	}
	k.core.Submit(task, func() {
		switch d.Kind {
		case shm.DescRxNotify:
			k.avail += d.Bytes
			if k.onReadable != nil {
				k.onReadable()
			}
		case shm.DescTxFree:
			k.txFree += d.Bytes
			if k.onWritable != nil {
				k.onWritable()
			}
		case shm.DescFinRx:
			k.finRx = true
			if k.onReadable != nil {
				k.onReadable() // EOF signaled via Readable()==0 after drain
			}
		}
	})
}

// FinRx reports whether the peer closed its direction.
func (k *Socket) FinRx() bool { return k.finRx }

// Package libtoe is FlexTOE's application library (§3, Fig. 2): it
// interposes on the POSIX socket API, keeps per-socket payload buffers in
// process memory, and talks to the data-path through per-thread context
// queues — appending transmit data and doorbelling the NIC, and consuming
// receive/free notifications.
//
// Socket operations cost host CPU cycles on the application's core,
// matching the paper's Table 1 accounting (FlexTOE: 0.74 kc of POSIX
// socket work per request that "cannot be eliminated with TCP offload").
package libtoe

import (
	"flextoe/internal/api"
	"flextoe/internal/core"
	"flextoe/internal/ctrl"
	"flextoe/internal/host"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
)

// CostProfile is the per-operation host cycle cost of the socket layer.
type CostProfile struct {
	SendCycles   int64   // per send() call (descriptor + doorbell MMIO)
	RecvCycles   int64   // per recv() call
	NotifyCycles int64   // per context-queue notification processed
	PerByte      float64 // copy cost per byte (app <-> payload buffer)
	// WakeupLatency is the MSI-X -> eventfd -> scheduler path when the
	// application slept waiting for IO (§4 "Driver"). Charged only when
	// the socket's core is idle; busy applications poll.
	WakeupLatency sim.Time
}

// DefaultCosts matches Table 1's FlexTOE socket accounting (~740 cycles
// of POSIX socket work per request-response pair, split across the calls
// involved).
func DefaultCosts() CostProfile {
	return CostProfile{
		SendCycles:    240,
		RecvCycles:    200,
		NotifyCycles:  150,
		PerByte:       0.06,
		WakeupLatency: 3500 * sim.Nanosecond,
	}
}

// Stack implements api.Stack over a FlexTOE data-path and control plane.
type Stack struct {
	eng     *sim.Engine
	toe     *core.TOE
	ctrl    *ctrl.Plane
	machine *host.Machine
	localIP packet.IPv4Addr
	costs   CostProfile

	// ResolveMAC maps a destination IP to its MAC (static ARP; the
	// control plane performs real ARP in deployment).
	ResolveMAC func(ip packet.IPv4Addr) packet.EtherAddr

	nextCore int
}

// NewStack wires libTOE to a data-path, control plane and host machine.
func NewStack(eng *sim.Engine, toe *core.TOE, plane *ctrl.Plane, machine *host.Machine, localIP packet.IPv4Addr) *Stack {
	return &Stack{
		eng:     eng,
		toe:     toe,
		ctrl:    plane,
		machine: machine,
		localIP: localIP,
		costs:   DefaultCosts(),
	}
}

// Name identifies the stack in experiment output.
func (s *Stack) Name() string { return "FlexTOE" }

// Machine returns the host CPU model.
func (s *Stack) Machine() *host.Machine { return s.machine }

// Engine returns the shard engine this stack runs on.
func (s *Stack) Engine() *sim.Engine { return s.eng }

// LocalIP returns the machine's address.
func (s *Stack) LocalIP() packet.IPv4Addr { return s.localIP }

// Costs returns the mutable socket cost profile.
func (s *Stack) Costs() *CostProfile { return &s.costs }

// TOE exposes the data-path (experiments attach XDP programs, read
// counters).
func (s *Stack) TOE() *core.TOE { return s.toe }

// Ctrl exposes the control plane.
func (s *Stack) Ctrl() *ctrl.Plane { return s.ctrl }

// appCore picks the core a new socket's notifications run on
// (per-thread context queues: sockets are distributed round-robin, as
// with TAS/FlexTOE's per-core context queues, §5.1).
func (s *Stack) appCore() *host.Core {
	c := s.machine.Cores[s.nextCore%len(s.machine.Cores)]
	s.nextCore++
	return c
}

// Listen registers an accept handler.
func (s *Stack) Listen(port uint16, accept func(api.Socket)) {
	s.ctrl.Listen(port, func(c *ctrl.Conn) {
		sock := s.newSocket(c)
		accept(sock)
	})
}

// Dial opens a connection.
func (s *Stack) Dial(remote api.Addr, connected func(api.Socket)) {
	mac := packet.EtherAddr{}
	if s.ResolveMAC != nil {
		mac = s.ResolveMAC(remote.IP)
	}
	s.ctrl.Dial(remote.IP, mac, remote.Port, func(c *ctrl.Conn) {
		connected(s.newSocket(c))
	})
}

func (s *Stack) newSocket(c *ctrl.Conn) *Socket {
	sock := &Socket{
		stack:  s,
		conn:   c,
		core:   s.appCore(),
		txFree: c.TxBuf.Size(),
	}
	c.Core.Notify = sock.notify
	return sock
}

// Socket implements api.Socket over FlexTOE context queues. The view
// calls (Peek/Consume, Reserve/Commit) are the native interface: they
// hand the application windows straight into the shared-memory payload
// buffers and cross the host/NIC boundary with descriptors only, so the
// cost model charges descriptor/doorbell cycles but no per-byte copy
// cost — Table 1's "cannot be eliminated with TCP offload" split.
// Send/Recv remain as copy-based compatibility wrappers that add the
// PerByte cost the views avoid.
type Socket struct {
	stack *Stack
	conn  *ctrl.Conn
	core  *host.Core

	txHead uint32 // next append offset (stream position)
	txFree uint32
	rxHead uint32 // next read offset
	avail  uint32 // readable bytes
	closed bool
	finRx  bool

	// Doorbell batching: bytes whose descriptor cost has been charged on
	// the app core but whose context-queue descriptor has not been
	// injected yet. The first completion to run injects the accumulated
	// total, so no closure is allocated per socket call.
	pendTx uint32
	pendRx uint32

	// Pending NIC->host notifications awaiting their charged delivery
	// task (FIFO ring; amortized allocation-free).
	notifQ    []shm.Desc
	notifHead int

	onReadable func()
	onWritable func()
}

var _ api.Socket = (*Socket)(nil)

// LocalAddr returns the local endpoint.
func (k *Socket) LocalAddr() api.Addr {
	return api.Addr{IP: k.conn.Flow.SrcIP, Port: k.conn.Flow.SrcPort}
}

// RemoteAddr returns the peer endpoint.
func (k *Socket) RemoteAddr() api.Addr {
	return api.Addr{IP: k.conn.Flow.DstIP, Port: k.conn.Flow.DstPort}
}

// Readable returns buffered received bytes.
func (k *Socket) Readable() int { return int(k.avail) }

// TxSpace returns free transmit buffer space.
func (k *Socket) TxSpace() int { return int(k.txFree) }

// OnReadable registers the receive callback.
func (k *Socket) OnReadable(f func()) { k.onReadable = f }

// OnWritable registers the transmit-space callback.
func (k *Socket) OnWritable(f func()) { k.onWritable = f }

// Peek returns the readable byte stream as up to two slices of the
// shared-memory RX payload buffer: the zero-copy receive view.
func (k *Socket) Peek() (a, b []byte) {
	return k.conn.RxBuf.Slices(k.rxHead, k.avail)
}

// Consume releases the first n readable bytes and reopens the receive
// window. Only the descriptor cost is charged: the application read the
// bytes in place.
func (k *Socket) Consume(n int) {
	k.consume(n, k.stack.costs.RecvCycles)
}

func (k *Socket) consume(n int, cost int64) {
	if n == 0 {
		return
	}
	if n < 0 || uint32(n) > k.avail {
		panic("libtoe: Consume beyond readable bytes")
	}
	k.rxHead += uint32(n)
	k.avail -= uint32(n)
	k.pendRx += uint32(n)
	k.core.SubmitCall(sim.TaskC(cost), sockRxDoorbell, k)
}

// Reserve returns up to n bytes of free TX payload buffer to stage into,
// starting at the current append position.
func (k *Socket) Reserve(n int) (a, b []byte) {
	if k.closed || n <= 0 {
		return nil, nil
	}
	w := uint32(n)
	if w > k.txFree {
		w = k.txFree
	}
	return k.conn.TxBuf.Slices(k.txHead, w)
}

// Commit publishes the next n staged bytes and doorbells the NIC. Only
// the descriptor + doorbell cost is charged: the payload already sits in
// the shared-memory buffer the data-path DMAs from.
func (k *Socket) Commit(n int) {
	k.commit(n, k.stack.costs.SendCycles)
}

func (k *Socket) commit(n int, cost int64) {
	if k.closed || n == 0 {
		return
	}
	if n < 0 || uint32(n) > k.txFree {
		panic("libtoe: Commit beyond transmit buffer space")
	}
	k.txHead += uint32(n)
	k.txFree -= uint32(n)
	k.pendTx += uint32(n)
	k.core.SubmitCall(sim.TaskC(cost), sockTxDoorbell, k)
}

// sockTxDoorbell / sockRxDoorbell run when a socket call's charged cost
// has been paid: they inject the accumulated descriptor (batching
// doorbells when several calls' costs were in flight at once).
func sockTxDoorbell(a any) {
	k := a.(*Socket)
	if n := k.pendTx; n > 0 {
		k.pendTx = 0
		k.stack.toe.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: k.conn.ID, Bytes: n})
	}
}

func sockRxDoorbell(a any) {
	k := a.(*Socket)
	if n := k.pendRx; n > 0 {
		k.pendRx = 0
		k.stack.toe.InjectHC(shm.Desc{Kind: shm.DescRxConsume, Conn: k.conn.ID, Bytes: n})
	}
}

// Send appends to the transmit payload buffer and doorbells the NIC: the
// copy-based compatibility wrapper over Reserve/Commit, paying the
// per-byte copy cost the view path avoids.
func (k *Socket) Send(p []byte) int {
	a, b := k.Reserve(len(p))
	n := copy(a, p)
	n += copy(b, p[n:])
	if n == 0 {
		return 0
	}
	k.commit(n, k.stack.costs.SendCycles+int64(float64(n)*k.stack.costs.PerByte))
	return n
}

// Recv copies received bytes out and reopens the receive window: the
// copy-based compatibility wrapper over Peek/Consume.
func (k *Socket) Recv(p []byte) int {
	a, b := k.Peek()
	n := copy(p, a)
	if n < len(p) {
		n += copy(p[n:], b)
	}
	if n == 0 {
		return 0
	}
	k.consume(n, k.stack.costs.RecvCycles+int64(float64(n)*k.stack.costs.PerByte))
	return n
}

// Close sends FIN.
func (k *Socket) Close() {
	if k.closed {
		return
	}
	k.closed = true
	k.stack.toe.InjectHC(shm.Desc{Kind: shm.DescFin, Conn: k.conn.ID})
}

// notify handles NIC->host context-queue descriptors on the socket's
// application core (eventfd wakeup + descriptor processing). The
// descriptor is queued on the socket and consumed by sockNotify when the
// delivery cost has been paid — one FIFO ring per socket, no closure per
// notification.
func (k *Socket) notify(d shm.Desc) {
	task := sim.TaskC(k.stack.costs.NotifyCycles)
	if !k.core.Busy() && k.stack.costs.WakeupLatency > 0 {
		task = task.Add(0, k.stack.costs.WakeupLatency)
	}
	k.notifQ = append(k.notifQ, d)
	k.core.SubmitCall(task, sockNotify, k)
}

// sockNotify processes the next queued context-queue descriptor (see
// host.Core.SubmitCall: tasks complete in FIFO order per core, so the
// queue head always matches the completing task).
func sockNotify(a any) {
	k := a.(*Socket)
	d := k.notifQ[k.notifHead]
	k.notifQ, k.notifHead = shm.PopRing(k.notifQ, k.notifHead)
	switch d.Kind {
	case shm.DescRxNotify:
		k.avail += d.Bytes
		if k.onReadable != nil {
			k.onReadable()
		}
	case shm.DescTxFree:
		k.txFree += d.Bytes
		if k.onWritable != nil {
			k.onWritable()
		}
	case shm.DescFinRx:
		k.finRx = true
		if k.onReadable != nil {
			k.onReadable() // EOF signaled via Readable()==0 after drain
		}
	}
}

// FinRx reports whether the peer closed its direction.
func (k *Socket) FinRx() bool { return k.finRx }

package libtoe

import (
	"bytes"
	"testing"

	"flextoe/internal/api"
	"flextoe/internal/core"
	"flextoe/internal/ctrl"
	"flextoe/internal/host"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
)

func buildStacks(t *testing.T) (*sim.Engine, *Stack, *Stack) {
	t.Helper()
	eng := sim.New()
	n := netsim.NewNetwork(eng, netsim.SwitchConfig{})
	macA := packet.MAC(2, 0, 0, 0, 0, 1)
	macB := packet.MAC(2, 0, 0, 0, 0, 2)
	rate := netsim.GbpsToBytesPerSec(40)
	ifA := n.AttachHost("a", macA, rate, 100*sim.Nanosecond)
	ifB := n.AttachHost("b", macB, rate, 100*sim.Nanosecond)
	toeA := core.New(eng, core.AgilioCX40Config(), ifA)
	toeB := core.New(eng, core.AgilioCX40Config(), ifB)
	ipA, ipB := packet.IP(10, 0, 0, 1), packet.IP(10, 0, 0, 2)
	ctrlA := ctrl.New(eng, toeA, ctrl.Config{LocalIP: ipA, LocalMAC: macA, Seed: 1})
	ctrlB := ctrl.New(eng, toeB, ctrl.Config{LocalIP: ipB, LocalMAC: macB, Seed: 2})
	sa := NewStack(eng, toeA, ctrlA, host.NewMachine(eng, "a", 2, 2e9), ipA)
	sb := NewStack(eng, toeB, ctrlB, host.NewMachine(eng, "b", 2, 2e9), ipB)
	resolve := func(ip packet.IPv4Addr) packet.EtherAddr {
		if ip == ipA {
			return macA
		}
		return macB
	}
	sa.ResolveMAC = resolve
	sb.ResolveMAC = resolve
	return eng, sa, sb
}

func TestSocketSendRecv(t *testing.T) {
	eng, sa, sb := buildStacks(t)
	var got []byte
	sb.Listen(80, func(sock api.Socket) {
		buf := make([]byte, 1024)
		sock.OnReadable(func() {
			for {
				n := sock.Recv(buf)
				if n == 0 {
					return
				}
				got = append(got, buf[:n]...)
			}
		})
	})
	msg := []byte("libtoe sockets over the offloaded data-path")
	eng.At(0, func() {
		sa.Dial(api.Addr{IP: sb.LocalIP(), Port: 80}, func(sock api.Socket) {
			if n := sock.Send(msg); n != len(msg) {
				t.Errorf("Send = %d", n)
			}
		})
	})
	eng.RunUntil(10 * sim.Millisecond)
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestSocketAddrs(t *testing.T) {
	eng, sa, sb := buildStacks(t)
	var server, client api.Socket
	sb.Listen(80, func(s api.Socket) { server = s })
	eng.At(0, func() {
		sa.Dial(api.Addr{IP: sb.LocalIP(), Port: 80}, func(s api.Socket) { client = s })
	})
	eng.RunUntil(5 * sim.Millisecond)
	if server == nil || client == nil {
		t.Fatal("connection not established")
	}
	if server.LocalAddr().Port != 80 {
		t.Fatalf("server local = %+v", server.LocalAddr())
	}
	if client.RemoteAddr().Port != 80 || client.RemoteAddr().IP != sb.LocalIP() {
		t.Fatalf("client remote = %+v", client.RemoteAddr())
	}
	if client.LocalAddr().Port != server.RemoteAddr().Port {
		t.Fatal("port mismatch between the two views")
	}
}

func TestSocketBackpressure(t *testing.T) {
	// Sends beyond the TX buffer return partial counts; space returns as
	// acks free it.
	eng, sa, sb := buildStacks(t)
	received := 0
	sb.Listen(80, func(sock api.Socket) {
		buf := make([]byte, 65536)
		sock.OnReadable(func() {
			for {
				n := sock.Recv(buf)
				if n == 0 {
					return
				}
				received += n
			}
		})
	})
	total := 0
	const want = 300000 // several times the 64KB socket buffer
	eng.At(0, func() {
		sa.Dial(api.Addr{IP: sb.LocalIP(), Port: 80}, func(sock api.Socket) {
			chunk := make([]byte, 16384)
			push := func() {
				for total < want {
					n := sock.Send(chunk[:min(len(chunk), want-total)])
					if n == 0 {
						return // buffer full: resume on writable
					}
					total += n
				}
			}
			sock.OnWritable(push)
			push()
			if total >= want {
				t.Error("entire transfer fit the socket buffer; backpressure untested")
			}
		})
	})
	eng.RunUntil(100 * sim.Millisecond)
	if received != want {
		t.Fatalf("received %d/%d", received, want)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSocketClosePropagatesFIN(t *testing.T) {
	eng, sa, sb := buildStacks(t)
	var serverSock *Socket
	sb.Listen(80, func(sock api.Socket) { serverSock = sock.(*Socket) })
	eng.At(0, func() {
		sa.Dial(api.Addr{IP: sb.LocalIP(), Port: 80}, func(sock api.Socket) {
			sock.Send([]byte("bye"))
			sock.Close()
		})
	})
	eng.RunUntil(10 * sim.Millisecond)
	if serverSock == nil {
		t.Fatal("no server socket")
	}
	if !serverSock.FinRx() {
		t.Fatal("peer FIN not observed")
	}
	buf := make([]byte, 16)
	if n := serverSock.Recv(buf); n != 3 || string(buf[:3]) != "bye" {
		t.Fatalf("data before FIN lost: %q", buf[:n])
	}
}

func TestNotifyWakeupOnlyWhenIdle(t *testing.T) {
	// The wakeup stall applies on an idle core but not when the core is
	// already busy (polling mode under load).
	eng, sa, _ := buildStacks(t)
	costs := sa.Costs()
	if costs.WakeupLatency == 0 {
		t.Fatal("default costs must include a wakeup latency")
	}
	_ = eng
}

// Package ctrl implements FlexTOE's control plane (§3, §D): connection
// control (the TCP handshake state machine, port and buffer allocation,
// data-path state installation), retransmission timeouts, and the
// congestion-control framework with DCTCP and TIMELY policies.
//
// The control plane executes on a host core (or SmartNIC control CPU) in
// its own protection domain. It touches the data-path only through the
// narrow MMIO/queue interface core.TOE exposes: AddConnection,
// InjectHC(retransmit), SetCongestionWindow / SetRateInterval, and
// ReadStats.
package ctrl

import (
	"flextoe/internal/core"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/tcpseg"
)

// CCAlgo selects the congestion-control policy.
type CCAlgo int

const (
	// CCNone disables congestion control (Table 4's "off" rows).
	CCNone CCAlgo = iota
	// CCDCTCP is the default policy (§5 "DCTCP is our default").
	CCDCTCP
	// CCTimely is the RTT-gradient policy (§D).
	CCTimely
)

// Config parameterizes the control plane.
type Config struct {
	LocalIP  packet.IPv4Addr
	LocalMAC packet.EtherAddr
	BufSize  uint32 // per-socket payload buffer size (power of two)

	CC          CCAlgo
	CCInterval  sim.Time // control loop period (per-RTT in the paper)
	MinRTO      sim.Time
	RTOScan     sim.Time
	DCTCPGainG  float64 // alpha EWMA gain
	InitialCWnd uint32  // bytes; 0 = 10*MSS
	MaxCWnd     uint32  // bytes; 0 = buffer size

	Seed uint64
}

// Plane is one machine's control plane.
type Plane struct {
	eng *sim.Engine
	toe *core.TOE
	cfg Config
	rng *stats.RNG

	listeners map[uint16]func(*Conn)
	pending   map[packet.Flow]*pendingConn
	conns     map[uint32]*ccState
	// scan is the deterministic iteration order for the periodic loops
	// (establishment order). Iterating the conns map instead would let Go's
	// randomized map order reshuffle retransmit/window-programming events
	// between otherwise identical runs, breaking bit-identical replay.
	scan     []*ccState
	nextPort uint16

	// Statistics.
	Established      uint64
	Timeouts         uint64
	ZeroWindowProbes uint64
}

// Conn is the control plane's view of an established connection, handed
// to accept/connect callbacks (libTOE wraps it into a Socket).
type Conn struct {
	ID    uint32
	Core  *core.Conn
	Flow  packet.Flow
	TxBuf *shm.PayloadBuf
	RxBuf *shm.PayloadBuf
}

type pendingConn struct {
	flow      packet.Flow
	peerMAC   packet.EtherAddr
	iss, irs  uint32
	active    bool // we sent the SYN
	sackOK    bool // both sides agreed on SACK-permitted
	connected func(*Conn)
}

type ccState struct {
	conn      *core.Conn
	cwnd      uint32
	alpha     float64 // DCTCP
	rate      float64 // TIMELY bytes/s
	prevRTT   uint32
	lastAcked sim.Time // last observed forward progress
	srtt      sim.Time
	rto       sim.Time
	backoff   int

	// Persist timer (zero-window probing, RFC 9293 §3.8.6.1).
	persistAt      sim.Time // next probe deadline (0 = timer off)
	persistBackoff int

	// scanIdx is this connection's slot in Plane.scan (O(1) removal).
	scanIdx int

	// seenUna is SND.UNA at the last rtoScan, so the scan itself detects
	// forward progress. Without this, a run with congestion control off
	// (ccLoop disabled) never refreshes lastAcked and the RTO fires
	// spuriously every interval of a long transfer, go-back-N-resending
	// data that was never lost.
	seenUna uint32
}

// New attaches a control plane to a data-path.
func New(eng *sim.Engine, toe *core.TOE, cfg Config) *Plane {
	if cfg.BufSize == 0 {
		cfg.BufSize = 65536
	}
	if cfg.CCInterval == 0 {
		cfg.CCInterval = 100 * sim.Microsecond
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = 2 * sim.Millisecond
	}
	if cfg.RTOScan == 0 {
		cfg.RTOScan = 500 * sim.Microsecond
	}
	if cfg.DCTCPGainG == 0 {
		cfg.DCTCPGainG = 1.0 / 16
	}
	if cfg.InitialCWnd == 0 {
		cfg.InitialCWnd = 10 * 1448
	}
	if cfg.MaxCWnd == 0 {
		cfg.MaxCWnd = cfg.BufSize
	}
	p := &Plane{
		eng:       eng,
		toe:       toe,
		cfg:       cfg,
		rng:       stats.NewRNG(cfg.Seed ^ uint64(cfg.LocalIP)),
		listeners: make(map[uint16]func(*Conn)),
		pending:   make(map[packet.Flow]*pendingConn),
		conns:     make(map[uint32]*ccState),
		nextPort:  20000,
	}
	toe.ControlRx = p.handleSegment
	eng.EveryCall(cfg.RTOScan, cfg.RTOScan, planeRTOScan, p)
	if cfg.CC != CCNone {
		eng.EveryCall(cfg.CCInterval, cfg.CCInterval, planeCCLoop, p)
	}
	return p
}

// planeRTOScan / planeCCLoop adapt the periodic scans to the EveryCall
// form (long-lived callbacks, the plane as the argument).
func planeRTOScan(a any) bool { a.(*Plane).rtoScan(); return true }
func planeCCLoop(a any) bool  { a.(*Plane).ccLoop(); return true }

// Listen registers an accept callback for a port.
func (p *Plane) Listen(port uint16, accept func(*Conn)) {
	p.listeners[port] = accept
}

// sackEnabled reports whether the data-path is configured to negotiate
// SACK on new connections.
func (p *Plane) sackEnabled() bool { return p.toe.Config().EnableSACK }

// Dial initiates a connection to a remote endpoint.
func (p *Plane) Dial(remoteIP packet.IPv4Addr, remoteMAC packet.EtherAddr, remotePort uint16, connected func(*Conn)) {
	p.nextPort++
	flow := packet.Flow{SrcIP: p.cfg.LocalIP, DstIP: remoteIP, SrcPort: p.nextPort, DstPort: remotePort}
	iss := uint32(p.rng.Uint64())
	pc := &pendingConn{flow: flow, peerMAC: remoteMAC, iss: iss, active: true, connected: connected}
	p.pending[flow] = pc
	p.sendControl(flow, remoteMAC, packet.FlagSYN, iss, 0, p.sackEnabled())
}

// sendControl emits a handshake segment directly (the control plane's own
// transmit path; these bypass the offloaded data-path by design).
// sackPerm offers/confirms SACK-permitted; only meaningful on SYNs.
func (p *Plane) sendControl(flow packet.Flow, peerMAC packet.EtherAddr, flags uint8, seq, ack uint32, sackPerm bool) {
	pkt := &packet.Packet{
		Eth: packet.Ethernet{Src: p.cfg.LocalMAC, Dst: peerMAC, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
			Src: flow.SrcIP, Dst: flow.DstIP,
		},
		TCP: packet.TCP{
			SrcPort: flow.SrcPort, DstPort: flow.DstPort,
			Seq: seq, Ack: ack, Flags: flags,
			Window: uint16(p.cfg.BufSize >> tcpseg.WindowScale),
			MSS:    1448, WScale: tcpseg.WindowScale, SACKPerm: sackPerm,
		},
	}
	p.toe.SendControlFrame(pkt)
}

// handleSegment receives segments the data-path filtered to the control
// plane: SYN/SYN-ACK/RST and segments of unknown flows.
func (p *Plane) handleSegment(pkt *packet.Packet) {
	flow := pkt.Flow().Reverse() // local view
	tcp := &pkt.TCP
	switch {
	case tcp.HasFlag(packet.FlagSYN | packet.FlagACK):
		pc, ok := p.pending[flow]
		if !ok || !pc.active {
			return
		}
		pc.irs = tcp.Seq + 1
		// The peer echoes SACK-permitted only if it accepts our offer.
		pc.sackOK = tcp.SACKPerm && p.sackEnabled()
		// Complete the handshake.
		p.sendControl(flow, pc.peerMAC, packet.FlagACK, pc.iss+1, pc.irs, false)
		p.establish(pc, tcp.Window)
	case tcp.HasFlag(packet.FlagSYN):
		accept, ok := p.listeners[pkt.TCP.DstPort]
		if !ok {
			p.sendControl(flow, pkt.Eth.Src, packet.FlagRST, 0, tcp.Seq+1, false)
			return
		}
		iss := uint32(p.rng.Uint64())
		pc := &pendingConn{
			flow: flow, peerMAC: pkt.Eth.Src,
			iss: iss, irs: tcp.Seq + 1,
			sackOK:    tcp.SACKPerm && p.sackEnabled(),
			connected: func(c *Conn) { accept(c) },
		}
		p.pending[flow] = pc
		p.sendControl(flow, pc.peerMAC, packet.FlagSYN|packet.FlagACK, iss, pc.irs, pc.sackOK)
	case tcp.HasFlag(packet.FlagACK):
		// Final handshake ACK for a passive open.
		if pc, ok := p.pending[flow]; ok && !pc.active {
			p.establish(pc, tcp.Window)
		}
		// Anything else (stale data for removed connections) is dropped.
	case tcp.HasFlag(packet.FlagRST):
		delete(p.pending, flow)
	}
}

// establish installs the connection in the data-path and fires the
// callback (§D: "allocates host payload buffers and a unique connection
// index for the data-path ... then sets up connection state at the index
// location").
func (p *Plane) establish(pc *pendingConn, peerWin uint16) {
	delete(p.pending, pc.flow)
	txBuf := shm.NewPayloadBuf(p.cfg.BufSize)
	rxBuf := shm.NewPayloadBuf(p.cfg.BufSize)
	c := p.toe.AddConnection(pc.flow, pc.peerMAC, pc.iss+1, pc.irs, txBuf, rxBuf, 0, nil)
	c.Proto.RemoteWin = peerWin
	c.Proto.SetSACKPerm(pc.sackOK)
	cc := &ccState{
		conn:      c,
		cwnd:      p.cfg.InitialCWnd,
		rate:      1e9,
		lastAcked: p.eng.Now(),
		rto:       p.cfg.MinRTO,
	}
	p.conns[c.ID] = cc
	cc.scanIdx = len(p.scan)
	p.scan = append(p.scan, cc)
	if p.cfg.CC != CCNone {
		p.toe.SetCongestionWindow(c.ID, cc.cwnd)
	}
	p.Established++
	if pc.connected != nil {
		//flexvet:hotclosure connection establishment runs once per connection, not per event
		p.eng.Immediately(func() {
			pc.connected(&Conn{ID: c.ID, Core: c, Flow: pc.flow, TxBuf: txBuf, RxBuf: rxBuf})
		})
	}
}

// Close tears down a connection: FIN via the data-path, state removal
// after the exchange drains.
func (p *Plane) Close(id uint32) {
	p.toe.InjectHC(shm.Desc{Kind: shm.DescFin, Conn: id})
}

// Remove deletes data-path state (after FIN exchange or on abort).
func (p *Plane) Remove(id uint32) {
	// O(1) swap-remove via the stored index: the resulting order differs
	// from establishment order but is still a pure function of the
	// connection history, so reruns stay bit-identical.
	if cc := p.conns[id]; cc != nil {
		last := len(p.scan) - 1
		moved := p.scan[last]
		p.scan[cc.scanIdx] = moved
		moved.scanIdx = cc.scanIdx
		p.scan[last] = nil
		p.scan = p.scan[:last]
	}
	delete(p.conns, id)
	p.toe.RemoveConnection(id)
}

// rtoScan fires go-back-N retransmissions for connections with
// outstanding data and no forward progress within their RTO (§3.1.1:
// "Retransmissions in response to timeouts are triggered by the
// control-plane"; the retransmit HC op also clears the SACK scoreboard,
// RFC 2018's reneging rule), and runs the sender-side persist timer
// (RFC 9293 §3.8.6.1) for connections stalled against a zero window.
func (p *Plane) rtoScan() {
	now := p.eng.Now()
	for _, cc := range p.scan {
		id := cc.conn.ID
		c := p.toe.Connection(id)
		if c == nil {
			continue
		}
		if una := c.Proto.UnackedBase(); una != cc.seenUna {
			// The cumulative ack moved since the last scan: forward
			// progress, regardless of whether the CC loop is polling.
			cc.seenUna = una
			cc.lastAcked = now
			cc.backoff = 0
		}
		outstanding := c.Proto.TxSent > 0 || (c.Proto.FinSent() && !c.Proto.FinAcked())
		if !outstanding {
			cc.lastAcked = now
			cc.backoff = 0
			p.persistScan(now, cc, c)
			continue
		}
		cc.persistAt = 0
		cc.persistBackoff = 0
		rto := cc.rto << uint(cc.backoff)
		if now-cc.lastAcked >= rto {
			p.Timeouts++
			p.toe.InjectHC(shm.Desc{Kind: shm.DescRetransmit, Conn: id})
			cc.lastAcked = now
			if cc.backoff < 6 {
				cc.backoff++
			}
			if p.cfg.CC == CCDCTCP {
				// Timeout: collapse to one segment, slow-start again.
				cc.cwnd = 2 * 1448
				p.toe.SetCongestionWindow(id, cc.cwnd)
			}
		}
	}
}

// persistScan drives the zero-window persist timer: data waits in the
// transmit buffer, nothing is in flight, and the peer's last advertised
// window is zero. A lost window-update ACK would stall the connection
// forever (the receiver has no reason to resend it); the sender must
// probe. The probe re-sends the single byte preceding SND.NXT — already
// acknowledged, so the receiver discards it and replies with an ACK
// carrying its current window.
func (p *Plane) persistScan(now sim.Time, cc *ccState, c *core.Conn) {
	if c.Proto.TxAvail == 0 || c.Proto.RemoteWin != 0 {
		cc.persistAt = 0
		cc.persistBackoff = 0
		return
	}
	if cc.persistAt == 0 {
		cc.persistAt = now + cc.rto
		return
	}
	if now < cc.persistAt {
		return
	}
	p.ZeroWindowProbes++
	p.sendZeroWindowProbe(c)
	if cc.persistBackoff < 6 {
		cc.persistBackoff++
	}
	cc.persistAt = now + (cc.rto << uint(cc.persistBackoff))
}

// sendZeroWindowProbe emits the persist probe via the control plane's own
// transmit path (probes are timer-driven control actions, like timeout
// retransmissions). Sequence SND.NXT-1 with one byte of already-delivered
// payload: always outside the receiver's window, always re-ACKed.
func (p *Plane) sendZeroWindowProbe(c *core.Conn) {
	st := &c.Proto
	payload := make([]byte, 1)
	if c.Post.TxSize > 0 {
		c.TxBuf.ReadAt((st.TxPos-1)&(c.Post.TxSize-1), payload)
	}
	pkt := &packet.Packet{
		Eth: packet.Ethernet{Src: p.cfg.LocalMAC, Dst: c.Pre.PeerMAC, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
			Src: c.Pre.LocalIP, Dst: c.Pre.PeerIP,
		},
		TCP: packet.TCP{
			SrcPort: c.Pre.LocalPort, DstPort: c.Pre.RemotePort,
			Seq: st.Seq - 1, Ack: st.Ack, Flags: packet.FlagACK,
			Window: st.LocalWindow(), WScale: -1,
		},
		Payload: payload,
	}
	p.toe.SendControlFrame(pkt)
}

// ccLoop runs the periodic congestion-control iteration (§D): read
// per-flow statistics from the data-path, compute a new window or rate,
// and program it back.
func (p *Plane) ccLoop() {
	for _, cc := range p.scan {
		id := cc.conn.ID
		st := p.toe.ReadStats(id)
		if st.AckedBytes > 0 {
			cc.lastAcked = p.eng.Now()
			cc.backoff = 0
		}
		if st.RTTMicros > 0 {
			rtt := sim.Time(st.RTTMicros) * sim.Microsecond
			if cc.srtt == 0 {
				cc.srtt = rtt
			} else {
				cc.srtt += (rtt - cc.srtt) / 8
			}
			if r := 4 * cc.srtt; r > p.cfg.MinRTO {
				cc.rto = r
			} else {
				cc.rto = p.cfg.MinRTO
			}
		}
		switch p.cfg.CC {
		case CCDCTCP:
			p.dctcp(id, cc, st)
		case CCTimely:
			p.timely(id, cc, st)
		}
	}
}

// dctcp implements DCTCP [1]: alpha tracks the EWMA fraction of
// ECN-marked bytes; marked windows shrink by alpha/2, clean ones grow
// additively.
func (p *Plane) dctcp(id uint32, cc *ccState, st core.ConnStats) {
	if st.AckedBytes == 0 {
		return
	}
	frac := float64(st.ECNBytes) / float64(st.AckedBytes)
	g := p.cfg.DCTCPGainG
	cc.alpha = (1-g)*cc.alpha + g*frac
	if st.ECNBytes > 0 {
		cc.cwnd = uint32(float64(cc.cwnd) * (1 - cc.alpha/2))
	} else {
		cc.cwnd += 1448 // additive increase per control interval
	}
	if st.FastRetx > 0 {
		cc.cwnd /= 2
	}
	if cc.cwnd < 2*1448 {
		cc.cwnd = 2 * 1448
	}
	if cc.cwnd > p.cfg.MaxCWnd {
		cc.cwnd = p.cfg.MaxCWnd
	}
	p.toe.SetCongestionWindow(id, cc.cwnd)
}

// TIMELY constants [34], scaled for the simulated fabric.
const (
	timelyTLow    = 30 * sim.Microsecond
	timelyTHigh   = 500 * sim.Microsecond
	timelyAddStep = 20e6 // bytes/s additive increment
	timelyBeta    = 0.8
)

// timely implements TIMELY: RTT-gradient rate control, programmed into
// the data-path as a division-free pacing interval.
func (p *Plane) timely(id uint32, cc *ccState, st core.ConnStats) {
	if st.RTTMicros == 0 {
		return
	}
	rtt := st.RTTMicros
	grad := float64(int32(rtt-cc.prevRTT)) / float64(timelyTLow/sim.Microsecond)
	cc.prevRTT = rtt
	rttT := sim.Time(rtt) * sim.Microsecond
	switch {
	case rttT < timelyTLow:
		cc.rate += timelyAddStep
	case rttT > timelyTHigh:
		cc.rate *= 1 - timelyBeta*(1-float64(timelyTHigh)/float64(rttT))
	case grad <= 0:
		cc.rate += timelyAddStep
	default:
		cc.rate *= 1 - timelyBeta*grad*0.1
	}
	if cc.rate < 1e6 {
		cc.rate = 1e6
	}
	if cc.rate > 5e9 {
		cc.rate = 5e9
	}
	interval := sim.Time(1e12 / cc.rate)
	p.toe.SetRateInterval(id, interval)
	p.toe.SetCongestionWindow(id, 0) // rate-based: no window clamp
}

// CWnd exposes a connection's current congestion window (tests,
// experiments).
func (p *Plane) CWnd(id uint32) uint32 {
	if cc := p.conns[id]; cc != nil {
		return cc.cwnd
	}
	return 0
}

// Package ctrl implements FlexTOE's control plane (§3, §D): connection
// control (the TCP handshake state machine, port and buffer allocation,
// data-path state installation), retransmission timeouts, and the
// congestion-control framework with DCTCP and TIMELY policies.
//
// The control plane executes on a host core (or SmartNIC control CPU) in
// its own protection domain. It touches the data-path only through the
// narrow MMIO/queue interface core.TOE exposes: AddConnection,
// InjectHC(retransmit), SetCongestionWindow / SetRateInterval, and
// ReadStats.
//
// Timer architecture (doc.go "Connection state budget"): there is no
// periodic full-table scan. Each connection's RTO/persist/teardown
// deadline and its congestion-control poll are individual timing-wheel
// events carried by pooled connTimer objects, armed when the data-path
// reports the connection may need timer service (core.TOE.TimerKick) and
// disarmed when it goes idle. Timer cost therefore scales with *active*
// connections; a million idle flows schedule nothing.
package ctrl

import (
	"flextoe/internal/core"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/tcpseg"
)

// CCAlgo selects the congestion-control policy.
type CCAlgo int

const (
	// CCNone disables congestion control (Table 4's "off" rows).
	CCNone CCAlgo = iota
	// CCDCTCP is the default policy (§5 "DCTCP is our default").
	CCDCTCP
	// CCTimely is the RTT-gradient policy (§D).
	CCTimely
)

// Config parameterizes the control plane.
type Config struct {
	LocalIP  packet.IPv4Addr
	LocalMAC packet.EtherAddr
	BufSize  uint32 // per-socket payload buffer size (power of two)

	CC          CCAlgo
	CCInterval  sim.Time // per-connection CC poll period while active
	MinRTO      sim.Time
	DCTCPGainG  float64 // alpha EWMA gain
	InitialCWnd uint32  // bytes; 0 = 10*MSS
	MaxCWnd     uint32  // bytes; 0 = buffer size

	// ListenBacklog bounds half-open (SYN-received) connections per
	// listener; SYNs beyond it are dropped silently, as a SYN-flooded
	// host would (no RST — the legitimate peer retries, the flood
	// doesn't get an amplifier). 0 = 128.
	ListenBacklog int
	// AcceptRate, when > 0, limits accepted SYNs per second per
	// listener (token bucket, burst 1): connection-setup admission
	// control for the storm experiments.
	AcceptRate float64
	// HandshakeTimeout expires half-open connections (both passive
	// SYN-received and active SYN-sent) so floods and lost handshakes
	// don't pin state forever. 0 = 50ms.
	HandshakeTimeout sim.Time

	Seed uint64
}

// Plane is one machine's control plane.
type Plane struct {
	eng *sim.Engine
	toe *core.TOE
	cfg Config
	rng *stats.RNG

	listeners map[uint16]*listener
	pending   map[packet.Flow]*pendingConn

	// ccs is the dense per-slot control state, indexed by the data-path
	// connection id (core reuses slot ids, so this array never leaks).
	// scan lists live ids in establishment order — the deterministic
	// iteration the adaptive-OOO controller and experiments use;
	// iterating a map here would let Go's randomized order reshuffle
	// events between identical runs.
	ccs  []ccState
	scan []uint32

	// timerFree recycles connTimer carriers (pooled per plane;
	// steady-state timer arming is allocation-free).
	timerFree shm.Freelist[connTimer]

	nextPort uint16

	// Adaptive OOOCap controller state (core.Config.AdaptiveOOO).
	oooCap  uint8
	oooPrev [tcpseg.MaxOOOIntervals + 1]uint64

	// Statistics.
	Established      uint64
	Timeouts         uint64
	ZeroWindowProbes uint64
	SYNDrops         uint64 // SYNs dropped by backlog or accept-rate limits
	BacklogOverflows uint64 // SYNs dropped: listener backlog full
	AcceptRateDrops  uint64 // SYNs dropped: accept-rate token bucket empty
	HandshakeExpires uint64 // half-open connections reaped by timeout
}

// Conn is the control plane's view of an established connection, handed
// to accept/connect callbacks (libTOE wraps it into a Socket).
type Conn struct {
	ID    uint32
	Core  *core.Conn
	Flow  packet.Flow
	TxBuf *shm.PayloadBuf
	RxBuf *shm.PayloadBuf
}

// listener is one bound port: the accept callback plus half-open
// accounting for the backlog and accept-rate limits.
type listener struct {
	accept   func(*Conn)
	pendingN int      // half-open connections charged to this listener
	tokens   float64  // accept-rate bucket (capacity 1)
	lastFill sim.Time // last token refill
}

// pendingConn is a half-open connection. It doubles as its own
// handshake-timeout timer carrier: the expiry event fires with the
// pendingConn as argument and checks it is still the registered entry.
type pendingConn struct {
	p         *Plane
	lis       *listener // passive opens: the charged listener
	flow      packet.Flow
	peerMAC   packet.EtherAddr
	iss, irs  uint32
	active    bool // we sent the SYN
	sackOK    bool // both sides agreed on SACK-permitted
	connected func(*Conn)
}

// ccState is the per-connection control state. Slots are reused with the
// data-path connection slab; epoch invalidates timer carriers armed for
// a previous occupant of the slot.
type ccState struct {
	epoch    uint32
	live     bool
	rtoArmed bool // an RTO/persist/teardown timer carrier is in flight
	ccArmed  bool // a CC poll carrier is in flight
	ccIdle   int  // consecutive CC polls with no activity

	cwnd      uint32
	alpha     float64 // DCTCP
	rate      float64 // TIMELY bytes/s
	prevRTT   uint32
	lastAcked sim.Time // last observed forward progress
	srtt      sim.Time
	rto       sim.Time
	backoff   int

	// Persist timer (zero-window probing, RFC 9293 §3.8.6.1).
	persistAt      sim.Time // next probe deadline (0 = timer off)
	persistBackoff int

	// lingerAt is the teardown deadline after full close (0 = not
	// lingering); when it passes, the slot is reclaimed.
	lingerAt sim.Time

	// scanIdx is this connection's slot in Plane.scan (O(1) removal).
	scanIdx int

	// seenUna is SND.UNA at the last timer fire, so the timer itself
	// detects forward progress. Without this, a run with congestion
	// control off (no CC poll) never refreshes lastAcked and the RTO
	// fires spuriously every interval of a long transfer,
	// go-back-N-resending data that was never lost.
	seenUna uint32
}

// Timer kinds.
const (
	timerRTO uint8 = iota // RTO + persist + teardown lifecycle
	timerCC               // congestion-control poll
)

// ccIdleLimit disarms the CC poll after this many consecutive quiet
// polls (the connection went idle; the next data-path kick re-arms).
const ccIdleLimit = 8

// oooAdaptPeriod is the adaptive-OOOCap controller interval.
const oooAdaptPeriod = 10 * sim.Millisecond

// connTimer carries one armed per-connection timer through the timing
// wheel (pooled; see Plane.getTimer). kind selects the handler; epoch
// guards against slot reuse between arming and firing.
type connTimer struct {
	p     *Plane
	id    uint32
	epoch uint32
	kind  uint8
}

// New attaches a control plane to a data-path.
func New(eng *sim.Engine, toe *core.TOE, cfg Config) *Plane {
	if cfg.BufSize == 0 {
		cfg.BufSize = 65536
	}
	if cfg.CCInterval == 0 {
		cfg.CCInterval = 100 * sim.Microsecond
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = 2 * sim.Millisecond
	}
	if cfg.DCTCPGainG == 0 {
		cfg.DCTCPGainG = 1.0 / 16
	}
	if cfg.InitialCWnd == 0 {
		cfg.InitialCWnd = 10 * 1448
	}
	if cfg.MaxCWnd == 0 {
		cfg.MaxCWnd = cfg.BufSize
	}
	if cfg.ListenBacklog == 0 {
		cfg.ListenBacklog = 128
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 50 * sim.Millisecond
	}
	p := &Plane{
		eng:       eng,
		toe:       toe,
		cfg:       cfg,
		rng:       stats.NewRNG(cfg.Seed ^ uint64(cfg.LocalIP)),
		listeners: make(map[uint16]*listener),
		pending:   make(map[packet.Flow]*pendingConn),
		nextPort:  20000,
	}
	toe.ControlRx = p.handleSegment
	toe.TimerKick = p.timerKick
	if tc := toe.Config(); tc.AdaptiveOOO {
		p.oooCap = uint8(tc.OOOIntervals)
		if p.oooCap == 0 {
			p.oooCap = 1
		}
		eng.EveryCall(oooAdaptPeriod, oooAdaptPeriod, planeAdaptOOO, p)
	}
	return p
}

// planeAdaptOOO adapts the controller to the EveryCall form.
func planeAdaptOOO(a any) bool { a.(*Plane).adaptOOO(); return true }

// Listen registers an accept callback for a port.
func (p *Plane) Listen(port uint16, accept func(*Conn)) {
	p.listeners[port] = &listener{accept: accept, tokens: 1}
}

// sackEnabled reports whether the data-path is configured to negotiate
// SACK on new connections.
func (p *Plane) sackEnabled() bool { return p.toe.Config().EnableSACK }

// Dial initiates a connection to a remote endpoint. If the peer drops
// our SYN (backlog overflow, rate limit, loss), the half-open state
// expires after HandshakeTimeout and the connected callback never fires.
func (p *Plane) Dial(remoteIP packet.IPv4Addr, remoteMAC packet.EtherAddr, remotePort uint16, connected func(*Conn)) {
	p.nextPort++
	flow := packet.Flow{SrcIP: p.cfg.LocalIP, DstIP: remoteIP, SrcPort: p.nextPort, DstPort: remotePort}
	iss := uint32(p.rng.Uint64())
	pc := &pendingConn{p: p, flow: flow, peerMAC: remoteMAC, iss: iss, active: true, connected: connected}
	p.addPending(pc)
	p.sendControl(flow, remoteMAC, packet.FlagSYN, iss, 0, p.sackEnabled())
}

// addPending registers a half-open connection and schedules its expiry.
func (p *Plane) addPending(pc *pendingConn) {
	p.pending[pc.flow] = pc
	if pc.lis != nil {
		pc.lis.pendingN++
	}
	p.eng.AfterCall(p.cfg.HandshakeTimeout, pendingExpire, pc)
}

// dropPending unregisters a half-open connection (completed, reset, or
// expired) and uncharges its listener.
func (p *Plane) dropPending(pc *pendingConn) {
	delete(p.pending, pc.flow)
	if pc.lis != nil {
		pc.lis.pendingN--
	}
}

// pendingExpire reaps a half-open connection whose handshake never
// completed. The pendingConn is its own timer carrier; a stale fire
// (handshake completed, flow re-dialed) finds a different registration
// and does nothing.
func pendingExpire(a any) {
	pc := a.(*pendingConn)
	p := pc.p
	if p.pending[pc.flow] != pc {
		return
	}
	p.dropPending(pc)
	p.HandshakeExpires++
}

// takeToken runs the listener's accept-rate token bucket (capacity 1:
// SYNs are admitted at most every 1/rate seconds).
func (l *listener) takeToken(now sim.Time, rate float64) bool {
	l.tokens += (now - l.lastFill).Seconds() * rate
	l.lastFill = now
	if l.tokens > 1 {
		l.tokens = 1
	}
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// sendControl emits a handshake segment directly (the control plane's own
// transmit path; these bypass the offloaded data-path by design).
// sackPerm offers/confirms SACK-permitted; only meaningful on SYNs.
func (p *Plane) sendControl(flow packet.Flow, peerMAC packet.EtherAddr, flags uint8, seq, ack uint32, sackPerm bool) {
	pkt := &packet.Packet{
		Eth: packet.Ethernet{Src: p.cfg.LocalMAC, Dst: peerMAC, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
			Src: flow.SrcIP, Dst: flow.DstIP,
		},
		TCP: packet.TCP{
			SrcPort: flow.SrcPort, DstPort: flow.DstPort,
			Seq: seq, Ack: ack, Flags: flags,
			Window: uint16(p.cfg.BufSize >> tcpseg.WindowScale),
			MSS:    1448, WScale: tcpseg.WindowScale, SACKPerm: sackPerm,
		},
	}
	p.toe.SendControlFrame(pkt)
}

// handleSegment receives segments the data-path filtered to the control
// plane: SYN/SYN-ACK/RST and segments of unknown flows.
func (p *Plane) handleSegment(pkt *packet.Packet) {
	flow := pkt.Flow().Reverse() // local view
	tcp := &pkt.TCP
	switch {
	case tcp.HasFlag(packet.FlagSYN | packet.FlagACK):
		pc, ok := p.pending[flow]
		if !ok || !pc.active {
			return
		}
		pc.irs = tcp.Seq + 1
		// The peer echoes SACK-permitted only if it accepts our offer.
		pc.sackOK = tcp.SACKPerm && p.sackEnabled()
		// Complete the handshake.
		p.sendControl(flow, pc.peerMAC, packet.FlagACK, pc.iss+1, pc.irs, false)
		p.establish(pc, tcp.Window)
	case tcp.HasFlag(packet.FlagSYN):
		lis, ok := p.listeners[pkt.TCP.DstPort]
		if !ok {
			p.sendControl(flow, pkt.Eth.Src, packet.FlagRST, 0, tcp.Seq+1, false)
			return
		}
		if pc, dup := p.pending[flow]; dup {
			// SYN retransmit for an existing half-open: re-answer, don't
			// double-charge the backlog.
			if !pc.active {
				p.sendControl(flow, pc.peerMAC, packet.FlagSYN|packet.FlagACK, pc.iss, pc.irs, pc.sackOK)
			}
			return
		}
		// Listen-path hardening: a flooded backlog or an exhausted
		// accept-rate bucket drops the SYN silently — no RST, no state.
		if lis.pendingN >= p.cfg.ListenBacklog {
			p.SYNDrops++
			p.BacklogOverflows++
			return
		}
		if p.cfg.AcceptRate > 0 && !lis.takeToken(p.eng.Now(), p.cfg.AcceptRate) {
			p.SYNDrops++
			p.AcceptRateDrops++
			return
		}
		iss := uint32(p.rng.Uint64())
		pc := &pendingConn{
			p: p, lis: lis,
			flow: flow, peerMAC: pkt.Eth.Src,
			iss: iss, irs: tcp.Seq + 1,
			sackOK:    tcp.SACKPerm && p.sackEnabled(),
			connected: lis.acceptCb(),
		}
		p.addPending(pc)
		p.sendControl(flow, pc.peerMAC, packet.FlagSYN|packet.FlagACK, iss, pc.irs, pc.sackOK)
	case tcp.HasFlag(packet.FlagACK):
		// Final handshake ACK for a passive open.
		if pc, ok := p.pending[flow]; ok && !pc.active {
			p.establish(pc, tcp.Window)
		}
		// Anything else (stale data for removed connections) is dropped.
	case tcp.HasFlag(packet.FlagRST):
		if pc, ok := p.pending[flow]; ok {
			p.dropPending(pc)
		}
	}
}

// acceptCb returns the listener's accept callback (half-opens hold the
// callback, not the listener, so accept replacement is race-free).
func (l *listener) acceptCb() func(*Conn) { return l.accept }

// establish installs the connection in the data-path and fires the
// callback (§D: "allocates host payload buffers and a unique connection
// index for the data-path ... then sets up connection state at the index
// location").
func (p *Plane) establish(pc *pendingConn, peerWin uint16) {
	p.dropPending(pc)
	txBuf := shm.NewPayloadBuf(p.cfg.BufSize)
	rxBuf := shm.NewPayloadBuf(p.cfg.BufSize)
	conn := p.install(pc.flow, pc.peerMAC, pc.iss+1, pc.irs, txBuf, rxBuf, peerWin, pc.sackOK)
	if pc.connected != nil {
		//flexvet:hotclosure connection establishment runs once per connection, not per event
		p.eng.Immediately(func() {
			pc.connected(conn)
		})
	}
}

// install wires a connection into the data-path slab and the control
// plane's dense state, reusing the slot id core assigned.
func (p *Plane) install(flow packet.Flow, peerMAC packet.EtherAddr, iss, irs uint32,
	txBuf, rxBuf *shm.PayloadBuf, peerWin uint16, sackOK bool) *Conn {

	c := p.toe.AddConnection(flow, peerMAC, iss, irs, txBuf, rxBuf, 0, nil)
	if peerWin != 0 {
		c.Proto.RemoteWin = peerWin
	}
	c.Proto.SetSACKPerm(sackOK)
	id := c.ID
	for int(id) >= len(p.ccs) {
		p.ccs = append(p.ccs, ccState{})
	}
	cc := &p.ccs[id]
	*cc = ccState{
		epoch:     cc.epoch + 1, // invalidate any stale carriers for this slot
		live:      true,
		cwnd:      p.cfg.InitialCWnd,
		rate:      1e9,
		lastAcked: p.eng.Now(),
		rto:       p.cfg.MinRTO,
		scanIdx:   len(p.scan),
	}
	p.scan = append(p.scan, id)
	if p.cfg.CC != CCNone {
		p.toe.SetCongestionWindow(id, cc.cwnd)
	}
	p.Established++
	return &Conn{ID: id, Core: c, Flow: flow, TxBuf: txBuf, RxBuf: rxBuf}
}

// InstallEstablished installs an already-established connection directly,
// bypassing the handshake — the connection-scaling experiments use it to
// populate large mostly-idle fleets. The caller provides the payload
// buffers and MAY share one buffer pair across many idle connections
// (per-connection buffers are a host sizing choice, not NIC state; see
// doc.go "Connection state budget") — but must then never transfer data
// on more than one of the sharers at a time.
func (p *Plane) InstallEstablished(flow packet.Flow, peerMAC packet.EtherAddr, iss, irs uint32,
	txBuf, rxBuf *shm.PayloadBuf) *Conn {
	return p.install(flow, peerMAC, iss, irs, txBuf, rxBuf, 0, false)
}

// Close tears down a connection: FIN via the data-path, state removal
// after the exchange drains.
func (p *Plane) Close(id uint32) {
	p.toe.InjectHC(shm.Desc{Kind: shm.DescFin, Conn: id})
}

// Remove deletes data-path and control state for a connection; the slot
// is recycled. Called by the teardown timer after the post-close linger,
// or directly on abort.
func (p *Plane) Remove(id uint32) {
	if int(id) < len(p.ccs) {
		cc := &p.ccs[id]
		if cc.live {
			// O(1) swap-remove via the stored index: the resulting order
			// differs from establishment order but is still a pure
			// function of the connection history, so reruns stay
			// bit-identical.
			last := len(p.scan) - 1
			moved := p.scan[last]
			p.scan[cc.scanIdx] = moved
			p.ccs[moved].scanIdx = cc.scanIdx
			p.scan = p.scan[:last]
			cc.live = false
			cc.epoch++ // in-flight timer carriers release themselves on fire
			cc.rtoArmed = false
			cc.ccArmed = false
		}
	}
	p.toe.RemoveConnection(id)
}

// NumTracked returns the number of live control-plane connection states
// (== live data-path connections).
func (p *Plane) NumTracked() int { return len(p.scan) }

// getTimer draws a pooled timer carrier.
func (p *Plane) getTimer(id, epoch uint32, kind uint8) *connTimer {
	tm := p.timerFree.Get()
	if tm == nil {
		tm = &connTimer{}
	}
	tm.p, tm.id, tm.epoch, tm.kind = p, id, epoch, kind
	return tm
}

// putTimer recycles a timer carrier.
func (p *Plane) putTimer(tm *connTimer) {
	*tm = connTimer{}
	p.timerFree.Put(tm)
}

// timerKick is the data-path's signal (core.TOE.TimerKick) that a
// connection may need timer service: arm the RTO lifecycle timer and,
// when congestion control is on, the CC poll. The data-path dedupes
// kicks via the per-connection hint, so this runs once per activation,
// not per segment.
func (p *Plane) timerKick(id uint32) {
	if int(id) >= len(p.ccs) {
		return
	}
	cc := &p.ccs[id]
	if !cc.live {
		return
	}
	if !cc.rtoArmed {
		p.armRTO(cc, id)
	}
	if p.cfg.CC != CCNone && !cc.ccArmed {
		cc.ccArmed = true
		cc.ccIdle = 0
		p.eng.AfterCall(p.cfg.CCInterval, connTimerFire, p.getTimer(id, cc.epoch, timerCC))
	}
}

// armRTO schedules the RTO lifecycle timer at the connection's current
// deadline.
func (p *Plane) armRTO(cc *ccState, id uint32) {
	cc.rtoArmed = true
	deadline := cc.lastAcked + (cc.rto << uint(cc.backoff))
	now := p.eng.Now()
	var d sim.Time
	if deadline > now {
		d = deadline - now
	}
	p.eng.AfterCall(d, connTimerFire, p.getTimer(id, cc.epoch, timerRTO))
}

// connTimerFire dispatches a timer carrier (the long-lived AfterCall
// callback; one function for every armed timer in the plane).
func connTimerFire(a any) {
	tm := a.(*connTimer)
	p := tm.p
	cc := &p.ccs[tm.id]
	if !cc.live || cc.epoch != tm.epoch {
		// The slot was torn down (and possibly re-established) after this
		// carrier was armed; the new occupant has its own timers.
		p.putTimer(tm)
		return
	}
	if tm.kind == timerRTO {
		p.rtoFire(tm, cc)
	} else {
		p.ccFire(tm, cc)
	}
}

// rtoFire runs one connection's RTO/persist/teardown lifecycle: fire or
// re-arm against the current deadline. The timer re-arms only while the
// connection has a reason to be timed (data in flight, unacked FIN, a
// zero-window stall, or a close lingering toward reclamation); otherwise
// it disarms and the next data-path kick re-arms it (§3.1.1:
// "Retransmissions in response to timeouts are triggered by the
// control-plane"; the retransmit HC op also clears the SACK scoreboard,
// RFC 2018's reneging rule).
func (p *Plane) rtoFire(tm *connTimer, cc *ccState) {
	id := tm.id
	c := p.toe.Connection(id)
	if c == nil {
		p.disarmRTO(tm, cc, id)
		return
	}
	now := p.eng.Now()
	if una := c.Proto.UnackedBase(); una != cc.seenUna {
		// The cumulative ack moved since the last fire: forward progress,
		// regardless of whether the CC loop is polling.
		cc.seenUna = una
		cc.lastAcked = now
		cc.backoff = 0
	}
	pr := &c.Proto
	switch {
	case pr.TxSent > 0 || (pr.FinSent() && !pr.FinAcked()):
		cc.persistAt, cc.persistBackoff = 0, 0
		cc.lingerAt = 0
		deadline := cc.lastAcked + (cc.rto << uint(cc.backoff))
		if now >= deadline {
			p.Timeouts++
			p.toe.InjectHC(shm.Desc{Kind: shm.DescRetransmit, Conn: id})
			cc.lastAcked = now
			if cc.backoff < 6 {
				cc.backoff++
			}
			if p.cfg.CC == CCDCTCP {
				// Timeout: collapse to one segment, slow-start again.
				cc.cwnd = 2 * 1448
				p.toe.SetCongestionWindow(id, cc.cwnd)
			}
			deadline = now + (cc.rto << uint(cc.backoff))
		}
		p.eng.AfterCall(deadline-now, connTimerFire, tm)
	case pr.TxAvail > 0 && pr.RemoteWin == 0:
		// Zero-window persist (RFC 9293 §3.8.6.1): data waits in the
		// transmit buffer, nothing is in flight, and the peer's last
		// advertised window is zero. A lost window-update ACK would
		// stall the connection forever; the sender must probe.
		cc.lastAcked, cc.backoff = now, 0
		cc.lingerAt = 0
		if cc.persistAt == 0 {
			cc.persistAt = now + cc.rto
		} else if now >= cc.persistAt {
			p.ZeroWindowProbes++
			p.sendZeroWindowProbe(c)
			if cc.persistBackoff < 6 {
				cc.persistBackoff++
			}
			cc.persistAt = now + (cc.rto << uint(cc.persistBackoff))
		}
		p.eng.AfterCall(cc.persistAt-now, connTimerFire, tm)
	case pr.FinSent() && pr.FinAcked() && pr.FinRx():
		// Both directions closed and acknowledged: linger long enough
		// for stragglers to drain, then reclaim the slot.
		if cc.lingerAt == 0 {
			cc.lingerAt = now + 4*p.cfg.MinRTO
		}
		if now >= cc.lingerAt {
			p.putTimer(tm)
			cc.rtoArmed = false
			p.Remove(id)
			return
		}
		p.eng.AfterCall(cc.lingerAt-now, connTimerFire, tm)
	default:
		// Idle: nothing outstanding, window open, not closing. Disarm;
		// the next data-path kick re-arms.
		cc.lastAcked, cc.backoff = now, 0
		cc.persistAt, cc.persistBackoff = 0, 0
		p.disarmRTO(tm, cc, id)
	}
}

// disarmRTO releases the RTO carrier and, when the CC poll is also off,
// re-enables the data-path kick.
func (p *Plane) disarmRTO(tm *connTimer, cc *ccState, id uint32) {
	p.putTimer(tm)
	cc.rtoArmed = false
	if !cc.ccArmed {
		p.toe.ClearTimerHint(id)
	}
}

// ccFire runs one connection's periodic congestion-control poll (§D):
// read per-flow statistics from the data-path, compute a new window or
// rate, and program it back. The poll self-disarms after ccIdleLimit
// quiet intervals so idle connections cost nothing.
func (p *Plane) ccFire(tm *connTimer, cc *ccState) {
	id := tm.id
	st := p.toe.ReadStats(id)
	if st.AckedBytes > 0 {
		cc.lastAcked = p.eng.Now()
		cc.backoff = 0
	}
	if st.RTTMicros > 0 {
		rtt := sim.Time(st.RTTMicros) * sim.Microsecond
		if cc.srtt == 0 {
			cc.srtt = rtt
		} else {
			cc.srtt += (rtt - cc.srtt) / 8
		}
		if r := 4 * cc.srtt; r > p.cfg.MinRTO {
			cc.rto = r
		} else {
			cc.rto = p.cfg.MinRTO
		}
	}
	switch p.cfg.CC {
	case CCDCTCP:
		p.dctcp(id, cc, st)
	case CCTimely:
		p.timely(id, cc, st)
	}
	if st.AckedBytes == 0 && st.TxSent == 0 && st.TxPending == 0 {
		cc.ccIdle++
	} else {
		cc.ccIdle = 0
	}
	// Close the lost-retransmit hole: while the CC poll runs, guarantee
	// the RTO timer is armed whenever data is outstanding (the RTO
	// timer may have disarmed in an idle window just before new data).
	if !cc.rtoArmed {
		if c := p.toe.Connection(id); c != nil &&
			(c.Proto.TxSent > 0 || (c.Proto.FinSent() && !c.Proto.FinAcked())) {
			p.armRTO(cc, id)
		}
	}
	if cc.ccIdle >= ccIdleLimit {
		p.putTimer(tm)
		cc.ccArmed = false
		if !cc.rtoArmed {
			p.toe.ClearTimerHint(id)
		}
		return
	}
	p.eng.AfterCall(p.cfg.CCInterval, connTimerFire, tm)
}

// sendZeroWindowProbe emits the persist probe via the control plane's own
// transmit path (probes are timer-driven control actions, like timeout
// retransmissions). Sequence SND.NXT-1 with one byte of already-delivered
// payload: always outside the receiver's window, always re-ACKed.
func (p *Plane) sendZeroWindowProbe(c *core.Conn) {
	st := &c.Proto
	payload := make([]byte, 1)
	if c.Post.TxSize > 0 {
		c.TxBuf.ReadAt((st.TxPos-1)&(c.Post.TxSize-1), payload)
	}
	pkt := &packet.Packet{
		Eth: packet.Ethernet{Src: p.cfg.LocalMAC, Dst: c.Pre.PeerMAC, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoTCP, TOS: packet.ECNECT0,
			Src: c.Pre.LocalIP, Dst: c.Pre.PeerIP,
		},
		TCP: packet.TCP{
			SrcPort: c.Pre.LocalPort, DstPort: c.Pre.RemotePort,
			Seq: st.Seq - 1, Ack: st.Ack, Flags: packet.FlagACK,
			Window: st.LocalWindow(), WScale: -1,
		},
		Payload: payload,
	}
	p.toe.SendControlFrame(pkt)
}

// dctcp implements DCTCP [1]: alpha tracks the EWMA fraction of
// ECN-marked bytes; marked windows shrink by alpha/2, clean ones grow
// additively.
func (p *Plane) dctcp(id uint32, cc *ccState, st core.ConnStats) {
	if st.AckedBytes == 0 {
		return
	}
	frac := float64(st.ECNBytes) / float64(st.AckedBytes)
	g := p.cfg.DCTCPGainG
	cc.alpha = (1-g)*cc.alpha + g*frac
	if st.ECNBytes > 0 {
		cc.cwnd = uint32(float64(cc.cwnd) * (1 - cc.alpha/2))
	} else {
		cc.cwnd += 1448 // additive increase per control interval
	}
	if st.FastRetx > 0 {
		cc.cwnd /= 2
	}
	if cc.cwnd < 2*1448 {
		cc.cwnd = 2 * 1448
	}
	if cc.cwnd > p.cfg.MaxCWnd {
		cc.cwnd = p.cfg.MaxCWnd
	}
	p.toe.SetCongestionWindow(id, cc.cwnd)
}

// TIMELY constants [34], scaled for the simulated fabric.
const (
	timelyTLow    = 30 * sim.Microsecond
	timelyTHigh   = 500 * sim.Microsecond
	timelyAddStep = 20e6 // bytes/s additive increment
	timelyBeta    = 0.8
)

// timely implements TIMELY: RTT-gradient rate control, programmed into
// the data-path as a division-free pacing interval.
func (p *Plane) timely(id uint32, cc *ccState, st core.ConnStats) {
	if st.RTTMicros == 0 {
		return
	}
	rtt := st.RTTMicros
	grad := float64(int32(rtt-cc.prevRTT)) / float64(timelyTLow/sim.Microsecond)
	cc.prevRTT = rtt
	rttT := sim.Time(rtt) * sim.Microsecond
	switch {
	case rttT < timelyTLow:
		cc.rate += timelyAddStep
	case rttT > timelyTHigh:
		cc.rate *= 1 - timelyBeta*(1-float64(timelyTHigh)/float64(rttT))
	case grad <= 0:
		cc.rate += timelyAddStep
	default:
		cc.rate *= 1 - timelyBeta*grad*0.1
	}
	if cc.rate < 1e6 {
		cc.rate = 1e6
	}
	if cc.rate > 5e9 {
		cc.rate = 5e9
	}
	interval := sim.Time(1e12 / cc.rate)
	p.toe.SetRateInterval(id, interval)
	p.toe.SetCongestionWindow(id, 0) // rate-based: no window clamp
}

// adaptOOO is the fleet-wide OOOCap controller (core.Config.AdaptiveOOO):
// divide the global interval budget across live connections for the
// ceiling, grow one step when the occupancy histogram shows connections
// saturating the current cap this window, decay one step when reordering
// pressure disappears. Connections adopt the cap lazily on their next RX.
func (p *Plane) adaptOOO() {
	live := p.toe.NumConnections()
	if live == 0 {
		return
	}
	base := p.toe.Config().OOOStateBudget / live
	if base < 1 {
		base = 1
	}
	if base > tcpseg.MaxOOOIntervals {
		base = tcpseg.MaxOOOIntervals
	}
	hist := p.toe.OOOOccupancy
	var pressure uint64
	for v := 0; v <= tcpseg.MaxOOOIntervals; v++ {
		n := hist.Bucket(v)
		d := n - p.oooPrev[v]
		if n < p.oooPrev[v] {
			d = n // the histogram was Reset (post-warmup measurement)
		}
		if v >= int(p.oooCap) {
			pressure += d
		}
		p.oooPrev[v] = n
	}
	c8 := p.oooCap
	switch {
	case pressure > 0 && int(c8) < base:
		c8++
	case pressure == 0 && c8 > 1:
		c8--
	}
	if int(c8) > base {
		c8 = uint8(base) // the budget shrank under connection growth
	}
	if c8 != p.oooCap {
		p.oooCap = c8
		p.toe.SetDynOOOCap(c8)
	}
}

// OOOCapNow returns the adaptive controller's current per-connection
// interval cap (0 when AdaptiveOOO is off).
func (p *Plane) OOOCapNow() uint8 { return p.oooCap }

// CWnd exposes a connection's current congestion window (tests,
// experiments).
func (p *Plane) CWnd(id uint32) uint32 {
	if int(id) < len(p.ccs) && p.ccs[id].live {
		return p.ccs[id].cwnd
	}
	return 0
}

package ctrl

import (
	"testing"

	"flextoe/internal/core"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
)

// buildPair wires two FlexTOE machines with control planes. bGbps <= 0
// leaves the receiver at full line rate; a lower value creates a
// bottleneck whose queue builds at the switch.
func buildPair(t *testing.T, cc CCAlgo, swCfg netsim.SwitchConfig, bGbps float64) (*sim.Engine, *Plane, *Plane, *core.TOE, *core.TOE) {
	t.Helper()
	eng := sim.New()
	n := netsim.NewNetwork(eng, swCfg)
	macA := packet.MAC(2, 0, 0, 0, 0, 1)
	macB := packet.MAC(2, 0, 0, 0, 0, 2)
	rate := netsim.GbpsToBytesPerSec(40)
	ifA := n.AttachHost("a", macA, rate, 100*sim.Nanosecond)
	ifB := n.AttachHost("b", macB, rate, 100*sim.Nanosecond)
	if bGbps > 0 {
		n.ShapePort("b", netsim.GbpsToBytesPerSec(bGbps))
	}
	toeA := core.New(eng, core.AgilioCX40Config(), ifA)
	toeB := core.New(eng, core.AgilioCX40Config(), ifB)
	pa := New(eng, toeA, Config{LocalIP: packet.IP(10, 0, 0, 1), LocalMAC: macA, CC: cc, Seed: 1})
	pb := New(eng, toeB, Config{LocalIP: packet.IP(10, 0, 0, 2), LocalMAC: macB, CC: cc, Seed: 2})
	return eng, pa, pb, toeA, toeB
}

func TestHandshakeEstablishes(t *testing.T) {
	eng, pa, pb, _, _ := buildPair(t, CCNone, netsim.SwitchConfig{}, 0)
	var serverConn, clientConn *Conn
	pb.Listen(80, func(c *Conn) { serverConn = c })
	eng.At(0, func() {
		pa.Dial(packet.IP(10, 0, 0, 2), packet.MAC(2, 0, 0, 0, 0, 2), 80, func(c *Conn) {
			clientConn = c
		})
	})
	eng.RunUntil(5 * sim.Millisecond)
	if serverConn == nil || clientConn == nil {
		t.Fatalf("handshake incomplete: server=%v client=%v", serverConn, clientConn)
	}
	if pa.Established != 1 || pb.Established != 1 {
		t.Fatalf("established counts: %d/%d", pa.Established, pb.Established)
	}
	// The flows must mirror each other.
	if clientConn.Flow.Reverse() != serverConn.Flow {
		t.Fatalf("flows don't mirror: %v vs %v", clientConn.Flow, serverConn.Flow)
	}
}

func TestRSTForClosedPort(t *testing.T) {
	eng, pa, _, _, _ := buildPair(t, CCNone, netsim.SwitchConfig{}, 0)
	connected := false
	eng.At(0, func() {
		pa.Dial(packet.IP(10, 0, 0, 2), packet.MAC(2, 0, 0, 0, 0, 2), 9999, func(c *Conn) {
			connected = true
		})
	})
	eng.RunUntil(5 * sim.Millisecond)
	if connected {
		t.Fatal("connected to a closed port")
	}
}

func TestDataTransferAfterHandshake(t *testing.T) {
	eng, pa, pb, toeA, _ := buildPair(t, CCNone, netsim.SwitchConfig{}, 0)
	var got []byte
	pb.Listen(80, func(c *Conn) {
		rxHead := uint32(0)
		c.Core.Notify = func(d shm.Desc) {
			if d.Kind == shm.DescRxNotify {
				buf := make([]byte, d.Bytes)
				c.RxBuf.ReadAt(rxHead, buf)
				rxHead += d.Bytes
				got = append(got, buf...)
			}
		}
	})
	payload := []byte("control-plane-established data path")
	eng.At(0, func() {
		pa.Dial(packet.IP(10, 0, 0, 2), packet.MAC(2, 0, 0, 0, 0, 2), 80, func(c *Conn) {
			c.TxBuf.WriteAt(0, payload)
			toeA.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: c.ID, Bytes: uint32(len(payload))})
		})
	})
	eng.RunUntil(10 * sim.Millisecond)
	if string(got) != string(payload) {
		t.Fatalf("got %q", got)
	}
}

func TestRTORecoversFromBlackout(t *testing.T) {
	// Drop everything for the first 3 ms; the control plane's timeout
	// retransmission must recover the stream.
	eng, pa, pb, toeA, _ := buildPair(t, CCNone, netsim.SwitchConfig{}, 0)
	var received uint32
	pb.Listen(80, func(c *Conn) {
		c.Core.Notify = func(d shm.Desc) {
			if d.Kind == shm.DescRxNotify {
				received += d.Bytes
			}
		}
	})
	var conn *Conn
	eng.At(0, func() {
		pa.Dial(packet.IP(10, 0, 0, 2), packet.MAC(2, 0, 0, 0, 0, 2), 80, func(c *Conn) {
			conn = c
		})
	})
	eng.RunUntil(2 * sim.Millisecond)
	if conn == nil {
		t.Fatal("no connection")
	}
	// Blackout: 100% loss while we transmit.
	// (reach into the switch config through a fresh one — the network
	// object is shared via closure in buildPair; emulate by sending
	// during a lossy window instead)
	_ = toeA
	payload := make([]byte, 4096)
	conn.TxBuf.WriteAt(0, payload)
	toeA.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: conn.ID, Bytes: 4096})
	eng.RunUntil(50 * sim.Millisecond)
	if received != 4096 {
		t.Fatalf("received %d/4096", received)
	}
	if pa.Timeouts > 0 {
		t.Logf("recovered with %d timeouts", pa.Timeouts)
	}
}

// buildPairCfg is buildPair with explicit data-path configs and buffer
// size (SACK negotiation and persist-timer tests).
func buildPairCfg(t *testing.T, cfgA, cfgB core.Config, bufSize uint32) (*sim.Engine, *Plane, *Plane, *core.TOE, *core.TOE) {
	t.Helper()
	eng := sim.New()
	n := netsim.NewNetwork(eng, netsim.SwitchConfig{})
	macA := packet.MAC(2, 0, 0, 0, 0, 1)
	macB := packet.MAC(2, 0, 0, 0, 0, 2)
	rate := netsim.GbpsToBytesPerSec(40)
	ifA := n.AttachHost("a", macA, rate, 100*sim.Nanosecond)
	ifB := n.AttachHost("b", macB, rate, 100*sim.Nanosecond)
	toeA := core.New(eng, cfgA, ifA)
	toeB := core.New(eng, cfgB, ifB)
	pa := New(eng, toeA, Config{LocalIP: packet.IP(10, 0, 0, 1), LocalMAC: macA, BufSize: bufSize, Seed: 1})
	pb := New(eng, toeB, Config{LocalIP: packet.IP(10, 0, 0, 2), LocalMAC: macB, BufSize: bufSize, Seed: 2})
	return eng, pa, pb, toeA, toeB
}

func TestSACKNegotiation(t *testing.T) {
	sackCfg := core.AgilioCX40Config()
	sackCfg.EnableSACK = true
	plainCfg := core.AgilioCX40Config()
	cases := []struct {
		name       string
		cfgA, cfgB core.Config
		want       bool
	}{
		{"both-enabled", sackCfg, sackCfg, true},
		{"client-only", sackCfg, plainCfg, false},
		{"server-only", plainCfg, sackCfg, false},
		{"neither", plainCfg, plainCfg, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng, pa, pb, _, _ := buildPairCfg(t, c.cfgA, c.cfgB, 0)
			var serverConn, clientConn *Conn
			pb.Listen(80, func(cn *Conn) { serverConn = cn })
			eng.At(0, func() {
				pa.Dial(packet.IP(10, 0, 0, 2), packet.MAC(2, 0, 0, 0, 0, 2), 80, func(cn *Conn) { clientConn = cn })
			})
			eng.RunUntil(5 * sim.Millisecond)
			if serverConn == nil || clientConn == nil {
				t.Fatal("handshake incomplete")
			}
			if got := clientConn.Core.Proto.SACKEnabled(); got != c.want {
				t.Fatalf("client SACK = %v, want %v", got, c.want)
			}
			if got := serverConn.Core.Proto.SACKEnabled(); got != c.want {
				t.Fatalf("server SACK = %v, want %v", got, c.want)
			}
		})
	}
}

func TestPersistProbeRecoversLostWindowUpdate(t *testing.T) {
	// Fill the receiver's 4 KB window, stage more data, then reopen the
	// receive window *silently* (emulating a window-update ACK lost on
	// the wire — the receiver believes it told us). Only the sender-side
	// persist probe (RFC 9293 §3.8.6.1) can discover the reopened window;
	// before this timer existed the connection stalled forever.
	cfg := core.AgilioCX40Config()
	eng, pa, pb, toeA, _ := buildPairCfg(t, cfg, cfg, 4096)
	var received uint32
	var serverConn *Conn
	pb.Listen(80, func(c *Conn) {
		serverConn = c
		c.Core.Notify = func(d shm.Desc) {
			if d.Kind == shm.DescRxNotify {
				received += d.Bytes
			}
		}
	})
	var conn *Conn
	txFree := uint32(0)
	eng.At(0, func() {
		pa.Dial(packet.IP(10, 0, 0, 2), packet.MAC(2, 0, 0, 0, 0, 2), 80, func(c *Conn) {
			conn = c
			c.Core.Notify = func(d shm.Desc) {
				if d.Kind == shm.DescTxFree {
					txFree += d.Bytes
				}
			}
			buf := make([]byte, 4096)
			c.TxBuf.WriteAt(0, buf)
			toeA.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: c.ID, Bytes: 4096})
		})
	})
	eng.RunUntil(10 * sim.Millisecond)
	if conn == nil || serverConn == nil {
		t.Fatal("no connection")
	}
	if received != 4096 || txFree != 4096 {
		t.Fatalf("first window: received %d, freed %d", received, txFree)
	}
	if conn.Core.Proto.RemoteWin != 0 {
		t.Fatalf("sender should see a zero window, got %d", conn.Core.Proto.RemoteWin)
	}
	// Stage more data against the closed window...
	buf := make([]byte, 2048)
	conn.TxBuf.WriteAt(0, buf)
	toeA.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: conn.ID, Bytes: 2048})
	// ...and reopen the receive window without any window-update ACK
	// reaching the sender (the "lost ACK" state).
	eng.RunUntil(12 * sim.Millisecond)
	serverConn.Core.Proto.RxAvail += 4096
	eng.RunUntil(60 * sim.Millisecond)
	if pa.ZeroWindowProbes == 0 {
		t.Fatal("persist timer never probed")
	}
	if received != 4096+2048 {
		t.Fatalf("stalled despite persist probe: received %d", received)
	}
}

func TestDCTCPReactsToECN(t *testing.T) {
	// Squeeze through an ECN-marking bottleneck: DCTCP must shrink the
	// window below the buffer size while sustaining goodput.
	eng, pa, pb, toeA, _ := buildPair(t, CCDCTCP, netsim.SwitchConfig{
		ECNThresholdBytes: 30_000,
	}, 2) // 2 Gbps bottleneck toward the receiver
	var received uint64
	pb.Listen(80, func(c *Conn) {
		c.Core.Notify = func(d shm.Desc) {
			if d.Kind == shm.DescRxNotify {
				received += uint64(d.Bytes)
				toeA2 := pb.toe
				_ = toeA2
				pb.toe.InjectHC(shm.Desc{Kind: shm.DescRxConsume, Conn: d.Conn, Bytes: d.Bytes})
			}
		}
	})
	// Saturating sender: refill the TX buffer whenever acks free space.
	var conn *Conn
	var txHead uint32
	free := uint32(65536)
	chunk := make([]byte, 8192)
	pump := func() {
		for free >= uint32(len(chunk)) {
			conn.TxBuf.WriteAt(txHead, chunk)
			txHead += uint32(len(chunk))
			free -= uint32(len(chunk))
			toeA.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: conn.ID, Bytes: uint32(len(chunk))})
		}
	}
	eng.At(0, func() {
		pa.Dial(packet.IP(10, 0, 0, 2), packet.MAC(2, 0, 0, 0, 0, 2), 80, func(c *Conn) {
			conn = c
			c.Core.Notify = func(d shm.Desc) {
				if d.Kind == shm.DescTxFree {
					free += d.Bytes
					pump()
				}
			}
			pump()
		})
	})
	eng.RunUntil(40 * sim.Millisecond)
	if conn == nil {
		t.Fatal("no connection")
	}
	if received == 0 {
		t.Fatal("no data delivered under DCTCP")
	}
	cwnd := pa.CWnd(conn.ID)
	if cwnd == 0 || cwnd >= 65536 {
		t.Fatalf("DCTCP cwnd = %d; expected reduction below the buffer size", cwnd)
	}
}

func TestTimelyProgramsRate(t *testing.T) {
	eng, pa, pb, toeA, _ := buildPair(t, CCTimely, netsim.SwitchConfig{}, 0)
	pb.Listen(80, func(c *Conn) {
		c.Core.Notify = func(d shm.Desc) {
			if d.Kind == shm.DescRxNotify {
				pb.toe.InjectHC(shm.Desc{Kind: shm.DescRxConsume, Conn: d.Conn, Bytes: d.Bytes})
			}
		}
	})
	var conn *Conn
	eng.At(0, func() {
		pa.Dial(packet.IP(10, 0, 0, 2), packet.MAC(2, 0, 0, 0, 0, 2), 80, func(c *Conn) {
			conn = c
			payload := make([]byte, 32768)
			c.TxBuf.WriteAt(0, payload)
			toeA.InjectHC(shm.Desc{Kind: shm.DescTxBump, Conn: c.ID, Bytes: 32768})
		})
	})
	eng.RunUntil(20 * sim.Millisecond)
	if conn == nil {
		t.Fatal("no connection")
	}
	// TIMELY programs a pacing interval into the scheduler.
	if toeA.Sched().Interval(conn.ID) == 0 {
		t.Fatal("TIMELY never programmed a rate interval")
	}
}

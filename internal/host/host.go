// Package host models the server and client machines of the testbed: CPU
// cores that execute application and network-stack work serially, with
// cycle accounting detailed enough to regenerate Table 1 (per-request
// cycles by component, top-down pipeline-slot breakdown, IPC and icache
// footprint).
package host

import (
	"flextoe/internal/sim"
)

// Core is one host CPU core. Unlike an FPC, a core runs one task at a
// time and its stalls do not overlap with other work (the OS thread
// blocks).
type Core struct {
	Name string

	eng     *sim.Engine
	hz      int64
	cyclePs sim.Time

	busyUntil sim.Time
	queue     []hostTask
	qHead     int
	running   bool
	curCb     func(any) // completion of the task currently executing
	curArg    any

	// Statistics.
	Tasks        uint64
	Instructions uint64
	busyAcc      sim.Time
}

type hostTask struct {
	task sim.Task
	cb   func(any)
	arg  any
}

// NewCore creates a core with the given clock.
func NewCore(eng *sim.Engine, name string, hz int64) *Core {
	return &Core{Name: name, eng: eng, hz: hz, cyclePs: sim.Cycles(1, hz)}
}

// Hz returns the core clock.
func (c *Core) Hz() int64 { return c.hz }

// CyclesTime converts core cycles to time.
func (c *Core) CyclesTime(n int64) sim.Time { return sim.Cycles(n, c.hz) }

// Submit queues a task for serial execution. done runs when it completes.
// It is a thin wrapper over SubmitCall for cold callers; hot paths should
// use SubmitCall directly so no completion closure is built per task.
func (c *Core) Submit(task sim.Task, done func()) {
	if done == nil {
		c.SubmitCall(task, nil, nil)
		return
	}
	c.SubmitCall(task, runPlainFunc, done)
}

// runPlainFunc adapts a plain func() completion to the call form.
func runPlainFunc(a any) { a.(func())() }

// SubmitCall queues a task for serial execution; cb(arg) runs when it
// completes. The allocation-free form of Submit: cb should be a
// long-lived function value and arg the per-task state (queueing a task
// then performs no heap allocation beyond amortized queue growth).
func (c *Core) SubmitCall(task sim.Task, cb func(any), arg any) {
	c.queue = append(c.queue, hostTask{task, cb, arg})
	if !c.running {
		c.running = true
		c.eng.ImmediatelyCall(coreKick, c)
	}
}

func coreKick(a any) { a.(*Core).next() }

// Busy reports whether the core has queued or running work.
func (c *Core) Busy() bool { return c.running || c.QueueLen() > 0 }

// QueueLen returns the number of tasks waiting (excluding the running one).
func (c *Core) QueueLen() int { return len(c.queue) - c.qHead }

func (c *Core) next() {
	if c.qHead >= len(c.queue) {
		c.queue = c.queue[:0]
		c.qHead = 0
		c.running = false
		return
	}
	t := c.queue[c.qHead]
	c.queue[c.qHead] = hostTask{}
	c.qHead++
	if c.qHead > 64 && c.qHead*2 >= len(c.queue) {
		n := copy(c.queue, c.queue[c.qHead:])
		c.queue = c.queue[:n]
		c.qHead = 0
	}
	c.Tasks++
	var dur sim.Time
	for i := 0; i < t.task.NumSteps(); i++ {
		s := t.task.Step(i)
		c.Instructions += uint64(s.Compute)
		dur += sim.Time(s.Compute)*c.cyclePs + s.Stall
	}
	c.busyAcc += dur
	c.curCb, c.curArg = t.cb, t.arg
	c.eng.AfterCall(dur, coreTaskDone, c)
}

// coreTaskDone completes the running task and starts the next (see
// sim.Engine.AtCall; the core runs one task at a time, so curCb/curArg
// are unambiguous).
func coreTaskDone(a any) {
	c := a.(*Core)
	cb, arg := c.curCb, c.curArg
	c.curCb, c.curArg = nil, nil
	if cb != nil {
		cb(arg)
	}
	c.next()
}

// Utilization returns the core's busy fraction of simulated time.
func (c *Core) Utilization() float64 {
	now := c.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(c.busyAcc) / float64(now)
}

// Machine is a host with several cores.
type Machine struct {
	Name  string
	Cores []*Core
}

// NewMachine builds a host with n identical cores.
func NewMachine(eng *sim.Engine, name string, n int, hz int64) *Machine {
	m := &Machine{Name: name}
	for i := 0; i < n; i++ {
		m.Cores = append(m.Cores, NewCore(eng, name+"/cpu"+itoa(i), hz))
	}
	return m
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// LeastLoaded returns the core with the shortest queue.
func (m *Machine) LeastLoaded() *Core {
	best := m.Cores[0]
	for _, c := range m.Cores[1:] {
		if !c.Busy() && best.Busy() {
			best = c
		} else if c.QueueLen() < best.QueueLen() && c.Busy() == best.Busy() {
			best = c
		}
	}
	return best
}

// Counters models the hardware performance counters used in §2.1's
// analysis: it accumulates per-component cycles and classifies them into
// top-down pipeline slots.
type Counters struct {
	// Per-component kilocycles per request (Table 1 rows).
	Driver  float64
	TCPIP   float64
	Sockets float64
	App     float64
	Other   float64

	// Top-down breakdown fractions of total cycles.
	Retiring float64
	Frontend float64
	Backend  float64
	BadSpec  float64

	Instructions float64 // thousands per request
	IcacheKB     float64

	Requests uint64
}

// Total returns total kilocycles per request.
func (c *Counters) Total() float64 {
	return c.Driver + c.TCPIP + c.Sockets + c.App + c.Other
}

// IPC returns instructions per cycle.
func (c *Counters) IPC() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return c.Instructions / t
}

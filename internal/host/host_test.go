package host

import (
	"testing"

	"flextoe/internal/sim"
)

func TestCoreSerializesTasks(t *testing.T) {
	eng := sim.New()
	c := NewCore(eng, "cpu0", 2e9) // 2 GHz: 500ps/cycle
	var done []sim.Time
	eng.At(0, func() {
		c.Submit(sim.TaskC(1000), func() { done = append(done, eng.Now()) }) // 500ns
		c.Submit(sim.TaskC(1000), func() { done = append(done, eng.Now()) })
	})
	eng.Run()
	if len(done) != 2 {
		t.Fatalf("done = %v", done)
	}
	if done[0] != 500*sim.Nanosecond || done[1] != 1000*sim.Nanosecond {
		t.Fatalf("completion times = %v", done)
	}
	if c.Tasks != 2 || c.Instructions != 2000 {
		t.Fatalf("counters: %d tasks, %d instr", c.Tasks, c.Instructions)
	}
}

func TestCoreStallsDoNotOverlap(t *testing.T) {
	// Unlike an FPC, a host core blocks on stalls.
	eng := sim.New()
	c := NewCore(eng, "cpu0", 2e9)
	var last sim.Time
	eng.At(0, func() {
		for i := 0; i < 4; i++ {
			c.Submit(sim.TaskC(1000).Add(0, sim.Microsecond), func() { last = eng.Now() })
		}
	})
	eng.Run()
	want := 4 * (500*sim.Nanosecond + sim.Microsecond)
	if last != want {
		t.Fatalf("last = %v, want %v", last, want)
	}
}

func TestCoreBusyAndQueue(t *testing.T) {
	eng := sim.New()
	c := NewCore(eng, "cpu0", 2e9)
	eng.At(0, func() {
		if c.Busy() {
			t.Error("idle core reports busy")
		}
		c.Submit(sim.TaskC(100), nil)
		c.Submit(sim.TaskC(100), nil)
		if !c.Busy() {
			t.Error("core with work reports idle")
		}
	})
	eng.Run()
	if c.Busy() {
		t.Error("drained core reports busy")
	}
}

func TestCoreUtilization(t *testing.T) {
	eng := sim.New()
	c := NewCore(eng, "cpu0", 2e9)
	eng.At(0, func() { c.Submit(sim.TaskC(2000), nil) }) // 1us busy
	eng.At(2*sim.Microsecond, func() {})                 // extend sim to 2us
	eng.Run()
	if u := c.Utilization(); u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestMachineLeastLoaded(t *testing.T) {
	eng := sim.New()
	m := NewMachine(eng, "host", 4, 2e9)
	if len(m.Cores) != 4 {
		t.Fatalf("cores = %d", len(m.Cores))
	}
	eng.At(0, func() {
		m.Cores[0].Submit(sim.TaskC(10000), nil)
		m.Cores[1].Submit(sim.TaskC(10000), nil)
		ll := m.LeastLoaded()
		if ll == m.Cores[0] || ll == m.Cores[1] {
			t.Error("LeastLoaded picked a busy core over an idle one")
		}
	})
	eng.Run()
}

// TestSubmitCallOrderAndArgs: call-form tasks run serially in submission
// order with their own arguments, interleaved with plain Submits.
func TestSubmitCallOrderAndArgs(t *testing.T) {
	eng := sim.New()
	c := NewCore(eng, "cpu", 2e9)
	var order []int
	record := func(a any) { order = append(order, a.(int)) }
	c.SubmitCall(sim.TaskC(100), record, 1)
	c.Submit(sim.TaskC(100), func() { order = append(order, 2) })
	c.SubmitCall(sim.TaskC(100), record, 3)
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.Tasks != 3 {
		t.Fatalf("tasks = %d", c.Tasks)
	}
}

// TestSubmitCallAllocFree: steady-state SubmitCall (pointer arg, warm
// queue) performs no heap allocation.
func TestSubmitCallAllocFree(t *testing.T) {
	eng := sim.New()
	c := NewCore(eng, "cpu", 2e9)
	nop := func(a any) {}
	// Warm the queue capacity and the engine wheel.
	for i := 0; i < 128; i++ {
		c.SubmitCall(sim.TaskC(10), nop, c)
	}
	eng.Run()
	allocs := testing.AllocsPerRun(100, func() {
		c.SubmitCall(sim.TaskC(10), nop, c)
		eng.Run()
	})
	if allocs > 0 {
		t.Fatalf("SubmitCall allocates %.1f/op in steady state", allocs)
	}
}

func TestCountersAccessors(t *testing.T) {
	c := Counters{Driver: 1, TCPIP: 4, Sockets: 2, App: 1, Other: 3, Instructions: 14.3}
	if c.Total() != 11 {
		t.Fatalf("total = %v", c.Total())
	}
	if ipc := c.IPC(); ipc < 1.29 || ipc > 1.31 {
		t.Fatalf("IPC = %v", ipc)
	}
	var zero Counters
	if zero.IPC() != 0 {
		t.Fatal("zero counters IPC")
	}
}

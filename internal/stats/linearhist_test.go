package stats

import (
	"sort"
	"testing"
)

// quantileRef indexes a sorted copy of the observations at ceil(q*n)-1 —
// the reference LinearHist.Quantile must reproduce.
func quantileRef(obs []int, q float64) int {
	if len(obs) == 0 {
		return 0
	}
	s := append([]int(nil), obs...)
	sort.Ints(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(q * float64(len(s)))
	if float64(rank) < q*float64(len(s)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

func TestQuantileAgainstSortedSlice(t *testing.T) {
	r := NewRNG(77)
	for trial := 0; trial < 50; trial++ {
		max := 1 + r.Intn(200)
		n := 1 + r.Intn(500)
		h := NewLinearHist(max)
		obs := make([]int, 0, n)
		for i := 0; i < n; i++ {
			v := r.Intn(max + 1)
			h.Record(v)
			obs = append(obs, v)
		}
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			got, want := h.Quantile(q), quantileRef(obs, q)
			if got != want {
				t.Fatalf("trial %d: Quantile(%g) = %d, sorted-slice reference = %d (n=%d max=%d)",
					trial, q, got, want, n, max)
			}
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewLinearHist(10)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", got)
	}
}

func TestQuantileSingleValue(t *testing.T) {
	h := NewLinearHist(100)
	h.Record(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("Quantile(%g) = %d, want 42", q, got)
		}
	}
}

// TestAddMatchesCombinedRecording: merging shard histograms must be
// indistinguishable from recording every observation into one histogram.
func TestAddMatchesCombinedRecording(t *testing.T) {
	r := NewRNG(78)
	for trial := 0; trial < 25; trial++ {
		max := 1 + r.Intn(100)
		a, b, combined := NewLinearHist(max), NewLinearHist(max), NewLinearHist(max)
		for i := 0; i < 300; i++ {
			v := r.Intn(max + 1)
			if i%2 == 0 {
				a.Record(v)
			} else {
				b.Record(v)
			}
			combined.Record(v)
		}
		a.Add(b)
		if a.Count() != combined.Count() || a.Mean() != combined.Mean() ||
			a.MaxSeen() != combined.MaxSeen() {
			t.Fatalf("trial %d: merged (n=%d mean=%g max=%d) != combined (n=%d mean=%g max=%d)",
				trial, a.Count(), a.Mean(), a.MaxSeen(),
				combined.Count(), combined.Mean(), combined.MaxSeen())
		}
		for v := 0; v <= max; v++ {
			if a.Bucket(v) != combined.Bucket(v) {
				t.Fatalf("trial %d: bucket %d: merged %d != combined %d",
					trial, v, a.Bucket(v), combined.Bucket(v))
			}
		}
		for _, q := range []float64{0.5, 0.99} {
			if a.Quantile(q) != combined.Quantile(q) {
				t.Fatalf("trial %d: Quantile(%g): merged %d != combined %d",
					trial, q, a.Quantile(q), combined.Quantile(q))
			}
		}
	}
}

// TestAddClampsWiderSource: observations beyond the destination's range
// clamp into the top bucket, exactly as Record would have.
func TestAddClampsWiderSource(t *testing.T) {
	narrow, wide := NewLinearHist(4), NewLinearHist(100)
	wide.Record(2)
	wide.Record(50)
	wide.Record(99)
	narrow.Add(wide)
	if narrow.Count() != 3 || narrow.Bucket(2) != 1 || narrow.Bucket(4) != 2 {
		t.Fatalf("clamped merge: count=%d b2=%d b4=%d, want 3/1/2",
			narrow.Count(), narrow.Bucket(2), narrow.Bucket(4))
	}
	if narrow.Quantile(1) != 4 {
		t.Fatalf("clamped max quantile = %d, want 4", narrow.Quantile(1))
	}
	narrow.Add(nil) // no-op
	if narrow.Count() != 3 {
		t.Fatalf("Add(nil) changed count")
	}
}

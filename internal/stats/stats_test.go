package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 collisions between different seeds", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := NewRNG(7)
	var s float64
	const n = 100000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	if m := s / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v", m)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	var s float64
	const n = 100000
	for i := 0; i < n; i++ {
		s += r.Exp(25)
	}
	if m := s / n; math.Abs(m-25) > 1 {
		t.Fatalf("exp mean = %v", m)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(11)
	var s, s2 float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		s += v
		s2 += v * v
	}
	mean := s / n
	variance := s2/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("norm mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Fatalf("norm sigma = %v", math.Sqrt(variance))
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(5, 2); v < 5 {
			t.Fatalf("pareto below xm: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(17)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn did not cover range: %v", seen)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 99 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	// Small values are recorded exactly (linear buckets); nearest-rank p50
	// of 0..99 is the 50th observation, value 49.
	if got := h.Percentile(50); got != 49 {
		t.Fatalf("p50 = %d", got)
	}
	if got := h.Percentile(99); got != 98 {
		t.Fatalf("p99 = %d", got)
	}
	if got := h.Percentile(100); got != 99 {
		t.Fatalf("p100 = %d", got)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	values := []int64{1000, 5000, 25000, 100000, 1e6, 1e9, 1e12}
	for _, v := range values {
		h2 := NewHistogram()
		h2.Record(v)
		got := h2.Percentile(50)
		relErr := math.Abs(float64(got-v)) / float64(v)
		if relErr > 0.01 {
			t.Fatalf("value %d recovered as %d (err %.3f)", v, got, relErr)
		}
	}
	_ = h
}

func TestHistogramPercentileMonotone(t *testing.T) {
	r := NewRNG(3)
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		h.Record(int64(r.Exp(1e6)))
	}
	prev := int64(-1)
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 99.99, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotone at p=%v: %d < %d", p, v, prev)
		}
		prev = v
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	h.Record(20)
	h.Record(30)
	if h.Mean() != 20 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 50; i++ {
		a.Record(i)
		b.Record(1000 + i)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1049 {
		t.Fatalf("min/max = %d/%d", a.Min(), a.Max())
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	h.Record(1)
	h.Record(2)
	h.Record(2)
	h.Record(3)
	cdf := h.CDF()
	if len(cdf) != 3 {
		t.Fatalf("cdf = %v", cdf)
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Fatalf("cdf final fraction = %v", cdf[len(cdf)-1].Fraction)
	}
	// Fractions must be non-decreasing.
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatalf("cdf not monotone: %v", cdf)
		}
	}
}

func TestHistogramPropertyPercentileBounds(t *testing.T) {
	// Property: for any set of values, every percentile lies in [min, max].
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v))
		}
		for _, p := range []float64{0, 1, 50, 99, 99.99, 100} {
			v := h.Percentile(p)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{1, 1, 1, 1}); got != 1 {
		t.Fatalf("equal shares JFI = %v", got)
	}
	got := JainFairness([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("single-winner JFI = %v", got)
	}
	if got := JainFairness(nil); got != 1 {
		t.Fatalf("empty JFI = %v", got)
	}
}

func TestJainFairnessPropertyRange(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		j := JainFairness(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileOf(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := PercentileOf(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := PercentileOf(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := PercentileOf(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("PercentileOf mutated input")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("mean(nil) = %v", got)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(99)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d/100", same)
	}
}

func TestLinearHist(t *testing.T) {
	h := NewLinearHist(4)
	if h.Count() != 0 || h.Mean() != 0 || h.MaxSeen() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, v := range []int{0, 1, 1, 2, 4, 9, -3} {
		h.Record(v) // 9 clamps to 4, -3 clamps to 0
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.MaxSeen() != 4 {
		t.Fatalf("max = %d", h.MaxSeen())
	}
	if h.Bucket(1) != 2 || h.Bucket(4) != 2 || h.Bucket(0) != 2 {
		t.Fatalf("dist = %v", h.Dist())
	}
	if h.Bucket(99) != 0 || h.Bucket(-1) != 0 {
		t.Fatal("out-of-range bucket not zero")
	}
	want := float64(0+1+1+2+4+4+0) / 7
	if h.Mean() != want {
		t.Fatalf("mean = %v, want %v", h.Mean(), want)
	}
	d := h.Dist()
	d[0] = 77 // Dist must be a copy
	if h.Bucket(0) == 77 {
		t.Fatal("Dist aliases internal state")
	}
}

package stats

import "math"

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s via a precomputed CDF and binary search: O(n) setup,
// O(log n) per sample, zero allocations and fully deterministic for a
// given RNG stream (unlike rejection samplers, whose draw count varies
// per sample). Used by the connection-scaling experiments to model
// long-lived fleets where a small hot set carries most of the traffic.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s (s = 0 is
// uniform; s ≈ 1 is classic Zipf).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // exact upper bound despite rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Pick draws one rank in [0, N) using the caller's RNG.
func (z *Zipf) Pick(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram records value observations in logarithmically spaced buckets
// (HDR-histogram style: a fixed number of sub-buckets per power of two),
// supporting percentile queries with bounded relative error. Values are
// int64 (the simulation records latencies in picoseconds and sizes in
// bytes).
type Histogram struct {
	subBits uint // sub-buckets per half-decade = 1<<subBits
	counts  []uint64
	n       uint64
	sum     float64
	min     int64
	max     int64
}

// NewHistogram returns a histogram with roughly 1/(1<<subBits) relative
// precision. subBits = 7 gives <1% error, plenty for tail latencies.
func NewHistogram() *Histogram {
	return &Histogram{subBits: 7, min: math.MaxInt64, max: math.MinInt64}
}

func (h *Histogram) bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < int64(1)<<h.subBits {
		return int(v)
	}
	// exponent of the highest set bit beyond the linear range
	exp := 63 - leadingZeros(uint64(v))
	shift := uint(exp) - h.subBits
	sub := int(v>>shift) - (1 << h.subBits) // position within [2^exp, 2^(exp+1))
	base := int(1)<<h.subBits + int(shift)*(1<<h.subBits)
	return base + sub
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// bucketLow returns the smallest value that maps to bucket b.
func (h *Histogram) bucketLow(b int) int64 {
	lin := int(1) << h.subBits
	if b < lin {
		return int64(b)
	}
	rel := b - lin
	shift := uint(rel / lin)
	sub := rel % lin
	return (int64(lin) + int64(sub)) << shift
}

// Record adds one observation.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds count observations of value v.
func (h *Histogram) RecordN(v int64, count uint64) {
	if count == 0 {
		return
	}
	b := h.bucketOf(v)
	if b >= len(h.counts) {
		grown := make([]uint64, b+64)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b] += count
	h.n += count
	h.sum += float64(v) * float64(count)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the value at quantile p in [0,100]. The result is the
// lower bound of the bucket containing the pth observation, clamped to
// [Min, Max].
func (h *Histogram) Percentile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			v := h.bucketLow(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Median is Percentile(50).
func (h *Histogram) Median() int64 { return h.Percentile(50) }

// CDF returns (value, cumulative fraction) pairs for plotting, one per
// non-empty bucket.
type CDFPoint struct {
	Value    int64
	Fraction float64
}

// CDF returns the cumulative distribution of observations.
func (h *Histogram) CDF() []CDFPoint {
	if h.n == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		pts = append(pts, CDFPoint{Value: h.bucketLow(b), Fraction: float64(cum) / float64(h.n)})
	}
	return pts
}

// Merge adds all observations from other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.subBits != h.subBits {
		panic("stats: merging histograms with different precision")
	}
	for b, c := range other.counts {
		if c == 0 {
			continue
		}
		if b >= len(h.counts) {
			grown := make([]uint64, b+64)
			copy(grown, h.counts)
			h.counts = grown
		}
		h.counts[b] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		h.n, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// JainFairness computes Jain's fairness index over per-entity allocations:
// (sum x)^2 / (n * sum x^2). 1.0 is perfectly fair; 1/n is maximally
// unfair. Empty input returns 1.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var s, s2 float64
	for _, x := range xs {
		s += x
		s2 += x * x
	}
	if s2 == 0 {
		return 1
	}
	return s * s / (float64(len(xs)) * s2)
}

// PercentileOf returns the pth percentile of a float64 sample (nearest-rank
// on a sorted copy).
func PercentileOf(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean of a sample (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Package stats provides the deterministic random number generation and
// measurement primitives (histograms, percentiles, fairness indices) used
// by the FlexTOE simulation and its benchmark harness.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift128+). Every simulated experiment owns its own RNG seeded from
// the experiment parameters, so runs are reproducible.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed non-zero state for any input.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value (Box-Muller).
func (r *RNG) Norm(mean, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + sigma*z
}

// LogNormal returns a log-normally distributed value parameterized by the
// location mu and scale sigma of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto-distributed value with minimum xm and shape
// alpha. Heavy tails (alpha near 1) model kernel-scheduler latency spikes.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Split returns a new RNG deterministically derived from this one,
// useful to give each simulated entity an independent stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

package stats

// LinearHist counts observations of a small discrete quantity in [0, max]
// with one exact bucket per value — occupancy-style statistics (queue
// depths, reassembly interval counts) where the HDR histogram's
// logarithmic buckets are overkill and its per-record cost too high for a
// per-segment hot path. Recording is one bounds check and one increment.
type LinearHist struct {
	counts []uint64
	n      uint64
	sum    uint64
}

// NewLinearHist returns a histogram for values 0..max inclusive; larger
// observations clamp to max.
func NewLinearHist(max int) *LinearHist {
	if max < 0 {
		max = 0
	}
	return &LinearHist{counts: make([]uint64, max+1)}
}

// Record adds one observation (clamped to the bucket range).
func (h *LinearHist) Record(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	h.counts[v]++
	h.n++
	h.sum += uint64(v)
}

// Reset clears every bucket (end of a warmup phase).
func (h *LinearHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n = 0
	h.sum = 0
}

// Count returns the number of observations.
func (h *LinearHist) Count() uint64 { return h.n }

// Mean returns the mean observation (0 when empty).
func (h *LinearHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// MaxSeen returns the largest recorded value (0 when empty).
func (h *LinearHist) MaxSeen() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded values:
// the smallest value v such that at least ceil(q*n) observations are <= v
// — the same answer indexing a sorted slice of the observations at
// ceil(q*n)-1 would give. Returns 0 when empty; q <= 0 yields the
// minimum, q >= 1 the maximum.
func (h *LinearHist) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	rank := uint64(1)
	if q > 0 {
		// ceil(q*n) without float drift at the q=1 edge.
		if q >= 1 {
			rank = h.n
		} else {
			rank = uint64(q * float64(h.n))
			if float64(rank) < q*float64(h.n) {
				rank++
			}
			if rank == 0 {
				rank = 1
			}
			if rank > h.n {
				rank = h.n
			}
		}
	}
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= rank {
			return v
		}
	}
	return len(h.counts) - 1
}

// Add merges another histogram into this one bucket-wise, so per-shard
// histograms combine deterministically at readout: observations in
// buckets beyond this histogram's range clamp into the top bucket,
// exactly as Record would have clamped them.
func (h *LinearHist) Add(o *LinearHist) {
	if o == nil {
		return
	}
	top := len(h.counts) - 1
	for v, c := range o.counts {
		if c == 0 {
			continue
		}
		dst := v
		if dst > top {
			dst = top
		}
		h.counts[dst] += c
		h.n += c
		h.sum += uint64(dst) * c
	}
}

// Bucket returns the count of observations of exactly v (0 out of range).
func (h *LinearHist) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Dist returns a copy of the per-value counts, index = value.
func (h *LinearHist) Dist() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

package stats

// LinearHist counts observations of a small discrete quantity in [0, max]
// with one exact bucket per value — occupancy-style statistics (queue
// depths, reassembly interval counts) where the HDR histogram's
// logarithmic buckets are overkill and its per-record cost too high for a
// per-segment hot path. Recording is one bounds check and one increment.
type LinearHist struct {
	counts []uint64
	n      uint64
	sum    uint64
}

// NewLinearHist returns a histogram for values 0..max inclusive; larger
// observations clamp to max.
func NewLinearHist(max int) *LinearHist {
	if max < 0 {
		max = 0
	}
	return &LinearHist{counts: make([]uint64, max+1)}
}

// Record adds one observation (clamped to the bucket range).
func (h *LinearHist) Record(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	h.counts[v]++
	h.n++
	h.sum += uint64(v)
}

// Reset clears every bucket (end of a warmup phase).
func (h *LinearHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n = 0
	h.sum = 0
}

// Count returns the number of observations.
func (h *LinearHist) Count() uint64 { return h.n }

// Mean returns the mean observation (0 when empty).
func (h *LinearHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// MaxSeen returns the largest recorded value (0 when empty).
func (h *LinearHist) MaxSeen() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// Bucket returns the count of observations of exactly v (0 out of range).
func (h *LinearHist) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Dist returns a copy of the per-value counts, index = value.
func (h *LinearHist) Dist() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

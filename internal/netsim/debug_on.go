//go:build flexdebug

package netsim

import "fmt"

// poisonWire marks a released frame: a use-after-release that reaches the
// fabric trips checkFrame instead of silently transmitting zero bytes.
const poisonWire = -0xDB

func poisonFrame(f *Frame) {
	f.Wire = poisonWire
}

func checkFrame(f *Frame) {
	if f.Wire == poisonWire {
		panic(fmt.Sprintf("netsim: frame %p used after ReleaseFrame returned it to the pool", f))
	}
}

//go:build flexdebug

package netsim

import (
	"testing"

	"flextoe/internal/packet"
	"flextoe/internal/sim"
)

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestFrameDoubleReleasePanics(t *testing.T) {
	p := &packet.Packet{}
	f := NewFrame(p, 0)
	ReleaseFrame(f)
	mustPanic(t, "double ReleaseFrame", func() { ReleaseFrame(f) })
	_ = getFrame() // drain the poisoned entry
}

func TestFrameUseAfterReleaseCaught(t *testing.T) {
	eng := sim.New()
	a := NewIface(eng, "a", packet.EtherAddr{1}, 1e9)
	b := NewIface(eng, "b", packet.EtherAddr{2}, 1e9)
	Connect(a, b, 0)
	f := NewFrame(&packet.Packet{}, 0)
	ReleaseFrame(f)
	mustPanic(t, "Send of released frame", func() { a.Send(f) })
	_ = getFrame() // drain the poisoned entry
}

// Package netsim models the network fabric of the paper's testbed: NIC
// interfaces, full-duplex links with serialization and propagation delay,
// and a store-and-forward Ethernet switch with per-port output queues.
//
// The switch implements the behaviours §5.3's robustness experiments
// depend on: uniform random loss injection (Fig. 15), ECN marking above a
// DCTCP-style threshold (Fig. 16, Table 4), WRED with tail drop, and
// per-port rate shaping to simulate incast degrees (Table 4).
package netsim

import (
	"fmt"
	"sync/atomic"

	"flextoe/internal/packet"
	"flextoe/internal/shm"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
)

// Frame is a packet in flight, with its wire length cached.
//
// Frames are pooled: FramePool.NewFrame draws from a freelist and the
// party that takes the frame off the wire (the receiving stack's Recv
// handler, or a drop point inside the fabric) returns it with
// ReleaseFrame. A frame has exactly one owner at a time — each fabric hop
// hands it to the next, and when a hop crosses a shard boundary the
// receiving interface adopts the frame (and its packet) into its own
// shard's pools, so ReleaseFrame always recycles into the current owner's
// freelist. Dropping a frame inside the fabric also releases its packet
// (the drop point terminates the packet's journey; see the ownership rule
// in package packet).
type Frame struct {
	Pkt     *packet.Packet
	Wire    int      // bytes on the wire (Ethernet framing included)
	Ingress sim.Time // when the frame first entered the fabric

	link   *Iface // transmitting interface while on a link
	dst    *Iface // forwarding destination while queued in the switch
	pooled bool
	pool   *FramePool // owning shard's pool (re-pointed on adoption)
}

// FramePool is one shard's frame freelist. Single-threaded; use one per
// shard engine (FramesOf) or per test.
type FramePool struct {
	free shm.Freelist[Frame]
}

// defaultFrames serves the package-level NewFrame for single-threaded
// tests and examples. Sharded hot paths use FramesOf(engine).
//
//flexvet:sharedstate shard-confined — reached only from single-threaded entry points; every sharded hot path uses FramesOf(engine)
var defaultFrames = &FramePool{}

// framesKey keys the per-engine FramePool in Engine.Local.
type framesKey struct{}

func newFramePool() any { return &FramePool{} }

// FramesOf returns eng's shard-local frame pool, creating it on first use.
func FramesOf(eng *sim.Engine) *FramePool {
	return eng.Local(framesKey{}, newFramePool).(*FramePool)
}

// NewFrame wraps a packet, computing its wire length. The caller owns the
// frame until it transmits or releases it.
func (fp *FramePool) NewFrame(p *packet.Packet, now sim.Time) *Frame {
	f := fp.getFrame()
	f.Pkt = p
	f.Wire = p.WireLen()
	f.Ingress = now
	return f
}

func (fp *FramePool) getFrame() *Frame {
	if f := fp.free.Get(); f != nil {
		return f
	}
	return &Frame{pooled: true, pool: fp}
}

// NewFrame wraps a packet using the default pool. Single-threaded callers
// only; sharded hot paths use FramesOf(engine).NewFrame.
func NewFrame(p *packet.Packet, now sim.Time) *Frame {
	return defaultFrames.NewFrame(p, now)
}

// ReleaseFrame recycles a frame into the pool that currently owns it once
// its journey ends. The packet is NOT released: the caller either still
// owns it (a receiving stack) or must release it separately (a drop
// point). No-op for frames not obtained from a pool.
func ReleaseFrame(f *Frame) {
	if f == nil || !f.pooled {
		return
	}
	fp := f.pool
	*f = Frame{pooled: true, pool: fp}
	poisonFrame(f)
	fp.free.Put(f)
}

// dropFrame terminates a frame and its packet inside the fabric.
func dropFrame(f *Frame) {
	packet.Release(f.Pkt)
	ReleaseFrame(f)
}

// Iface is one end of a full-duplex link: it serializes outbound frames at
// the link rate and delivers inbound frames to its receive handler.
type Iface struct {
	Name string
	MAC  packet.EtherAddr

	eng  *sim.Engine
	tx   *sim.Resource // outbound serialization
	prop sim.Time      // propagation to the peer
	peer *Iface

	// linkID and txSeq build the delivery ordering key for frames this
	// interface transmits: dkey = linkID<<32 | txSeq. The key is the same
	// whether the peer lives on this engine or across a shard boundary,
	// which is what keeps serial and sharded runs bit-identical (see
	// sim.Engine.AtLinkCall).
	linkID uint32
	txSeq  uint32

	// wireq is the FIFO of in-flight wire sizes for cross-shard
	// transmissions: the frame itself is handed to the peer's shard at
	// send time, so the sender-side wire-out event (which debits
	// queueBytes at the same instant and ordering position as the serial
	// delivery would) must not touch it.
	wireq     []int
	wireqHead int

	// pkts/frames are this interface's shard-local pools, used to adopt
	// frames arriving across a shard boundary.
	pkts   *packet.Pool
	frames *FramePool

	// Recv handles frames arriving at this interface. Nil drops them.
	Recv func(f *Frame)

	// TxTap and RxTap, when set, passively observe every packet the
	// interface transmits (at Send time) or delivers (just before Recv).
	// Taps never take ownership of the frame or packet and charge zero
	// simulated cost — unlike core.TOE.PacketTap, which models the cycles
	// of an on-NIC capture (doc.go "Passive flow analysis"). The packet
	// is valid only for the duration of the call. Taps run on the shard
	// engine that owns the event: TxTap on the sender's shard, RxTap on
	// the receiver's.
	TxTap func(at sim.Time, pkt *packet.Packet)
	RxTap func(at sim.Time, pkt *packet.Packet)

	// Statistics.
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64

	// Per-port egress accounting, maintained by the switch that owns this
	// port (host NICs leave these zero): CE marks applied on this egress
	// queue, frames tail-dropped or WRED-dropped targeting it, and the
	// deepest occupancy ever accepted.
	ECNMarks       uint64
	TailDrops      uint64
	WREDDrops      uint64
	PeakQueueBytes int

	// queueHist, when enabled, samples the egress queue depth (in units
	// of queueHistUnit bytes) at every accepted enqueue.
	queueHist     *stats.LinearHist
	queueHistUnit int

	// queueBytes tracks bytes accepted for transmission but not yet on
	// the wire — the output queue depth used for ECN marking and WRED.
	queueBytes int
}

// EnableQueueHist attaches an egress occupancy histogram to the port:
// every accepted enqueue records the queue depth in buckets of unitBytes,
// clamped at maxBytes. unitBytes defaults to 1448, maxBytes to 1 MiB.
func (i *Iface) EnableQueueHist(unitBytes, maxBytes int) {
	if unitBytes <= 0 {
		unitBytes = 1448
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	i.queueHistUnit = unitBytes
	i.queueHist = stats.NewLinearHist(maxBytes / unitBytes)
}

// QueueHist returns the egress occupancy histogram (nil unless enabled)
// and its bucket width in bytes.
func (i *Iface) QueueHist() (*stats.LinearHist, int) { return i.queueHist, i.queueHistUnit }

// ResetQueueStats clears the peak-depth marker and occupancy histogram
// (end of a warmup phase); cumulative drop/mark counters are untouched.
func (i *Iface) ResetQueueStats() {
	i.PeakQueueBytes = 0
	if i.queueHist != nil {
		i.queueHist.Reset()
	}
}

// noteQueueDepth records an accepted enqueue that brought the egress
// queue to q bytes.
func (i *Iface) noteQueueDepth(q int) {
	if q > i.PeakQueueBytes {
		i.PeakQueueBytes = q
	}
	if i.queueHist != nil {
		i.queueHist.Record(q / i.queueHistUnit)
	}
}

// GbpsToBytesPerSec converts a Gbit/s line rate.
func GbpsToBytesPerSec(gbps float64) float64 { return gbps * 1e9 / 8 }

// linkSeq hands every interface a process-unique link id. Monotonic under
// concurrent construction, so interfaces built in order within one
// simulation always order the same way — the property delivery-key
// comparison needs; the absolute values never matter.
var linkSeq atomic.Uint32

// NewIface creates an unconnected interface with the given line rate in
// bytes/second.
func NewIface(eng *sim.Engine, name string, mac packet.EtherAddr, bytesPerSec float64) *Iface {
	return &Iface{
		Name:   name,
		MAC:    mac,
		eng:    eng,
		tx:     sim.NewResource(eng, name+"/tx", bytesPerSec),
		linkID: linkSeq.Add(1),
		pkts:   packet.PoolOf(eng),
		frames: FramesOf(eng),
	}
}

// SetRate replaces the interface's transmit rate (port shaping).
func (i *Iface) SetRate(bytesPerSec float64) {
	i.tx = sim.NewResource(i.eng, i.Name+"/tx", bytesPerSec)
}

// Connect joins two interfaces with the given propagation delay. A link
// between interfaces on different shard engines is a shard boundary: its
// earliest possible delivery (one picosecond of serialization plus the
// propagation delay) is registered as group lookahead.
func Connect(a, b *Iface, prop sim.Time) {
	a.peer, b.peer = b, a
	a.prop, b.prop = prop, prop
	if a.eng != b.eng {
		g := a.eng.Group()
		if g == nil || g != b.eng.Group() {
			panic("netsim: connecting interfaces on unrelated engines")
		}
		g.NoteBoundary(prop + sim.Picosecond)
	}
}

// QueueBytes returns the current output queue depth in bytes.
func (i *Iface) QueueBytes() int { return i.queueBytes }

// Send serializes the frame onto the wire and delivers it to the peer
// after the propagation delay. Ownership of the frame (and its packet)
// transfers to the link; an unconnected interface is a drop point.
//
// When the peer lives on another shard engine the single serial delivery
// event splits into two events sharing the same (time, dkey) position: a
// sender-local wire-out that debits queueBytes (reading only sender
// state), and a delivery injected into the peer's shard that adopts the
// frame and runs Recv (reading only receiver state plus the handed-off
// frame). Because both carry the serial event's dkey, every same-instant
// ordering decision on either engine matches the serial schedule.
func (i *Iface) Send(f *Frame) {
	checkFrame(f)
	if i.peer == nil {
		dropFrame(f)
		return
	}
	if i.TxTap != nil {
		i.TxTap(i.eng.Now(), f.Pkt)
	}
	i.TxFrames++
	i.TxBytes += uint64(f.Wire)
	i.queueBytes += f.Wire
	i.txSeq++
	dkey := uint64(i.linkID)<<32 | uint64(i.txSeq)
	end := i.tx.Reserve(int64(f.Wire), i.prop)
	f.link = i
	peer := i.peer
	if peer.eng == i.eng {
		i.eng.AtLinkCall(end, dkey, frameDelivered, f)
		return
	}
	i.wireq = append(i.wireq, f.Wire)
	i.eng.AtLinkCall(end, dkey, wireOut, i)
	i.eng.Inject(peer.eng, end, dkey, frameArrive, f)
}

// frameDelivered runs when a frame's serialization + propagation ends on
// an intra-shard link: it debits the transmit queue and hands the frame
// to the receiving interface (see Engine.AtLinkCall).
func frameDelivered(a any) {
	f := a.(*Frame)
	i := f.link
	f.link = nil
	i.queueBytes -= f.Wire
	peer := i.peer
	peer.RxFrames++
	peer.RxBytes += uint64(f.Wire)
	if peer.RxTap != nil {
		peer.RxTap(peer.eng.Now(), f.Pkt)
	}
	if peer.Recv != nil {
		peer.Recv(f)
		return
	}
	dropFrame(f)
}

// wireOut is the sender half of a cross-shard delivery: it debits
// queueBytes by the oldest in-flight wire size. Wire-out events fire in
// transmit order (per-link completion times strictly increase), so a FIFO
// of sizes suffices and the frame itself — already owned by the peer's
// shard — is never touched.
func wireOut(a any) {
	i := a.(*Iface)
	w := i.wireq[i.wireqHead]
	i.wireqHead++
	if i.wireqHead == len(i.wireq) {
		i.wireq = i.wireq[:0]
		i.wireqHead = 0
	}
	i.queueBytes -= w
}

// frameArrive is the receiver half of a cross-shard delivery, executing
// on the peer's shard engine: it adopts the frame and its packet into the
// receiving shard's pools, then delivers exactly like frameDelivered. It
// reads only the handed-off frame, the immutable link topology, and
// receiver-side state.
func frameArrive(a any) {
	f := a.(*Frame)
	i := f.link
	f.link = nil
	peer := i.peer
	if f.pooled {
		f.pool = peer.frames
	}
	peer.pkts.Adopt(f.Pkt)
	peer.RxFrames++
	peer.RxBytes += uint64(f.Wire)
	if peer.RxTap != nil {
		peer.RxTap(peer.eng.Now(), f.Pkt)
	}
	if peer.Recv != nil {
		peer.Recv(f)
		return
	}
	dropFrame(f)
}

// SwitchConfig controls the switch's queueing behaviours.
type SwitchConfig struct {
	// LossProb drops forwarded frames uniformly at random (Fig. 15's
	// loss injection). 0 disables.
	LossProb float64
	// ECNThresholdBytes marks CE on ECT frames when the egress queue
	// exceeds this depth (DCTCP's K). 0 disables marking.
	ECNThresholdBytes int
	// QueueCapBytes tail-drops frames when the egress queue would exceed
	// this depth. 0 means unbounded.
	QueueCapBytes int
	// WREDMinBytes/WREDMaxBytes enable WRED early drop: drop probability
	// rises linearly from 0 at min to WREDMaxProb at max; beyond max the
	// frame is tail-dropped. Zero values disable WRED.
	WREDMinBytes int
	WREDMaxBytes int
	WREDMaxProb  float64
	// DupProb duplicates forwarded frames uniformly at random: the
	// original and a deep copy both continue through the egress pipeline
	// (queue cap, WRED, ECN), modelling a duplicating fabric hop. 0
	// disables.
	DupProb float64
	// ReorderProb delays forwarded frames uniformly at random by
	// ReorderDelay on top of the crossbar latency, so later same-flow
	// frames overtake them (Fig. 15-style reordering without loss).
	// 0 disables; ReorderDelay must be > 0 when ReorderProb is.
	ReorderProb  float64
	ReorderDelay sim.Time
	// Latency is the fixed forwarding latency (lookup + crossbar).
	Latency sim.Time
	// Seed for the drop/mark RNG.
	Seed uint64
}

// Switch is a store-and-forward Ethernet switch with static MAC learning
// and an optional ECMP uplink group: frames whose destination MAC misses
// the table are spread across the uplinks by the flow 4-tuple's CRC-32
// hash (packet.Flow.Hash — the same hash the FlexTOE pre-processor's
// lookup engine computes), so every segment of a flow takes one path and
// per-flow ordering survives the fan-out.
type Switch struct {
	Name string

	eng     *sim.Engine
	cfg     SwitchConfig
	rng     *stats.RNG
	ports   []*Iface
	uplinks []*Iface
	table   map[packet.EtherAddr]*Iface

	// Statistics.
	Forwarded   uint64
	LossDrops   uint64
	QueueDrops  uint64
	WREDDrops   uint64
	ECNMarks    uint64
	Flooded     uint64
	DupInjected uint64 // duplicate frames created by DupProb
	Reordered   uint64 // frames delayed by ReorderProb
	ECMPPicks   uint64 // forwards resolved by uplink hashing
	// ECMPLoopDrops counts frames whose hashed uplink was their ingress
	// port — a fabric routing error (the MAC should have been learned
	// below this switch), kept separate from benign unknown-MAC floods.
	ECMPLoopDrops uint64
}

// NewSwitch creates a switch. Default forwarding latency is 600 ns if the
// config leaves it zero.
func NewSwitch(eng *sim.Engine, cfg SwitchConfig) *Switch {
	if cfg.Latency == 0 {
		cfg.Latency = 600 * sim.Nanosecond
	}
	return &Switch{
		eng:   eng,
		cfg:   cfg,
		rng:   stats.NewRNG(cfg.Seed ^ 0x5317c4),
		table: make(map[packet.EtherAddr]*Iface),
	}
}

// Config returns a pointer to the live configuration so experiments can
// adjust loss/marking mid-run.
func (s *Switch) Config() *SwitchConfig { return &s.cfg }

// AddPort creates a switch port with the given line rate and returns the
// interface to connect a host NIC to.
func (s *Switch) AddPort(name string, bytesPerSec float64) *Iface {
	port := NewIface(s.eng, fmt.Sprintf("sw/%s", name), packet.MAC(0x02, 0xff, 0, 0, 0, byte(len(s.ports))), bytesPerSec)
	port.Recv = func(f *Frame) { s.forwardFrom(port, f) }
	s.ports = append(s.ports, port)
	return port
}

// AddUplink creates a switch port that is also a member of the ECMP
// uplink group. Uplink order is the ECMP index order: every switch built
// with the same ordered uplink set maps a given flow to the same index.
func (s *Switch) AddUplink(name string, bytesPerSec float64) *Iface {
	port := s.AddPort(name, bytesPerSec)
	s.uplinks = append(s.uplinks, port)
	return port
}

// Uplinks returns the ECMP uplink ports in index order.
func (s *Switch) Uplinks() []*Iface { return s.uplinks }

// Ports returns every switch port in creation order.
func (s *Switch) Ports() []*Iface { return s.ports }

// Learn installs a static MAC table entry toward the given port.
func (s *Switch) Learn(mac packet.EtherAddr, port *Iface) {
	s.table[mac] = port
}

func (s *Switch) forwardFrom(in *Iface, f *Frame) {
	// Uniform loss injection applies to every forwarded frame. Every drop
	// terminates the frame's (and packet's) journey: the switch is the
	// owner at that point, so it releases both.
	if s.cfg.LossProb > 0 && s.rng.Bool(s.cfg.LossProb) {
		s.LossDrops++
		dropFrame(f)
		return
	}
	// Duplication injection deep-copies the surviving frame and sends the
	// copy through the same egress pipeline right behind the original.
	// Every injection draw is guarded by its probability, so a config that
	// leaves DupProb/ReorderProb zero consumes exactly the RNG stream it
	// did before these knobs existed.
	if s.cfg.DupProb > 0 && s.rng.Bool(s.cfg.DupProb) {
		s.DupInjected++
		dup := s.cloneFrame(f)
		s.forwardOne(in, f)
		s.forwardOne(in, dup)
		return
	}
	s.forwardOne(in, f)
}

// cloneFrame deep-copies a frame for duplication injection: a fresh pooled
// packet takes struct copies of the headers and a payload copy, so the
// duplicate's journey is owned independently of the original's.
func (s *Switch) cloneFrame(f *Frame) *Frame {
	p := packet.PoolOf(s.eng).Get()
	p.Eth = f.Pkt.Eth
	p.IP = f.Pkt.IP
	p.TCP = f.Pkt.TCP
	if n := len(f.Pkt.Payload); n > 0 {
		copy(p.GrowPayload(n), f.Pkt.Payload)
	}
	return FramesOf(s.eng).NewFrame(p, f.Ingress)
}

// forwardOne runs one frame through lookup and the egress pipeline.
func (s *Switch) forwardOne(in *Iface, f *Frame) {
	out, ok := s.table[f.Pkt.Eth.Dst]
	if !ok {
		if len(s.uplinks) > 0 {
			// ECMP: hash the flow 4-tuple onto an uplink. A frame that
			// arrived on the chosen uplink would loop back up the fabric
			// (the MAC should have been learned below us) — drop it
			// instead of forwarding a routing error forever.
			out = s.uplinks[int(f.Pkt.Flow().Hash()%uint32(len(s.uplinks)))]
			if out == in {
				s.ECMPLoopDrops++
				dropFrame(f)
				return
			}
			s.ECMPPicks++
		} else {
			s.Flooded++
			dropFrame(f)
			return
		}
	}
	q := out.QueueBytes() + f.Wire
	if s.cfg.QueueCapBytes > 0 && q > s.cfg.QueueCapBytes {
		s.QueueDrops++
		out.TailDrops++
		dropFrame(f)
		return
	}
	if s.cfg.WREDMaxBytes > 0 {
		switch {
		case q > s.cfg.WREDMaxBytes:
			s.WREDDrops++
			out.WREDDrops++
			dropFrame(f)
			return
		case q > s.cfg.WREDMinBytes:
			frac := float64(q-s.cfg.WREDMinBytes) / float64(s.cfg.WREDMaxBytes-s.cfg.WREDMinBytes)
			if s.rng.Bool(frac * s.cfg.WREDMaxProb) {
				s.WREDDrops++
				out.WREDDrops++
				dropFrame(f)
				return
			}
		}
	}
	if s.cfg.ECNThresholdBytes > 0 && q > s.cfg.ECNThresholdBytes &&
		f.Pkt.IP.ECN() != packet.ECNNotECT {
		f.Pkt.IP.SetECN(packet.ECNCE)
		s.ECNMarks++
		out.ECNMarks++
	}
	s.Forwarded++
	out.noteQueueDepth(q)
	f.dst = out
	delay := s.cfg.Latency
	// Reorder injection holds the frame in the crossbar for ReorderDelay
	// extra, letting later same-flow frames overtake it.
	if s.cfg.ReorderProb > 0 && s.rng.Bool(s.cfg.ReorderProb) {
		s.Reordered++
		delay += s.cfg.ReorderDelay
	}
	s.eng.AfterCall(delay, switchDeliver, f)
}

// switchDeliver moves a frame from the switch crossbar onto its egress
// port (see Engine.AtCall).
func switchDeliver(a any) {
	f := a.(*Frame)
	out := f.dst
	f.dst = nil
	out.Send(f)
}

// Network bundles a switch and the host-side interfaces for convenience.
type Network struct {
	Eng    *sim.Engine
	Switch *Switch
	hosts  map[string]*Iface
}

// NewNetwork creates a network around one switch.
func NewNetwork(eng *sim.Engine, cfg SwitchConfig) *Network {
	return &Network{Eng: eng, Switch: NewSwitch(eng, cfg), hosts: make(map[string]*Iface)}
}

// AttachHost creates a host NIC interface connected to a new switch port
// at the given rate, registers its MAC, and returns it.
func (n *Network) AttachHost(name string, mac packet.EtherAddr, bytesPerSec float64, prop sim.Time) *Iface {
	return n.AttachHostOn(n.Eng, name, mac, bytesPerSec, prop)
}

// AttachHostOn is AttachHost with the host NIC placed on a specific shard
// engine; the switch port stays on the network's engine, making the
// host-leaf link the shard boundary.
func (n *Network) AttachHostOn(eng *sim.Engine, name string, mac packet.EtherAddr, bytesPerSec float64, prop sim.Time) *Iface {
	host := NewIface(eng, name, mac, bytesPerSec)
	port := n.Switch.AddPort(name, bytesPerSec)
	Connect(host, port, prop)
	n.Switch.Learn(mac, port)
	n.hosts[name] = host
	return host
}

// Host returns a previously attached host interface.
func (n *Network) Host(name string) *Iface { return n.hosts[name] }

// ShapePort restricts the switch-side egress rate toward the named host
// (used by the incast experiment to emulate a shaped port).
func (n *Network) ShapePort(name string, bytesPerSec float64) {
	host := n.hosts[name]
	if host == nil || host.peer == nil {
		return
	}
	host.peer.SetRate(bytesPerSec)
}

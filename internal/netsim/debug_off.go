//go:build !flexdebug

package netsim

func poisonFrame(f *Frame) {}
func checkFrame(f *Frame)  {}

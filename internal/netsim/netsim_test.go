package netsim

import (
	"testing"

	"flextoe/internal/packet"
	"flextoe/internal/sim"
)

func testPacket(src, dst packet.EtherAddr, payload int) *packet.Packet {
	return &packet.Packet{
		Eth: packet.Ethernet{Src: src, Dst: dst, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoTCP,
			Src: packet.IP(10, 0, 0, 1), Dst: packet.IP(10, 0, 0, 2),
			TOS: packet.ECNECT0,
		},
		TCP:     packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK, WScale: -1},
		Payload: make([]byte, payload),
	}
}

func buildNet(t *testing.T, cfg SwitchConfig) (*sim.Engine, *Network, *Iface, *Iface) {
	t.Helper()
	eng := sim.New()
	n := NewNetwork(eng, cfg)
	macA := packet.MAC(2, 0, 0, 0, 0, 1)
	macB := packet.MAC(2, 0, 0, 0, 0, 2)
	a := n.AttachHost("a", macA, GbpsToBytesPerSec(40), 100*sim.Nanosecond)
	b := n.AttachHost("b", macB, GbpsToBytesPerSec(40), 100*sim.Nanosecond)
	return eng, n, a, b
}

func TestDelivery(t *testing.T) {
	eng, _, a, b := buildNet(t, SwitchConfig{})
	var got *Frame
	var at sim.Time
	b.Recv = func(f *Frame) { got = f; at = eng.Now() }
	pkt := testPacket(a.MAC, b.MAC, 1000)
	eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	eng.Run()
	if got == nil {
		t.Fatal("frame not delivered")
	}
	// Latency = serialization at both hops + 2 props + switch latency.
	wire := float64(got.Wire)
	serial := sim.Time(wire / GbpsToBytesPerSec(40) * 1e12)
	want := 2*serial + 2*100*sim.Nanosecond + 600*sim.Nanosecond
	if at < want-2 || at > want+2 {
		t.Fatalf("delivery at %v, want ~%v", at, want)
	}
}

func TestUnknownMACDropped(t *testing.T) {
	eng, n, a, b := buildNet(t, SwitchConfig{})
	delivered := false
	b.Recv = func(f *Frame) { delivered = true }
	pkt := testPacket(a.MAC, packet.MAC(9, 9, 9, 9, 9, 9), 100)
	eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	eng.Run()
	if delivered {
		t.Fatal("frame to unknown MAC delivered")
	}
	if n.Switch.Flooded != 1 {
		t.Fatalf("flooded = %d", n.Switch.Flooded)
	}
}

func TestLossInjection(t *testing.T) {
	eng, n, a, b := buildNet(t, SwitchConfig{LossProb: 0.5, Seed: 42})
	received := 0
	b.Recv = func(f *Frame) { received++ }
	const total = 2000
	for i := 0; i < total; i++ {
		pkt := testPacket(a.MAC, b.MAC, 64)
		at := sim.Time(i) * sim.Microsecond
		eng.At(at, func() { a.Send(NewFrame(pkt, at)) })
	}
	eng.Run()
	if received < total*40/100 || received > total*60/100 {
		t.Fatalf("received %d/%d with 50%% loss", received, total)
	}
	if n.Switch.LossDrops+uint64(received) != total {
		t.Fatalf("drops %d + received %d != %d", n.Switch.LossDrops, received, total)
	}
}

func TestECNMarking(t *testing.T) {
	// Slow egress port so the queue builds; frames above threshold get CE.
	eng := sim.New()
	n := NewNetwork(eng, SwitchConfig{ECNThresholdBytes: 3000})
	macA := packet.MAC(2, 0, 0, 0, 0, 1)
	macB := packet.MAC(2, 0, 0, 0, 0, 2)
	a := n.AttachHost("a", macA, GbpsToBytesPerSec(40), 100*sim.Nanosecond)
	b := n.AttachHost("b", macB, GbpsToBytesPerSec(0.1), 100*sim.Nanosecond)
	var marked, unmarked int
	b.Recv = func(f *Frame) {
		if f.Pkt.IP.ECN() == packet.ECNCE {
			marked++
		} else {
			unmarked++
		}
	}
	for i := 0; i < 20; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		eng.At(sim.Time(i)*sim.Microsecond, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.Run()
	if marked == 0 {
		t.Fatal("no CE marks despite queue buildup")
	}
	if unmarked == 0 {
		t.Fatal("every frame marked; first frames should pass unmarked")
	}
	if n.Switch.ECNMarks != uint64(marked) {
		t.Fatalf("switch counted %d marks, delivered %d", n.Switch.ECNMarks, marked)
	}
}

func TestNotECTNeverMarked(t *testing.T) {
	eng := sim.New()
	n := NewNetwork(eng, SwitchConfig{ECNThresholdBytes: 1000})
	a := n.AttachHost("a", packet.MAC(2, 0, 0, 0, 0, 1), GbpsToBytesPerSec(40), 0)
	b := n.AttachHost("b", packet.MAC(2, 0, 0, 0, 0, 2), GbpsToBytesPerSec(0.05), 0)
	marked := 0
	b.Recv = func(f *Frame) {
		if f.Pkt.IP.ECN() == packet.ECNCE {
			marked++
		}
	}
	for i := 0; i < 10; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		pkt.IP.SetECN(packet.ECNNotECT)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.Run()
	if marked != 0 {
		t.Fatalf("%d Not-ECT frames marked", marked)
	}
}

func TestTailDrop(t *testing.T) {
	eng := sim.New()
	n := NewNetwork(eng, SwitchConfig{QueueCapBytes: 4000})
	a := n.AttachHost("a", packet.MAC(2, 0, 0, 0, 0, 1), GbpsToBytesPerSec(40), 0)
	b := n.AttachHost("b", packet.MAC(2, 0, 0, 0, 0, 2), GbpsToBytesPerSec(0.01), 0)
	received := 0
	b.Recv = func(f *Frame) { received++ }
	for i := 0; i < 50; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.RunUntil(10 * sim.Millisecond)
	if n.Switch.QueueDrops == 0 {
		t.Fatal("no tail drops despite tiny queue")
	}
	if received+int(n.Switch.QueueDrops) != 50 {
		t.Fatalf("received %d + drops %d != 50", received, n.Switch.QueueDrops)
	}
}

func TestWREDDropsRise(t *testing.T) {
	eng := sim.New()
	n := NewNetwork(eng, SwitchConfig{
		WREDMinBytes: 2000, WREDMaxBytes: 8000, WREDMaxProb: 1.0, Seed: 7,
	})
	a := n.AttachHost("a", packet.MAC(2, 0, 0, 0, 0, 1), GbpsToBytesPerSec(40), 0)
	b := n.AttachHost("b", packet.MAC(2, 0, 0, 0, 0, 2), GbpsToBytesPerSec(0.01), 0)
	b.Recv = func(f *Frame) {}
	for i := 0; i < 100; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.RunUntil(100 * sim.Millisecond)
	if n.Switch.WREDDrops == 0 {
		t.Fatal("WRED never dropped")
	}
}

func TestPortShaping(t *testing.T) {
	eng, n, a, b := buildNet(t, SwitchConfig{})
	var last sim.Time
	count := 0
	b.Recv = func(f *Frame) { last = eng.Now(); count++ }
	// Shape the egress toward b down to 1 Gbps.
	n.ShapePort("b", GbpsToBytesPerSec(1))
	const frames = 100
	for i := 0; i < frames; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.Run()
	if count != frames {
		t.Fatalf("delivered %d/%d", count, frames)
	}
	// ~100 frames * ~1462B at 1 Gbps ≈ 1.17 ms.
	wire := testPacket(a.MAC, b.MAC, 1400).WireLen()
	expect := sim.Time(float64(frames*wire) / GbpsToBytesPerSec(1) * 1e12)
	if last < expect*9/10 {
		t.Fatalf("finished at %v, expected >= %v (shaping not applied)", last, expect)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	eng, _, a, b := buildNet(t, SwitchConfig{})
	var seqs []uint32
	b.Recv = func(f *Frame) { seqs = append(seqs, f.Pkt.TCP.Seq) }
	for i := 0; i < 100; i++ {
		pkt := testPacket(a.MAC, b.MAC, 200)
		pkt.TCP.Seq = uint32(i)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.Run()
	for i, s := range seqs {
		if s != uint32(i) {
			t.Fatalf("frames reordered by fabric: %v", seqs)
		}
	}
}

// sendSpaced schedules frames 2 us apart so each forward decision sees
// the previous frame's queue contribution (the 600 ns crossbar transit
// must complete before the next frame is classified).
func sendSpaced(eng *sim.Engine, a *Iface, pkts []*packet.Packet) {
	for i, pkt := range pkts {
		p := pkt
		eng.At(sim.Time(i)*2*sim.Microsecond, func() { a.Send(NewFrame(p, 0)) })
	}
}

// slowSinkNet builds a fast ingress into a crawling egress so the egress
// queue holds exactly the accepted frames for the whole test window.
func slowSinkNet(cfg SwitchConfig) (*sim.Engine, *Network, *Iface, *Iface) {
	eng := sim.New()
	n := NewNetwork(eng, cfg)
	a := n.AttachHost("a", packet.MAC(2, 0, 0, 0, 0, 1), GbpsToBytesPerSec(40), 0)
	b := n.AttachHost("b", packet.MAC(2, 0, 0, 0, 0, 2), GbpsToBytesPerSec(0.01), 0)
	b.Recv = func(f *Frame) { ReleaseFrame(f) }
	return eng, n, a, b
}

// TestECNMarkBoundaryExact pins the marking rule at the threshold: a
// frame whose enqueue brings the queue to exactly ECNThresholdBytes is
// NOT marked; one byte beyond is. With equal-size frames and K = 3 wire
// lengths, frames 1-3 pass clean and every later frame is marked.
func TestECNMarkBoundaryExact(t *testing.T) {
	wire := testPacket(packet.MAC(0, 0, 0, 0, 0, 0), packet.MAC(0, 0, 0, 0, 0, 0), 1400).WireLen()
	eng, n, a, _ := slowSinkNet(SwitchConfig{ECNThresholdBytes: 3 * wire})
	var pkts []*packet.Packet
	for i := 0; i < 6; i++ {
		pkts = append(pkts, testPacket(a.MAC, packet.MAC(2, 0, 0, 0, 0, 2), 1400))
	}
	sendSpaced(eng, a, pkts)
	eng.RunUntil(20 * sim.Microsecond)
	for i, pkt := range pkts {
		marked := pkt.IP.ECN() == packet.ECNCE
		if i < 3 && marked {
			t.Fatalf("frame %d (queue <= K) marked", i)
		}
		if i >= 3 && !marked {
			t.Fatalf("frame %d (queue > K) not marked", i)
		}
	}
	if n.Switch.ECNMarks != 3 {
		t.Fatalf("ECNMarks = %d, want 3", n.Switch.ECNMarks)
	}
}

// TestTailDropBoundaryAccounting pins the cap rule: frames are accepted
// while queue + wire <= QueueCapBytes, dropped beyond, with switch and
// per-port counters agreeing and the peak depth equal to the cap.
func TestTailDropBoundaryAccounting(t *testing.T) {
	wire := testPacket(packet.MAC(0, 0, 0, 0, 0, 0), packet.MAC(0, 0, 0, 0, 0, 0), 1400).WireLen()
	eng, n, a, b := slowSinkNet(SwitchConfig{QueueCapBytes: 3 * wire})
	port := b.peer
	port.EnableQueueHist(wire, 10*wire)
	var pkts []*packet.Packet
	for i := 0; i < 6; i++ {
		pkts = append(pkts, testPacket(a.MAC, b.MAC, 1400))
	}
	sendSpaced(eng, a, pkts)
	eng.RunUntil(20 * sim.Microsecond)
	if n.Switch.QueueDrops != 3 {
		t.Fatalf("QueueDrops = %d, want 3 (frames 4-6)", n.Switch.QueueDrops)
	}
	if port.TailDrops != n.Switch.QueueDrops {
		t.Fatalf("per-port TailDrops %d != switch QueueDrops %d", port.TailDrops, n.Switch.QueueDrops)
	}
	if port.PeakQueueBytes != 3*wire {
		t.Fatalf("PeakQueueBytes = %d, want %d", port.PeakQueueBytes, 3*wire)
	}
	hist, unit := port.QueueHist()
	if unit != wire || hist.Count() != 3 {
		t.Fatalf("occupancy samples = %d (unit %d), want 3 accepted enqueues", hist.Count(), unit)
	}
	if hist.Bucket(1) != 1 || hist.Bucket(2) != 1 || hist.Bucket(3) != 1 {
		t.Fatalf("occupancy distribution = %v, want one sample each at 1,2,3 wires", hist.Dist())
	}
}

// TestWREDBoundaries pins the three WRED regions: at or below min no
// early drop ever happens; between min and max the drop probability is
// frac*WREDMaxProb (frac 1.0 exactly at max); beyond max the drop is
// unconditional. WREDMaxProb=0 isolates the regions: only the
// beyond-max tail can drop.
func TestWREDBoundaries(t *testing.T) {
	wire := testPacket(packet.MAC(0, 0, 0, 0, 0, 0), packet.MAC(0, 0, 0, 0, 0, 0), 1400).WireLen()
	eng, n, a, b := slowSinkNet(SwitchConfig{
		WREDMinBytes: 2 * wire, WREDMaxBytes: 4 * wire, WREDMaxProb: 0, Seed: 3,
	})
	var pkts []*packet.Packet
	for i := 0; i < 6; i++ {
		pkts = append(pkts, testPacket(a.MAC, b.MAC, 1400))
	}
	sendSpaced(eng, a, pkts)
	eng.RunUntil(20 * sim.Microsecond)
	// Frames 1-4 land at q = 1..4 wires (<= max): with MaxProb 0 none may
	// drop, including the frame exactly at max (probability path, not the
	// unconditional tail). Frames 5-6 land beyond max: always dropped.
	if n.Switch.WREDDrops != 2 {
		t.Fatalf("WREDDrops = %d, want 2 (only the beyond-max tail)", n.Switch.WREDDrops)
	}
	if b.peer.WREDDrops != 2 {
		t.Fatalf("per-port WREDDrops = %d", b.peer.WREDDrops)
	}

	// With MaxProb 1.0 the frame exactly at max must drop (frac = 1.0)
	// and frames at or below min must still always pass.
	eng2, n2, a2, b2 := slowSinkNet(SwitchConfig{
		WREDMinBytes: 2 * wire, WREDMaxBytes: 4 * wire, WREDMaxProb: 1.0, Seed: 3,
	})
	accepted := func() int { return int(b2.peer.QueueBytes() / wire) }
	var pkts2 []*packet.Packet
	for i := 0; i < 2; i++ {
		pkts2 = append(pkts2, testPacket(a2.MAC, b2.MAC, 1400))
	}
	sendSpaced(eng2, a2, pkts2)
	eng2.RunUntil(10 * sim.Microsecond)
	if n2.Switch.WREDDrops != 0 || accepted() != 2 {
		t.Fatalf("frames at or below min dropped: drops=%d accepted=%d", n2.Switch.WREDDrops, accepted())
	}
	// Fill to one below max, then the frame arriving exactly at max must
	// be dropped with probability frac*1.0 = 1.
	more := []*packet.Packet{testPacket(a2.MAC, b2.MAC, 1400), testPacket(a2.MAC, b2.MAC, 1400)}
	eng2.At(eng2.Now()+2*sim.Microsecond, func() { a2.Send(NewFrame(more[0], 0)) })
	eng2.At(eng2.Now()+4*sim.Microsecond, func() { a2.Send(NewFrame(more[1], 0)) })
	eng2.RunUntil(eng2.Now() + 10*sim.Microsecond)
	// Frame 3 at q=3w: frac=0.5 — seeded outcome either way; frame 4 (or
	// the next surviving) reaches q=max: frac=1.0 must drop.
	if n2.Switch.WREDDrops == 0 {
		t.Fatal("MaxProb=1.0 never dropped approaching max")
	}
	if accepted() > 3 {
		t.Fatalf("queue exceeded max-1 frames with MaxProb=1: %d accepted", accepted())
	}
}

// TestDropPointsReleaseFrameAndPacket: every switch drop point must
// terminate the journey — returning both the pooled frame and the pooled
// packet. The pools are LIFO, so the dropped objects must be the next
// ones handed out.
func TestDropPointsReleaseFrameAndPacket(t *testing.T) {
	wire := testPacket(packet.MAC(0, 0, 0, 0, 0, 0), packet.MAC(0, 0, 0, 0, 0, 0), 1400).WireLen()
	cases := []struct {
		name string
		cfg  SwitchConfig
		dst  func(b *Iface) packet.EtherAddr // frame destination
		prep int                             // frames to enqueue first
	}{
		{"loss", SwitchConfig{LossProb: 1.0, Seed: 1}, func(b *Iface) packet.EtherAddr { return b.MAC }, 0},
		{"flood", SwitchConfig{}, func(*Iface) packet.EtherAddr { return packet.MAC(9, 9, 9, 9, 9, 9) }, 0},
		{"taildrop", SwitchConfig{QueueCapBytes: 1 * wire}, func(b *Iface) packet.EtherAddr { return b.MAC }, 1},
		{"wredtail", SwitchConfig{WREDMinBytes: 1, WREDMaxBytes: 1 * wire, WREDMaxProb: 0}, func(b *Iface) packet.EtherAddr { return b.MAC }, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, _, a, b := slowSinkNet(tc.cfg)
			// Pre-fill the queue so the victim frame lands beyond the bound.
			var pkts []*packet.Packet
			for i := 0; i < tc.prep; i++ {
				pkts = append(pkts, testPacket(a.MAC, b.MAC, 1400))
			}
			victim := packet.Get()
			src := testPacket(a.MAC, tc.dst(b), 1400)
			victim.Eth, victim.IP, victim.TCP = src.Eth, src.IP, src.TCP
			victim.GrowPayload(len(src.Payload))
			pkts = append(pkts, victim)
			sendSpaced(eng, a, pkts)
			eng.RunUntil(sim.Time(len(pkts)) * 4 * sim.Microsecond)
			if got := packet.Get(); got != victim {
				t.Fatalf("dropped packet not recycled: pool returned %p, want %p", got, victim)
			}
			if f := defaultFrames.free.Get(); f == nil {
				t.Fatal("dropped frame not returned to the freelist")
			}
		})
	}
}

func TestIfaceCounters(t *testing.T) {
	eng, _, a, b := buildNet(t, SwitchConfig{})
	b.Recv = func(f *Frame) {}
	pkt := testPacket(a.MAC, b.MAC, 500)
	eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	eng.Run()
	if a.TxFrames != 1 || b.RxFrames != 1 {
		t.Fatalf("counters: tx=%d rx=%d", a.TxFrames, b.RxFrames)
	}
	if a.TxBytes != uint64(pkt.WireLen()) {
		t.Fatalf("TxBytes = %d", a.TxBytes)
	}
}

// TestPassiveTaps: TxTap fires at Send time on the sender, RxTap at
// delivery on the receiver; taps observe the packet without taking
// ownership (the frame still reaches Recv intact) and fire even on
// frames the switch later drops (TxTap) or that arrive with no Recv
// handler (RxTap).
func TestPassiveTaps(t *testing.T) {
	eng, _, a, b := buildNet(t, SwitchConfig{})
	var txAt, rxAt sim.Time
	var txSeen, rxSeen, delivered int
	a.TxTap = func(at sim.Time, pkt *packet.Packet) {
		txSeen++
		txAt = at
		if pkt.TCP.SrcPort != 1 {
			t.Errorf("TxTap packet src port = %d", pkt.TCP.SrcPort)
		}
	}
	b.RxTap = func(at sim.Time, pkt *packet.Packet) {
		rxSeen++
		rxAt = at
		if pkt.TCP.DstPort != 2 {
			t.Errorf("RxTap packet dst port = %d", pkt.TCP.DstPort)
		}
	}
	b.Recv = func(f *Frame) {
		delivered++
		dropFrame(f)
	}
	pkt := testPacket(a.MAC, b.MAC, 500)
	eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	eng.Run()
	if txSeen != 1 || rxSeen != 1 || delivered != 1 {
		t.Fatalf("tx=%d rx=%d delivered=%d, want 1/1/1", txSeen, rxSeen, delivered)
	}
	if txAt != 0 {
		t.Fatalf("TxTap at %v, want send time 0", txAt)
	}
	if rxAt <= txAt {
		t.Fatalf("RxTap at %v, must be after TxTap at %v", rxAt, txAt)
	}
}

// TestTapsAreFreeAndOrderNeutral: attaching taps must not change the
// simulation by one picosecond or one event — the zero-cost contract the
// analyzer relies on (core.TOE.PacketTapCost models the expensive kind).
func TestTapsAreFreeAndOrderNeutral(t *testing.T) {
	run := func(tap bool) (deliveries int, last sim.Time) {
		eng, _, a, b := buildNet(t, SwitchConfig{})
		if tap {
			count := func(at sim.Time, pkt *packet.Packet) {}
			a.TxTap, a.RxTap = count, count
			b.TxTap, b.RxTap = count, count
		}
		b.Recv = func(f *Frame) {
			deliveries++
			last = eng.Now()
			dropFrame(f)
		}
		for i := 0; i < 50; i++ {
			pkt := testPacket(a.MAC, b.MAC, 100+i*7)
			eng.At(sim.Time(i)*sim.Microsecond, func() { a.Send(NewFrame(pkt, 0)) })
		}
		eng.Run()
		return
	}
	n0, t0 := run(false)
	n1, t1 := run(true)
	if n0 != n1 || t0 != t1 {
		t.Fatalf("taps changed the run: %d@%v vs %d@%v", n0, t0, n1, t1)
	}
	if n0 != 50 {
		t.Fatalf("deliveries = %d, want 50", n0)
	}
}

package netsim

import (
	"testing"

	"flextoe/internal/packet"
	"flextoe/internal/sim"
)

func testPacket(src, dst packet.EtherAddr, payload int) *packet.Packet {
	return &packet.Packet{
		Eth: packet.Ethernet{Src: src, Dst: dst, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoTCP,
			Src: packet.IP(10, 0, 0, 1), Dst: packet.IP(10, 0, 0, 2),
			TOS: packet.ECNECT0,
		},
		TCP:     packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK, WScale: -1},
		Payload: make([]byte, payload),
	}
}

func buildNet(t *testing.T, cfg SwitchConfig) (*sim.Engine, *Network, *Iface, *Iface) {
	t.Helper()
	eng := sim.New()
	n := NewNetwork(eng, cfg)
	macA := packet.MAC(2, 0, 0, 0, 0, 1)
	macB := packet.MAC(2, 0, 0, 0, 0, 2)
	a := n.AttachHost("a", macA, GbpsToBytesPerSec(40), 100*sim.Nanosecond)
	b := n.AttachHost("b", macB, GbpsToBytesPerSec(40), 100*sim.Nanosecond)
	return eng, n, a, b
}

func TestDelivery(t *testing.T) {
	eng, _, a, b := buildNet(t, SwitchConfig{})
	var got *Frame
	var at sim.Time
	b.Recv = func(f *Frame) { got = f; at = eng.Now() }
	pkt := testPacket(a.MAC, b.MAC, 1000)
	eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	eng.Run()
	if got == nil {
		t.Fatal("frame not delivered")
	}
	// Latency = serialization at both hops + 2 props + switch latency.
	wire := float64(got.Wire)
	serial := sim.Time(wire / GbpsToBytesPerSec(40) * 1e12)
	want := 2*serial + 2*100*sim.Nanosecond + 600*sim.Nanosecond
	if at < want-2 || at > want+2 {
		t.Fatalf("delivery at %v, want ~%v", at, want)
	}
}

func TestUnknownMACDropped(t *testing.T) {
	eng, n, a, b := buildNet(t, SwitchConfig{})
	delivered := false
	b.Recv = func(f *Frame) { delivered = true }
	pkt := testPacket(a.MAC, packet.MAC(9, 9, 9, 9, 9, 9), 100)
	eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	eng.Run()
	if delivered {
		t.Fatal("frame to unknown MAC delivered")
	}
	if n.Switch.Flooded != 1 {
		t.Fatalf("flooded = %d", n.Switch.Flooded)
	}
}

func TestLossInjection(t *testing.T) {
	eng, n, a, b := buildNet(t, SwitchConfig{LossProb: 0.5, Seed: 42})
	received := 0
	b.Recv = func(f *Frame) { received++ }
	const total = 2000
	for i := 0; i < total; i++ {
		pkt := testPacket(a.MAC, b.MAC, 64)
		at := sim.Time(i) * sim.Microsecond
		eng.At(at, func() { a.Send(NewFrame(pkt, at)) })
	}
	eng.Run()
	if received < total*40/100 || received > total*60/100 {
		t.Fatalf("received %d/%d with 50%% loss", received, total)
	}
	if n.Switch.LossDrops+uint64(received) != total {
		t.Fatalf("drops %d + received %d != %d", n.Switch.LossDrops, received, total)
	}
}

func TestECNMarking(t *testing.T) {
	// Slow egress port so the queue builds; frames above threshold get CE.
	eng := sim.New()
	n := NewNetwork(eng, SwitchConfig{ECNThresholdBytes: 3000})
	macA := packet.MAC(2, 0, 0, 0, 0, 1)
	macB := packet.MAC(2, 0, 0, 0, 0, 2)
	a := n.AttachHost("a", macA, GbpsToBytesPerSec(40), 100*sim.Nanosecond)
	b := n.AttachHost("b", macB, GbpsToBytesPerSec(0.1), 100*sim.Nanosecond)
	var marked, unmarked int
	b.Recv = func(f *Frame) {
		if f.Pkt.IP.ECN() == packet.ECNCE {
			marked++
		} else {
			unmarked++
		}
	}
	for i := 0; i < 20; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		eng.At(sim.Time(i)*sim.Microsecond, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.Run()
	if marked == 0 {
		t.Fatal("no CE marks despite queue buildup")
	}
	if unmarked == 0 {
		t.Fatal("every frame marked; first frames should pass unmarked")
	}
	if n.Switch.ECNMarks != uint64(marked) {
		t.Fatalf("switch counted %d marks, delivered %d", n.Switch.ECNMarks, marked)
	}
}

func TestNotECTNeverMarked(t *testing.T) {
	eng := sim.New()
	n := NewNetwork(eng, SwitchConfig{ECNThresholdBytes: 1000})
	a := n.AttachHost("a", packet.MAC(2, 0, 0, 0, 0, 1), GbpsToBytesPerSec(40), 0)
	b := n.AttachHost("b", packet.MAC(2, 0, 0, 0, 0, 2), GbpsToBytesPerSec(0.05), 0)
	marked := 0
	b.Recv = func(f *Frame) {
		if f.Pkt.IP.ECN() == packet.ECNCE {
			marked++
		}
	}
	for i := 0; i < 10; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		pkt.IP.SetECN(packet.ECNNotECT)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.Run()
	if marked != 0 {
		t.Fatalf("%d Not-ECT frames marked", marked)
	}
}

func TestTailDrop(t *testing.T) {
	eng := sim.New()
	n := NewNetwork(eng, SwitchConfig{QueueCapBytes: 4000})
	a := n.AttachHost("a", packet.MAC(2, 0, 0, 0, 0, 1), GbpsToBytesPerSec(40), 0)
	b := n.AttachHost("b", packet.MAC(2, 0, 0, 0, 0, 2), GbpsToBytesPerSec(0.01), 0)
	received := 0
	b.Recv = func(f *Frame) { received++ }
	for i := 0; i < 50; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.RunUntil(10 * sim.Millisecond)
	if n.Switch.QueueDrops == 0 {
		t.Fatal("no tail drops despite tiny queue")
	}
	if received+int(n.Switch.QueueDrops) != 50 {
		t.Fatalf("received %d + drops %d != 50", received, n.Switch.QueueDrops)
	}
}

func TestWREDDropsRise(t *testing.T) {
	eng := sim.New()
	n := NewNetwork(eng, SwitchConfig{
		WREDMinBytes: 2000, WREDMaxBytes: 8000, WREDMaxProb: 1.0, Seed: 7,
	})
	a := n.AttachHost("a", packet.MAC(2, 0, 0, 0, 0, 1), GbpsToBytesPerSec(40), 0)
	b := n.AttachHost("b", packet.MAC(2, 0, 0, 0, 0, 2), GbpsToBytesPerSec(0.01), 0)
	b.Recv = func(f *Frame) {}
	for i := 0; i < 100; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.RunUntil(100 * sim.Millisecond)
	if n.Switch.WREDDrops == 0 {
		t.Fatal("WRED never dropped")
	}
}

func TestPortShaping(t *testing.T) {
	eng, n, a, b := buildNet(t, SwitchConfig{})
	var last sim.Time
	count := 0
	b.Recv = func(f *Frame) { last = eng.Now(); count++ }
	// Shape the egress toward b down to 1 Gbps.
	n.ShapePort("b", GbpsToBytesPerSec(1))
	const frames = 100
	for i := 0; i < frames; i++ {
		pkt := testPacket(a.MAC, b.MAC, 1400)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.Run()
	if count != frames {
		t.Fatalf("delivered %d/%d", count, frames)
	}
	// ~100 frames * ~1462B at 1 Gbps ≈ 1.17 ms.
	wire := testPacket(a.MAC, b.MAC, 1400).WireLen()
	expect := sim.Time(float64(frames*wire) / GbpsToBytesPerSec(1) * 1e12)
	if last < expect*9/10 {
		t.Fatalf("finished at %v, expected >= %v (shaping not applied)", last, expect)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	eng, _, a, b := buildNet(t, SwitchConfig{})
	var seqs []uint32
	b.Recv = func(f *Frame) { seqs = append(seqs, f.Pkt.TCP.Seq) }
	for i := 0; i < 100; i++ {
		pkt := testPacket(a.MAC, b.MAC, 200)
		pkt.TCP.Seq = uint32(i)
		eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	}
	eng.Run()
	for i, s := range seqs {
		if s != uint32(i) {
			t.Fatalf("frames reordered by fabric: %v", seqs)
		}
	}
}

func TestIfaceCounters(t *testing.T) {
	eng, _, a, b := buildNet(t, SwitchConfig{})
	b.Recv = func(f *Frame) {}
	pkt := testPacket(a.MAC, b.MAC, 500)
	eng.At(0, func() { a.Send(NewFrame(pkt, 0)) })
	eng.Run()
	if a.TxFrames != 1 || b.RxFrames != 1 {
		t.Fatalf("counters: tx=%d rx=%d", a.TxFrames, b.RxFrames)
	}
	if a.TxBytes != uint64(pkt.WireLen()) {
		t.Fatalf("TxBytes = %d", a.TxBytes)
	}
}

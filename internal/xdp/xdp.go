// Package xdp defines FlexTOE's eXpress Data Path module interface
// (§3.3): programs that operate on raw packets inside the data-path
// pipeline and return a verdict. Programs may be written natively in Go
// or in eBPF bytecode (see internal/ebpf); both report the instruction
// count they executed so the pipeline charges real simulated cycles.
package xdp

// Verdict is an XDP program's result code.
type Verdict int

const (
	// Pass forwards the packet to the next FlexTOE pipeline stage.
	Pass Verdict = iota
	// Drop discards the packet.
	Drop
	// TX sends the packet out the MAC immediately.
	TX
	// Redirect forwards the packet to the control plane.
	Redirect
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "XDP_PASS"
	case Drop:
		return "XDP_DROP"
	case TX:
		return "XDP_TX"
	case Redirect:
		return "XDP_REDIRECT"
	}
	return "XDP_UNKNOWN"
}

// Context is the packet view handed to a program: the raw frame bytes,
// mutable in place. Length changes (e.g. VLAN strip) shrink or grow Data.
type Context struct {
	Data []byte
}

// Program is an XDP module. Run may mutate ctx.Data and returns the
// verdict plus the number of instructions executed (the pipeline charges
// them as FPC cycles; eBPF programs count dynamically, native programs
// estimate statically).
type Program interface {
	Name() string
	Run(ctx *Context) (Verdict, int64)
}

// Func adapts a plain function (with a fixed instruction estimate) to the
// Program interface — the "C module" flavour of the paper's API.
type Func struct {
	ProgName string
	Instr    int64
	F        func(ctx *Context) Verdict
}

// Name returns the program name.
func (f *Func) Name() string { return f.ProgName }

// Run invokes the function.
func (f *Func) Run(ctx *Context) (Verdict, int64) {
	return f.F(ctx), f.Instr
}

// Null is the no-op program used by Table 2's "XDP (null)" row: it passes
// every packet untouched, costing only the hook overhead.
func Null() Program {
	return &Func{ProgName: "null", Instr: 24, F: func(*Context) Verdict { return Pass }}
}

package xdp

import (
	"encoding/binary"
)

// Native data-path modules implementing the §2.1 feature list: VLAN
// stripping, firewalling, and programmable flow classification. Each is a
// self-contained module with private state, per the §3.3 module API.

// VLANStrip removes 802.1Q tags from ingress packets (Table 2's
// "XDP (vlan-strip)" row). Untagged packets pass untouched.
func VLANStrip() Program {
	return &Func{
		ProgName: "vlan-strip",
		Instr:    31,
		F: func(ctx *Context) Verdict {
			d := ctx.Data
			if len(d) < 18 {
				return Pass
			}
			if binary.BigEndian.Uint16(d[12:14]) != 0x8100 {
				return Pass
			}
			// Drop the 4-byte tag: [dst][src] + inner ethertype onward.
			stripped := make([]byte, len(d)-4)
			copy(stripped, d[:12])
			copy(stripped[12:], d[16:])
			ctx.Data = stripped
			return Pass
		},
	}
}

// Firewall drops packets whose source IP is blacklisted. The control
// plane mutates the set at runtime (the paper's example stores it in a
// BPF hash map).
type Firewall struct {
	blocked map[uint32]bool
	Dropped uint64
}

// NewFirewall creates an empty firewall.
func NewFirewall() *Firewall {
	return &Firewall{blocked: make(map[uint32]bool)}
}

// Block adds a source IPv4 address (as uint32) to the blacklist.
func (f *Firewall) Block(ip uint32) { f.blocked[ip] = true }

// Unblock removes an address.
func (f *Firewall) Unblock(ip uint32) { delete(f.blocked, ip) }

// Name returns "firewall".
func (f *Firewall) Name() string { return "firewall" }

// Run checks the source address against the blacklist.
func (f *Firewall) Run(ctx *Context) (Verdict, int64) {
	const instr = 38 // parse + hash lookup
	d := ctx.Data
	if len(d) < 34 || binary.BigEndian.Uint16(d[12:14]) != 0x0800 {
		return Pass, instr
	}
	src := binary.BigEndian.Uint32(d[26:30])
	if f.blocked[src] {
		f.Dropped++
		return Drop, instr
	}
	return Pass, instr
}

// FlowClassifier counts packets and bytes per 4-tuple — the
// "programmable flow classification (eBPF)" feature. State is private to
// the module (§3.3).
type FlowClassifier struct {
	counts map[fcKey]*FlowCount
}

type fcKey struct {
	src, dst     uint32
	sport, dport uint16
}

// FlowCount is one flow's classification record.
type FlowCount struct {
	Packets uint64
	Bytes   uint64
}

// NewFlowClassifier creates an empty classifier.
func NewFlowClassifier() *FlowClassifier {
	return &FlowClassifier{counts: make(map[fcKey]*FlowCount)}
}

// Name returns "flow-classifier".
func (c *FlowClassifier) Name() string { return "flow-classifier" }

// Run updates the flow's counters and passes the packet.
func (c *FlowClassifier) Run(ctx *Context) (Verdict, int64) {
	const instr = 44
	d := ctx.Data
	if len(d) < 38 || binary.BigEndian.Uint16(d[12:14]) != 0x0800 || d[23] != 6 {
		return Pass, instr
	}
	k := fcKey{
		src:   binary.BigEndian.Uint32(d[26:30]),
		dst:   binary.BigEndian.Uint32(d[30:34]),
		sport: binary.BigEndian.Uint16(d[34:36]),
		dport: binary.BigEndian.Uint16(d[36:38]),
	}
	fc := c.counts[k]
	if fc == nil {
		fc = &FlowCount{}
		c.counts[k] = fc
	}
	fc.Packets++
	fc.Bytes += uint64(len(d))
	return Pass, instr
}

// Flows returns the number of distinct flows observed.
func (c *FlowClassifier) Flows() int { return len(c.counts) }

// Lookup returns the counters for a 4-tuple.
func (c *FlowClassifier) Lookup(src, dst uint32, sport, dport uint16) (FlowCount, bool) {
	fc, ok := c.counts[fcKey{src, dst, sport, dport}]
	if !ok {
		return FlowCount{}, false
	}
	return *fc, true
}

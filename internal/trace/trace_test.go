package trace

import "testing"

func TestExactly48Tracepoints(t *testing.T) {
	// The paper implements "up to 48 different tracepoints" (§5.1).
	if NumPoints != 48 {
		t.Fatalf("NumPoints = %d, want 48", NumPoints)
	}
	seen := map[string]bool{}
	for p := Point(0); p < NumPoints; p++ {
		name := p.Name()
		if name == "" || seen[name] {
			t.Fatalf("tracepoint %d has empty/duplicate name %q", p, name)
		}
		seen[name] = true
	}
}

func TestDisabledHitsAreFree(t *testing.T) {
	var r Registry
	if cost := r.Hit(TPConnDrop); cost != 0 {
		t.Fatalf("disabled hit cost = %d", cost)
	}
	if r.Count(TPConnDrop) != 0 {
		t.Fatal("disabled hit counted")
	}
	// Nil registry must also be safe and free.
	var nilr *Registry
	if cost := nilr.Hit(TPConnDrop); cost != 0 {
		t.Fatalf("nil registry hit cost = %d", cost)
	}
}

func TestEnabledHitsCostAndCount(t *testing.T) {
	var r Registry
	r.Enable(TPConnOOO)
	if cost := r.Hit(TPConnOOO); cost != CyclesPerHit {
		t.Fatalf("cost = %d", cost)
	}
	r.Hit(TPConnOOO)
	if r.Count(TPConnOOO) != 2 {
		t.Fatalf("count = %d", r.Count(TPConnOOO))
	}
	if r.EnabledCount() != 1 {
		t.Fatalf("enabled = %d", r.EnabledCount())
	}
	r.Disable(TPConnOOO)
	if r.Hit(TPConnOOO) != 0 {
		t.Fatal("hit after disable cost non-zero")
	}
}

func TestEnableAllAndSnapshot(t *testing.T) {
	var r Registry
	r.EnableAll()
	if r.EnabledCount() != 48 {
		t.Fatalf("enabled = %d", r.EnabledCount())
	}
	r.Hit(TPProtoRX)
	r.HitN(TPQProto, 5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	for _, pc := range snap {
		if pc.Point == TPQProto && pc.Count != 5 {
			t.Fatalf("HitN count = %d", pc.Count)
		}
	}
}

// Package trace implements the debugging and auditing features §5.1 uses
// to demonstrate FlexTOE's flexibility: 48 data-path tracepoints (transport
// events, inter-module queue occupancies, critical-section lengths),
// statistics/profiling builds, and tcpdump-style packet logging with
// header filters.
//
// Tracepoints cost real simulated cycles when enabled (Table 2 measures a
// 24% degradation with all 48 on), so the registry is consulted by the
// pipeline's cost model as well as by the event sinks.
package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Point identifies one tracepoint.
type Point int

// Transport-event tracepoints (per connection).
const (
	TPConnDrop       Point = iota // segment dropped (out of window)
	TPConnOOO                     // out-of-order segment accepted
	TPConnOOODrop                 // out-of-order segment outside interval
	TPConnRetransmit              // go-back-N reset
	TPConnFastRetx                // 3-dupack fast retransmit
	TPConnDupAck
	TPConnFinRx
	TPConnFinTx
	TPConnEstablished
	TPConnClosed
	TPConnZeroWindow
	TPConnWindowUpdate
	TPConnECNMarked
	TPConnTSEcho
	TPConnKeepAlive
	TPConnStaleAck

	// Pipeline-stage events.
	TPPreValidateFail
	TPPreLookupMiss
	TPPreFilterControl
	TPPreSteer
	TPProtoRX
	TPProtoTX
	TPProtoHC
	TPProtoStateMiss
	TPPostAckGen
	TPPostNotify
	TPPostStats
	TPDMAPayloadRX
	TPDMAPayloadTX
	TPDMADescriptor
	TPCtxQDoorbell
	TPCtxQNotify
	TPSchedSubmit
	TPSchedPop
	TPSegAllocFail
	TPDescAllocFail

	// Queue-occupancy tracepoints (sampled on every enqueue).
	TPQPre
	TPQProto
	TPQPost
	TPQDMA
	TPQCtx
	TPQNBI

	// Critical-section length tracepoints in the protocol module, per
	// event type (§5.1).
	TPCritRX
	TPCritTX
	TPCritHC
	TPCritRetx

	// Reordering diagnostics.
	TPReorderHold
	TPReorderRelease

	NumPoints // == 48
)

var pointNames = [NumPoints]string{
	"conn_drop", "conn_ooo", "conn_ooo_drop", "conn_retransmit",
	"conn_fast_retx", "conn_dup_ack", "conn_fin_rx", "conn_fin_tx",
	"conn_established", "conn_closed", "conn_zero_window",
	"conn_window_update", "conn_ecn_marked", "conn_ts_echo",
	"conn_keepalive", "conn_stale_ack",
	"pre_validate_fail", "pre_lookup_miss", "pre_filter_control",
	"pre_steer", "proto_rx", "proto_tx", "proto_hc", "proto_state_miss",
	"post_ack_gen", "post_notify", "post_stats", "dma_payload_rx",
	"dma_payload_tx", "dma_descriptor", "ctxq_doorbell", "ctxq_notify",
	"sched_submit", "sched_pop", "seg_alloc_fail", "desc_alloc_fail",
	"q_pre", "q_proto", "q_post", "q_dma", "q_ctx", "q_nbi",
	"crit_rx", "crit_tx", "crit_hc", "crit_retx",
	"reorder_hold", "reorder_release",
}

// Name returns the tracepoint's identifier string.
func (p Point) Name() string {
	if p < 0 || p >= NumPoints {
		return fmt.Sprintf("tp%d", int(p))
	}
	return pointNames[p]
}

// CyclesPerHit is the data-path cost of one enabled tracepoint hit: a
// counter increment in CTM plus the occasional ring append.
const CyclesPerHit = 22

// Registry holds tracepoint state. The zero value has everything
// disabled; hits cost nothing when disabled (compiled out in the real
// system, branch-not-taken here).
type Registry struct {
	enabled  [NumPoints]bool
	counters [NumPoints]uint64
	nEnabled int
}

// EnableAll turns on every tracepoint (Table 2's "statistics and
// profiling" build).
func (r *Registry) EnableAll() {
	for p := Point(0); p < NumPoints; p++ {
		r.enabled[p] = true
	}
	r.nEnabled = int(NumPoints)
}

// Enable turns on one tracepoint.
func (r *Registry) Enable(p Point) {
	if !r.enabled[p] {
		r.enabled[p] = true
		r.nEnabled++
	}
}

// Disable turns off one tracepoint.
func (r *Registry) Disable(p Point) {
	if r.enabled[p] {
		r.enabled[p] = false
		r.nEnabled--
	}
}

// EnabledCount returns how many tracepoints are active.
func (r *Registry) EnabledCount() int { return r.nEnabled }

// Hit records an event. It returns the cycle cost the data-path pays (0
// when the tracepoint is disabled).
func (r *Registry) Hit(p Point) int64 {
	if r == nil || !r.enabled[p] {
		return 0
	}
	atomic.AddUint64(&r.counters[p], 1)
	return CyclesPerHit
}

// HitN records an event with a count (queue occupancies).
func (r *Registry) HitN(p Point, n uint64) int64 {
	if r == nil || !r.enabled[p] {
		return 0
	}
	atomic.AddUint64(&r.counters[p], n)
	return CyclesPerHit
}

// Count returns a tracepoint's event count.
func (r *Registry) Count(p Point) uint64 {
	if r == nil {
		return 0
	}
	return atomic.LoadUint64(&r.counters[p])
}

// Snapshot returns all non-zero counters sorted by name.
func (r *Registry) Snapshot() []PointCount {
	var out []PointCount
	for p := Point(0); p < NumPoints; p++ {
		if c := r.Count(p); c > 0 {
			out = append(out, PointCount{Point: p, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point.Name() < out[j].Point.Name() })
	return out
}

// PointCount pairs a tracepoint with its observed count.
type PointCount struct {
	Point Point
	Count uint64
}

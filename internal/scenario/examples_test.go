package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExampleSpecsParse keeps the committed example specs valid: every
// JSON file under examples/scenarios must pass strict validation. The
// CI scenario-serve job additionally runs them end to end.
func TestExampleSpecsParse(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		n++
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(b); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if n < 2 {
		t.Fatalf("expected at least 2 example specs, found %d", n)
	}
}

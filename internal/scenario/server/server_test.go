package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// smallSpec is a quick bulk run with per-flow records — finishes in well
// under a second of host time.
const smallSpec = `{
  "name": "srv-bulk",
  "seed": 155,
  "duration_us": 1500,
  "topology": {"kind": "testbed", "switch": {"loss_prob": 0.001}},
  "machines": [
    {"name": "server", "stack": "flextoe", "cores": 2, "buf_bytes": 262144, "sack": true, "seed": 155},
    {"name": "client", "stack": "flextoe", "cores": 2, "buf_bytes": 262144, "sack": true, "seed": 156}
  ],
  "workloads": [
    {"kind": "bulk", "bulk": {"server": "server", "port": 9000, "clients": ["client"], "conns": 4}}
  ],
  "measure": {"flowmon": [{"machine": "client"}], "per_flow": true}
}`

// slowSpec runs long enough (32 progress chunks of 8 ms simulated bulk
// transfer each) that a cancel issued after the first progress line
// always lands before completion.
const slowSpec = `{
  "name": "srv-slow",
  "seed": 7,
  "duration_us": 250000,
  "topology": {"kind": "testbed"},
  "machines": [
    {"name": "server", "stack": "flextoe", "cores": 2, "buf_bytes": 262144, "seed": 7},
    {"name": "client", "stack": "flextoe", "cores": 2, "buf_bytes": 262144, "seed": 8}
  ],
  "workloads": [
    {"kind": "bulk", "bulk": {"server": "server", "port": 9000, "clients": ["client"], "conns": 8}}
  ]
}`

func newTestServer(t *testing.T, workers int, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Dir: dir, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func submit(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
		t.Fatalf("submit response: %v %q", err, out.ID)
	}
	return out.ID
}

// followStream reads the NDJSON stream until the terminal line and
// returns (finalState, flowLines, progressLines). This is the blocking
// wait primitive the tests use instead of sleep/poll loops.
func followStream(t *testing.T, base, id string) (string, int, int) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return scanStream(t, resp.Body)
}

func scanStream(t *testing.T, body io.Reader) (string, int, int) {
	t.Helper()
	var state string
	var flows, progress int
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var line struct {
			Type  string `json:"type"`
			State string `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "progress":
			progress++
		case "flow":
			flows++
		default:
			state = line.Type
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if state == "" {
		t.Fatal("stream ended without a terminal line")
	}
	return state, flows, progress
}

func fetchResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, b)
	}
	return b
}

func TestSubmitRunStream(t *testing.T) {
	_, ts := newTestServer(t, 2, t.TempDir())
	id := submit(t, ts.URL, smallSpec)
	state, flows, progress := followStream(t, ts.URL, id)
	if state != StateDone {
		t.Fatalf("terminal state %q", state)
	}
	if progress < 2 {
		t.Fatalf("only %d progress lines", progress)
	}
	if flows == 0 {
		t.Fatalf("per_flow spec streamed no flow records")
	}
	res := fetchResult(t, ts.URL, id)
	var r struct {
		Name  string `json:"name"`
		Flows []any  `json:"flows"`
	}
	if err := json.Unmarshal(res, &r); err != nil || r.Name != "srv-bulk" {
		t.Fatalf("result payload: %v %q", err, r.Name)
	}
	if len(r.Flows) != flows {
		t.Fatalf("stream sent %d flow records, result holds %d", flows, len(r.Flows))
	}
}

func TestRepeatSubmissionsAndPoolWidthsAreByteIdentical(t *testing.T) {
	_, narrow := newTestServer(t, 1, t.TempDir())
	sWide, wide := newTestServer(t, 4, t.TempDir())
	if sWide.Workers() < 1 {
		t.Fatal("worker clamp broke")
	}

	var payloads [][]byte
	for _, run := range []struct {
		base string
		n    int
	}{{narrow.URL, 2}, {wide.URL, 2}} {
		ids := make([]string, run.n)
		for i := range ids {
			ids[i] = submit(t, run.base, smallSpec)
		}
		for _, id := range ids {
			if st, _, _ := followStream(t, run.base, id); st != StateDone {
				t.Fatalf("job %s finished %q", id, st)
			}
			payloads = append(payloads, fetchResult(t, run.base, id))
		}
	}
	for i := 1; i < len(payloads); i++ {
		if !bytes.Equal(payloads[0], payloads[i]) {
			t.Fatalf("payload %d diverged from payload 0:\n%s\n---\n%s",
				i, payloads[0], payloads[i])
		}
	}
}

func TestCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, 1, t.TempDir())
	id := submit(t, ts.URL, slowSpec)

	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("stream produced nothing: %v", sc.Err())
	}
	// First progress line seen — the job is live; cancel it.
	cresp, err := http.Post(ts.URL+"/jobs/"+id+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()

	state, _, _ := scanStream(t, resp.Body)
	if state != StateCanceled {
		t.Fatalf("terminal state %q, want canceled", state)
	}
	rr, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job: %s, want 409", rr.Status)
	}
}

func TestPersistenceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	id := submit(t, ts1.URL, smallSpec)
	if st, _, _ := followStream(t, ts1.URL, id); st != StateDone {
		t.Fatalf("first run finished %q", st)
	}
	want := fetchResult(t, ts1.URL, id)
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, 2, dir)
	_ = s2
	got := fetchResult(t, ts2.URL, id)
	if !bytes.Equal(want, got) {
		t.Fatalf("restarted server served a different payload")
	}
	resp, err := http.Get(ts2.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != id || list[0].State != StateDone {
		t.Fatalf("restarted job list: %+v", list)
	}
}

func TestBadSpecRejected(t *testing.T) {
	_, ts := newTestServer(t, 1, "")
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %s, want 400", resp.Status)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("error body: %v %+v", err, e)
	}
}

// TestStreamEndsOnShutdown parks a stream on a queued job behind a busy
// single-worker pool, then closes the server: the stream must end with a
// "shutdown" line instead of waiting on the cond forever.
func TestStreamEndsOnShutdown(t *testing.T) {
	s, ts := newTestServer(t, 1, t.TempDir())
	busy := submit(t, ts.URL, slowSpec)    // claims the only worker
	queued := submit(t, ts.URL, smallSpec) // stays queued behind it

	resp, err := http.Get(ts.URL + "/jobs/" + queued + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("stream produced nothing: %v", sc.Err())
	}
	// The queued job's stream is live. Shut down (Close drains the
	// running job) and cancel the busy job so the drain is quick.
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	cresp, err := http.Post(ts.URL+"/jobs/"+busy+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()

	state, _, _ := scanStream(t, resp.Body)
	if state != "shutdown" {
		t.Fatalf("terminal line %q, want shutdown", state)
	}
	<-closed
}

// TestSubmitPersistFailure breaks the persistence directory and submits:
// the spec cannot be written, so the submission must fail loudly (500)
// rather than accept a job that would vanish on restart.
func TestSubmitPersistFailure(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, 1, dir)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(smallSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("submit with broken dir: %s, want 500", resp.Status)
	}
	list, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var jobs []json.RawMessage
	if err := json.NewDecoder(list.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("unpersisted job was enqueued anyway: %d jobs listed", len(jobs))
	}
}

func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, 1, "")
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result", "/jobs/nope/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %s, want 404", path, resp.Status)
		}
	}
}

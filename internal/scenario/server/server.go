// Package server exposes the scenario runner as an HTTP job service:
// POST a declarative spec, get a job id back, and follow the run through
// status polls or an NDJSON stream of progress and per-flow records.
//
// Jobs execute asynchronously on a bounded worker pool (clamped to
// GOMAXPROCS, runCells-style). Specs and finished payloads persist to an
// on-disk directory, so a restarted server lists completed jobs with
// their original byte-identical results and resumes interrupted ones.
// Because scenario execution is seed-deterministic, the same spec
// produces byte-identical result payloads on every rerun, at any worker
// pool width, and across server restarts — the CI gate submits each
// example spec twice at two pool widths and compares raw bytes.
//
// Endpoints (stdlib net/http pattern routing, no external deps):
//
//	POST /jobs              submit a spec; returns {"id": ...}
//	GET  /jobs              list jobs in submission order
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/result  canonical result payload (409 until done)
//	GET  /jobs/{id}/stream  NDJSON: progress lines, then per-flow
//	                        records (when the spec sets
//	                        measure.per_flow), then a terminal done/
//	                        canceled/failed line; if the server shuts
//	                        down while the job is still queued, the
//	                        stream ends with a "shutdown" line instead
//	POST /jobs/{id}/cancel  request cancellation (effective at the next
//	                        progress boundary)
//
// The package sits under internal/scenario and therefore inside the
// flexvet determinism perimeter: no wall-clock reads, no global
// randomness, and no map-order iteration — job ids derive from a
// submission sequence number plus an FNV hash of the spec bytes, and
// every scan walks the ordered job slice.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"flextoe/internal/scenario"
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
	StateFailed   = "failed"
)

// maxSpecBytes bounds a submitted spec body.
const maxSpecBytes = 1 << 20

// Config configures a Server.
type Config struct {
	// Dir is the persistence directory for specs and results. Empty
	// disables persistence (jobs live only in memory).
	Dir string
	// Workers is the worker-pool width. Values < 1 mean 1; values above
	// GOMAXPROCS are clamped to it — more runnable workers than CPUs
	// buys nothing for CPU-bound simulation and interleaves working
	// sets, exactly the runCells rationale.
	Workers int
	// Log receives diagnostics the job API cannot express (persistence
	// failures after a job was accepted). Nil disables logging.
	Log io.Writer
}

// job is one submitted scenario run. All mutable fields are guarded by
// the server mutex; state changes broadcast on the server cond.
type job struct {
	id   string
	name string
	spec []byte

	state      string
	errMsg     string
	result     []byte // canonical payload once state == done
	doneUs     int64
	totalUs    int64
	cancel     bool
	persistErr string // last failure writing this job's files, if any
}

// Server is the scenario job service. It implements http.Handler.
type Server struct {
	dir     string
	workers int
	log     io.Writer
	mux     *http.ServeMux

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*job // submission order — the only iteration path
	byID   map[string]*job
	seq    uint64
	closed bool

	wg sync.WaitGroup
}

// New builds a Server, reloads any persisted jobs from cfg.Dir, and
// starts the worker pool. Persisted jobs with a result (or a terminal
// error marker) come back in their finished state; interrupted ones
// re-enter the queue and run again — same spec, same bytes.
func New(cfg Config) (*Server, error) {
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	s := &Server{
		dir:     cfg.Dir,
		workers: w,
		log:     cfg.Log,
		byID:    make(map[string]*job),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.dir != "" {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, fmt.Errorf("scenario server: %w", err)
		}
		if err := s.reload(); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	for i := 0; i < w; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP dispatches to the job API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Workers reports the clamped worker-pool width.
func (s *Server) Workers() int { return s.workers }

// Close stops the worker pool after in-flight jobs finish. Queued jobs
// stay queued (and persisted), so a successor server resumes them;
// their open streams end with a "shutdown" line.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// reload restores persisted jobs. os.ReadDir sorts by filename and ids
// embed a zero-padded sequence number, so jobs reload in submission
// order.
func (s *Server) reload() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("scenario server: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".spec.json") {
			continue
		}
		id := strings.TrimSuffix(name, ".spec.json")
		spec, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return fmt.Errorf("scenario server: %w", err)
		}
		j := &job{id: id, spec: spec, state: StateQueued}
		if sp, err := scenario.Parse(spec); err == nil {
			j.name = sp.Name
		} else {
			j.state, j.errMsg = StateFailed, err.Error()
		}
		if res, err := os.ReadFile(filepath.Join(s.dir, id+".result.json")); err == nil {
			j.state, j.result = StateDone, res
		} else if term, err := os.ReadFile(filepath.Join(s.dir, id+".state.json")); err == nil {
			var t struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			if json.Unmarshal(term, &t) == nil && (t.State == StateCanceled || t.State == StateFailed) {
				j.state, j.errMsg = t.State, t.Error
			}
		}
		var seq uint64
		if _, err := fmt.Sscanf(id, "j%d-", &seq); err == nil && seq >= s.seq {
			s.seq = seq + 1
		}
		s.jobs = append(s.jobs, j)
		s.byID[j.id] = j
	}
	return nil
}

// worker claims the oldest queued job, runs it, repeats. Claim order is
// deterministic (submission order); completion order is not, but job
// payloads depend only on their own spec.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for !s.closed {
			if j = s.nextQueuedLocked(); j != nil {
				break
			}
			s.cond.Wait()
		}
		if j == nil {
			s.mu.Unlock()
			return
		}
		j.state = StateRunning
		s.cond.Broadcast()
		s.mu.Unlock()
		s.runJob(j)
	}
}

func (s *Server) nextQueuedLocked() *job {
	for _, j := range s.jobs {
		if j.state == StateQueued && !j.cancel {
			return j
		}
		if j.state == StateQueued && j.cancel {
			j.state = StateCanceled
			s.persistTerminal(j)
			s.cond.Broadcast()
		}
	}
	return nil
}

// runJob executes one job, publishing progress through the cond and the
// cancel flag through the progress callback's return value.
func (s *Server) runJob(j *job) {
	res, err := s.execute(j)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == scenario.ErrCanceled:
		j.state = StateCanceled
		s.persistTerminal(j)
	case err != nil:
		j.state, j.errMsg = StateFailed, err.Error()
		s.persistTerminal(j)
	default:
		j.result = res.Canonical()
		j.state = StateDone
		if s.dir != "" {
			if perr := s.writeFile(j.id+".result.json", j.result); perr != nil {
				j.persistErr = perr.Error()
				s.logf("job %s: persist result: %v", j.id, perr)
			}
		}
	}
	s.cond.Broadcast()
}

// execute runs the scenario for one job. A panic out of the builder or
// engine (a spec that slipped past validation) becomes a failed job, not
// a dead worker: the pool and every other job keep running.
func (s *Server) execute(j *job) (res *scenario.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("scenario panicked: %v", r)
		}
	}()
	return scenario.Run(j.spec, func(doneUs, totalUs int64) bool {
		s.mu.Lock()
		j.doneUs, j.totalUs = doneUs, totalUs
		cancel := j.cancel
		s.cond.Broadcast()
		s.mu.Unlock()
		return !cancel
	})
}

// persistTerminal records a canceled/failed outcome so a restarted
// server does not re-queue the job. A persistence failure is recorded on
// the job (and logged) — the in-memory state stays authoritative.
// Caller holds the mutex.
func (s *Server) persistTerminal(j *job) {
	if s.dir == "" {
		return
	}
	b, err := json.Marshal(struct {
		State string `json:"state"`
		Error string `json:"error,omitempty"`
	}{j.state, j.errMsg})
	if err == nil {
		err = s.writeFile(j.id+".state.json", b)
	}
	if err != nil {
		j.persistErr = err.Error()
		s.logf("job %s: persist state: %v", j.id, err)
	}
}

// writeFile persists bytes atomically-enough for this service: write a
// temp file, then rename over the final name.
func (s *Server) writeFile(name string, b []byte) error {
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, name))
}

// logf emits one diagnostic line to the configured log writer.
func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		fmt.Fprintf(s.log, "scenario server: "+format+"\n", args...)
	}
}

// status is the wire form of a job's state. PersistError reports a
// failure writing the job's spec/result/state files: the job itself is
// fine in memory, but it will not survive a server restart.
type status struct {
	ID           string `json:"id"`
	Name         string `json:"name,omitempty"`
	State        string `json:"state"`
	DoneUs       int64  `json:"done_us"`
	TotalUs      int64  `json:"total_us"`
	Error        string `json:"error,omitempty"`
	PersistError string `json:"persist_error,omitempty"`
}

func (j *job) statusLocked() status {
	return status{ID: j.id, Name: j.name, State: j.state,
		DoneUs: j.doneUs, TotalUs: j.totalUs, Error: j.errMsg,
		PersistError: j.persistErr}
}

func terminal(state string) bool {
	return state == StateDone || state == StateCanceled || state == StateFailed
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{msg})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.byID[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job id")
	}
	return j
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "spec exceeds 1 MiB")
		return
	}
	sp, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	h := fnv.New32a()
	h.Write(body)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	id := fmt.Sprintf("j%06d-%08x", s.seq, h.Sum32())
	s.seq++
	// Persist the spec before accepting the job: a 202 promises the job
	// survives a restart, so a spec that cannot be written is an error
	// the client must see, not a job that silently vanishes.
	if s.dir != "" {
		if err := s.writeFile(id+".spec.json", body); err != nil {
			s.mu.Unlock()
			s.logf("job %s: persist spec: %v", id, err)
			writeError(w, http.StatusInternalServerError, "persist spec: "+err.Error())
			return
		}
	}
	j := &job{id: id, name: sp.Name, spec: body, state: StateQueued}
	s.jobs = append(s.jobs, j)
	s.byID[id] = j
	s.cond.Broadcast()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}{id, StateQueued})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.statusLocked())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state, res := j.state, j.result
	s.mu.Unlock()
	if state != StateDone {
		writeError(w, http.StatusConflict, "job is "+state+", result only exists once done")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	if !terminal(j.state) {
		j.cancel = true
		if j.state == StateQueued {
			j.state = StateCanceled
			s.persistTerminal(j)
		}
		s.cond.Broadcast()
	}
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// streamLine is one NDJSON stream record. Progress lines carry state
// and completion; flow lines embed one per-flow record; the terminal
// line repeats the final state (plus the error for failed jobs). A
// "shutdown" line ends the stream of a still-queued job when the server
// closes.
type streamLine struct {
	Type string `json:"type"`
	status
}

type flowLine struct {
	Type string `json:"type"`
	scenario.FlowRecord
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// A disconnected client must not leave this handler parked on the
	// cond forever; wake the wait loop when the request context ends.
	stop := context.AfterFunc(r.Context(), func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	lastDone, lastState := int64(-1), ""
	var st status
	for {
		s.mu.Lock()
		// Stop waiting on shutdown if the job is still queued: Close
		// drains running jobs but leaves queued ones for a successor
		// server, so their streams would otherwise park forever.
		for j.state == lastState && j.doneUs == lastDone && !terminal(j.state) &&
			!(s.closed && j.state == StateQueued) &&
			r.Context().Err() == nil {
			s.cond.Wait()
		}
		shutdown := s.closed && j.state == StateQueued
		st = j.statusLocked()
		s.mu.Unlock()
		if r.Context().Err() != nil {
			return
		}
		if shutdown {
			enc.Encode(streamLine{Type: "shutdown", status: st})
			if fl != nil {
				fl.Flush()
			}
			return
		}
		lastState, lastDone = st.State, st.DoneUs
		if err := enc.Encode(streamLine{Type: "progress", status: st}); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		if terminal(st.State) {
			break
		}
	}
	if st.State == StateDone {
		s.mu.Lock()
		payload := j.result
		s.mu.Unlock()
		var res scenario.Result
		if err := json.Unmarshal(payload, &res); err == nil {
			for i := range res.Flows {
				if err := enc.Encode(flowLine{Type: "flow", FlowRecord: res.Flows[i]}); err != nil {
					return
				}
			}
		}
	}
	enc.Encode(streamLine{Type: st.State, status: st})
	if fl != nil {
		fl.Flush()
	}
}

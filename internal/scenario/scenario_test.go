package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// bulkSpec is a small single-switch loss scenario with a flowmon tap —
// the fig15-shaped smoke spec.
func bulkSpec() string {
	return `{
  "name": "bulk-loss",
  "seed": 155,
  "duration_us": 2000,
  "topology": {"kind": "testbed", "switch": {"loss_prob": 0.001}},
  "machines": [
    {"name": "server", "stack": "flextoe", "cores": 2, "buf_bytes": 262144, "sack": true, "seed": 155},
    {"name": "client", "stack": "flextoe", "cores": 2, "buf_bytes": 262144, "sack": true, "seed": 156}
  ],
  "workloads": [
    {"kind": "bulk", "bulk": {"server": "server", "port": 9000, "clients": ["client"], "conns": 4}}
  ],
  "measure": {"flowmon": [{"machine": "client"}], "per_flow": true}
}`
}

// incastSpec is a small fabric incast with per-rack fleets.
func incastSpec() string {
	return `{
  "name": "incast-small",
  "seed": 170004,
  "duration_us": 3000,
  "warmup_us": 1000,
  "topology": {"kind": "fabric", "fabric": {
    "racks": 3, "spines": 2, "queue_hist_unit": 1448,
    "leaf": {"ecn_threshold_bytes": 90000, "queue_cap_bytes": 250000},
    "spine": {"ecn_threshold_bytes": 90000, "queue_cap_bytes": 500000}
  }},
  "machines": [
    {"name": "agg", "stack": "flextoe", "cores": 4, "rack": 0, "buf_bytes": 131072, "cc": "dctcp", "seed": 1700},
    {"name": "snd0", "stack": "flextoe", "cores": 2, "rack": 1, "seed": 1710},
    {"name": "snd1", "stack": "flextoe", "cores": 2, "rack": 2, "seed": 1711}
  ],
  "workloads": [
    {"kind": "incast", "incast": {"agg": "agg", "port": 9400, "senders": ["snd0", "snd1"], "fan_in": 4, "block_bytes": 32768}}
  ],
  "measure": {"per_rack_fleets": true}
}`
}

func mustRun(t *testing.T, spec string, progress Progress) *Result {
	t.Helper()
	r, err := Run([]byte(spec), progress)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestParseRejectsInvalidSpecs(t *testing.T) {
	base := bulkSpec()
	cases := []struct {
		name string
		spec string
		want string // substring of the error
	}{
		{"unknown field", `{"name":"x","bogus":1}`, "unknown field"},
		{"trailing data", base + `{"name":"y"}`, "trailing data"},
		{"missing name", `{"seed":1,"duration_us":10,"topology":{"kind":"testbed"},"machines":[{"name":"a","stack":"flextoe"}],"workloads":[{"kind":"bulk","bulk":{"server":"a","port":1,"clients":["a"]}}]}`, "name is required"},
		{"bad name", strings.Replace(base, `"bulk-loss"`, `"bulk loss"`, 1), "only [a-zA-Z0-9._-]"},
		{"zero duration", strings.Replace(base, `"duration_us": 2000`, `"duration_us": 0`, 1), "duration_us"},
		{"bad topology kind", strings.Replace(base, `"kind": "testbed"`, `"kind": "mesh"`, 1), "topology.kind"},
		{"loss prob out of range", strings.Replace(base, `"loss_prob": 0.001`, `"loss_prob": 1.5`, 1), "probabilities"},
		{"reorder without delay", strings.Replace(base, `"loss_prob": 0.001`, `"reorder_prob": 0.01`, 1), "reorder_delay_us"},
		{"unknown stack", strings.Replace(base, `"stack": "flextoe", "cores": 2, "buf_bytes": 262144, "sack": true, "seed": 155`, `"stack": "bsd"`, 1), "unknown stack"},
		{"duplicate machine", strings.Replace(base, `"name": "server"`, `"name": "client"`, 1), "duplicate machine"},
		{"unknown workload machine", strings.Replace(base, `"clients": ["client"]`, `"clients": ["nope"]`, 1), "unknown machine"},
		{"empty bulk clients", strings.Replace(base, `"clients": ["client"]`, `"clients": []`, 1), "clients must be non-empty"},
		{"zero port", strings.Replace(base, `"port": 9000`, `"port": 0`, 1), "port must be nonzero"},
		{"unknown flowmon machine", strings.Replace(base, `"flowmon": [{"machine": "client"}]`, `"flowmon": [{"machine": "ghost"}]`, 1), "unknown machine"},
		{"duplicate flowmon attach", strings.Replace(base, `[{"machine": "client"}]`, `[{"machine": "client"}, {"machine": "client"}]`, 1), "already has an analyzer"},
		{"fleets on testbed", strings.Replace(base, `"per_flow": true`, `"per_flow": true, "per_rack_fleets": true`, 1), "requires a fabric"},
		{"sack on baseline", strings.Replace(base, `"stack": "flextoe", "cores": 2, "buf_bytes": 262144, "sack": true, "seed": 155`, `"stack": "linux", "sack": true`, 1), "sack applies to flextoe"},
		{"rack out of range", strings.Replace(incastSpec(), `"rack": 2`, `"rack": 7`, 1), "out of range"},
		{"fleets plus flowmon", strings.Replace(incastSpec(), `"per_rack_fleets": true`, `"per_rack_fleets": true, "flowmon": [{"machine": "agg"}]`, 1), "excludes explicit flowmon"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.spec)); err == nil {
			t.Errorf("%s: Parse accepted an invalid spec", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDuplicateListenerRejected(t *testing.T) {
	spec := strings.Replace(bulkSpec(),
		`{"kind": "bulk", "bulk": {"server": "server", "port": 9000, "clients": ["client"], "conns": 4}}`,
		`{"kind": "bulk", "bulk": {"server": "server", "port": 9000, "clients": ["client"], "conns": 4}},
     {"kind": "rpc", "rpc": {"server": "server", "port": 9000, "clients": ["client"], "conns": 1, "req_bytes": 64}}`, 1)
	if _, err := Parse([]byte(spec)); err == nil || !strings.Contains(err.Error(), "duplicate listener") {
		t.Fatalf("want duplicate-listener error, got %v", err)
	}
}

func TestBulkScenarioSmoke(t *testing.T) {
	r := mustRun(t, bulkSpec(), nil)
	if len(r.Workloads) != 1 || r.Workloads[0].Bytes == 0 {
		t.Fatalf("bulk moved no bytes: %+v", r.Workloads)
	}
	if r.Switch == nil || r.Switch.Forwarded == 0 {
		t.Fatalf("switch counters missing: %+v", r.Switch)
	}
	if len(r.Machines) != 2 {
		t.Fatalf("want 2 machine results, got %d", len(r.Machines))
	}
	if len(r.Flowmon) != 1 || r.Flowmon[0].Machine != "client" || r.Flowmon[0].Pkts == 0 {
		t.Fatalf("flowmon result missing: %+v", r.Flowmon)
	}
	if len(r.Flows) == 0 {
		t.Fatalf("per_flow requested but no flow records")
	}
}

func TestRerunIsByteIdentical(t *testing.T) {
	a := mustRun(t, bulkSpec(), nil).Canonical()
	b := mustRun(t, bulkSpec(), nil).Canonical()
	if !bytes.Equal(a, b) {
		t.Fatalf("same spec produced different payloads:\n%s\n---\n%s", a, b)
	}
}

func TestChunkedRunMatchesUnchunked(t *testing.T) {
	plain := mustRun(t, bulkSpec(), nil).Canonical()
	var calls int
	chunked := mustRun(t, bulkSpec(), func(doneUs, totalUs int64) bool {
		calls++
		if totalUs != 2000 {
			t.Fatalf("totalUs = %d", totalUs)
		}
		return true
	}).Canonical()
	if calls < 2 {
		t.Fatalf("progress called %d times", calls)
	}
	if !bytes.Equal(plain, chunked) {
		t.Fatalf("chunked execution changed the payload")
	}
}

func TestShardCountInvariance(t *testing.T) {
	serial := mustRun(t, bulkSpec(), nil)
	sharded := mustRun(t, strings.Replace(bulkSpec(),
		`"duration_us": 2000,`, `"duration_us": 2000, "cores": 3,`, 1), nil)
	// The payloads may differ only in the echoed core count.
	sharded.Cores = serial.Cores
	if !bytes.Equal(serial.Canonical(), sharded.Canonical()) {
		t.Fatalf("sharded run diverged from serial:\n%s\n---\n%s",
			serial.Canonical(), sharded.Canonical())
	}
}

func TestCancelMidRun(t *testing.T) {
	_, err := Run([]byte(bulkSpec()), func(doneUs, totalUs int64) bool {
		return doneUs == 0 // allow the initial call, cancel after chunk 1
	})
	if err != ErrCanceled {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestIncastFabricScenario(t *testing.T) {
	r := mustRun(t, incastSpec(), nil)
	w := r.Workloads[0]
	if w.Kind != KindIncast || w.Rounds == 0 || w.P99Us <= 0 {
		t.Fatalf("incast made no progress: %+v", w)
	}
	if r.Fabric == nil || len(r.Fabric.SpineTxBytes) != 2 {
		t.Fatalf("fabric counters missing: %+v", r.Fabric)
	}
	if len(r.Racks) != 3 {
		t.Fatalf("want 3 rack results, got %d", len(r.Racks))
	}
	var pkts, spineFlows uint64
	for _, rr := range r.Racks {
		pkts += rr.Pkts
		if len(rr.Spines) != 2 {
			t.Fatalf("rack %d: want 2 spine splits, got %d", rr.Rack, len(rr.Spines))
		}
		for _, sp := range rr.Spines {
			spineFlows += sp.Flows
		}
		if spineFlows != rr.Flows {
			// Spine splits partition the rack's flows exactly.
			t.Fatalf("rack %d: spine splits cover %d of %d flows", rr.Rack, spineFlows, rr.Flows)
		}
		spineFlows = 0
	}
	if pkts == 0 {
		t.Fatalf("rack fleets observed no packets")
	}
	if rerun := mustRun(t, incastSpec(), nil); !bytes.Equal(r.Canonical(), rerun.Canonical()) {
		t.Fatalf("incast rerun diverged")
	}
}

func TestWarmupResetsMeasurement(t *testing.T) {
	// A warmup longer than the measured window must shrink the measured
	// byte count versus no warmup (the warmup traffic is excluded).
	cold := mustRun(t, incastSpec(), nil)
	noWarm := mustRun(t, strings.Replace(incastSpec(), `"warmup_us": 1000,`, ``, 1), nil)
	if cold.Workloads[0].Bytes == 0 || noWarm.Workloads[0].Bytes == 0 {
		t.Fatalf("no bytes moved")
	}
	if cold.Workloads[0].Bytes >= noWarm.Workloads[0].Bytes+cold.Workloads[0].Bytes/2 {
		t.Logf("warmup delta: warm=%d nowarm=%d", cold.Workloads[0].Bytes, noWarm.Workloads[0].Bytes)
	}
	if cold.WarmupUs != 1000 {
		t.Fatalf("warmup not echoed: %d", cold.WarmupUs)
	}
}

func TestExecuteOnlyOnce(t *testing.T) {
	s, err := Parse([]byte(bulkSpec()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Execute(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Execute(nil); err == nil {
		t.Fatal("second Execute succeeded")
	}
}

// Package scenario turns declarative JSON specifications into runs of
// the simulated testbed: a Spec names a topology (single switch or
// leaf–spine fabric), a set of machines (stack personality, buffers,
// congestion control, reassembly budget), a set of workloads (bulk, RPC,
// KV, open-loop flows, incast, background traffic), fault injection
// (loss/duplication/reordering matrices), and a measurement block
// (flowmon attach points, per-rack fleets, histogram options). The
// builder compiles a validated Spec into the exact constructor sequence
// the hand-written harnesses in internal/experiments use, so a spec is
// provably equivalent to the corresponding figure runner.
//
// Determinism contract (doc.go "Scenario service"): a Spec fully seeds
// every random stream, so the same spec produces byte-identical Result
// payloads on every rerun, at any engine-shard count (Spec.Cores), and
// regardless of how many other scenarios run concurrently in the same
// process. Validation is strict: unknown JSON fields, dangling machine
// references, and parameter combinations that would violate the
// determinism or pooling contracts are rejected before anything is
// built.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Spec is one declarative scenario.
type Spec struct {
	// Name labels the scenario; required, also the persistence key
	// component for the job service.
	Name string `json:"name"`
	// Seed is the experiment master seed: it seeds the switch/fabric RNGs
	// and defaults every unset per-machine and per-workload seed.
	Seed uint64 `json:"seed"`
	// DurationUs is the measured window in simulated microseconds.
	DurationUs int64 `json:"duration_us"`
	// WarmupUs runs before measurement: at its end queue statistics and
	// workload histograms reset and counter baselines snapshot, so every
	// result column covers the same post-warmup window.
	WarmupUs int64 `json:"warmup_us,omitempty"`
	// Cores shards the simulation engines (testbed.NewCores semantics);
	// results are bit-identical at every value.
	Cores int `json:"cores,omitempty"`

	Topology  Topology  `json:"topology"`
	Machines  []Machine `json:"machines"`
	Workloads []Workload `json:"workloads"`
	Measure   Measure   `json:"measure,omitempty"`
}

// Topology selects the network between the NICs.
type Topology struct {
	// Kind is "testbed" (one switch) or "fabric" (leaf–spine).
	Kind   string      `json:"kind"`
	Switch *SwitchSpec `json:"switch,omitempty"` // testbed only
	Fabric *FabricSpec `json:"fabric,omitempty"` // fabric only
}

// Topology kinds.
const (
	TopoTestbed = "testbed"
	TopoFabric  = "fabric"
)

// SwitchSpec is one switch tier's queueing and injection policy
// (netsim.SwitchConfig in JSON clothing).
type SwitchSpec struct {
	LossProb          float64 `json:"loss_prob,omitempty"`
	DupProb           float64 `json:"dup_prob,omitempty"`
	ReorderProb       float64 `json:"reorder_prob,omitempty"`
	ReorderDelayUs    int64   `json:"reorder_delay_us,omitempty"`
	ECNThresholdBytes int     `json:"ecn_threshold_bytes,omitempty"`
	QueueCapBytes     int     `json:"queue_cap_bytes,omitempty"`
	WREDMinBytes      int     `json:"wred_min_bytes,omitempty"`
	WREDMaxBytes      int     `json:"wred_max_bytes,omitempty"`
	WREDMaxProb       float64 `json:"wred_max_prob,omitempty"`
	LatencyNs         int64   `json:"latency_ns,omitempty"`
}

// FabricSpec parameterizes a leaf–spine fabric (fabric.Config).
type FabricSpec struct {
	Racks         int         `json:"racks"`
	Spines        int         `json:"spines"`
	LeafHostGbps  float64     `json:"leaf_host_gbps,omitempty"`
	LeafSpineGbps float64     `json:"leaf_spine_gbps,omitempty"`
	HostPropNs    int64       `json:"host_prop_ns,omitempty"`
	TrunkPropNs   int64       `json:"trunk_prop_ns,omitempty"`
	Leaf          *SwitchSpec `json:"leaf,omitempty"`
	Spine         *SwitchSpec `json:"spine,omitempty"`
	QueueHistUnit int         `json:"queue_hist_unit,omitempty"`
}

// Machine describes one host (testbed.MachineSpec).
type Machine struct {
	Name string `json:"name"`
	// Stack is the personality: "flextoe", "linux", "tas", or "chelsio".
	Stack    string  `json:"stack"`
	Cores    int     `json:"cores,omitempty"`
	BufBytes uint32  `json:"buf_bytes,omitempty"`
	NICGbps  float64 `json:"nic_gbps,omitempty"`
	Rack     int     `json:"rack,omitempty"`
	// CC is the FlexTOE control plane's congestion-control policy:
	// "none", "dctcp", or "timely" (flextoe machines only).
	CC string `json:"cc,omitempty"`
	// SACK enables SACK negotiation (flextoe machines only).
	SACK bool `json:"sack,omitempty"`
	// OOOCap overrides the reassembly interval budget (any personality).
	OOOCap        int     `json:"ooo_cap,omitempty"`
	ListenBacklog int     `json:"listen_backlog,omitempty"`
	AcceptRate    float64 `json:"accept_rate,omitempty"`
	// StackCores dedicates fast-path cores (tas machines only).
	StackCores int `json:"stack_cores,omitempty"`
	// Seed overrides the machine seed (0 = derive from Spec.Seed).
	Seed uint64 `json:"seed,omitempty"`
}

// Stack personalities.
const (
	StackFlexTOE = "flextoe"
	StackLinux   = "linux"
	StackTAS     = "tas"
	StackChelsio = "chelsio"
)

// Workload is one traffic pattern; Kind selects which sub-spec applies,
// and exactly that sub-spec must be present.
type Workload struct {
	// Kind is "bulk", "rpc", "kv", "flowgen", "incast", or "background".
	Kind       string              `json:"kind"`
	Bulk       *BulkWorkload       `json:"bulk,omitempty"`
	RPC        *RPCWorkload        `json:"rpc,omitempty"`
	KV         *KVWorkload         `json:"kv,omitempty"`
	FlowGen    *FlowGenWorkload    `json:"flowgen,omitempty"`
	Incast     *IncastWorkload     `json:"incast,omitempty"`
	Background *BackgroundWorkload `json:"background,omitempty"`
}

// Workload kinds.
const (
	KindBulk       = "bulk"
	KindRPC        = "rpc"
	KindKV         = "kv"
	KindFlowGen    = "flowgen"
	KindIncast     = "incast"
	KindBackground = "background"
)

// BulkWorkload saturates Conns connections from the client machines
// (round-robin) into one sink.
type BulkWorkload struct {
	Server  string   `json:"server"`
	Port    uint16   `json:"port"`
	Clients []string `json:"clients"`
	Conns   int      `json:"conns,omitempty"` // default len(Clients)
}

// RPCWorkload runs closed-loop request/response echo: one client driver
// per entry in Clients, each with Conns connections.
type RPCWorkload struct {
	Server    string   `json:"server"`
	Port      uint16   `json:"port"`
	Clients   []string `json:"clients"`
	Conns     int      `json:"conns"`
	ReqBytes  int      `json:"req_bytes"`
	RespBytes int      `json:"resp_bytes,omitempty"` // 0 = echo ReqBytes
	Pipeline  int      `json:"pipeline,omitempty"`
	AppCycles int64    `json:"app_cycles,omitempty"` // server-side work
}

// KVWorkload runs a closed-loop key-value store workload.
type KVWorkload struct {
	Server    string   `json:"server"`
	Port      uint16   `json:"port"`
	Clients   []string `json:"clients"`
	Conns     int      `json:"conns"`
	KeyBytes  int      `json:"key_bytes,omitempty"`
	ValBytes  int      `json:"val_bytes,omitempty"`
	SetRatio  float64  `json:"set_ratio,omitempty"`
	Pipeline  int      `json:"pipeline,omitempty"`
	AppCycles int64    `json:"app_cycles,omitempty"`
	Seed      uint64   `json:"seed,omitempty"` // 0 = derive from Spec.Seed
}

// FlowGenWorkload generates open-loop Poisson flow arrivals from the
// client machines into the server sinks.
type FlowGenWorkload struct {
	Servers []string `json:"servers"`
	Port    uint16   `json:"port"`
	Clients []string `json:"clients"`
	Rate    float64  `json:"rate"` // aggregate flows/second
	// Dist is "fixed", "websearch", or "datamining".
	Dist      string `json:"dist"`
	SizeBytes int    `json:"size_bytes,omitempty"` // fixed only
	Conns     int    `json:"conns,omitempty"`
	MaxFlows  int    `json:"max_flows,omitempty"`
	Seed      uint64 `json:"seed,omitempty"` // 0 = derive from Spec.Seed
}

// IncastWorkload drives barrier-synchronized N-to-1 incast: FanIn
// connections spread round-robin over the sender machines.
type IncastWorkload struct {
	Agg        string   `json:"agg"`
	Port       uint16   `json:"port"`
	Senders    []string `json:"senders"`
	FanIn      int      `json:"fan_in"`
	BlockBytes int      `json:"block_bytes"`
	Rounds     int      `json:"rounds,omitempty"` // 0 = until sim end
}

// BackgroundWorkload is continuous bulk cross-traffic.
type BackgroundWorkload struct {
	Sink  string   `json:"sink"`
	Port  uint16   `json:"port"`
	Srcs  []string `json:"srcs"`
	Conns int      `json:"conns"`
}

// Measure selects what the Result reports beyond the always-present
// workload readouts.
type Measure struct {
	// Counters selects counter groups: "stack" (per-machine TCP
	// counters), "switch" (single-switch drop/mark counters), "fabric"
	// (per-tier fabric counters). Empty = all applicable.
	Counters []string `json:"counters,omitempty"`
	// Flowmon attaches a passive analyzer to each named machine's NIC.
	Flowmon []FlowmonAttach `json:"flowmon,omitempty"`
	// PerRackFleets attaches one flowmon Fleet per rack (every host NIC
	// in the rack) and reports per-rack totals with per-spine RTT/retx
	// splits, grouped by the same CRC-32 flow hash ECMP uses. Fabric
	// topologies only.
	PerRackFleets bool `json:"per_rack_fleets,omitempty"`
	// PerFlow includes per-flow analyzer records in the Result payload.
	// The server's NDJSON stream replays flow records from that payload,
	// so streams carry flow lines only when this is set.
	PerFlow bool `json:"per_flow,omitempty"`
}

// FlowmonAttach is one analyzer attach point.
type FlowmonAttach struct {
	Machine string `json:"machine"`
	// DupAck is the observed stack's duplicate-ACK rule: "flextoe"
	// (default) or "baseline".
	DupAck        string `json:"dupack,omitempty"`
	OOOCap        int    `json:"ooo_cap,omitempty"`
	RTTMaxUs      int    `json:"rtt_max_us,omitempty"`
	TimelineBinUs int64  `json:"timeline_bin_us,omitempty"`
	TimelineBins  int    `json:"timeline_bins,omitempty"`
}

// Parse decodes a Spec strictly: unknown fields are errors, and the
// decoded spec is validated.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// errf builds a validation error.
func errf(format string, args ...any) error {
	return fmt.Errorf("scenario: invalid spec: "+format, args...)
}

func validProb(p float64) bool { return p >= 0 && p <= 1 }

func (sw *SwitchSpec) validate(where string) error {
	if !validProb(sw.LossProb) || !validProb(sw.DupProb) || !validProb(sw.ReorderProb) || !validProb(sw.WREDMaxProb) {
		return errf("%s: probabilities must be in [0,1]", where)
	}
	if sw.ReorderProb > 0 && sw.ReorderDelayUs <= 0 {
		return errf("%s: reorder_prob > 0 requires reorder_delay_us > 0", where)
	}
	if sw.ReorderDelayUs < 0 || sw.LatencyNs < 0 {
		return errf("%s: delays must be >= 0", where)
	}
	if sw.WREDMaxBytes > 0 && sw.WREDMaxBytes <= sw.WREDMinBytes {
		return errf("%s: wred_max_bytes must exceed wred_min_bytes", where)
	}
	if sw.ECNThresholdBytes < 0 || sw.QueueCapBytes < 0 || sw.WREDMinBytes < 0 || sw.WREDMaxBytes < 0 {
		return errf("%s: byte thresholds must be >= 0", where)
	}
	return nil
}

// machineIndex returns the index of the named machine, -1 if absent.
// Linear scan: specs hold a handful of machines and validation must not
// range over maps (the determinism contract bans it package-wide).
func (s *Spec) machineIndex(name string) int {
	for i := range s.Machines {
		if s.Machines[i].Name == name {
			return i
		}
	}
	return -1
}

func (s *Spec) checkRefs(kind string, names []string) error {
	if len(names) == 0 {
		return errf("workload %s: needs at least one machine reference", kind)
	}
	for _, n := range names {
		if s.machineIndex(n) < 0 {
			return errf("workload %s: unknown machine %q", kind, n)
		}
	}
	return nil
}

// Validate checks the spec against the determinism and pooling
// contracts. It does not mutate the spec; defaults apply at build time.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errf("name is required")
	}
	for _, r := range s.Name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.') {
			return errf("name %q: only [a-zA-Z0-9._-] allowed", s.Name)
		}
	}
	if s.DurationUs <= 0 {
		return errf("duration_us must be > 0")
	}
	if s.WarmupUs < 0 {
		return errf("warmup_us must be >= 0")
	}
	if s.Cores < 0 {
		return errf("cores must be >= 0")
	}

	racks := 1
	switch s.Topology.Kind {
	case TopoTestbed:
		if s.Topology.Fabric != nil {
			return errf("testbed topology must not carry a fabric block")
		}
		if s.Topology.Switch != nil {
			if err := s.Topology.Switch.validate("switch"); err != nil {
				return err
			}
		}
	case TopoFabric:
		if s.Topology.Switch != nil {
			return errf("fabric topology must not carry a switch block")
		}
		f := s.Topology.Fabric
		if f == nil {
			return errf("fabric topology requires a fabric block")
		}
		if f.Racks < 1 || f.Spines < 1 {
			return errf("fabric: racks and spines must be >= 1")
		}
		if f.LeafHostGbps < 0 || f.LeafSpineGbps < 0 || f.HostPropNs < 0 || f.TrunkPropNs < 0 || f.QueueHistUnit < 0 {
			return errf("fabric: rates, propagation delays and queue_hist_unit must be >= 0")
		}
		if f.Leaf != nil {
			if err := f.Leaf.validate("fabric.leaf"); err != nil {
				return err
			}
		}
		if f.Spine != nil {
			if err := f.Spine.validate("fabric.spine"); err != nil {
				return err
			}
		}
		racks = f.Racks
	default:
		return errf("topology.kind must be %q or %q", TopoTestbed, TopoFabric)
	}

	if len(s.Machines) == 0 {
		return errf("at least one machine is required")
	}
	for i := range s.Machines {
		m := &s.Machines[i]
		if m.Name == "" {
			return errf("machine %d: name is required", i)
		}
		for j := 0; j < i; j++ {
			if s.Machines[j].Name == m.Name {
				return errf("duplicate machine name %q", m.Name)
			}
		}
		switch m.Stack {
		case StackFlexTOE:
		case StackLinux, StackTAS, StackChelsio:
			if m.CC != "" {
				return errf("machine %q: cc applies to flextoe machines only", m.Name)
			}
			if m.SACK {
				return errf("machine %q: sack applies to flextoe machines only", m.Name)
			}
			if m.AcceptRate != 0 {
				return errf("machine %q: accept_rate applies to flextoe machines only", m.Name)
			}
			if m.StackCores != 0 && m.Stack != StackTAS {
				return errf("machine %q: stack_cores applies to tas machines only", m.Name)
			}
		default:
			return errf("machine %q: unknown stack %q", m.Name, m.Stack)
		}
		switch m.CC {
		case "", "none", "dctcp", "timely":
		default:
			return errf("machine %q: unknown cc %q", m.Name, m.CC)
		}
		if m.Cores < 0 || m.StackCores < 0 || m.ListenBacklog < 0 || m.AcceptRate < 0 || m.NICGbps < 0 {
			return errf("machine %q: negative resource values", m.Name)
		}
		if m.OOOCap < 0 || m.OOOCap > 32 {
			return errf("machine %q: ooo_cap must be in [0,32]", m.Name)
		}
		if m.Rack < 0 || m.Rack >= racks {
			return errf("machine %q: rack %d out of range (racks=%d)", m.Name, m.Rack, racks)
		}
	}

	if len(s.Workloads) == 0 {
		return errf("at least one workload is required")
	}
	for i := range s.Workloads {
		if err := s.validateWorkload(i); err != nil {
			return err
		}
	}

	for _, c := range s.Measure.Counters {
		switch c {
		case "stack", "switch", "fabric":
		default:
			return errf("measure.counters: unknown group %q", c)
		}
		if c == "switch" && s.Topology.Kind != TopoTestbed {
			return errf("measure.counters: %q requires a testbed topology", c)
		}
		if c == "fabric" && s.Topology.Kind != TopoFabric {
			return errf("measure.counters: %q requires a fabric topology", c)
		}
	}
	for i := range s.Measure.Flowmon {
		fa := &s.Measure.Flowmon[i]
		if s.machineIndex(fa.Machine) < 0 {
			return errf("measure.flowmon[%d]: unknown machine %q", i, fa.Machine)
		}
		// One analyzer per NIC: taps are single slots, so a second attach
		// would silently replace the first.
		for j := 0; j < i; j++ {
			if s.Measure.Flowmon[j].Machine == fa.Machine {
				return errf("measure.flowmon[%d]: machine %q already has an analyzer", i, fa.Machine)
			}
		}
		switch fa.DupAck {
		case "", "flextoe", "baseline":
		default:
			return errf("measure.flowmon[%d]: unknown dupack rule %q", i, fa.DupAck)
		}
		if fa.OOOCap < -1 || fa.OOOCap > 32 {
			return errf("measure.flowmon[%d]: ooo_cap must be in [-1,32]", i)
		}
		if fa.RTTMaxUs < 0 || fa.TimelineBinUs < 0 || fa.TimelineBins < 0 {
			return errf("measure.flowmon[%d]: negative histogram options", i)
		}
	}
	if s.Measure.PerRackFleets && s.Topology.Kind != TopoFabric {
		return errf("measure.per_rack_fleets requires a fabric topology")
	}
	if s.Measure.PerRackFleets && len(s.Measure.Flowmon) > 0 {
		// Rack fleets tap every host NIC; a per-machine analyzer on the
		// same NIC would fight over the single tap slot.
		return errf("measure.per_rack_fleets excludes explicit flowmon attach points")
	}
	return nil
}

// listenKey is a (machine, port) listener; duplicates across workloads
// would collide on the stack's port space.
type listenKey struct {
	machine string
	port    uint16
}

func (s *Spec) validateWorkload(i int) error {
	w := &s.Workloads[i]
	subs := 0
	for _, p := range []bool{w.Bulk != nil, w.RPC != nil, w.KV != nil, w.FlowGen != nil, w.Incast != nil, w.Background != nil} {
		if p {
			subs++
		}
	}
	if subs != 1 {
		return errf("workload %d: exactly one workload block must be set", i)
	}
	var listeners []listenKey
	for j := 0; j <= i; j++ {
		listeners = append(listeners, s.Workloads[j].listeners()...)
	}
	mine := w.listeners()
	for _, lk := range mine {
		if lk.port == 0 {
			return errf("workload %d (%s): port must be nonzero", i, w.Kind)
		}
		n := 0
		for _, other := range listeners {
			if other == lk {
				n++
			}
		}
		if n > 1 {
			return errf("workload %d (%s): duplicate listener %s:%d", i, w.Kind, lk.machine, lk.port)
		}
	}

	switch w.Kind {
	case KindBulk:
		if w.Bulk == nil {
			return errf("workload %d: kind %q requires the matching block", i, w.Kind)
		}
		b := w.Bulk
		if err := s.checkRefs("bulk", append([]string{b.Server}, b.Clients...)); err != nil {
			return err
		}
		if len(b.Clients) == 0 {
			return errf("workload bulk: clients must be non-empty")
		}
		if b.Conns < 0 {
			return errf("workload bulk: conns must be >= 0")
		}
	case KindRPC:
		if w.RPC == nil {
			return errf("workload %d: kind %q requires the matching block", i, w.Kind)
		}
		r := w.RPC
		if err := s.checkRefs("rpc", append([]string{r.Server}, r.Clients...)); err != nil {
			return err
		}
		if len(r.Clients) == 0 {
			return errf("workload rpc: clients must be non-empty")
		}
		if r.Conns < 1 || r.ReqBytes < 1 || r.RespBytes < 0 || r.Pipeline < 0 || r.AppCycles < 0 {
			return errf("workload rpc: conns and req_bytes must be >= 1, other values >= 0")
		}
	case KindKV:
		if w.KV == nil {
			return errf("workload %d: kind %q requires the matching block", i, w.Kind)
		}
		k := w.KV
		if err := s.checkRefs("kv", append([]string{k.Server}, k.Clients...)); err != nil {
			return err
		}
		if len(k.Clients) == 0 {
			return errf("workload kv: clients must be non-empty")
		}
		if k.Conns < 1 || k.KeyBytes < 0 || k.ValBytes < 0 || k.Pipeline < 0 || k.AppCycles < 0 {
			return errf("workload kv: conns must be >= 1, sizes >= 0")
		}
		if !validProb(k.SetRatio) {
			return errf("workload kv: set_ratio must be in [0,1]")
		}
	case KindFlowGen:
		if w.FlowGen == nil {
			return errf("workload %d: kind %q requires the matching block", i, w.Kind)
		}
		g := w.FlowGen
		if err := s.checkRefs("flowgen", append(append([]string{}, g.Servers...), g.Clients...)); err != nil {
			return err
		}
		if len(g.Servers) == 0 || len(g.Clients) == 0 {
			return errf("workload flowgen: servers and clients must be non-empty")
		}
		if g.Rate <= 0 {
			return errf("workload flowgen: rate must be > 0")
		}
		switch g.Dist {
		case "fixed":
			if g.SizeBytes < 1 {
				return errf("workload flowgen: fixed dist requires size_bytes >= 1")
			}
		case "websearch", "datamining":
			if g.SizeBytes != 0 {
				return errf("workload flowgen: size_bytes applies to the fixed dist only")
			}
		default:
			return errf("workload flowgen: unknown dist %q", g.Dist)
		}
		if g.Conns < 0 || g.MaxFlows < 0 {
			return errf("workload flowgen: conns and max_flows must be >= 0")
		}
	case KindIncast:
		if w.Incast == nil {
			return errf("workload %d: kind %q requires the matching block", i, w.Kind)
		}
		in := w.Incast
		if err := s.checkRefs("incast", append([]string{in.Agg}, in.Senders...)); err != nil {
			return err
		}
		if len(in.Senders) == 0 {
			return errf("workload incast: senders must be non-empty")
		}
		if in.FanIn < 1 || in.BlockBytes < 1 || in.Rounds < 0 {
			return errf("workload incast: fan_in and block_bytes must be >= 1, rounds >= 0")
		}
	case KindBackground:
		if w.Background == nil {
			return errf("workload %d: kind %q requires the matching block", i, w.Kind)
		}
		bg := w.Background
		if err := s.checkRefs("background", append([]string{bg.Sink}, bg.Srcs...)); err != nil {
			return err
		}
		if len(bg.Srcs) == 0 || bg.Conns < 1 {
			return errf("workload background: srcs must be non-empty and conns >= 1")
		}
	default:
		return errf("workload %d: unknown kind %q", i, w.Kind)
	}
	return nil
}

// listeners returns the (machine, port) pairs this workload listens on.
func (w *Workload) listeners() []listenKey {
	switch {
	case w.Bulk != nil:
		return []listenKey{{w.Bulk.Server, w.Bulk.Port}}
	case w.RPC != nil:
		return []listenKey{{w.RPC.Server, w.RPC.Port}}
	case w.KV != nil:
		return []listenKey{{w.KV.Server, w.KV.Port}}
	case w.FlowGen != nil:
		out := make([]listenKey, 0, len(w.FlowGen.Servers))
		for _, srv := range w.FlowGen.Servers {
			out = append(out, listenKey{srv, w.FlowGen.Port})
		}
		return out
	case w.Incast != nil:
		return []listenKey{{w.Incast.Agg, w.Incast.Port}}
	case w.Background != nil:
		return []listenKey{{w.Background.Sink, w.Background.Port}}
	}
	return nil
}

package scenario

import (
	"errors"
	"fmt"

	"flextoe/internal/api"
	"flextoe/internal/apps"
	"flextoe/internal/ctrl"
	"flextoe/internal/fabric"
	"flextoe/internal/fabric/workload"
	"flextoe/internal/flowmon"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
	"flextoe/internal/testbed"
)

// ErrCanceled is returned by Execute when the progress callback asks to
// stop; the partially-run simulation is discarded.
var ErrCanceled = errors.New("scenario: canceled")

// Progress observes a running execution: doneUs is simulated measured
// time elapsed (warmup excluded), totalUs the measured window. Return
// false to cancel. Called between run chunks only — never from inside
// the event loop — so it may block without perturbing the simulation.
type Progress func(doneUs, totalUs int64) bool

// seedMix is the odd multiplier used to derive per-machine and
// per-workload seeds from the spec seed when none is given explicitly
// (splitmix64's golden-ratio increment).
const seedMix = 0x9e3779b97f4a7c15

// tapRef is one attached analyzer labeled with its machine.
type tapRef struct {
	machine string
	mon     *flowmon.Analyzer
}

// Built is a compiled scenario: the testbed, workload runtimes, and
// analyzers, ready to Execute exactly once. All state is owned by the
// Built value — nothing is shared across scenarios, so any number may
// run concurrently in one process (the service's worker-pool isolation
// guarantee).
type Built struct {
	Spec *Spec
	TB   *testbed.Testbed

	warm, dur sim.Time

	wls       []wlRuntime
	taps      []tapRef   // Measure.Flowmon attach points, spec order
	fleetTaps [][]tapRef // per rack, host attachment order
	spines    int

	machBase []machCounters
	swBase   switchCounters
	fabBase  fabricCounters

	reports []*flowmon.Report // taps' readouts, filled by Execute
	done    bool
}

// wlRuntime is one started workload's measurement lifecycle: reset
// marks the warmup boundary, result reads the measured window.
type wlRuntime interface {
	reset()
	result(d sim.Time) WorkloadResult
}

// Build validates the spec and compiles it: topology, machines (in spec
// order — order fixes IP assignment and shard placement), flowmon
// attach points, then workloads in spec order (each listener installed
// before its dialers). The construction sequence is exactly the one the
// hand-written experiment runners use, which is what makes a spec
// equivalent to its figure.
func Build(s *Spec) (*Built, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := &Built{
		Spec: s,
		warm: sim.Time(s.WarmupUs) * sim.Microsecond,
		dur:  sim.Time(s.DurationUs) * sim.Microsecond,
	}
	cores := s.Cores
	if cores < 1 {
		cores = 1
	}
	specs := make([]testbed.MachineSpec, len(s.Machines))
	for i := range s.Machines {
		specs[i] = machineSpec(s, i)
	}
	if s.Topology.Kind == TopoFabric {
		b.spines = s.Topology.Fabric.Spines
		b.TB = testbed.NewFabricCores(cores, fabricConfig(s), specs...)
	} else {
		b.TB = testbed.NewCores(cores, switchConfig(s.Topology.Switch, s.Seed), specs...)
	}

	for i := range s.Measure.Flowmon {
		fa := &s.Measure.Flowmon[i]
		mon := flowmon.New(flowmonConfig(fa))
		flowmon.Attach(mon, b.TB.M(fa.Machine).Iface)
		b.taps = append(b.taps, tapRef{machine: fa.Machine, mon: mon})
	}
	if s.Measure.PerRackFleets {
		b.fleetTaps = make([][]tapRef, s.Topology.Fabric.Racks)
		for _, h := range b.TB.Fabric.Hosts() {
			mon := flowmon.New(flowmon.Config{})
			flowmon.Attach(mon, h.Iface)
			b.fleetTaps[h.Rack] = append(b.fleetTaps[h.Rack], tapRef{machine: h.Name, mon: mon})
		}
	}

	for i := range s.Workloads {
		b.wls = append(b.wls, b.startWorkload(&s.Workloads[i], i))
	}
	return b, nil
}

// Run parses, builds, and executes a spec in one call.
func Run(data []byte, progress Progress) (*Result, error) {
	s, err := Parse(data)
	if err != nil {
		return nil, err
	}
	b, err := Build(s)
	if err != nil {
		return nil, err
	}
	return b.Execute(progress)
}

// Execute runs warmup then the measured window and returns the Result.
// With a progress callback the measured window runs in fixed chunks
// (the callback fires between chunks and may cancel); the chunk
// schedule is the same for every execution of a given spec, so streamed
// runs stay byte-identical to each other. Execute may be called once.
func (b *Built) Execute(progress Progress) (*Result, error) {
	if b.done {
		return nil, errors.New("scenario: Built already executed")
	}
	b.done = true
	if progress != nil && !progress(0, b.Spec.DurationUs) {
		return nil, ErrCanceled
	}
	if b.warm > 0 {
		b.TB.Run(b.warm)
	}
	b.resetAtWarmBoundary()
	end := b.warm + b.dur
	if progress == nil {
		b.TB.Run(end)
	} else {
		const chunks = 32
		for c := 1; c <= chunks; c++ {
			t := b.warm + b.dur*sim.Time(c)/chunks
			if c == chunks {
				t = end
			}
			b.TB.Run(t)
			if !progress(int64((t-b.warm)/sim.Microsecond), b.Spec.DurationUs) {
				return nil, ErrCanceled
			}
		}
	}
	return b.readout(), nil
}

// Reports returns the Measure.Flowmon analyzers' raw readouts (spec
// order), available after Execute — the full per-flow detail behind the
// Result's FlowmonResult rows.
func (b *Built) Reports() []*flowmon.Report { return b.reports }

// ---------------------------------------------------------------------
// Spec → constructor translation.
// ---------------------------------------------------------------------

func machineSpec(s *Spec, i int) testbed.MachineSpec {
	m := &s.Machines[i]
	seed := m.Seed
	if seed == 0 {
		seed = s.Seed ^ uint64(i+1)*seedMix
	}
	var kind testbed.StackKind
	switch m.Stack {
	case StackFlexTOE:
		kind = testbed.FlexTOE
	case StackLinux:
		kind = testbed.Linux
	case StackTAS:
		kind = testbed.TAS
	case StackChelsio:
		kind = testbed.Chelsio
	}
	var cc ctrl.CCAlgo
	switch m.CC {
	case "dctcp":
		cc = ctrl.CCDCTCP
	case "timely":
		cc = ctrl.CCTimely
	}
	return testbed.MachineSpec{
		Name:          m.Name,
		Kind:          kind,
		Cores:         m.Cores,
		BufSize:       m.BufBytes,
		NICGbps:       m.NICGbps,
		CC:            cc,
		SACK:          m.SACK,
		OOOCap:        m.OOOCap,
		StackCores:    m.StackCores,
		Rack:          m.Rack,
		ListenBacklog: m.ListenBacklog,
		AcceptRate:    m.AcceptRate,
		Seed:          seed,
	}
}

func switchConfig(sw *SwitchSpec, seed uint64) netsim.SwitchConfig {
	if sw == nil {
		return netsim.SwitchConfig{Seed: seed}
	}
	return netsim.SwitchConfig{
		LossProb:          sw.LossProb,
		ECNThresholdBytes: sw.ECNThresholdBytes,
		QueueCapBytes:     sw.QueueCapBytes,
		WREDMinBytes:      sw.WREDMinBytes,
		WREDMaxBytes:      sw.WREDMaxBytes,
		WREDMaxProb:       sw.WREDMaxProb,
		DupProb:           sw.DupProb,
		ReorderProb:       sw.ReorderProb,
		ReorderDelay:      sim.Time(sw.ReorderDelayUs) * sim.Microsecond,
		Latency:           sim.Time(sw.LatencyNs) * sim.Nanosecond,
		Seed:              seed,
	}
}

func fabricConfig(s *Spec) fabric.Config {
	f := s.Topology.Fabric
	fc := fabric.Config{
		Leaves:        f.Racks,
		Spines:        f.Spines,
		LeafHostGbps:  f.LeafHostGbps,
		LeafSpineGbps: f.LeafSpineGbps,
		HostProp:      sim.Time(f.HostPropNs) * sim.Nanosecond,
		TrunkProp:     sim.Time(f.TrunkPropNs) * sim.Nanosecond,
		QueueHistUnit: f.QueueHistUnit,
		Seed:          s.Seed,
	}
	if f.Leaf != nil {
		fc.Leaf = switchConfig(f.Leaf, 0)
	}
	if f.Spine != nil {
		fc.Spine = switchConfig(f.Spine, 0)
	}
	return fc
}

func flowmonConfig(fa *FlowmonAttach) flowmon.Config {
	cfg := flowmon.Config{
		OOOCap:       fa.OOOCap,
		RTTMaxUs:     fa.RTTMaxUs,
		TimelineBin:  sim.Time(fa.TimelineBinUs) * sim.Microsecond,
		TimelineBins: fa.TimelineBins,
	}
	if fa.DupAck == "baseline" {
		cfg.DupAck = flowmon.DupAckBaseline
	}
	return cfg
}

// ---------------------------------------------------------------------
// Workload runtimes.
// ---------------------------------------------------------------------

func (b *Built) stacks(names []string) []api.Stack {
	out := make([]api.Stack, len(names))
	for i, n := range names {
		out[i] = b.TB.M(n).Stack
	}
	return out
}

func (b *Built) startWorkload(w *Workload, idx int) wlRuntime {
	s := b.Spec
	wseed := func(explicit uint64) uint64 {
		if explicit != 0 {
			return explicit
		}
		return s.Seed ^ uint64(idx+1)*seedMix ^ 0x5eed
	}
	switch w.Kind {
	case KindBulk:
		sink := &apps.BulkSink{}
		sink.Serve(b.TB.M(w.Bulk.Server).Stack, w.Bulk.Port)
		conns := w.Bulk.Conns
		if conns == 0 {
			conns = len(w.Bulk.Clients)
		}
		addr := b.TB.Addr(w.Bulk.Server, w.Bulk.Port)
		for i := 0; i < conns; i++ {
			(&apps.BulkSender{}).Start(b.TB.M(w.Bulk.Clients[i%len(w.Bulk.Clients)]).Stack, addr)
		}
		return &bulkRT{sink: sink}
	case KindRPC:
		r := w.RPC
		srv := &apps.RPCServer{ReqSize: r.ReqBytes, RespSize: r.RespBytes, AppCycles: r.AppCycles}
		srv.Serve(b.TB.M(r.Server).Stack, r.Port)
		addr := b.TB.Addr(r.Server, r.Port)
		rt := &rpcRT{}
		for _, cl := range r.Clients {
			c := &apps.ClosedLoopClient{ReqSize: r.ReqBytes, RespSize: r.RespBytes, Pipeline: r.Pipeline}
			c.Start(b.TB.M(cl).Stack, addr, r.Conns)
			rt.cls = append(rt.cls, c)
		}
		return rt
	case KindKV:
		k := w.KV
		srv := &apps.KVServer{AppCycles: k.AppCycles, ValueLen: k.ValBytes}
		srv.Serve(b.TB.M(k.Server).Stack, k.Port)
		addr := b.TB.Addr(k.Server, k.Port)
		rt := &kvRT{}
		for i, cl := range k.Clients {
			c := &apps.KVClient{
				KeyLen:   k.KeyBytes,
				ValLen:   k.ValBytes,
				SetRatio: k.SetRatio,
				Pipeline: k.Pipeline,
				Seed:     wseed(k.Seed) ^ uint64(i+1)*seedMix,
			}
			c.Start(b.TB.M(cl).Stack, addr, k.Conns)
			rt.cls = append(rt.cls, c)
		}
		return rt
	case KindFlowGen:
		g := w.FlowGen
		var dist workload.SizeDist
		switch g.Dist {
		case "fixed":
			dist = workload.Fixed(g.SizeBytes)
		case "websearch":
			dist = workload.WebSearch()
		default:
			dist = workload.DataMining()
		}
		fg := &workload.FlowGen{
			Rate:     g.Rate,
			Size:     dist,
			Conns:    g.Conns,
			MaxFlows: g.MaxFlows,
			Seed:     wseed(g.Seed),
		}
		targets := make([]api.Addr, len(g.Servers))
		for i, srv := range g.Servers {
			fg.Serve(b.TB.M(srv).Stack, g.Port)
			targets[i] = b.TB.Addr(srv, g.Port)
		}
		fg.Start(b.stacks(g.Clients), targets...)
		return &flowgenRT{g: fg}
	case KindIncast:
		in := w.Incast
		g := &workload.IncastGroup{BlockBytes: in.BlockBytes, Rounds: in.Rounds}
		g.Serve(b.TB.M(in.Agg).Stack, in.Port)
		senders := make([]api.Stack, in.FanIn)
		for i := range senders {
			senders[i] = b.TB.M(in.Senders[i%len(in.Senders)]).Stack
		}
		g.Start(senders, b.TB.Addr(in.Agg, in.Port))
		return &incastRT{g: g}
	case KindBackground:
		bg := w.Background
		bk := workload.StartBackground(b.stacks(bg.Srcs), b.TB.M(bg.Sink).Stack, bg.Port, bg.Conns)
		return &bgRT{sink: bk.Sink}
	}
	panic(fmt.Sprintf("scenario: unreachable workload kind %q", w.Kind))
}

type bulkRT struct {
	sink *apps.BulkSink
	base uint64
}

func (rt *bulkRT) reset() { rt.base = rt.sink.Received }
func (rt *bulkRT) result(d sim.Time) WorkloadResult {
	delta := rt.sink.Received - rt.base
	return WorkloadResult{Kind: KindBulk, Bytes: delta, GoodputGbps: gbps(delta, d)}
}

type rpcRT struct {
	cls   []*apps.ClosedLoopClient
	ops0  uint64
	byts0 uint64
}

func (rt *rpcRT) reset() {
	rt.ops0, rt.byts0 = 0, 0
	for _, c := range rt.cls {
		rt.ops0 += c.Completed
		rt.byts0 += c.Bytes
		c.Latency = stats.NewHistogram()
	}
}

func (rt *rpcRT) result(d sim.Time) WorkloadResult {
	var ops, byts uint64
	lat := stats.NewHistogram()
	for _, c := range rt.cls {
		ops += c.Completed
		byts += c.Bytes
		lat.Merge(c.Latency)
	}
	r := WorkloadResult{Kind: KindRPC, Ops: ops - rt.ops0, Bytes: byts - rt.byts0, GoodputGbps: gbps(byts-rt.byts0, d)}
	if lat.Count() > 0 {
		r.P50Us = usOf(lat.Percentile(50))
		r.P99Us = usOf(lat.Percentile(99))
	}
	return r
}

type kvRT struct {
	cls  []*apps.KVClient
	ops0 uint64
}

func (rt *kvRT) reset() {
	rt.ops0 = 0
	for _, c := range rt.cls {
		rt.ops0 += c.Completed
		c.Latency = stats.NewHistogram()
	}
}

func (rt *kvRT) result(d sim.Time) WorkloadResult {
	var ops uint64
	lat := stats.NewHistogram()
	for _, c := range rt.cls {
		ops += c.Completed
		lat.Merge(c.Latency)
	}
	r := WorkloadResult{Kind: KindKV, Ops: ops - rt.ops0}
	if lat.Count() > 0 {
		r.P50Us = usOf(lat.Percentile(50))
		r.P99Us = usOf(lat.Percentile(99))
	}
	return r
}

type flowgenRT struct {
	g *workload.FlowGen
}

func (rt *flowgenRT) reset() { rt.g.ResetMeasurement() }
func (rt *flowgenRT) result(d sim.Time) WorkloadResult {
	r := WorkloadResult{
		Kind:      KindFlowGen,
		Started:   rt.g.Started(),
		Completed: rt.g.Completed(),
		Bytes:     rt.g.BytesCompleted(),
	}
	if fct := rt.g.FCT(); fct.Count() > 0 {
		r.P50Us = usOf(fct.Percentile(50))
		r.P99Us = usOf(fct.Percentile(99))
	}
	return r
}

type incastRT struct {
	g       *workload.IncastGroup
	bytes0  uint64
	rounds0 uint64
}

func (rt *incastRT) reset() {
	rt.g.ResetMeasurement()
	rt.bytes0 = rt.g.BytesReceived
	rt.rounds0 = rt.g.RoundsDone
}

func (rt *incastRT) result(d sim.Time) WorkloadResult {
	delta := rt.g.BytesReceived - rt.bytes0
	r := WorkloadResult{
		Kind:        KindIncast,
		Bytes:       delta,
		GoodputGbps: gbps(delta, d),
		Rounds:      rt.g.RoundsDone - rt.rounds0,
	}
	if rt.g.RoundFCT.Count() > 0 {
		r.P50Us = usOf(rt.g.RoundFCT.Percentile(50))
		r.P99Us = usOf(rt.g.RoundFCT.Percentile(99))
	}
	return r
}

type bgRT struct {
	sink *apps.BulkSink
	base uint64
}

func (rt *bgRT) reset() { rt.base = rt.sink.Received }
func (rt *bgRT) result(d sim.Time) WorkloadResult {
	delta := rt.sink.Received - rt.base
	return WorkloadResult{Kind: KindBackground, Bytes: delta, GoodputGbps: gbps(delta, d)}
}

// ---------------------------------------------------------------------
// Counter snapshots and readout.
// ---------------------------------------------------------------------

type machCounters struct {
	rxSegs, txSegs, retxSegs, retxBytes, dupAcks, oooAcc, oooDrop uint64
}

func machineCounters(m *testbed.Machine) machCounters {
	if m.TOE != nil {
		c := m.TOE.Counters
		return machCounters{c.RxSegs, c.TxSegs, c.RetxSegs, c.RetxBytes, c.DupAcks, c.OOOAccepted, c.OOODropped}
	}
	s := m.Base
	return machCounters{s.RxSegs, s.TxSegs, s.RetxSegs, s.RetxBytes, s.DupAcks, s.OOOAccepted, s.OOODropped}
}

type switchCounters struct {
	forwarded, lossDrops, queueDrops, wredDrops, ecnMarks, dupInjected, reordered uint64
}

func switchCountersOf(sw *netsim.Switch) switchCounters {
	return switchCounters{sw.Forwarded, sw.LossDrops, sw.QueueDrops, sw.WREDDrops, sw.ECNMarks, sw.DupInjected, sw.Reordered}
}

type fabricCounters struct {
	leafMarks, spineMarks, drops uint64
	spineTx                      []uint64
}

func fabricCountersOf(f *fabric.Fabric) fabricCounters {
	leaf, spine := f.ECNMarks()
	return fabricCounters{leafMarks: leaf, spineMarks: spine, drops: f.Drops(), spineTx: f.SpineTxBytes()}
}

// resetAtWarmBoundary marks the warmup boundary: queue statistics
// reset, workload measurement resets, and counter baselines snapshot —
// the same sequence the figure runners perform between their warm and
// measured runs. With zero warmup it runs at t=0 and every baseline is
// zero, so deltas equal cumulative counters.
func (b *Built) resetAtWarmBoundary() {
	if b.TB.Fabric != nil {
		b.TB.Fabric.ResetQueueStats()
		b.fabBase = fabricCountersOf(b.TB.Fabric)
	} else {
		b.swBase = switchCountersOf(b.TB.Net.Switch)
	}
	for _, rt := range b.wls {
		rt.reset()
	}
	b.machBase = make([]machCounters, len(b.Spec.Machines))
	for i := range b.Spec.Machines {
		b.machBase[i] = machineCounters(b.TB.M(b.Spec.Machines[i].Name))
	}
}

// wantCounters reports whether a counter group is selected (empty
// selection = everything applicable).
func (s *Spec) wantCounters(group string) bool {
	if len(s.Measure.Counters) == 0 {
		return true
	}
	for _, c := range s.Measure.Counters {
		if c == group {
			return true
		}
	}
	return false
}

func (b *Built) readout() *Result {
	s := b.Spec
	cores := s.Cores
	if cores < 1 {
		cores = 1
	}
	r := &Result{
		Name:       s.Name,
		Seed:       s.Seed,
		Cores:      cores,
		DurationUs: s.DurationUs,
		WarmupUs:   s.WarmupUs,
	}
	if s.wantCounters("stack") {
		for i := range s.Machines {
			m := &s.Machines[i]
			cur := machineCounters(b.TB.M(m.Name))
			base := b.machBase[i]
			r.Machines = append(r.Machines, MachineResult{
				Name:        m.Name,
				Stack:       m.Stack,
				RxSegs:      cur.rxSegs - base.rxSegs,
				TxSegs:      cur.txSegs - base.txSegs,
				RetxSegs:    cur.retxSegs - base.retxSegs,
				RetxBytes:   cur.retxBytes - base.retxBytes,
				DupAcks:     cur.dupAcks - base.dupAcks,
				OOOAccepted: cur.oooAcc - base.oooAcc,
				OOODropped:  cur.oooDrop - base.oooDrop,
			})
		}
	}
	if b.TB.Fabric != nil {
		if s.wantCounters("fabric") {
			cur := fabricCountersOf(b.TB.Fabric)
			fr := &FabricResult{
				LeafECNMarks:         cur.leafMarks - b.fabBase.leafMarks,
				SpineECNMarks:        cur.spineMarks - b.fabBase.spineMarks,
				Drops:                cur.drops - b.fabBase.drops,
				PeakLeafQueueBytes:   b.TB.Fabric.PeakLeafQueueBytes(),
				PeakUplinkQueueBytes: b.TB.Fabric.PeakUplinkQueueBytes(),
				SpineTxBytes:         make([]uint64, len(cur.spineTx)),
			}
			for i, v := range cur.spineTx {
				fr.SpineTxBytes[i] = v - b.fabBase.spineTx[i]
			}
			r.Fabric = fr
		}
	} else if s.wantCounters("switch") {
		cur := switchCountersOf(b.TB.Net.Switch)
		r.Switch = &SwitchResult{
			Forwarded:   cur.forwarded - b.swBase.forwarded,
			LossDrops:   cur.lossDrops - b.swBase.lossDrops,
			QueueDrops:  cur.queueDrops - b.swBase.queueDrops,
			WREDDrops:   cur.wredDrops - b.swBase.wredDrops,
			ECNMarks:    cur.ecnMarks - b.swBase.ecnMarks,
			DupInjected: cur.dupInjected - b.swBase.dupInjected,
			Reordered:   cur.reordered - b.swBase.reordered,
		}
	}
	for _, rt := range b.wls {
		r.Workloads = append(r.Workloads, rt.result(b.dur))
	}
	for _, t := range b.taps {
		rep := t.mon.Report()
		b.reports = append(b.reports, rep)
		r.Flowmon = append(r.Flowmon, flowmonResult(t.machine, rep))
	}
	for rack, taps := range b.fleetTaps {
		fl := &flowmon.Fleet{}
		for _, t := range taps {
			fl.Add(t.mon)
		}
		r.Racks = append(r.Racks, rackResult(rack, b.spines, fl.Report()))
	}
	if s.Measure.PerFlow {
		r.Flows = b.FlowRecords()
	}
	return r
}

func flowmonResult(machine string, rep *flowmon.Report) FlowmonResult {
	t := rep.Totals()
	fr := FlowmonResult{
		Machine:      machine,
		Flows:        t.Flows,
		Pkts:         rep.Pkts,
		AckedBytes:   t.AckedBytes,
		RetxSegs:     t.RetxSegs,
		RetxBytes:    t.RetxBytes,
		RetxGBNBytes: t.RetxGBNBytes,
		RetxSelBytes: t.RetxSelBytes,
		DupAcks:      t.DupAcks,
		OOOAccepts:   t.OOOAccepts,
		OOODrops:     t.OOODrops,
		CEPkts:       t.CEPkts,
		RTTSamples:   rep.RTTHist.Count(),
	}
	if fr.RTTSamples > 0 {
		fr.RTTP50Us = rep.RTTHist.Quantile(0.5)
		fr.RTTP99Us = rep.RTTHist.Quantile(0.99)
		fr.RTTMaxUs = rep.RTTHist.MaxSeen()
	}
	return fr
}

func rackResult(rack, spines int, rep *flowmon.Report) RackResult {
	t := rep.Totals()
	rr := RackResult{
		Rack:         rack,
		Flows:        t.Flows,
		Pkts:         rep.Pkts,
		AckedBytes:   t.AckedBytes,
		RetxBytes:    t.RetxBytes,
		RetxSelBytes: t.RetxSelBytes,
		DupAcks:      t.DupAcks,
		RTTSamples:   rep.RTTHist.Count(),
	}
	if rr.RTTSamples > 0 {
		rr.RTTP50Us = rep.RTTHist.Quantile(0.5)
		rr.RTTP99Us = rep.RTTHist.Quantile(0.99)
	}
	for spine, gt := range rep.GroupTotals(spines, func(f *flowmon.FlowReport) int {
		return int(f.Flow.Hash() % uint32(spines))
	}) {
		rr.Spines = append(rr.Spines, SpineSplit{
			Spine:      spine,
			Flows:      gt.Flows,
			RetxSegs:   gt.RetxSegs,
			RetxBytes:  gt.RetxBytes,
			DupAcks:    gt.DupAcks,
			RTTSamples: gt.RTTN,
			RTTMeanUs:  gt.RTTMeanUs(),
		})
	}
	return rr
}

// FlowRecords flattens every analyzer's per-flow snapshots into labeled
// records (Measure.Flowmon taps in spec order, then rack fleets in rack
// then host attachment order) — the stream the job service emits.
func (b *Built) FlowRecords() []FlowRecord {
	var out []FlowRecord
	appendTap := func(t tapRef) {
		rep := t.mon.Report()
		for i := range rep.Flows {
			out = append(out, flowRecord(t.machine, &rep.Flows[i]))
		}
	}
	for _, t := range b.taps {
		appendTap(t)
	}
	for _, taps := range b.fleetTaps {
		for _, t := range taps {
			appendTap(t)
		}
	}
	return out
}

func flowRecord(machine string, f *flowmon.FlowReport) FlowRecord {
	return FlowRecord{
		Machine:     machine,
		Src:         fmt.Sprintf("%v:%d", f.Flow.SrcIP, f.Flow.SrcPort),
		Dst:         fmt.Sprintf("%v:%d", f.Flow.DstIP, f.Flow.DstPort),
		Pkts:        f.Pkts,
		AckedBytes:  f.AckedBytes,
		RetxSegs:    f.RetxSegs,
		RetxBytes:   f.RetxBytes,
		DupAcks:     f.DupAcks,
		OOOAccepts:  f.OOOAccepts,
		OOODrops:    f.OOODrops,
		RTTSamples:  f.RTTN,
		RTTMeanUs:   f.RTTMeanUs(),
		GoodputGbps: f.GoodputBps() / 1e9,
	}
}

// gbps and usOf mirror the experiment runners' formulas exactly — the
// equivalence tests compare float64 values for equality.
func gbps(bytes uint64, d sim.Time) float64 {
	return float64(bytes) * 8 / d.Seconds() / 1e9
}

func usOf(ps int64) float64 { return float64(ps) / 1e6 }

package scenario

import "encoding/json"

// Result is the canonical readout of one executed scenario. Every field
// is computed from simulation state with the exact arithmetic the
// hand-written experiment runners use, and the struct marshals with a
// fixed field order, so the same spec produces byte-identical payloads
// on every rerun, at any engine-shard count, and at any service
// worker-pool width. The payload carries no timestamps, host names, or
// other run-environment state by design.
type Result struct {
	Name       string `json:"name"`
	Seed       uint64 `json:"seed"`
	Cores      int    `json:"cores"`
	DurationUs int64  `json:"duration_us"`
	WarmupUs   int64  `json:"warmup_us"`

	Machines  []MachineResult  `json:"machines,omitempty"`
	Switch    *SwitchResult    `json:"switch,omitempty"`
	Fabric    *FabricResult    `json:"fabric,omitempty"`
	Workloads []WorkloadResult `json:"workloads"`
	Flowmon   []FlowmonResult  `json:"flowmon,omitempty"`
	Racks     []RackResult     `json:"racks,omitempty"`
	Flows     []FlowRecord     `json:"flows,omitempty"`
}

// Canonical returns the result's canonical byte encoding — the payload
// the determinism-over-HTTP guarantee is stated over.
func (r *Result) Canonical() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Result holds only plain scalars and slices; this cannot fail.
		panic("scenario: canonical encode: " + err.Error())
	}
	return append(b, '\n')
}

// MachineResult is one machine's stack counters over the measured
// window (post-warmup deltas).
type MachineResult struct {
	Name        string `json:"name"`
	Stack       string `json:"stack"`
	RxSegs      uint64 `json:"rx_segs"`
	TxSegs      uint64 `json:"tx_segs"`
	RetxSegs    uint64 `json:"retx_segs"`
	RetxBytes   uint64 `json:"retx_bytes"`
	DupAcks     uint64 `json:"dup_acks"`
	OOOAccepted uint64 `json:"ooo_accepted"`
	OOODropped  uint64 `json:"ooo_dropped"`
}

// SwitchResult is the single-switch testbed's counters over the
// measured window.
type SwitchResult struct {
	Forwarded   uint64 `json:"forwarded"`
	LossDrops   uint64 `json:"loss_drops"`
	QueueDrops  uint64 `json:"queue_drops"`
	WREDDrops   uint64 `json:"wred_drops"`
	ECNMarks    uint64 `json:"ecn_marks"`
	DupInjected uint64 `json:"dup_injected"`
	Reordered   uint64 `json:"reordered"`
}

// FabricResult is the leaf–spine fabric's counters over the measured
// window. Peaks cover the post-warmup window (queue stats reset at the
// warmup boundary); SpineTxBytes is the per-spine delta, the ECMP
// balance readout.
type FabricResult struct {
	LeafECNMarks         uint64   `json:"leaf_ecn_marks"`
	SpineECNMarks        uint64   `json:"spine_ecn_marks"`
	Drops                uint64   `json:"drops"`
	PeakLeafQueueBytes   int      `json:"peak_leaf_queue_bytes"`
	PeakUplinkQueueBytes int      `json:"peak_uplink_queue_bytes"`
	SpineTxBytes         []uint64 `json:"spine_tx_bytes"`
}

// WorkloadResult is one workload's measured-window readout; which
// fields are meaningful depends on Kind.
type WorkloadResult struct {
	Kind        string  `json:"kind"`
	GoodputGbps float64 `json:"goodput_gbps,omitempty"`
	Bytes       uint64  `json:"bytes,omitempty"`
	Ops         uint64  `json:"ops,omitempty"`
	Started     uint64  `json:"started,omitempty"`
	Completed   uint64  `json:"completed,omitempty"`
	Rounds      uint64  `json:"rounds,omitempty"`
	P50Us       float64 `json:"p50_us,omitempty"`
	P99Us       float64 `json:"p99_us,omitempty"`
}

// FlowmonResult is one attach point's merged totals (whole run — the
// passive analyzer observes from attach, not from the warmup boundary).
type FlowmonResult struct {
	Machine      string `json:"machine"`
	Flows        uint64 `json:"flows"`
	Pkts         uint64 `json:"pkts"`
	AckedBytes   uint64 `json:"acked_bytes"`
	RetxSegs     uint64 `json:"retx_segs"`
	RetxBytes    uint64 `json:"retx_bytes"`
	RetxGBNBytes uint64 `json:"retx_gbn_bytes"`
	RetxSelBytes uint64 `json:"retx_sel_bytes"`
	DupAcks      uint64 `json:"dup_acks"`
	OOOAccepts   uint64 `json:"ooo_accepts"`
	OOODrops     uint64 `json:"ooo_drops"`
	CEPkts       uint64 `json:"ce_pkts"`
	RTTSamples   uint64 `json:"rtt_samples"`
	RTTP50Us     int    `json:"rtt_p50_us"`
	RTTP99Us     int    `json:"rtt_p99_us"`
	RTTMaxUs     int    `json:"rtt_max_us"`
}

// RackResult is one rack fleet's merged totals with per-spine splits:
// every host NIC in the rack feeds one analyzer, and flows group by the
// same CRC-32 hash the fabric's ECMP stage uses to pick uplinks.
type RackResult struct {
	Rack         int          `json:"rack"`
	Flows        uint64       `json:"flows"`
	Pkts         uint64       `json:"pkts"`
	AckedBytes   uint64       `json:"acked_bytes"`
	RetxBytes    uint64       `json:"retx_bytes"`
	RetxSelBytes uint64       `json:"retx_sel_bytes"`
	DupAcks      uint64       `json:"dup_acks"`
	RTTSamples   uint64       `json:"rtt_samples"`
	RTTP50Us     int          `json:"rtt_p50_us"`
	RTTP99Us     int          `json:"rtt_p99_us"`
	Spines       []SpineSplit `json:"spines"`
}

// SpineSplit is the slice of a rack's flows that hashed onto one spine.
type SpineSplit struct {
	Spine      int     `json:"spine"`
	Flows      uint64  `json:"flows"`
	RetxSegs   uint64  `json:"retx_segs"`
	RetxBytes  uint64  `json:"retx_bytes"`
	DupAcks    uint64  `json:"dup_acks"`
	RTTSamples uint64  `json:"rtt_samples"`
	RTTMeanUs  float64 `json:"rtt_mean_us"`
}

// FlowRecord is one directed flow as observed at one analyzer — the
// per-flow records the job service streams over NDJSON.
type FlowRecord struct {
	Machine     string  `json:"machine"`
	Src         string  `json:"src"`
	Dst         string  `json:"dst"`
	Pkts        uint64  `json:"pkts"`
	AckedBytes  uint64  `json:"acked_bytes"`
	RetxSegs    uint64  `json:"retx_segs"`
	RetxBytes   uint64  `json:"retx_bytes"`
	DupAcks     uint64  `json:"dup_acks"`
	OOOAccepts  uint64  `json:"ooo_accepts"`
	OOODrops    uint64  `json:"ooo_drops"`
	RTTSamples  uint64  `json:"rtt_samples"`
	RTTMeanUs   float64 `json:"rtt_mean_us"`
	GoodputGbps float64 `json:"goodput_gbps"`
}

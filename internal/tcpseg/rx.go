package tcpseg

import "flextoe/internal/packet"

// RXResult describes the side effects of processing one received segment.
// The protocol stage computes it; the post-processing, DMA and context-
// queue stages carry it out.
type RXResult struct {
	// Drop: the segment carries nothing useful (stale duplicate outside
	// every window). An ACK may still be requested to resynchronize the
	// sender.
	Drop bool

	// Payload placement (one-shot DMA directly into the host RX buffer).
	WriteLen   uint32 // bytes of payload to place (after trimming)
	WriteOff   uint32 // offset into the segment payload of the first byte
	WritePos   uint32 // RX buffer offset for the first byte
	NewInOrder uint32 // bytes newly in-order (notify application)

	// Sender-side bookkeeping from the ACK field.
	AckedBytes   uint32 // TX-buffer bytes newly acknowledged (free them)
	FinAcked     bool   // our FIN is now acknowledged
	WindowUpdate bool   // remote window changed

	// Acknowledgment generation.
	SendAck bool
	AckSeq  uint32 // sequence number for the ACK segment
	AckAck  uint32 // acknowledgment number for the ACK segment
	AckWin  uint16 // scaled window to advertise
	EchoTS  uint32 // timestamp echo for the ACK
	AckECE  bool   // set ECE: segment arrived CE-marked

	// Loss handling.
	DupAck         bool // this was a duplicate ACK
	FastRetransmit bool // third duplicate ACK: go-back-N reset performed
	WasOOO         bool // payload accepted out of order
	OOODrop        bool // payload outside every tracked interval: dropped

	// Reassembly accounting (interval-set extension).
	OOOMerged uint8 // intervals coalesced by this segment
	OOOIvs    uint8 // interval-set occupancy after processing
	// OOODropAvoided: accepted, but a single-interval tracker would
	// have dropped it. The counterfactual N=1 tracker is approximated
	// as holding the head (lowest) interval; a real first-arrival
	// tracker can differ once several intervals coexist, so treat the
	// derived counter as an estimate, not an exact replay.
	OOODropAvoided bool

	// Lifecycle.
	FinRx bool // peer FIN consumed (in order)
}

// ProcessRX performs the protocol stage's receive work ("Win" in Fig. 6):
// advance the window, locate the payload in the host receive buffer
// (trimming to fit), merge or reject out-of-order data against the
// tracked interval set (capacity 1 by default, the paper's TAS-style
// design; up to MaxOOOIntervals), account acknowledged bytes, detect
// duplicate ACKs and trigger fast retransmission, and decide the ACK to
// send.
//
// tsNow is the local timestamp clock (microseconds) used for RTT
// estimation via the echoed timestamp option.
func ProcessRX(st *ProtoState, post *PostState, seg *SegInfo, tsNow uint32) RXResult {
	var res RXResult

	// --- Sender-side: process the segment's ACK field. -----------------
	una := st.UnackedBase()
	ackNo := seg.Ack
	if seg.Flags&packet.FlagACK != 0 {
		switch {
		case SeqGT(ackNo, st.Seq):
			// The ack is beyond SND.NXT. This is legitimate in two ways.
			// After a go-back-N reset rewound Seq, copies transmitted
			// before the reset are still in flight: the peer may
			// acknowledge anything up to SND.MAX (the reset returned
			// those bytes to TxAvail, so they sit unchanged in the TX
			// buffer). Ignoring such an ack — as a literal "acks data we
			// never sent" check does — wedges the connection: the sender
			// retransmits data the peer already has, and the peer's
			// cumulative ack stays above Seq forever. Accept the ack and
			// skip retransmitting the covered bytes. The other way is
			// our FIN's sequence slot, one past SND.MAX. Anything beyond
			// SND.MAX was never on the wire — bogus, ignored (RFC 9293).
			horizon := st.TxMax
			finSlot := st.Flags&flagFinEverTx != 0 &&
				st.Flags&flagFinAcked == 0
			dataAck := ackNo
			finAcked := false
			if finSlot && ackNo == horizon+1 {
				dataAck = horizon
				finAcked = true
			}
			if SeqLEQ(dataAck, horizon) {
				skip := uint32(SeqDiff(dataAck, st.Seq))
				acked := st.TxSent + skip
				st.Seq = dataAck
				st.TxPos = wrap(st.TxPos+skip, post.TxSize)
				st.TxAvail -= skip
				st.TxSent = 0
				st.DupAcks = 0
				res.AckedBytes = acked
				post.CntACKB += acked
				if seg.ECNCE || seg.Flags&packet.FlagECE != 0 {
					post.CntECNB += acked
				}
				if finAcked {
					st.Flags &^= flagFinPending
					st.Flags |= flagFinSent | flagFinAcked
					res.FinAcked = true
				}
			}
		case SeqGT(ackNo, una):
			acked := uint32(SeqDiff(ackNo, una))
			if acked > st.TxSent {
				acked = st.TxSent
			}
			st.TxSent -= acked
			res.AckedBytes = acked
			post.CntACKB += acked
			if seg.ECNCE || seg.Flags&packet.FlagECE != 0 {
				post.CntECNB += acked
			}
			st.DupAcks = 0
		default: // ackNo == una (or older)
			// Duplicate ACK detection: same ack number, no payload, no
			// window change, and we actually have data outstanding.
			if ackNo == una && seg.PayloadLen == 0 && st.TxSent > 0 &&
				uint32(seg.Window) == uint32(st.RemoteWin) && seg.Flags&packet.FlagFIN == 0 {
				res.DupAck = true
				if st.DupAcks < 15 {
					st.DupAcks++
				}
				if st.DupAcks == 3 {
					gobackN(st, post)
					res.FastRetransmit = true
					post.CntFRetx++
				}
			}
		}
		if seg.Window != st.RemoteWin {
			st.RemoteWin = seg.Window
			res.WindowUpdate = true
		}
	}

	// RTT estimation from the echoed timestamp.
	if seg.HasTS && seg.TSEcr != 0 {
		if rtt := tsNow - seg.TSEcr; int32(rtt) >= 0 {
			if post.RTTEst == 0 {
				post.RTTEst = rtt
			} else {
				// EWMA with alpha = 1/8, division-free. The difference is
				// signed: shorter samples must pull the estimate down.
				diff := int32(rtt-post.RTTEst) >> 3
				post.RTTEst = uint32(int32(post.RTTEst) + diff)
			}
		}
	}
	if seg.HasTS {
		st.NextTS = seg.TSVal
	}
	if seg.ECNCE {
		st.Flags |= flagECNSeen
	}

	// --- Receiver-side: place the payload. ------------------------------
	payloadEnd := seg.Seq + seg.PayloadLen
	hasPayload := seg.PayloadLen > 0
	if hasPayload {
		windowEnd := st.Ack + st.RxAvail
		start, end := seg.Seq, payloadEnd
		// Trim data before RCV.NXT (retransmitted overlap).
		if SeqLT(start, st.Ack) {
			start = st.Ack
		}
		// Trim data beyond the receive window (§3.1.3: trim to fit).
		if SeqGT(end, windowEnd) {
			end = windowEnd
		}
		if SeqGEQ(start, end) {
			// Nothing accepted: stale duplicate or fully out of window.
			res.Drop = true
			res.SendAck = true // resynchronize the sender
		} else {
			switch {
			case start == st.Ack:
				// In order (possibly after trimming an overlapping head).
				n := uint32(SeqDiff(end, start))
				res.WriteOff = uint32(SeqDiff(start, seg.Seq))
				res.WriteLen = n
				res.WritePos = st.RxPos
				st.Ack += n
				advance := n
				// Merge every interval the advanced ack now reaches.
				ivs, newAck, merged := MergeAdvance(st.OOOIntervals(), st.Ack)
				if merged > 0 {
					advance += uint32(SeqDiff(newAck, st.Ack))
					st.Ack = newAck
					st.setOOO(ivs)
					res.OOOMerged = uint8(merged)
				}
				st.RxPos = wrap(st.RxPos+advance, post.RxSize)
				st.RxAvail -= advance
				res.NewInOrder = advance
			default:
				// Out of order: insert into the interval set (§3.1.3;
				// capacity 1 reproduces the TAS-style single interval).
				n := uint32(SeqDiff(end, start))
				hadIvs := st.OOOCnt > 0
				ivs, ir := InsertSeqInterval(st.OOOIntervals(), SeqInterval{start, end}, st.oooCap())
				st.setOOO(ivs)
				if ir.Accepted {
					res.WasOOO = true
					res.OOOMerged = uint8(ir.Merged)
					// A single-interval tracker accepts only data touching
					// its one interval (approximated here as the head;
					// see the RXResult field comment).
					res.OOODropAvoided = hadIvs && !ir.AtHead
					res.WriteOff = uint32(SeqDiff(start, seg.Seq))
					res.WriteLen = n
					res.WritePos = wrap(st.RxPos+uint32(SeqDiff(start, st.Ack)), post.RxSize)
				} else {
					// Disjoint and the set is full: drop, ACK with the
					// expected sequence number to trigger retransmission.
					res.OOODrop = true
					res.Drop = true
				}
			}
			res.OOOIvs = st.OOOCnt
			res.SendAck = true
		}
	}

	// FIN processing: consumed only when all preceding data is in order.
	if seg.Flags&packet.FlagFIN != 0 && st.Flags&flagFinRx == 0 {
		finSeq := payloadEnd // FIN occupies the octet after the payload
		if st.Ack == finSeq && st.OOOCnt == 0 {
			st.Flags |= flagFinRx
			st.Ack++
			res.FinRx = true
			res.SendAck = true
		} else if SeqLT(st.Ack, finSeq) {
			res.SendAck = true // can't consume yet; ack what we have
		}
	}

	if res.SendAck {
		res.AckSeq = st.Seq
		if st.Flags&flagFinSent != 0 {
			res.AckSeq = st.Seq + 1
		}
		res.AckAck = st.Ack
		res.AckWin = st.LocalWindow()
		res.EchoTS = st.NextTS
		res.AckECE = seg.ECNCE
		st.Flags &^= flagECNSeen
	}
	return res
}

// gobackN resets transmission state to the last acknowledged position
// (§3.1.1 "Reset"): unacked bytes return to the available pool and the
// buffer head rewinds, wrapped to the TX buffer so TxPos stays a valid
// buffer offset (uint32 two's-complement subtraction masked by a
// power-of-two size reduces correctly modulo the buffer).
func gobackN(st *ProtoState, post *PostState) {
	st.Seq -= st.TxSent
	st.TxPos = wrap(st.TxPos-st.TxSent, post.TxSize)
	st.TxAvail += st.TxSent
	st.TxSent = 0
	if st.Flags&flagFinSent != 0 && st.Flags&flagFinAcked == 0 {
		// FIN must be retransmitted too.
		st.Flags &^= flagFinSent
		st.Flags |= flagFinPending
	}
}

// wrap reduces pos modulo a power-of-two buffer size.
func wrap(pos, size uint32) uint32 {
	if size == 0 {
		return pos
	}
	return pos & (size - 1)
}

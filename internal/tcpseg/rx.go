package tcpseg

import "flextoe/internal/packet"

// RXResult describes the side effects of processing one received segment.
// The protocol stage computes it; the post-processing, DMA and context-
// queue stages carry it out.
type RXResult struct {
	// Drop: the segment carries nothing useful (stale duplicate outside
	// every window). An ACK may still be requested to resynchronize the
	// sender.
	Drop bool

	// Payload placement (one-shot DMA directly into the host RX buffer).
	WriteLen   uint32 // bytes of payload to place (after trimming)
	WriteOff   uint32 // offset into the segment payload of the first byte
	WritePos   uint32 // RX buffer offset for the first byte
	NewInOrder uint32 // bytes newly in-order (notify application)

	// Sender-side bookkeeping from the ACK field.
	AckedBytes   uint32 // TX-buffer bytes newly acknowledged (free them)
	FinAcked     bool   // our FIN is now acknowledged
	WindowUpdate bool   // remote window changed

	// Acknowledgment generation.
	SendAck bool
	AckSeq  uint32 // sequence number for the ACK segment
	AckAck  uint32 // acknowledgment number for the ACK segment
	AckWin  uint16 // scaled window to advertise
	EchoTS  uint32 // timestamp echo for the ACK
	AckECE  bool   // set ECE: segment arrived CE-marked

	// Loss handling.
	DupAck         bool // this was a duplicate ACK
	FastRetransmit bool // third duplicate ACK: go-back-N reset performed
	WasOOO         bool // payload accepted out of order
	OOODrop        bool // payload outside the tracked interval: dropped

	// Lifecycle.
	FinRx bool // peer FIN consumed (in order)
}

// ProcessRX performs the protocol stage's receive work ("Win" in Fig. 6):
// advance the window, locate the payload in the host receive buffer
// (trimming to fit), merge or reject out-of-order data against the single
// tracked interval, account acknowledged bytes, detect duplicate ACKs and
// trigger fast retransmission, and decide the ACK to send.
//
// tsNow is the local timestamp clock (microseconds) used for RTT
// estimation via the echoed timestamp option.
func ProcessRX(st *ProtoState, post *PostState, seg *SegInfo, tsNow uint32) RXResult {
	var res RXResult

	// --- Sender-side: process the segment's ACK field. -----------------
	una := st.UnackedBase()
	ackNo := seg.Ack
	if seg.Flags&packet.FlagACK != 0 {
		switch {
		case SeqGT(ackNo, st.Seq):
			// Acks data we never sent — possible only for our FIN's
			// sequence slot.
			if st.Flags&flagFinSent != 0 && ackNo == st.Seq+1 {
				acked := st.TxSent
				st.TxSent = 0
				st.Flags |= flagFinAcked
				res.AckedBytes = acked
				res.FinAcked = true
				post.CntACKB += acked
				st.DupAcks = 0
			}
		case SeqGT(ackNo, una):
			acked := uint32(SeqDiff(ackNo, una))
			if acked > st.TxSent {
				acked = st.TxSent
			}
			st.TxSent -= acked
			res.AckedBytes = acked
			post.CntACKB += acked
			if seg.ECNCE || seg.Flags&packet.FlagECE != 0 {
				post.CntECNB += acked
			}
			st.DupAcks = 0
		default: // ackNo == una (or older)
			// Duplicate ACK detection: same ack number, no payload, no
			// window change, and we actually have data outstanding.
			if ackNo == una && seg.PayloadLen == 0 && st.TxSent > 0 &&
				uint32(seg.Window) == uint32(st.RemoteWin) && seg.Flags&packet.FlagFIN == 0 {
				res.DupAck = true
				if st.DupAcks < 15 {
					st.DupAcks++
				}
				if st.DupAcks == 3 {
					gobackN(st)
					res.FastRetransmit = true
					post.CntFRetx++
				}
			}
		}
		if seg.Window != st.RemoteWin {
			st.RemoteWin = seg.Window
			res.WindowUpdate = true
		}
	}

	// RTT estimation from the echoed timestamp.
	if seg.HasTS && seg.TSEcr != 0 {
		if rtt := tsNow - seg.TSEcr; int32(rtt) >= 0 {
			if post.RTTEst == 0 {
				post.RTTEst = rtt
			} else {
				// EWMA with alpha = 1/8, division-free. The difference is
				// signed: shorter samples must pull the estimate down.
				diff := int32(rtt-post.RTTEst) >> 3
				post.RTTEst = uint32(int32(post.RTTEst) + diff)
			}
		}
	}
	if seg.HasTS {
		st.NextTS = seg.TSVal
	}
	if seg.ECNCE {
		st.Flags |= flagECNSeen
	}

	// --- Receiver-side: place the payload. ------------------------------
	payloadEnd := seg.Seq + seg.PayloadLen
	hasPayload := seg.PayloadLen > 0
	if hasPayload {
		windowEnd := st.Ack + st.RxAvail
		start, end := seg.Seq, payloadEnd
		// Trim data before RCV.NXT (retransmitted overlap).
		if SeqLT(start, st.Ack) {
			start = st.Ack
		}
		// Trim data beyond the receive window (§3.1.3: trim to fit).
		if SeqGT(end, windowEnd) {
			end = windowEnd
		}
		if SeqGEQ(start, end) {
			// Nothing accepted: stale duplicate or fully out of window.
			res.Drop = true
			res.SendAck = true // resynchronize the sender
		} else {
			switch {
			case start == st.Ack:
				// In order (possibly after trimming an overlapping head).
				n := uint32(SeqDiff(end, start))
				res.WriteOff = uint32(SeqDiff(start, seg.Seq))
				res.WriteLen = n
				res.WritePos = st.RxPos
				advance := n
				st.Ack += n
				// Merge the out-of-order interval if now contiguous.
				if st.OOOLen > 0 && SeqLEQ(st.OOOStart, st.Ack) {
					oooEnd := st.OOOStart + st.OOOLen
					if SeqGT(oooEnd, st.Ack) {
						extra := uint32(SeqDiff(oooEnd, st.Ack))
						st.Ack = oooEnd
						advance += extra
					}
					st.OOOLen = 0
				}
				st.RxPos = wrap(st.RxPos+advance, post.RxSize)
				st.RxAvail -= advance
				res.NewInOrder = advance
			default:
				// Out of order: accept only within/adjacent to the single
				// tracked interval (TAS-style, §3.1.3).
				n := uint32(SeqDiff(end, start))
				if st.OOOLen == 0 {
					st.OOOStart, st.OOOLen = start, n
					res.WasOOO = true
				} else if SeqLEQ(start, st.OOOStart+st.OOOLen) && SeqLEQ(st.OOOStart, end) {
					// Overlaps or abuts the interval: extend to the union.
					newStart := SeqMin(st.OOOStart, start)
					newEnd := SeqMax(st.OOOStart+st.OOOLen, end)
					st.OOOStart = newStart
					st.OOOLen = uint32(SeqDiff(newEnd, newStart))
					res.WasOOO = true
				} else {
					// Disjoint from the interval: drop, ACK with the
					// expected sequence number to trigger retransmission.
					res.OOODrop = true
					res.Drop = true
				}
				if res.WasOOO {
					res.WriteOff = uint32(SeqDiff(start, seg.Seq))
					res.WriteLen = n
					res.WritePos = wrap(st.RxPos+uint32(SeqDiff(start, st.Ack)), post.RxSize)
				}
			}
			res.SendAck = true
		}
	}

	// FIN processing: consumed only when all preceding data is in order.
	if seg.Flags&packet.FlagFIN != 0 && st.Flags&flagFinRx == 0 {
		finSeq := payloadEnd // FIN occupies the octet after the payload
		if st.Ack == finSeq && st.OOOLen == 0 {
			st.Flags |= flagFinRx
			st.Ack++
			res.FinRx = true
			res.SendAck = true
		} else if SeqLT(st.Ack, finSeq) {
			res.SendAck = true // can't consume yet; ack what we have
		}
	}

	if res.SendAck {
		res.AckSeq = st.Seq
		if st.Flags&flagFinSent != 0 {
			res.AckSeq = st.Seq + 1
		}
		res.AckAck = st.Ack
		res.AckWin = st.LocalWindow()
		res.EchoTS = st.NextTS
		res.AckECE = seg.ECNCE
		st.Flags &^= flagECNSeen
	}
	return res
}

// gobackN resets transmission state to the last acknowledged position
// (§3.1.1 "Reset"): unacked bytes return to the available pool and the
// buffer head rewinds.
func gobackN(st *ProtoState) {
	st.Seq -= st.TxSent
	st.TxPos = st.TxPos - st.TxSent // callers wrap via buffer size mask on use
	st.TxAvail += st.TxSent
	st.TxSent = 0
	if st.Flags&flagFinSent != 0 && st.Flags&flagFinAcked == 0 {
		// FIN must be retransmitted too.
		st.Flags &^= flagFinSent
		st.Flags |= flagFinPending
	}
}

// wrap reduces pos modulo a power-of-two buffer size.
func wrap(pos, size uint32) uint32 {
	if size == 0 {
		return pos
	}
	return pos & (size - 1)
}

package tcpseg

import "flextoe/internal/packet"

// RXResult describes the side effects of processing one received segment.
// The protocol stage computes it; the post-processing, DMA and context-
// queue stages carry it out.
type RXResult struct {
	// Drop: the segment carries nothing useful (stale duplicate outside
	// every window). An ACK may still be requested to resynchronize the
	// sender.
	Drop bool

	// Payload placement (one-shot DMA directly into the host RX buffer).
	WriteLen   uint32 // bytes of payload to place (after trimming)
	WriteOff   uint32 // offset into the segment payload of the first byte
	WritePos   uint32 // RX buffer offset for the first byte
	NewInOrder uint32 // bytes newly in-order (notify application)

	// Sender-side bookkeeping from the ACK field.
	AckedBytes   uint32 // TX-buffer bytes newly acknowledged (free them)
	FinAcked     bool   // our FIN is now acknowledged
	WindowUpdate bool   // remote window changed

	// Acknowledgment generation.
	SendAck bool
	AckSeq  uint32 // sequence number for the ACK segment
	AckAck  uint32 // acknowledgment number for the ACK segment
	AckWin  uint16 // scaled window to advertise
	EchoTS  uint32 // timestamp echo for the ACK
	AckECE  bool   // set ECE: segment arrived CE-marked

	// Loss handling.
	DupAck         bool // this was a duplicate ACK
	FastRetransmit bool // third duplicate ACK: recovery triggered
	// SACKRetransmit: the fast retransmit repaired only the scoreboard
	// holes via the selective-retransmit queue, instead of a go-back-N
	// reset.
	SACKRetransmit bool
	// SACKReneged: this segment's SACK blocks overflowed the bounded
	// scoreboard, newly marking it untrustworthy — recovery falls back to
	// go-back-N until the episode drains (RFC 2018 conservatism).
	SACKReneged bool
	WasOOO      bool // payload accepted out of order
	OOODrop     bool // payload outside every tracked interval: dropped

	// SACK generation (receiver side): the out-of-order interval set to
	// advertise with the ACK, most recently touched interval first
	// (RFC 2018), so wire-level truncation drops the oldest news.
	AckSACK    [MaxOOOIntervals]SeqInterval
	AckSACKCnt uint8

	// Reassembly accounting (interval-set extension).
	OOOMerged uint8 // intervals coalesced by this segment
	OOOIvs    uint8 // interval-set occupancy after processing
	// OOODropAvoided: accepted, but a single-interval tracker would
	// have dropped it. The counterfactual N=1 tracker is approximated
	// as holding the head (lowest) interval; a real first-arrival
	// tracker can differ once several intervals coexist, so treat the
	// derived counter as an estimate, not an exact replay.
	OOODropAvoided bool

	// Lifecycle.
	FinRx bool // peer FIN consumed (in order)
}

// ProcessRX performs the protocol stage's receive work ("Win" in Fig. 6):
// advance the window, locate the payload in the host receive buffer
// (trimming to fit), merge or reject out-of-order data against the
// tracked interval set (capacity 1 by default, the paper's TAS-style
// design; up to MaxOOOIntervals), account acknowledged bytes, detect
// duplicate ACKs and trigger fast retransmission, and decide the ACK to
// send.
//
// tsNow is the local timestamp clock (microseconds) used for RTT
// estimation via the echoed timestamp option.
func ProcessRX(st *ProtoState, post *PostState, seg *SegInfo, tsNow uint32) RXResult {
	var res RXResult

	// --- Sender-side: process the segment's ACK field. -----------------
	una := st.UnackedBase()
	ackNo := seg.Ack
	if seg.Flags&packet.FlagACK != 0 {
		preRenege := st.Flags&flagSACKRenege != 0
		ingestSACK(st, seg)
		res.SACKReneged = !preRenege && st.Flags&flagSACKRenege != 0
		switch {
		case SeqGT(ackNo, st.Seq):
			// The ack is beyond SND.NXT. This is legitimate in two ways.
			// After a go-back-N reset rewound Seq, copies transmitted
			// before the reset are still in flight: the peer may
			// acknowledge anything up to SND.MAX (the reset returned
			// those bytes to TxAvail, so they sit unchanged in the TX
			// buffer). Ignoring such an ack — as a literal "acks data we
			// never sent" check does — wedges the connection: the sender
			// retransmits data the peer already has, and the peer's
			// cumulative ack stays above Seq forever. Accept the ack and
			// skip retransmitting the covered bytes. The other way is
			// our FIN's sequence slot, one past SND.MAX. Anything beyond
			// SND.MAX was never on the wire — bogus, ignored (RFC 9293).
			horizon := st.TxMax
			finSlot := st.Flags&flagFinEverTx != 0 &&
				st.Flags&flagFinAcked == 0
			dataAck := ackNo
			finAcked := false
			if finSlot && ackNo == horizon+1 {
				dataAck = horizon
				finAcked = true
			}
			if SeqLEQ(dataAck, horizon) {
				skip := uint32(SeqDiff(dataAck, st.Seq))
				acked := st.TxSent + skip
				st.Seq = dataAck
				st.TxPos = wrap(st.TxPos+skip, post.TxSize)
				st.TxAvail -= skip
				st.TxSent = 0
				st.DupAcks = 0
				trimSACKScore(st, dataAck)
				trimRetxQueue(st, dataAck)
				res.AckedBytes = acked
				post.CntACKB += acked
				if seg.ECNCE || seg.Flags&packet.FlagECE != 0 {
					post.CntECNB += acked
				}
				if finAcked {
					st.Flags &^= flagFinPending
					st.Flags |= flagFinSent | flagFinAcked
					res.FinAcked = true
				}
			}
		case SeqGT(ackNo, una):
			acked := uint32(SeqDiff(ackNo, una))
			if acked > st.TxSent {
				acked = st.TxSent
			}
			st.TxSent -= acked
			trimSACKScore(st, st.UnackedBase())
			trimRetxQueue(st, st.UnackedBase())
			// Partial ack during SACK recovery (RFC 6675): the gap at the
			// new UNA is still missing at the peer — keep repairing
			// without waiting for three fresh duplicate ACKs.
			if st.Flags&flagSACKRecovery != 0 && st.Flags&flagSACKRenege == 0 {
				fillSACKRetx(st)
			}
			res.AckedBytes = acked
			post.CntACKB += acked
			if seg.ECNCE || seg.Flags&packet.FlagECE != 0 {
				post.CntECNB += acked
			}
			st.DupAcks = 0
		default: // ackNo == una (or older)
			// Duplicate ACK detection: same ack number, no payload, no
			// window change, and we actually have data outstanding.
			if ackNo == una && seg.PayloadLen == 0 && st.TxSent > 0 &&
				uint32(seg.Window) == uint32(st.RemoteWin) && seg.Flags&packet.FlagFIN == 0 {
				res.DupAck = true
				if st.DupAcks < 15 {
					st.DupAcks++
				}
				if st.DupAcks == 3 {
					// Selective retransmission (RFC 2018/6675) when the
					// scoreboard holds trustworthy blocks; go-back-N reset
					// otherwise (SACK not negotiated, no blocks reported,
					// or the bounded scoreboard overflowed and understates
					// what the peer holds). A fresh three-dupack burst
					// restarts the episode from SND.UNA: the hole there is
					// missing again even if it was repaired before (the
					// repair itself was lost), and waiting for the RTO
					// would cost a full go-back-N resend.
					st.Flags &^= flagSACKRecovery
					st.HighRetx = 0
					st.RetxCnt = 0
					if st.Flags&flagSACKRenege == 0 && fillSACKRetx(st) {
						res.SACKRetransmit = true
					} else {
						gobackN(st, post)
					}
					res.FastRetransmit = true
					post.CntFRetx++
				} else if st.DupAcks > 3 && st.Flags&flagSACKRecovery != 0 &&
					st.Flags&flagSACKRenege == 0 {
					// Continued recovery: later duplicate ACKs reveal more
					// blocks; repair newly exposed holes above HighRetx
					// immediately (RFC 6675), never re-queueing repairs
					// already in flight.
					if fillSACKRetx(st) {
						res.SACKRetransmit = true
					}
				}
			}
		}
		if seg.Window != st.RemoteWin {
			st.RemoteWin = seg.Window
			res.WindowUpdate = true
		}
	}

	// RTT estimation from the echoed timestamp.
	if seg.HasTS && seg.TSEcr != 0 {
		if rtt := tsNow - seg.TSEcr; int32(rtt) >= 0 {
			if post.RTTEst == 0 {
				post.RTTEst = rtt
			} else {
				// EWMA with alpha = 1/8, division-free. The difference is
				// signed: shorter samples must pull the estimate down.
				diff := int32(rtt-post.RTTEst) >> 3
				post.RTTEst = uint32(int32(post.RTTEst) + diff)
			}
		}
	}
	if seg.HasTS {
		st.NextTS = seg.TSVal
	}
	if seg.ECNCE {
		st.Flags |= flagECNSeen
	}

	// --- Receiver-side: place the payload. ------------------------------
	payloadEnd := seg.Seq + seg.PayloadLen
	hasPayload := seg.PayloadLen > 0
	if hasPayload {
		windowEnd := st.Ack + st.RxAvail
		start, end := seg.Seq, payloadEnd
		// Trim data before RCV.NXT (retransmitted overlap).
		if SeqLT(start, st.Ack) {
			start = st.Ack
		}
		// Trim data beyond the receive window (§3.1.3: trim to fit).
		if SeqGT(end, windowEnd) {
			end = windowEnd
		}
		if SeqGEQ(start, end) {
			// Nothing accepted: stale duplicate or fully out of window.
			res.Drop = true
			res.SendAck = true // resynchronize the sender
		} else {
			switch {
			case start == st.Ack:
				// In order (possibly after trimming an overlapping head).
				n := uint32(SeqDiff(end, start))
				res.WriteOff = uint32(SeqDiff(start, seg.Seq))
				res.WriteLen = n
				res.WritePos = st.RxPos
				st.Ack += n
				advance := n
				// Merge every interval the advanced ack now reaches.
				ivs, newAck, merged := MergeAdvance(st.OOOIntervals(), st.Ack)
				if merged > 0 {
					advance += uint32(SeqDiff(newAck, st.Ack))
					st.Ack = newAck
					st.setOOO(ivs)
					res.OOOMerged = uint8(merged)
				}
				st.RxPos = wrap(st.RxPos+advance, post.RxSize)
				st.RxAvail -= advance
				res.NewInOrder = advance
				consumeOOOFin(st, &res)
			default:
				// Out of order: insert into the interval set (§3.1.3;
				// capacity 1 reproduces the TAS-style single interval).
				n := uint32(SeqDiff(end, start))
				hadIvs := st.OOOCnt > 0
				ivs, ir := InsertSeqInterval(st.OOOIntervals(), SeqInterval{start, end}, st.oooCap())
				st.setOOO(ivs)
				if ir.Accepted {
					res.WasOOO = true
					res.OOOMerged = uint8(ir.Merged)
					// A single-interval tracker accepts only data touching
					// its one interval (approximated here as the head;
					// see the RXResult field comment).
					res.OOODropAvoided = hadIvs && !ir.AtHead
					res.WriteOff = uint32(SeqDiff(start, seg.Seq))
					res.WriteLen = n
					res.WritePos = wrap(st.RxPos+uint32(SeqDiff(start, st.Ack)), post.RxSize)
				} else {
					// Disjoint and the set is full: drop, ACK with the
					// expected sequence number to trigger retransmission.
					res.OOODrop = true
					res.Drop = true
				}
			}
			res.OOOIvs = st.OOOCnt
			res.SendAck = true
		}
	}

	// FIN processing: consumed only when all preceding data is in order.
	// A FIN beyond a hole is remembered alongside the interval set
	// (FinOOOSeq) and consumed when the in-order advance reaches it, so
	// the peer never has to retransmit a FIN whose data all arrived.
	if seg.Flags&packet.FlagFIN != 0 && st.Flags&flagFinRx == 0 {
		finSeq := payloadEnd // FIN occupies the octet after the payload
		if st.Ack == finSeq && st.OOOCnt == 0 {
			st.Flags &^= flagFinOOO
			st.Flags |= flagFinRx
			st.Ack++
			res.FinRx = true
			res.SendAck = true
		} else if SeqLT(st.Ack, finSeq) {
			// Remember only window-plausible slots: a forged FIN far
			// beyond the window must not park a bogus marker.
			if SeqLEQ(finSeq, st.Ack+st.RxAvail) {
				st.Flags |= flagFinOOO
				st.FinOOOSeq = finSeq
			}
			res.SendAck = true // can't consume yet; ack what we have
		}
	}

	if res.SendAck {
		res.AckSeq = st.Seq
		if st.Flags&flagFinSent != 0 {
			res.AckSeq = st.Seq + 1
		}
		res.AckAck = st.Ack
		res.AckWin = st.LocalWindow()
		res.EchoTS = st.NextTS
		res.AckECE = seg.ECNCE
		st.Flags &^= flagECNSeen
		emitSACK(st, &res, seg.Seq, res.WasOOO)
	}
	return res
}

// consumeOOOFin consumes a remembered out-of-order FIN once the in-order
// stream reaches its sequence slot.
func consumeOOOFin(st *ProtoState, res *RXResult) {
	if st.Flags&flagFinOOO == 0 || st.Flags&flagFinRx != 0 {
		return
	}
	if st.OOOCnt == 0 && st.Ack == st.FinOOOSeq {
		st.Flags &^= flagFinOOO
		st.Flags |= flagFinRx
		st.Ack++
		res.FinRx = true
		res.SendAck = true
	} else if SeqGT(st.Ack, st.FinOOOSeq) {
		// The stream advanced past the remembered slot: the marker was
		// bogus (data beyond a real FIN cannot exist). Drop it.
		st.Flags &^= flagFinOOO
	}
}

// emitSACK copies the out-of-order interval set into the ACK's SACK
// blocks when the connection negotiated SACK-permitted. The interval
// containing the most recently accepted segment leads (RFC 2018), so the
// encoder's option-space truncation keeps the freshest information.
func emitSACK(st *ProtoState, res *RXResult, recent uint32, hasRecent bool) {
	res.AckSACKCnt = copySACK(st, &res.AckSACK, recent, hasRecent)
}

// copySACK writes the interval set into dst, leading with the interval
// containing recent (if any), and returns the block count. Shared by the
// pure-ACK path and the TX data-segment piggyback.
func copySACK(st *ProtoState, dst *[MaxOOOIntervals]SeqInterval, recent uint32, hasRecent bool) uint8 {
	if st.Flags&flagSACKPerm == 0 || st.OOOCnt == 0 {
		return 0
	}
	n := int(st.OOOCnt)
	first := 0
	if hasRecent {
		for i := 0; i < n; i++ {
			if SeqLEQ(st.OOO[i].Start, recent) && SeqLEQ(recent, st.OOO[i].End) {
				first = i
				break
			}
		}
	}
	k := 0
	dst[k] = st.OOO[first]
	k++
	for i := 0; i < n && k < len(dst); i++ {
		if i == first {
			continue
		}
		dst[k] = st.OOO[i]
		k++
	}
	return uint8(k)
}

// ingestSACK merges a segment's SACK blocks into the sender-side
// scoreboard. Blocks are clamped to the transmitted range; a block the
// bounded scoreboard cannot hold marks it untrustworthy (flagSACKRenege)
// until it drains, forcing go-back-N recovery (RFC 2018 conservatism).
func ingestSACK(st *ProtoState, seg *SegInfo) {
	if st.Flags&flagSACKPerm == 0 || seg.SACKCnt == 0 {
		return
	}
	una := st.UnackedBase()
	for i := 0; i < int(seg.SACKCnt); i++ {
		b := seg.SACK[i]
		if SeqLT(b.Start, una) {
			b.Start = una
		}
		if SeqGT(b.End, st.TxMax) {
			b.End = st.TxMax // never trust blocks beyond SND.MAX
		}
		if SeqGEQ(b.Start, b.End) {
			continue
		}
		ivs, ir := InsertSeqInterval(st.SACKIntervals(), b, MaxOOOIntervals)
		st.setSACK(ivs)
		if !ir.Accepted {
			st.Flags |= flagSACKRenege
		}
	}
}

// trimSACKScore discards scoreboard coverage at or below the advanced
// cumulative ack. An empty scoreboard is trustworthy again.
func trimSACKScore(st *ProtoState, una uint32) {
	ivs := st.SACKIntervals()
	for len(ivs) > 0 && SeqLEQ(ivs[0].End, una) {
		ivs = ivs[1:]
	}
	if len(ivs) > 0 && SeqLT(ivs[0].Start, una) {
		ivs[0].Start = una
	}
	st.setSACK(ivs)
	if st.SACKCnt == 0 {
		// Recovery episode over: the peer holds nothing above UNA.
		st.Flags &^= flagSACKRenege | flagSACKRecovery
	}
}

// trimRetxQueue drops queued retransmit ranges the cumulative ack now
// covers.
func trimRetxQueue(st *ProtoState, una uint32) {
	n := 0
	for i := 0; i < int(st.RetxCnt); i++ {
		h := st.RetxQ[i]
		if SeqLEQ(h.End, una) {
			continue
		}
		if SeqLT(h.Start, una) {
			h.Start = una
		}
		st.RetxQ[n] = h
		n++
	}
	st.RetxCnt = uint8(n)
}

// fillSACKRetx extends the selective-retransmit queue with the holes
// between scoreboard intervals in [SND.UNA, high), where high is the
// highest SACKed sequence (everything below it is presumed lost, FACK
// style); data beyond SND.NXT is unsent and recovered by normal
// transmission. During an ongoing recovery episode it resumes from
// HighRetx (RFC 6675's HighRxt), so partial acks and freshly reported
// blocks extend the repair without ever re-queueing a repaired hole.
// Returns false when there is nothing new to repair, in which case the
// first caller (the third duplicate ACK) falls back to go-back-N.
func fillSACKRetx(st *ProtoState) bool {
	if st.SACKCnt == 0 {
		return false
	}
	high := st.SACKScore[st.SACKCnt-1].End
	if SeqGT(high, st.Seq) {
		high = st.Seq
	}
	prev := st.UnackedBase()
	if st.Flags&flagSACKRecovery != 0 && SeqGT(st.HighRetx, prev) {
		prev = st.HighRetx
	}
	added := false
	for i := 0; i < int(st.SACKCnt) && int(st.RetxCnt) < len(st.RetxQ); i++ {
		b := st.SACKScore[i]
		if SeqGEQ(prev, high) {
			break
		}
		if SeqLEQ(b.End, prev) {
			continue
		}
		if SeqGT(b.Start, prev) {
			end := SeqMin(b.Start, high)
			if SeqLT(prev, end) {
				st.RetxQ[st.RetxCnt] = SeqInterval{Start: prev, End: end}
				st.RetxCnt++
				st.HighRetx = end
				added = true
			}
		}
		if SeqGT(b.End, prev) {
			prev = b.End
		}
	}
	if added {
		st.Flags |= flagSACKRecovery
	}
	return added
}

// gobackN resets transmission state to the last acknowledged position
// (§3.1.1 "Reset"): unacked bytes return to the available pool and the
// buffer head rewinds, wrapped to the TX buffer so TxPos stays a valid
// buffer offset (uint32 two's-complement subtraction masked by a
// power-of-two size reduces correctly modulo the buffer).
func gobackN(st *ProtoState, post *PostState) {
	st.Seq -= st.TxSent
	st.TxPos = wrap(st.TxPos-st.TxSent, post.TxSize)
	st.TxAvail += st.TxSent
	st.TxSent = 0
	// The reset retransmits everything from SND.UNA, so the selective
	// queue is moot; the scoreboard is discarded per RFC 2018's reneging
	// rule (a timeout must not trust previously reported blocks).
	st.SACKCnt = 0
	st.RetxCnt = 0
	st.Flags &^= flagSACKRenege | flagSACKRecovery
	if st.Flags&flagFinSent != 0 && st.Flags&flagFinAcked == 0 {
		// FIN must be retransmitted too.
		st.Flags &^= flagFinSent
		st.Flags |= flagFinPending
	}
}

// wrap reduces pos modulo a power-of-two buffer size.
func wrap(pos, size uint32) uint32 {
	if size == 0 {
		return pos
	}
	return pos & (size - 1)
}

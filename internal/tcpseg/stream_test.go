package tcpseg

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"flextoe/internal/packet"
	"flextoe/internal/stats"
)

// streamHarness wires two connection endpoints through an adversarial
// channel (loss, reordering, duplication, stale retransmits) and checks
// that the receiver reconstructs the sender's byte stream exactly. This
// is the core correctness property of the whole offload: §3.1's pipeline
// stages are alternative executions of exactly this logic. The channel
// itself lives in conformance_test.go.
type endpoint struct {
	st    *ProtoState
	post  *PostState
	tx    []byte // bytes the app wants to send (source of truth)
	sent  uint32 // bytes handed to the TX buffer so far
	rxBuf []byte // the receive payload buffer (simulated host memory)
	rxGot []byte // reconstructed in-order stream

	// Recovery accounting (for the GBN-vs-SACK differential runs).
	txBytes   uint64 // payload bytes put on the wire
	retxBytes uint64 // of those, bytes transmitted more than once
	fastRetx  int    // fast-retransmit events
	sackRetx  int    // of those, repaired selectively
}

type wireSeg struct {
	info    SegInfo
	payload []byte
}

func newEndpoint(bufSize uint32) *endpoint {
	st, post := newConn(bufSize)
	return &endpoint{st: st, post: post, rxBuf: make([]byte, bufSize)}
}

// pump moves application data into the TX buffer and emits all sendable
// segments.
func (e *endpoint) pump(mss uint32) []wireSeg {
	// Append up to free TX buffer space.
	free := e.post.TxSize - (e.st.TxAvail + e.st.TxSent)
	if n := uint32(len(e.tx)) - e.sent; n > 0 {
		if n > free {
			n = free
		}
		if n > 0 {
			ProcessHC(e.st, e.post, HCOp{Kind: HCTx, Bytes: n})
			e.sent += n
		}
	}
	var out []wireSeg
	for {
		seg, ok := ProcessTX(e.st, e.post, mss, 0)
		if !ok {
			break
		}
		// Fetch payload from the circular TX buffer position. The
		// stream offset of seg.Seq is just seg.Seq (ISS = 0).
		payload := make([]byte, seg.Len)
		copy(payload, e.tx[seg.Seq:seg.Seq+seg.Len])
		flags := packet.FlagACK
		if seg.FIN {
			flags |= packet.FlagFIN
		}
		e.txBytes += uint64(seg.Len)
		e.retxBytes += uint64(seg.RetxBytes)
		out = append(out, wireSeg{
			info: SegInfo{
				Seq: seg.Seq, Ack: seg.Ack, Flags: flags,
				Window: seg.Win, PayloadLen: seg.Len,
			},
			payload: payload,
		})
	}
	return out
}

// zeroWindowProbe builds the sender-side persist probe (RFC 9293
// §3.8.6.1): one already-acknowledged byte at SND.NXT-1, constructed
// purely from sender state — exactly what ctrl.Plane's persist timer
// emits. ok=false when the connection is not in a probe-worthy state
// (data in flight, or nothing ever sent).
func (e *endpoint) zeroWindowProbe() (wireSeg, bool) {
	if e.st.TxSent != 0 || e.st.TxAvail == 0 || e.st.Seq == 0 {
		return wireSeg{}, false
	}
	return wireSeg{
		info: SegInfo{
			Seq: e.st.Seq - 1, Ack: e.st.Ack, Flags: packet.FlagACK,
			Window: e.st.LocalWindow(), PayloadLen: 1,
		},
		payload: []byte{e.tx[e.st.Seq-1]},
	}, true
}

// sendProbe fires src's persist probe at dst over the lossy channel,
// delivering the elicited window-carrying ACK back to src. Probe and
// response are each subject to loss, like any other segment.
func sendProbe(rng *stats.RNG, src, dst *endpoint, lossP float64) {
	probe, ok := src.zeroWindowProbe()
	if !ok || rng.Bool(lossP) {
		return
	}
	if ack, got := dst.receive(probe); got && !rng.Bool(lossP) {
		src.receive(ack)
	}
}

func ackSeg(r RXResult) wireSeg {
	info := SegInfo{
		Seq: r.AckSeq, Ack: r.AckAck, Flags: packet.FlagACK,
		Window: r.AckWin,
	}
	copy(info.SACK[:], r.AckSACK[:r.AckSACKCnt])
	info.SACKCnt = r.AckSACKCnt
	return wireSeg{info: info}
}

// receive processes one segment, places payload into the RX buffer, and
// returns any ACK to send back. The application consumes newly in-order
// bytes immediately; when that reopens a closed receive window the
// returned ACK is regenerated from the post-consumption state — the
// pipeline's HC path (ProcessHC SendWindowUpdate -> WindowUpdateAck).
// Without it, an OOO merge that fills the whole window advertises zero
// and the peer stalls forever.
func (e *endpoint) receive(ws wireSeg) (wireSeg, bool) {
	res := ProcessRX(e.st, e.post, &ws.info, 0)
	if res.FastRetransmit {
		e.fastRetx++
		if res.SACKRetransmit {
			e.sackRetx++
		}
	}
	if res.WriteLen > 0 {
		// One-shot placement into the circular receive buffer.
		for i := uint32(0); i < res.WriteLen; i++ {
			e.rxBuf[(res.WritePos+i)&(e.post.RxSize-1)] = ws.payload[res.WriteOff+i]
		}
	}
	if res.NewInOrder > 0 {
		// The application consumes newly in-order bytes immediately.
		start := uint32(len(e.rxGot))
		for i := uint32(0); i < res.NewInOrder; i++ {
			e.rxGot = append(e.rxGot, e.rxBuf[(start+i)&(e.post.RxSize-1)])
		}
		hc := ProcessHC(e.st, e.post, HCOp{Kind: HCRxConsumed, Bytes: res.NewInOrder})
		if hc.SendWindowUpdate {
			return ackSeg(WindowUpdateAck(e.st)), true
		}
	}
	if res.SendAck {
		return ackSeg(res), true
	}
	return wireSeg{}, false
}

// runTransfer pushes data from a to b through a channel that drops with
// probability lossP and reorders with probability reorderP, using a simple
// RTO (sender-side go-back-N reset) when progress stalls.
func runTransfer(t *testing.T, data []byte, bufSize uint32, mss uint32, lossP, reorderP float64, seed uint64) {
	t.Helper()
	if err := transferErr(data, bufSize, mss, lossP, reorderP, seed); err != nil {
		t.Fatal(err)
	}
}

// transferErr runs a one-directional transfer over the adversarial
// channel (loss + reordering only; see conformanceTransfer for the full
// channel with duplication and stale-retransmit injection).
func transferErr(data []byte, bufSize uint32, mss uint32, lossP, reorderP float64, seed uint64) error {
	_, err := conformanceTransfer(data, chanCfg{
		BufSize: bufSize, MSS: mss,
		Loss: lossP, Reorder: reorderP,
		Seed: seed,
	})
	return err
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

func TestStreamLossless(t *testing.T) {
	runTransfer(t, pattern(100_000), 16384, 1448, 0, 0, 1)
}

func TestStreamSmallMSS(t *testing.T) {
	runTransfer(t, pattern(10_000), 4096, 64, 0, 0, 2)
}

func TestStreamWithLoss(t *testing.T) {
	for _, loss := range []float64{0.001, 0.01, 0.05, 0.2} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%v", loss), func(t *testing.T) {
			runTransfer(t, pattern(50_000), 16384, 1448, loss, 0, 3)
		})
	}
}

func TestStreamWithReordering(t *testing.T) {
	runTransfer(t, pattern(50_000), 16384, 1448, 0, 0.3, 4)
}

func TestStreamWithLossAndReordering(t *testing.T) {
	runTransfer(t, pattern(50_000), 16384, 1448, 0.02, 0.2, 5)
}

func TestStreamTinyBuffer(t *testing.T) {
	// Buffer much smaller than the transfer: exercises flow control and
	// buffer wraparound continuously.
	runTransfer(t, pattern(20_000), 512, 128, 0, 0, 6)
}

func TestStreamTinyBufferWithLoss(t *testing.T) {
	runTransfer(t, pattern(8_000), 512, 128, 0.05, 0.1, 7)
}

// TestStreamRegressionGoBackNWedge is the counterexample
// TestStreamPropertyRandom found before the rand seed was pinned: a
// transfer exactly one RX buffer long stalls at byte 4096. Two defects
// compounded. An OOO merge that filled the whole 4096-byte window made
// the receiver advertise a zero window that nothing re-advertised after
// the application drained it; and once go-back-N had rewound SND.NXT, the
// in-flight cumulative ACK for 4096 landed above Seq and was discarded as
// "acks data we never sent", wedging SND.UNA below the peer's RCV.NXT
// forever.
func TestStreamRegressionGoBackNWedge(t *testing.T) {
	sizeRaw, lossRaw, reorderRaw, seed := uint16(0x83f6), uint8(0xd), uint8(0xcd), uint64(0xf7b2560f62cf85cf)
	size := int(sizeRaw)%20000 + 1
	loss := float64(lossRaw%64) / 256.0
	reorder := float64(reorderRaw) / 512.0
	if err := transferErr(pattern(size), 4096, 512, loss, reorder, seed); err != nil {
		t.Fatal(err)
	}
}

func TestStreamPropertyRandom(t *testing.T) {
	// Property: for arbitrary payload sizes, loss rates up to 25%, and
	// reordering up to 50%, the stream always reconstructs exactly. The
	// quick.Config rand is pinned so a failure reproduces: promote any
	// counterexample to a named regression test (see
	// TestStreamRegressionGoBackNWedge).
	f := func(sizeRaw uint16, lossRaw, reorderRaw uint8, seed uint64) bool {
		size := int(sizeRaw)%20000 + 1
		loss := float64(lossRaw%64) / 256.0    // 0..25%
		reorder := float64(reorderRaw) / 512.0 // 0..50%
		return transferErr(pattern(size), 4096, 512, loss, reorder, seed) == nil
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(0x5eedf1ec70e))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// runBidirectional drives both endpoints sending simultaneously (acks
// piggyback on data) over a lossy, reordering channel.
func runBidirectional(t *testing.T, sizeA, sizeB int, bufSize, mss uint32, lossP, reorderP float64, seed uint64, oooCap uint8) {
	t.Helper()
	rng := stats.NewRNG(seed)
	dataA := pattern(sizeA)
	dataB := pattern(sizeB)
	a := newEndpoint(bufSize)
	b := newEndpoint(bufSize)
	a.st.OOOCap, b.st.OOOCap = oooCap, oooCap
	a.tx = dataA
	b.tx = dataB

	// One direction's in-flight segments, delivered next round.
	var toB, toA []wireSeg
	deliver := func(dst *endpoint, in []wireSeg, back *[]wireSeg) bool {
		progress := false
		for _, s := range in {
			if ack, ok := dst.receive(s); ok && !rng.Bool(lossP) {
				*back = append(*back, ack)
			}
			progress = true
		}
		return progress
	}
	stall := 0
	for round := 0; round < 200000; round++ {
		progress := false
		for _, s := range a.pump(mss) {
			if rng.Bool(lossP) {
				continue
			}
			toB = pushWire(rng, toB, s, reorderP)
			progress = true
		}
		for _, s := range b.pump(mss) {
			if rng.Bool(lossP) {
				continue
			}
			toA = pushWire(rng, toA, s, reorderP)
			progress = true
		}
		progress = deliver(b, toB, &toA) || progress
		toB = toB[:0]
		progress = deliver(a, toA, &toB) || progress
		toA = toA[:0]

		if len(b.rxGot) == len(dataA) && len(a.rxGot) == len(dataB) {
			break
		}
		if progress {
			stall = 0
		} else if stall++; stall > 2 {
			// RTO + sender-side persist probes (see conformanceTransfer).
			ProcessHC(a.st, a.post, HCOp{Kind: HCRetransmit})
			ProcessHC(b.st, b.post, HCOp{Kind: HCRetransmit})
			sendProbe(rng, a, b, lossP)
			sendProbe(rng, b, a, lossP)
			stall = 0
		}
	}
	if !bytes.Equal(b.rxGot, dataA) {
		t.Fatalf("a->b stream mismatch: %d/%d", len(b.rxGot), len(dataA))
	}
	if !bytes.Equal(a.rxGot, dataB) {
		t.Fatalf("b->a stream mismatch: %d/%d", len(a.rxGot), len(dataB))
	}
}

func TestBidirectionalStreams(t *testing.T) {
	runBidirectional(t, 30_000, 25_000, 8192, 1448, 0, 0, 8, 0)
}

func TestBidirectionalStreamsWithLoss(t *testing.T) {
	for _, c := range []struct {
		loss, reorder float64
		cap           uint8
	}{
		{0.02, 0, 1},
		{0.05, 0.2, 1},
		{0.05, 0.2, 4},
	} {
		c := c
		t.Run(fmt.Sprintf("loss=%v,reorder=%v,N=%d", c.loss, c.reorder, c.cap), func(t *testing.T) {
			runBidirectional(t, 20_000, 15_000, 4096, 512, c.loss, c.reorder, 9, c.cap)
		})
	}
}

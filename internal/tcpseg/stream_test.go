package tcpseg

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"flextoe/internal/packet"
	"flextoe/internal/stats"
)

// streamHarness wires two connection endpoints through an adversarial
// channel (loss, reordering, duplication) and checks that the receiver
// reconstructs the sender's byte stream exactly. This is the core
// correctness property of the whole offload: §3.1's pipeline stages are
// alternative executions of exactly this logic.
type endpoint struct {
	st    *ProtoState
	post  *PostState
	tx    []byte // bytes the app wants to send (source of truth)
	sent  uint32 // bytes handed to the TX buffer so far
	rxBuf []byte // the receive payload buffer (simulated host memory)
	rxGot []byte // reconstructed in-order stream
}

type wireSeg struct {
	info    SegInfo
	payload []byte
}

func newEndpoint(bufSize uint32) *endpoint {
	st, post := newConn(bufSize)
	return &endpoint{st: st, post: post, rxBuf: make([]byte, bufSize)}
}

// pump moves application data into the TX buffer and emits all sendable
// segments.
func (e *endpoint) pump(mss uint32) []wireSeg {
	// Append up to free TX buffer space.
	free := e.post.TxSize - (e.st.TxAvail + e.st.TxSent)
	if n := uint32(len(e.tx)) - e.sent; n > 0 {
		if n > free {
			n = free
		}
		if n > 0 {
			ProcessHC(e.st, HCOp{Kind: HCTx, Bytes: n})
			e.sent += n
		}
	}
	var out []wireSeg
	for {
		seg, ok := ProcessTX(e.st, e.post, mss, 0)
		if !ok {
			break
		}
		// Fetch payload from the circular TX buffer position. The
		// stream offset of seg.Seq is just seg.Seq (ISS = 0).
		payload := make([]byte, seg.Len)
		copy(payload, e.tx[seg.Seq:seg.Seq+seg.Len])
		flags := packet.FlagACK
		if seg.FIN {
			flags |= packet.FlagFIN
		}
		out = append(out, wireSeg{
			info: SegInfo{
				Seq: seg.Seq, Ack: seg.Ack, Flags: flags,
				Window: seg.Win, PayloadLen: seg.Len,
			},
			payload: payload,
		})
	}
	return out
}

// receive processes one segment, places payload into the RX buffer, and
// returns any ACK to send back.
func (e *endpoint) receive(ws wireSeg) (wireSeg, bool) {
	res := ProcessRX(e.st, e.post, &ws.info, 0)
	if res.WriteLen > 0 {
		// One-shot placement into the circular receive buffer.
		for i := uint32(0); i < res.WriteLen; i++ {
			e.rxBuf[(res.WritePos+i)&(e.post.RxSize-1)] = ws.payload[res.WriteOff+i]
		}
	}
	if res.NewInOrder > 0 {
		// The application consumes newly in-order bytes immediately.
		start := uint32(len(e.rxGot))
		for i := uint32(0); i < res.NewInOrder; i++ {
			e.rxGot = append(e.rxGot, e.rxBuf[(start+i)&(e.post.RxSize-1)])
		}
		ProcessHC(e.st, HCOp{Kind: HCRxConsumed, Bytes: res.NewInOrder})
	}
	if res.SendAck {
		return wireSeg{info: SegInfo{
			Seq: res.AckSeq, Ack: res.AckAck, Flags: packet.FlagACK,
			Window: res.AckWin,
		}}, true
	}
	return wireSeg{}, false
}

// runTransfer pushes data from a to b through a channel that drops with
// probability lossP and reorders with probability reorderP, using a simple
// RTO (sender-side go-back-N reset) when progress stalls.
func runTransfer(t *testing.T, data []byte, bufSize uint32, mss uint32, lossP, reorderP float64, seed uint64) {
	t.Helper()
	if err := transferErr(data, bufSize, mss, lossP, reorderP, seed); err != nil {
		t.Fatal(err)
	}
}

func transferErr(data []byte, bufSize uint32, mss uint32, lossP, reorderP float64, seed uint64) error {
	rng := stats.NewRNG(seed)
	a := newEndpoint(bufSize)
	b := newEndpoint(bufSize)
	a.tx = data

	var wire []wireSeg // in-flight segments toward b
	var backWire []wireSeg
	stall := 0
	for round := 0; round < 200000; round++ {
		outs := a.pump(mss)
		progress := len(outs) > 0
		for _, s := range outs {
			if rng.Bool(lossP) {
				continue // dropped
			}
			if len(wire) > 0 && rng.Bool(reorderP) {
				wire = append(wire[:len(wire)-1], s, wire[len(wire)-1])
			} else {
				wire = append(wire, s)
			}
		}
		// Deliver everything currently on the wire to b.
		for _, s := range wire {
			if ack, ok := b.receive(s); ok {
				if !rng.Bool(lossP) {
					backWire = append(backWire, ack)
				}
			}
			progress = true
		}
		wire = wire[:0]
		// Deliver acks back to a.
		for _, s := range backWire {
			a.receive(s)
		}
		backWire = backWire[:0]

		if uint32(len(b.rxGot)) == uint32(len(data)) {
			break
		}
		if !progress {
			stall++
		} else {
			stall = 0
		}
		if stall > 2 {
			// RTO fires: go-back-N reset on the sender.
			ProcessHC(a.st, HCOp{Kind: HCRetransmit})
			stall = 0
		}
	}
	if !bytes.Equal(b.rxGot, data) {
		for i := range data {
			if i >= len(b.rxGot) || b.rxGot[i] != data[i] {
				return fmt.Errorf("stream mismatch at byte %d (got %d bytes of %d)", i, len(b.rxGot), len(data))
			}
		}
		return fmt.Errorf("stream longer than expected: %d > %d", len(b.rxGot), len(data))
	}
	return nil
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

func TestStreamLossless(t *testing.T) {
	runTransfer(t, pattern(100_000), 16384, 1448, 0, 0, 1)
}

func TestStreamSmallMSS(t *testing.T) {
	runTransfer(t, pattern(10_000), 4096, 64, 0, 0, 2)
}

func TestStreamWithLoss(t *testing.T) {
	for _, loss := range []float64{0.001, 0.01, 0.05, 0.2} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%v", loss), func(t *testing.T) {
			runTransfer(t, pattern(50_000), 16384, 1448, loss, 0, 3)
		})
	}
}

func TestStreamWithReordering(t *testing.T) {
	runTransfer(t, pattern(50_000), 16384, 1448, 0, 0.3, 4)
}

func TestStreamWithLossAndReordering(t *testing.T) {
	runTransfer(t, pattern(50_000), 16384, 1448, 0.02, 0.2, 5)
}

func TestStreamTinyBuffer(t *testing.T) {
	// Buffer much smaller than the transfer: exercises flow control and
	// buffer wraparound continuously.
	runTransfer(t, pattern(20_000), 512, 128, 0, 0, 6)
}

func TestStreamTinyBufferWithLoss(t *testing.T) {
	runTransfer(t, pattern(8_000), 512, 128, 0.05, 0.1, 7)
}

func TestStreamPropertyRandom(t *testing.T) {
	// Property: for arbitrary payload sizes, loss rates up to 25%, and
	// reordering up to 50%, the stream always reconstructs exactly.
	f := func(sizeRaw uint16, lossRaw, reorderRaw uint8, seed uint64) bool {
		size := int(sizeRaw)%20000 + 1
		loss := float64(lossRaw%64) / 256.0    // 0..25%
		reorder := float64(reorderRaw) / 512.0 // 0..50%
		return transferErr(pattern(size), 4096, 512, loss, reorder, seed) == nil
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBidirectionalStreams(t *testing.T) {
	// Both endpoints send simultaneously; acks piggyback on data.
	dataA := pattern(30_000)
	dataB := pattern(25_000)
	a := newEndpoint(8192)
	b := newEndpoint(8192)
	a.tx = dataA
	b.tx = dataB

	for round := 0; round < 100000; round++ {
		for _, s := range a.pump(1448) {
			if ack, ok := b.receive(s); ok {
				a.receive(ack)
			}
		}
		for _, s := range b.pump(1448) {
			if ack, ok := a.receive(s); ok {
				b.receive(ack)
			}
		}
		if len(b.rxGot) == len(dataA) && len(a.rxGot) == len(dataB) {
			break
		}
	}
	if !bytes.Equal(b.rxGot, dataA) {
		t.Fatalf("a->b stream mismatch: %d/%d", len(b.rxGot), len(dataA))
	}
	if !bytes.Equal(a.rxGot, dataB) {
		t.Fatalf("b->a stream mismatch: %d/%d", len(a.rxGot), len(dataB))
	}
}

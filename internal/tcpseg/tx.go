package tcpseg

// TXResult describes one segment to transmit, produced by the protocol
// stage's "Seq" step (Fig. 5): the assigned sequence number and the
// transmit-buffer position the DMA stage fetches payload from.
type TXResult struct {
	Seq    uint32 // TCP sequence number for the segment
	BufPos uint32 // TX payload buffer offset of the first byte
	Len    uint32 // payload bytes
	FIN    bool   // segment carries FIN
	Ack    uint32 // current cumulative ack (piggybacked)
	Win    uint16 // scaled advertised window
	EchoTS uint32 // peer timestamp to echo

	// Retransmit: the segment was emitted from the selective-retransmit
	// queue (a SACK-identified hole), not the regular send path.
	Retransmit bool
	// RetxBytes counts how many of Len were already transmitted before
	// (selective repairs, and go-back-N resends below SND.MAX), for the
	// loss-recovery accounting in Fig. 15.
	RetxBytes uint32

	// SACK blocks to piggyback on the data segment (valid prefix of
	// length SACKCnt): when SACK-permitted was negotiated and the receive
	// side holds out-of-order intervals, the data path advertises them on
	// outgoing data too, so heavily bidirectional flows don't wait for a
	// pure ACK to learn about holes.
	SACK    [MaxOOOIntervals]SeqInterval
	SACKCnt uint8
}

// ProcessTX attempts to produce the next segment for transmission. mss
// bounds the payload; cwnd (bytes; 0 = unlimited) is the congestion window
// the flow scheduler enforces from control-plane programming. It returns
// ok=false when flow control, congestion control, or an empty buffer
// prevent sending.
func ProcessTX(st *ProtoState, post *PostState, mss uint32, cwnd uint32) (TXResult, bool) {
	// Selective retransmissions drain ahead of new data. They re-send
	// bytes already counted in TxSent, so flow and congestion windows are
	// unaffected (fast-retransmit segments are always allowed out); the
	// queue is bounded by the scoreboard's hole count.
	if st.RetxCnt > 0 {
		h := st.RetxQ[0]
		n := uint32(SeqDiff(h.End, h.Start))
		if n > mss {
			n = mss
		}
		res := TXResult{
			Seq:        h.Start,
			BufPos:     wrap(st.TxPos-uint32(SeqDiff(st.Seq, h.Start)), post.TxSize),
			Len:        n,
			Ack:        st.Ack,
			Win:        st.LocalWindow(),
			EchoTS:     st.NextTS,
			Retransmit: true,
			RetxBytes:  n,
		}
		res.SACKCnt = copySACK(st, &res.SACK, 0, false)
		h.Start += n
		if h.Start == h.End {
			copy(st.RetxQ[:], st.RetxQ[1:st.RetxCnt])
			st.RetxCnt--
		} else {
			st.RetxQ[0] = h
		}
		return res, true
	}

	sendable := st.TxAvail
	// Flow control: never exceed the peer's advertised window.
	if rw := st.RemoteWindowBytes(); st.TxSent >= rw {
		sendable = 0
	} else if room := rw - st.TxSent; sendable > room {
		sendable = room
	}
	// Congestion control: window programmed by the control plane.
	if cwnd > 0 {
		if st.TxSent >= cwnd {
			sendable = 0
		} else if room := cwnd - st.TxSent; sendable > room {
			sendable = room
		}
	}
	if sendable > mss {
		sendable = mss
	}

	// The FIN rides on the segment that drains the buffer (or goes bare
	// when the buffer is already empty).
	fin := st.Flags&flagFinPending != 0 && sendable == st.TxAvail
	if sendable == 0 && !fin {
		return TXResult{}, false
	}

	res := TXResult{
		Seq:    st.Seq,
		BufPos: wrap(st.TxPos, post.TxSize),
		Len:    sendable,
		FIN:    fin,
		Ack:    st.Ack,
		Win:    st.LocalWindow(),
		EchoTS: st.NextTS,
	}
	res.SACKCnt = copySACK(st, &res.SACK, 0, false)
	// Bytes below SND.MAX were on the wire before a go-back-N rewind:
	// count them as retransmitted.
	if sendable > 0 && SeqLT(st.Seq, st.TxMax) {
		if over := uint32(SeqDiff(st.TxMax, st.Seq)); over < sendable {
			res.RetxBytes = over
		} else {
			res.RetxBytes = sendable
		}
	}
	st.Seq += sendable
	if SeqGT(st.Seq, st.TxMax) {
		st.TxMax = st.Seq
	}
	st.TxPos = wrap(st.TxPos+sendable, post.TxSize)
	st.TxAvail -= sendable
	st.TxSent += sendable
	if fin {
		st.Flags &^= flagFinPending
		st.Flags |= flagFinSent | flagFinEverTx
	}
	return res, true
}

// RetxPending returns the bytes queued for selective retransmission.
func RetxPending(st *ProtoState) uint32 {
	var n uint32
	for i := 0; i < int(st.RetxCnt); i++ {
		n += uint32(SeqDiff(st.RetxQ[i].End, st.RetxQ[i].Start))
	}
	return n
}

// SendableBytes returns how many bytes ProcessTX could currently emit
// (ignoring MSS segmentation), used by the flow scheduler to decide
// whether a flow stays in the active set. Queued selective retransmits
// count: they bypass the windows, exactly as ProcessTX emits them.
func SendableBytes(st *ProtoState, cwnd uint32) uint32 {
	retx := RetxPending(st)
	sendable := st.TxAvail
	if rw := st.RemoteWindowBytes(); st.TxSent >= rw {
		return retx
	} else if room := rw - st.TxSent; sendable > room {
		sendable = room
	}
	if cwnd > 0 {
		if st.TxSent >= cwnd {
			return retx
		}
		if room := cwnd - st.TxSent; sendable > room {
			sendable = room
		}
	}
	return retx + sendable
}

// HCKind discriminates host-control operations (§3.1.1).
type HCKind uint8

const (
	// HCTx: the application appended bytes to the TX payload buffer.
	HCTx HCKind = iota
	// HCRxConsumed: the application consumed bytes from the RX buffer,
	// reopening the receive window.
	HCRxConsumed
	// HCFin: the application closed the connection.
	HCFin
	// HCRetransmit: control-plane-triggered timeout retransmission
	// (go-back-N reset).
	HCRetransmit
)

// HCOp is one host-control descriptor fetched from a context queue.
type HCOp struct {
	Kind  HCKind
	Bytes uint32 // HCTx: appended; HCRxConsumed: consumed
}

// HCResult reports protocol-state changes a host-control operation caused.
type HCResult struct {
	TxWindowOpened   bool // transmit window expanded: poke the flow scheduler
	RxWindowOpened   bool // receive window expanded: maybe send window update
	SendWindowUpdate bool // receive window reopened from (near) zero: ack the peer
	Reset            bool // transmission state was reset (go-back-N)
}

// ProcessHC applies a host-control operation to the protocol state
// ("Win"/"Fin"/"Reset" in Fig. 4). post supplies the buffer geometry a
// go-back-N reset needs to rewind the TX buffer head.
func ProcessHC(st *ProtoState, post *PostState, op HCOp) HCResult {
	var res HCResult
	switch op.Kind {
	case HCTx:
		st.TxAvail += op.Bytes
		res.TxWindowOpened = op.Bytes > 0
	case HCRxConsumed:
		wasClosed := st.LocalWindow() == 0
		st.RxAvail += op.Bytes
		res.RxWindowOpened = op.Bytes > 0
		res.SendWindowUpdate = wasClosed && st.LocalWindow() > 0
	case HCFin:
		st.Flags |= flagFinPending
		res.TxWindowOpened = true // scheduler must emit the FIN segment
	case HCRetransmit:
		if st.TxSent > 0 || (st.Flags&flagFinSent != 0 && st.Flags&flagFinAcked == 0) {
			gobackN(st, post)
			res.Reset = true
			res.TxWindowOpened = true
		}
	}
	return res
}

// WindowUpdateAck synthesizes the pure-ACK result that re-advertises the
// receive window after it reopens (prevents zero-window deadlock when the
// application drains a full buffer).
func WindowUpdateAck(st *ProtoState) RXResult {
	seq := st.Seq
	if st.Flags&flagFinSent != 0 {
		seq++
	}
	res := RXResult{
		SendAck: true,
		AckSeq:  seq,
		AckAck:  st.Ack,
		AckWin:  st.LocalWindow(),
		EchoTS:  st.NextTS,
	}
	emitSACK(st, &res, 0, false)
	return res
}

// Package tcpseg implements the TCP data-path protocol logic that FlexTOE
// offloads: per-segment receive processing (window advance, interval-set
// out-of-order reassembly — capacity 1 by default, matching the paper —
// duplicate-ACK tracking), transmit segmentation, and host-control
// operations (transmit-window bumps, FIN, go-back-N resets).
//
// The package is deliberately pure: operations take a connection state and
// a header summary and return a result describing the side effects (bytes
// to place where, ACKs to emit, retransmits to trigger). The FlexTOE
// protocol pipeline stage, the TAS baseline model, and the tests all drive
// the same functions — mirroring the paper, where FlexTOE inherits TAS's
// data-path semantics (§3).
//
// Connection state is partitioned by pipeline stage exactly as in Table 5
// of the paper: pre-processor state (connection identification, 15 B),
// protocol state (TCP state machine, 43 B), and post-processor state
// (context queue and congestion control, 51 B). DMA and context-queue
// stages are stateless.
package tcpseg

// Sequence-number arithmetic modulo 2^32. TCP sequence comparisons must be
// wraparound-safe; these helpers implement RFC 793 serial-number compare.

// SeqLT reports a < b in sequence space.
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports a <= b in sequence space.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqGT reports a > b in sequence space.
func SeqGT(a, b uint32) bool { return int32(a-b) > 0 }

// SeqGEQ reports a >= b in sequence space.
func SeqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// SeqDiff returns a - b as a signed distance in sequence space.
func SeqDiff(a, b uint32) int32 { return int32(a - b) }

// SeqMax returns the later of a and b in sequence space.
func SeqMax(a, b uint32) uint32 {
	if SeqGT(a, b) {
		return a
	}
	return b
}

// SeqMin returns the earlier of a and b in sequence space.
func SeqMin(a, b uint32) uint32 {
	if SeqLT(a, b) {
		return a
	}
	return b
}

package tcpseg

import (
	"encoding/binary"

	"flextoe/internal/packet"
)

// WindowScale is the fixed window-scale shift FlexTOE's control plane
// negotiates on every connection, so the 16-bit remote_win field in the
// protocol state covers up to 8 MB of in-flight data.
const WindowScale = 7

// PreState is the pre-processor's partition of connection state:
// connection identification for header preparation and filtering (Table 5,
// 15 bytes). Read-only after connection establishment.
type PreState struct {
	PeerMAC    packet.EtherAddr
	PeerIP     packet.IPv4Addr
	LocalIP    packet.IPv4Addr // implicit in the paper (NIC-global); kept per-conn for multi-host sims
	LocalPort  uint16
	RemotePort uint16
	FlowGroup  uint8 // hash(4-tuple) % flow groups, 2 bits on the Agilio
}

// preStateWire is the packed wire size of the Table 5 pre-processor
// partition (peer MAC 48b + peer IP 32b + ports 32b + flow group 2b,
// rounded up): 15 bytes.
const preStateWire = 15

// MarshalTable5 packs the paper's pre-processor fields (LocalIP excluded:
// the Agilio stores it NIC-globally).
func (s *PreState) MarshalTable5() []byte {
	b := make([]byte, preStateWire)
	copy(b[0:6], s.PeerMAC[:])
	binary.BigEndian.PutUint32(b[6:10], uint32(s.PeerIP))
	binary.BigEndian.PutUint16(b[10:12], s.LocalPort)
	binary.BigEndian.PutUint16(b[12:14], s.RemotePort)
	b[14] = s.FlowGroup & 0x3
	return b
}

// Proto state flags. Only the low nibble is part of the packed Table 5
// state; the higher bits are extensions the marshaller drops.
const (
	flagFinPending uint16 = 1 << 0 // local close requested, FIN not yet sent
	flagFinSent    uint16 = 1 << 1 // FIN transmitted (occupies one seq)
	flagFinAcked   uint16 = 1 << 2 // our FIN acknowledged
	flagFinRx      uint16 = 1 << 3 // peer FIN consumed
	flagECNSeen    uint16 = 1 << 4 // CE observed since last ACK sent
	// flagFinEverTx: some copy of our FIN has been on the wire, even if
	// a go-back-N reset has since rewound flagFinSent. Only then can an
	// ack of the FIN's sequence slot be legitimate.
	flagFinEverTx uint16 = 1 << 5
	// flagSACKPerm: both SYNs carried SACK-permitted; ACKs advertise the
	// out-of-order interval set and incoming SACK blocks feed the
	// sender-side scoreboard.
	flagSACKPerm uint16 = 1 << 6
	// flagSACKRenege: the scoreboard could not hold every reported block,
	// so it understates what the peer holds; loss recovery must fall back
	// to go-back-N until the scoreboard drains (RFC 2018 conservatism).
	flagSACKRenege uint16 = 1 << 7
	// flagFinOOO: a FIN arrived beyond a reassembly hole; its sequence
	// slot is remembered in FinOOOSeq and consumed when the cumulative
	// ack reaches it, without waiting for a FIN retransmission.
	flagFinOOO uint16 = 1 << 8
	// flagSACKRecovery: a selective fast retransmit is in progress;
	// HighRetx bounds what has been queued for repair so far, and
	// partial acks / further SACK blocks extend the repair instead of
	// waiting for three fresh duplicate ACKs (RFC 6675).
	flagSACKRecovery uint16 = 1 << 9
)

// ProtoState is the protocol stage's partition: the TCP state machine
// (Table 5, 43 bytes). The protocol stage is the only pipeline stage that
// mutates it, and does so atomically per connection.
type ProtoState struct {
	RxPos     uint32 // RX buffer head: offset where the next in-order byte lands
	TxPos     uint32 // TX buffer head: offset of the next byte to transmit
	TxAvail   uint32 // bytes in the TX buffer not yet transmitted
	RxAvail   uint32 // free RX buffer space measured from Ack
	RemoteWin uint16 // peer receive window, scaled by WindowScale
	TxSent    uint32 // transmitted but unacknowledged bytes
	Seq       uint32 // next local sequence number to transmit
	TxMax     uint32 // highest sequence number ever transmitted (SND.MAX)
	Ack       uint32 // next expected remote sequence number (RCV.NXT)
	DupAcks   uint8  // duplicate-ACK count (4 bits in hardware)
	NextTS    uint32 // peer timestamp to echo in ACKs
	Flags     uint16 // connection lifecycle bits (above)

	// Out-of-order reassembly: a sorted, disjoint set of received ranges
	// beyond Ack. OOOCap is the policy limit (0 or 1 = the paper's
	// single-interval Table 5 budget; up to MaxOOOIntervals). Only the
	// head interval is part of the packed Table 5 state.
	OOO    [MaxOOOIntervals]SeqInterval
	OOOCnt uint8
	OOOCap uint8

	// FinOOOSeq is the remembered sequence slot of an out-of-order FIN
	// (valid while flagFinOOO is set): the octet after the peer's last
	// data byte.
	FinOOOSeq uint32

	// SACK scoreboard (sender side, RFC 2018): a sorted, disjoint set of
	// peer-held ranges in (SND.UNA, SND.MAX], reported by incoming SACK
	// blocks and trimmed as the cumulative ack advances. Same bounded
	// representation as the receive interval set, so the Table 5 state
	// delta is 8 B per interval in use (see MarshalSACKExtension).
	SACKScore [MaxOOOIntervals]SeqInterval
	SACKCnt   uint8

	// Selective-retransmit queue: the holes between scoreboard intervals
	// that the dup-ack path decided to repair. ProcessTX drains it ahead
	// of new data, one MSS per call. At most SACKCnt+1 holes exist.
	RetxQ   [MaxOOOIntervals + 1]SeqInterval
	RetxCnt uint8

	// HighRetx is RFC 6675's HighRxt: the highest sequence queued for
	// selective retransmission in the current recovery episode (valid
	// while flagSACKRecovery is set), so continued recovery never
	// re-queues a hole it already repaired.
	HighRetx uint32
}

// oooCap returns the effective interval-set capacity.
func (s *ProtoState) oooCap() int {
	if s.OOOCap == 0 {
		return 1
	}
	if s.OOOCap > MaxOOOIntervals {
		return MaxOOOIntervals
	}
	return int(s.OOOCap)
}

// OOOIntervals returns the live out-of-order interval set (aliases the
// state; callers must not retain it across ProcessRX calls).
func (s *ProtoState) OOOIntervals() []SeqInterval { return s.OOO[:s.OOOCnt] }

// setOOO copies an interval slice (possibly aliasing a suffix of the
// backing array, as MergeAdvance returns) back down into the state.
func (s *ProtoState) setOOO(ivs []SeqInterval) {
	s.OOOCnt = uint8(copy(s.OOO[:], ivs))
}

// SACKIntervals returns the live sender-side scoreboard (aliases the
// state; callers must not retain it across ProcessRX calls).
func (s *ProtoState) SACKIntervals() []SeqInterval { return s.SACKScore[:s.SACKCnt] }

func (s *ProtoState) setSACK(ivs []SeqInterval) {
	s.SACKCnt = uint8(copy(s.SACKScore[:], ivs))
}

// SACKEnabled reports whether the connection negotiated SACK-permitted.
func (s *ProtoState) SACKEnabled() bool { return s.Flags&flagSACKPerm != 0 }

// SetSACKPerm records the handshake's SACK negotiation result (control
// plane, at establishment).
func (s *ProtoState) SetSACKPerm(on bool) {
	if on {
		s.Flags |= flagSACKPerm
	} else {
		s.Flags &^= flagSACKPerm
	}
}

// protoStateWire is the packed Table 5 size of the protocol partition:
// 43 bytes.
const protoStateWire = 43

// MarshalTable5 packs the protocol partition with the paper's field
// widths. The lifecycle flags share the dup-ACK byte's upper nibble, as
// the 4-bit dupack_cnt field implies. Only the head out-of-order interval
// is packed (the paper's ooo_start/ooo_len); additional intervals are an
// extension beyond the Table 5 budget and marshalled separately by
// MarshalOOOExtension.
func (s *ProtoState) MarshalTable5() []byte {
	b := make([]byte, protoStateWire)
	binary.BigEndian.PutUint32(b[0:], s.RxPos)
	binary.BigEndian.PutUint32(b[4:], s.TxPos)
	binary.BigEndian.PutUint32(b[8:], s.TxAvail)
	binary.BigEndian.PutUint32(b[12:], s.RxAvail)
	binary.BigEndian.PutUint16(b[16:], s.RemoteWin)
	binary.BigEndian.PutUint32(b[18:], s.TxSent)
	binary.BigEndian.PutUint32(b[22:], s.Seq)
	binary.BigEndian.PutUint32(b[26:], s.Ack)
	var headStart, headLen uint32
	if s.OOOCnt > 0 {
		headStart = s.OOO[0].Start
		headLen = uint32(SeqDiff(s.OOO[0].End, s.OOO[0].Start))
	}
	binary.BigEndian.PutUint32(b[30:], headStart)
	binary.BigEndian.PutUint32(b[34:], headLen)
	b[38] = s.DupAcks&0xf | byte(s.Flags<<4)&0xf0
	binary.BigEndian.PutUint32(b[39:], s.NextTS)
	return b
}

// MarshalOOOExtension packs intervals beyond the first: 8 bytes per extra
// interval actually in use. Empty for the paper's N=1 configuration, so
// the Table 5 budget is preserved exactly there.
func (s *ProtoState) MarshalOOOExtension() []byte {
	if s.OOOCnt <= 1 {
		return nil
	}
	b := make([]byte, 8*(int(s.OOOCnt)-1))
	for i := 1; i < int(s.OOOCnt); i++ {
		binary.BigEndian.PutUint32(b[8*(i-1):], s.OOO[i].Start)
		binary.BigEndian.PutUint32(b[8*(i-1)+4:], uint32(SeqDiff(s.OOO[i].End, s.OOO[i].Start)))
	}
	return b
}

// MarshalSACKExtension packs the sender-side scoreboard: 8 bytes per
// interval actually in use. Empty when SACK is not negotiated or no loss
// is outstanding, so the Table 5 budget is preserved exactly there.
func (s *ProtoState) MarshalSACKExtension() []byte {
	if s.SACKCnt == 0 {
		return nil
	}
	b := make([]byte, 8*int(s.SACKCnt))
	for i := 0; i < int(s.SACKCnt); i++ {
		binary.BigEndian.PutUint32(b[8*i:], s.SACKScore[i].Start)
		binary.BigEndian.PutUint32(b[8*i+4:], uint32(SeqDiff(s.SACKScore[i].End, s.SACKScore[i].Start)))
	}
	return b
}

// UnackedBase returns SND.UNA: the oldest unacknowledged sequence number.
func (s *ProtoState) UnackedBase() uint32 { return s.Seq - s.TxSent }

// RemoteWindowBytes returns the peer's receive window in bytes.
func (s *ProtoState) RemoteWindowBytes() uint32 {
	return uint32(s.RemoteWin) << WindowScale
}

// LocalWindow returns the window to advertise, scaled for the header.
func (s *ProtoState) LocalWindow() uint16 {
	w := s.RxAvail >> WindowScale
	if w > 0xffff {
		w = 0xffff
	}
	return uint16(w)
}

// FinRx reports whether the peer's FIN has been consumed.
func (s *ProtoState) FinRx() bool { return s.Flags&flagFinRx != 0 }

// FinAcked reports whether our FIN has been acknowledged.
func (s *ProtoState) FinAcked() bool { return s.Flags&flagFinAcked != 0 }

// FinSent reports whether our FIN has been transmitted.
func (s *ProtoState) FinSent() bool { return s.Flags&flagFinSent != 0 }

// PostState is the post-processor's partition: application interface and
// congestion-control accounting (Table 5, 51 bytes). Read-mostly; the
// counters are only incremented (updates commute, §3.1).
type PostState struct {
	Opaque   uint64 // application connection identifier
	Context  uint16 // context-queue id (application thread)
	RxBase   uint64 // host physical address of RX payload buffer
	TxBase   uint64 // host physical address of TX payload buffer
	RxSize   uint32 // RX buffer size (power of two)
	TxSize   uint32 // TX buffer size (power of two)
	CntACKB  uint32 // acknowledged bytes since last control-plane poll
	CntECNB  uint32 // ECN-marked acknowledged bytes since last poll
	CntFRetx uint8  // fast-retransmit count since last poll
	RTTEst   uint32 // RTT estimate from timestamps, microseconds
	Rate     uint32 // configured transmit rate, kbit/s (0 = unlimited)
}

// postStateWire is the packed Table 5 size of the post partition: 51 bytes.
const postStateWire = 51

// MarshalTable5 packs the post-processor partition.
func (s *PostState) MarshalTable5() []byte {
	b := make([]byte, postStateWire)
	binary.BigEndian.PutUint64(b[0:], s.Opaque)
	binary.BigEndian.PutUint16(b[8:], s.Context)
	binary.BigEndian.PutUint64(b[10:], s.RxBase)
	binary.BigEndian.PutUint64(b[18:], s.TxBase)
	binary.BigEndian.PutUint32(b[26:], s.RxSize)
	binary.BigEndian.PutUint32(b[30:], s.TxSize)
	binary.BigEndian.PutUint32(b[34:], s.CntACKB)
	binary.BigEndian.PutUint32(b[38:], s.CntECNB)
	b[42] = s.CntFRetx
	binary.BigEndian.PutUint32(b[43:], s.RTTEst)
	binary.BigEndian.PutUint32(b[47:], s.Rate)
	return b
}

// State bundles the three partitions of one established connection. The
// pipeline stages each touch only their own partition; the bundle exists
// for the control plane, which owns connection setup and teardown.
type State struct {
	Pre   PreState
	Proto ProtoState
	Post  PostState
}

// TotalTable5Bytes is the aggregate per-connection state footprint,
// matching Table 5's total (the paper reports 108 B from raw bit widths;
// byte-aligned packing gives 15+43+51 = 109 B).
const TotalTable5Bytes = preStateWire + protoStateWire + postStateWire

// SegInfo is the pre-processor's header summary (§3.1.3 "Sum"): only the
// fields later pipeline stages need, so the protocol stage never touches
// the raw packet.
type SegInfo struct {
	Flow       packet.Flow
	Seq        uint32
	Ack        uint32
	Flags      uint8
	Window     uint16
	PayloadLen uint32
	HasTS      bool
	TSVal      uint32
	TSEcr      uint32
	ECNCE      bool // IP header carried Congestion Experienced

	// SACK blocks carried in the header (valid prefix of length SACKCnt).
	SACK    [packet.MaxSACKBlocks]SeqInterval
	SACKCnt uint8
}

// Summarize extracts a SegInfo from a decoded packet.
func Summarize(p *packet.Packet) SegInfo {
	s := SegInfo{
		Flow:       p.Flow(),
		Seq:        p.TCP.Seq,
		Ack:        p.TCP.Ack,
		Flags:      p.TCP.Flags,
		Window:     p.TCP.Window,
		PayloadLen: uint32(len(p.Payload)),
		HasTS:      p.TCP.HasTimestamp,
		TSVal:      p.TCP.TSVal,
		TSEcr:      p.TCP.TSEcr,
		ECNCE:      p.IP.ECN() == packet.ECNCE,
	}
	for i := uint8(0); i < p.TCP.NumSACK; i++ {
		s.SACK[i] = SeqInterval{Start: p.TCP.SACKBlocks[i].Start, End: p.TCP.SACKBlocks[i].End}
	}
	s.SACKCnt = p.TCP.NumSACK
	return s
}

package tcpseg

import (
	"testing"
	"testing/quick"
)

func ivsEqual(a, b []SeqInterval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertSeqIntervalMerging(t *testing.T) {
	var ivs []SeqInterval
	ivs, r := InsertSeqInterval(ivs, SeqInterval{10, 20}, 32)
	if !r.Accepted || !r.Grew {
		t.Fatalf("insert into empty: %+v", r)
	}
	// Disjoint after.
	ivs, _ = InsertSeqInterval(ivs, SeqInterval{30, 40}, 32)
	if !ivsEqual(ivs, []SeqInterval{{10, 20}, {30, 40}}) {
		t.Fatalf("ivs = %v", ivs)
	}
	// Bridging segment merges everything.
	ivs, r = InsertSeqInterval(ivs, SeqInterval{15, 35}, 32)
	if !ivsEqual(ivs, []SeqInterval{{10, 40}}) || r.Merged != 1 || !r.AtHead {
		t.Fatalf("ivs = %v r = %+v", ivs, r)
	}
	// Adjacent extends.
	ivs, _ = InsertSeqInterval(ivs, SeqInterval{40, 50}, 32)
	if !ivsEqual(ivs, []SeqInterval{{10, 50}}) {
		t.Fatalf("ivs = %v", ivs)
	}
	// Disjoint before.
	ivs, r = InsertSeqInterval(ivs, SeqInterval{0, 5}, 32)
	if !ivsEqual(ivs, []SeqInterval{{0, 5}, {10, 50}}) || r.AtHead {
		t.Fatalf("ivs = %v r = %+v", ivs, r)
	}
}

func TestInsertSeqIntervalSinglePolicy(t *testing.T) {
	// The TAS/FlexTOE policy: max one interval; disjoint data rejected.
	var ivs []SeqInterval
	ivs, r := InsertSeqInterval(ivs, SeqInterval{100, 200}, 1)
	if !r.Accepted {
		t.Fatal("first interval rejected")
	}
	ivs, r = InsertSeqInterval(ivs, SeqInterval{300, 400}, 1)
	if r.Accepted {
		t.Fatal("second disjoint interval accepted with max=1")
	}
	if !ivsEqual(ivs, []SeqInterval{{100, 200}}) {
		t.Fatalf("ivs mutated on rejection: %v", ivs)
	}
	// Extension of the tracked interval is accepted.
	ivs, r = InsertSeqInterval(ivs, SeqInterval{200, 250}, 1)
	if !r.Accepted || !r.AtHead {
		t.Fatalf("adjacent extension rejected: %+v", r)
	}
	if !ivsEqual(ivs, []SeqInterval{{100, 250}}) {
		t.Fatalf("ivs = %v", ivs)
	}
}

func TestInsertSeqIntervalWraparound(t *testing.T) {
	// Intervals straddling the 2^32 sequence wrap merge correctly.
	var ivs []SeqInterval
	ivs, _ = InsertSeqInterval(ivs, SeqInterval{0xfffffff0, 0xfffffffa}, 4)
	ivs, r := InsertSeqInterval(ivs, SeqInterval{0xfffffffa, 0x10}, 4)
	if !r.Accepted || !ivsEqual(ivs, []SeqInterval{{0xfffffff0, 0x10}}) {
		t.Fatalf("wrap merge: ivs = %v r = %+v", ivs, r)
	}
	ivs, _ = InsertSeqInterval(ivs, SeqInterval{0x20, 0x30}, 4)
	if !ivsEqual(ivs, []SeqInterval{{0xfffffff0, 0x10}, {0x20, 0x30}}) {
		t.Fatalf("wrap ordering: ivs = %v", ivs)
	}
}

func TestMergeAdvance(t *testing.T) {
	ivs := []SeqInterval{{100, 200}, {300, 400}, {500, 600}}
	// Ack reaches into the first interval only.
	rest, ack, merged := MergeAdvance(ivs, 150)
	if ack != 200 || merged != 1 || !ivsEqual(rest, []SeqInterval{{300, 400}, {500, 600}}) {
		t.Fatalf("ack=%d merged=%d rest=%v", ack, merged, rest)
	}
	// Ack jumps over everything.
	rest, ack, merged = MergeAdvance(rest, 777)
	if ack != 777 || merged != 2 || len(rest) != 0 {
		t.Fatalf("ack=%d merged=%d rest=%v", ack, merged, rest)
	}
	// Ack short of every interval: nothing merges.
	rest, ack, merged = MergeAdvance([]SeqInterval{{100, 200}}, 50)
	if ack != 50 || merged != 0 || len(rest) != 1 {
		t.Fatalf("ack=%d merged=%d rest=%v", ack, merged, rest)
	}
}

func TestInsertSeqIntervalPropertySortedDisjoint(t *testing.T) {
	// Property: after any insertion sequence the set is sorted, disjoint,
	// non-adjacent, and within capacity.
	f := func(raw []uint16, maxRaw uint8) bool {
		max := int(maxRaw)%8 + 1
		var ivs []SeqInterval
		for i := 0; i+1 < len(raw); i += 2 {
			a := uint32(raw[i])
			b := a + uint32(raw[i+1]%512) + 1
			ivs, _ = InsertSeqInterval(ivs, SeqInterval{a, b}, max)
		}
		if len(ivs) > max {
			return false
		}
		for i := 0; i < len(ivs); i++ {
			if SeqGEQ(ivs[i].Start, ivs[i].End) {
				return false
			}
			if i > 0 && SeqGEQ(ivs[i-1].End, ivs[i].Start) {
				return false // overlapping or adjacent: should have merged
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSeqIntervalPropertyCoverage(t *testing.T) {
	// Property: with unbounded capacity, the set covers exactly the union
	// of everything inserted (checked against a bitmap oracle).
	f := func(raw []uint8) bool {
		var ivs []SeqInterval
		var oracle [1 << 11]bool
		for i := 0; i+1 < len(raw); i += 2 {
			a := uint32(raw[i]) << 2
			b := a + uint32(raw[i+1]%64) + 1
			ivs, _ = InsertSeqInterval(ivs, SeqInterval{a, b}, 1<<30)
			for p := a; p < b; p++ {
				oracle[p] = true
			}
		}
		covered := func(p uint32) bool {
			for _, iv := range ivs {
				if SeqLEQ(iv.Start, p) && SeqLT(p, iv.End) {
					return true
				}
			}
			return false
		}
		for p := uint32(0); p < 1<<11; p++ {
			if covered(p) != oracle[p] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

package tcpseg

import "testing"

// TestProcessTXPiggybacksSACK: a sender whose receive side holds
// out-of-order intervals advertises them on outgoing data segments when
// SACK-permitted was negotiated, so bidirectional peers learn about holes
// without waiting for a pure ACK.
func TestProcessTXPiggybacksSACK(t *testing.T) {
	const win = 1 << 16
	st := &ProtoState{RxAvail: win, RemoteWin: win >> WindowScale, OOOCap: MaxOOOIntervals}
	post := &PostState{RxSize: win, TxSize: win}
	st.SetSACKPerm(true)

	// Receive out-of-order data: two holes -> two intervals.
	for _, seg := range []struct{ seq, n uint32 }{{1000, 500}, {3000, 500}} {
		info := SegInfo{Seq: seg.seq, PayloadLen: seg.n, Flags: 0x10, Window: win >> WindowScale}
		ProcessRX(st, post, &info, 0)
	}
	if st.OOOCnt != 2 {
		t.Fatalf("OOOCnt = %d, want 2", st.OOOCnt)
	}

	// Stage data and transmit: the data segment must carry both blocks.
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 2000})
	res, ok := ProcessTX(st, post, 1448, 0)
	if !ok {
		t.Fatal("ProcessTX refused to send")
	}
	if res.SACKCnt != 2 {
		t.Fatalf("data segment SACKCnt = %d, want 2", res.SACKCnt)
	}
	if res.SACK[0] != (SeqInterval{Start: 1000, End: 1500}) ||
		res.SACK[1] != (SeqInterval{Start: 3000, End: 3500}) {
		t.Fatalf("SACK blocks = %v", res.SACK[:res.SACKCnt])
	}

	// Without SACK-permitted the piggyback must stay off.
	st2 := &ProtoState{RxAvail: win, RemoteWin: win >> WindowScale, OOOCap: MaxOOOIntervals}
	post2 := &PostState{RxSize: win, TxSize: win}
	info := SegInfo{Seq: 1000, PayloadLen: 500, Flags: 0x10, Window: win >> WindowScale}
	ProcessRX(st2, post2, &info, 0)
	ProcessHC(st2, post2, HCOp{Kind: HCTx, Bytes: 2000})
	res2, ok := ProcessTX(st2, post2, 1448, 0)
	if !ok || res2.SACKCnt != 0 {
		t.Fatalf("non-SACK connection piggybacked %d blocks", res2.SACKCnt)
	}
}

// TestSelectiveRetransmitPiggybacksSACK: repairs from the retransmit
// queue carry the receive side's intervals too (they are data segments
// like any other).
func TestSelectiveRetransmitPiggybacksSACK(t *testing.T) {
	const win = 1 << 16
	st := &ProtoState{RxAvail: win, RemoteWin: win >> WindowScale, OOOCap: MaxOOOIntervals}
	post := &PostState{RxSize: win, TxSize: win}
	st.SetSACKPerm(true)
	// Local receive side has a hole.
	info := SegInfo{Seq: 1000, PayloadLen: 500, Flags: 0x10, Window: win >> WindowScale}
	ProcessRX(st, post, &info, 0)
	// Force a queued selective retransmit.
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 4096})
	for {
		if _, ok := ProcessTX(st, post, 1448, 0); !ok {
			break
		}
	}
	st.RetxQ[0] = SeqInterval{Start: 0, End: 512}
	st.RetxCnt = 1
	res, ok := ProcessTX(st, post, 1448, 0)
	if !ok || !res.Retransmit {
		t.Fatalf("expected a retransmit segment, got ok=%v retx=%v", ok, res.Retransmit)
	}
	if res.SACKCnt != 1 || res.SACK[0] != (SeqInterval{Start: 1000, End: 1500}) {
		t.Fatalf("retransmit SACK blocks = %v (cnt %d)", res.SACK[:res.SACKCnt], res.SACKCnt)
	}
}

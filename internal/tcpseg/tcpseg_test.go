package tcpseg

import (
	"testing"

	"flextoe/internal/packet"
)

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b uint32
		lt   bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0, 0, false},
		{0xffffffff, 0, true},  // wraparound
		{0, 0xffffffff, false}, // wraparound
		{0x7fffffff, 0x80000000, true},
		{0xfffffff0, 0x10, true},
	}
	for _, c := range cases {
		if got := SeqLT(c.a, c.b); got != c.lt {
			t.Errorf("SeqLT(%#x, %#x) = %v", c.a, c.b, got)
		}
		if got := SeqGEQ(c.a, c.b); got == c.lt {
			t.Errorf("SeqGEQ(%#x, %#x) = %v", c.a, c.b, got)
		}
	}
	if SeqDiff(5, 3) != 2 || SeqDiff(3, 5) != -2 {
		t.Fatal("SeqDiff")
	}
	if SeqDiff(2, 0xffffffff) != 3 {
		t.Fatal("SeqDiff wraparound")
	}
	if SeqMax(0xfffffffe, 2) != 2 || SeqMin(0xfffffffe, 2) != 0xfffffffe {
		t.Fatal("SeqMax/SeqMin wraparound")
	}
}

func TestTable5StateSizes(t *testing.T) {
	// The paper's Table 5: pre 15 B, protocol 43 B, post 51 B.
	var pre PreState
	var proto ProtoState
	var post PostState
	if n := len(pre.MarshalTable5()); n != 15 {
		t.Errorf("pre-processor partition = %d B, want 15", n)
	}
	if n := len(proto.MarshalTable5()); n != 43 {
		t.Errorf("protocol partition = %d B, want 43", n)
	}
	if n := len(post.MarshalTable5()); n != 51 {
		t.Errorf("post-processor partition = %d B, want 51", n)
	}
	// Paper reports a 108 B total from raw bit widths; byte-aligned
	// packing gives 109.
	if TotalTable5Bytes != 109 {
		t.Errorf("total = %d B", TotalTable5Bytes)
	}
}

func newConn(bufSize uint32) (*ProtoState, *PostState) {
	st := &ProtoState{
		RxAvail:   bufSize,
		RemoteWin: uint16(bufSize >> WindowScale),
	}
	post := &PostState{RxSize: bufSize, TxSize: bufSize}
	return st, post
}

func dataSeg(seq uint32, n uint32, ack uint32, win uint16) *SegInfo {
	return &SegInfo{
		Seq: seq, Ack: ack, Flags: packet.FlagACK | packet.FlagPSH,
		Window: win, PayloadLen: n,
	}
}

func TestRXInOrderDelivery(t *testing.T) {
	st, post := newConn(4096)
	res := ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if res.Drop {
		t.Fatal("in-order segment dropped")
	}
	if res.WriteLen != 100 || res.WritePos != 0 || res.WriteOff != 0 {
		t.Fatalf("placement = %+v", res)
	}
	if res.NewInOrder != 100 {
		t.Fatalf("NewInOrder = %d", res.NewInOrder)
	}
	if !res.SendAck || res.AckAck != 100 {
		t.Fatalf("ack = %+v", res)
	}
	if st.Ack != 100 || st.RxPos != 100 || st.RxAvail != 4096-100 {
		t.Fatalf("state = %+v", st)
	}
}

func TestRXOutOfOrderSingleInterval(t *testing.T) {
	st, post := newConn(4096)
	// Segment 2 arrives first: tracked as the OOO interval.
	res := ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0)
	if !res.WasOOO {
		t.Fatalf("expected OOO accept: %+v", res)
	}
	if res.WritePos != 100 || res.WriteLen != 100 {
		t.Fatalf("OOO placement = %+v", res)
	}
	if res.AckAck != 0 {
		t.Fatalf("OOO ack should repeat expected seq: %+v", res)
	}
	if st.OOOCnt != 1 || st.OOO[0] != (SeqInterval{100, 200}) {
		t.Fatalf("interval set = %v", st.OOOIntervals())
	}
	// Segment 1 arrives: delivers both.
	res = ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if res.NewInOrder != 200 {
		t.Fatalf("NewInOrder = %d", res.NewInOrder)
	}
	if res.OOOMerged != 1 {
		t.Fatalf("OOOMerged = %d", res.OOOMerged)
	}
	if st.Ack != 200 || st.OOOCnt != 0 {
		t.Fatalf("state = %+v", st)
	}
	if st.RxAvail != 4096-200 {
		t.Fatalf("RxAvail = %d", st.RxAvail)
	}
}

func TestRXOOOIntervalExtension(t *testing.T) {
	st, post := newConn(4096)
	ProcessRX(st, post, dataSeg(200, 100, 0, 32), 0) // [200,300)
	// Adjacent after: extends.
	res := ProcessRX(st, post, dataSeg(300, 50, 0, 32), 0)
	if !res.WasOOO || st.OOOCnt != 1 || st.OOO[0] != (SeqInterval{200, 350}) {
		t.Fatalf("extension failed: %+v interval set %v", res, st.OOOIntervals())
	}
	// Adjacent before: extends.
	res = ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0)
	if !res.WasOOO || st.OOOCnt != 1 || st.OOO[0] != (SeqInterval{100, 350}) {
		t.Fatalf("front extension failed: interval set %v", st.OOOIntervals())
	}
	// Disjoint: dropped with an ACK for the expected sequence number.
	res = ProcessRX(st, post, dataSeg(500, 100, 0, 32), 0)
	if !res.OOODrop || !res.Drop {
		t.Fatalf("disjoint segment not dropped: %+v", res)
	}
	if !res.SendAck || res.AckAck != 0 {
		t.Fatalf("disjoint drop must ack expected seq: %+v", res)
	}
}

func TestRXDuplicateData(t *testing.T) {
	st, post := newConn(4096)
	ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	// Full duplicate: dropped, but re-ACKed.
	res := ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if !res.Drop || !res.SendAck || res.AckAck != 100 {
		t.Fatalf("duplicate handling = %+v", res)
	}
	// Partial overlap: only the new tail is placed.
	res = ProcessRX(st, post, dataSeg(50, 100, 0, 32), 0)
	if res.Drop {
		t.Fatal("partial overlap dropped entirely")
	}
	if res.WriteOff != 50 || res.WriteLen != 50 || res.WritePos != 100 {
		t.Fatalf("overlap placement = %+v", res)
	}
	if st.Ack != 150 {
		t.Fatalf("ack = %d", st.Ack)
	}
}

func TestRXWindowTrim(t *testing.T) {
	st, post := newConn(128)
	st.RxAvail = 100 // receive window of 100 bytes
	res := ProcessRX(st, post, dataSeg(0, 128, 0, 32), 0)
	if res.WriteLen != 100 {
		t.Fatalf("window trim: WriteLen = %d", res.WriteLen)
	}
	if st.Ack != 100 || st.RxAvail != 0 {
		t.Fatalf("state = %+v", st)
	}
	// Completely out of window now.
	res = ProcessRX(st, post, dataSeg(100, 50, 0, 32), 0)
	if !res.Drop || !res.SendAck {
		t.Fatalf("zero-window segment = %+v", res)
	}
}

func TestRXBufferWraparound(t *testing.T) {
	st, post := newConn(256)
	// Fill and consume to move RxPos near the end.
	ProcessRX(st, post, dataSeg(0, 200, 0, 32), 0)
	ProcessHC(st, post, HCOp{Kind: HCRxConsumed, Bytes: 200})
	res := ProcessRX(st, post, dataSeg(200, 100, 0, 32), 0)
	if res.WritePos != 200 || res.WriteLen != 100 {
		t.Fatalf("placement = %+v", res)
	}
	if st.RxPos != (200+100)&255 {
		t.Fatalf("RxPos = %d", st.RxPos)
	}
}

func TestTXSegmentation(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 3000})
	var segs []TXResult
	for {
		seg, ok := ProcessTX(st, post, 1448, 0)
		if !ok {
			break
		}
		segs = append(segs, seg)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	if segs[0].Len != 1448 || segs[1].Len != 1448 || segs[2].Len != 104 {
		t.Fatalf("lens = %d,%d,%d", segs[0].Len, segs[1].Len, segs[2].Len)
	}
	if segs[0].Seq != 0 || segs[1].Seq != 1448 || segs[2].Seq != 2896 {
		t.Fatal("sequence numbers wrong")
	}
	if st.TxSent != 3000 || st.TxAvail != 0 {
		t.Fatalf("state = %+v", st)
	}
}

func TestTXFlowControl(t *testing.T) {
	st, post := newConn(8192)
	st.RemoteWin = 2000 >> WindowScale // ~15 * 128 = 1920 bytes
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 5000})
	var total uint32
	for {
		seg, ok := ProcessTX(st, post, 1448, 0)
		if !ok {
			break
		}
		total += seg.Len
	}
	if total != st.RemoteWindowBytes() {
		t.Fatalf("sent %d, window %d", total, st.RemoteWindowBytes())
	}
}

func TestTXCongestionWindow(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 5000})
	var total uint32
	for {
		seg, ok := ProcessTX(st, post, 1448, 2000)
		if !ok {
			break
		}
		total += seg.Len
	}
	if total != 2000 {
		t.Fatalf("sent %d with cwnd 2000", total)
	}
	if SendableBytes(st, 2000) != 0 {
		t.Fatal("SendableBytes should be 0 at cwnd")
	}
}

func TestAckFreesTxBuffer(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 2000})
	ProcessTX(st, post, 1448, 0)
	ProcessTX(st, post, 1448, 0)
	// Peer acks the first segment.
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 1448, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 1448 {
		t.Fatalf("AckedBytes = %d", res.AckedBytes)
	}
	if st.TxSent != 552 {
		t.Fatalf("TxSent = %d", st.TxSent)
	}
	if post.CntACKB != 1448 {
		t.Fatalf("CntACKB = %d", post.CntACKB)
	}
}

func TestDupAcksTriggerFastRetransmit(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 4000})
	for {
		if _, ok := ProcessTX(st, post, 1448, 0); !ok {
			break
		}
	}
	sentSeq := st.Seq
	ack := &SegInfo{Seq: 0, Ack: 0, Flags: packet.FlagACK, Window: st.RemoteWin}
	r1 := ProcessRX(st, post, ack, 0)
	r2 := ProcessRX(st, post, ack, 0)
	r3 := ProcessRX(st, post, ack, 0)
	if !r1.DupAck || !r2.DupAck || !r3.DupAck {
		t.Fatalf("dup acks not detected: %v %v %v", r1.DupAck, r2.DupAck, r3.DupAck)
	}
	if r1.FastRetransmit || r2.FastRetransmit {
		t.Fatal("fast retransmit too early")
	}
	if !r3.FastRetransmit {
		t.Fatal("no fast retransmit on third dup ack")
	}
	// Go-back-N: transmission state reset to UNA.
	if st.Seq != 0 || st.TxSent != 0 || st.TxAvail != 4000 {
		t.Fatalf("reset state = %+v", st)
	}
	if post.CntFRetx != 1 {
		t.Fatalf("CntFRetx = %d", post.CntFRetx)
	}
	// A fourth dup ack must not trigger again.
	r4 := ProcessRX(st, post, ack, 0)
	if r4.FastRetransmit {
		t.Fatal("fast retransmit re-triggered")
	}
	_ = sentSeq
}

func TestDupAckRequiresNoPayloadAndSameWindow(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 2000})
	ProcessTX(st, post, 1448, 0)
	// Window update is not a dup ack.
	seg := &SegInfo{Seq: 0, Ack: 0, Flags: packet.FlagACK, Window: st.RemoteWin + 1}
	if res := ProcessRX(st, post, seg, 0); res.DupAck {
		t.Fatal("window update counted as dup ack")
	}
	// Data-bearing segment is not a dup ack.
	seg2 := dataSeg(0, 10, 0, st.RemoteWin)
	if res := ProcessRX(st, post, seg2, 0); res.DupAck {
		t.Fatal("data segment counted as dup ack")
	}
}

func TestHCRetransmitReset(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 1448, 0)
	res := ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	if !res.Reset || !res.TxWindowOpened {
		t.Fatalf("HC retransmit = %+v", res)
	}
	if st.Seq != 0 || st.TxAvail != 1000 || st.TxSent != 0 {
		t.Fatalf("state = %+v", st)
	}
	// Idempotent when nothing is outstanding.
	res = ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	if res.Reset {
		// nothing sent since the reset, but TxAvail>0 means data is
		// pending, not sent — no reset should occur
		t.Fatal("reset with nothing outstanding")
	}
}

func TestFINHandshake(t *testing.T) {
	// Local side sends FIN after data; peer acks it.
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessHC(st, post, HCOp{Kind: HCFin})
	seg, ok := ProcessTX(st, post, 1448, 0)
	if !ok || !seg.FIN || seg.Len != 100 {
		t.Fatalf("FIN segment = %+v ok=%v", seg, ok)
	}
	if !st.FinSent() {
		t.Fatal("FIN not marked sent")
	}
	// Peer acks data + FIN (ack = 100 data + 1 FIN).
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 101, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if !res.FinAcked || !st.FinAcked() {
		t.Fatalf("FIN ack = %+v", res)
	}
	if st.TxSent != 0 {
		t.Fatalf("TxSent = %d", st.TxSent)
	}
}

func TestFINReceive(t *testing.T) {
	st, post := newConn(4096)
	// Data + FIN in one segment.
	seg := dataSeg(0, 50, 0, 32)
	seg.Flags |= packet.FlagFIN
	res := ProcessRX(st, post, seg, 0)
	if !res.FinRx || !st.FinRx() {
		t.Fatalf("FIN not consumed: %+v", res)
	}
	if st.Ack != 51 { // 50 data + 1 FIN
		t.Fatalf("ack = %d", st.Ack)
	}
	if res.AckAck != 51 {
		t.Fatalf("generated ack = %d", res.AckAck)
	}
}

func TestFINOutOfOrderConsumed(t *testing.T) {
	st, post := newConn(4096)
	// FIN arrives with a hole before it: remembered, not yet consumable.
	seg := dataSeg(100, 50, 0, 32)
	seg.Flags |= packet.FlagFIN
	res := ProcessRX(st, post, seg, 0)
	if res.FinRx || st.FinRx() {
		t.Fatal("FIN consumed despite hole")
	}
	if !res.SendAck || res.AckAck != 0 {
		t.Fatalf("ack = %+v", res)
	}
	// Filling the hole merges the interval AND consumes the remembered
	// FIN, without any FIN retransmission.
	res = ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if !res.FinRx || !st.FinRx() {
		t.Fatalf("remembered FIN not consumed on merge: %+v", res)
	}
	if st.Ack != 151 { // 150 data + 1 FIN
		t.Fatalf("ack = %d", st.Ack)
	}
	if res.AckAck != 151 || res.NewInOrder != 150 {
		t.Fatalf("merge result = %+v", res)
	}
	// A late FIN retransmission is now a harmless duplicate.
	seg2 := &SegInfo{Seq: 150, Ack: 0, Flags: packet.FlagACK | packet.FlagFIN, Window: 32}
	res = ProcessRX(st, post, seg2, 0)
	if res.FinRx || st.Ack != 151 {
		t.Fatalf("duplicate FIN: %+v ack=%d", res, st.Ack)
	}
}

func TestFINOutOfOrderBareFIN(t *testing.T) {
	// A bare FIN (no payload) beyond a hole is remembered too.
	st, post := newConn(4096)
	st.OOOCap = 4
	ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0) // [100,200) OOO
	fin := &SegInfo{Seq: 200, Ack: 0, Flags: packet.FlagACK | packet.FlagFIN, Window: 32}
	if res := ProcessRX(st, post, fin, 0); res.FinRx {
		t.Fatal("bare OOO FIN consumed early")
	}
	res := ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if !res.FinRx || st.Ack != 201 {
		t.Fatalf("bare OOO FIN not consumed on merge: %+v ack=%d", res, st.Ack)
	}
}

func TestFINOutOfOrderBogusBeyondWindow(t *testing.T) {
	// A FIN claiming a slot beyond the receive window must not park a
	// marker that could wedge or corrupt the stream.
	st, post := newConn(256)
	fin := &SegInfo{Seq: 10_000, Ack: 0, Flags: packet.FlagACK | packet.FlagFIN, Window: 32}
	ProcessRX(st, post, fin, 0)
	// Stream proceeds normally past the bogus marker.
	for i := uint32(0); i < 4; i++ {
		res := ProcessRX(st, post, dataSeg(i*64, 64, 0, 32), 0)
		if res.FinRx {
			t.Fatalf("bogus FIN consumed at %d", i*64)
		}
		ProcessHC(st, post, HCOp{Kind: HCRxConsumed, Bytes: res.NewInOrder})
	}
	if st.Ack != 256 || st.FinRx() {
		t.Fatalf("state = %+v", st)
	}
}

func TestGoBackNRestoresFIN(t *testing.T) {
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessHC(st, post, HCOp{Kind: HCFin})
	ProcessTX(st, post, 1448, 0) // data+FIN out
	ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	if st.FinSent() {
		t.Fatal("FIN still marked sent after go-back-N")
	}
	seg, ok := ProcessTX(st, post, 1448, 0)
	if !ok || !seg.FIN || seg.Len != 100 || seg.Seq != 0 {
		t.Fatalf("retransmitted FIN segment = %+v", seg)
	}
}

func TestECNFeedback(t *testing.T) {
	st, post := newConn(4096)
	seg := dataSeg(0, 100, 0, 32)
	seg.ECNCE = true
	res := ProcessRX(st, post, seg, 0)
	if !res.AckECE {
		t.Fatal("CE mark not echoed as ECE")
	}
	// Sender side: ECE-marked ack attributes acked bytes to ECN counter.
	st2, post2 := newConn(4096)
	ProcessHC(st2, post2, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st2, post2, 1448, 0)
	ack := &SegInfo{Seq: 0, Ack: 1000, Flags: packet.FlagACK | packet.FlagECE, Window: st2.RemoteWin}
	ProcessRX(st2, post2, ack, 0)
	if post2.CntECNB != 1000 || post2.CntACKB != 1000 {
		t.Fatalf("ECN accounting: ackb=%d ecnb=%d", post2.CntACKB, post2.CntECNB)
	}
}

func TestTimestampRTTEstimate(t *testing.T) {
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessTX(st, post, 1448, 0)
	ack := &SegInfo{Seq: 0, Ack: 100, Flags: packet.FlagACK, Window: st.RemoteWin,
		HasTS: true, TSVal: 500, TSEcr: 1000}
	ProcessRX(st, post, ack, 1025) // now=1025us, echoed send time 1000 => 25us
	if post.RTTEst != 25 {
		t.Fatalf("RTTEst = %d", post.RTTEst)
	}
	if st.NextTS != 500 {
		t.Fatalf("NextTS = %d", st.NextTS)
	}
	// EWMA update: 25 + (105-25)/8 = 35.
	ack2 := &SegInfo{Seq: 0, Ack: 100, Flags: packet.FlagACK, Window: st.RemoteWin,
		HasTS: true, TSVal: 501, TSEcr: 1000, PayloadLen: 0}
	ProcessRX(st, post, ack2, 1105)
	if post.RTTEst != 35 {
		t.Fatalf("RTTEst after EWMA = %d", post.RTTEst)
	}
}

func TestLocalWindowScaling(t *testing.T) {
	st, _ := newConn(1 << 20)
	if st.LocalWindow() != (1<<20)>>WindowScale {
		t.Fatalf("LocalWindow = %d", st.LocalWindow())
	}
	st.RxAvail = 1 << 30 // larger than representable
	if st.LocalWindow() != 0xffff {
		t.Fatalf("LocalWindow clamp = %d", st.LocalWindow())
	}
	st.RxAvail = 100 // below one window unit
	if st.LocalWindow() != 0 {
		t.Fatalf("LocalWindow floor = %d", st.LocalWindow())
	}
}

func TestRXMultiIntervalReassembly(t *testing.T) {
	st, post := newConn(4096)
	st.OOOCap = 4
	// Three disjoint holes: all accepted, sorted.
	r1 := ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0) // [100,200)
	r2 := ProcessRX(st, post, dataSeg(500, 100, 0, 32), 0) // [500,600)
	r3 := ProcessRX(st, post, dataSeg(300, 100, 0, 32), 0) // [300,400)
	if !r1.WasOOO || !r2.WasOOO || !r3.WasOOO {
		t.Fatalf("OOO accepts: %v %v %v", r1.WasOOO, r2.WasOOO, r3.WasOOO)
	}
	if r1.OOODropAvoided {
		t.Fatal("first interval cannot be a drop avoided")
	}
	if !r2.OOODropAvoided || !r3.OOODropAvoided {
		t.Fatalf("disjoint accepts must count as drops avoided: %v %v", r2.OOODropAvoided, r3.OOODropAvoided)
	}
	if r3.OOOIvs != 3 {
		t.Fatalf("occupancy = %d", r3.OOOIvs)
	}
	want := []SeqInterval{{100, 200}, {300, 400}, {500, 600}}
	for i, iv := range st.OOOIntervals() {
		if iv != want[i] {
			t.Fatalf("interval set = %v", st.OOOIntervals())
		}
	}
	// A bridging segment coalesces the middle: [200,500) merges all three.
	r := ProcessRX(st, post, dataSeg(200, 300, 0, 32), 0)
	if !r.WasOOO || r.OOOMerged != 2 || st.OOOCnt != 1 || st.OOO[0] != (SeqInterval{100, 600}) {
		t.Fatalf("bridge: %+v set %v", r, st.OOOIntervals())
	}
	// The head fill delivers everything in one in-order advance.
	r = ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if r.NewInOrder != 600 || st.Ack != 600 || st.OOOCnt != 0 {
		t.Fatalf("fill: %+v set %v ack %d", r, st.OOOIntervals(), st.Ack)
	}
	if st.RxAvail != 4096-600 || st.RxPos != 600 {
		t.Fatalf("state = %+v", st)
	}
}

func TestRXMultiIntervalCapacity(t *testing.T) {
	st, post := newConn(4096)
	st.OOOCap = 4
	for i := uint32(0); i < 4; i++ {
		if res := ProcessRX(st, post, dataSeg(100+200*i, 100, 0, 32), 0); !res.WasOOO {
			t.Fatalf("interval %d rejected", i)
		}
	}
	// Fifth disjoint interval: set full, dropped.
	res := ProcessRX(st, post, dataSeg(2000, 100, 0, 32), 0)
	if !res.OOODrop || !res.Drop || st.OOOCnt != 4 {
		t.Fatalf("over-capacity segment = %+v set %v", res, st.OOOIntervals())
	}
	if !res.SendAck || res.AckAck != 0 {
		t.Fatalf("drop must re-ack expected seq: %+v", res)
	}
	// Extending a tracked interval still works at capacity.
	if res := ProcessRX(st, post, dataSeg(200, 50, 0, 32), 0); !res.WasOOO || st.OOOCnt != 4 {
		t.Fatalf("extension at capacity = %+v", res)
	}
}

func TestRXSingleIntervalPolicyDefault(t *testing.T) {
	// OOOCap zero value must reproduce the paper's single interval.
	st, post := newConn(4096)
	ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0)
	res := ProcessRX(st, post, dataSeg(400, 100, 0, 32), 0)
	if !res.OOODrop || st.OOOCnt != 1 {
		t.Fatalf("default capacity not 1: %+v set %v", res, st.OOOIntervals())
	}
}

func TestGoBackNWrapsTxPosAtBufferBoundary(t *testing.T) {
	st, post := newConn(256)
	// First lap: send and ack 200 bytes.
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 200})
	for {
		if _, ok := ProcessTX(st, post, 128, 0); !ok {
			break
		}
	}
	ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 200, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	// Second lap crosses the TX buffer boundary: positions 200..400 wrap.
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 200})
	var segs []TXResult
	for {
		seg, ok := ProcessTX(st, post, 128, 0)
		if !ok {
			break
		}
		segs = append(segs, seg)
	}
	if len(segs) != 2 || segs[0].BufPos != 200 || segs[1].BufPos != (200+128)&255 {
		t.Fatalf("segments = %+v", segs)
	}
	if st.TxPos != 400&255 {
		t.Fatalf("TxPos = %d, want %d", st.TxPos, 400&255)
	}
	// Fast retransmit rewinds across the boundary: TxPos must land on
	// SND.UNA's buffer offset, already wrapped.
	ack := &SegInfo{Seq: 0, Ack: 200, Flags: packet.FlagACK, Window: st.RemoteWin}
	var last RXResult
	for i := 0; i < 3; i++ {
		last = ProcessRX(st, post, ack, 0)
	}
	if !last.FastRetransmit {
		t.Fatal("no fast retransmit")
	}
	if st.TxPos != 200 {
		t.Fatalf("TxPos after go-back-N = %d, want 200", st.TxPos)
	}
	if seg, ok := ProcessTX(st, post, 128, 0); !ok || seg.BufPos != 200 || seg.Seq != 200 {
		t.Fatalf("retransmission = %+v ok=%v", seg, ok)
	}
}

func TestAckBeyondSndNxtAfterReset(t *testing.T) {
	// After go-back-N rewinds Seq, a cumulative ack for data sent before
	// the reset arrives "from the future". It must advance SND.UNA and
	// skip retransmitting the covered bytes, not be discarded.
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 1448, 0)
	ProcessHC(st, post, HCOp{Kind: HCRetransmit}) // RTO: Seq back to 0
	if st.Seq != 0 || st.TxAvail != 1000 {
		t.Fatalf("reset state = %+v", st)
	}
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 1000, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 1000 {
		t.Fatalf("AckedBytes = %d", res.AckedBytes)
	}
	if st.Seq != 1000 || st.TxAvail != 0 || st.TxSent != 0 || st.TxPos != 1000 {
		t.Fatalf("state = %+v", st)
	}
	if post.CntACKB != 1000 {
		t.Fatalf("CntACKB = %d", post.CntACKB)
	}
}

func TestAckBeyondSndNxtPartial(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 1448, 0)
	ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	// Only the first 400 bytes of the pre-reset transmission arrived.
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 400, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 400 || st.Seq != 400 || st.TxAvail != 600 {
		t.Fatalf("partial: %+v state %+v", res, st)
	}
	// Retransmission resumes exactly at the ack point.
	if seg, ok := ProcessTX(st, post, 1448, 0); !ok || seg.Seq != 400 || seg.Len != 600 {
		t.Fatalf("resume = %+v ok=%v", seg, ok)
	}
}

func TestAckBeyondStagedDataIgnored(t *testing.T) {
	// An ack past everything ever staged is bogus and must not corrupt
	// sender state.
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 1448, 0)
	before := *st
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 5000, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 0 {
		t.Fatalf("bogus ack accepted: %+v", res)
	}
	if st.Seq != before.Seq || st.TxSent != before.TxSent || st.TxAvail != before.TxAvail {
		t.Fatalf("state mutated: %+v", st)
	}
}

func TestAckOfRewoundFin(t *testing.T) {
	// FIN sent, go-back-N rewinds it to pending, then the old copy's ack
	// (data + FIN slot) arrives: both the data and the FIN are done.
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessHC(st, post, HCOp{Kind: HCFin})
	ProcessTX(st, post, 1448, 0) // data+FIN out
	ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	if st.FinSent() {
		t.Fatal("FIN still marked sent after go-back-N")
	}
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 101, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if !res.FinAcked || !st.FinAcked() || res.AckedBytes != 100 {
		t.Fatalf("rewound FIN ack: %+v state %+v", res, st)
	}
	// No FIN retransmission must follow.
	if seg, ok := ProcessTX(st, post, 1448, 0); ok {
		t.Fatalf("unexpected segment after acked FIN: %+v", seg)
	}
}

func TestMarshalOOOExtension(t *testing.T) {
	st, post := newConn(4096)
	st.OOOCap = 4
	ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0)
	ProcessRX(st, post, dataSeg(300, 100, 0, 32), 0)
	b := st.MarshalTable5()
	if len(b) != 43 {
		t.Fatalf("Table 5 size changed: %d", len(b))
	}
	// Head interval rides in the paper's ooo_start/ooo_len slots.
	if start := uint32(b[30])<<24 | uint32(b[31])<<16 | uint32(b[32])<<8 | uint32(b[33]); start != 100 {
		t.Fatalf("marshalled head start = %d", start)
	}
	if l := uint32(b[34])<<24 | uint32(b[35])<<16 | uint32(b[36])<<8 | uint32(b[37]); l != 100 {
		t.Fatalf("marshalled head len = %d", l)
	}
	if ext := st.MarshalOOOExtension(); len(ext) != 8 {
		t.Fatalf("extension = %d bytes, want 8", len(ext))
	}
	// The paper's N=1 configuration stays exactly in budget.
	st2, _ := newConn(4096)
	if ext := st2.MarshalOOOExtension(); len(ext) != 0 {
		t.Fatalf("N=1 extension = %d bytes, want 0", len(ext))
	}
}

// sackConn builds a connection pair state with SACK negotiated.
func sackConn(bufSize uint32) (*ProtoState, *PostState) {
	st, post := newConn(bufSize)
	st.SetSACKPerm(true)
	st.OOOCap = 4
	return st, post
}

func TestSACKEmissionFromIntervalSet(t *testing.T) {
	st, post := sackConn(4096)
	ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0) // [100,200)
	res := ProcessRX(st, post, dataSeg(300, 100, 0, 32), 0)
	if res.AckSACKCnt != 2 {
		t.Fatalf("SACK blocks = %d", res.AckSACKCnt)
	}
	// Most recently received interval leads (RFC 2018).
	if res.AckSACK[0] != (SeqInterval{300, 400}) || res.AckSACK[1] != (SeqInterval{100, 200}) {
		t.Fatalf("blocks = %v", res.AckSACK[:2])
	}
	// In-order fill: the merged tail remains advertised until consumed.
	res = ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if res.AckSACKCnt != 1 || res.AckSACK[0] != (SeqInterval{300, 400}) {
		t.Fatalf("after fill: %d %v", res.AckSACKCnt, res.AckSACK[:res.AckSACKCnt])
	}
	// Without negotiation, no blocks leave the receiver.
	st2, post2 := newConn(4096)
	st2.OOOCap = 4
	if res := ProcessRX(st2, post2, dataSeg(100, 100, 0, 32), 0); res.AckSACKCnt != 0 {
		t.Fatalf("un-negotiated SACK emitted: %d", res.AckSACKCnt)
	}
}

func TestSACKWindowUpdateCarriesBlocks(t *testing.T) {
	st, post := sackConn(4096)
	ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0)
	res := WindowUpdateAck(st)
	if res.AckSACKCnt != 1 || res.AckSACK[0] != (SeqInterval{100, 200}) {
		t.Fatalf("window update SACK = %d %v", res.AckSACKCnt, res.AckSACK[:res.AckSACKCnt])
	}
}

// stageAndSend prepares a sender with n bytes transmitted in mss chunks.
func stageAndSend(st *ProtoState, post *PostState, n, mss uint32) {
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: n})
	for {
		if _, ok := ProcessTX(st, post, mss, 0); !ok {
			break
		}
	}
}

// dupAckSACK builds a duplicate ACK carrying SACK blocks.
func dupAckSACK(ack uint32, win uint16, blocks ...SeqInterval) *SegInfo {
	seg := &SegInfo{Seq: 0, Ack: ack, Flags: packet.FlagACK, Window: win}
	seg.SACKCnt = uint8(copy(seg.SACK[:], blocks))
	return seg
}

func TestSACKSelectiveRetransmit(t *testing.T) {
	st, post := sackConn(8192)
	stageAndSend(st, post, 2500, 500) // five 500-byte segments
	// Segments 1 and 3 ([500,1000) and [1500,2000)) lost. The peer acks
	// segment 0 cumulatively, then SACKs the rest across three duplicate
	// ACKs.
	ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 500, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	ack := dupAckSACK(500, st.RemoteWin, SeqInterval{1000, 1500})
	r1 := ProcessRX(st, post, ack, 0)
	ack2 := dupAckSACK(500, st.RemoteWin, SeqInterval{1000, 1500}, SeqInterval{2000, 2500})
	r2 := ProcessRX(st, post, ack2, 0)
	r3 := ProcessRX(st, post, ack2, 0)
	if !r1.DupAck || !r2.DupAck || !r3.DupAck {
		t.Fatalf("dupacks: %v %v %v", r1.DupAck, r2.DupAck, r3.DupAck)
	}
	if !r3.FastRetransmit || !r3.SACKRetransmit {
		t.Fatalf("third dupack: %+v", r3)
	}
	// No go-back-N: transmission state intact.
	if st.Seq != 2500 || st.TxSent != 2000 || st.TxAvail != 0 {
		t.Fatalf("state reset despite SACK: %+v", st)
	}
	if got := RetxPending(st); got != 1000 {
		t.Fatalf("RetxPending = %d, want 1000", got)
	}
	// ProcessTX drains exactly the two holes, marked as retransmits.
	seg1, ok1 := ProcessTX(st, post, 1448, 0)
	seg2, ok2 := ProcessTX(st, post, 1448, 0)
	if !ok1 || !ok2 {
		t.Fatal("retransmit segments not emitted")
	}
	if !seg1.Retransmit || seg1.Seq != 500 || seg1.Len != 500 || seg1.BufPos != 500 {
		t.Fatalf("first repair = %+v", seg1)
	}
	if !seg2.Retransmit || seg2.Seq != 1500 || seg2.Len != 500 || seg2.BufPos != 1500 {
		t.Fatalf("second repair = %+v", seg2)
	}
	if seg1.RetxBytes != 500 || seg2.RetxBytes != 500 {
		t.Fatalf("retx accounting: %d %d", seg1.RetxBytes, seg2.RetxBytes)
	}
	// Nothing else to send.
	if seg, ok := ProcessTX(st, post, 1448, 0); ok {
		t.Fatalf("unexpected segment: %+v", seg)
	}
	// The repairs land: peer acks everything; scoreboard drains.
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 2500, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 2000 || st.SACKCnt != 0 || st.TxSent != 0 {
		t.Fatalf("final ack: %+v state %+v", res, st)
	}
}

func TestSACKRetransmitChunksLargeHole(t *testing.T) {
	st, post := sackConn(8192)
	stageAndSend(st, post, 4000, 1000)
	// First 3000 bytes lost, tail SACKed: the single hole spans 3 MSS.
	ack := dupAckSACK(0, st.RemoteWin, SeqInterval{3000, 4000})
	for i := 0; i < 3; i++ {
		ProcessRX(st, post, ack, 0)
	}
	var lens []uint32
	for {
		seg, ok := ProcessTX(st, post, 1448, 0)
		if !ok {
			break
		}
		if !seg.Retransmit {
			t.Fatalf("non-retransmit segment: %+v", seg)
		}
		lens = append(lens, seg.Len)
	}
	if len(lens) != 3 || lens[0] != 1448 || lens[1] != 1448 || lens[2] != 104 {
		t.Fatalf("chunks = %v", lens)
	}
}

func TestSACKNotNegotiatedFallsBackToGBN(t *testing.T) {
	st, post := newConn(8192) // no SACK
	stageAndSend(st, post, 2500, 500)
	// Peer erroneously sends SACK blocks: ignored, go-back-N on dupacks.
	ack := dupAckSACK(0, st.RemoteWin, SeqInterval{1000, 1500})
	var last RXResult
	for i := 0; i < 3; i++ {
		last = ProcessRX(st, post, ack, 0)
	}
	if !last.FastRetransmit || last.SACKRetransmit {
		t.Fatalf("expected GBN fallback: %+v", last)
	}
	if st.Seq != 0 || st.TxAvail != 2500 || st.SACKCnt != 0 {
		t.Fatalf("state = %+v", st)
	}
}

func TestSACKScoreboardOverflowReneges(t *testing.T) {
	st, post := sackConn(65536)
	stageAndSend(st, post, 20000, 1000)
	// Disjoint blocks accumulate across successive ACKs (a peer with a
	// deeper reassembly set than our 4-slot scoreboard): the fifth block
	// cannot be held, so the scoreboard understates what the peer holds
	// and recovery must fall back to go-back-N.
	r1 := ProcessRX(st, post, dupAckSACK(0, st.RemoteWin,
		SeqInterval{1000, 2000}, SeqInterval{3000, 4000}, SeqInterval{5000, 6000}, SeqInterval{7000, 8000}), 0)
	if !r1.DupAck || st.SACKCnt != 4 {
		t.Fatalf("setup: %+v scoreboard %v", r1, st.SACKIntervals())
	}
	second := ProcessRX(st, post, dupAckSACK(0, st.RemoteWin, SeqInterval{9000, 10000}), 0)
	if !second.SACKReneged {
		t.Fatalf("fifth disjoint block must report the renege: %+v", second)
	}
	third := ProcessRX(st, post, dupAckSACK(0, st.RemoteWin, SeqInterval{9000, 10000}), 0)
	if third.SACKReneged {
		t.Fatalf("renege already reported; repeat overflow must not re-count: %+v", third)
	}
	if !third.FastRetransmit || third.SACKRetransmit {
		t.Fatalf("overflowed scoreboard must fall back to GBN: %+v", third)
	}
	if st.Seq != 0 || st.SACKCnt != 0 || st.RetxCnt != 0 {
		t.Fatalf("state after fallback: seq=%d sack=%d retx=%d", st.Seq, st.SACKCnt, st.RetxCnt)
	}
}

func TestSACKScoreboardTrimsOnCumulativeAck(t *testing.T) {
	st, post := sackConn(8192)
	stageAndSend(st, post, 3000, 500)
	ProcessRX(st, post, dupAckSACK(0, st.RemoteWin, SeqInterval{1000, 1500}, SeqInterval{2000, 2500}), 0)
	if st.SACKCnt != 2 {
		t.Fatalf("scoreboard = %v", st.SACKIntervals())
	}
	// Cumulative ack covering the first block trims it away.
	ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 1500, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if st.SACKCnt != 1 || st.SACKScore[0] != (SeqInterval{2000, 2500}) {
		t.Fatalf("scoreboard after trim = %v", st.SACKIntervals())
	}
}

func TestSACKBlocksBeyondSndMaxIgnored(t *testing.T) {
	st, post := sackConn(8192)
	stageAndSend(st, post, 1000, 500)
	ProcessRX(st, post, dupAckSACK(0, st.RemoteWin, SeqInterval{500, 9000}), 0)
	if st.SACKCnt != 1 || st.SACKScore[0] != (SeqInterval{500, 1000}) {
		t.Fatalf("scoreboard = %v (blocks must clamp to SND.MAX)", st.SACKIntervals())
	}
}

func TestRTOClearsScoreboardAndQueue(t *testing.T) {
	st, post := sackConn(8192)
	stageAndSend(st, post, 2500, 500)
	ack := dupAckSACK(0, st.RemoteWin, SeqInterval{1000, 1500})
	for i := 0; i < 3; i++ {
		ProcessRX(st, post, ack, 0)
	}
	if st.SACKCnt == 0 || st.RetxCnt == 0 {
		t.Fatalf("setup: %+v", st)
	}
	// RTO: RFC 2018 reneging rule — discard the scoreboard, go-back-N.
	res := ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	if !res.Reset || st.SACKCnt != 0 || st.RetxCnt != 0 || st.Seq != 0 {
		t.Fatalf("RTO state = %+v res %+v", st, res)
	}
}

func TestSendableBytesIncludesRetxQueue(t *testing.T) {
	st, post := sackConn(8192)
	stageAndSend(st, post, 2500, 500)
	// Remote window exhausted by in-flight data, but repairs must still
	// be visible to the flow scheduler.
	st.RemoteWin = 2500 >> WindowScale
	ack := dupAckSACK(0, st.RemoteWin, SeqInterval{1000, 1500})
	for i := 0; i < 3; i++ {
		ProcessRX(st, post, ack, 0)
	}
	if got := SendableBytes(st, 0); got != RetxPending(st) || got == 0 {
		t.Fatalf("SendableBytes = %d, retx pending %d", got, RetxPending(st))
	}
}

func TestZeroWindowProbeElicitsWindowUpdate(t *testing.T) {
	// The persist-timer probe: one already-delivered byte at SND.NXT-1.
	// The receiver discards it and re-ACKs its current window, repairing
	// a lost window update (RFC 9293 §3.8.6.1).
	st, post := newConn(256)
	res := ProcessRX(st, post, dataSeg(0, 256, 0, 32), 0)
	if res.NewInOrder != 256 || st.LocalWindow() != 0 {
		t.Fatalf("setup: %+v win=%d", res, st.LocalWindow())
	}
	// Probe while the window is closed: re-ACKed, window still 0.
	probe := dataSeg(255, 1, 0, 32)
	res = ProcessRX(st, post, probe, 0)
	if !res.Drop || !res.SendAck || res.AckAck != 256 || res.AckWin != 0 {
		t.Fatalf("probe at zero window: %+v", res)
	}
	// The application drains the buffer; the next probe's ACK carries the
	// reopened window even though the original window update was lost.
	ProcessHC(st, post, HCOp{Kind: HCRxConsumed, Bytes: 256})
	res = ProcessRX(st, post, probe, 0)
	if !res.Drop || !res.SendAck || res.AckWin != st.LocalWindow() || res.AckWin == 0 {
		t.Fatalf("probe after drain: %+v", res)
	}
}

func TestAckOfStagedButNeverTransmittedIgnored(t *testing.T) {
	// An ack between SND.NXT and the staged-data horizon, with no reset
	// having happened, covers bytes that were never on the wire: SND.MAX
	// bounds acceptance, so it must be ignored (accepting it would skip
	// transmitting those bytes and silently corrupt the stream).
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 500, 0) // 500 of 1000 staged bytes transmitted
	if st.Seq != 500 || st.TxMax != 500 || st.TxAvail != 500 {
		t.Fatalf("setup state = %+v", st)
	}
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 800, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 0 || st.Seq != 500 || st.TxAvail != 500 {
		t.Fatalf("ack of untransmitted bytes accepted: %+v state %+v", res, st)
	}
	// After a reset, the same ack value is within SND.MAX and valid.
	ProcessTX(st, post, 500, 0) // transmit the rest: SND.MAX = 1000
	ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	res = ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 800, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 800 || st.Seq != 800 {
		t.Fatalf("post-reset ack rejected: %+v state %+v", res, st)
	}
}

func TestAckOfNeverTransmittedFinIgnored(t *testing.T) {
	// FIN requested but not yet on the wire: a bogus ack of its future
	// sequence slot must not mark it acked (that would suppress the FIN
	// transmission forever and wedge the close).
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessTX(st, post, 1448, 0)
	ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 100, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	ProcessHC(st, post, HCOp{Kind: HCFin}) // pending, never transmitted
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 101, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.FinAcked || st.FinAcked() {
		t.Fatalf("never-transmitted FIN marked acked: %+v state %+v", res, st)
	}
	// The FIN must still go out.
	if seg, ok := ProcessTX(st, post, 1448, 0); !ok || !seg.FIN {
		t.Fatalf("FIN not transmitted: %+v ok=%v", seg, ok)
	}
}

package tcpseg

import (
	"testing"

	"flextoe/internal/packet"
)

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b uint32
		lt   bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0, 0, false},
		{0xffffffff, 0, true},  // wraparound
		{0, 0xffffffff, false}, // wraparound
		{0x7fffffff, 0x80000000, true},
		{0xfffffff0, 0x10, true},
	}
	for _, c := range cases {
		if got := SeqLT(c.a, c.b); got != c.lt {
			t.Errorf("SeqLT(%#x, %#x) = %v", c.a, c.b, got)
		}
		if got := SeqGEQ(c.a, c.b); got == c.lt {
			t.Errorf("SeqGEQ(%#x, %#x) = %v", c.a, c.b, got)
		}
	}
	if SeqDiff(5, 3) != 2 || SeqDiff(3, 5) != -2 {
		t.Fatal("SeqDiff")
	}
	if SeqDiff(2, 0xffffffff) != 3 {
		t.Fatal("SeqDiff wraparound")
	}
	if SeqMax(0xfffffffe, 2) != 2 || SeqMin(0xfffffffe, 2) != 0xfffffffe {
		t.Fatal("SeqMax/SeqMin wraparound")
	}
}

func TestTable5StateSizes(t *testing.T) {
	// The paper's Table 5: pre 15 B, protocol 43 B, post 51 B.
	var pre PreState
	var proto ProtoState
	var post PostState
	if n := len(pre.MarshalTable5()); n != 15 {
		t.Errorf("pre-processor partition = %d B, want 15", n)
	}
	if n := len(proto.MarshalTable5()); n != 43 {
		t.Errorf("protocol partition = %d B, want 43", n)
	}
	if n := len(post.MarshalTable5()); n != 51 {
		t.Errorf("post-processor partition = %d B, want 51", n)
	}
	// Paper reports a 108 B total from raw bit widths; byte-aligned
	// packing gives 109.
	if TotalTable5Bytes != 109 {
		t.Errorf("total = %d B", TotalTable5Bytes)
	}
}

func newConn(bufSize uint32) (*ProtoState, *PostState) {
	st := &ProtoState{
		RxAvail:   bufSize,
		RemoteWin: uint16(bufSize >> WindowScale),
	}
	post := &PostState{RxSize: bufSize, TxSize: bufSize}
	return st, post
}

func dataSeg(seq uint32, n uint32, ack uint32, win uint16) *SegInfo {
	return &SegInfo{
		Seq: seq, Ack: ack, Flags: packet.FlagACK | packet.FlagPSH,
		Window: win, PayloadLen: n,
	}
}

func TestRXInOrderDelivery(t *testing.T) {
	st, post := newConn(4096)
	res := ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if res.Drop {
		t.Fatal("in-order segment dropped")
	}
	if res.WriteLen != 100 || res.WritePos != 0 || res.WriteOff != 0 {
		t.Fatalf("placement = %+v", res)
	}
	if res.NewInOrder != 100 {
		t.Fatalf("NewInOrder = %d", res.NewInOrder)
	}
	if !res.SendAck || res.AckAck != 100 {
		t.Fatalf("ack = %+v", res)
	}
	if st.Ack != 100 || st.RxPos != 100 || st.RxAvail != 4096-100 {
		t.Fatalf("state = %+v", st)
	}
}

func TestRXOutOfOrderSingleInterval(t *testing.T) {
	st, post := newConn(4096)
	// Segment 2 arrives first: tracked as the OOO interval.
	res := ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0)
	if !res.WasOOO {
		t.Fatalf("expected OOO accept: %+v", res)
	}
	if res.WritePos != 100 || res.WriteLen != 100 {
		t.Fatalf("OOO placement = %+v", res)
	}
	if res.AckAck != 0 {
		t.Fatalf("OOO ack should repeat expected seq: %+v", res)
	}
	if st.OOOCnt != 1 || st.OOO[0] != (SeqInterval{100, 200}) {
		t.Fatalf("interval set = %v", st.OOOIntervals())
	}
	// Segment 1 arrives: delivers both.
	res = ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if res.NewInOrder != 200 {
		t.Fatalf("NewInOrder = %d", res.NewInOrder)
	}
	if res.OOOMerged != 1 {
		t.Fatalf("OOOMerged = %d", res.OOOMerged)
	}
	if st.Ack != 200 || st.OOOCnt != 0 {
		t.Fatalf("state = %+v", st)
	}
	if st.RxAvail != 4096-200 {
		t.Fatalf("RxAvail = %d", st.RxAvail)
	}
}

func TestRXOOOIntervalExtension(t *testing.T) {
	st, post := newConn(4096)
	ProcessRX(st, post, dataSeg(200, 100, 0, 32), 0) // [200,300)
	// Adjacent after: extends.
	res := ProcessRX(st, post, dataSeg(300, 50, 0, 32), 0)
	if !res.WasOOO || st.OOOCnt != 1 || st.OOO[0] != (SeqInterval{200, 350}) {
		t.Fatalf("extension failed: %+v interval set %v", res, st.OOOIntervals())
	}
	// Adjacent before: extends.
	res = ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0)
	if !res.WasOOO || st.OOOCnt != 1 || st.OOO[0] != (SeqInterval{100, 350}) {
		t.Fatalf("front extension failed: interval set %v", st.OOOIntervals())
	}
	// Disjoint: dropped with an ACK for the expected sequence number.
	res = ProcessRX(st, post, dataSeg(500, 100, 0, 32), 0)
	if !res.OOODrop || !res.Drop {
		t.Fatalf("disjoint segment not dropped: %+v", res)
	}
	if !res.SendAck || res.AckAck != 0 {
		t.Fatalf("disjoint drop must ack expected seq: %+v", res)
	}
}

func TestRXDuplicateData(t *testing.T) {
	st, post := newConn(4096)
	ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	// Full duplicate: dropped, but re-ACKed.
	res := ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if !res.Drop || !res.SendAck || res.AckAck != 100 {
		t.Fatalf("duplicate handling = %+v", res)
	}
	// Partial overlap: only the new tail is placed.
	res = ProcessRX(st, post, dataSeg(50, 100, 0, 32), 0)
	if res.Drop {
		t.Fatal("partial overlap dropped entirely")
	}
	if res.WriteOff != 50 || res.WriteLen != 50 || res.WritePos != 100 {
		t.Fatalf("overlap placement = %+v", res)
	}
	if st.Ack != 150 {
		t.Fatalf("ack = %d", st.Ack)
	}
}

func TestRXWindowTrim(t *testing.T) {
	st, post := newConn(128)
	st.RxAvail = 100 // receive window of 100 bytes
	res := ProcessRX(st, post, dataSeg(0, 128, 0, 32), 0)
	if res.WriteLen != 100 {
		t.Fatalf("window trim: WriteLen = %d", res.WriteLen)
	}
	if st.Ack != 100 || st.RxAvail != 0 {
		t.Fatalf("state = %+v", st)
	}
	// Completely out of window now.
	res = ProcessRX(st, post, dataSeg(100, 50, 0, 32), 0)
	if !res.Drop || !res.SendAck {
		t.Fatalf("zero-window segment = %+v", res)
	}
}

func TestRXBufferWraparound(t *testing.T) {
	st, post := newConn(256)
	// Fill and consume to move RxPos near the end.
	ProcessRX(st, post, dataSeg(0, 200, 0, 32), 0)
	ProcessHC(st, post, HCOp{Kind: HCRxConsumed, Bytes: 200})
	res := ProcessRX(st, post, dataSeg(200, 100, 0, 32), 0)
	if res.WritePos != 200 || res.WriteLen != 100 {
		t.Fatalf("placement = %+v", res)
	}
	if st.RxPos != (200+100)&255 {
		t.Fatalf("RxPos = %d", st.RxPos)
	}
}

func TestTXSegmentation(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 3000})
	var segs []TXResult
	for {
		seg, ok := ProcessTX(st, post, 1448, 0)
		if !ok {
			break
		}
		segs = append(segs, seg)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	if segs[0].Len != 1448 || segs[1].Len != 1448 || segs[2].Len != 104 {
		t.Fatalf("lens = %d,%d,%d", segs[0].Len, segs[1].Len, segs[2].Len)
	}
	if segs[0].Seq != 0 || segs[1].Seq != 1448 || segs[2].Seq != 2896 {
		t.Fatal("sequence numbers wrong")
	}
	if st.TxSent != 3000 || st.TxAvail != 0 {
		t.Fatalf("state = %+v", st)
	}
}

func TestTXFlowControl(t *testing.T) {
	st, post := newConn(8192)
	st.RemoteWin = 2000 >> WindowScale // ~15 * 128 = 1920 bytes
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 5000})
	var total uint32
	for {
		seg, ok := ProcessTX(st, post, 1448, 0)
		if !ok {
			break
		}
		total += seg.Len
	}
	if total != st.RemoteWindowBytes() {
		t.Fatalf("sent %d, window %d", total, st.RemoteWindowBytes())
	}
}

func TestTXCongestionWindow(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 5000})
	var total uint32
	for {
		seg, ok := ProcessTX(st, post, 1448, 2000)
		if !ok {
			break
		}
		total += seg.Len
	}
	if total != 2000 {
		t.Fatalf("sent %d with cwnd 2000", total)
	}
	if SendableBytes(st, 2000) != 0 {
		t.Fatal("SendableBytes should be 0 at cwnd")
	}
}

func TestAckFreesTxBuffer(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 2000})
	ProcessTX(st, post, 1448, 0)
	ProcessTX(st, post, 1448, 0)
	// Peer acks the first segment.
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 1448, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 1448 {
		t.Fatalf("AckedBytes = %d", res.AckedBytes)
	}
	if st.TxSent != 552 {
		t.Fatalf("TxSent = %d", st.TxSent)
	}
	if post.CntACKB != 1448 {
		t.Fatalf("CntACKB = %d", post.CntACKB)
	}
}

func TestDupAcksTriggerFastRetransmit(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 4000})
	for {
		if _, ok := ProcessTX(st, post, 1448, 0); !ok {
			break
		}
	}
	sentSeq := st.Seq
	ack := &SegInfo{Seq: 0, Ack: 0, Flags: packet.FlagACK, Window: st.RemoteWin}
	r1 := ProcessRX(st, post, ack, 0)
	r2 := ProcessRX(st, post, ack, 0)
	r3 := ProcessRX(st, post, ack, 0)
	if !r1.DupAck || !r2.DupAck || !r3.DupAck {
		t.Fatalf("dup acks not detected: %v %v %v", r1.DupAck, r2.DupAck, r3.DupAck)
	}
	if r1.FastRetransmit || r2.FastRetransmit {
		t.Fatal("fast retransmit too early")
	}
	if !r3.FastRetransmit {
		t.Fatal("no fast retransmit on third dup ack")
	}
	// Go-back-N: transmission state reset to UNA.
	if st.Seq != 0 || st.TxSent != 0 || st.TxAvail != 4000 {
		t.Fatalf("reset state = %+v", st)
	}
	if post.CntFRetx != 1 {
		t.Fatalf("CntFRetx = %d", post.CntFRetx)
	}
	// A fourth dup ack must not trigger again.
	r4 := ProcessRX(st, post, ack, 0)
	if r4.FastRetransmit {
		t.Fatal("fast retransmit re-triggered")
	}
	_ = sentSeq
}

func TestDupAckRequiresNoPayloadAndSameWindow(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 2000})
	ProcessTX(st, post, 1448, 0)
	// Window update is not a dup ack.
	seg := &SegInfo{Seq: 0, Ack: 0, Flags: packet.FlagACK, Window: st.RemoteWin + 1}
	if res := ProcessRX(st, post, seg, 0); res.DupAck {
		t.Fatal("window update counted as dup ack")
	}
	// Data-bearing segment is not a dup ack.
	seg2 := dataSeg(0, 10, 0, st.RemoteWin)
	if res := ProcessRX(st, post, seg2, 0); res.DupAck {
		t.Fatal("data segment counted as dup ack")
	}
}

func TestHCRetransmitReset(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 1448, 0)
	res := ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	if !res.Reset || !res.TxWindowOpened {
		t.Fatalf("HC retransmit = %+v", res)
	}
	if st.Seq != 0 || st.TxAvail != 1000 || st.TxSent != 0 {
		t.Fatalf("state = %+v", st)
	}
	// Idempotent when nothing is outstanding.
	res = ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	if res.Reset {
		// nothing sent since the reset, but TxAvail>0 means data is
		// pending, not sent — no reset should occur
		t.Fatal("reset with nothing outstanding")
	}
}

func TestFINHandshake(t *testing.T) {
	// Local side sends FIN after data; peer acks it.
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessHC(st, post, HCOp{Kind: HCFin})
	seg, ok := ProcessTX(st, post, 1448, 0)
	if !ok || !seg.FIN || seg.Len != 100 {
		t.Fatalf("FIN segment = %+v ok=%v", seg, ok)
	}
	if !st.FinSent() {
		t.Fatal("FIN not marked sent")
	}
	// Peer acks data + FIN (ack = 100 data + 1 FIN).
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 101, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if !res.FinAcked || !st.FinAcked() {
		t.Fatalf("FIN ack = %+v", res)
	}
	if st.TxSent != 0 {
		t.Fatalf("TxSent = %d", st.TxSent)
	}
}

func TestFINReceive(t *testing.T) {
	st, post := newConn(4096)
	// Data + FIN in one segment.
	seg := dataSeg(0, 50, 0, 32)
	seg.Flags |= packet.FlagFIN
	res := ProcessRX(st, post, seg, 0)
	if !res.FinRx || !st.FinRx() {
		t.Fatalf("FIN not consumed: %+v", res)
	}
	if st.Ack != 51 { // 50 data + 1 FIN
		t.Fatalf("ack = %d", st.Ack)
	}
	if res.AckAck != 51 {
		t.Fatalf("generated ack = %d", res.AckAck)
	}
}

func TestFINOutOfOrderNotConsumed(t *testing.T) {
	st, post := newConn(4096)
	// FIN arrives with a hole before it.
	seg := dataSeg(100, 50, 0, 32)
	seg.Flags |= packet.FlagFIN
	res := ProcessRX(st, post, seg, 0)
	if res.FinRx || st.FinRx() {
		t.Fatal("FIN consumed despite hole")
	}
	if !res.SendAck || res.AckAck != 0 {
		t.Fatalf("ack = %+v", res)
	}
	// Fill the hole; FIN is delivered by the retransmitted FIN segment
	// later (one-interval design does not remember the FIN bit).
	res = ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if st.Ack != 150 {
		t.Fatalf("ack = %d", st.Ack)
	}
	seg2 := &SegInfo{Seq: 150, Ack: 0, Flags: packet.FlagACK | packet.FlagFIN, Window: 32}
	res = ProcessRX(st, post, seg2, 0)
	if !res.FinRx || st.Ack != 151 {
		t.Fatalf("retransmitted FIN: %+v ack=%d", res, st.Ack)
	}
}

func TestGoBackNRestoresFIN(t *testing.T) {
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessHC(st, post, HCOp{Kind: HCFin})
	ProcessTX(st, post, 1448, 0) // data+FIN out
	ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	if st.FinSent() {
		t.Fatal("FIN still marked sent after go-back-N")
	}
	seg, ok := ProcessTX(st, post, 1448, 0)
	if !ok || !seg.FIN || seg.Len != 100 || seg.Seq != 0 {
		t.Fatalf("retransmitted FIN segment = %+v", seg)
	}
}

func TestECNFeedback(t *testing.T) {
	st, post := newConn(4096)
	seg := dataSeg(0, 100, 0, 32)
	seg.ECNCE = true
	res := ProcessRX(st, post, seg, 0)
	if !res.AckECE {
		t.Fatal("CE mark not echoed as ECE")
	}
	// Sender side: ECE-marked ack attributes acked bytes to ECN counter.
	st2, post2 := newConn(4096)
	ProcessHC(st2, post2, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st2, post2, 1448, 0)
	ack := &SegInfo{Seq: 0, Ack: 1000, Flags: packet.FlagACK | packet.FlagECE, Window: st2.RemoteWin}
	ProcessRX(st2, post2, ack, 0)
	if post2.CntECNB != 1000 || post2.CntACKB != 1000 {
		t.Fatalf("ECN accounting: ackb=%d ecnb=%d", post2.CntACKB, post2.CntECNB)
	}
}

func TestTimestampRTTEstimate(t *testing.T) {
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessTX(st, post, 1448, 0)
	ack := &SegInfo{Seq: 0, Ack: 100, Flags: packet.FlagACK, Window: st.RemoteWin,
		HasTS: true, TSVal: 500, TSEcr: 1000}
	ProcessRX(st, post, ack, 1025) // now=1025us, echoed send time 1000 => 25us
	if post.RTTEst != 25 {
		t.Fatalf("RTTEst = %d", post.RTTEst)
	}
	if st.NextTS != 500 {
		t.Fatalf("NextTS = %d", st.NextTS)
	}
	// EWMA update: 25 + (105-25)/8 = 35.
	ack2 := &SegInfo{Seq: 0, Ack: 100, Flags: packet.FlagACK, Window: st.RemoteWin,
		HasTS: true, TSVal: 501, TSEcr: 1000, PayloadLen: 0}
	ProcessRX(st, post, ack2, 1105)
	if post.RTTEst != 35 {
		t.Fatalf("RTTEst after EWMA = %d", post.RTTEst)
	}
}

func TestLocalWindowScaling(t *testing.T) {
	st, _ := newConn(1 << 20)
	if st.LocalWindow() != (1<<20)>>WindowScale {
		t.Fatalf("LocalWindow = %d", st.LocalWindow())
	}
	st.RxAvail = 1 << 30 // larger than representable
	if st.LocalWindow() != 0xffff {
		t.Fatalf("LocalWindow clamp = %d", st.LocalWindow())
	}
	st.RxAvail = 100 // below one window unit
	if st.LocalWindow() != 0 {
		t.Fatalf("LocalWindow floor = %d", st.LocalWindow())
	}
}

func TestRXMultiIntervalReassembly(t *testing.T) {
	st, post := newConn(4096)
	st.OOOCap = 4
	// Three disjoint holes: all accepted, sorted.
	r1 := ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0) // [100,200)
	r2 := ProcessRX(st, post, dataSeg(500, 100, 0, 32), 0) // [500,600)
	r3 := ProcessRX(st, post, dataSeg(300, 100, 0, 32), 0) // [300,400)
	if !r1.WasOOO || !r2.WasOOO || !r3.WasOOO {
		t.Fatalf("OOO accepts: %v %v %v", r1.WasOOO, r2.WasOOO, r3.WasOOO)
	}
	if r1.OOODropAvoided {
		t.Fatal("first interval cannot be a drop avoided")
	}
	if !r2.OOODropAvoided || !r3.OOODropAvoided {
		t.Fatalf("disjoint accepts must count as drops avoided: %v %v", r2.OOODropAvoided, r3.OOODropAvoided)
	}
	if r3.OOOIvs != 3 {
		t.Fatalf("occupancy = %d", r3.OOOIvs)
	}
	want := []SeqInterval{{100, 200}, {300, 400}, {500, 600}}
	for i, iv := range st.OOOIntervals() {
		if iv != want[i] {
			t.Fatalf("interval set = %v", st.OOOIntervals())
		}
	}
	// A bridging segment coalesces the middle: [200,500) merges all three.
	r := ProcessRX(st, post, dataSeg(200, 300, 0, 32), 0)
	if !r.WasOOO || r.OOOMerged != 2 || st.OOOCnt != 1 || st.OOO[0] != (SeqInterval{100, 600}) {
		t.Fatalf("bridge: %+v set %v", r, st.OOOIntervals())
	}
	// The head fill delivers everything in one in-order advance.
	r = ProcessRX(st, post, dataSeg(0, 100, 0, 32), 0)
	if r.NewInOrder != 600 || st.Ack != 600 || st.OOOCnt != 0 {
		t.Fatalf("fill: %+v set %v ack %d", r, st.OOOIntervals(), st.Ack)
	}
	if st.RxAvail != 4096-600 || st.RxPos != 600 {
		t.Fatalf("state = %+v", st)
	}
}

func TestRXMultiIntervalCapacity(t *testing.T) {
	st, post := newConn(4096)
	st.OOOCap = 4
	for i := uint32(0); i < 4; i++ {
		if res := ProcessRX(st, post, dataSeg(100+200*i, 100, 0, 32), 0); !res.WasOOO {
			t.Fatalf("interval %d rejected", i)
		}
	}
	// Fifth disjoint interval: set full, dropped.
	res := ProcessRX(st, post, dataSeg(2000, 100, 0, 32), 0)
	if !res.OOODrop || !res.Drop || st.OOOCnt != 4 {
		t.Fatalf("over-capacity segment = %+v set %v", res, st.OOOIntervals())
	}
	if !res.SendAck || res.AckAck != 0 {
		t.Fatalf("drop must re-ack expected seq: %+v", res)
	}
	// Extending a tracked interval still works at capacity.
	if res := ProcessRX(st, post, dataSeg(200, 50, 0, 32), 0); !res.WasOOO || st.OOOCnt != 4 {
		t.Fatalf("extension at capacity = %+v", res)
	}
}

func TestRXSingleIntervalPolicyDefault(t *testing.T) {
	// OOOCap zero value must reproduce the paper's single interval.
	st, post := newConn(4096)
	ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0)
	res := ProcessRX(st, post, dataSeg(400, 100, 0, 32), 0)
	if !res.OOODrop || st.OOOCnt != 1 {
		t.Fatalf("default capacity not 1: %+v set %v", res, st.OOOIntervals())
	}
}

func TestGoBackNWrapsTxPosAtBufferBoundary(t *testing.T) {
	st, post := newConn(256)
	// First lap: send and ack 200 bytes.
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 200})
	for {
		if _, ok := ProcessTX(st, post, 128, 0); !ok {
			break
		}
	}
	ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 200, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	// Second lap crosses the TX buffer boundary: positions 200..400 wrap.
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 200})
	var segs []TXResult
	for {
		seg, ok := ProcessTX(st, post, 128, 0)
		if !ok {
			break
		}
		segs = append(segs, seg)
	}
	if len(segs) != 2 || segs[0].BufPos != 200 || segs[1].BufPos != (200+128)&255 {
		t.Fatalf("segments = %+v", segs)
	}
	if st.TxPos != 400&255 {
		t.Fatalf("TxPos = %d, want %d", st.TxPos, 400&255)
	}
	// Fast retransmit rewinds across the boundary: TxPos must land on
	// SND.UNA's buffer offset, already wrapped.
	ack := &SegInfo{Seq: 0, Ack: 200, Flags: packet.FlagACK, Window: st.RemoteWin}
	var last RXResult
	for i := 0; i < 3; i++ {
		last = ProcessRX(st, post, ack, 0)
	}
	if !last.FastRetransmit {
		t.Fatal("no fast retransmit")
	}
	if st.TxPos != 200 {
		t.Fatalf("TxPos after go-back-N = %d, want 200", st.TxPos)
	}
	if seg, ok := ProcessTX(st, post, 128, 0); !ok || seg.BufPos != 200 || seg.Seq != 200 {
		t.Fatalf("retransmission = %+v ok=%v", seg, ok)
	}
}

func TestAckBeyondSndNxtAfterReset(t *testing.T) {
	// After go-back-N rewinds Seq, a cumulative ack for data sent before
	// the reset arrives "from the future". It must advance SND.UNA and
	// skip retransmitting the covered bytes, not be discarded.
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 1448, 0)
	ProcessHC(st, post, HCOp{Kind: HCRetransmit}) // RTO: Seq back to 0
	if st.Seq != 0 || st.TxAvail != 1000 {
		t.Fatalf("reset state = %+v", st)
	}
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 1000, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 1000 {
		t.Fatalf("AckedBytes = %d", res.AckedBytes)
	}
	if st.Seq != 1000 || st.TxAvail != 0 || st.TxSent != 0 || st.TxPos != 1000 {
		t.Fatalf("state = %+v", st)
	}
	if post.CntACKB != 1000 {
		t.Fatalf("CntACKB = %d", post.CntACKB)
	}
}

func TestAckBeyondSndNxtPartial(t *testing.T) {
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 1448, 0)
	ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	// Only the first 400 bytes of the pre-reset transmission arrived.
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 400, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 400 || st.Seq != 400 || st.TxAvail != 600 {
		t.Fatalf("partial: %+v state %+v", res, st)
	}
	// Retransmission resumes exactly at the ack point.
	if seg, ok := ProcessTX(st, post, 1448, 0); !ok || seg.Seq != 400 || seg.Len != 600 {
		t.Fatalf("resume = %+v ok=%v", seg, ok)
	}
}

func TestAckBeyondStagedDataIgnored(t *testing.T) {
	// An ack past everything ever staged is bogus and must not corrupt
	// sender state.
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 1448, 0)
	before := *st
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 5000, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 0 {
		t.Fatalf("bogus ack accepted: %+v", res)
	}
	if st.Seq != before.Seq || st.TxSent != before.TxSent || st.TxAvail != before.TxAvail {
		t.Fatalf("state mutated: %+v", st)
	}
}

func TestAckOfRewoundFin(t *testing.T) {
	// FIN sent, go-back-N rewinds it to pending, then the old copy's ack
	// (data + FIN slot) arrives: both the data and the FIN are done.
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessHC(st, post, HCOp{Kind: HCFin})
	ProcessTX(st, post, 1448, 0) // data+FIN out
	ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	if st.FinSent() {
		t.Fatal("FIN still marked sent after go-back-N")
	}
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 101, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if !res.FinAcked || !st.FinAcked() || res.AckedBytes != 100 {
		t.Fatalf("rewound FIN ack: %+v state %+v", res, st)
	}
	// No FIN retransmission must follow.
	if seg, ok := ProcessTX(st, post, 1448, 0); ok {
		t.Fatalf("unexpected segment after acked FIN: %+v", seg)
	}
}

func TestMarshalOOOExtension(t *testing.T) {
	st, post := newConn(4096)
	st.OOOCap = 4
	ProcessRX(st, post, dataSeg(100, 100, 0, 32), 0)
	ProcessRX(st, post, dataSeg(300, 100, 0, 32), 0)
	b := st.MarshalTable5()
	if len(b) != 43 {
		t.Fatalf("Table 5 size changed: %d", len(b))
	}
	// Head interval rides in the paper's ooo_start/ooo_len slots.
	if start := uint32(b[30])<<24 | uint32(b[31])<<16 | uint32(b[32])<<8 | uint32(b[33]); start != 100 {
		t.Fatalf("marshalled head start = %d", start)
	}
	if l := uint32(b[34])<<24 | uint32(b[35])<<16 | uint32(b[36])<<8 | uint32(b[37]); l != 100 {
		t.Fatalf("marshalled head len = %d", l)
	}
	if ext := st.MarshalOOOExtension(); len(ext) != 8 {
		t.Fatalf("extension = %d bytes, want 8", len(ext))
	}
	// The paper's N=1 configuration stays exactly in budget.
	st2, _ := newConn(4096)
	if ext := st2.MarshalOOOExtension(); len(ext) != 0 {
		t.Fatalf("N=1 extension = %d bytes, want 0", len(ext))
	}
}

func TestAckOfStagedButNeverTransmittedIgnored(t *testing.T) {
	// An ack between SND.NXT and the staged-data horizon, with no reset
	// having happened, covers bytes that were never on the wire: SND.MAX
	// bounds acceptance, so it must be ignored (accepting it would skip
	// transmitting those bytes and silently corrupt the stream).
	st, post := newConn(8192)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 1000})
	ProcessTX(st, post, 500, 0) // 500 of 1000 staged bytes transmitted
	if st.Seq != 500 || st.TxMax != 500 || st.TxAvail != 500 {
		t.Fatalf("setup state = %+v", st)
	}
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 800, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 0 || st.Seq != 500 || st.TxAvail != 500 {
		t.Fatalf("ack of untransmitted bytes accepted: %+v state %+v", res, st)
	}
	// After a reset, the same ack value is within SND.MAX and valid.
	ProcessTX(st, post, 500, 0) // transmit the rest: SND.MAX = 1000
	ProcessHC(st, post, HCOp{Kind: HCRetransmit})
	res = ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 800, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.AckedBytes != 800 || st.Seq != 800 {
		t.Fatalf("post-reset ack rejected: %+v state %+v", res, st)
	}
}

func TestAckOfNeverTransmittedFinIgnored(t *testing.T) {
	// FIN requested but not yet on the wire: a bogus ack of its future
	// sequence slot must not mark it acked (that would suppress the FIN
	// transmission forever and wedge the close).
	st, post := newConn(4096)
	ProcessHC(st, post, HCOp{Kind: HCTx, Bytes: 100})
	ProcessTX(st, post, 1448, 0)
	ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 100, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	ProcessHC(st, post, HCOp{Kind: HCFin}) // pending, never transmitted
	res := ProcessRX(st, post, &SegInfo{Seq: 0, Ack: 101, Flags: packet.FlagACK, Window: st.RemoteWin}, 0)
	if res.FinAcked || st.FinAcked() {
		t.Fatalf("never-transmitted FIN marked acked: %+v state %+v", res, st)
	}
	// The FIN must still go out.
	if seg, ok := ProcessTX(st, post, 1448, 0); !ok || !seg.FIN {
		t.Fatalf("FIN not transmitted: %+v ok=%v", seg, ok)
	}
}

package tcpseg

// Out-of-order reassembly interval set. The protocol stage tracks the
// byte ranges received beyond RCV.NXT as a small, sorted, disjoint set of
// sequence-space intervals. TAS (and the paper's FlexTOE) keep exactly
// one; generalizing to a fixed capacity N lets the receiver survive
// multiple concurrent holes without dropping payload, at a known state
// cost per connection. The same insertion/merge logic backs the FlexTOE
// protocol stage (ProtoState, capacity <= MaxOOOIntervals) and the
// baseline host stacks (a slice, capacity set by the stack personality).
//
// All interval arithmetic is RFC 793 serial-number arithmetic: correct as
// long as every tracked interval lies within 2^31 bytes of the receive
// window, which the window trim in ProcessRX guarantees.

// MaxOOOIntervals is the backing capacity of the per-connection interval
// set in ProtoState. The effective policy limit is ProtoState.OOOCap
// (default 1, the paper's Table 5 state budget).
const MaxOOOIntervals = 4

// SeqInterval is one contiguous out-of-order range [Start, End) in
// sequence space. Start == End never occurs in a maintained set.
type SeqInterval struct {
	Start, End uint32
}

// IvResult reports what an insertion did, for the reassembly counters.
type IvResult struct {
	Accepted bool // payload may be placed in the receive buffer
	Grew     bool // opened a new disjoint interval slot
	Merged   int  // previously separate intervals coalesced away
	AtHead   bool // touched the head (lowest) interval of the prior set
}

// InsertSeqInterval merges iv into the sorted, disjoint, non-adjacent set
// ivs, enforcing a capacity of max intervals. Overlapping and abutting
// intervals coalesce. A disjoint insertion that would exceed max is
// rejected and the set is left unchanged (the caller drops the payload
// and re-ACKs the expected sequence number). The returned slice shares
// ivs's backing array unless growth required reallocation.
func InsertSeqInterval(ivs []SeqInterval, iv SeqInterval, max int) ([]SeqInterval, IvResult) {
	if iv.Start == iv.End || max <= 0 {
		return ivs, IvResult{}
	}
	// Locate the run ivs[i:j] that overlaps or abuts iv.
	i := 0
	for i < len(ivs) && SeqLT(ivs[i].End, iv.Start) {
		i++
	}
	j := i
	for j < len(ivs) && SeqLEQ(ivs[j].Start, iv.End) {
		j++
	}
	if i == j {
		// Disjoint from every tracked interval.
		if len(ivs) >= max {
			return ivs, IvResult{}
		}
		ivs = append(ivs, SeqInterval{})
		copy(ivs[i+1:], ivs[i:])
		ivs[i] = iv
		return ivs, IvResult{Accepted: true, Grew: true}
	}
	res := IvResult{Accepted: true, Merged: j - i - 1, AtHead: i == 0}
	lo := SeqMin(ivs[i].Start, iv.Start)
	hi := SeqMax(ivs[j-1].End, iv.End)
	ivs[i] = SeqInterval{lo, hi}
	copy(ivs[i+1:], ivs[j:])
	return ivs[:len(ivs)-res.Merged], res
}

// MergeAdvance consumes every interval reachable from the cumulative ack
// point: intervals starting at or before ack are merged into the in-order
// stream (ack jumps to their end when it extends coverage). It returns
// the remaining set, the advanced ack, and how many intervals merged.
// The returned slice aliases a suffix of ivs; array-backed callers must
// copy it back down (see ProtoState.setOOO).
func MergeAdvance(ivs []SeqInterval, ack uint32) ([]SeqInterval, uint32, int) {
	merged := 0
	for len(ivs) > 0 && SeqLEQ(ivs[0].Start, ack) {
		if SeqGT(ivs[0].End, ack) {
			ack = ivs[0].End
		}
		ivs = ivs[1:]
		merged++
	}
	return ivs, ack, merged
}

package tcpseg

import (
	"fmt"
	"testing"

	"flextoe/internal/stats"
)

// Deterministic adversarial stream-conformance harness: one-directional
// transfers through a channel that loses, reorders, duplicates, and
// replays stale copies of segments, checked differentially against the
// trivial in-order reference model — at every delivery the receiver's
// reconstructed stream must be an exact prefix of the sender's data, and
// the transfer must complete. Everything is seeded: a failure reproduces
// byte-for-byte.

// chanCfg parameterizes one adversarial transfer.
type chanCfg struct {
	BufSize uint32 // RX/TX buffer size (power of two)
	MSS     uint32
	Loss    float64 // per-segment drop probability (both directions)
	Reorder float64 // probability a segment is inserted before the previous one
	Dup     float64 // probability a delivered segment is delivered twice
	Stale   float64 // per-round probability of replaying an old data segment
	OOOCap  uint8   // reassembly interval capacity (0 = default, the paper's 1)
	Seed    uint64
	Rounds  int // 0 = default 200000
}

func (c chanCfg) String() string {
	return fmt.Sprintf("loss=%v,reorder=%v,dup=%v,stale=%v,N=%d",
		c.Loss, c.Reorder, c.Dup, c.Stale, c.OOOCap)
}

// pushWire enqueues s on the wire, swapping it ahead of the previous
// segment with probability reorderP — the adversarial channel's shared
// enqueue step (also used by runBidirectional in stream_test.go).
func pushWire(rng *stats.RNG, wire []wireSeg, s wireSeg, reorderP float64) []wireSeg {
	if len(wire) > 0 && rng.Bool(reorderP) {
		return append(wire[:len(wire)-1], s, wire[len(wire)-1])
	}
	return append(wire, s)
}

// conformanceTransfer pushes data from a fresh sender to a fresh receiver
// through the adversarial channel, using a simple RTO (sender go-back-N
// reset) plus a persist-style receiver window re-advertisement when
// progress stalls — the two timer paths the control plane provides in the
// real system.
func conformanceTransfer(data []byte, cfg chanCfg) error {
	rng := stats.NewRNG(cfg.Seed)
	a := newEndpoint(cfg.BufSize)
	b := newEndpoint(cfg.BufSize)
	a.st.OOOCap, b.st.OOOCap = cfg.OOOCap, cfg.OOOCap
	a.tx = data

	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 200000
	}
	var wire []wireSeg     // in-flight segments toward b
	var backWire []wireSeg // acks toward a
	var history []wireSeg  // recently delivered data segments (stale-replay source)
	checked := 0           // rxGot prefix already verified against the reference
	stall := 0
	for round := 0; round < rounds; round++ {
		outs := a.pump(cfg.MSS)
		progress := len(outs) > 0
		for _, s := range outs {
			if rng.Bool(cfg.Loss) {
				continue // dropped
			}
			wire = pushWire(rng, wire, s, cfg.Reorder)
			if rng.Bool(cfg.Dup) {
				wire = append(wire, s) // duplicated in flight
			}
		}
		// Stale-retransmit injection: replay a segment the receiver has
		// (usually) long since consumed.
		if len(history) > 0 && rng.Bool(cfg.Stale) {
			wire = append(wire, history[rng.Intn(len(history))])
		}
		// Deliver everything currently on the wire to b.
		for _, s := range wire {
			if s.info.PayloadLen > 0 {
				history = append(history, s)
				if len(history) > 64 {
					history = history[1:]
				}
			}
			if ack, ok := b.receive(s); ok {
				if !rng.Bool(cfg.Loss) {
					backWire = append(backWire, ack)
				}
			}
			progress = true
			// Differential check against the in-order reference model:
			// whatever the receiver has delivered so far must be exactly
			// the stream prefix. Checked incrementally after every
			// segment so a corruption is caught at the segment that
			// caused it, not at the end of the transfer.
			for ; checked < len(b.rxGot); checked++ {
				if checked >= len(data) {
					return fmt.Errorf("%v: delivered %d bytes beyond the %d-byte stream", cfg, len(b.rxGot)-len(data), len(data))
				}
				if b.rxGot[checked] != data[checked] {
					return fmt.Errorf("%v: stream mismatch at byte %d (got %d bytes of %d)", cfg, checked, len(b.rxGot), len(data))
				}
			}
		}
		wire = wire[:0]
		// Deliver acks back to a.
		for _, s := range backWire {
			a.receive(s)
		}
		backWire = backWire[:0]

		if len(b.rxGot) == len(data) {
			return nil
		}
		if !progress {
			stall++
		} else {
			stall = 0
		}
		if stall > 2 {
			// RTO fires: go-back-N reset on the sender, and the receiver
			// re-advertises its window (persist timer), repairing a lost
			// window-update ack.
			ProcessHC(a.st, a.post, HCOp{Kind: HCRetransmit})
			if !rng.Bool(cfg.Loss) {
				a.receive(ackSeg(WindowUpdateAck(b.st)))
			}
			stall = 0
		}
	}
	return fmt.Errorf("%v: transfer incomplete after %d rounds (got %d bytes of %d)", cfg, rounds, len(b.rxGot), len(data))
}

// TestConformanceMatrix sweeps loss x reorder x duplication for both the
// paper's single-interval configuration and the N=4 extension.
func TestConformanceMatrix(t *testing.T) {
	sizes := map[uint8]int{1: 13783, 4: 13783}
	seed := uint64(0xc0f02fa7ce)
	for _, oooCap := range []uint8{1, 4} {
		for _, loss := range []float64{0, 0.05, 0.25} {
			for _, reorder := range []float64{0, 0.3, 0.5} {
				for _, dup := range []float64{0, 0.1} {
					cfg := chanCfg{
						BufSize: 4096, MSS: 512,
						Loss: loss, Reorder: reorder, Dup: dup,
						OOOCap: oooCap,
						Seed:   seed ^ uint64(oooCap)<<56 ^ uint64(loss*256)<<40 ^ uint64(reorder*256)<<24 ^ uint64(dup*256)<<8,
					}
					t.Run(cfg.String(), func(t *testing.T) {
						if err := conformanceTransfer(pattern(sizes[oooCap]), cfg); err != nil {
							t.Fatal(err)
						}
					})
				}
			}
		}
	}
}

// TestConformanceStaleRetransmits adds stale-replay injection on top of
// the worst corner of the matrix.
func TestConformanceStaleRetransmits(t *testing.T) {
	for _, oooCap := range []uint8{1, 4} {
		cfg := chanCfg{
			BufSize: 4096, MSS: 512,
			Loss: 0.05, Reorder: 0.3, Dup: 0.1, Stale: 0.2,
			OOOCap: oooCap, Seed: 0x57a1e ^ uint64(oooCap),
		}
		t.Run(cfg.String(), func(t *testing.T) {
			if err := conformanceTransfer(pattern(20_000), cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConformanceTinyBufferWrap keeps the transfer many multiples of the
// buffer size so the circular positions wrap continuously under the full
// adversarial channel.
func TestConformanceTinyBufferWrap(t *testing.T) {
	cfg := chanCfg{
		BufSize: 512, MSS: 128,
		Loss: 0.05, Reorder: 0.3, Dup: 0.1, Stale: 0.1,
		OOOCap: 4, Seed: 0x11f7,
	}
	if err := conformanceTransfer(pattern(10_000), cfg); err != nil {
		t.Fatal(err)
	}
}

// TestConformancePropertyRandom fuzzes the full channel (pinned rand so
// failures reproduce; promote counterexamples to named tests above).
func TestConformancePropertyRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rnd := stats.NewRNG(0xfacade)
	for i := 0; i < 20; i++ {
		cfg := chanCfg{
			BufSize: 4096, MSS: uint32(64 + rnd.Intn(1024)),
			Loss:    float64(rnd.Intn(64)) / 256.0,
			Reorder: float64(rnd.Intn(128)) / 256.0,
			Dup:     float64(rnd.Intn(32)) / 256.0,
			Stale:   float64(rnd.Intn(32)) / 256.0,
			OOOCap:  uint8(1 + rnd.Intn(MaxOOOIntervals)),
			Seed:    rnd.Uint64(),
		}
		size := 1 + rnd.Intn(20000)
		if err := conformanceTransfer(pattern(size), cfg); err != nil {
			t.Fatalf("case %d size %d: %v", i, size, err)
		}
	}
}

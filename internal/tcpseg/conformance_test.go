package tcpseg

import (
	"fmt"
	"testing"

	"flextoe/internal/stats"
)

// Deterministic adversarial stream-conformance harness: one-directional
// transfers through a channel that loses, reorders, duplicates, and
// replays stale copies of segments, checked differentially against the
// trivial in-order reference model — at every delivery the receiver's
// reconstructed stream must be an exact prefix of the sender's data, and
// the transfer must complete. Everything is seeded: a failure reproduces
// byte-for-byte.

// chanCfg parameterizes one adversarial transfer.
type chanCfg struct {
	BufSize uint32 // RX/TX buffer size (power of two)
	MSS     uint32
	Loss    float64 // per-segment drop probability (both directions)
	Reorder float64 // probability a segment is inserted before the previous one
	Dup     float64 // probability a delivered segment is delivered twice
	Stale   float64 // per-round probability of replaying an old data segment
	OOOCap  uint8   // reassembly interval capacity (0 = default, the paper's 1)
	SACK    bool    // negotiate SACK: selective retransmit instead of go-back-N
	Seed    uint64
	Rounds  int // 0 = default 200000
}

func (c chanCfg) String() string {
	rec := "gbn"
	if c.SACK {
		rec = "sack"
	}
	return fmt.Sprintf("loss=%v,reorder=%v,dup=%v,stale=%v,N=%d,%s",
		c.Loss, c.Reorder, c.Dup, c.Stale, c.OOOCap, rec)
}

// xferStats summarizes one adversarial transfer's recovery behaviour.
type xferStats struct {
	TxBytes   uint64 // payload bytes the sender put on the wire
	RetxBytes uint64 // of those, bytes transmitted more than once
	FastRetx  int    // fast-retransmit events
	SACKRetx  int    // of those, repaired via the selective queue
}

// pushWire enqueues s on the wire, swapping it ahead of the previous
// segment with probability reorderP — the adversarial channel's shared
// enqueue step (also used by runBidirectional in stream_test.go).
func pushWire(rng *stats.RNG, wire []wireSeg, s wireSeg, reorderP float64) []wireSeg {
	if len(wire) > 0 && rng.Bool(reorderP) {
		return append(wire[:len(wire)-1], s, wire[len(wire)-1])
	}
	return append(wire, s)
}

// conformanceTransfer pushes data from a fresh sender to a fresh receiver
// through the adversarial channel, using a simple RTO (sender go-back-N
// reset) plus the sender-side persist probe (RFC 9293 §3.8.6.1) when
// progress stalls — the two timer paths the control plane provides in the
// real system.
func conformanceTransfer(data []byte, cfg chanCfg) (xferStats, error) {
	rng := stats.NewRNG(cfg.Seed)
	a := newEndpoint(cfg.BufSize)
	b := newEndpoint(cfg.BufSize)
	a.st.OOOCap, b.st.OOOCap = cfg.OOOCap, cfg.OOOCap
	a.st.SetSACKPerm(cfg.SACK)
	b.st.SetSACKPerm(cfg.SACK)
	a.tx = data
	report := func() xferStats {
		return xferStats{TxBytes: a.txBytes, RetxBytes: a.retxBytes, FastRetx: a.fastRetx, SACKRetx: a.sackRetx}
	}

	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 200000
	}
	var wire []wireSeg     // in-flight segments toward b
	var backWire []wireSeg // acks toward a
	var history []wireSeg  // transmitted data segments (stale-replay source)
	checked := 0           // rxGot prefix already verified against the reference
	stall := 0
	for round := 0; round < rounds; round++ {
		outs := a.pump(cfg.MSS)
		progress := len(outs) > 0
		for _, s := range outs {
			// History captures at transmission time, before the loss
			// roll, so replays can reach back across go-back-N epochs:
			// after a rewind the history still holds copies with sequence
			// numbers above the reset TxPos/SND.NXT.
			if s.info.PayloadLen > 0 {
				history = append(history, s)
				if len(history) > 64 {
					history = history[1:]
				}
			}
			if rng.Bool(cfg.Loss) {
				continue // dropped
			}
			wire = pushWire(rng, wire, s, cfg.Reorder)
			if rng.Bool(cfg.Dup) {
				wire = append(wire, s) // duplicated in flight
			}
		}
		// Stale-retransmit injection: replay a segment the receiver has
		// (usually) long since consumed — possibly from an earlier
		// go-back-N epoch.
		if len(history) > 0 && rng.Bool(cfg.Stale) {
			wire = append(wire, history[rng.Intn(len(history))])
		}
		// Deliver everything currently on the wire to b.
		for _, s := range wire {
			if ack, ok := b.receive(s); ok {
				if !rng.Bool(cfg.Loss) {
					backWire = append(backWire, ack)
				}
			}
			progress = true
			// Differential check against the in-order reference model:
			// whatever the receiver has delivered so far must be exactly
			// the stream prefix. Checked incrementally after every
			// segment so a corruption is caught at the segment that
			// caused it, not at the end of the transfer.
			for ; checked < len(b.rxGot); checked++ {
				if checked >= len(data) {
					return report(), fmt.Errorf("%v: delivered %d bytes beyond the %d-byte stream", cfg, len(b.rxGot)-len(data), len(data))
				}
				if b.rxGot[checked] != data[checked] {
					return report(), fmt.Errorf("%v: stream mismatch at byte %d (got %d bytes of %d)", cfg, checked, len(b.rxGot), len(data))
				}
			}
		}
		wire = wire[:0]
		// Deliver acks back to a.
		for _, s := range backWire {
			a.receive(s)
		}
		backWire = backWire[:0]

		if len(b.rxGot) == len(data) {
			return report(), nil
		}
		if !progress {
			stall++
		} else {
			stall = 0
		}
		if stall > 2 {
			// RTO fires: go-back-N reset on the sender (an epoch
			// boundary for the stale-replay history), then the sender's
			// persist probe repairs a lost window-update ack without any
			// receiver-side cooperation.
			ProcessHC(a.st, a.post, HCOp{Kind: HCRetransmit})
			if len(history) > 0 && cfg.Stale > 0 {
				// Replay a pre-rewind copy right at the epoch boundary:
				// its sequence number now sits above SND.NXT.
				wire = append(wire, history[rng.Intn(len(history))])
			}
			sendProbe(rng, a, b, cfg.Loss)
			stall = 0
		}
	}
	return report(), fmt.Errorf("%v: transfer incomplete after %d rounds (got %d bytes of %d)", cfg, rounds, len(b.rxGot), len(data))
}

// TestConformanceMatrix sweeps loss x reorder x duplication x recovery
// (go-back-N vs SACK) for both the paper's single-interval configuration
// and the N=4 extension.
func TestConformanceMatrix(t *testing.T) {
	sizes := map[uint8]int{1: 13783, 4: 13783}
	seed := uint64(0xc0f02fa7ce)
	for _, oooCap := range []uint8{1, 4} {
		for _, sack := range []bool{false, true} {
			for _, loss := range []float64{0, 0.05, 0.25} {
				for _, reorder := range []float64{0, 0.3, 0.5} {
					for _, dup := range []float64{0, 0.1} {
						cfg := chanCfg{
							BufSize: 4096, MSS: 512,
							Loss: loss, Reorder: reorder, Dup: dup,
							OOOCap: oooCap, SACK: sack,
							Seed: seed ^ uint64(oooCap)<<56 ^ uint64(loss*256)<<40 ^ uint64(reorder*256)<<24 ^ uint64(dup*256)<<8,
						}
						t.Run(cfg.String(), func(t *testing.T) {
							if _, err := conformanceTransfer(pattern(sizes[oooCap]), cfg); err != nil {
								t.Fatal(err)
							}
						})
					}
				}
			}
		}
	}
}

// TestConformanceStaleRetransmits adds stale-replay injection on top of
// the worst corner of the matrix. The history reaches across go-back-N
// epochs, so replays include pre-rewind copies whose sequence numbers sit
// above the reset SND.NXT — the PR 1 wedge-bug territory — and the SACK
// path must reject them identically (the differential prefix check is the
// arbiter for both).
func TestConformanceStaleRetransmits(t *testing.T) {
	for _, oooCap := range []uint8{1, 4} {
		for _, sack := range []bool{false, true} {
			cfg := chanCfg{
				BufSize: 4096, MSS: 512,
				Loss: 0.05, Reorder: 0.3, Dup: 0.1, Stale: 0.2,
				OOOCap: oooCap, SACK: sack, Seed: 0x57a1e ^ uint64(oooCap),
			}
			t.Run(cfg.String(), func(t *testing.T) {
				if _, err := conformanceTransfer(pattern(20_000), cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestConformanceEpochReplayHighLoss drives the stale-replay channel at a
// loss rate high enough that RTO epochs (go-back-N rewinds) happen
// constantly, so replayed pre-rewind segments regularly arrive with
// sequence numbers above the sender's rewound SND.NXT and their ACKs land
// above SND.NXT at the sender.
func TestConformanceEpochReplayHighLoss(t *testing.T) {
	for _, sack := range []bool{false, true} {
		cfg := chanCfg{
			BufSize: 2048, MSS: 256,
			Loss: 0.35, Reorder: 0.2, Dup: 0.1, Stale: 0.4,
			OOOCap: 4, SACK: sack, Seed: 0xe90c4,
		}
		t.Run(cfg.String(), func(t *testing.T) {
			if _, err := conformanceTransfer(pattern(6_000), cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConformanceDifferentialSACKvsGBN runs the identical channel (same
// seed, same adversarial schedule) under go-back-N and under SACK: both
// must deliver the exact stream (the in-loop prefix check enforces it),
// and the SACK run must not retransmit more than go-back-N anywhere, with
// a strict win at the lossy corners where selective repair matters.
func TestConformanceDifferentialSACKvsGBN(t *testing.T) {
	corners := []struct {
		loss, reorder, dup float64
		size               int
		strict             bool // SACK must strictly reduce retransmitted bytes
	}{
		{0, 0, 0, 13783, false},
		{0.01, 0, 0, 120_000, true}, // long stream so 1% loss actually bites
		{0.05, 0.3, 0.1, 13783, true},
		{0.25, 0.5, 0.1, 13783, true},
	}
	for _, c := range corners {
		base := chanCfg{
			BufSize: 4096, MSS: 512,
			Loss: c.loss, Reorder: c.reorder, Dup: c.dup,
			OOOCap: 4, Seed: 0xd1ff ^ uint64(c.loss*1024),
		}
		gbnCfg, sackCfg := base, base
		sackCfg.SACK = true
		name := fmt.Sprintf("loss=%v,reorder=%v,dup=%v", c.loss, c.reorder, c.dup)
		t.Run(name, func(t *testing.T) {
			gbn, err := conformanceTransfer(pattern(c.size), gbnCfg)
			if err != nil {
				t.Fatal(err)
			}
			sack, err := conformanceTransfer(pattern(c.size), sackCfg)
			if err != nil {
				t.Fatal(err)
			}
			if sack.RetxBytes > gbn.RetxBytes {
				t.Fatalf("SACK retransmitted more: %d > %d bytes", sack.RetxBytes, gbn.RetxBytes)
			}
			if c.strict && sack.RetxBytes >= gbn.RetxBytes {
				t.Fatalf("SACK did not reduce retransmits: %d vs %d bytes (fastRetx %d/%d sackRetx %d)",
					sack.RetxBytes, gbn.RetxBytes, sack.FastRetx, gbn.FastRetx, sack.SACKRetx)
			}
			if c.loss > 0 && sack.SACKRetx == 0 {
				t.Fatal("selective retransmit path never exercised")
			}
		})
	}
}

// TestConformanceTinyBufferWrap keeps the transfer many multiples of the
// buffer size so the circular positions wrap continuously under the full
// adversarial channel.
func TestConformanceTinyBufferWrap(t *testing.T) {
	for _, sack := range []bool{false, true} {
		cfg := chanCfg{
			BufSize: 512, MSS: 128,
			Loss: 0.05, Reorder: 0.3, Dup: 0.1, Stale: 0.1,
			OOOCap: 4, SACK: sack, Seed: 0x11f7,
		}
		t.Run(cfg.String(), func(t *testing.T) {
			if _, err := conformanceTransfer(pattern(10_000), cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConformancePropertyRandom fuzzes the full channel (pinned rand so
// failures reproduce; promote counterexamples to named tests above).
func TestConformancePropertyRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rnd := stats.NewRNG(0xfacade)
	for i := 0; i < 20; i++ {
		cfg := chanCfg{
			BufSize: 4096, MSS: uint32(64 + rnd.Intn(1024)),
			Loss:    float64(rnd.Intn(64)) / 256.0,
			Reorder: float64(rnd.Intn(128)) / 256.0,
			Dup:     float64(rnd.Intn(32)) / 256.0,
			Stale:   float64(rnd.Intn(32)) / 256.0,
			OOOCap:  uint8(1 + rnd.Intn(MaxOOOIntervals)),
			SACK:    rnd.Bool(0.5),
			Seed:    rnd.Uint64(),
		}
		size := 1 + rnd.Intn(20000)
		if _, err := conformanceTransfer(pattern(size), cfg); err != nil {
			t.Fatalf("case %d size %d: %v", i, size, err)
		}
	}
}

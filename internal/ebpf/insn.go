// Package ebpf implements a from-scratch eBPF virtual machine for
// FlexTOE's XDP modules (§3.3): the classic 64-bit register machine with
// the standard 8-byte instruction encoding, ALU/branch/memory classes,
// helper calls, and BPF maps (array and hash). Programs are built with the
// package's assembler and executed by the interpreter, which counts
// instructions so the data-path charges real simulated cycles per packet
// ("eBPF programs can be compiled to NFP assembly", §5.1).
//
// The memory model exposes three regions to programs: the packet at
// address 0, a 512-byte stack below R10, and a scratch region where map
// helpers place values.
package ebpf

import "fmt"

// Instruction classes (low 3 bits of the opcode).
const (
	ClassLD    = 0x00
	ClassLDX   = 0x01
	ClassST    = 0x02
	ClassSTX   = 0x03
	ClassALU   = 0x04
	ClassJMP   = 0x05
	ClassALU64 = 0x07
)

// ALU/JMP operation (high 4 bits).
const (
	OpAdd  = 0x00
	OpSub  = 0x10
	OpMul  = 0x20
	OpDiv  = 0x30
	OpOr   = 0x40
	OpAnd  = 0x50
	OpLsh  = 0x60
	OpRsh  = 0x70
	OpNeg  = 0x80
	OpMod  = 0x90
	OpXor  = 0xa0
	OpMov  = 0xb0
	OpArsh = 0xc0
	OpEnd  = 0xd0
)

// Jump operations.
const (
	JA   = 0x00
	JEq  = 0x10
	JGt  = 0x20
	JGe  = 0x30
	JSet = 0x40
	JNe  = 0x50
	JSGt = 0x60
	JSGe = 0x70
	Call = 0x80
	Exit = 0x90
	JLt  = 0xa0
	JLe  = 0xb0
	JSLt = 0xc0
	JSLe = 0xd0
)

// Source modifier.
const (
	SrcImm = 0x00
	SrcReg = 0x08
)

// Memory access sizes.
const (
	SizeW  = 0x00 // 4 bytes
	SizeH  = 0x08 // 2 bytes
	SizeB  = 0x10 // 1 byte
	SizeDW = 0x18 // 8 bytes
)

// Memory access mode.
const (
	ModeImm = 0x00
	ModeMem = 0x60
)

// Registers.
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10 // frame pointer, read-only
	NumRegs
)

// Insn is one decoded eBPF instruction.
type Insn struct {
	Op  uint8
	Dst uint8
	Src uint8
	Off int16
	Imm int32
}

func (i Insn) String() string {
	return fmt.Sprintf("op=%02x dst=r%d src=r%d off=%d imm=%d", i.Op, i.Dst, i.Src, i.Off, i.Imm)
}

// XDP verdict values (matching the kernel ABI).
const (
	XDPAborted  = 0
	XDPDrop     = 1
	XDPPass     = 2
	XDPTx       = 3
	XDPRedirect = 4
)

// --- Assembler -------------------------------------------------------

// Asm builds instruction slices fluently.
type Asm struct {
	ins    []Insn
	labels map[string]int
	fixups []fixup
}

type fixup struct {
	idx   int
	label string
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

func (a *Asm) emit(i Insn) *Asm { a.ins = append(a.ins, i); return a }

// Label marks the next instruction's position.
func (a *Asm) Label(name string) *Asm {
	a.labels[name] = len(a.ins)
	return a
}

// MovImm sets dst = imm (64-bit).
func (a *Asm) MovImm(dst uint8, imm int32) *Asm {
	return a.emit(Insn{Op: ClassALU64 | OpMov | SrcImm, Dst: dst, Imm: imm})
}

// MovReg sets dst = src.
func (a *Asm) MovReg(dst, src uint8) *Asm {
	return a.emit(Insn{Op: ClassALU64 | OpMov | SrcReg, Dst: dst, Src: src})
}

// AluImm performs dst = dst <op> imm.
func (a *Asm) AluImm(op uint8, dst uint8, imm int32) *Asm {
	return a.emit(Insn{Op: ClassALU64 | op | SrcImm, Dst: dst, Imm: imm})
}

// AluReg performs dst = dst <op> src.
func (a *Asm) AluReg(op uint8, dst, src uint8) *Asm {
	return a.emit(Insn{Op: ClassALU64 | op | SrcReg, Dst: dst, Src: src})
}

// LoadMem loads dst = *(size*)(src + off).
func (a *Asm) LoadMem(dst, src uint8, off int16, size uint8) *Asm {
	return a.emit(Insn{Op: ClassLDX | ModeMem | size, Dst: dst, Src: src, Off: off})
}

// StoreMem stores *(size*)(dst + off) = src.
func (a *Asm) StoreMem(dst, src uint8, off int16, size uint8) *Asm {
	return a.emit(Insn{Op: ClassSTX | ModeMem | size, Dst: dst, Src: src, Off: off})
}

// StoreImm stores *(size*)(dst + off) = imm.
func (a *Asm) StoreImm(dst uint8, off int16, size uint8, imm int32) *Asm {
	return a.emit(Insn{Op: ClassST | ModeMem | size, Dst: dst, Off: off, Imm: imm})
}

// JmpImm jumps to label when dst <op> imm.
func (a *Asm) JmpImm(op uint8, dst uint8, imm int32, label string) *Asm {
	a.fixups = append(a.fixups, fixup{len(a.ins), label})
	return a.emit(Insn{Op: ClassJMP | op | SrcImm, Dst: dst, Imm: imm})
}

// JmpReg jumps to label when dst <op> src.
func (a *Asm) JmpReg(op uint8, dst, src uint8, label string) *Asm {
	a.fixups = append(a.fixups, fixup{len(a.ins), label})
	return a.emit(Insn{Op: ClassJMP | op | SrcReg, Dst: dst, Src: src})
}

// Jmp jumps unconditionally.
func (a *Asm) Jmp(label string) *Asm {
	a.fixups = append(a.fixups, fixup{len(a.ins), label})
	return a.emit(Insn{Op: ClassJMP | JA})
}

// CallHelper invokes helper id.
func (a *Asm) CallHelper(id int32) *Asm {
	return a.emit(Insn{Op: ClassJMP | Call, Imm: id})
}

// Exit returns from the program with R0 as the verdict.
func (a *Asm) Exit() *Asm {
	return a.emit(Insn{Op: ClassJMP | Exit})
}

// Program resolves labels and returns the instruction stream.
func (a *Asm) Program() ([]Insn, error) {
	out := make([]Insn, len(a.ins))
	copy(out, a.ins)
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("ebpf: undefined label %q", f.label)
		}
		out[f.idx].Off = int16(target - f.idx - 1)
	}
	return out, nil
}

// MustProgram is Program, panicking on error (for static programs).
func (a *Asm) MustProgram() []Insn {
	p, err := a.Program()
	if err != nil {
		panic(err)
	}
	return p
}

package ebpf

import (
	"fmt"

	"flextoe/internal/xdp"
)

// XDPProgram adapts a verified eBPF program to FlexTOE's XDP module
// interface. Each execution reports its true instruction count, which the
// data-path charges as FPC cycles (eBPF compiles roughly 1:1 to NFP
// assembly, §5.1).
type XDPProgram struct {
	name string
	vm   *VM
	prog []Insn
}

// LoadXDP verifies prog and wraps it for attachment.
func LoadXDP(name string, vm *VM, prog []Insn) (*XDPProgram, error) {
	if err := vm.Verify(prog); err != nil {
		return nil, err
	}
	return &XDPProgram{name: name, vm: vm, prog: prog}, nil
}

// Name returns the program name.
func (p *XDPProgram) Name() string { return p.name }

// Run executes the program on the raw frame.
func (p *XDPProgram) Run(ctx *xdp.Context) (xdp.Verdict, int64) {
	res, err := p.vm.Run(p.prog, ctx.Data)
	if err != nil {
		// A faulting program drops the packet (XDP_ABORTED semantics).
		return xdp.Drop, res.Instructions
	}
	switch res.R0 {
	case XDPPass:
		return xdp.Pass, res.Instructions
	case XDPTx:
		return xdp.TX, res.Instructions
	case XDPRedirect:
		return xdp.Redirect, res.Instructions
	default: // XDPDrop, XDPAborted, anything else
		return xdp.Drop, res.Instructions
	}
}

var _ xdp.Program = (*XDPProgram)(nil)

// ---------------------------------------------------------------------
// Connection splicing (Listing 1): AccelTCP-style layer-4 proxying in 24
// lines of eBPF. The control plane installs per-flow entries mapping an
// incoming 4-tuple to the opposite connection's identity plus
// sequence/acknowledgment deltas; the program patches headers and
// transmits without host involvement.
// ---------------------------------------------------------------------

// Packet field offsets (Ethernet + IPv4 without options + TCP).
const (
	offEthDst   = 0
	offEthSrc   = 6
	offEthType  = 12
	offIPProto  = 23
	offIPSrc    = 26
	offIPDst    = 30
	offTCPSport = 34
	offTCPDport = 36
	offTCPSeq   = 38
	offTCPAck   = 42
	offTCPFlags = 47
)

// Splice value layout (struct tcp_splice_t).
const (
	spliceValRemoteMAC  = 0  // 6 bytes
	spliceValRemoteIP   = 8  // 4 bytes
	spliceValLocalPort  = 12 // 2 bytes
	spliceValRemotePort = 14 // 2 bytes
	spliceValSeqDelta   = 16 // 4 bytes
	spliceValAckDelta   = 20 // 4 bytes
	spliceValSize       = 24
	spliceKeySize       = 12 // src ip, dst ip, sport, dport
)

// SpliceMaxFlows matches SPLICE_MAX_FLOWS in Listing 1.
const SpliceMaxFlows = 16384

// NewSpliceTable creates the splice_tbl hash map.
func NewSpliceTable() *HashMap {
	return NewHashMap("splice_tbl", spliceKeySize, spliceValSize, SpliceMaxFlows)
}

// SpliceKey encodes a lookup key from the packet 4-tuple fields (network
// byte order, as read from the wire).
func SpliceKey(srcIP, dstIP uint32, sport, dport uint16) []byte {
	k := make([]byte, spliceKeySize)
	storeBE(k[0:4], uint64(srcIP))
	storeBE(k[4:8], uint64(dstIP))
	storeBE(k[8:10], uint64(sport))
	storeBE(k[10:12], uint64(dport))
	return k
}

// SpliceValue encodes a tcp_splice_t.
func SpliceValue(remoteMAC [6]byte, remoteIP uint32, localPort, remotePort uint16, seqDelta, ackDelta uint32) []byte {
	v := make([]byte, spliceValSize)
	copy(v[spliceValRemoteMAC:], remoteMAC[:])
	storeBE(v[spliceValRemoteIP:spliceValRemoteIP+4], uint64(remoteIP))
	storeBE(v[spliceValLocalPort:spliceValLocalPort+2], uint64(localPort))
	storeBE(v[spliceValRemotePort:spliceValRemotePort+2], uint64(remotePort))
	storeBE(v[spliceValSeqDelta:spliceValSeqDelta+4], uint64(seqDelta))
	storeBE(v[spliceValAckDelta:spliceValAckDelta+4], uint64(ackDelta))
	return v
}

// SpliceProgram assembles Listing 1 against the given VM and table. The
// returned program:
//   - redirects non-IPv4/TCP segments to the control plane,
//   - on SYN/FIN/RST atomically removes the map entry and redirects,
//   - passes unmatched segments to the FlexTOE data-plane,
//   - otherwise patches MACs, IPs, ports, and translates seq/ack by the
//     configured deltas, then transmits out the MAC (XDP_TX).
func SpliceProgram(vm *VM, tbl *HashMap) ([]Insn, error) {
	fd := vm.RegisterMap(tbl)
	a := NewAsm()

	// if (!segment_ipv4_tcp(hdr)) return XDP_REDIRECT;
	a.LoadMem(R3, R1, offEthType, SizeH)
	a.JmpImm(JNe, R3, 0x0800, "redirect")
	a.LoadMem(R3, R1, offIPProto, SizeB)
	a.JmpImm(JNe, R3, 6, "redirect")

	// Build the key on the stack: [-16..-4) = {src ip, dst ip, ports}.
	a.LoadMem(R3, R1, offIPSrc, SizeW)
	a.StoreMem(R10, R3, -16, SizeW)
	a.LoadMem(R3, R1, offIPDst, SizeW)
	a.StoreMem(R10, R3, -12, SizeW)
	a.LoadMem(R3, R1, offTCPSport, SizeH)
	a.StoreMem(R10, R3, -8, SizeH)
	a.LoadMem(R3, R1, offTCPDport, SizeH)
	a.StoreMem(R10, R3, -6, SizeH)

	// if (segment_tcp_ctrlflags(hdr)) { map_delete(key); return XDP_REDIRECT; }
	a.LoadMem(R3, R1, offTCPFlags, SizeB)
	a.MovReg(R6, R1)          // save packet base across calls
	a.AluImm(OpAnd, R3, 0x07) // FIN|SYN|RST
	a.JmpImm(JEq, R3, 0, "lookup")
	a.MovImm(R1, fd)
	a.MovReg(R2, R10)
	a.AluImm(OpAdd, R2, -16)
	a.CallHelper(HelperMapDelete)
	a.Jmp("redirect")

	// if (map_lookup(key) < 0) return XDP_PASS;
	a.Label("lookup")
	a.MovImm(R1, fd)
	a.MovReg(R2, R10)
	a.AluImm(OpAdd, R2, -16)
	a.CallHelper(HelperMapLookup)
	a.JmpImm(JNe, R0, 0, "patch")
	a.MovImm(R0, XDPPass)
	a.Exit()

	// patch_headers(hdr, state); return XDP_TX;
	a.Label("patch")
	a.MovReg(R7, R0) // value pointer
	a.MovReg(R1, R6) // packet base

	// eth.src = eth.dst
	a.LoadMem(R3, R1, offEthDst, SizeW)
	a.StoreMem(R1, R3, offEthSrc, SizeW)
	a.LoadMem(R3, R1, offEthDst+4, SizeH)
	a.StoreMem(R1, R3, offEthSrc+4, SizeH)
	// eth.dst = state->remote_mac
	a.LoadMem(R3, R7, spliceValRemoteMAC, SizeW)
	a.StoreMem(R1, R3, offEthDst, SizeW)
	a.LoadMem(R3, R7, spliceValRemoteMAC+4, SizeH)
	a.StoreMem(R1, R3, offEthDst+4, SizeH)
	// ip.src = ip.dst; ip.dst = state->remote_ip
	a.LoadMem(R3, R1, offIPDst, SizeW)
	a.StoreMem(R1, R3, offIPSrc, SizeW)
	a.LoadMem(R3, R7, spliceValRemoteIP, SizeW)
	a.StoreMem(R1, R3, offIPDst, SizeW)
	// tcp ports
	a.LoadMem(R3, R7, spliceValLocalPort, SizeH)
	a.StoreMem(R1, R3, offTCPSport, SizeH)
	a.LoadMem(R3, R7, spliceValRemotePort, SizeH)
	a.StoreMem(R1, R3, offTCPDport, SizeH)
	// tcp.seq += seq_delta; tcp.ack += ack_delta
	a.LoadMem(R3, R1, offTCPSeq, SizeW)
	a.LoadMem(R4, R7, spliceValSeqDelta, SizeW)
	a.AluReg(OpAdd, R3, R4)
	a.StoreMem(R1, R3, offTCPSeq, SizeW)
	a.LoadMem(R3, R1, offTCPAck, SizeW)
	a.LoadMem(R4, R7, spliceValAckDelta, SizeW)
	a.AluReg(OpAdd, R3, R4)
	a.StoreMem(R1, R3, offTCPAck, SizeW)
	a.MovImm(R0, XDPTx)
	a.Exit()

	a.Label("redirect")
	a.MovImm(R0, XDPRedirect)
	a.Exit()

	prog, err := a.Program()
	if err != nil {
		return nil, err
	}
	if err := vm.Verify(prog); err != nil {
		return nil, fmt.Errorf("splice program: %w", err)
	}
	return prog, nil
}

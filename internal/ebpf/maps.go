package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Map is a BPF map: fixed-size keys and values, shared between data-path
// programs and the control plane, with atomic updates (§3.3: "XDP modules
// may use BPF maps ... which may be modified by the control-plane").
type Map interface {
	Name() string
	KeySize() int
	ValueSize() int
	Lookup(key []byte) ([]byte, bool)
	Update(key, value []byte) error
	Delete(key []byte) bool
	Len() int
}

// ArrayMap is BPF_MAP_TYPE_ARRAY: preallocated, zero-initialized, indexed
// by a little-endian uint32 key.
type ArrayMap struct {
	name      string
	valueSize int
	entries   [][]byte
}

// NewArrayMap builds an array map with maxEntries slots.
func NewArrayMap(name string, valueSize, maxEntries int) *ArrayMap {
	m := &ArrayMap{name: name, valueSize: valueSize, entries: make([][]byte, maxEntries)}
	for i := range m.entries {
		m.entries[i] = make([]byte, valueSize)
	}
	return m
}

// Name returns the map name.
func (m *ArrayMap) Name() string { return m.name }

// KeySize is always 4 for array maps.
func (m *ArrayMap) KeySize() int { return 4 }

// ValueSize returns the value size.
func (m *ArrayMap) ValueSize() int { return m.valueSize }

// Len returns the number of slots.
func (m *ArrayMap) Len() int { return len(m.entries) }

func (m *ArrayMap) index(key []byte) (int, bool) {
	if len(key) < 4 {
		return 0, false
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx < 0 || idx >= len(m.entries) {
		return 0, false
	}
	return idx, true
}

// Lookup returns the value slot for key.
func (m *ArrayMap) Lookup(key []byte) ([]byte, bool) {
	idx, ok := m.index(key)
	if !ok {
		return nil, false
	}
	return m.entries[idx], true
}

// Update overwrites the slot for key.
func (m *ArrayMap) Update(key, value []byte) error {
	idx, ok := m.index(key)
	if !ok {
		return fmt.Errorf("ebpf: array index out of range")
	}
	copy(m.entries[idx], value)
	return nil
}

// Delete zeroes the slot (array entries cannot be removed).
func (m *ArrayMap) Delete(key []byte) bool {
	idx, ok := m.index(key)
	if !ok {
		return false
	}
	for i := range m.entries[idx] {
		m.entries[idx][i] = 0
	}
	return true
}

// HashMap is BPF_MAP_TYPE_HASH with byte-string keys.
type HashMap struct {
	name       string
	keySize    int
	valueSize  int
	maxEntries int
	m          map[string][]byte
}

// NewHashMap builds a hash map.
func NewHashMap(name string, keySize, valueSize, maxEntries int) *HashMap {
	return &HashMap{
		name: name, keySize: keySize, valueSize: valueSize,
		maxEntries: maxEntries, m: make(map[string][]byte),
	}
}

// Name returns the map name.
func (m *HashMap) Name() string { return m.name }

// KeySize returns the key size.
func (m *HashMap) KeySize() int { return m.keySize }

// ValueSize returns the value size.
func (m *HashMap) ValueSize() int { return m.valueSize }

// Len returns the live entry count.
func (m *HashMap) Len() int { return len(m.m) }

// Lookup returns the stored value.
func (m *HashMap) Lookup(key []byte) ([]byte, bool) {
	if len(key) != m.keySize {
		return nil, false
	}
	v, ok := m.m[string(key)]
	return v, ok
}

// Update inserts or replaces an entry.
func (m *HashMap) Update(key, value []byte) error {
	if len(key) != m.keySize {
		return fmt.Errorf("ebpf: key size %d != %d", len(key), m.keySize)
	}
	if _, exists := m.m[string(key)]; !exists && len(m.m) >= m.maxEntries {
		return fmt.Errorf("ebpf: map %s full (%d entries)", m.name, m.maxEntries)
	}
	v := make([]byte, m.valueSize)
	copy(v, value)
	m.m[string(key)] = v
	return nil
}

// Delete removes an entry, reporting whether it existed.
func (m *HashMap) Delete(key []byte) bool {
	if _, ok := m.m[string(key)]; !ok {
		return false
	}
	delete(m.m, string(key))
	return true
}

package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Memory layout constants: the VM exposes the packet at address 0, a
// stack below StackTop, and a scratch region where map helpers place
// values (lookup returns a scratch pointer, as the kernel returns a map
// value pointer).
const (
	StackSize   = 512
	StackBase   = 0x1000_0000
	StackTop    = StackBase + StackSize
	ScratchBase = 0x2000_0000
	ScratchSize = 4096
)

// Helper IDs (a subset of the kernel's, renumbered).
const (
	HelperMapLookup = 1
	HelperMapUpdate = 2
	HelperMapDelete = 3
	HelperKtime     = 4
	HelperTrace     = 5
	HelperCsumDiff  = 6
)

// MaxInstructions bounds one execution (the verifier's complexity limit
// stands in for termination checking).
const MaxInstructions = 100_000

// Execution errors.
var (
	ErrOutOfBounds  = errors.New("ebpf: memory access out of bounds")
	ErrDivByZero    = errors.New("ebpf: division by zero")
	ErrBadInsn      = errors.New("ebpf: unknown instruction")
	ErrTooLong      = errors.New("ebpf: instruction limit exceeded")
	ErrBadHelper    = errors.New("ebpf: unknown helper")
	ErrBadMap       = errors.New("ebpf: bad map reference")
	ErrWriteToFrame = errors.New("ebpf: write to read-only register r10")
)

// VM executes eBPF programs against packet memory and registered maps.
type VM struct {
	maps  []Map
	Clock func() uint64  // ktime source; nil = 0
	Trace func(id int64) // trace helper sink
}

// NewVM returns an empty VM.
func NewVM() *VM { return &VM{} }

// RegisterMap registers a map and returns its descriptor (used as the
// first argument to map helpers).
func (v *VM) RegisterMap(m Map) int32 {
	v.maps = append(v.maps, m)
	return int32(len(v.maps))
}

// Verify performs the static checks the kernel verifier would: known
// opcodes, jump targets in range, and no writes to R10.
func (v *VM) Verify(prog []Insn) error {
	if len(prog) == 0 {
		return fmt.Errorf("ebpf: empty program")
	}
	for pc, ins := range prog {
		cls := ins.Op & 0x07
		switch cls {
		case ClassALU, ClassALU64, ClassLDX, ClassSTX, ClassST:
			if ins.Dst >= NumRegs || ins.Src >= NumRegs {
				return fmt.Errorf("ebpf: bad register at %d: %v", pc, ins)
			}
			if (cls == ClassALU || cls == ClassALU64) && ins.Dst == R10 {
				return fmt.Errorf("ebpf: write to r10 at %d", pc)
			}
		case ClassJMP:
			op := ins.Op & 0xf0
			if op == Exit || op == Call {
				continue
			}
			target := pc + 1 + int(ins.Off)
			if target < 0 || target >= len(prog) {
				return fmt.Errorf("ebpf: jump out of range at %d: %v", pc, ins)
			}
		default:
			return fmt.Errorf("ebpf: unsupported class %#x at %d", cls, pc)
		}
	}
	last := prog[len(prog)-1]
	if last.Op&0x07 == ClassJMP && (last.Op&0xf0 == Exit || last.Op&0xf0 == JA) {
		return nil
	}
	return fmt.Errorf("ebpf: program does not end in exit or jump")
}

// memory bundles the VM's address regions for one execution.
type memory struct {
	pkt     []byte
	stack   [StackSize]byte
	scratch [ScratchSize]byte
}

func (m *memory) slice(addr uint64, size int) ([]byte, error) {
	switch {
	case addr+uint64(size) <= uint64(len(m.pkt)):
		return m.pkt[addr : addr+uint64(size)], nil
	case addr >= StackBase && addr+uint64(size) <= StackTop:
		off := addr - StackBase
		return m.stack[off : off+uint64(size)], nil
	case addr >= ScratchBase && addr+uint64(size) <= ScratchBase+ScratchSize:
		off := addr - ScratchBase
		return m.scratch[off : off+uint64(size)], nil
	}
	return nil, ErrOutOfBounds
}

// Result reports one program execution.
type Result struct {
	R0           uint64
	Instructions int64
}

// Run executes prog with R1 = packet address (0) and R2 = packet length.
// It returns R0 (the XDP verdict) and the executed instruction count.
func (v *VM) Run(prog []Insn, pkt []byte) (Result, error) {
	var regs [NumRegs]uint64
	mem := &memory{pkt: pkt}
	regs[R1] = 0
	regs[R2] = uint64(len(pkt))
	regs[R10] = StackTop

	scratchUsed := 0
	pc := 0
	var count int64
	for {
		if count >= MaxInstructions {
			return Result{Instructions: count}, ErrTooLong
		}
		if pc < 0 || pc >= len(prog) {
			return Result{Instructions: count}, fmt.Errorf("ebpf: pc %d out of range", pc)
		}
		ins := prog[pc]
		count++
		cls := ins.Op & 0x07
		switch cls {
		case ClassALU64, ClassALU:
			var src uint64
			if ins.Op&SrcReg != 0 {
				src = regs[ins.Src]
			} else {
				src = uint64(int64(ins.Imm))
			}
			dst := regs[ins.Dst]
			var out uint64
			switch ins.Op & 0xf0 {
			case OpAdd:
				out = dst + src
			case OpSub:
				out = dst - src
			case OpMul:
				out = dst * src
			case OpDiv:
				if src == 0 {
					return Result{Instructions: count}, ErrDivByZero
				}
				out = dst / src
			case OpOr:
				out = dst | src
			case OpAnd:
				out = dst & src
			case OpLsh:
				out = dst << (src & 63)
			case OpRsh:
				out = dst >> (src & 63)
			case OpNeg:
				out = uint64(-int64(dst))
			case OpMod:
				if src == 0 {
					return Result{Instructions: count}, ErrDivByZero
				}
				out = dst % src
			case OpXor:
				out = dst ^ src
			case OpMov:
				out = src
			case OpArsh:
				out = uint64(int64(dst) >> (src & 63))
			case OpEnd:
				out = dst // byte-swap treated as no-op (simulation is BE on the wire already)
			default:
				return Result{Instructions: count}, ErrBadInsn
			}
			if cls == ClassALU {
				out = uint64(uint32(out))
			}
			regs[ins.Dst] = out
			pc++

		case ClassLDX:
			size := sizeOf(ins.Op)
			if size == 0 {
				return Result{Instructions: count}, ErrBadInsn
			}
			b, err := mem.slice(regs[ins.Src]+uint64(int64(ins.Off)), size)
			if err != nil {
				return Result{Instructions: count}, err
			}
			regs[ins.Dst] = loadBE(b)
			pc++

		case ClassSTX, ClassST:
			size := sizeOf(ins.Op)
			if size == 0 {
				return Result{Instructions: count}, ErrBadInsn
			}
			b, err := mem.slice(regs[ins.Dst]+uint64(int64(ins.Off)), size)
			if err != nil {
				return Result{Instructions: count}, err
			}
			var val uint64
			if cls == ClassSTX {
				val = regs[ins.Src]
			} else {
				val = uint64(int64(ins.Imm))
			}
			storeBE(b, val)
			pc++

		case ClassJMP:
			op := ins.Op & 0xf0
			if op == Exit {
				return Result{R0: regs[R0], Instructions: count}, nil
			}
			if op == Call {
				if err := v.call(ins.Imm, &regs, mem, &scratchUsed); err != nil {
					return Result{Instructions: count}, err
				}
				pc++
				continue
			}
			var src uint64
			if ins.Op&SrcReg != 0 {
				src = regs[ins.Src]
			} else {
				src = uint64(int64(ins.Imm))
			}
			dst := regs[ins.Dst]
			taken := false
			switch op {
			case JA:
				taken = true
			case JEq:
				taken = dst == src
			case JGt:
				taken = dst > src
			case JGe:
				taken = dst >= src
			case JSet:
				taken = dst&src != 0
			case JNe:
				taken = dst != src
			case JSGt:
				taken = int64(dst) > int64(src)
			case JSGe:
				taken = int64(dst) >= int64(src)
			case JLt:
				taken = dst < src
			case JLe:
				taken = dst <= src
			case JSLt:
				taken = int64(dst) < int64(src)
			case JSLe:
				taken = int64(dst) <= int64(src)
			default:
				return Result{Instructions: count}, ErrBadInsn
			}
			if taken {
				pc += 1 + int(ins.Off)
			} else {
				pc++
			}

		default:
			return Result{Instructions: count}, ErrBadInsn
		}
	}
}

func sizeOf(op uint8) int {
	switch op & 0x18 {
	case SizeB:
		return 1
	case SizeH:
		return 2
	case SizeW:
		return 4
	case SizeDW:
		return 8
	}
	return 0
}

func loadBE(b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.BigEndian.Uint16(b))
	case 4:
		return uint64(binary.BigEndian.Uint32(b))
	default:
		return binary.BigEndian.Uint64(b)
	}
}

func storeBE(b []byte, v uint64) {
	switch len(b) {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.BigEndian.PutUint16(b, uint16(v))
	case 4:
		binary.BigEndian.PutUint32(b, uint32(v))
	default:
		binary.BigEndian.PutUint64(b, v)
	}
}

// call dispatches a helper. Map helpers take (mapfd in R1, key ptr in R2,
// value ptr in R3 for update).
func (v *VM) call(id int32, regs *[NumRegs]uint64, mem *memory, scratchUsed *int) error {
	switch id {
	case HelperMapLookup:
		m, err := v.mapOf(regs[R1])
		if err != nil {
			return err
		}
		key, err := mem.slice(regs[R2], m.KeySize())
		if err != nil {
			return err
		}
		val, ok := m.Lookup(key)
		if !ok {
			regs[R0] = 0
			return nil
		}
		// Copy the value into scratch and return a pointer to it.
		if *scratchUsed+len(val) > ScratchSize {
			*scratchUsed = 0
		}
		off := *scratchUsed
		copy(mem.scratch[off:], val)
		*scratchUsed += (len(val) + 7) &^ 7
		regs[R0] = ScratchBase + uint64(off)
	case HelperMapUpdate:
		m, err := v.mapOf(regs[R1])
		if err != nil {
			return err
		}
		key, err := mem.slice(regs[R2], m.KeySize())
		if err != nil {
			return err
		}
		val, err := mem.slice(regs[R3], m.ValueSize())
		if err != nil {
			return err
		}
		if err := m.Update(key, val); err != nil {
			regs[R0] = ^uint64(0) // -1
			return nil
		}
		regs[R0] = 0
	case HelperMapDelete:
		m, err := v.mapOf(regs[R1])
		if err != nil {
			return err
		}
		key, err := mem.slice(regs[R2], m.KeySize())
		if err != nil {
			return err
		}
		if m.Delete(key) {
			regs[R0] = 0
		} else {
			regs[R0] = ^uint64(0)
		}
	case HelperKtime:
		if v.Clock != nil {
			regs[R0] = v.Clock()
		} else {
			regs[R0] = 0
		}
	case HelperTrace:
		if v.Trace != nil {
			v.Trace(int64(regs[R1]))
		}
		regs[R0] = 0
	case HelperCsumDiff:
		// csum_diff(old, new) — returns the RFC 1624 adjustment input;
		// the data-path applies it on egress. Modeled as a no-op value.
		regs[R0] = regs[R1] ^ regs[R2]
	default:
		return ErrBadHelper
	}
	return nil
}

func (v *VM) mapOf(fd uint64) (Map, error) {
	idx := int(fd) - 1
	if idx < 0 || idx >= len(v.maps) {
		return nil, ErrBadMap
	}
	return v.maps[idx], nil
}

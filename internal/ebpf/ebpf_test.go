package ebpf

import (
	"bytes"
	"testing"
	"testing/quick"

	"flextoe/internal/packet"
	"flextoe/internal/xdp"
)

func run(t *testing.T, prog []Insn, pkt []byte) Result {
	t.Helper()
	vm := NewVM()
	if err := vm.Verify(prog); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := vm.Run(prog, pkt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestALUArithmetic(t *testing.T) {
	prog := NewAsm().
		MovImm(R0, 10).
		AluImm(OpAdd, R0, 32).
		AluImm(OpMul, R0, 2).
		AluImm(OpSub, R0, 4).
		AluImm(OpDiv, R0, 8).
		Exit().MustProgram()
	if res := run(t, prog, nil); res.R0 != 10 {
		t.Fatalf("R0 = %d", res.R0) // ((10+32)*2-4)/8 = 10
	}
}

func TestALURegisterOps(t *testing.T) {
	prog := NewAsm().
		MovImm(R1, 0xF0).
		MovImm(R2, 0x0F).
		MovReg(R0, R1).
		AluReg(OpOr, R0, R2).
		AluImm(OpXor, R0, 0xFF).
		Exit().MustProgram()
	if res := run(t, prog, nil); res.R0 != 0 {
		t.Fatalf("R0 = %d", res.R0)
	}
}

func TestShiftsAndNeg(t *testing.T) {
	prog := NewAsm().
		MovImm(R0, 1).
		AluImm(OpLsh, R0, 8).
		AluImm(OpRsh, R0, 4).
		AluImm(OpNeg, R0, 0).
		Exit().MustProgram()
	if res := run(t, prog, nil); int64(res.R0) != -16 {
		t.Fatalf("R0 = %d", int64(res.R0))
	}
}

func TestDivByZeroFaults(t *testing.T) {
	prog := NewAsm().
		MovImm(R0, 5).
		AluImm(OpDiv, R0, 0).
		Exit().MustProgram()
	vm := NewVM()
	if _, err := vm.Run(prog, nil); err != ErrDivByZero {
		t.Fatalf("err = %v", err)
	}
}

func TestPacketLoadStore(t *testing.T) {
	pkt := []byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0}
	prog := NewAsm().
		LoadMem(R0, R1, 0, SizeW). // big-endian load
		StoreImm(R1, 4, SizeW, 0x12345678).
		Exit().MustProgram()
	res := run(t, prog, pkt)
	if res.R0 != 0xdeadbeef {
		t.Fatalf("R0 = %#x", res.R0)
	}
	if pkt[4] != 0x12 || pkt[7] != 0x78 {
		t.Fatalf("store failed: %x", pkt)
	}
}

func TestOutOfBoundsFaults(t *testing.T) {
	prog := NewAsm().
		LoadMem(R0, R1, 100, SizeW).
		Exit().MustProgram()
	vm := NewVM()
	if _, err := vm.Run(prog, make([]byte, 8)); err != ErrOutOfBounds {
		t.Fatalf("err = %v", err)
	}
}

func TestStackAccess(t *testing.T) {
	prog := NewAsm().
		StoreImm(R10, -8, SizeDW, 4242).
		LoadMem(R0, R10, -8, SizeDW).
		Exit().MustProgram()
	if res := run(t, prog, nil); res.R0 != 4242 {
		t.Fatalf("R0 = %d", res.R0)
	}
}

func TestBranches(t *testing.T) {
	// abs(x - 50) via conditional branch, x in packet byte 0.
	prog := NewAsm().
		LoadMem(R0, R1, 0, SizeB).
		AluImm(OpSub, R0, 50).
		JmpImm(JSGe, R0, 0, "done").
		AluImm(OpNeg, R0, 0).
		Label("done").
		Exit().MustProgram()
	if res := run(t, prog, []byte{80}); res.R0 != 30 {
		t.Fatalf("R0 = %d", res.R0)
	}
	if res := run(t, prog, []byte{20}); res.R0 != 30 {
		t.Fatalf("R0 = %d", res.R0)
	}
}

func TestLoopWithBackwardJump(t *testing.T) {
	// Sum 1..10 with a loop: R2 counter, R0 accumulator.
	prog := NewAsm().
		MovImm(R0, 0).
		MovImm(R2, 10).
		Label("loop").
		AluReg(OpAdd, R0, R2).
		AluImm(OpSub, R2, 1).
		JmpImm(JGt, R2, 0, "loop").
		Exit().MustProgram()
	res := run(t, prog, nil)
	if res.R0 != 55 {
		t.Fatalf("R0 = %d", res.R0)
	}
	if res.Instructions < 30 {
		t.Fatalf("instruction count = %d", res.Instructions)
	}
}

func TestInstructionLimit(t *testing.T) {
	prog := NewAsm().
		Label("spin").
		MovImm(R0, 1).
		Jmp("spin").
		Exit().MustProgram()
	vm := NewVM()
	if _, err := vm.Run(prog, nil); err != ErrTooLong {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifierRejects(t *testing.T) {
	vm := NewVM()
	// Jump out of range.
	bad := []Insn{{Op: ClassJMP | JA, Off: 100}}
	if err := vm.Verify(bad); err == nil {
		t.Fatal("out-of-range jump accepted")
	}
	// Write to R10.
	bad = []Insn{{Op: ClassALU64 | OpMov | SrcImm, Dst: R10}, {Op: ClassJMP | Exit}}
	if err := vm.Verify(bad); err == nil {
		t.Fatal("write to r10 accepted")
	}
	// No exit.
	bad = []Insn{{Op: ClassALU64 | OpMov | SrcImm, Dst: R0}}
	if err := vm.Verify(bad); err == nil {
		t.Fatal("missing exit accepted")
	}
	// Empty.
	if err := vm.Verify(nil); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestArrayMap(t *testing.T) {
	m := NewArrayMap("counters", 8, 4)
	key := make([]byte, 4) // index 0
	v, ok := m.Lookup(key)
	if !ok || len(v) != 8 {
		t.Fatal("lookup of preallocated slot failed")
	}
	if err := m.Update(key, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	v, _ = m.Lookup(key)
	if v[0] != 1 || v[7] != 8 {
		t.Fatalf("value = %v", v)
	}
	// Out-of-range index.
	bad := []byte{10, 0, 0, 0}
	if _, ok := m.Lookup(bad); ok {
		t.Fatal("out-of-range lookup succeeded")
	}
}

func TestHashMapCapacityAndDelete(t *testing.T) {
	m := NewHashMap("tbl", 4, 4, 2)
	if err := m.Update([]byte{1, 0, 0, 0}, []byte{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Update([]byte{2, 0, 0, 0}, []byte{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Update([]byte{3, 0, 0, 0}, []byte{3, 3, 3, 3}); err == nil {
		t.Fatal("update beyond capacity succeeded")
	}
	if !m.Delete([]byte{1, 0, 0, 0}) {
		t.Fatal("delete failed")
	}
	if m.Delete([]byte{1, 0, 0, 0}) {
		t.Fatal("double delete succeeded")
	}
	if err := m.Update([]byte{3, 0, 0, 0}, []byte{3, 3, 3, 3}); err != nil {
		t.Fatal("update after delete failed")
	}
}

func TestMapHelpersFromProgram(t *testing.T) {
	vm := NewVM()
	m := NewHashMap("state", 4, 8, 16)
	fd := vm.RegisterMap(m)
	// Program: store key 7 on stack, look it up; if missing return 1,
	// else load first 8 bytes of value into R0.
	prog := NewAsm().
		StoreImm(R10, -4, SizeW, 7).
		MovImm(R1, fd).
		MovReg(R2, R10).
		AluImm(OpAdd, R2, -4).
		CallHelper(HelperMapLookup).
		JmpImm(JNe, R0, 0, "found").
		MovImm(R0, 1).
		Exit().
		Label("found").
		LoadMem(R0, R0, 0, SizeDW).
		Exit().MustProgram()
	if err := vm.Verify(prog); err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.R0 != 1 {
		t.Fatalf("missing entry: R0 = %d", res.R0)
	}
	// Insert via the control plane and re-run.
	key := make([]byte, 4)
	storeBE(key, 7)
	val := make([]byte, 8)
	storeBE(val, 0xCAFE)
	if err := m.Update(key, val); err != nil {
		t.Fatal(err)
	}
	res, err = vm.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.R0 != 0xCAFE {
		t.Fatalf("R0 = %#x", res.R0)
	}
}

func makeTCPFrame(t *testing.T, srcIP, dstIP packet.IPv4Addr, sport, dport uint16, flags uint8) []byte {
	t.Helper()
	p := &packet.Packet{
		Eth: packet.Ethernet{
			Dst: packet.MAC(2, 0, 0, 0, 0, 9), Src: packet.MAC(2, 0, 0, 0, 0, 8),
			EtherType: packet.EtherTypeIPv4,
		},
		IP:      packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: srcIP, Dst: dstIP},
		TCP:     packet.TCP{SrcPort: sport, DstPort: dport, Seq: 1000, Ack: 2000, Flags: flags, WScale: -1},
		Payload: []byte("splice me"),
	}
	return p.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
}

func TestSpliceProgram(t *testing.T) {
	vm := NewVM()
	tbl := NewSpliceTable()
	prog, err := SpliceProgram(vm, tbl)
	if err != nil {
		t.Fatal(err)
	}
	xp, err := LoadXDP("splice", vm, prog)
	if err != nil {
		t.Fatal(err)
	}

	clientIP := packet.IP(10, 0, 0, 1)
	proxyIP := packet.IP(10, 0, 0, 2)
	serverIP := packet.IP(10, 0, 0, 3)
	serverMAC := [6]byte{2, 0, 0, 0, 0, 3}

	// No entry: pass to the data-plane.
	frame := makeTCPFrame(t, clientIP, proxyIP, 5000, 80, packet.FlagACK|packet.FlagPSH)
	v, instr := xp.Run(&xdp.Context{Data: frame})
	if v != xdp.Pass {
		t.Fatalf("verdict = %v", v)
	}
	if instr == 0 {
		t.Fatal("no instructions counted")
	}

	// Install a splice entry: client->proxy rewrites to proxy->server.
	key := SpliceKey(uint32(clientIP), uint32(proxyIP), 5000, 80)
	val := SpliceValue(serverMAC, uint32(serverIP), 6000, 8080, 111, 222)
	if err := tbl.Update(key, val); err != nil {
		t.Fatal(err)
	}

	frame = makeTCPFrame(t, clientIP, proxyIP, 5000, 80, packet.FlagACK|packet.FlagPSH)
	v, _ = xp.Run(&xdp.Context{Data: frame})
	if v != xdp.TX {
		t.Fatalf("verdict = %v, want XDP_TX", v)
	}
	// Decode the patched frame and check every rewritten field.
	out, err := packet.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out.Eth.Dst != packet.EtherAddr(serverMAC) {
		t.Fatalf("dst MAC = %v", out.Eth.Dst)
	}
	if out.IP.Src != proxyIP || out.IP.Dst != serverIP {
		t.Fatalf("IPs = %v -> %v", out.IP.Src, out.IP.Dst)
	}
	if out.TCP.SrcPort != 6000 || out.TCP.DstPort != 8080 {
		t.Fatalf("ports = %d -> %d", out.TCP.SrcPort, out.TCP.DstPort)
	}
	if out.TCP.Seq != 1000+111 || out.TCP.Ack != 2000+222 {
		t.Fatalf("seq/ack = %d/%d", out.TCP.Seq, out.TCP.Ack)
	}

	// Control flags remove the entry and redirect.
	frame = makeTCPFrame(t, clientIP, proxyIP, 5000, 80, packet.FlagFIN|packet.FlagACK)
	v, _ = xp.Run(&xdp.Context{Data: frame})
	if v != xdp.Redirect {
		t.Fatalf("FIN verdict = %v", v)
	}
	if tbl.Len() != 0 {
		t.Fatal("map entry not removed on FIN")
	}
}

func TestSpliceRedirectsNonTCP(t *testing.T) {
	vm := NewVM()
	tbl := NewSpliceTable()
	prog, err := SpliceProgram(vm, tbl)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 64)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	res, err := vm.Run(prog, frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.R0 != XDPRedirect {
		t.Fatalf("R0 = %d", res.R0)
	}
}

func TestALUPropertyAddSub(t *testing.T) {
	// Property: (x + y) - y == x through the VM.
	f := func(x, y int32) bool {
		prog := NewAsm().
			MovImm(R0, x).
			AluImm(OpAdd, R0, y).
			AluImm(OpSub, R0, y).
			Exit().MustProgram()
		vm := NewVM()
		res, err := vm.Run(prog, nil)
		return err == nil && res.R0 == uint64(int64(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryPropertyRoundTrip(t *testing.T) {
	// Property: store then load through the VM returns the value
	// (truncated to the access size).
	f := func(v uint32, off uint8) bool {
		offset := int16(off % 60)
		prog := NewAsm().
			MovImm(R3, int32(v)).
			StoreMem(R1, R3, offset, SizeW).
			LoadMem(R0, R1, offset, SizeW).
			Exit().MustProgram()
		vm := NewVM()
		res, err := vm.Run(prog, make([]byte, 64))
		return err == nil && uint32(res.R0) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXDPAdapterFaultDrops(t *testing.T) {
	vm := NewVM()
	prog := NewAsm().
		LoadMem(R0, R1, 1000, SizeW). // out of bounds
		Exit().MustProgram()
	xp, err := LoadXDP("faulty", vm, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := xp.Run(&xdp.Context{Data: make([]byte, 10)})
	if v != xdp.Drop {
		t.Fatalf("verdict = %v, want Drop (XDP_ABORTED semantics)", v)
	}
}

func TestNativeModules(t *testing.T) {
	// VLAN strip.
	p := &packet.Packet{
		Eth:  packet.Ethernet{Dst: packet.MAC(2, 0, 0, 0, 0, 1), Src: packet.MAC(2, 0, 0, 0, 0, 2)},
		VLAN: &packet.VLAN{ID: 7, EtherType: packet.EtherTypeIPv4},
		IP:   packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: packet.IP(1, 1, 1, 1), Dst: packet.IP(2, 2, 2, 2)},
		TCP:  packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK, WScale: -1},
	}
	frame := p.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
	ctx := &xdp.Context{Data: frame}
	strip := xdp.VLANStrip()
	v, _ := strip.Run(ctx)
	if v != xdp.Pass {
		t.Fatalf("verdict = %v", v)
	}
	out, err := packet.Decode(ctx.Data)
	if err != nil {
		t.Fatal(err)
	}
	if out.VLAN != nil {
		t.Fatal("VLAN tag survived strip")
	}

	// Firewall.
	fw := xdp.NewFirewall()
	fw.Block(uint32(packet.IP(1, 1, 1, 1)))
	frame2 := makeTCPFrame(t, packet.IP(1, 1, 1, 1), packet.IP(2, 2, 2, 2), 1, 2, packet.FlagACK)
	v, _ = fw.Run(&xdp.Context{Data: frame2})
	if v != xdp.Drop {
		t.Fatalf("firewall verdict = %v", v)
	}
	fw.Unblock(uint32(packet.IP(1, 1, 1, 1)))
	v, _ = fw.Run(&xdp.Context{Data: frame2})
	if v != xdp.Pass {
		t.Fatalf("firewall verdict after unblock = %v", v)
	}

	// Flow classifier.
	fc := xdp.NewFlowClassifier()
	for i := 0; i < 5; i++ {
		fc.Run(&xdp.Context{Data: frame2})
	}
	cnt, ok := fc.Lookup(uint32(packet.IP(1, 1, 1, 1)), uint32(packet.IP(2, 2, 2, 2)), 1, 2)
	if !ok || cnt.Packets != 5 {
		t.Fatalf("classifier count = %+v ok=%v", cnt, ok)
	}
	if fc.Flows() != 1 {
		t.Fatalf("flows = %d", fc.Flows())
	}

	if !bytes.Equal(frame2, frame2) {
		t.Fatal("unreachable")
	}
}

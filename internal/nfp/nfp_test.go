package nfp

import (
	"testing"
	"testing/quick"

	"flextoe/internal/sim"
)

func TestFPCSingleTaskTiming(t *testing.T) {
	eng := sim.New()
	cfg := AgilioCX40()
	f := NewFPC(eng, "fpc0", &cfg)
	var doneAt sim.Time
	eng.At(0, func() {
		f.Submit(sim.TaskC(100), func() { doneAt = eng.Now() })
	})
	eng.Run()
	// 100 cycles at 800 MHz = 125 ns.
	if doneAt != 125*sim.Nanosecond {
		t.Fatalf("done at %v", doneAt)
	}
	if f.Instructions != 100 || f.Tasks != 1 {
		t.Fatalf("counters: instr=%d tasks=%d", f.Instructions, f.Tasks)
	}
}

func TestFPCComputeSerializesAcrossThreads(t *testing.T) {
	// Two pure-compute tasks cannot overlap: one issue slot.
	eng := sim.New()
	cfg := AgilioCX40()
	f := NewFPC(eng, "fpc0", &cfg)
	var times []sim.Time
	eng.At(0, func() {
		f.Submit(sim.TaskC(100), func() { times = append(times, eng.Now()) })
		f.Submit(sim.TaskC(100), func() { times = append(times, eng.Now()) })
	})
	eng.Run()
	if times[0] != 125*sim.Nanosecond || times[1] != 250*sim.Nanosecond {
		t.Fatalf("times = %v", times)
	}
}

func TestFPCThreadsHideStalls(t *testing.T) {
	// Tasks that stall let other threads' compute proceed: with 8
	// threads, 8 tasks of (100 compute, 1000ns stall) finish in
	// ~(8*125ns serial compute) + 1000ns, not 8*(125+1000).
	eng := sim.New()
	cfg := AgilioCX40()
	f := NewFPC(eng, "fpc0", &cfg)
	var last sim.Time
	eng.At(0, func() {
		for i := 0; i < 8; i++ {
			f.Submit(sim.TaskC(100).Add(0, 1000*sim.Nanosecond), func() { last = eng.Now() })
		}
	})
	eng.Run()
	want := 8*125*sim.Nanosecond + 1000*sim.Nanosecond
	if last != want {
		t.Fatalf("last = %v, want %v", last, want)
	}
}

func TestFPCSingleThreadSerializesStalls(t *testing.T) {
	// The Table 3 ablation: with 1 thread, stalls serialize too.
	eng := sim.New()
	cfg := AgilioCX40()
	f := NewFPC(eng, "fpc0", &cfg)
	f.SetThreads(1)
	var last sim.Time
	eng.At(0, func() {
		for i := 0; i < 4; i++ {
			f.Submit(sim.TaskC(100).Add(0, 1000*sim.Nanosecond), func() { last = eng.Now() })
		}
	})
	eng.Run()
	want := 4 * (125*sim.Nanosecond + 1000*sim.Nanosecond)
	if last != want {
		t.Fatalf("last = %v, want %v", last, want)
	}
}

func TestFPCFreeThreadsAndRunq(t *testing.T) {
	eng := sim.New()
	cfg := AgilioCX40()
	f := NewFPC(eng, "fpc0", &cfg)
	done := 0
	eng.At(0, func() {
		if f.FreeThreads() != 8 {
			t.Errorf("FreeThreads = %d", f.FreeThreads())
		}
		for i := 0; i < 12; i++ { // 4 beyond thread count
			f.Submit(sim.TaskC(10), func() { done++ })
		}
		if f.FreeThreads() != 0 {
			t.Errorf("FreeThreads after submit = %d", f.FreeThreads())
		}
	})
	eng.Run()
	if done != 12 {
		t.Fatalf("done = %d", done)
	}
}

func TestFPCIdleCallback(t *testing.T) {
	eng := sim.New()
	cfg := AgilioCX40()
	f := NewFPC(eng, "fpc0", &cfg)
	idleCalls := 0
	f.Idle = func() { idleCalls++ }
	eng.At(0, func() {
		f.Submit(sim.TaskC(10), nil)
	})
	eng.Run()
	if idleCalls == 0 {
		t.Fatal("Idle never invoked")
	}
}

func TestFPCUtilization(t *testing.T) {
	eng := sim.New()
	cfg := AgilioCX40()
	f := NewFPC(eng, "fpc0", &cfg)
	eng.At(0, func() { f.Submit(sim.TaskC(800), nil) }) // 1 us busy
	eng.At(0, func() {})
	eng.Run()
	// Engine ends at 1us; utilization should be 1.0.
	if u := f.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestCacheDirectMappedConflicts(t *testing.T) {
	c := NewCache(4, 1)
	// Keys 0 and 4 conflict (same set).
	c.Access(0)
	if !c.Access(0) {
		t.Fatal("immediate re-access missed")
	}
	c.Access(4)
	if c.Access(0) {
		t.Fatal("conflicting key not evicted in direct-mapped cache")
	}
}

func TestCacheLRUFullyAssociative(t *testing.T) {
	c := NewCache(4, 4)
	for k := uint64(0); k < 4; k++ {
		c.Access(k)
	}
	// Touch 0 to make it most recent; insert 4 -> evicts 1.
	c.Access(0)
	c.Access(4)
	if !c.Contains(0) {
		t.Fatal("recently used entry evicted")
	}
	if c.Contains(1) {
		t.Fatal("LRU entry not evicted")
	}
}

func TestCacheHitRate(t *testing.T) {
	c := NewCache(16, 16)
	for i := 0; i < 100; i++ {
		c.Access(uint64(i % 8)) // working set fits
	}
	if c.HitRate() < 0.9 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(8, 2)
	c.Access(3)
	c.Invalidate(3)
	if c.Contains(3) {
		t.Fatal("entry survives invalidate")
	}
}

func TestCachePropertyInstallAfterMiss(t *testing.T) {
	// Property: immediately after any access, the key is present.
	f := func(keys []uint64) bool {
		c := NewCache(32, 4)
		for _, k := range keys {
			c.Access(k)
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateCacheLatencyLevels(t *testing.T) {
	eng := sim.New()
	cfg := AgilioCX40()
	cls := NewCLSCache(&cfg)
	emem := NewEMEMCache(&cfg)
	sc := NewStateCache(&cfg, cls, emem)
	_ = eng

	// First access: miss everywhere -> DRAM latency.
	if got := sc.Access(1); got != cfg.CyclesTime(cfg.DRAMCycles) {
		t.Fatalf("cold access stall = %v", got)
	}
	// Second access: local CAM hit.
	if got := sc.Access(1); got != cfg.CyclesTime(cfg.LocalMemCycles) {
		t.Fatalf("warm access stall = %v", got)
	}
	// Evict from local CAM by touching 16 other connections; CLS keeps it.
	for k := uint64(100); k < 116; k++ {
		sc.Access(k)
	}
	if got := sc.Access(1); got != cfg.CyclesTime(cfg.CLSCycles) {
		t.Fatalf("CLS access stall = %v", got)
	}
}

func TestStateCacheScalingKnee(t *testing.T) {
	// With a working set beyond CLS capacity, mean stall grows — the
	// Fig. 13 mechanism.
	cfg := AgilioCX40()
	measure := func(conns int) float64 {
		cls := NewCLSCache(&cfg)
		emem := NewEMEMCache(&cfg)
		sc := NewStateCache(&cfg, cls, emem)
		var total sim.Time
		n := 0
		for round := 0; round < 20; round++ {
			for c := 0; c < conns; c++ {
				total += sc.Access(uint64(c))
				n++
			}
		}
		return float64(total) / float64(n)
	}
	small := measure(256)  // fits CLS
	large := measure(4096) // spills to EMEM
	huge := measure(40000) // spills to DRAM
	if !(small < large && large < huge) {
		t.Fatalf("no scaling knee: %v %v %v", small, large, huge)
	}
}

func TestDMAEngineLatencyAndBandwidth(t *testing.T) {
	eng := sim.New()
	cfg := AgilioCX40()
	d := NewDMAEngine(eng, &cfg)
	var doneAt sim.Time
	eng.At(0, func() {
		d.Issue(788, func() { doneAt = eng.Now() }) // 100ns of wire + latency
	})
	eng.Run()
	want := sim.Time(float64(788)/cfg.PCIeBytesPerSec*1e12) + cfg.PCIeLatency
	if doneAt < want-2 || doneAt > want+2 {
		t.Fatalf("done at %v, want ~%v", doneAt, want)
	}
}

func TestDMAEngineInflightLimit(t *testing.T) {
	eng := sim.New()
	cfg := AgilioCX40()
	cfg.DMAMaxInflight = 4
	d := NewDMAEngine(eng, &cfg)
	completed := 0
	eng.At(0, func() {
		for i := 0; i < 20; i++ {
			d.Issue(1000, func() { completed++ })
		}
		if d.Inflight() != 4 {
			t.Errorf("inflight = %d, want 4", d.Inflight())
		}
	})
	eng.Run()
	if completed != 20 {
		t.Fatalf("completed = %d", completed)
	}
	if d.PeakInflight != 4 {
		t.Fatalf("peak inflight = %d", d.PeakInflight)
	}
}

func TestDMAOverlapsTransactions(t *testing.T) {
	// Two transactions issued together: bandwidth serializes the wire,
	// but latency overlaps — total well under 2*(wire+latency).
	eng := sim.New()
	cfg := AgilioCX40()
	d := NewDMAEngine(eng, &cfg)
	var last sim.Time
	wire := sim.Time(float64(7880) / cfg.PCIeBytesPerSec * 1e12) // 1us
	eng.At(0, func() {
		d.Issue(7880, func() {})
		d.Issue(7880, func() { last = eng.Now() })
	})
	eng.Run()
	want := 2*wire + cfg.PCIeLatency
	if last < want-2 || last > want+2 {
		t.Fatalf("last = %v, want ~%v", last, want)
	}
}

func TestConfigCycleTime(t *testing.T) {
	cfg := AgilioCX40()
	if cfg.CyclePs() != 1250*sim.Picosecond {
		t.Fatalf("cycle = %v", cfg.CyclePs())
	}
	if cfg.CyclesTime(1500) != 1875*sim.Nanosecond {
		// The paper's ECN-gradient example: 1,500 cycles = 1.9us.
		t.Fatalf("1500 cycles = %v", cfg.CyclesTime(1500))
	}
	lx := AgilioLX()
	if lx.FPCHz != 1200e6 {
		t.Fatal("LX clock")
	}
}

// Package nfp models the Netronome NFP-4000 network processor that the
// Agilio-CX40 implementation of FlexTOE targets (§2.3, §4): flow
// processing cores (FPCs) with eight hardware threads over a single issue
// slot, islands with local memories (CLS, CTM), shared SRAM (IMEM) and
// DRAM (EMEM) with the paper's published access latencies, content-
// addressable caches, and an asynchronous PCIe DMA engine with 256
// transaction slots.
//
// The model captures the properties the paper's design arguments rest on:
// wimpy single-issue cores where sequential execution is slow, hardware
// multithreading that hides memory stalls (Table 3's 2.25× step), and an
// order-of-magnitude spread in memory access latency that makes caching
// decisive (Fig. 13).
package nfp

import (
	"flextoe/internal/sim"
)

// Config describes an NFP-4000-class part.
type Config struct {
	FPCHz      int64 // FPC clock (Agilio CX: 800 MHz; Agilio LX: 1.2 GHz)
	Threads    int   // hardware threads per FPC (8)
	FPCsPerIsl int   // FPCs per general-purpose island (12)
	Islands    int   // general-purpose islands (5)

	// Memory access latencies in FPC cycles (§2.3: CLS/CTM up to 100,
	// IMEM up to 250, EMEM up to 500; DRAM behind the EMEM cache costs
	// more).
	LocalMemCycles int
	CLSCycles      int
	CTMCycles      int
	IMEMCycles     int
	EMEMCycles     int
	DRAMCycles     int

	// Cache geometry (§4.1).
	LocalCAMEntries  int // per-FPC fully associative LRU (16)
	CLSCacheEntries  int // per-island direct-mapped (512)
	EMEMCacheEntries int // EMEM's 3 MB SRAM cache, in connection states
	PreLookupEntries int // pre-processor's direct-mapped lookup cache (128)

	// PCIe Gen3 x8 DMA engine (§2.3).
	PCIeBytesPerSec float64
	PCIeLatency     sim.Time // per-transaction round-trip latency
	DMAMaxInflight  int      // asynchronous transaction slots (256)

	// MMIO doorbell write latency observed by the host.
	MMIOLatency sim.Time
}

// AgilioCX40 returns the configuration of the Netronome Agilio-CX40 used
// in the paper's evaluation.
func AgilioCX40() Config {
	return Config{
		FPCHz:      800e6,
		Threads:    8,
		FPCsPerIsl: 12,
		Islands:    5,

		LocalMemCycles: 1,
		CLSCycles:      100,
		CTMCycles:      100,
		IMEMCycles:     250,
		EMEMCycles:     500,
		DRAMCycles:     900,

		LocalCAMEntries:  16,
		CLSCacheEntries:  512,
		EMEMCacheEntries: 8192,
		PreLookupEntries: 128,

		PCIeBytesPerSec: 7.88e9, // PCIe Gen3 x8 effective
		PCIeLatency:     850 * sim.Nanosecond,
		DMAMaxInflight:  256,

		MMIOLatency: 300 * sim.Nanosecond,
	}
}

// AgilioLX returns the larger Agilio LX part (footnote 7: 1.2 GHz FPCs,
// double the islands), used for the splicing headroom discussion.
func AgilioLX() Config {
	c := AgilioCX40()
	c.FPCHz = 1200e6
	c.Islands = 10
	return c
}

// CyclePs returns the FPC cycle time in picoseconds.
func (c *Config) CyclePs() sim.Time { return sim.Cycles(1, c.FPCHz) }

// CyclesTime converts FPC cycles to simulated time.
func (c *Config) CyclesTime(n int) sim.Time { return sim.Cycles(int64(n), c.FPCHz) }

// FPC is one flow processing core: an independent single-issue 32-bit core
// with a fixed number of hardware threads. Compute bursts from different
// threads serialize on the single issue slot; memory stalls overlap with
// other threads' compute (this is exactly why intra-FPC parallelism buys
// the paper's 2.25×).
type FPC struct {
	Name string

	eng     *sim.Engine
	cyclePs sim.Time
	threads int

	active    int // tasks currently occupying a hardware thread
	runq      []pending
	issueBusy sim.Time // accumulated issue-slot busy time
	issueFree sim.Time // next instant the issue slot is free

	// Idle runs whenever a hardware thread frees up, letting the owning
	// pipeline stage pull more work.
	Idle func()

	// Statistics.
	Tasks        uint64
	Instructions uint64
}

type pending struct {
	task sim.Task
	done func()
}

// NewFPC creates a core with the config's thread count and clock.
func NewFPC(eng *sim.Engine, name string, cfg *Config) *FPC {
	return &FPC{
		Name:    name,
		eng:     eng,
		cyclePs: cfg.CyclePs(),
		threads: cfg.Threads,
	}
}

// SetThreads overrides the hardware thread count (the Table 3 ablation
// runs with 1 thread to disable intra-FPC parallelism).
func (f *FPC) SetThreads(n int) {
	if n < 1 {
		panic("nfp: FPC needs at least one thread")
	}
	f.threads = n
}

// FreeThreads returns the number of idle hardware threads.
func (f *FPC) FreeThreads() int {
	free := f.threads - f.active
	if free < 0 {
		return 0
	}
	return free
}

// Busy reports whether any thread is occupied.
func (f *FPC) Busy() bool { return f.active > 0 || len(f.runq) > 0 }

// Submit queues a task. If all hardware threads are busy the task waits in
// the core's run queue (callers gate on FreeThreads for backpressure; the
// run queue only absorbs same-instant races).
func (f *FPC) Submit(task sim.Task, done func()) {
	if f.active < f.threads {
		f.active++
		f.Tasks++
		f.runSteps(task.Steps, done)
		return
	}
	f.runq = append(f.runq, pending{task, done})
}

// runSteps executes the task's steps as an event chain.
func (f *FPC) runSteps(steps []sim.Step, done func()) {
	if len(steps) == 0 {
		f.finish(done)
		return
	}
	step := steps[0]
	rest := steps[1:]
	afterCompute := func() {
		if step.Stall > 0 {
			f.eng.After(step.Stall, func() { f.runSteps(rest, done) })
		} else {
			f.runSteps(rest, done)
		}
	}
	if step.Compute > 0 {
		f.Instructions += uint64(step.Compute)
		now := f.eng.Now()
		start := f.issueFree
		if start < now {
			start = now
		}
		dur := sim.Time(step.Compute) * f.cyclePs
		f.issueFree = start + dur
		f.issueBusy += dur
		f.eng.At(f.issueFree, afterCompute)
	} else {
		afterCompute()
	}
}

func (f *FPC) finish(done func()) {
	f.active--
	if done != nil {
		done()
	}
	// Start queued work before announcing idleness.
	for f.active < f.threads && len(f.runq) > 0 {
		p := f.runq[0]
		f.runq = f.runq[1:]
		f.active++
		f.Tasks++
		f.runSteps(p.task.Steps, p.done)
	}
	if f.active < f.threads && f.Idle != nil {
		f.Idle()
	}
}

// Utilization returns the issue slot's busy fraction.
func (f *FPC) Utilization() float64 {
	now := f.eng.Now()
	if now == 0 {
		return 0
	}
	busy := f.issueBusy
	if f.issueFree > now {
		busy -= f.issueFree - now
	}
	return float64(busy) / float64(now)
}

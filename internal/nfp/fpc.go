// Package nfp models the Netronome NFP-4000 network processor that the
// Agilio-CX40 implementation of FlexTOE targets (§2.3, §4): flow
// processing cores (FPCs) with eight hardware threads over a single issue
// slot, islands with local memories (CLS, CTM), shared SRAM (IMEM) and
// DRAM (EMEM) with the paper's published access latencies, content-
// addressable caches, and an asynchronous PCIe DMA engine with 256
// transaction slots.
//
// The model captures the properties the paper's design arguments rest on:
// wimpy single-issue cores where sequential execution is slow, hardware
// multithreading that hides memory stalls (Table 3's 2.25× step), and an
// order-of-magnitude spread in memory access latency that makes caching
// decisive (Fig. 13).
package nfp

import (
	"flextoe/internal/shm"
	"flextoe/internal/sim"
)

// Config describes an NFP-4000-class part.
type Config struct {
	FPCHz      int64 // FPC clock (Agilio CX: 800 MHz; Agilio LX: 1.2 GHz)
	Threads    int   // hardware threads per FPC (8)
	FPCsPerIsl int   // FPCs per general-purpose island (12)
	Islands    int   // general-purpose islands (5)

	// Memory access latencies in FPC cycles (§2.3: CLS/CTM up to 100,
	// IMEM up to 250, EMEM up to 500; DRAM behind the EMEM cache costs
	// more).
	LocalMemCycles int
	CLSCycles      int
	CTMCycles      int
	IMEMCycles     int
	EMEMCycles     int
	DRAMCycles     int

	// Cache geometry (§4.1).
	LocalCAMEntries  int // per-FPC fully associative LRU (16)
	CLSCacheEntries  int // per-island direct-mapped (512)
	EMEMCacheEntries int // EMEM's 3 MB SRAM cache, in connection states
	PreLookupEntries int // pre-processor's direct-mapped lookup cache (128)

	// PCIe Gen3 x8 DMA engine (§2.3).
	PCIeBytesPerSec float64
	PCIeLatency     sim.Time // per-transaction round-trip latency
	DMAMaxInflight  int      // asynchronous transaction slots (256)

	// MMIO doorbell write latency observed by the host.
	MMIOLatency sim.Time
}

// AgilioCX40 returns the configuration of the Netronome Agilio-CX40 used
// in the paper's evaluation.
func AgilioCX40() Config {
	return Config{
		FPCHz:      800e6,
		Threads:    8,
		FPCsPerIsl: 12,
		Islands:    5,

		LocalMemCycles: 1,
		CLSCycles:      100,
		CTMCycles:      100,
		IMEMCycles:     250,
		EMEMCycles:     500,
		DRAMCycles:     900,

		LocalCAMEntries:  16,
		CLSCacheEntries:  512,
		EMEMCacheEntries: 8192,
		PreLookupEntries: 128,

		PCIeBytesPerSec: 7.88e9, // PCIe Gen3 x8 effective
		PCIeLatency:     850 * sim.Nanosecond,
		DMAMaxInflight:  256,

		MMIOLatency: 300 * sim.Nanosecond,
	}
}

// AgilioLX returns the larger Agilio LX part (footnote 7: 1.2 GHz FPCs,
// double the islands), used for the splicing headroom discussion.
func AgilioLX() Config {
	c := AgilioCX40()
	c.FPCHz = 1200e6
	c.Islands = 10
	return c
}

// CyclePs returns the FPC cycle time in picoseconds.
func (c *Config) CyclePs() sim.Time { return sim.Cycles(1, c.FPCHz) }

// CyclesTime converts FPC cycles to simulated time.
func (c *Config) CyclesTime(n int) sim.Time { return sim.Cycles(int64(n), c.FPCHz) }

// FPC is one flow processing core: an independent single-issue 32-bit core
// with a fixed number of hardware threads. Compute bursts from different
// threads serialize on the single issue slot; memory stalls overlap with
// other threads' compute (this is exactly why intra-FPC parallelism buys
// the paper's 2.25×).
type FPC struct {
	Name string

	eng     *sim.Engine
	cyclePs sim.Time
	threads int

	active    int // tasks currently occupying a hardware thread
	runq      []pending
	issueBusy sim.Time // accumulated issue-slot busy time
	issueFree sim.Time // next instant the issue slot is free

	// free is the freelist of per-task execution records; tasks in flight
	// hold at most threads+runq of them, so the list stays tiny.
	free shm.Freelist[fpcTask]

	// Idle runs whenever a hardware thread frees up, letting the owning
	// pipeline stage pull more work.
	Idle func()

	// Statistics.
	Tasks        uint64
	Instructions uint64
}

type pending struct {
	task sim.Task
	cb   func(any)
	arg  any
}

// fpcTask is the in-flight execution record of one submitted task: the
// remaining steps and the completion callback. Records are recycled via
// the FPC's freelist so steady-state submission allocates nothing.
type fpcTask struct {
	f    *FPC
	task sim.Task
	idx  int
	cb   func(any)
	arg  any
}

// Long-lived event callbacks for the step state machine (see
// Engine.AtCall): one fires when a compute burst retires, the other when
// a stall expires.
func fpcAfterCompute(a any) { a.(*fpcTask).afterCompute() }
func fpcNextStep(a any)     { a.(*fpcTask).nextStep() }

// callFn adapts a plain func() completion to the cb(arg) form.
func callFn(a any) { a.(func())() }

// NewFPC creates a core with the config's thread count and clock.
func NewFPC(eng *sim.Engine, name string, cfg *Config) *FPC {
	return &FPC{
		Name:    name,
		eng:     eng,
		cyclePs: cfg.CyclePs(),
		threads: cfg.Threads,
	}
}

// SetThreads overrides the hardware thread count (the Table 3 ablation
// runs with 1 thread to disable intra-FPC parallelism).
func (f *FPC) SetThreads(n int) {
	if n < 1 {
		panic("nfp: FPC needs at least one thread")
	}
	f.threads = n
}

// FreeThreads returns the number of idle hardware threads.
func (f *FPC) FreeThreads() int {
	free := f.threads - f.active
	if free < 0 {
		return 0
	}
	return free
}

// Busy reports whether any thread is occupied.
func (f *FPC) Busy() bool { return f.active > 0 || len(f.runq) > 0 }

// Submit queues a task. If all hardware threads are busy the task waits in
// the core's run queue (callers gate on FreeThreads for backpressure; the
// run queue only absorbs same-instant races).
func (f *FPC) Submit(task sim.Task, done func()) {
	if done == nil {
		f.SubmitCall(task, nil, nil)
		return
	}
	f.SubmitCall(task, callFn, done)
}

// SubmitCall is the allocation-free form of Submit: cb(arg) runs when the
// task completes, with cb a long-lived function value and arg the per-task
// state (typically the pipeline work item).
func (f *FPC) SubmitCall(task sim.Task, cb func(any), arg any) {
	if f.active < f.threads {
		f.begin(task, cb, arg)
		return
	}
	f.runq = append(f.runq, pending{task, cb, arg})
}

func (f *FPC) begin(task sim.Task, cb func(any), arg any) {
	f.active++
	f.Tasks++
	ft := f.getTask()
	ft.task = task
	ft.idx = 0
	ft.cb = cb
	ft.arg = arg
	ft.runStep()
}

func (f *FPC) getTask() *fpcTask {
	if ft := f.free.Get(); ft != nil {
		return ft
	}
	return &fpcTask{f: f}
}

// runStep executes the current step: the compute burst serializes on the
// issue slot, then the stall (if any) elapses off-slot.
func (ft *fpcTask) runStep() {
	f := ft.f
	if ft.idx >= ft.task.NumSteps() {
		f.finish(ft)
		return
	}
	step := ft.task.Step(ft.idx)
	if step.Compute > 0 {
		f.Instructions += uint64(step.Compute)
		now := f.eng.Now()
		start := f.issueFree
		if start < now {
			start = now
		}
		dur := sim.Time(step.Compute) * f.cyclePs
		f.issueFree = start + dur
		f.issueBusy += dur
		f.eng.AtCall(f.issueFree, fpcAfterCompute, ft)
		return
	}
	ft.afterCompute()
}

func (ft *fpcTask) afterCompute() {
	if stall := ft.task.Step(ft.idx).Stall; stall > 0 {
		ft.f.eng.AfterCall(stall, fpcNextStep, ft)
		return
	}
	ft.nextStep()
}

func (ft *fpcTask) nextStep() {
	ft.idx++
	ft.runStep()
}

func (f *FPC) finish(ft *fpcTask) {
	cb, arg := ft.cb, ft.arg
	ft.cb, ft.arg = nil, nil
	f.free.Put(ft)
	f.active--
	if cb != nil {
		cb(arg)
	}
	// Start queued work before announcing idleness.
	for f.active < f.threads && len(f.runq) > 0 {
		p := f.runq[0]
		f.runq[0] = pending{}
		f.runq = f.runq[1:]
		f.begin(p.task, p.cb, p.arg)
	}
	if f.active < f.threads && f.Idle != nil {
		f.Idle()
	}
}

// Utilization returns the issue slot's busy fraction.
func (f *FPC) Utilization() float64 {
	now := f.eng.Now()
	if now == 0 {
		return 0
	}
	busy := f.issueBusy
	if f.issueFree > now {
		busy -= f.issueFree - now
	}
	return float64(busy) / float64(now)
}

package nfp

import "flextoe/internal/sim"

// DMAEngine models the PCIe island's DMA engine: up to DMAMaxInflight
// asynchronous transactions sharing the PCIe link's bandwidth, each paying
// the link's round-trip latency (§2.3, [41]). FPCs issue transactions and
// continue; completion fires as a simulation event.
type DMAEngine struct {
	eng      *sim.Engine
	link     *sim.Resource
	lat      sim.Time
	max      int
	inflight int
	waiting  []dmaReq

	// Statistics.
	Transactions uint64
	Bytes        uint64
	PeakInflight int
}

type dmaReq struct {
	bytes int
	done  func()
}

// NewDMAEngine builds the engine from the chip config.
func NewDMAEngine(eng *sim.Engine, cfg *Config) *DMAEngine {
	return &DMAEngine{
		eng:  eng,
		link: sim.NewResource(eng, "pcie", cfg.PCIeBytesPerSec),
		lat:  cfg.PCIeLatency,
		max:  cfg.DMAMaxInflight,
	}
}

// Issue starts a DMA of the given size; done runs when the data has
// landed. Transactions beyond the in-flight limit queue inside the engine
// (the paper's descriptor-pool flow control keeps this bounded in
// practice).
func (d *DMAEngine) Issue(bytes int, done func()) {
	if d.inflight >= d.max {
		d.waiting = append(d.waiting, dmaReq{bytes, done})
		return
	}
	d.start(bytes, done)
}

func (d *DMAEngine) start(bytes int, done func()) {
	d.inflight++
	if d.inflight > d.PeakInflight {
		d.PeakInflight = d.inflight
	}
	d.Transactions++
	d.Bytes += uint64(bytes)
	d.link.Acquire(int64(bytes), d.lat, func() {
		d.inflight--
		if done != nil {
			done()
		}
		if len(d.waiting) > 0 && d.inflight < d.max {
			req := d.waiting[0]
			d.waiting = d.waiting[1:]
			d.start(req.bytes, req.done)
		}
	})
}

// Inflight returns the number of active transactions.
func (d *DMAEngine) Inflight() int { return d.inflight }

// Utilization returns the PCIe link busy fraction.
func (d *DMAEngine) Utilization() float64 { return d.link.Utilization() }

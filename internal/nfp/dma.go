package nfp

import (
	"flextoe/internal/shm"
	"flextoe/internal/sim"
)

// DMAEngine models the PCIe island's DMA engine: up to DMAMaxInflight
// asynchronous transactions sharing the PCIe link's bandwidth, each paying
// the link's round-trip latency (§2.3, [41]). FPCs issue transactions and
// continue; completion fires as a simulation event.
type DMAEngine struct {
	eng      *sim.Engine
	link     *sim.Resource
	lat      sim.Time
	max      int
	inflight int
	waiting  []dmaReq
	free     shm.Freelist[dmaTxn] // recycled transaction records

	// Statistics.
	Transactions uint64
	Bytes        uint64
	PeakInflight int
}

type dmaReq struct {
	bytes int
	cb    func(any)
	arg   any
}

// dmaTxn is one in-flight transaction's completion record, recycled
// through the engine's freelist so issuing allocates nothing.
type dmaTxn struct {
	d   *DMAEngine
	cb  func(any)
	arg any
}

func dmaDone(a any) { a.(*dmaTxn).complete() }

// NewDMAEngine builds the engine from the chip config.
func NewDMAEngine(eng *sim.Engine, cfg *Config) *DMAEngine {
	return &DMAEngine{
		eng:  eng,
		link: sim.NewResource(eng, "pcie", cfg.PCIeBytesPerSec),
		lat:  cfg.PCIeLatency,
		max:  cfg.DMAMaxInflight,
	}
}

// Issue starts a DMA of the given size; done runs when the data has
// landed. Transactions beyond the in-flight limit queue inside the engine
// (the paper's descriptor-pool flow control keeps this bounded in
// practice).
func (d *DMAEngine) Issue(bytes int, done func()) {
	if done == nil {
		d.IssueCall(bytes, nil, nil)
		return
	}
	d.IssueCall(bytes, callFn, done)
}

// IssueCall is the allocation-free form of Issue: cb(arg) runs at
// completion (see sim.Engine.AtCall for the contract).
func (d *DMAEngine) IssueCall(bytes int, cb func(any), arg any) {
	if d.inflight >= d.max {
		d.waiting = append(d.waiting, dmaReq{bytes, cb, arg})
		return
	}
	d.start(bytes, cb, arg)
}

func (d *DMAEngine) start(bytes int, cb func(any), arg any) {
	d.inflight++
	if d.inflight > d.PeakInflight {
		d.PeakInflight = d.inflight
	}
	d.Transactions++
	d.Bytes += uint64(bytes)
	t := d.getTxn()
	t.cb, t.arg = cb, arg
	d.link.AcquireCall(int64(bytes), d.lat, dmaDone, t)
}

func (t *dmaTxn) complete() {
	d := t.d
	cb, arg := t.cb, t.arg
	t.cb, t.arg = nil, nil
	d.free.Put(t)
	d.inflight--
	if cb != nil {
		cb(arg)
	}
	if len(d.waiting) > 0 && d.inflight < d.max {
		req := d.waiting[0]
		d.waiting[0] = dmaReq{}
		d.waiting = d.waiting[1:]
		d.start(req.bytes, req.cb, req.arg)
	}
}

func (d *DMAEngine) getTxn() *dmaTxn {
	if t := d.free.Get(); t != nil {
		return t
	}
	return &dmaTxn{d: d}
}

// Inflight returns the number of active transactions.
func (d *DMAEngine) Inflight() int { return d.inflight }

// Utilization returns the PCIe link busy fraction.
func (d *DMAEngine) Utilization() float64 { return d.link.Utilization() }

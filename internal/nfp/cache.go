package nfp

import "flextoe/internal/sim"

// Cache is a set-associative cache with LRU replacement, used to model the
// per-FPC CAM caches, the per-island CLS direct-mapped caches, the EMEM
// SRAM cache, and the pre-processor's lookup cache (§4.1). Keys are
// connection indices (or hash values); the cache tracks presence only —
// the simulated state itself lives elsewhere.
type Cache struct {
	sets int
	ways int
	tags []uint64 // sets*ways, 0 = empty (keys are offset by 1)
	age  []uint64
	tick uint64

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache with the given total entries and associativity.
// ways == entries gives a fully associative CAM; ways == 1 gives a
// direct-mapped cache.
func NewCache(entries, ways int) *Cache {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("nfp: bad cache geometry")
	}
	return &Cache{
		sets: entries / ways,
		ways: ways,
		tags: make([]uint64, entries),
		age:  make([]uint64, entries),
	}
}

// Access looks up key, installing it (with LRU eviction) on miss. It
// reports whether the access hit.
func (c *Cache) Access(key uint64) bool {
	c.tick++
	k := key + 1 // reserve 0 for "empty"
	set := int(key % uint64(c.sets))
	base := set * c.ways
	var victim, oldest = base, c.age[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == k {
			c.age[i] = c.tick
			c.Hits++
			return true
		}
		if c.age[i] < oldest {
			victim, oldest = i, c.age[i]
		}
	}
	c.tags[victim] = k
	c.age[victim] = c.tick
	c.Misses++
	return false
}

// Contains reports presence without updating LRU state or counters.
func (c *Cache) Contains(key uint64) bool {
	k := key + 1
	base := int(key%uint64(c.sets)) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == k {
			return true
		}
	}
	return false
}

// Invalidate removes key if present.
func (c *Cache) Invalidate(key uint64) {
	k := key + 1
	base := int(key%uint64(c.sets)) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == k {
			c.tags[i] = 0
			c.age[i] = 0
		}
	}
}

// HitRate returns the fraction of accesses that hit.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// StateCache models the protocol stage's multi-level connection-state
// caching (§4.1): a 16-entry fully associative CAM in FPC local memory, a
// 512-entry direct-mapped second level in the island's CLS, the EMEM SRAM
// cache, and finally EMEM DRAM. Access returns the stall the requesting
// FPC experiences.
type StateCache struct {
	cfg   *Config
	local *Cache // per-FPC
	cls   *Cache // per-island (shared among the island's FPCs)
	emem  *Cache // global SRAM cache
}

// NewStateCache builds the hierarchy for one protocol FPC. cls and emem
// are shared: pass the same instances to every FPC in the island / on the
// NIC.
func NewStateCache(cfg *Config, cls, emem *Cache) *StateCache {
	return &StateCache{
		cfg:   cfg,
		local: NewCache(cfg.LocalCAMEntries, cfg.LocalCAMEntries),
		cls:   cls,
		emem:  emem,
	}
}

// NewCLSCache builds one island's CLS second-level cache.
func NewCLSCache(cfg *Config) *Cache { return NewCache(cfg.CLSCacheEntries, 1) }

// NewEMEMCache builds the NIC-wide EMEM SRAM cache model (4-way to soften
// conflict misses, as the paper's careful connection-index allocation
// implies).
func NewEMEMCache(cfg *Config) *Cache { return NewCache(cfg.EMEMCacheEntries, 4) }

// Access charges the stall for bringing connection state to the FPC.
func (sc *StateCache) Access(conn uint64) sim.Time {
	if sc.local.Access(conn) {
		return sc.cfg.CyclesTime(sc.cfg.LocalMemCycles)
	}
	if sc.cls.Access(conn) {
		return sc.cfg.CyclesTime(sc.cfg.CLSCycles)
	}
	if sc.emem.Access(conn) {
		return sc.cfg.CyclesTime(sc.cfg.EMEMCycles)
	}
	return sc.cfg.CyclesTime(sc.cfg.DRAMCycles)
}

// LocalHitRate exposes the first-level hit rate for diagnostics.
func (sc *StateCache) LocalHitRate() float64 { return sc.local.HitRate() }

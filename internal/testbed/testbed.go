// Package testbed assembles simulated clusters: machines running any of
// the four stacks (FlexTOE, Linux, TAS, Chelsio) attached to one switch,
// mirroring the paper's testbed (§5: two Xeon Gold 6138 machines with
// Agilio-CX40 / Terminator / XL710 NICs plus four client machines, all on
// a 100 Gbps switch).
package testbed

import (
	"fmt"

	"flextoe/internal/api"
	"flextoe/internal/baseline"
	"flextoe/internal/core"
	"flextoe/internal/ctrl"
	"flextoe/internal/fabric"
	"flextoe/internal/host"
	"flextoe/internal/libtoe"
	"flextoe/internal/netsim"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/tcpseg"
)

// StackKind names a TCP stack implementation.
type StackKind string

// Stack kinds.
const (
	FlexTOE StackKind = "FlexTOE"
	Linux   StackKind = "Linux"
	TAS     StackKind = "TAS"
	Chelsio StackKind = "Chelsio"
)

// AllStacks lists the four stacks in the paper's presentation order.
var AllStacks = []StackKind{Linux, Chelsio, TAS, FlexTOE}

// MachineSpec describes one machine.
type MachineSpec struct {
	Name    string
	Kind    StackKind
	Cores   int   // application cores
	CoreHz  int64 // default 2 GHz (Xeon Gold 6138)
	BufSize uint32
	NICGbps float64 // default 40 (Chelsio: 100)

	// FlexTOE knobs.
	FlexCfg *core.Config // nil = AgilioCX40Config
	CC      ctrl.CCAlgo
	// SACK enables SACK negotiation on the FlexTOE data-path (and, when
	// OOOIntervals is unset, widens the reassembly interval set to the
	// maximum so the advertised blocks are useful). Ignored for the
	// baseline stacks, whose recovery is fixed by their personality.
	SACK bool
	// OOOCap, when > 0, overrides the reassembly interval budget for any
	// personality: FlexTOE's core.Config.OOOIntervals or the baseline
	// profile's OOOIntervals. 0 keeps the personality default.
	OOOCap int

	// TAS knobs.
	StackCores int // dedicated fast-path cores (default 1)

	// Rack places the machine on a leaf switch when the testbed runs on a
	// fabric (NewFabric); ignored on the single-switch testbed.
	Rack int

	// Listen-path hardening (accept-storm experiments). ListenBacklog
	// bounds half-open connections per listening port (FlexTOE default
	// 128; baseline default unbounded); AcceptRate, when > 0, limits
	// accepted SYNs/second per listener (FlexTOE control plane only).
	ListenBacklog int
	AcceptRate    float64

	Seed uint64
}

// Machine is one assembled host.
type Machine struct {
	Spec  MachineSpec
	IP    packet.IPv4Addr
	MAC   packet.EtherAddr
	Stack api.Stack
	Iface *netsim.Iface
	Eng   *sim.Engine // shard engine this machine runs on

	// Set when Kind == FlexTOE.
	TOE  *core.TOE
	Flex *libtoe.Stack
	Ctrl *ctrl.Plane
	// Set otherwise.
	Base *baseline.Stack
}

// Testbed is the cluster. Exactly one of Net (single switch) or Fabric
// (leaf–spine) is set, per the constructor used.
//
// A testbed always runs on a sim.Group. With one core the group holds a
// single engine and Run is byte-for-byte the serial path. With cores > 1
// the switch fabric lives on shard 0 and machines are distributed across
// the remaining shards — rack-affine on a fabric, round-robin on the
// single-switch testbed — with every host-switch link a conservative
// lookahead boundary (see the sharding contract in doc.go).
type Testbed struct {
	Eng      *sim.Engine // shard 0: the network engine
	Group    *sim.Group
	Net      *netsim.Network
	Fabric   *fabric.Fabric
	Machines map[string]*Machine
	macOf    map[packet.IPv4Addr]packet.EtherAddr
}

// shardGroup sizes the group: shard 0 for the network plus at most one
// shard per machine, capped at cores.
func shardGroup(cores, machines int) *sim.Group {
	n := 1
	if cores > 1 && machines > 0 {
		n = 1 + min(cores-1, machines)
	}
	return sim.NewGroup(n)
}

// New builds a cluster with the given switch behaviour and machines.
func New(swCfg netsim.SwitchConfig, specs ...MachineSpec) *Testbed {
	return NewCores(1, swCfg, specs...)
}

// NewCores builds a cluster sharded across up to the given core count
// (1 = the exact serial engine).
func NewCores(cores int, swCfg netsim.SwitchConfig, specs ...MachineSpec) *Testbed {
	g := shardGroup(cores, len(specs))
	eng := g.Engine(0)
	tb := &Testbed{
		Eng:      eng,
		Group:    g,
		Net:      netsim.NewNetwork(eng, swCfg),
		Machines: make(map[string]*Machine),
		macOf:    make(map[packet.IPv4Addr]packet.EtherAddr),
	}
	tb.populate(specs)
	return tb
}

// NewFabric builds a cluster on a leaf–spine fabric; each machine's Rack
// selects its leaf. The same stacks run unmodified — only the network
// between the NICs changes.
func NewFabric(fc fabric.Config, specs ...MachineSpec) *Testbed {
	return NewFabricCores(1, fc, specs...)
}

// NewFabricCores builds a fabric cluster sharded across up to the given
// core count, placing machines rack-affine so intra-rack traffic stays
// within one shard pair.
func NewFabricCores(cores int, fc fabric.Config, specs ...MachineSpec) *Testbed {
	g := shardGroup(cores, len(specs))
	eng := g.Engine(0)
	tb := &Testbed{
		Eng:      eng,
		Group:    g,
		Fabric:   fabric.New(eng, fc),
		Machines: make(map[string]*Machine),
		macOf:    make(map[packet.IPv4Addr]packet.EtherAddr),
	}
	tb.populate(specs)
	return tb
}

// engineFor places machine idx on its shard: rack-affine on a fabric,
// round-robin otherwise. Shard 0 is reserved for the network.
func (tb *Testbed) engineFor(idx int, spec MachineSpec) *sim.Engine {
	n := tb.Group.N()
	if n == 1 {
		return tb.Eng
	}
	k := n - 1
	if tb.Fabric != nil {
		return tb.Group.Engine(1 + spec.Rack%k)
	}
	return tb.Group.Engine(1 + idx%k)
}

func (tb *Testbed) populate(specs []MachineSpec) {
	for i, spec := range specs {
		tb.add(i, spec)
	}
	// Install static ARP everywhere.
	resolve := func(ip packet.IPv4Addr) packet.EtherAddr { return tb.macOf[ip] }
	for _, m := range tb.Machines {
		if m.Flex != nil {
			m.Flex.ResolveMAC = resolve
		}
		if m.Base != nil {
			m.Base.ResolveMAC = resolve
		}
	}
}

func (tb *Testbed) add(idx int, spec MachineSpec) {
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	if spec.CoreHz == 0 {
		spec.CoreHz = 2e9
	}
	if spec.BufSize == 0 {
		spec.BufSize = 65536
	}
	if spec.NICGbps == 0 {
		spec.NICGbps = 40
		if spec.Kind == Chelsio {
			spec.NICGbps = 100
		}
	}
	ip := packet.IP(10, 0, byte(idx>>8), byte(idx+1))
	mac := packet.MAC(0x02, 0, 0, 0, byte(idx>>8), byte(idx+1))
	eng := tb.engineFor(idx, spec)
	var iface *netsim.Iface
	if tb.Fabric != nil {
		iface = tb.Fabric.AttachHostOn(eng, spec.Rack, spec.Name, mac, netsim.GbpsToBytesPerSec(spec.NICGbps), 0)
	} else {
		iface = tb.Net.AttachHostOn(eng, spec.Name, mac, netsim.GbpsToBytesPerSec(spec.NICGbps), 150*sim.Nanosecond)
	}
	machine := host.NewMachine(eng, spec.Name, spec.Cores, spec.CoreHz)

	m := &Machine{Spec: spec, IP: ip, MAC: mac, Iface: iface, Eng: eng}
	switch spec.Kind {
	case FlexTOE:
		cfg := core.AgilioCX40Config()
		if spec.FlexCfg != nil {
			cfg = *spec.FlexCfg
		}
		if spec.SACK {
			cfg.EnableSACK = true
			if cfg.OOOIntervals == 0 {
				cfg.OOOIntervals = tcpseg.MaxOOOIntervals
			}
		}
		if spec.OOOCap > 0 {
			cfg.OOOIntervals = spec.OOOCap
		}
		m.TOE = core.New(eng, cfg, iface)
		m.Ctrl = ctrl.New(eng, m.TOE, ctrl.Config{
			LocalIP:       ip,
			LocalMAC:      mac,
			BufSize:       spec.BufSize,
			CC:            spec.CC,
			ListenBacklog: spec.ListenBacklog,
			AcceptRate:    spec.AcceptRate,
			Seed:          spec.Seed ^ uint64(idx),
		})
		m.Flex = libtoe.NewStack(eng, m.TOE, m.Ctrl, machine, ip)
		m.Stack = m.Flex
	case Linux, TAS, Chelsio:
		var prof baseline.Profile
		switch spec.Kind {
		case Linux:
			prof = baseline.LinuxProfile()
		case TAS:
			prof = baseline.TASProfile()
		default:
			prof = baseline.ChelsioProfile()
		}
		if spec.StackCores > 0 {
			prof.StackCores = spec.StackCores
		}
		if spec.OOOCap > 0 {
			prof.OOOIntervals = spec.OOOCap
		}
		prof.ListenBacklog = spec.ListenBacklog
		m.Base = baseline.NewStack(eng, prof, iface, machine, ip, spec.BufSize, spec.Seed^uint64(idx))
		m.Stack = m.Base
	default:
		panic(fmt.Sprintf("testbed: unknown stack kind %q", spec.Kind))
	}
	tb.Machines[spec.Name] = m
	tb.macOf[ip] = mac
}

// M returns a machine by name.
func (tb *Testbed) M(name string) *Machine { return tb.Machines[name] }

// Addr returns a machine's endpoint address for a port.
func (tb *Testbed) Addr(name string, port uint16) api.Addr {
	return api.Addr{IP: tb.Machines[name].IP, Port: port}
}

// Run advances the simulation to the given time across all shards.
func (tb *Testbed) Run(until sim.Time) { tb.Group.RunUntil(until) }

// PoolStats sums packet-pool traffic across shard engines in shard-index
// order — the deterministic merge of the per-shard counters.
func (tb *Testbed) PoolStats() (gets, releases uint64) {
	for _, e := range tb.Group.Engines() {
		pl := packet.PoolOf(e)
		gets += pl.Stats.Gets
		releases += pl.Stats.Releases
	}
	return gets, releases
}

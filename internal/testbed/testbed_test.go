package testbed

import (
	"fmt"
	"testing"

	"flextoe/internal/apps"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
)

func runEcho(t *testing.T, kind StackKind, conns, pipeline int, msgSize int, dur sim.Time) *apps.ClosedLoopClient {
	t.Helper()
	tb := New(netsim.SwitchConfig{},
		MachineSpec{Name: "server", Kind: kind, Cores: 4, Seed: 1},
		MachineSpec{Name: "client", Kind: kind, Cores: 8, Seed: 2},
	)
	srv := &apps.RPCServer{ReqSize: msgSize}
	srv.Serve(tb.M("server").Stack, 7777)
	cl := &apps.ClosedLoopClient{ReqSize: msgSize, Pipeline: pipeline}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), conns)
	tb.Run(dur)
	return cl
}

func TestEchoAllStacks(t *testing.T) {
	for _, kind := range AllStacks {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			cl := runEcho(t, kind, 4, 1, 64, 20*sim.Millisecond)
			if cl.Completed < 50 {
				t.Fatalf("%s completed only %d RPCs", kind, cl.Completed)
			}
			if cl.Latency.Count() == 0 {
				t.Fatal("no latency samples")
			}
			med := sim.Time(cl.Latency.Median())
			if med <= 0 || med > 5*sim.Millisecond {
				t.Fatalf("median RTT %v implausible", med)
			}
		})
	}
}

func TestStackLatencyOrdering(t *testing.T) {
	// Table 1 / Fig. 11: Linux must be the slowest per-RPC stack by a
	// clear margin; kernel-bypass and offload stacks cluster much lower.
	med := map[StackKind]sim.Time{}
	for _, kind := range AllStacks {
		cl := runEcho(t, kind, 1, 1, 64, 20*sim.Millisecond)
		if cl.Latency.Count() == 0 {
			t.Fatalf("%s: no samples", kind)
		}
		med[kind] = sim.Time(cl.Latency.Median())
	}
	t.Logf("median RTTs: %v", med)
	if med[Linux] < 2*med[TAS] {
		t.Errorf("Linux median (%v) should be >2x TAS (%v)", med[Linux], med[TAS])
	}
	if med[Linux] < 2*med[FlexTOE] {
		t.Errorf("Linux median (%v) should be >2x FlexTOE (%v)", med[Linux], med[FlexTOE])
	}
}

func TestCrossStackInterop(t *testing.T) {
	// §5.1: FlexTOE interoperates with other network stacks. Run every
	// client-stack / server-stack combination (Fig. 9's matrix).
	for _, server := range AllStacks {
		for _, client := range AllStacks {
			server, client := server, client
			t.Run(fmt.Sprintf("%s->%s", client, server), func(t *testing.T) {
				tb := New(netsim.SwitchConfig{},
					MachineSpec{Name: "server", Kind: server, Cores: 2, Seed: 3},
					MachineSpec{Name: "client", Kind: client, Cores: 2, Seed: 4},
				)
				srv := &apps.RPCServer{ReqSize: 64}
				srv.Serve(tb.M("server").Stack, 7777)
				cl := &apps.ClosedLoopClient{ReqSize: 64}
				cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 2)
				tb.Run(20 * sim.Millisecond)
				if cl.Completed < 20 {
					t.Fatalf("%s client to %s server: %d RPCs", client, server, cl.Completed)
				}
			})
		}
	}
}

func TestBulkTransferAllStacks(t *testing.T) {
	for _, kind := range AllStacks {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			tb := New(netsim.SwitchConfig{},
				MachineSpec{Name: "server", Kind: kind, Cores: 2, BufSize: 1 << 20, Seed: 5},
				MachineSpec{Name: "client", Kind: kind, Cores: 2, BufSize: 1 << 20, Seed: 6},
			)
			sink := &apps.BulkSink{}
			sink.Serve(tb.M("server").Stack, 9000)
			snd := &apps.BulkSender{}
			snd.Start(tb.M("client").Stack, tb.Addr("server", 9000))
			tb.Run(10 * sim.Millisecond)
			// At least a few MB in 10 ms on any stack.
			if sink.Received < 1<<20 {
				t.Fatalf("%s bulk: %d bytes in 10ms", kind, sink.Received)
			}
		})
	}
}

func TestBulkUnderLossAllStacks(t *testing.T) {
	// Fig. 15 mechanism check: all stacks must complete transfers under
	// 0.5% loss; relative goodput is measured by the experiment runner.
	for _, kind := range AllStacks {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			tb := New(netsim.SwitchConfig{LossProb: 0.005, Seed: 11},
				MachineSpec{Name: "server", Kind: kind, Cores: 2, BufSize: 1 << 18, Seed: 7},
				MachineSpec{Name: "client", Kind: kind, Cores: 2, BufSize: 1 << 18, Seed: 8},
			)
			sink := &apps.BulkSink{}
			sink.Serve(tb.M("server").Stack, 9000)
			snd := &apps.BulkSender{}
			snd.Start(tb.M("client").Stack, tb.Addr("server", 9000))
			tb.Run(50 * sim.Millisecond)
			if sink.Received < 100_000 {
				t.Fatalf("%s under loss: %d bytes in 50ms", kind, sink.Received)
			}
		})
	}
}

func TestKVWorkload(t *testing.T) {
	tb := New(netsim.SwitchConfig{},
		MachineSpec{Name: "server", Kind: FlexTOE, Cores: 2, Seed: 9},
		MachineSpec{Name: "client", Kind: FlexTOE, Cores: 4, Seed: 10},
	)
	kv := &apps.KVServer{AppCycles: 890, ValueLen: 32}
	kv.Serve(tb.M("server").Stack, 11211)
	cl := &apps.KVClient{KeyLen: 32, ValLen: 32, SetRatio: 0.1, Seed: 12}
	cl.Start(tb.M("client").Stack, tb.Addr("server", 11211), 8)
	tb.Run(20 * sim.Millisecond)
	if cl.Completed < 100 {
		t.Fatalf("KV completed %d ops", cl.Completed)
	}
	// Responses can be in flight at cutoff: served >= completed, bounded
	// by outstanding pipeline depth.
	if kv.Served < cl.Completed || kv.Served > cl.Completed+8 {
		t.Fatalf("server served %d, client completed %d", kv.Served, cl.Completed)
	}
}

func TestOpenLoopClient(t *testing.T) {
	tb := New(netsim.SwitchConfig{},
		MachineSpec{Name: "server", Kind: FlexTOE, Cores: 2, Seed: 13},
		MachineSpec{Name: "client", Kind: FlexTOE, Cores: 4, Seed: 14},
	)
	srv := &apps.RPCServer{ReqSize: 128}
	srv.Serve(tb.M("server").Stack, 7777)
	ol := &apps.OpenLoopClient{ReqSize: 128, Rate: 50_000, Seed: 15}
	ol.Start(tb.M("client").Stack, tb.Addr("server", 7777), 4)
	tb.Run(20 * sim.Millisecond)
	// ~1000 requests at 50k/s over 20ms.
	if ol.Completed < 500 || ol.Completed > 1500 {
		t.Fatalf("open-loop completed %d, want ~1000", ol.Completed)
	}
}

func TestFlexTOEFasterThanLinuxThroughput(t *testing.T) {
	// The headline direction: with memcached-like per-request application
	// work, saturated RPC throughput must order FlexTOE > TAS >
	// Chelsio/Linux (Fig. 8's shape).
	tput := map[StackKind]uint64{}
	for _, kind := range AllStacks {
		tb := New(netsim.SwitchConfig{},
			MachineSpec{Name: "server", Kind: kind, Cores: 2, Seed: 1},
			MachineSpec{Name: "client", Kind: kind, Cores: 8, Seed: 2},
		)
		srv := &apps.RPCServer{ReqSize: 64, AppCycles: 890}
		srv.Serve(tb.M("server").Stack, 7777)
		cl := &apps.ClosedLoopClient{ReqSize: 64, Pipeline: 4}
		cl.Start(tb.M("client").Stack, tb.Addr("server", 7777), 16)
		tb.Run(30 * sim.Millisecond)
		tput[kind] = cl.Completed
	}
	t.Logf("completed RPCs in 30ms: %v", tput)
	if tput[FlexTOE] <= tput[Linux] {
		t.Errorf("FlexTOE (%d) should beat Linux (%d)", tput[FlexTOE], tput[Linux])
	}
	if tput[TAS] <= tput[Linux] {
		t.Errorf("TAS (%d) should beat Linux (%d)", tput[TAS], tput[Linux])
	}
	if tput[FlexTOE] <= tput[Chelsio] {
		t.Errorf("FlexTOE (%d) should beat Chelsio (%d)", tput[FlexTOE], tput[Chelsio])
	}
}

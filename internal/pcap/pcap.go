// Package pcap writes and reads libpcap capture files, backing FlexTOE's
// tcpdump-style traffic logging (§5.1). The writer attaches to a TOE's
// packet tap; header filters select which packets are logged.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"flextoe/internal/packet"
	"flextoe/internal/sim"
)

// Magic numbers and constants of the classic pcap format.
const (
	magicMicros  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	linkEthernet = 1
	maxSnapLen   = 65535
)

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snap    uint32
	scratch []byte // reusable serialization buffer (WritePacket)
	Packets uint64
}

// NewWriter writes the file header and returns a writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	binary.LittleEndian.PutUint32(hdr[16:], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w, snap: maxSnapLen}, nil
}

// WriteFrame logs one frame at the given simulated time.
func (pw *Writer) WriteFrame(at sim.Time, frame []byte) error {
	n := len(frame)
	cap := n
	if cap > int(pw.snap) {
		cap = int(pw.snap)
	}
	var hdr [16]byte
	us := int64(at / sim.Microsecond)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(us/1e6))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(us%1e6))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(cap))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(n))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(frame[:cap]); err != nil {
		return err
	}
	pw.Packets++
	return nil
}

// WritePacket serializes and logs a structured packet, reusing the
// writer's scratch buffer so per-packet capture allocates nothing.
func (pw *Writer) WritePacket(at sim.Time, p *packet.Packet) error {
	n := p.WireLen()
	if cap(pw.scratch) < n {
		pw.scratch = make([]byte, n)
	}
	pw.scratch = pw.scratch[:n]
	p.SerializeTo(pw.scratch, packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
	return pw.WriteFrame(at, pw.scratch)
}

// Record is one captured packet. Data aliases the reader's reusable
// scratch buffer: it is valid until the next call to Next.
type Record struct {
	Time sim.Time
	Data []byte
	Orig int // original wire length
}

// Reader parses a pcap stream.
type Reader struct {
	r       io.Reader
	scratch []byte // reusable record buffer (Record.Data aliases it)
	// Truncated reports that the stream ended mid-record — a capture cut
	// off while a writer held a partial record (a crashed tcpdump, a
	// still-running capture). The partial record is discarded and Next
	// returns io.EOF.
	Truncated bool
}

// ErrBadMagic indicates a non-pcap stream.
var ErrBadMagic = errors.New("pcap: bad magic")

// NewReader validates the file header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicMicros {
		return nil, ErrBadMagic
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r}, nil
}

// Next returns the next record, or io.EOF after the last complete one.
// A final record cut short by the end of the stream — a partial header
// or less captured data than its header promises — is tolerated: it is
// dropped, Truncated is set, and Next reports io.EOF rather than an
// error. The returned Record's Data is only valid until the next call.
func (pr *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			pr.Truncated = true
			err = io.EOF
		}
		return Record{}, err
	}
	sec := binary.LittleEndian.Uint32(hdr[0:])
	usec := binary.LittleEndian.Uint32(hdr[4:])
	capLen := binary.LittleEndian.Uint32(hdr[8:])
	orig := binary.LittleEndian.Uint32(hdr[12:])
	if capLen > maxSnapLen {
		return Record{}, fmt.Errorf("pcap: capture length %d too large", capLen)
	}
	if cap(pr.scratch) < int(capLen) {
		pr.scratch = make([]byte, capLen)
	}
	data := pr.scratch[:capLen]
	if _, err := io.ReadFull(pr.r, data); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			pr.Truncated = true
			err = io.EOF
		}
		return Record{}, err
	}
	at := sim.Time(sec)*sim.Second + sim.Time(usec)*sim.Microsecond
	return Record{Time: at, Data: data, Orig: int(orig)}, nil
}

// Filter is a tcpdump-style header predicate.
type Filter struct {
	SrcIP   packet.IPv4Addr // 0 = any
	DstIP   packet.IPv4Addr
	SrcPort uint16
	DstPort uint16
	Flags   uint8 // require all of these TCP flags
}

// Match reports whether a decoded packet passes the filter.
func (f *Filter) Match(p *packet.Packet) bool {
	if f == nil {
		return true
	}
	if f.SrcIP != 0 && p.IP.Src != f.SrcIP {
		return false
	}
	if f.DstIP != 0 && p.IP.Dst != f.DstIP {
		return false
	}
	if f.SrcPort != 0 && p.TCP.SrcPort != f.SrcPort {
		return false
	}
	if f.DstPort != 0 && p.TCP.DstPort != f.DstPort {
		return false
	}
	if f.Flags != 0 && p.TCP.Flags&f.Flags != f.Flags {
		return false
	}
	return true
}

package pcap

import (
	"bytes"
	"io"
	"testing"

	"flextoe/internal/packet"
	"flextoe/internal/sim"
	"flextoe/internal/stats"
)

func tcpPacket(sport, dport uint16, flags uint8, payload int) *packet.Packet {
	return &packet.Packet{
		Eth: packet.Ethernet{
			Dst: packet.MAC(2, 0, 0, 0, 0, 2), Src: packet.MAC(2, 0, 0, 0, 0, 1),
			EtherType: packet.EtherTypeIPv4,
		},
		IP:      packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: packet.IP(10, 0, 0, 1), Dst: packet.IP(10, 0, 0, 2)},
		TCP:     packet.TCP{SrcPort: sport, DstPort: dport, Flags: flags, WScale: -1},
		Payload: make([]byte, payload),
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	times := []sim.Time{sim.Microsecond, 2 * sim.Second, 3*sim.Second + 500*sim.Microsecond}
	for i, at := range times {
		if err := w.WritePacket(at, tcpPacket(1000, 80, packet.FlagACK, 10*i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets != 3 {
		t.Fatalf("packets = %d", w.Packets)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range times {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		// Timestamps round to microseconds.
		if rec.Time/sim.Microsecond != want/sim.Microsecond {
			t.Fatalf("record %d time %v != %v", i, rec.Time, want)
		}
		p, err := packet.Decode(rec.Data)
		if err != nil {
			t.Fatalf("record %d decode: %v", i, err)
		}
		if len(p.Payload) != 10*i {
			t.Fatalf("record %d payload = %d", i, len(p.Payload))
		}
		if rec.Orig != len(rec.Data) {
			t.Fatalf("record %d orig %d != cap %d", i, rec.Orig, len(rec.Data))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestRoundTripRandomFrames property-tests write→read over random frame
// sets: every complete record must come back byte-identical, in order,
// with its timestamp at microsecond precision.
func TestRoundTripRandomFrames(t *testing.T) {
	r := stats.NewRNG(91)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(50)
		frames := make([][]byte, n)
		times := make([]sim.Time, n)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		at := sim.Time(0)
		for i := range frames {
			f := make([]byte, 1+r.Intn(3000))
			for j := range f {
				f[j] = byte(r.Uint64())
			}
			at += sim.Time(r.Intn(int(5 * sim.Second)))
			frames[i], times[i] = f, at
			if err := w.WriteFrame(at, f); err != nil {
				t.Fatal(err)
			}
		}
		rd, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i := range frames {
			rec, err := rd.Next()
			if err != nil {
				t.Fatalf("trial %d record %d: %v", trial, i, err)
			}
			if !bytes.Equal(rec.Data, frames[i]) {
				t.Fatalf("trial %d record %d: data mismatch (%d vs %d bytes)",
					trial, i, len(rec.Data), len(frames[i]))
			}
			if rec.Orig != len(frames[i]) {
				t.Fatalf("trial %d record %d: orig %d != %d", trial, i, rec.Orig, len(frames[i]))
			}
			if rec.Time/sim.Microsecond != times[i]/sim.Microsecond {
				t.Fatalf("trial %d record %d: time %v != %v", trial, i, rec.Time, times[i])
			}
		}
		if _, err := rd.Next(); err != io.EOF {
			t.Fatalf("trial %d: expected EOF, got %v", trial, err)
		}
		if rd.Truncated {
			t.Fatalf("trial %d: complete stream marked truncated", trial)
		}
	}
}

// TestReaderToleratesTruncation cuts a valid capture at every possible
// byte position: the reader must return each record that survived intact,
// then io.EOF — never a parse error — flagging Truncated exactly when the
// cut fell mid-record.
func TestReaderToleratesTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{40, 1, 200, 0, 1448}
	for i, sz := range sizes {
		frame := bytes.Repeat([]byte{byte(i + 1)}, sz)
		if err := w.WriteFrame(sim.Time(i)*sim.Millisecond, frame); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	// Record boundaries: 24-byte file header, then 16+len per record.
	bounds := []int{24}
	for _, sz := range sizes {
		bounds = append(bounds, bounds[len(bounds)-1]+16+sz)
	}
	for cut := 24; cut <= len(full); cut++ {
		rd, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		whole := 0
		for whole+1 < len(bounds) && bounds[whole+1] <= cut {
			whole++
		}
		for i := 0; i < whole; i++ {
			rec, err := rd.Next()
			if err != nil {
				t.Fatalf("cut %d: record %d: %v", cut, i, err)
			}
			if len(rec.Data) != sizes[i] {
				t.Fatalf("cut %d: record %d: %d bytes, want %d", cut, i, len(rec.Data), sizes[i])
			}
		}
		if _, err := rd.Next(); err != io.EOF {
			t.Fatalf("cut %d: after %d whole records, got %v, want io.EOF", cut, whole, err)
		}
		wantTrunc := cut != bounds[whole]
		if rd.Truncated != wantTrunc {
			t.Fatalf("cut %d: Truncated = %v, want %v", cut, rd.Truncated, wantTrunc)
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestFilter(t *testing.T) {
	p := tcpPacket(1234, 80, packet.FlagSYN, 0)
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{}, true},
		{Filter{DstPort: 80}, true},
		{Filter{DstPort: 81}, false},
		{Filter{SrcPort: 1234, DstPort: 80}, true},
		{Filter{SrcIP: packet.IP(10, 0, 0, 1)}, true},
		{Filter{SrcIP: packet.IP(10, 0, 0, 9)}, false},
		{Filter{Flags: packet.FlagSYN}, true},
		{Filter{Flags: packet.FlagFIN}, false},
	}
	for i, c := range cases {
		if got := c.f.Match(p); got != c.want {
			t.Errorf("case %d: Match = %v, want %v", i, got, c.want)
		}
	}
	var nilf *Filter
	if !nilf.Match(p) {
		t.Error("nil filter must match everything")
	}
}

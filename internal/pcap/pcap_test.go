package pcap

import (
	"bytes"
	"io"
	"testing"

	"flextoe/internal/packet"
	"flextoe/internal/sim"
)

func tcpPacket(sport, dport uint16, flags uint8, payload int) *packet.Packet {
	return &packet.Packet{
		Eth: packet.Ethernet{
			Dst: packet.MAC(2, 0, 0, 0, 0, 2), Src: packet.MAC(2, 0, 0, 0, 0, 1),
			EtherType: packet.EtherTypeIPv4,
		},
		IP:      packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: packet.IP(10, 0, 0, 1), Dst: packet.IP(10, 0, 0, 2)},
		TCP:     packet.TCP{SrcPort: sport, DstPort: dport, Flags: flags, WScale: -1},
		Payload: make([]byte, payload),
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	times := []sim.Time{sim.Microsecond, 2 * sim.Second, 3*sim.Second + 500*sim.Microsecond}
	for i, at := range times {
		if err := w.WritePacket(at, tcpPacket(1000, 80, packet.FlagACK, 10*i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets != 3 {
		t.Fatalf("packets = %d", w.Packets)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range times {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		// Timestamps round to microseconds.
		if rec.Time/sim.Microsecond != want/sim.Microsecond {
			t.Fatalf("record %d time %v != %v", i, rec.Time, want)
		}
		p, err := packet.Decode(rec.Data)
		if err != nil {
			t.Fatalf("record %d decode: %v", i, err)
		}
		if len(p.Payload) != 10*i {
			t.Fatalf("record %d payload = %d", i, len(p.Payload))
		}
		if rec.Orig != len(rec.Data) {
			t.Fatalf("record %d orig %d != cap %d", i, rec.Orig, len(rec.Data))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestFilter(t *testing.T) {
	p := tcpPacket(1234, 80, packet.FlagSYN, 0)
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{}, true},
		{Filter{DstPort: 80}, true},
		{Filter{DstPort: 81}, false},
		{Filter{SrcPort: 1234, DstPort: 80}, true},
		{Filter{SrcIP: packet.IP(10, 0, 0, 1)}, true},
		{Filter{SrcIP: packet.IP(10, 0, 0, 9)}, false},
		{Filter{Flags: packet.FlagSYN}, true},
		{Filter{Flags: packet.FlagFIN}, false},
	}
	for i, c := range cases {
		if got := c.f.Match(p); got != c.want {
			t.Errorf("case %d: Match = %v, want %v", i, got, c.want)
		}
	}
	var nilf *Filter
	if !nilf.Match(p) {
		t.Error("nil filter must match everything")
	}
}

// Package api defines the stack-independent application interface: the
// paper runs identical application binaries on Linux, Chelsio, TAS and
// FlexTOE (§5 "We use identical application binaries across all
// baselines"). Applications in internal/apps program against these
// interfaces; libTOE implements them over the FlexTOE data-path, and the
// baseline host stacks implement them over their own engines.
package api

import (
	"flextoe/internal/host"
	"flextoe/internal/packet"
	"flextoe/internal/sim"
)

// Addr names a TCP endpoint.
type Addr struct {
	IP   packet.IPv4Addr
	Port uint16
}

// Socket is a connected stream endpoint. The interface is callback-based
// because applications are event-driven simulation actors; libTOE's POSIX
// interposition layer (blocking send/recv over epoll) reduces to exactly
// these operations.
//
// # Zero-copy views
//
// The primary data-path operations are the four view calls, mirroring
// FlexTOE's libTOE payload-buffer model (§3, Fig. 2): the application
// reads received bytes and stages transmit bytes in place in the
// per-socket payload ring; only descriptors cross the host/NIC boundary.
//
//   - Peek returns every readable byte as up to two ring slices (two
//     because the ring may wrap); len(a)+len(b) == Readable().
//   - Consume(n) releases the first n readable bytes and reopens that
//     much receive window.
//   - Reserve(n) returns up to n bytes of free transmit ring (bounded by
//     TxSpace) as up to two slices, starting at the current append
//     position.
//   - Commit(n) publishes the next n staged bytes to the stack
//     (doorbell). The bytes transmitted are whatever the ring holds at
//     the append position — an application whose payload content matters
//     must have written it via Reserve first; one that pads (fixed-size
//     RPC benchmarks) may Commit without staging.
//
// Aliasing contract: view slices are windows into the socket's payload
// ring, not copies. A Peek view is invalidated by the next Consume, a
// Reserve view by the next Commit; views must never be retained across
// those calls, across callbacks, or into deferred work. Repeated
// Peek/Reserve without an intervening Consume/Commit return stable
// views. See doc.go ("Zero-copy socket views") for how this composes
// with the data-path pooling rules.
//
// Send and Recv are thin compatibility wrappers over the views
// (Reserve+copy+Commit, Peek+copy+Consume) that additionally pay the
// per-byte copy cost the views avoid.
type Socket interface {
	// Send appends up to len(p) bytes to the transmit stream, returning
	// how many were accepted (bounded by socket-buffer space).
	Send(p []byte) int
	// Recv copies up to len(p) available bytes, returning the count.
	Recv(p []byte) int
	// Peek returns the readable byte stream as up to two ring slices,
	// valid until the next Consume.
	Peek() (a, b []byte)
	// Consume releases the first n readable bytes (n <= Readable()).
	Consume(n int)
	// Reserve returns up to n bytes of transmit ring to stage into,
	// valid until the next Commit.
	Reserve(n int) (a, b []byte)
	// Commit publishes the next n staged bytes (n <= TxSpace()).
	Commit(n int)
	// Readable returns the number of buffered received bytes.
	Readable() int
	// TxSpace returns the free transmit-buffer space.
	TxSpace() int
	// OnReadable registers the data-arrival callback (edge-triggered:
	// fires when Readable transitions upward).
	OnReadable(func())
	// OnWritable registers the buffer-space callback.
	OnWritable(func())
	// Close initiates connection teardown (FIN).
	Close()
	// LocalAddr / RemoteAddr identify the connection.
	LocalAddr() Addr
	RemoteAddr() Addr
}

// View helpers: applications address the two-slice ring windows returned
// by Peek/Reserve as one logical byte range without materializing it.

// ViewLen returns the total length of a two-slice view.
func ViewLen(a, b []byte) int { return len(a) + len(b) }

// ViewByte returns view byte i.
func ViewByte(a, b []byte, i int) byte {
	if i < len(a) {
		return a[i]
	}
	return b[i-len(a)]
}

// ViewCopyOut copies view[off : off+len(dst)] into dst.
func ViewCopyOut(dst []byte, a, b []byte, off int) {
	if off < len(a) {
		n := copy(dst, a[off:])
		if n < len(dst) {
			copy(dst[n:], b)
		}
		return
	}
	copy(dst, b[off-len(a):])
}

// ViewCopyIn copies src into the view starting at off.
func ViewCopyIn(a, b []byte, off int, src []byte) {
	if off < len(a) {
		n := copy(a[off:], src)
		if n < len(src) {
			copy(b, src[n:])
		}
		return
	}
	copy(b[off-len(a):], src)
}

// ViewBytes returns view[off : off+n] as one contiguous slice. When the
// range lies within a single underlying slice it is returned in place
// (zero copy); only a range straddling the ring wrap is copied into
// *scratch (grown as needed, reused across calls). The result aliases
// either the view or scratch — the same lifetime rules as the view
// itself apply.
func ViewBytes(a, b []byte, off, n int, scratch *[]byte) []byte {
	if off+n <= len(a) {
		return a[off : off+n]
	}
	if off >= len(a) {
		o := off - len(a)
		return b[o : o+n]
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	s := (*scratch)[:n]
	ViewCopyOut(s, a, b, off)
	return s
}

// Stack is a TCP implementation on one simulated machine.
type Stack interface {
	Name() string
	// Listen registers an accept handler for a local port.
	Listen(port uint16, accept func(Socket))
	// Dial opens a connection; connected runs when established.
	Dial(remote Addr, connected func(Socket))
	// Machine returns the host CPU model for application work.
	Machine() *host.Machine
	// Engine returns the shard engine this stack's machine runs on.
	// Applications and workloads schedule all their events here, which
	// structurally confines each app's state to its machine's shard.
	Engine() *sim.Engine
	// LocalIP returns the machine's address.
	LocalIP() packet.IPv4Addr
}

// Package api defines the stack-independent application interface: the
// paper runs identical application binaries on Linux, Chelsio, TAS and
// FlexTOE (§5 "We use identical application binaries across all
// baselines"). Applications in internal/apps program against these
// interfaces; libTOE implements them over the FlexTOE data-path, and the
// baseline host stacks implement them over their own engines.
package api

import (
	"flextoe/internal/host"
	"flextoe/internal/packet"
)

// Addr names a TCP endpoint.
type Addr struct {
	IP   packet.IPv4Addr
	Port uint16
}

// Socket is a connected stream endpoint. The interface is callback-based
// because applications are event-driven simulation actors; libTOE's POSIX
// interposition layer (blocking send/recv over epoll) reduces to exactly
// these operations.
type Socket interface {
	// Send appends up to len(p) bytes to the transmit stream, returning
	// how many were accepted (bounded by socket-buffer space).
	Send(p []byte) int
	// Recv copies up to len(p) available bytes, returning the count.
	Recv(p []byte) int
	// Readable returns the number of buffered received bytes.
	Readable() int
	// TxSpace returns the free transmit-buffer space.
	TxSpace() int
	// OnReadable registers the data-arrival callback (edge-triggered:
	// fires when Readable transitions upward).
	OnReadable(func())
	// OnWritable registers the buffer-space callback.
	OnWritable(func())
	// Close initiates connection teardown (FIN).
	Close()
	// LocalAddr / RemoteAddr identify the connection.
	LocalAddr() Addr
	RemoteAddr() Addr
}

// Stack is a TCP implementation on one simulated machine.
type Stack interface {
	Name() string
	// Listen registers an accept handler for a local port.
	Listen(port uint16, accept func(Socket))
	// Dial opens a connection; connected runs when established.
	Dial(remote Addr, connected func(Socket))
	// Machine returns the host CPU model for application work.
	Machine() *host.Machine
	// LocalIP returns the machine's address.
	LocalIP() packet.IPv4Addr
}

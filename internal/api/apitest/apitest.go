// Package apitest is the cross-stack conformance suite for the
// api.Socket contract: every stack personality (FlexTOE, Linux, TAS,
// Chelsio) must present identical semantics to applications — the paper
// runs identical application binaries across all baselines (§5), so the
// socket layer is the compatibility boundary the whole evaluation rests
// on.
//
// The suite pins the parts of the contract applications actually depend
// on:
//
//   - partial Send under full buffers (flow control surfaces as short
//     writes, never blocking or data loss),
//   - edge-triggered OnReadable/OnWritable (no level-triggered callback
//     storms while data sits unconsumed),
//   - the zero-copy view aliasing rules (Peek invalidated by Consume,
//     Reserve by Commit; views stable between those calls),
//   - EOF after FIN surfaced as an OnReadable fire that drains to
//     Readable()==0,
//   - no loss of data arriving between accept and OnReadable
//     registration.
package apitest

import (
	"testing"

	"flextoe/internal/api"
	"flextoe/internal/netsim"
	"flextoe/internal/sim"
	"flextoe/internal/testbed"
)

// pair is a connected client/server socket pair on a two-machine
// testbed of one personality.
type pair struct {
	tb  *testbed.Testbed
	srv api.Socket
	cli api.Socket
}

// newPair builds the testbed, connects one socket pair and returns it.
// onAccept, when non-nil, runs inside the server's accept callback
// (before any data can arrive) in place of the default no-op.
func newPair(t *testing.T, kind testbed.StackKind, bufSize uint32, port uint16, onAccept func(api.Socket)) *pair {
	t.Helper()
	tb := testbed.New(netsim.SwitchConfig{},
		testbed.MachineSpec{Name: "server", Kind: kind, Cores: 2, BufSize: bufSize, Seed: 11},
		testbed.MachineSpec{Name: "client", Kind: kind, Cores: 2, BufSize: bufSize, Seed: 22},
	)
	p := &pair{tb: tb}
	tb.M("server").Stack.Listen(port, func(k api.Socket) {
		p.srv = k
		if onAccept != nil {
			onAccept(k)
		}
	})
	tb.M("client").Stack.Dial(tb.Addr("server", port), func(k api.Socket) { p.cli = k })
	for i := 0; p.srv == nil || p.cli == nil; i++ {
		if i > 100 {
			t.Fatalf("%s: connection not established", kind)
		}
		p.run(sim.Millisecond)
	}
	return p
}

// run advances the simulation by d.
func (p *pair) run(d sim.Time) { p.tb.Run(p.tb.Eng.Now() + d) }

// until advances in millisecond steps until cond holds (or fails).
func (p *pair) until(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; !cond(); i++ {
		if i > 500 {
			t.Fatalf("timed out waiting for %s", what)
		}
		p.run(sim.Millisecond)
	}
}

// pattern returns the deterministic byte stream the suite validates
// content with.
func pattern(off int) byte { return byte(7*off + 13) }

// Run executes the conformance suite against one stack personality.
func Run(t *testing.T, kind testbed.StackKind) {
	t.Run("PartialSendUnderFullBuffers", func(t *testing.T) { partialSend(t, kind) })
	t.Run("EdgeTriggeredCallbacks", func(t *testing.T) { edgeTriggered(t, kind) })
	t.Run("ViewAliasing", func(t *testing.T) { viewAliasing(t, kind) })
	t.Run("EOFAfterFINDrain", func(t *testing.T) { eofAfterFIN(t, kind) })
	t.Run("DataBeforeOnReadable", func(t *testing.T) { dataBeforeOnReadable(t, kind) })
	t.Run("AcceptStormBacklog", func(t *testing.T) { acceptStorm(t, kind) })
}

// acceptStorm pins the listen-path hardening contract: under a SYN storm
// against a bounded backlog, every dial is either fully established (both
// accept and connect callbacks fire, and the socket carries data) or
// silently dropped with the drop counted — no half-accepted sockets, no
// RSTs, no lost counts. Uniform across all four personalities.
func acceptStorm(t *testing.T, kind testbed.StackKind) {
	const dials = 192
	const backlog = 8
	tb := testbed.New(netsim.SwitchConfig{},
		testbed.MachineSpec{Name: "server", Kind: kind, Cores: 2, BufSize: 4096,
			ListenBacklog: backlog, Seed: 33},
		testbed.MachineSpec{Name: "client", Kind: kind, Cores: 2, BufSize: 4096, Seed: 44},
	)
	accepted := 0
	received := 0
	tb.M("server").Stack.Listen(9005, func(k api.Socket) {
		accepted++
		k.OnReadable(func() {
			a, b := k.Peek()
			n := api.ViewLen(a, b)
			k.Consume(n)
			received += n
		})
	})
	connected := 0
	for i := 0; i < dials; i++ {
		tb.M("client").Stack.Dial(tb.Addr("server", 9005), func(k api.Socket) {
			connected++
			k.Send([]byte{1, 2, 3, 4})
		})
	}
	tb.Run(20 * sim.Millisecond)

	var drops, overflows uint64
	if m := tb.M("server"); m.Ctrl != nil {
		drops, overflows = m.Ctrl.SYNDrops, m.Ctrl.BacklogOverflows
	} else {
		drops, overflows = m.Base.SYNDrops, m.Base.BacklogOverflows
	}
	if accepted == 0 {
		t.Fatalf("%s: storm of %d dials established nothing", kind, dials)
	}
	if drops == 0 || overflows == 0 {
		t.Fatalf("%s: backlog %d never overflowed under %d dials (drops=%d overflows=%d)",
			kind, backlog, dials, drops, overflows)
	}
	if accepted != connected {
		t.Errorf("%s: %d accepts vs %d connects — a handshake half-completed", kind, accepted, connected)
	}
	if uint64(accepted)+drops != dials {
		t.Errorf("%s: accepted %d + dropped %d != dialed %d", kind, accepted, drops, dials)
	}
	if received != 4*accepted {
		t.Errorf("%s: accepted sockets delivered %d bytes, want %d", kind, received, 4*accepted)
	}
}

// partialSend floods a small-buffer connection while the receiver sits on
// its data: Send must go short (flow control), never lose bytes, and
// OnWritable must resume the transfer once the receiver drains — with the
// full byte stream intact and in order across many ring wraps.
func partialSend(t *testing.T, kind testbed.StackKind) {
	const total = 16384
	const bufSize = 4096
	p := newPair(t, kind, bufSize, 9000, nil)

	payload := make([]byte, total)
	for i := range payload {
		payload[i] = pattern(i)
	}
	sent := 0
	sawShort := false
	push := func() {
		for sent < total {
			n := p.cli.Send(payload[sent:])
			if n < total-sent {
				sawShort = true
			}
			if n == 0 {
				return
			}
			sent += n
		}
	}
	p.cli.OnWritable(push)
	push()

	// The receiver is not consuming: the sender must stall well short of
	// the total with a short write observed.
	p.run(20 * sim.Millisecond)
	if !sawShort {
		t.Fatalf("no short Send observed against a %d-byte buffer", bufSize)
	}
	if sent >= total {
		t.Fatalf("flow control failed: %d of %d bytes accepted with the receiver asleep", sent, total)
	}

	// Drain and validate content through the view path.
	got := make([]byte, 0, total)
	drain := func() {
		a, b := p.srv.Peek()
		n := api.ViewLen(a, b)
		if n == 0 {
			return
		}
		got = append(got, a...)
		got = append(got, b...)
		p.srv.Consume(n)
	}
	p.srv.OnReadable(drain)
	drain() // pick up what buffered before registration
	p.until(t, "full transfer", func() bool { return len(got) >= total && sent >= total })
	if len(got) != total {
		t.Fatalf("received %d bytes, want %d", len(got), total)
	}
	for i, v := range got {
		if v != pattern(i) {
			t.Fatalf("byte %d = %#x, want %#x: stream corrupted or reordered", i, v, pattern(i))
		}
	}
}

// edgeTriggered pins the callback contract: OnReadable fires on upward
// Readable transitions only — unconsumed data must not retrigger it, and
// consuming must not fire it either.
func edgeTriggered(t *testing.T, kind testbed.StackKind) {
	p := newPair(t, kind, 4096, 9001, nil)
	fires := 0
	p.srv.OnReadable(func() { fires++ })

	payload := make([]byte, 100)
	p.cli.Send(payload)
	p.until(t, "first delivery", func() bool { return p.srv.Readable() == 100 })
	if fires == 0 {
		t.Fatal("OnReadable never fired for new data")
	}

	// Data sits unconsumed: an edge-triggered socket stays silent.
	quiesced := fires
	p.run(20 * sim.Millisecond)
	if fires != quiesced {
		t.Fatalf("OnReadable fired %d more times with no new data (level-triggered storm)", fires-quiesced)
	}

	// Consuming is not an upward transition.
	p.srv.Consume(p.srv.Readable())
	p.run(20 * sim.Millisecond)
	if fires != quiesced {
		t.Fatalf("OnReadable fired on Consume")
	}

	// New data is a fresh edge.
	p.cli.Send(payload)
	p.until(t, "second delivery", func() bool { return p.srv.Readable() == 100 })
	if fires == quiesced {
		t.Fatal("OnReadable did not fire for the second burst")
	}
}

// viewAliasing pins the zero-copy view rules on both directions: Reserve
// views address the ring beyond committed data (a Commit shifts the next
// view), Peek views shift with Consume, and view lengths track
// TxSpace/Readable exactly.
func viewAliasing(t *testing.T, kind testbed.StackKind) {
	const n = 1000
	p := newPair(t, kind, 4096, 9002, nil)

	// Stage a full pattern, publish only the first half.
	a, b := p.cli.Reserve(n)
	if got := api.ViewLen(a, b); got != n {
		t.Fatalf("Reserve(%d) on an empty socket returned %d bytes", n, got)
	}
	for i := 0; i < n; i++ {
		api.ViewCopyIn(a, b, i, []byte{pattern(i)})
	}
	// Re-reserving without a Commit returns a stable view of the same
	// window: the staged prefix must still be there.
	a2, b2 := p.cli.Reserve(n)
	if api.ViewLen(a2, b2) != n || api.ViewByte(a2, b2, 0) != pattern(0) || api.ViewByte(a2, b2, n-1) != pattern(n-1) {
		t.Fatal("Reserve view not stable before Commit")
	}
	p.cli.Commit(n / 2)

	// After the Commit the next Reserve must start past the published
	// bytes: overwrite the second half with a marker.
	a3, b3 := p.cli.Reserve(n / 2)
	if api.ViewLen(a3, b3) != n/2 {
		t.Fatalf("Reserve after Commit returned %d bytes, want %d", api.ViewLen(a3, b3), n/2)
	}
	for i := 0; i < n/2; i++ {
		api.ViewCopyIn(a3, b3, i, []byte{0xEE})
	}
	p.cli.Commit(n / 2)

	p.until(t, "delivery", func() bool { return p.srv.Readable() >= n })

	// Peek must expose exactly Readable() bytes: committed prefix then
	// marker, proving the second Reserve aliased the ring past the first
	// Commit.
	ra, rb := p.srv.Peek()
	if api.ViewLen(ra, rb) != p.srv.Readable() {
		t.Fatalf("Peek length %d != Readable %d", api.ViewLen(ra, rb), p.srv.Readable())
	}
	for i := 0; i < n/2; i++ {
		if api.ViewByte(ra, rb, i) != pattern(i) {
			t.Fatalf("byte %d = %#x, want pattern", i, api.ViewByte(ra, rb, i))
		}
	}
	for i := n / 2; i < n; i++ {
		if api.ViewByte(ra, rb, i) != 0xEE {
			t.Fatalf("byte %d = %#x, want marker: Reserve view did not advance past Commit", i, api.ViewByte(ra, rb, i))
		}
	}

	// Consume shifts the next Peek: the old view is dead, the new one
	// starts at the first unconsumed byte.
	second := api.ViewByte(ra, rb, 1)
	p.srv.Consume(1)
	ra2, rb2 := p.srv.Peek()
	if api.ViewLen(ra2, rb2) != p.srv.Readable() || api.ViewByte(ra2, rb2, 0) != second {
		t.Fatal("Peek view did not shift after Consume")
	}
}

// eofAfterFIN pins the EOF contract: after the peer closes, the receiver
// observes an OnReadable fire that drains to Readable()==0 with every
// byte delivered first.
func eofAfterFIN(t *testing.T, kind testbed.StackKind) {
	const total = 1000
	p := newPair(t, kind, 4096, 9003, nil)

	got := 0
	eof := false
	p.srv.OnReadable(func() {
		a, b := p.srv.Peek()
		if n := api.ViewLen(a, b); n > 0 {
			p.srv.Consume(n)
			got += n
			return
		}
		// A fire with nothing readable after the stream drained is the
		// FIN notification.
		if got == total {
			eof = true
		}
	})

	p.cli.Send(make([]byte, total))
	p.cli.Close()
	p.until(t, "EOF", func() bool { return eof })
	if got != total {
		t.Fatalf("drained %d bytes before EOF, want %d", got, total)
	}
}

// dataBeforeOnReadable is the regression for the accept/registration
// race: bytes arriving after accept but before the application registers
// OnReadable must be retained and visible via Readable/Peek.
func dataBeforeOnReadable(t *testing.T, kind testbed.StackKind) {
	const early = 600
	const late = 400
	p := newPair(t, kind, 4096, 9004, nil)

	payload := make([]byte, early)
	for i := range payload {
		payload[i] = pattern(i)
	}
	p.cli.Send(payload)
	// No OnReadable registered: the data must buffer, not vanish.
	p.until(t, "early data buffered", func() bool { return p.srv.Readable() == early })
	a, b := p.srv.Peek()
	if api.ViewLen(a, b) != early {
		t.Fatalf("Peek sees %d early bytes, want %d", api.ViewLen(a, b), early)
	}
	for i := 0; i < early; i++ {
		if api.ViewByte(a, b, i) != pattern(i) {
			t.Fatalf("early byte %d corrupted", i)
		}
	}

	// Late registration drains the backlog plus fresh data.
	got := 0
	p.srv.OnReadable(func() {
		va, vb := p.srv.Peek()
		n := api.ViewLen(va, vb)
		p.srv.Consume(n)
		got += n
	})
	// The backlog does not re-fire the callback (edge-triggered): the
	// application drains it at registration time, as epoll users do.
	va, vb := p.srv.Peek()
	n := api.ViewLen(va, vb)
	p.srv.Consume(n)
	got += n

	p.cli.Send(make([]byte, late))
	p.until(t, "late data", func() bool { return got == early+late })
}

package apitest

import (
	"testing"

	"flextoe/internal/testbed"
)

// TestSocketConformance runs the api.Socket contract suite against all
// four stack personalities: the paper's "identical application binaries"
// claim (§5) holds only if every stack implements the same socket
// semantics, views included.
func TestSocketConformance(t *testing.T) {
	for _, kind := range testbed.AllStacks {
		kind := kind
		t.Run(string(kind), func(t *testing.T) { Run(t, kind) })
	}
}

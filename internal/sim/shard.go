package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// xev is one cross-shard injected event, parked in a per-pair queue until
// the destination shard applies it at the next window barrier.
type xev struct {
	at   Time
	dkey uint64
	cb   func(any)
	arg  any
}

// Group runs N engines (shards) in lockstep windows under conservative
// lookahead synchronization. Frames in flight are the only cross-shard
// edges; every boundary link registers its minimum latency (NoteBoundary)
// and the smallest such latency is the lookahead quantum L. Each window
// executes events in [m, min(m+L, t+1)) where m is the global minimum
// next-event time: any frame transmitted during the window arrives at or
// after the window end (serialization takes ≥ 1 ps, then the full
// propagation delay), so no shard can receive an event inside the window
// it is currently executing — shards run the window without any
// coordination, then exchange injected events at a barrier.
//
// Determinism does not depend on the window placement: injected events
// carry the same (timestamp, delivery-key) pair the serial engine would
// have used, and the event comparator orders same-instant events
// identically in both modes (see event.before). N=1 bypasses all of this
// and is byte-for-byte the serial RunUntil path.
type Group struct {
	engines []*Engine

	// queues[src*n+dst] is the SPSC ingress queue from shard src to
	// shard dst: written only by src's worker during the run phase, read
	// only by dst's worker during the drain phase, with a barrier (and
	// its happens-before edge) in between.
	queues [][]xev

	// look is the lookahead quantum: the minimum over boundary links of
	// (propagation delay + 1 ps). Zero means no boundary links exist and
	// the shards are fully independent up to the horizon.
	look Time

	// next/has cache each shard's next-event time between windows.
	next []Time
	has  []bool

	wend Time // current window end, read by workers during the run phase
}

// NewGroup creates n engines sharing one barrier-synchronized group.
// Engine(0) is the coordinator shard and doubles as the "main" engine for
// global facilities (switch fabric, background timers).
func NewGroup(n int) *Group {
	if n < 1 {
		panic("sim: group needs at least one engine")
	}
	g := &Group{
		engines: make([]*Engine, n),
		queues:  make([][]xev, n*n),
		next:    make([]Time, n),
		has:     make([]bool, n),
	}
	for i := range g.engines {
		e := New()
		e.group = g
		e.id = i
		g.engines[i] = e
	}
	return g
}

// N returns the number of shards.
func (g *Group) N() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Engines returns all shard engines, coordinator first.
func (g *Group) Engines() []*Engine { return g.engines }

// NoteBoundary records a cross-shard link whose earliest possible
// delivery is d after transmission start (propagation delay + minimum
// serialization). The group lookahead is the minimum over all boundaries.
func (g *Group) NoteBoundary(d Time) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive boundary lookahead %v", d))
	}
	if g.look == 0 || d < g.look {
		g.look = d
	}
}

// Lookahead returns the current lookahead quantum (0 = no boundaries).
func (g *Group) Lookahead() Time { return g.look }

// enqueue parks an injected event in the src→dst queue. Called only from
// src's worker during the run phase (single producer).
func (g *Group) enqueue(src, dst int, ev xev) {
	i := src*len(g.engines) + dst
	g.queues[i] = append(g.queues[i], ev)
}

// drainInto applies every queued injection destined for shard dst, in
// source-shard order. Ordering across sources does not matter: the
// events land in dst's wheel and execute in (at, dkey) order, and
// distinct links never share (at, dkey).
func (g *Group) drainInto(dst int) {
	n := len(g.engines)
	e := g.engines[dst]
	for src := 0; src < n; src++ {
		q := g.queues[src*n+dst]
		if len(q) == 0 {
			continue
		}
		for i := range q {
			ev := &q[i]
			e.AtLinkCall(ev.at, ev.dkey, ev.cb, ev.arg)
			*ev = xev{}
		}
		g.queues[src*n+dst] = q[:0]
	}
}

// minNext returns the earliest next-event time across shards, or false
// when every shard is idle or past the horizon t.
func (g *Group) minNext(t Time) (Time, bool) {
	var m Time
	ok := false
	for i := range g.engines {
		if g.has[i] && (!ok || g.next[i] < m) {
			m = g.next[i]
			ok = true
		}
	}
	if !ok || m > t {
		return 0, false
	}
	return m, true
}

// groupRun is the per-RunUntil barrier state. Workers are spawned fresh
// for each RunUntil call and exit at its end, so a Group never pins
// goroutines between runs and needs no Close. The barrier is a hybrid
// spin/yield on two atomics: phase (released by the coordinator) and
// done (arrival count). Atomic operations give the necessary
// happens-before edges, so a shard's queue writes during the run phase
// are visible to the reader during the drain phase.
//
// Worker count is capped at GOMAXPROCS-1 (coordinator included that is
// GOMAXPROCS runnable threads) and shards are multiplexed over the
// workers round-robin: spin barriers are only sound when every
// participant owns a CPU — oversubscribing turns each barrier handoff
// into kernel timeslice churn. Window placement and event order are
// worker-count-independent, so the shard→worker mapping cannot affect
// results (TestParallelMatchesSerial).
type groupRun struct {
	g       *Group
	workers int // goroutines in addition to the coordinator
	phase   atomic.Uint64
	done    atomic.Int64
	stop    atomic.Bool
}

// await spins until the coordinator releases phase p.
func (st *groupRun) await(p uint64) {
	for spins := 0; st.phase.Load() < p; spins++ {
		if spins > 512 {
			runtime.Gosched()
		}
	}
}

// waitAll blocks the coordinator until all workers arrive, then resets
// the arrival count for the next phase.
func (st *groupRun) waitAll() {
	for spins := 0; st.done.Load() < int64(st.workers); spins++ {
		if spins > 512 {
			runtime.Gosched()
		}
	}
	st.done.Store(0)
}

// worker is the loop for one barrier participant: run every owned
// shard's window, barrier, drain their injections, barrier, repeat —
// until the coordinator raises stop. Worker w owns shards w+1, w+1+W,
// w+1+2W, ... (the coordinator owns shard 0 itself).
func (st *groupRun) worker(w int) {
	g := st.g
	n := len(g.engines)
	local := uint64(0)
	for {
		local++
		st.await(local) // run phase released
		if st.stop.Load() {
			st.done.Add(1)
			return
		}
		for i := w + 1; i < n; i += st.workers {
			g.engines[i].runWindow(g.wend)
		}
		st.done.Add(1)
		local++
		st.await(local) // drain phase released
		for i := w + 1; i < n; i += st.workers {
			g.drainInto(i)
			g.next[i], g.has[i] = g.engines[i].pendingNext()
		}
		st.done.Add(1)
	}
}

// runSequential is the windowed loop on the caller goroutine alone, used
// when GOMAXPROCS leaves no room for workers. Window placement and event
// order are identical to the parallel path, so the results are too.
func (g *Group) runSequential(t Time) {
	for {
		m, ok := g.minNext(t)
		if !ok {
			break
		}
		wend := t + 1 // horizon: run events at <= t
		if g.look > 0 && m+g.look < wend {
			wend = m + g.look
		}
		for _, e := range g.engines {
			e.runWindow(wend)
		}
		for i, e := range g.engines {
			g.drainInto(i)
			g.next[i], g.has[i] = e.pendingNext()
		}
	}
}

// RunUntil executes all shards up to and including time t, then advances
// every shard clock to t. With one shard it is exactly Engine.RunUntil.
func (g *Group) RunUntil(t Time) {
	n := len(g.engines)
	if n == 1 {
		g.engines[0].RunUntil(t)
		return
	}
	for i, e := range g.engines {
		g.next[i], g.has[i] = e.pendingNext()
	}
	workers := runtime.GOMAXPROCS(0) - 1
	if workers > n-1 {
		workers = n - 1
	}
	if workers < 1 {
		g.runSequential(t)
		for _, e := range g.engines {
			e.advanceTo(t)
		}
		return
	}
	st := &groupRun{g: g, workers: workers}
	for w := 0; w < workers; w++ {
		go st.worker(w)
	}
	phase := uint64(0)
	for {
		m, ok := g.minNext(t)
		if !ok {
			break
		}
		wend := t + 1 // horizon: run events at <= t
		if g.look > 0 && m+g.look < wend {
			wend = m + g.look
		}
		g.wend = wend
		phase++
		st.phase.Store(phase) // release run phase
		g.engines[0].runWindow(wend)
		st.waitAll()
		phase++
		st.phase.Store(phase) // release drain phase
		g.drainInto(0)
		g.next[0], g.has[0] = g.engines[0].pendingNext()
		st.waitAll()
	}
	st.stop.Store(true)
	phase++
	st.phase.Store(phase) // release workers into the stop check
	st.waitAll()
	for _, e := range g.engines {
		e.advanceTo(t)
	}
}

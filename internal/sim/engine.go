// Package sim provides the deterministic discrete-event simulation engine
// that every FlexTOE substrate model (NFP-4000 SmartNIC, host CPUs, links,
// switch) runs on.
//
// Time advances in integer picoseconds so that hardware clocks with
// non-nanosecond periods (the NFP-4000's 800 MHz FPCs tick every 1250 ps)
// stay exact. All state mutation happens inside events executed by a single
// goroutine, so simulations are reproducible bit-for-bit from their seed.
//
// The event core is a hierarchical timing wheel: a near wheel of
// fixed-width buckets covering the next ~67 us absorbs the dense
// sub-microsecond traffic of the data-path (FPC issue slots, memory
// stalls, PCIe completions) in O(1), while an overflow binary heap holds
// the sparse far future (retransmission timeouts, experiment end markers).
// Bucket slices and the heap reuse their capacity, so steady-state event
// scheduling performs no heap allocation. Execution order is exactly the
// order the old global heap produced: ascending timestamp, FIFO among
// events scheduled for the same instant (the seq tie-break).
package sim

import (
	"fmt"
)

// Time is a simulated instant or duration in picoseconds.
type Time int64

// Duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns the time as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a float64 microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns the time as a float64 millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Cycles converts a cycle count at the given clock frequency to a Time.
// The conversion rounds to the nearest picosecond.
func Cycles(n int64, hz int64) Time {
	if hz <= 0 {
		panic("sim: non-positive clock frequency")
	}
	// n cycles * 1e12 ps/s / hz. Split to avoid overflow for large n.
	whole := n / hz
	rem := n % hz
	return Time(whole*1e12 + (rem*1e12+hz/2)/hz)
}

// event is one scheduled callback. Events come in two flavours: a plain
// closure (fn) or the allocation-free call form (cb + arg), where cb is a
// long-lived function value and arg carries the per-event state. Exactly
// one of fn/cb is set.
//
// dkey is the delivery key used by cross-engine-safe ordering (see
// before): 0 for ordinary local events, and a nonzero link-scoped key
// (link id in the high bits, per-link transmit sequence in the low bits)
// for frame-delivery events scheduled through AtLinkCall/Inject.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among same-instant local events
	dkey uint64 // delivery ordering key; 0 = local event
	fn   func()
	cb   func(any)
	arg  any
}

func (ev *event) run() {
	if ev.cb != nil {
		ev.cb(ev.arg)
		return
	}
	ev.fn()
}

// before reports whether a orders strictly before b in execution order.
//
// Same-instant ordering is the sharding contract's linchpin: local events
// (dkey 0) run before deliveries, and deliveries order by dkey — a key
// derived from the transmitting link, identical whether the delivery was
// scheduled locally (serial mode, or an intra-shard link) or injected
// across a shard boundary. The per-engine seq breaks the remaining ties
// (local vs local), which is mode-independent because each entity's
// scheduling order is reproduced exactly by its own shard. Two
// deliveries never share (at, dkey): a link serializes, so per-link
// delivery instants are strictly increasing, and distinct links have
// distinct dkeys.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.dkey != b.dkey {
		return a.dkey < b.dkey
	}
	return a.seq < b.seq
}

// Timing-wheel geometry. One bucket spans 2^tickBits ps (65.536 ns); the
// wheel spans wheelSize buckets (~67 us). Deadlines beyond the span go to
// the overflow heap and migrate into the wheel when it advances.
const (
	tickBits  = 16
	tickSpan  = Time(1) << tickBits
	wheelBits = 10
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Engine struct {
	now     Time
	seq     uint64
	stopped bool
	nRun    uint64

	// Near wheel: buckets[i&wheelMask] holds events whose tick index
	// (at>>tickBits) is i, for ticks in [start>>tickBits, +wheelSize).
	// heads[i] is the bucket's consumed prefix; sorted[i] records whether
	// the unconsumed suffix is known to be in (at, seq) order.
	buckets  [][]event
	heads    []int
	sorted   []bool
	start    Time  // wheel window lower bound, tick-aligned
	curTick  int64 // cursor: no wheel event lives below this tick
	wheelCnt int

	// Overflow heap for events beyond the wheel span, ordered by
	// (at, seq). Invariant: every overflow event is at or beyond
	// start+span whenever the wheel is non-empty, so the wheel minimum is
	// always the global minimum when wheelCnt > 0.
	overflow []event

	// Sharding (nil/zero for a standalone engine, see shard.go): the
	// group this engine belongs to and its index within it.
	group *Group
	id    int

	// locals holds per-engine singletons (pools, freelists) keyed by an
	// arbitrary comparable key; see Local.
	locals map[any]any
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{
		buckets: make([][]event, wheelSize),
		heads:   make([]int, wheelSize),
		sorted:  make([]bool, wheelSize),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.insert(event{at: t, seq: e.seq, fn: fn})
}

// AtCall schedules cb(arg) at absolute time t. It is the allocation-free
// form of At: cb should be a long-lived function value (package-level or
// cached on a struct) and arg the per-event state, so scheduling performs
// no closure allocation. arg must not be a pooled object that could be
// recycled before the event fires.
func (e *Engine) AtCall(t Time, cb func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.insert(event{at: t, seq: e.seq, cb: cb, arg: arg})
}

// AtLinkCall schedules cb(arg) at absolute time t as a frame-delivery
// event carrying the link-scoped ordering key dkey (nonzero). Deliveries
// at the same instant execute after local events and in dkey order, which
// is identical in serial and sharded mode — the determinism hinge of the
// sharding contract (see the before comment and doc.go).
func (e *Engine) AtLinkCall(t Time, dkey uint64, cb func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if dkey == 0 {
		panic("sim: AtLinkCall requires a nonzero delivery key")
	}
	e.seq++
	e.insert(event{at: t, seq: e.seq, dkey: dkey, cb: cb, arg: arg})
}

// Inject schedules cb(arg) on dst at absolute time t with delivery key
// dkey. When dst is this engine it is AtLinkCall; otherwise both engines
// must belong to the same Group and the event crosses the shard boundary
// through the group's per-pair ingress queue, applied at the next window
// barrier. The caller must guarantee t is at or beyond the current
// window's end — netsim's link model does, because every boundary link
// registers its propagation delay as group lookahead and a transmission
// serializes for at least one picosecond.
func (e *Engine) Inject(dst *Engine, t Time, dkey uint64, cb func(any), arg any) {
	if dst == e {
		e.AtLinkCall(t, dkey, cb, arg)
		return
	}
	if e.group == nil || e.group != dst.group {
		panic("sim: Inject across unrelated engines")
	}
	e.group.enqueue(e.id, dst.id, xev{at: t, dkey: dkey, cb: cb, arg: arg})
}

// Group returns the shard group this engine belongs to, or nil for a
// standalone engine.
func (e *Engine) Group() *Group { return e.group }

// ID returns this engine's index within its Group (0 for a standalone
// engine).
func (e *Engine) ID() int { return e.id }

// Local returns the per-engine singleton stored under key, constructing
// it with mk on first use. Pools and freelists are single-threaded by
// design; hanging one instance off each engine keeps every shard's hot
// path allocation-free without cross-shard sharing (see SHAREDSTATE.md).
func (e *Engine) Local(key any, mk func() any) any {
	if v, ok := e.locals[key]; ok {
		return v
	}
	if e.locals == nil {
		e.locals = make(map[any]any)
	}
	v := mk()
	e.locals[key] = v
	return v
}

// After schedules fn to run d picoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// AfterCall schedules cb(arg) d picoseconds from now (see AtCall).
func (e *Engine) AfterCall(d Time, cb func(any), arg any) {
	e.AtCall(e.now+d, cb, arg)
}

// Immediately schedules fn at the current instant, after all events already
// queued for this instant.
func (e *Engine) Immediately(fn func()) {
	e.At(e.now, fn)
}

// ImmediatelyCall schedules cb(arg) at the current instant (see AtCall).
func (e *Engine) ImmediatelyCall(cb func(any), arg any) {
	e.AtCall(e.now, cb, arg)
}

// Every schedules fn at start and then every interval thereafter, for as
// long as fn returns true.
func (e *Engine) Every(start, interval Time, fn func() bool) {
	if interval <= 0 {
		panic("sim: non-positive interval")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.After(interval, tick)
		}
	}
	e.At(start, tick)
}

// periodic carries one EveryCall arming: the long-lived callback, its
// argument, and the rearm interval.
type periodic struct {
	e        *Engine
	interval Time
	cb       func(any) bool
	arg      any
}

// periodicTick fires one EveryCall iteration and rearms while the
// callback returns true.
func periodicTick(a any) {
	p := a.(*periodic)
	if p.cb(p.arg) {
		p.e.AfterCall(p.interval, periodicTick, p)
	}
}

// EveryCall schedules cb(arg) at start and then every interval
// thereafter, for as long as cb returns true. It is the allocation-free
// form of Every: cb should be a long-lived function value and arg the
// periodic state, so arming allocates one small carrier and each firing
// allocates nothing (Every closes over fn and tick — two closures per
// arming, which adds up when every connection-scan loop on every machine
// arms one).
func (e *Engine) EveryCall(start, interval Time, cb func(any) bool, arg any) {
	if interval <= 0 {
		panic("sim: non-positive interval")
	}
	e.AtCall(start, periodicTick, &periodic{e: e, interval: interval, cb: cb, arg: arg})
}

// insert routes an event to its wheel bucket or the overflow heap.
func (e *Engine) insert(ev event) {
	const span = Time(wheelSize) << tickBits
	if e.wheelCnt == 0 && ev.at-e.start >= span {
		// Empty wheel: slide the window up to now so near-future events
		// keep landing in buckets.
		e.anchor(e.now)
	}
	if ev.at-e.start < span {
		tick := int64(ev.at >> tickBits)
		if tick < e.curTick {
			// The cursor peeked ahead of now (RunUntil); rescan from here.
			e.curTick = tick
		}
		idx := int(tick) & wheelMask
		b := e.buckets[idx]
		// Appending in (at, seq) order keeps the bucket sorted for free;
		// anything else marks it for a lazy sort at drain time.
		if len(b) > e.heads[idx] && !b[len(b)-1].before(&ev) {
			e.sorted[idx] = false
		}
		e.buckets[idx] = append(b, ev)
		e.wheelCnt++
		return
	}
	e.heapPush(ev)
}

// anchor moves the wheel window so it starts at the tick containing t and
// migrates overflow events that fall inside the new window. Only legal
// when the wheel is empty.
func (e *Engine) anchor(t Time) {
	e.start = t &^ (tickSpan - 1)
	e.curTick = int64(e.start >> tickBits)
	const span = Time(wheelSize) << tickBits
	for len(e.overflow) > 0 && e.overflow[0].at-e.start < span {
		ev := e.heapPop()
		idx := int(ev.at>>tickBits) & wheelMask
		b := e.buckets[idx]
		if len(b) > e.heads[idx] && !b[len(b)-1].before(&ev) {
			e.sorted[idx] = false
		}
		e.buckets[idx] = append(b, ev)
		e.wheelCnt++
	}
}

// wheelMin advances the cursor to the first non-empty bucket and returns
// a pointer to its earliest event. Only valid when wheelCnt > 0.
func (e *Engine) wheelMin() *event {
	for {
		idx := int(e.curTick) & wheelMask
		b := e.buckets[idx]
		h := e.heads[idx]
		if h < len(b) {
			if !e.sorted[idx] {
				insertionSort(b[h:])
				e.sorted[idx] = true
			}
			return &b[h]
		}
		// Bucket exhausted: reset it for the next rotation.
		if len(b) > 0 {
			e.buckets[idx] = b[:0]
			e.heads[idx] = 0
			e.sorted[idx] = true
		}
		e.curTick++
	}
}

// insertionSort orders events by (at, seq). Buckets are small and mostly
// sorted already, so insertion sort beats sort.Slice and allocates nothing.
func insertionSort(evs []event) {
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && ev.before(&evs[j]) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

// popWheelMin consumes the event wheelMin points at.
func (e *Engine) popWheelMin() event {
	idx := int(e.curTick) & wheelMask
	h := e.heads[idx]
	ev := e.buckets[idx][h]
	e.buckets[idx][h] = event{}
	e.heads[idx] = h + 1
	e.wheelCnt--
	return ev
}

// nextAt returns the timestamp of the next event to execute.
func (e *Engine) nextAt() (Time, bool) {
	if e.wheelCnt > 0 {
		return e.wheelMin().at, true
	}
	if len(e.overflow) > 0 {
		return e.overflow[0].at, true
	}
	return 0, false
}

// Step executes the next event. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	if e.wheelCnt == 0 {
		if len(e.overflow) == 0 {
			return false
		}
		e.anchor(e.overflow[0].at)
	}
	e.wheelMin()
	ev := e.popWheelMin()
	e.now = ev.at
	e.nRun++
	ev.run()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (even if the queue still holds later events).
func (e *Engine) RunUntil(t Time) {
	for !e.stopped {
		at, ok := e.nextAt()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// runWindow executes every pending event with timestamp strictly below
// wend. It is the per-shard body of Group.RunUntil: within one window a
// shard receives no new cross-shard input, so it can run without
// coordination.
func (e *Engine) runWindow(wend Time) {
	for !e.stopped {
		at, ok := e.nextAt()
		if !ok || at >= wend {
			return
		}
		e.Step()
	}
}

// pendingNext is nextAt gated on Stop, for the shard runner: a stopped
// engine reports no pending work so the group doesn't spin on events it
// will never execute.
func (e *Engine) pendingNext() (Time, bool) {
	if e.stopped {
		return 0, false
	}
	return e.nextAt()
}

// advanceTo moves the clock forward to t without executing anything.
func (e *Engine) advanceTo(t Time) {
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Stop halts the engine: Step, Run and RunUntil become no-ops.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.wheelCnt + len(e.overflow) }

// ---------------------------------------------------------------------
// Overflow heap: a plain binary min-heap on (at, seq), hand-rolled so
// pushes and pops never box events through container/heap's interface.
// ---------------------------------------------------------------------

func (e *Engine) heapPush(ev event) {
	h := append(e.overflow, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.overflow = h
}

func (e *Engine) heapPop() event {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h[l].before(&h[min]) {
			min = l
		}
		if r < n && h[r].before(&h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	e.overflow = h
	return top
}

// Package sim provides the deterministic discrete-event simulation engine
// that every FlexTOE substrate model (NFP-4000 SmartNIC, host CPUs, links,
// switch) runs on.
//
// Time advances in integer picoseconds so that hardware clocks with
// non-nanosecond periods (the NFP-4000's 800 MHz FPCs tick every 1250 ps)
// stay exact. All state mutation happens inside events executed by a single
// goroutine, so simulations are reproducible bit-for-bit from their seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant or duration in picoseconds.
type Time int64

// Duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns the time as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a float64 microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns the time as a float64 millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Cycles converts a cycle count at the given clock frequency to a Time.
// The conversion rounds to the nearest picosecond.
func Cycles(n int64, hz int64) Time {
	if hz <= 0 {
		panic("sim: non-positive clock frequency")
	}
	// n cycles * 1e12 ps/s / hz. Split to avoid overflow for large n.
	whole := n / hz
	rem := n % hz
	return Time(whole*1e12 + (rem*1e12+hz/2)/hz)
}

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-instant events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	nRun    uint64
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Immediately schedules fn at the current instant, after all events already
// queued for this instant.
func (e *Engine) Immediately(fn func()) {
	e.At(e.now, fn)
}

// Every schedules fn at start and then every interval thereafter, for as
// long as fn returns true.
func (e *Engine) Every(start, interval Time, fn func() bool) {
	if interval <= 0 {
		panic("sim: non-positive interval")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.After(interval, tick)
		}
	}
	e.At(start, tick)
}

// Step executes the next event. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.nRun++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (even if the queue still holds later events).
func (e *Engine) RunUntil(t Time) {
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Stop halts the engine: Step, Run and RunUntil become no-ops.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
